package proto

import (
	"testing"

	"bess/internal/segment"
)

func TestTypeInfoRoundTrip(t *testing.T) {
	td := segment.TypeDesc{ID: 7, Name: "Person", Size: 32, RefOffsets: []int{0, 8}}
	info := FromDesc(&td)
	back := info.ToDesc()
	if back.ID != td.ID || back.Name != td.Name || back.Size != td.Size {
		t.Fatalf("round trip: %+v", back)
	}
	if len(back.RefOffsets) != 2 || back.RefOffsets[1] != 8 {
		t.Fatalf("offsets: %v", back.RefOffsets)
	}
	// The conversions copy, not alias.
	info.RefOffsets[0] = 999
	if td.RefOffsets[0] == 999 {
		t.Fatal("FromDesc aliases the descriptor")
	}
	back2 := info.ToDesc()
	info.RefOffsets[1] = 888
	if back2.RefOffsets[1] == 888 {
		t.Fatal("ToDesc aliases the info")
	}
}

func TestLockModeValuesMirrorLockPackage(t *testing.T) {
	// The wire encoding relies on these numeric identities.
	if LockNone != 0 || LockIS != 1 || LockIX != 2 || LockS != 3 || LockSIX != 4 || LockX != 5 {
		t.Fatal("lock mode wire values changed; update lock.Mode mapping")
	}
}

func TestSegKeyComparable(t *testing.T) {
	a := SegKey{Area: 1, Start: 10}
	b := SegKey{Area: 1, Start: 10}
	if a != b {
		t.Fatal("SegKey equality")
	}
	m := map[SegKey]int{a: 1}
	if m[b] != 1 {
		t.Fatal("SegKey as map key")
	}
}
