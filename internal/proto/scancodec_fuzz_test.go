package proto

import (
	"bytes"
	"testing"
)

// FuzzScanFrameDecode drives every scan-protocol decoder with arbitrary
// bytes. Properties: no decoder panics, and any accepted input re-encodes to
// identical wire bytes (scan encodings are canonical, so a pushed frame can
// be hashed or deduped on its raw bytes).
func FuzzScanFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a scan frame at all, just prose"))
	f.Add(AppendScanStartArgs(nil, 7, 1, 4, 256<<10))
	f.Add(AppendScanStartReply(nil, 3, []ScanSeg{
		{Seg: SegKey{Area: 1, Start: 0}, SlottedPages: 1},
		{Seg: SegKey{Area: 1, Start: 8192}, SlottedPages: 2},
	}))
	f.Add(AppendScanBatch(nil, &ScanBatch{
		Seq:  0,
		Last: true,
		Images: []SegImage{
			{Seg: SegKey{Area: 2, Start: 4096}, Slotted: []byte("sl"), Overflow: []byte("ov"), Data: []byte("payload")},
		},
	}))
	f.Add(AppendScanBatch(nil, &ScanBatch{Seq: 9, Last: true, Err: "boom"}))
	f.Add(AppendScanCtl(nil, false, 4<<20))
	f.Add(AppendScanCtl(nil, true, 0))
	// A batch cut mid-image: the count promises more than arrives.
	cut := AppendScanBatch(nil, &ScanBatch{Seq: 1, Images: []SegImage{{Seg: SegKey{Area: 5, Start: 0}, Data: []byte("xyz")}}})
	f.Add(cut[:len(cut)-2])

	f.Fuzz(func(t *testing.T, wire []byte) {
		if client, db, fileID, batch, err := DecodeScanStartArgs(wire); err == nil {
			if got := AppendScanStartArgs(nil, client, db, fileID, batch); !bytes.Equal(got, wire) {
				t.Fatalf("scanstartargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if scan, plan, err := DecodeScanStartReply(wire); err == nil {
			if got := AppendScanStartReply(nil, scan, plan); !bytes.Equal(got, wire) {
				t.Fatalf("scanstartreply not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if sb, err := DecodeScanBatch(wire); err == nil {
			if got := AppendScanBatch(nil, sb); !bytes.Equal(got, wire) {
				t.Fatalf("scanbatch not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if cancel, credit, err := DecodeScanCtl(wire); err == nil {
			if got := AppendScanCtl(nil, cancel, credit); !bytes.Equal(got, wire) {
				t.Fatalf("scanctl not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
	})
}
