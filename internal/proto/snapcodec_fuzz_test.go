package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSnapCodecRoundTrip drives the five snapshot-method codec pairs with
// arbitrary bytes. Same two properties as FuzzMsgCodecRoundTrip: a decoder
// never panics and every accepted input is the canonical encoding of what it
// decoded to; and arguments carved from the raw input survive
// decode(encode(args)) == args.
func FuzzSnapCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a snapshot frame"))
	f.Add(AppendSnapOpenArgs(nil, 7))
	f.Add(AppendSnapOpenReply(nil, 3, 1<<40))
	f.Add(AppendSnapCloseArgs(nil, 7, 3))
	f.Add(AppendSnapFetchArgs(nil, 7, 3, SegKey{Area: 1, Start: 8192}))
	f.Add(AppendSnapScanStartArgs(nil, 7, 1, 9, 256<<10, 3))
	// A fetch frame cut inside the segment key.
	cut := AppendSnapFetchArgs(nil, 1, 2, SegKey{Area: 3, Start: 4})
	f.Add(cut[:len(cut)-3])

	f.Fuzz(func(t *testing.T, wire []byte) {
		// Property 1: canonical encodings.
		if client, err := DecodeSnapOpenArgs(wire); err == nil {
			if got := AppendSnapOpenArgs(nil, client); !bytes.Equal(got, wire) {
				t.Fatalf("snapopenargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if snap, stamp, err := DecodeSnapOpenReply(wire); err == nil {
			if got := AppendSnapOpenReply(nil, snap, stamp); !bytes.Equal(got, wire) {
				t.Fatalf("snapopenreply not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, snap, err := DecodeSnapCloseArgs(wire); err == nil {
			if got := AppendSnapCloseArgs(nil, client, snap); !bytes.Equal(got, wire) {
				t.Fatalf("snapcloseargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, snap, seg, err := DecodeSnapFetchArgs(wire); err == nil {
			if got := AppendSnapFetchArgs(nil, client, snap, seg); !bytes.Equal(got, wire) {
				t.Fatalf("snapfetchargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, db, fileID, batch, snap, err := DecodeSnapScanStartArgs(wire); err == nil {
			if got := AppendSnapScanStartArgs(nil, client, db, fileID, batch, snap); !bytes.Equal(got, wire) {
				t.Fatalf("snapscanstartargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}

		// Property 2: carved arguments roundtrip through every pair.
		p := append(append([]byte(nil), wire...), make([]byte, 48)...)
		client := binary.BigEndian.Uint32(p[0:4])
		snap := binary.BigEndian.Uint64(p[4:12])
		stamp := binary.BigEndian.Uint64(p[12:20])
		seg := SegKey{
			Area:  binary.BigEndian.Uint32(p[20:24]),
			Start: int64(binary.BigEndian.Uint64(p[24:32])),
		}
		db := binary.BigEndian.Uint32(p[32:36])
		fileID := binary.BigEndian.Uint32(p[36:40])
		batch := binary.BigEndian.Uint32(p[40:44])

		if c, err := DecodeSnapOpenArgs(AppendSnapOpenArgs(nil, client)); err != nil || c != client {
			t.Fatalf("snapopenargs roundtrip: got (%d, %v) want %d", c, err, client)
		}
		if sn, st, err := DecodeSnapOpenReply(AppendSnapOpenReply(nil, snap, stamp)); err != nil || sn != snap || st != stamp {
			t.Fatalf("snapopenreply roundtrip: got (%d, %d, %v) want (%d, %d)", sn, st, err, snap, stamp)
		}
		if c, sn, err := DecodeSnapCloseArgs(AppendSnapCloseArgs(nil, client, snap)); err != nil || c != client || sn != snap {
			t.Fatalf("snapcloseargs roundtrip: got (%d, %d, %v) want (%d, %d)", c, sn, err, client, snap)
		}
		if c, sn, s, err := DecodeSnapFetchArgs(AppendSnapFetchArgs(nil, client, snap, seg)); err != nil || c != client || sn != snap || s != seg {
			t.Fatalf("snapfetchargs roundtrip: got (%d, %d, %+v, %v) want (%d, %d, %+v)", c, sn, s, err, client, snap, seg)
		}
		c, d, fid, bb, sn, err := DecodeSnapScanStartArgs(AppendSnapScanStartArgs(nil, client, db, fileID, batch, snap))
		if err != nil || c != client || d != db || fid != fileID || bb != batch || sn != snap {
			t.Fatalf("snapscanstartargs roundtrip failed: %v", err)
		}
	})
}
