// Package proto defines the wire types and the service interface shared by
// BeSS servers, node servers, and client sessions (paper §3). Keeping them
// in one package lets the same client code run against a remote server over
// RPC, a local node server, or a server linked into the same process (the
// "open server" configuration).
package proto

import (
	"bess/internal/oid"
	"bess/internal/segment"
)

// SegKey identifies an object segment by its immovable slotted segment.
type SegKey struct {
	Area  uint32
	Start int64
}

// LockMode mirrors lock.Mode on the wire.
type LockMode uint8

// SegImage is a segment's full state shipped at commit: the encoded slotted
// segment (with header + slots), the overflow image, and the data segment
// bytes.
type SegImage struct {
	Seg      SegKey
	Slotted  []byte
	Overflow []byte
	Data     []byte
}

// TypeInfo mirrors segment.TypeDesc on the wire.
type TypeInfo struct {
	ID         uint32
	Name       string
	Size       int
	RefOffsets []int
}

// ToDesc converts to the segment-layer descriptor.
func (t TypeInfo) ToDesc() segment.TypeDesc {
	return segment.TypeDesc{
		ID:         segment.TypeID(t.ID),
		Name:       t.Name,
		Size:       t.Size,
		RefOffsets: append([]int(nil), t.RefOffsets...),
	}
}

// FromDesc converts from the segment-layer descriptor.
func FromDesc(d *segment.TypeDesc) TypeInfo {
	return TypeInfo{
		ID:         uint32(d.ID),
		Name:       d.Name,
		Size:       d.Size,
		RefOffsets: append([]int(nil), d.RefOffsets...),
	}
}

// Conn is the service surface a client session consumes. Implementations:
// server.Server (direct, "open server"), client.Remote (RPC), and
// nodeserver.NodeServer (local cache + RPC upstream).
type Conn interface {
	// Hello registers the caller and returns its client id.
	Hello(name string) (uint32, error)
	// OpenDB opens (or creates, if create) a database by name.
	OpenDB(name string, create bool) (db uint32, host uint16, err error)
	// NewTx allocates a transaction id valid on this connection.
	NewTx() (uint64, error)
	// RegisterType registers (idempotently) a type descriptor for db.
	RegisterType(db uint32, t TypeInfo) (TypeInfo, error)
	// Types lists the registered types of db.
	Types(db uint32) ([]TypeInfo, error)
	// AddArea attaches one more storage area to db (multifile growth).
	AddArea(db uint32) (uint32, error)
	// NewFileID allocates a fresh BeSS file id in db.
	NewFileID(db uint32) (uint32, error)
	// CreateSegment allocates a fresh object segment in db. areaHint picks
	// the db area by index (-1 = first), letting multifiles spread their
	// segments over areas.
	CreateSegment(db uint32, fileID uint32, slottedPages, dataPages, areaHint int) (SegKey, error)
	// SegInfo returns the slotted size of seg in pages.
	SegInfo(seg SegKey) (slottedPages int, err error)
	// FetchSlotted returns the encoded slotted image and overflow image.
	FetchSlotted(client uint32, seg SegKey) (slotted, overflow []byte, err error)
	// FetchData returns the data segment image.
	FetchData(client uint32, seg SegKey) ([]byte, error)
	// FetchSeg returns the slotted, overflow, and data images in one round
	// trip — the combined fetch a cold segment touch uses instead of a
	// FetchSlotted/FetchData pair.
	FetchSeg(client uint32, seg SegKey) (slotted, overflow, data []byte, err error)
	// FetchLarge returns the content of a transparent large object.
	FetchLarge(client uint32, seg SegKey, slot int) ([]byte, error)
	// Resolve maps a 48-bit header offset to its segment and slot.
	Resolve(db uint32, headerOff uint64) (SegKey, int, error)
	// Lock acquires mode on seg for tx, driving callbacks to other clients
	// caching it.
	Lock(client uint32, tx uint64, seg SegKey, mode LockMode) error
	// LockObject acquires an object-level lock (slot granularity) — the
	// software-based finer-granularity locking of §2.3/[27]. The owning
	// segment gets the matching intention lock.
	LockObject(client uint32, tx uint64, seg SegKey, slot int, mode LockMode) error
	// Commit logs, applies, and commits tx's segment images.
	Commit(client uint32, tx uint64, segs []SegImage) error
	// Abort rolls tx back and releases its locks.
	Abort(client uint32, tx uint64) error
	// SegmentsOf lists the segments of a file in db (scans).
	SegmentsOf(db uint32, fileID uint32) ([]SegKey, error)
	// Released tells the server the client dropped its cached copy of seg.
	Released(client uint32, seg SegKey) error
	// CreateLarge stores a transparent (≤64KB) large object server-side:
	// content goes to freshly allocated pages and a descriptor slot is
	// added to seg. Other clients' cached copies of seg are called back.
	CreateLarge(client uint32, tx uint64, seg SegKey, typ uint32, content []byte) (slot int, err error)
	// Raw run operations back the very-large-object tree (largeobj.Store)
	// over the connection.
	AllocRun(db uint32, nPages int) (area uint32, start int64, granted int, err error)
	FreeRun(db uint32, area uint32, start int64) error
	ReadRun(db uint32, area uint32, start int64, nPages int) ([]byte, error)
	WriteRun(db uint32, area uint32, start int64, data []byte) error
	// Prepare and Decide are the 2PC participant surface for distributed
	// transactions coordinated by a client or another server.
	Prepare(client uint32, tx uint64, segs []SegImage) error
	Decide(tx uint64, commit bool) error
	// SnapOpen opens a read-only snapshot for the client and returns its id
	// and version stamp (the commit LSN it observes). Snapshot reads take no
	// locks and never block writers (DESIGN.md §7).
	SnapOpen(client uint32) (snap uint64, stamp uint64, err error)
	// SnapClose releases a snapshot, unpinning its stamp from version GC.
	SnapClose(client uint32, snap uint64) error
	// SnapFetchSeg returns the segment's image as of the snapshot's stamp:
	// a retained version, the current image if unchanged, or a WAL
	// reconstruction. No callback registration, no locks.
	SnapFetchSeg(client uint32, snap uint64, seg SegKey) (slotted, overflow, data []byte, err error)
	// Name directory operations (root objects).
	NameBind(db uint32, name string, o oid.OID) error
	NameLookup(db uint32, name string) (oid.OID, error)
	NameUnbind(db uint32, name string) error
	// NameRemoveOID enforces referential integrity when a root object is
	// deleted: its name binding goes with it.
	NameRemoveOID(db uint32, o oid.OID) error
}

// Lock modes on the wire (mirror lock package values).
const (
	LockNone LockMode = iota
	LockIS
	LockIX
	LockS
	LockSIX
	LockX
)

// --- RPC arg/reply structs (exported for gob) ---

// HelloArgs introduces a client.
type HelloArgs struct{ Name string }

// HelloReply carries the assigned client id.
type HelloReply struct{ Client uint32 }

// OpenDBArgs requests a database open.
type OpenDBArgs struct {
	Name   string
	Create bool
}

// OpenDBReply returns the database id and host number.
type OpenDBReply struct {
	DB   uint32
	Host uint16
}

// NewTxArgs requests a transaction id.
type NewTxArgs struct{ Client uint32 }

// NewTxReply carries it.
type NewTxReply struct{ Tx uint64 }

// RegisterTypeArgs registers a type.
type RegisterTypeArgs struct {
	DB   uint32
	Info TypeInfo
}

// RegisterTypeReply returns the canonical descriptor.
type RegisterTypeReply struct{ Info TypeInfo }

// TypesArgs lists types.
type TypesArgs struct{ DB uint32 }

// TypesReply carries them.
type TypesReply struct{ Infos []TypeInfo }

// CreateSegmentArgs allocates an object segment.
type CreateSegmentArgs struct {
	DB           uint32
	FileID       uint32
	SlottedPages int
	DataPages    int
	AreaHint     int
}

// AddAreaArgs attaches a storage area to a database.
type AddAreaArgs struct{ DB uint32 }

// AddAreaReply names the new area.
type AddAreaReply struct{ Area uint32 }

// NewFileIDArgs allocates a file id.
type NewFileIDArgs struct{ DB uint32 }

// NewFileIDReply carries it.
type NewFileIDReply struct{ File uint32 }

// CreateLargeArgs stores a transparent large object.
type CreateLargeArgs struct {
	Client  uint32
	Tx      uint64
	Seg     SegKey
	Type    uint32
	Content []byte
}

// CreateLargeReply names the new slot.
type CreateLargeReply struct{ Slot int }

// AllocRunArgs allocates a raw page run.
type AllocRunArgs struct {
	DB     uint32
	NPages int
}

// AllocRunReply names the run.
type AllocRunReply struct {
	Area    uint32
	Start   int64
	Granted int
}

// RunArgs addresses a raw page run.
type RunArgs struct {
	DB     uint32
	Area   uint32
	Start  int64
	NPages int
	Data   []byte
}

// RunReply carries run bytes.
type RunReply struct{ Data []byte }

// CreateSegmentReply names the new segment.
type CreateSegmentReply struct{ Seg SegKey }

// SegInfoArgs asks for slotted geometry.
type SegInfoArgs struct{ Seg SegKey }

// SegInfoReply carries it.
type SegInfoReply struct{ SlottedPages int }

// FetchSlottedArgs fetches control structures.
type FetchSlottedArgs struct {
	Client uint32
	Seg    SegKey
}

// FetchSlottedReply carries slotted + overflow images.
type FetchSlottedReply struct{ Slotted, Overflow []byte }

// FetchDataArgs fetches a data segment.
type FetchDataArgs struct {
	Client uint32
	Seg    SegKey
}

// FetchDataReply carries the bytes.
type FetchDataReply struct{ Data []byte }

// FetchLargeArgs fetches a transparent large object.
type FetchLargeArgs struct {
	Client uint32
	Seg    SegKey
	Slot   int
}

// FetchLargeReply carries the bytes.
type FetchLargeReply struct{ Data []byte }

// ResolveArgs resolves a header offset.
type ResolveArgs struct {
	DB        uint32
	HeaderOff uint64
}

// ResolveReply names the slot.
type ResolveReply struct {
	Seg  SegKey
	Slot int
}

// LockArgs requests a segment lock.
type LockArgs struct {
	Client uint32
	Tx     uint64
	Seg    SegKey
	Mode   LockMode
}

// LockObjectArgs requests an object-level lock.
type LockObjectArgs struct {
	Client uint32
	Tx     uint64
	Seg    SegKey
	Slot   int
	Mode   LockMode
}

// CommitArgs ships the transaction's dirty segments.
type CommitArgs struct {
	Client uint32
	Tx     uint64
	Segs   []SegImage
}

// AbortArgs aborts a transaction.
type AbortArgs struct {
	Client uint32
	Tx     uint64
}

// SegmentsOfArgs lists a file's segments.
type SegmentsOfArgs struct {
	DB     uint32
	FileID uint32
}

// SegmentsOfReply carries them.
type SegmentsOfReply struct{ Segs []SegKey }

// ReleasedArgs reports a dropped cached copy.
type ReleasedArgs struct {
	Client uint32
	Seg    SegKey
}

// NameBindArgs binds a root-object name.
type NameBindArgs struct {
	DB   uint32
	Name string
	OID  [12]byte
}

// NameLookupArgs resolves a name.
type NameLookupArgs struct {
	DB   uint32
	Name string
}

// NameLookupReply carries the OID.
type NameLookupReply struct{ OID [12]byte }

// NameUnbindArgs removes a name.
type NameUnbindArgs struct {
	DB   uint32
	Name string
}

// NameRemoveOIDArgs removes the name bound to an OID (object deletion).
type NameRemoveOIDArgs struct {
	DB  uint32
	OID [12]byte
}

// CallbackArgs is the server→client revocation request: drop the cached
// copy of Seg (callback locking, §3).
type CallbackArgs struct{ Seg SegKey }

// CallbackReply reports whether the client complied; Refused means a live
// transaction is using the copy and the requester must wait.
type CallbackReply struct{ Refused bool }

// Empty is the empty reply.
type Empty struct{}

// SnapOpenArgs opens a snapshot.
type SnapOpenArgs struct{ Client uint32 }

// SnapOpenReply names the snapshot and its version stamp.
type SnapOpenReply struct {
	Snap  uint64
	Stamp uint64
}

// SnapCloseArgs releases a snapshot.
type SnapCloseArgs struct {
	Client uint32
	Snap   uint64
}

// SnapFetchArgs fetches a segment image as of a snapshot's stamp.
type SnapFetchArgs struct {
	Client uint32
	Snap   uint64
	Seg    SegKey
}

// PrepareArgs is the 2PC vote request for a distributed branch.
type PrepareArgs struct {
	Client uint32
	Tx     uint64
	Segs   []SegImage
}

// DecideArgs delivers the 2PC decision.
type DecideArgs struct {
	Tx     uint64
	Commit bool
}
