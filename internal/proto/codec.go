package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary SegImage codec.
//
// gob is convenient over net/rpc but is neither stable across type changes
// nor self-validating, which makes it a poor fit for bytes that outlive a
// single process pair (shipped logs, archived commit images, cross-version
// peers). This codec is the canonical, versioned wire form of one commit
// image: fixed big-endian header, three length-prefixed sections, no
// trailing bytes. Every length is bounds-checked against the remaining
// input before anything is allocated, so a corrupt prefix cannot drive a
// huge allocation. The encoding is canonical: a successful decode always
// re-encodes to the identical bytes.
const (
	segImageMagic   uint16 = 0xB5E9
	segImageVersion uint8  = 1
)

// ErrBadImage reports bytes that are not a valid SegImage encoding.
var ErrBadImage = errors.New("proto: bad segment image encoding")

// segImageSize returns the exact encoded length of s: fixed header plus
// three length-prefixed sections.
func segImageSize(s *SegImage) int {
	return 2 + 1 + 4 + 8 + 3*4 + len(s.Slotted) + len(s.Overflow) + len(s.Data)
}

// EncodeSegImage returns the binary encoding of s in a fresh exactly-sized
// buffer — the FetchSeg/SnapFetchSeg reply body.
//
//bess:hotpath
func EncodeSegImage(s *SegImage) []byte {
	//bess:hotpath ignore=one exactly-sized reply buffer per fetch; the rpc layer takes ownership of it as the reply body
	b := make([]byte, 0, segImageSize(s))
	return AppendSegImage(b, s)
}

// AppendSegImage appends the binary encoding of s onto b and returns the
// extended slice. This is the allocation-free form: the scan push path
// encodes straight into a pooled batch buffer instead of round-tripping
// through a fresh EncodeSegImage slice per image.
//
//bess:hotpath
func AppendSegImage(b []byte, s *SegImage) []byte {
	b = binary.BigEndian.AppendUint16(b, segImageMagic)
	b = append(b, segImageVersion)
	b = binary.BigEndian.AppendUint32(b, s.Seg.Area)
	b = binary.BigEndian.AppendUint64(b, uint64(s.Seg.Start))
	for _, sec := range [][]byte{s.Slotted, s.Overflow, s.Data} {
		b = binary.BigEndian.AppendUint32(b, uint32(len(sec)))
		b = append(b, sec...)
	}
	return b
}

// DecodeSegImage parses bytes produced by EncodeSegImage. Zero-length
// sections decode to nil. The input must be exactly one image: trailing
// bytes are an error.
//
//bess:hotpath
func DecodeSegImage(b []byte) (*SegImage, error) {
	const hdr = 2 + 1 + 4 + 8
	if len(b) < hdr {
		return nil, ErrBadImage
	}
	if binary.BigEndian.Uint16(b[0:2]) != segImageMagic {
		return nil, ErrBadImage
	}
	if b[2] != segImageVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadImage, b[2])
	}
	s := &SegImage{Seg: SegKey{
		Area:  binary.BigEndian.Uint32(b[3:7]),
		Start: int64(binary.BigEndian.Uint64(b[7:15])),
	}}
	rest := b[hdr:]
	for _, dst := range []*[]byte{&s.Slotted, &s.Overflow, &s.Data} {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated section length", ErrBadImage)
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: section length %d exceeds %d remaining bytes", ErrBadImage, n, len(rest))
		}
		if n > 0 {
			//bess:hotpath ignore=decoded sections must outlive the rpc frame buffer; one owned copy per section is the decode contract
			*dst = append([]byte(nil), rest[:n]...)
			rest = rest[n:]
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadImage, len(rest))
	}
	return s, nil
}
