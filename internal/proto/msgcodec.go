package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Per-message binary codecs for the hot RPC methods.
//
// The cold methods (schema churn, once-per-session) stay on gob; the methods
// on a transaction's critical path — fetches, locks, commit, callback — get
// hand-written Append…/Decode… pairs in the same style as the SegImage
// codec: big-endian, length-prefixed variable sections, every length
// bounds-checked before allocation, no trailing bytes, canonical (a
// successful decode re-encodes to identical bytes). The Append… functions
// extend a caller-owned slice so the rpc layer can build frames in pooled
// buffers without intermediate allocations.
//
// Replies that are a single byte string (FetchData, FetchLarge) travel as
// the raw frame body with no wrapper at all; FetchSeg's reply reuses the
// SegImage codec.
//
// bess-vet's codecsym analyzer checks every Append*/Encode*/Decode* pair in
// this package for write/read symmetry (field count, order, width):
//
//bess:codecsym

// ErrBadMessage reports bytes that are not a valid hot-method encoding.
var ErrBadMessage = errors.New("proto: bad message encoding")

func appendSegKey(b []byte, seg SegKey) []byte {
	b = binary.BigEndian.AppendUint32(b, seg.Area)
	return binary.BigEndian.AppendUint64(b, uint64(seg.Start))
}

func decodeSegKey(b []byte) (SegKey, []byte, error) {
	if len(b) < 12 {
		return SegKey{}, nil, fmt.Errorf("%w: truncated segment key", ErrBadMessage)
	}
	seg := SegKey{
		Area:  binary.BigEndian.Uint32(b[0:4]),
		Start: int64(binary.BigEndian.Uint64(b[4:12])),
	}
	return seg, b[12:], nil
}

//bess:hotpath
func appendSection(b, sec []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(sec)))
	return append(b, sec...)
}

func decodeSection(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated section length", ErrBadMessage)
	}
	n := binary.BigEndian.Uint32(b[0:4])
	rest := b[4:]
	if uint64(n) > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: section length %d exceeds %d remaining bytes", ErrBadMessage, n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	return append([]byte(nil), rest[:n]...), rest[n:], nil
}

func wantDone(rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return nil
}

// AppendFetchArgs encodes (client, seg) — the argument shape shared by
// FetchSlotted, FetchData, and FetchSeg.
func AppendFetchArgs(b []byte, client uint32, seg SegKey) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	return appendSegKey(b, seg)
}

// DecodeFetchArgs parses AppendFetchArgs bytes.
func DecodeFetchArgs(b []byte) (client uint32, seg SegKey, err error) {
	if len(b) < 4 {
		return 0, SegKey{}, fmt.Errorf("%w: truncated client id", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	seg, rest, err := decodeSegKey(b[4:])
	if err != nil {
		return 0, SegKey{}, err
	}
	return client, seg, wantDone(rest)
}

// AppendFetchLargeArgs encodes (client, seg, slot).
func AppendFetchLargeArgs(b []byte, client uint32, seg SegKey, slot int) []byte {
	b = AppendFetchArgs(b, client, seg)
	return binary.BigEndian.AppendUint32(b, uint32(slot))
}

// DecodeFetchLargeArgs parses AppendFetchLargeArgs bytes.
func DecodeFetchLargeArgs(b []byte) (client uint32, seg SegKey, slot int, err error) {
	if len(b) < 4+12+4 {
		return 0, SegKey{}, 0, fmt.Errorf("%w: truncated fetch-large args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	seg, rest, err := decodeSegKey(b[4:])
	if err != nil {
		return 0, SegKey{}, 0, err
	}
	slot = int(int32(binary.BigEndian.Uint32(rest[0:4])))
	return client, seg, slot, wantDone(rest[4:])
}

// AppendFetchSlottedReply encodes (slotted, overflow) as two length-prefixed
// sections.
//
//bess:hotpath
func AppendFetchSlottedReply(b, slotted, overflow []byte) []byte {
	b = appendSection(b, slotted)
	return appendSection(b, overflow)
}

// DecodeFetchSlottedReply parses AppendFetchSlottedReply bytes.
func DecodeFetchSlottedReply(b []byte) (slotted, overflow []byte, err error) {
	slotted, rest, err := decodeSection(b)
	if err != nil {
		return nil, nil, err
	}
	overflow, rest, err = decodeSection(rest)
	if err != nil {
		return nil, nil, err
	}
	return slotted, overflow, wantDone(rest)
}

// AppendLockArgs encodes (client, tx, seg, mode).
func AppendLockArgs(b []byte, client uint32, tx uint64, seg SegKey, mode LockMode) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	b = binary.BigEndian.AppendUint64(b, tx)
	b = appendSegKey(b, seg)
	return append(b, byte(mode))
}

// DecodeLockArgs parses AppendLockArgs bytes.
func DecodeLockArgs(b []byte) (client uint32, tx uint64, seg SegKey, mode LockMode, err error) {
	if len(b) < 4+8+12+1 {
		return 0, 0, SegKey{}, 0, fmt.Errorf("%w: truncated lock args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	tx = binary.BigEndian.Uint64(b[4:12])
	seg, rest, err := decodeSegKey(b[12:])
	if err != nil {
		return 0, 0, SegKey{}, 0, err
	}
	mode = LockMode(rest[0])
	return client, tx, seg, mode, wantDone(rest[1:])
}

// AppendLockObjectArgs encodes (client, tx, seg, slot, mode).
func AppendLockObjectArgs(b []byte, client uint32, tx uint64, seg SegKey, slot int, mode LockMode) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	b = binary.BigEndian.AppendUint64(b, tx)
	b = appendSegKey(b, seg)
	b = binary.BigEndian.AppendUint32(b, uint32(slot))
	return append(b, byte(mode))
}

// DecodeLockObjectArgs parses AppendLockObjectArgs bytes.
func DecodeLockObjectArgs(b []byte) (client uint32, tx uint64, seg SegKey, slot int, mode LockMode, err error) {
	if len(b) < 4+8+12+4+1 {
		return 0, 0, SegKey{}, 0, 0, fmt.Errorf("%w: truncated lock-object args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	tx = binary.BigEndian.Uint64(b[4:12])
	seg, rest, err := decodeSegKey(b[12:])
	if err != nil {
		return 0, 0, SegKey{}, 0, 0, err
	}
	slot = int(int32(binary.BigEndian.Uint32(rest[0:4])))
	mode = LockMode(rest[4])
	return client, tx, seg, slot, mode, wantDone(rest[5:])
}

// AppendCommitArgs encodes (client, tx, segs): a count followed by that many
// length-prefixed SegImage encodings. Shared by Commit and Prepare.
func AppendCommitArgs(b []byte, client uint32, tx uint64, segs []SegImage) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	b = binary.BigEndian.AppendUint64(b, tx)
	b = binary.BigEndian.AppendUint32(b, uint32(len(segs)))
	for i := range segs {
		b = appendSection(b, EncodeSegImage(&segs[i]))
	}
	return b
}

// DecodeCommitArgs parses AppendCommitArgs bytes.
func DecodeCommitArgs(b []byte) (client uint32, tx uint64, segs []SegImage, err error) {
	if len(b) < 4+8+4 {
		return 0, 0, nil, fmt.Errorf("%w: truncated commit args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	tx = binary.BigEndian.Uint64(b[4:12])
	n := binary.BigEndian.Uint32(b[12:16])
	rest := b[16:]
	// Each image costs at least a 4-byte section prefix; reject counts the
	// remaining bytes cannot possibly satisfy before allocating the slice.
	if uint64(n)*4 > uint64(len(rest)) {
		return 0, 0, nil, fmt.Errorf("%w: image count %d exceeds remaining bytes", ErrBadMessage, n)
	}
	segs = make([]SegImage, 0, n)
	for i := uint32(0); i < n; i++ {
		var enc []byte
		enc, rest, err = decodeSection(rest)
		if err != nil {
			return 0, 0, nil, err
		}
		img, err := DecodeSegImage(enc)
		if err != nil {
			return 0, 0, nil, err
		}
		segs = append(segs, *img)
	}
	return client, tx, segs, wantDone(rest)
}

// AppendCallbackArgs encodes the server→client revocation request.
func AppendCallbackArgs(b []byte, seg SegKey) []byte {
	return appendSegKey(b, seg)
}

// DecodeCallbackArgs parses AppendCallbackArgs bytes.
func DecodeCallbackArgs(b []byte) (SegKey, error) {
	seg, rest, err := decodeSegKey(b)
	if err != nil {
		return SegKey{}, err
	}
	return seg, wantDone(rest)
}

// AppendCallbackReply encodes the client's verdict.
func AppendCallbackReply(b []byte, refused bool) []byte {
	if refused {
		return append(b, 1)
	}
	return append(b, 0)
}

// DecodeCallbackReply parses AppendCallbackReply bytes.
func DecodeCallbackReply(b []byte) (refused bool, err error) {
	if len(b) != 1 || b[0] > 1 {
		return false, fmt.Errorf("%w: bad callback reply", ErrBadMessage)
	}
	return b[0] == 1, nil
}
