package proto

import (
	"bytes"
	"errors"
	"testing"
)

func TestFetchArgsRoundTrip(t *testing.T) {
	b := AppendFetchArgs(nil, 7, SegKey{Area: 3, Start: 1024})
	client, seg, err := DecodeFetchArgs(b)
	if err != nil || client != 7 || seg != (SegKey{Area: 3, Start: 1024}) {
		t.Fatalf("client=%d seg=%+v err=%v", client, seg, err)
	}
	if _, _, err := DecodeFetchArgs(b[:len(b)-1]); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("truncated err = %v", err)
	}
	if _, _, err := DecodeFetchArgs(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing err = %v", err)
	}
}

func TestFetchLargeArgsRoundTrip(t *testing.T) {
	b := AppendFetchLargeArgs(nil, 9, SegKey{Area: 1, Start: 8}, 42)
	client, seg, slot, err := DecodeFetchLargeArgs(b)
	if err != nil || client != 9 || slot != 42 || seg != (SegKey{Area: 1, Start: 8}) {
		t.Fatalf("client=%d seg=%+v slot=%d err=%v", client, seg, slot, err)
	}
}

func TestFetchSlottedReplyRoundTrip(t *testing.T) {
	sl, ov := []byte("slotted-bytes"), []byte("overflow")
	b := AppendFetchSlottedReply(nil, sl, ov)
	gsl, gov, err := DecodeFetchSlottedReply(b)
	if err != nil || !bytes.Equal(gsl, sl) || !bytes.Equal(gov, ov) {
		t.Fatalf("sl=%q ov=%q err=%v", gsl, gov, err)
	}
	// Empty sections decode to nil.
	b = AppendFetchSlottedReply(nil, nil, nil)
	gsl, gov, err = DecodeFetchSlottedReply(b)
	if err != nil || gsl != nil || gov != nil {
		t.Fatalf("empty: sl=%v ov=%v err=%v", gsl, gov, err)
	}
}

func TestLockArgsRoundTrip(t *testing.T) {
	b := AppendLockArgs(nil, 2, 77, SegKey{Area: 5, Start: 64}, LockX)
	client, tx, seg, mode, err := DecodeLockArgs(b)
	if err != nil || client != 2 || tx != 77 || mode != LockX || seg != (SegKey{Area: 5, Start: 64}) {
		t.Fatalf("client=%d tx=%d seg=%+v mode=%d err=%v", client, tx, seg, mode, err)
	}
}

func TestLockObjectArgsRoundTrip(t *testing.T) {
	b := AppendLockObjectArgs(nil, 2, 77, SegKey{Area: 5, Start: 64}, 13, LockS)
	client, tx, seg, slot, mode, err := DecodeLockObjectArgs(b)
	if err != nil || client != 2 || tx != 77 || slot != 13 || mode != LockS || seg != (SegKey{Area: 5, Start: 64}) {
		t.Fatalf("client=%d tx=%d seg=%+v slot=%d mode=%d err=%v", client, tx, seg, slot, mode, err)
	}
}

func TestCommitArgsRoundTrip(t *testing.T) {
	segs := []SegImage{
		{Seg: SegKey{Area: 1, Start: 16}, Slotted: []byte("sl1"), Overflow: nil, Data: []byte("d1")},
		{Seg: SegKey{Area: 2, Start: 32}, Slotted: []byte("sl2"), Overflow: []byte("ov2"), Data: nil},
	}
	b := AppendCommitArgs(nil, 4, 99, segs)
	client, tx, got, err := DecodeCommitArgs(b)
	if err != nil || client != 4 || tx != 99 || len(got) != 2 {
		t.Fatalf("client=%d tx=%d n=%d err=%v", client, tx, len(got), err)
	}
	for i := range segs {
		if got[i].Seg != segs[i].Seg ||
			!bytes.Equal(got[i].Slotted, segs[i].Slotted) ||
			!bytes.Equal(got[i].Overflow, segs[i].Overflow) ||
			!bytes.Equal(got[i].Data, segs[i].Data) {
			t.Fatalf("image %d = %+v, want %+v", i, got[i], segs[i])
		}
	}
	// Empty commit (no images) is legal — aborted-write transactions ship it.
	client, tx, got, err = DecodeCommitArgs(AppendCommitArgs(nil, 1, 2, nil))
	if err != nil || client != 1 || tx != 2 || len(got) != 0 {
		t.Fatalf("empty commit: %d %d %v %v", client, tx, got, err)
	}
	// A hostile image count cannot drive a huge allocation.
	bad := AppendCommitArgs(nil, 1, 2, nil)
	bad[12], bad[13], bad[14], bad[15] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, _, err := DecodeCommitArgs(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("hostile count err = %v", err)
	}
}

func TestCallbackRoundTrip(t *testing.T) {
	seg, err := DecodeCallbackArgs(AppendCallbackArgs(nil, SegKey{Area: 8, Start: 4096}))
	if err != nil || seg != (SegKey{Area: 8, Start: 4096}) {
		t.Fatalf("seg=%+v err=%v", seg, err)
	}
	for _, refused := range []bool{true, false} {
		got, err := DecodeCallbackReply(AppendCallbackReply(nil, refused))
		if err != nil || got != refused {
			t.Fatalf("refused=%v got=%v err=%v", refused, got, err)
		}
	}
	if _, err := DecodeCallbackReply([]byte{2}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad reply err = %v", err)
	}
}
