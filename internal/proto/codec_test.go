package proto

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestSegImageRoundtrip(t *testing.T) {
	imgs := []*SegImage{
		{Seg: SegKey{Area: 1, Start: 0}},
		{Seg: SegKey{Area: 9, Start: -4096}, Slotted: []byte("s"), Overflow: []byte("ov"), Data: []byte("data")},
		{Seg: SegKey{Area: 0xFFFFFFFF, Start: 1 << 40}, Data: make([]byte, 4096)},
	}
	for _, in := range imgs {
		out, err := DecodeSegImage(EncodeSegImage(in))
		if err != nil {
			t.Fatalf("decode(%+v): %v", in.Seg, err)
		}
		if !imagesEqual(in, out) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", in, out)
		}
	}
}

func TestSegImageDecodeRejects(t *testing.T) {
	valid := EncodeSegImage(&SegImage{Seg: SegKey{Area: 2, Start: 8}, Data: []byte("abc")})

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	badVersion := append([]byte(nil), valid...)
	badVersion[2] = 99
	trailing := append(append([]byte(nil), valid...), 0)
	oversized := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(oversized[15+4+4:], 1<<30) // Data length > remaining

	cases := map[string][]byte{
		"empty":       nil,
		"short":       valid[:10],
		"bad magic":   badMagic,
		"bad version": badVersion,
		"truncated":   valid[:len(valid)-1],
		"trailing":    trailing,
		"oversized":   oversized,
	}
	for name, b := range cases {
		if _, err := DecodeSegImage(b); !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: err = %v, want ErrBadImage", name, err)
		}
	}
}
