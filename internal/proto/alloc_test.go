package proto

import "testing"

// Allocation budgets for the hot codecs (//bess:hotpath, DESIGN.md §4f).
// These pin what the hotalloc fixes established: the append-style encoders
// allocate nothing when the destination has capacity, and the decoders
// allocate exactly the owned copies their contract requires.

func testImage() SegImage {
	return SegImage{
		Seg:      SegKey{Area: 3, Start: 64},
		Slotted:  make([]byte, 256),
		Overflow: make([]byte, 64),
		Data:     make([]byte, 512),
	}
}

func TestAppendSegImageAllocs(t *testing.T) {
	img := testImage()
	buf := make([]byte, 0, segImageSize(&img))
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendSegImage(buf[:0], &img)
	}); n != 0 {
		t.Fatalf("AppendSegImage: %v allocs/op into a sized buffer, want 0", n)
	}
}

func TestEncodeSegImageAllocs(t *testing.T) {
	img := testImage()
	var sink []byte
	if n := testing.AllocsPerRun(200, func() {
		sink = EncodeSegImage(&img)
	}); n != 1 {
		t.Fatalf("EncodeSegImage: %v allocs/op, want exactly the one reply buffer", n)
	}
	_ = sink
}

func TestDecodeSegImageAllocs(t *testing.T) {
	img := testImage()
	enc := EncodeSegImage(&img)
	var sink *SegImage
	if n := testing.AllocsPerRun(200, func() {
		s, err := DecodeSegImage(enc)
		if err != nil {
			t.Fatal(err)
		}
		sink = s
	}); n > 4 {
		t.Fatalf("DecodeSegImage: %v allocs/op, budget is 4 (struct + three owned sections)", n)
	}
	_ = sink
}

func TestAppendScanBatchAllocs(t *testing.T) {
	imgs := []SegImage{testImage(), testImage(), testImage()}
	sb := ScanBatch{Seq: 9, Images: imgs}
	need := 4 + 1 + 4 + 4
	for i := range imgs {
		need += 4 + segImageSize(&imgs[i])
	}
	buf := make([]byte, 0, need)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendScanBatch(buf[:0], &sb)
	}); n != 0 {
		t.Fatalf("AppendScanBatch: %v allocs/op into a sized buffer, want 0 (images encode in place)", n)
	}
	// The wire form must match the per-image EncodeSegImage sections the
	// decoder expects.
	dec, err := DecodeScanBatch(buf)
	if err != nil {
		t.Fatalf("DecodeScanBatch after in-place encode: %v", err)
	}
	if len(dec.Images) != len(imgs) || dec.Seq != sb.Seq {
		t.Fatalf("round trip mismatch: got %d images seq %d", len(dec.Images), dec.Seq)
	}
}

func TestAppendFetchSlottedReplyAllocs(t *testing.T) {
	slotted, overflow := make([]byte, 512), make([]byte, 128)
	buf := make([]byte, 0, 8+len(slotted)+len(overflow))
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendFetchSlottedReply(buf[:0], slotted, overflow)
	}); n != 0 {
		t.Fatalf("AppendFetchSlottedReply: %v allocs/op into a sized buffer, want 0", n)
	}
}
