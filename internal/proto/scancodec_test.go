package proto

import (
	"bytes"
	"errors"
	"testing"
)

func TestScanStartArgsRoundTrip(t *testing.T) {
	b := AppendScanStartArgs(nil, 7, 2, 11, 256<<10)
	client, db, fileID, batch, err := DecodeScanStartArgs(b)
	if err != nil || client != 7 || db != 2 || fileID != 11 || batch != 256<<10 {
		t.Fatalf("client=%d db=%d file=%d batch=%d err=%v", client, db, fileID, batch, err)
	}
	if _, _, _, _, err := DecodeScanStartArgs(b[:len(b)-1]); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("truncated err = %v", err)
	}
	if _, _, _, _, err := DecodeScanStartArgs(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing err = %v", err)
	}
}

func TestScanStartReplyRoundTrip(t *testing.T) {
	plan := []ScanSeg{
		{Seg: SegKey{Area: 1, Start: 0}, SlottedPages: 1},
		{Seg: SegKey{Area: 1, Start: 4096}, SlottedPages: 3},
		{Seg: SegKey{Area: 9, Start: -1}, SlottedPages: 0},
	}
	b := AppendScanStartReply(nil, 42, plan)
	scan, got, err := DecodeScanStartReply(b)
	if err != nil || scan != 42 || len(got) != len(plan) {
		t.Fatalf("scan=%d n=%d err=%v", scan, len(got), err)
	}
	for i := range plan {
		if got[i] != plan[i] {
			t.Fatalf("plan[%d] = %+v, want %+v", i, got[i], plan[i])
		}
	}
	// An empty plan (file with no segments) is legal.
	scan, got, err = DecodeScanStartReply(AppendScanStartReply(nil, 9, nil))
	if err != nil || scan != 9 || len(got) != 0 {
		t.Fatalf("empty plan: scan=%d n=%d err=%v", scan, len(got), err)
	}
	// A hostile count must be rejected before allocation.
	hostile := append([]byte(nil), b[:8]...)
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, _, err := DecodeScanStartReply(hostile); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("hostile count err = %v", err)
	}
}

func TestScanBatchRoundTrip(t *testing.T) {
	in := &ScanBatch{
		Seq:  5,
		Last: true,
		Images: []SegImage{
			{Seg: SegKey{Area: 1, Start: 0}, Slotted: []byte("sl"), Overflow: []byte("ov"), Data: []byte("data")},
			{Seg: SegKey{Area: 2, Start: 8192}},
		},
	}
	b := AppendScanBatch(nil, in)
	got, err := DecodeScanBatch(b)
	if err != nil || got.Seq != in.Seq || got.Last != in.Last || got.Err != "" || len(got.Images) != 2 {
		t.Fatalf("got %+v err=%v", got, err)
	}
	for i := range in.Images {
		if !imagesEqual(&in.Images[i], &got.Images[i]) {
			t.Fatalf("image %d = %+v, want %+v", i, got.Images[i], in.Images[i])
		}
	}
	// Error batches carry the message and no images.
	eb := AppendScanBatch(nil, &ScanBatch{Seq: 1, Last: true, Err: "scan failed"})
	got, err = DecodeScanBatch(eb)
	if err != nil || got.Err != "scan failed" || !got.Last || len(got.Images) != 0 {
		t.Fatalf("error batch: %+v err=%v", got, err)
	}
	// A mangled last-flag byte must be rejected.
	bad := append([]byte(nil), b...)
	bad[4] = 2
	if _, err := DecodeScanBatch(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad flag err = %v", err)
	}
	// A hostile image count must be rejected before allocation.
	hostile := AppendScanBatch(nil, &ScanBatch{Seq: 0})
	hostile = hostile[:len(hostile)-4]
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeScanBatch(hostile); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("hostile count err = %v", err)
	}
}

func TestScanCtlRoundTrip(t *testing.T) {
	b := AppendScanCtl(nil, false, 1<<20)
	cancel, credit, err := DecodeScanCtl(b)
	if err != nil || cancel || credit != 1<<20 {
		t.Fatalf("cancel=%v credit=%d err=%v", cancel, credit, err)
	}
	cancel, credit, err = DecodeScanCtl(AppendScanCtl(nil, true, 0))
	if err != nil || !cancel || credit != 0 {
		t.Fatalf("cancel: cancel=%v credit=%d err=%v", cancel, credit, err)
	}
	bad := append([]byte(nil), b...)
	bad[0] = 7
	if _, _, err := DecodeScanCtl(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad op err = %v", err)
	}
	if _, _, err := DecodeScanCtl(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing err = %v", err)
	}
}

// TestScanBatchCanonical: encodings are byte-identical after a decode/encode
// cycle, so golden wire tests and dedup on raw frames stay valid.
func TestScanBatchCanonical(t *testing.T) {
	in := &ScanBatch{
		Seq: 3,
		Err: "",
		Images: []SegImage{
			{Seg: SegKey{Area: 4, Start: 12288}, Slotted: []byte("x"), Data: bytes.Repeat([]byte("y"), 100)},
		},
	}
	b := AppendScanBatch(nil, in)
	got, err := DecodeScanBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if re := AppendScanBatch(nil, got); !bytes.Equal(re, b) {
		t.Fatalf("re-encode differs:\n in: %x\nout: %x", b, re)
	}
}
