package proto

import (
	"bytes"
	"testing"
)

func sameBytes(a, b []byte) bool { return bytes.Equal(a, b) } // nil == empty

func imagesEqual(a, b *SegImage) bool {
	return a.Seg == b.Seg &&
		sameBytes(a.Slotted, b.Slotted) &&
		sameBytes(a.Overflow, b.Overflow) &&
		sameBytes(a.Data, b.Data)
}

// FuzzProtoDecode drives the SegImage codec with arbitrary bytes. Two
// properties: DecodeSegImage never panics and, when it succeeds, the image
// re-encodes to the identical wire bytes (the encoding is canonical); and
// any image built from the input roundtrips decode(encode(x)) == x.
func FuzzProtoDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a segment image"))
	f.Add(EncodeSegImage(&SegImage{Seg: SegKey{Area: 1, Start: 42}}))
	f.Add(EncodeSegImage(&SegImage{
		Seg:      SegKey{Area: 3, Start: -9},
		Slotted:  []byte("slotted bytes"),
		Overflow: []byte("o"),
		Data:     bytes.Repeat([]byte{0xAB}, 300),
	}))
	// Truncated section length and oversized section length.
	valid := EncodeSegImage(&SegImage{Seg: SegKey{Area: 7, Start: 1}, Data: []byte("xyz")})
	f.Add(valid[:len(valid)-2])
	f.Fuzz(func(t *testing.T, wire []byte) {
		if s, err := DecodeSegImage(wire); err == nil {
			enc := EncodeSegImage(s)
			if !bytes.Equal(enc, wire) {
				t.Fatalf("decode accepted a non-canonical encoding:\n in: %x\nout: %x", wire, enc)
			}
			s2, err := DecodeSegImage(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical bytes failed: %v", err)
			}
			if !imagesEqual(s, s2) {
				t.Fatalf("re-decode mismatch: %+v vs %+v", s, s2)
			}
		}
		// Structured roundtrip: carve an image out of the raw input.
		n := len(wire)
		x := &SegImage{
			Seg:      SegKey{Area: uint32(n), Start: int64(n)*7 - 3},
			Slotted:  wire[:n/3],
			Overflow: wire[n/3 : 2*n/3],
			Data:     wire[2*n/3:],
		}
		got, err := DecodeSegImage(EncodeSegImage(x))
		if err != nil {
			t.Fatalf("roundtrip decode failed: %v", err)
		}
		if !imagesEqual(x, got) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", x, got)
		}
	})
}
