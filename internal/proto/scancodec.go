package proto

import (
	"encoding/binary"
	"fmt"
)

// Codecs for the streaming scan protocol (DESIGN.md §6).
//
// A scan is opened with an ordinary request/reply (ScanStart) and then runs
// as two one-way streams sharing the scan id: the server pushes ScanData
// frames (each one a ScanBatch of segment images) and the client sends
// ScanCtl frames granting byte credits or cancelling. All four messages are
// hand-written in the msgcodec style: big-endian, bounds-checked,
// canonical, no trailing bytes.

// ScanSeg is one entry of a scan plan: the segment key plus its slotted
// geometry, so the prefetching client can reserve address space without a
// per-segment SegInfo round trip.
type ScanSeg struct {
	Seg          SegKey
	SlottedPages uint32
}

// ScanBatch is one pushed batch of segment images. Seq numbers batches from
// zero within a scan; Last marks the final batch. A non-empty Err reports a
// server-side scan failure (the batch carries no images in that case and is
// also the last one).
type ScanBatch struct {
	Seq    uint32
	Last   bool
	Err    string
	Images []SegImage
}

// AppendScanStartArgs encodes (client, db, fileID, batchBytes). batchBytes
// is the client's preferred batch granularity in bytes; zero lets the
// server choose.
func AppendScanStartArgs(b []byte, client, db, fileID, batchBytes uint32) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	b = binary.BigEndian.AppendUint32(b, db)
	b = binary.BigEndian.AppendUint32(b, fileID)
	return binary.BigEndian.AppendUint32(b, batchBytes)
}

// DecodeScanStartArgs parses AppendScanStartArgs bytes.
func DecodeScanStartArgs(b []byte) (client, db, fileID, batchBytes uint32, err error) {
	if len(b) < 16 {
		return 0, 0, 0, 0, fmt.Errorf("%w: truncated scan-start args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	db = binary.BigEndian.Uint32(b[4:8])
	fileID = binary.BigEndian.Uint32(b[8:12])
	batchBytes = binary.BigEndian.Uint32(b[12:16])
	return client, db, fileID, batchBytes, wantDone(b[16:])
}

// AppendScanStartReply encodes the scan id and the plan: the segment list
// the cursor will walk, in push order.
func AppendScanStartReply(b []byte, scan uint64, segs []ScanSeg) []byte {
	b = binary.BigEndian.AppendUint64(b, scan)
	b = binary.BigEndian.AppendUint32(b, uint32(len(segs)))
	for i := range segs {
		b = appendSegKey(b, segs[i].Seg)
		b = binary.BigEndian.AppendUint32(b, segs[i].SlottedPages)
	}
	return b
}

// DecodeScanStartReply parses AppendScanStartReply bytes.
func DecodeScanStartReply(b []byte) (scan uint64, segs []ScanSeg, err error) {
	if len(b) < 12 {
		return 0, nil, fmt.Errorf("%w: truncated scan-start reply", ErrBadMessage)
	}
	scan = binary.BigEndian.Uint64(b[0:8])
	n := binary.BigEndian.Uint32(b[8:12])
	rest := b[12:]
	// Each entry is exactly 16 bytes; reject hostile counts before
	// allocating.
	if uint64(n)*16 > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: scan plan count %d exceeds payload", ErrBadMessage, n)
	}
	segs = make([]ScanSeg, 0, n)
	for i := uint32(0); i < n; i++ {
		var e ScanSeg
		e.Seg, rest, err = decodeSegKey(rest)
		if err != nil {
			return 0, nil, err
		}
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("%w: truncated scan plan entry", ErrBadMessage)
		}
		e.SlottedPages = binary.BigEndian.Uint32(rest[0:4])
		rest = rest[4:]
		segs = append(segs, e)
	}
	return scan, segs, wantDone(rest)
}

// AppendScanBatch encodes one pushed batch: sequence number, last flag,
// error string, then each image as a length-prefixed SegImage section. It
// encodes every image directly onto b (the pooled batch buffer), so a
// steady-state scan allocates nothing per batch.
//
//bess:hotpath
func AppendScanBatch(b []byte, sb *ScanBatch) []byte {
	b = binary.BigEndian.AppendUint32(b, sb.Seq)
	if sb.Last {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(sb.Err)))
	b = append(b, sb.Err...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(sb.Images)))
	for i := range sb.Images {
		b = binary.BigEndian.AppendUint32(b, uint32(segImageSize(&sb.Images[i])))
		b = AppendSegImage(b, &sb.Images[i])
	}
	return b
}

// DecodeScanBatch parses AppendScanBatch bytes.
func DecodeScanBatch(b []byte) (*ScanBatch, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: truncated scan batch", ErrBadMessage)
	}
	sb := &ScanBatch{Seq: binary.BigEndian.Uint32(b[0:4])}
	if b[4] > 1 {
		return nil, fmt.Errorf("%w: bad last-batch flag %d", ErrBadMessage, b[4])
	}
	sb.Last = b[4] == 1
	emsg, rest, err := decodeSection(b[5:])
	if err != nil {
		return nil, err
	}
	sb.Err = string(emsg)
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated scan batch image count", ErrBadMessage)
	}
	n := binary.BigEndian.Uint32(rest[0:4])
	rest = rest[4:]
	// Every image section carries at least its 4-byte length prefix;
	// reject hostile counts before allocating.
	if uint64(n)*4 > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: scan batch image count %d exceeds payload", ErrBadMessage, n)
	}
	sb.Images = make([]SegImage, 0, n)
	for i := uint32(0); i < n; i++ {
		var sec []byte
		sec, rest, err = decodeSection(rest)
		if err != nil {
			return nil, err
		}
		img, err := DecodeSegImage(sec)
		if err != nil {
			return nil, err
		}
		sb.Images = append(sb.Images, *img)
	}
	return sb, wantDone(rest)
}

// AppendScanCtl encodes a flow-control frame: cancel aborts the scan,
// otherwise credit grants the server that many more bytes of push budget.
func AppendScanCtl(b []byte, cancel bool, credit uint64) []byte {
	if cancel {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return binary.BigEndian.AppendUint64(b, credit)
}

// DecodeScanCtl parses AppendScanCtl bytes.
func DecodeScanCtl(b []byte) (cancel bool, credit uint64, err error) {
	if len(b) < 9 {
		return false, 0, fmt.Errorf("%w: truncated scan ctl", ErrBadMessage)
	}
	if b[0] > 1 {
		return false, 0, fmt.Errorf("%w: bad scan ctl op %d", ErrBadMessage, b[0])
	}
	return b[0] == 1, binary.BigEndian.Uint64(b[1:9]), wantDone(b[9:])
}
