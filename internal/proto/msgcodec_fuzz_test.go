package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzMsgCodecRoundTrip drives every hot-method Append*/Decode* pair with
// arbitrary bytes. Two properties per pair: the decoder never panics and,
// when it accepts the input, re-encoding yields identical wire bytes (every
// encoding is canonical); and arguments carved from the raw input survive
// decode(encode(args)) == args.
func FuzzMsgCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("definitely not a hot-method message"))
	f.Add(AppendFetchArgs(nil, 7, SegKey{Area: 1, Start: 42}))
	f.Add(AppendFetchLargeArgs(nil, 9, SegKey{Area: 2, Start: -1}, 3))
	f.Add(AppendFetchSlottedReply(nil, []byte("slotted bytes"), []byte("ov")))
	f.Add(AppendLockArgs(nil, 1, 2, SegKey{Area: 3, Start: 4}, LockMode(1)))
	f.Add(AppendLockObjectArgs(nil, 1, 2, SegKey{Area: 3, Start: 4}, 5, LockMode(2)))
	f.Add(AppendCommitArgs(nil, 5, 6, []SegImage{
		{Seg: SegKey{Area: 1, Start: 2}, Slotted: []byte("s"), Data: []byte("data")},
	}))
	f.Add(AppendCallbackArgs(nil, SegKey{Area: 8, Start: 9}))
	f.Add(AppendCallbackReply(nil, true))
	f.Add(AppendSnapOpenArgs(nil, 7))
	f.Add(AppendSnapOpenReply(nil, 3, 1<<40))
	f.Add(AppendSnapCloseArgs(nil, 7, 3))
	f.Add(AppendSnapFetchArgs(nil, 7, 3, SegKey{Area: 1, Start: 8192}))
	f.Add(AppendSnapScanStartArgs(nil, 7, 1, 9, 256<<10, 3))
	// A commit frame cut mid-image: the count promises more than arrives.
	commit := AppendCommitArgs(nil, 1, 2, []SegImage{{Seg: SegKey{Area: 4, Start: 5}, Data: []byte("xyz")}})
	f.Add(commit[:len(commit)-3])

	f.Fuzz(func(t *testing.T, wire []byte) {
		// Property 1: no decoder panics, and every accepted input is the
		// canonical encoding of what it decoded to.
		if seg, rest, err := decodeSegKey(wire); err == nil {
			if got := append(appendSegKey(nil, seg), rest...); !bytes.Equal(got, wire) {
				t.Fatalf("segkey not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if sec, rest, err := decodeSection(wire); err == nil {
			if got := append(appendSection(nil, sec), rest...); !bytes.Equal(got, wire) {
				t.Fatalf("section not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, seg, err := DecodeFetchArgs(wire); err == nil {
			if got := AppendFetchArgs(nil, client, seg); !bytes.Equal(got, wire) {
				t.Fatalf("fetchargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, seg, slot, err := DecodeFetchLargeArgs(wire); err == nil {
			if got := AppendFetchLargeArgs(nil, client, seg, slot); !bytes.Equal(got, wire) {
				t.Fatalf("fetchlargeargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if slotted, overflow, err := DecodeFetchSlottedReply(wire); err == nil {
			if got := AppendFetchSlottedReply(nil, slotted, overflow); !bytes.Equal(got, wire) {
				t.Fatalf("fetchslottedreply not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, tx, seg, mode, err := DecodeLockArgs(wire); err == nil {
			if got := AppendLockArgs(nil, client, tx, seg, mode); !bytes.Equal(got, wire) {
				t.Fatalf("lockargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, tx, seg, slot, mode, err := DecodeLockObjectArgs(wire); err == nil {
			if got := AppendLockObjectArgs(nil, client, tx, seg, slot, mode); !bytes.Equal(got, wire) {
				t.Fatalf("lockobjectargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, tx, segs, err := DecodeCommitArgs(wire); err == nil {
			if got := AppendCommitArgs(nil, client, tx, segs); !bytes.Equal(got, wire) {
				t.Fatalf("commitargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if seg, err := DecodeCallbackArgs(wire); err == nil {
			if got := AppendCallbackArgs(nil, seg); !bytes.Equal(got, wire) {
				t.Fatalf("callbackargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if refused, err := DecodeCallbackReply(wire); err == nil {
			if got := AppendCallbackReply(nil, refused); !bytes.Equal(got, wire) {
				t.Fatalf("callbackreply not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		// The snapshot-method codecs share the wire style; their dedicated
		// roundtrip properties live in FuzzSnapCodecRoundTrip, the canonical
		// check rides along here so cross-method confusions surface.
		if client, snap, seg, err := DecodeSnapFetchArgs(wire); err == nil {
			if got := AppendSnapFetchArgs(nil, client, snap, seg); !bytes.Equal(got, wire) {
				t.Fatalf("snapfetchargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}
		if client, db, fileID, batch, snap, err := DecodeSnapScanStartArgs(wire); err == nil {
			if got := AppendSnapScanStartArgs(nil, client, db, fileID, batch, snap); !bytes.Equal(got, wire) {
				t.Fatalf("snapscanstartargs not canonical:\n in: %x\nout: %x", wire, got)
			}
		}

		// Property 2: arguments derived from the raw input roundtrip through
		// every pair. The fixed-width fields read from a zero-padded copy so
		// short inputs still exercise the codecs.
		n := len(wire)
		p := append(append([]byte(nil), wire...), make([]byte, 32)...)
		client := binary.BigEndian.Uint32(p[0:4])
		tx := binary.BigEndian.Uint64(p[4:12])
		seg := SegKey{
			Area:  binary.BigEndian.Uint32(p[12:16]),
			Start: int64(binary.BigEndian.Uint64(p[16:24])),
		}
		slot := int(int32(binary.BigEndian.Uint32(p[24:28])))
		mode := LockMode(p[28])
		refused := p[29]&1 == 1

		if c, s, err := DecodeFetchArgs(AppendFetchArgs(nil, client, seg)); err != nil || c != client || s != seg {
			t.Fatalf("fetchargs roundtrip: got (%d, %+v, %v) want (%d, %+v)", c, s, err, client, seg)
		}
		if c, s, sl, err := DecodeFetchLargeArgs(AppendFetchLargeArgs(nil, client, seg, slot)); err != nil || c != client || s != seg || sl != slot {
			t.Fatalf("fetchlargeargs roundtrip: got (%d, %+v, %d, %v) want (%d, %+v, %d)", c, s, sl, err, client, seg, slot)
		}
		slotted, overflow := wire[:n/2], wire[n/2:]
		if s, o, err := DecodeFetchSlottedReply(AppendFetchSlottedReply(nil, slotted, overflow)); err != nil || !sameBytes(s, slotted) || !sameBytes(o, overflow) {
			t.Fatalf("fetchslottedreply roundtrip failed: %v", err)
		}
		if c, x, s, m, err := DecodeLockArgs(AppendLockArgs(nil, client, tx, seg, mode)); err != nil || c != client || x != tx || s != seg || m != mode {
			t.Fatalf("lockargs roundtrip failed: %v", err)
		}
		if c, x, s, sl, m, err := DecodeLockObjectArgs(AppendLockObjectArgs(nil, client, tx, seg, slot, mode)); err != nil || c != client || x != tx || s != seg || sl != slot || m != mode {
			t.Fatalf("lockobjectargs roundtrip failed: %v", err)
		}
		segs := []SegImage{
			{Seg: seg, Slotted: wire[:n/3], Overflow: wire[n/3 : 2*n/3], Data: wire[2*n/3:]},
			{Seg: SegKey{Area: client, Start: int64(tx)}},
		}
		c, x, got, err := DecodeCommitArgs(AppendCommitArgs(nil, client, tx, segs))
		if err != nil || c != client || x != tx || len(got) != len(segs) {
			t.Fatalf("commitargs roundtrip failed: %v", err)
		}
		for i := range segs {
			if !imagesEqual(&segs[i], &got[i]) {
				t.Fatalf("commitargs image %d mismatch: %+v vs %+v", i, segs[i], got[i])
			}
		}
		if s, err := DecodeCallbackArgs(AppendCallbackArgs(nil, seg)); err != nil || s != seg {
			t.Fatalf("callbackargs roundtrip failed: %v", err)
		}
		if r, err := DecodeCallbackReply(AppendCallbackReply(nil, refused)); err != nil || r != refused {
			t.Fatalf("callbackreply roundtrip failed: %v", err)
		}
	})
}

// TestMsgCodecTruncation feeds every proper prefix of a valid encoding to the
// matching decoder: each must return an error — never panic, never accept a
// cut-off frame — and the untruncated encoding must still decode.
func TestMsgCodecTruncation(t *testing.T) {
	seg := SegKey{Area: 7, Start: 1 << 40}
	img := SegImage{Seg: seg, Slotted: []byte("sl"), Overflow: []byte("ovfl"), Data: []byte("data bytes")}
	cases := []struct {
		name   string
		enc    []byte
		decode func([]byte) error
	}{
		{"segkey", appendSegKey(nil, seg), func(b []byte) error {
			_, _, err := decodeSegKey(b)
			return err
		}},
		{"section", appendSection(nil, []byte("abc")), func(b []byte) error {
			_, _, err := decodeSection(b)
			return err
		}},
		{"fetchargs", AppendFetchArgs(nil, 3, seg), func(b []byte) error {
			_, _, err := DecodeFetchArgs(b)
			return err
		}},
		{"fetchlargeargs", AppendFetchLargeArgs(nil, 3, seg, 11), func(b []byte) error {
			_, _, _, err := DecodeFetchLargeArgs(b)
			return err
		}},
		{"fetchslottedreply", AppendFetchSlottedReply(nil, []byte("slotted"), []byte("ov")), func(b []byte) error {
			_, _, err := DecodeFetchSlottedReply(b)
			return err
		}},
		{"lockargs", AppendLockArgs(nil, 3, 99, seg, LockMode(2)), func(b []byte) error {
			_, _, _, _, err := DecodeLockArgs(b)
			return err
		}},
		{"lockobjectargs", AppendLockObjectArgs(nil, 3, 99, seg, 11, LockMode(1)), func(b []byte) error {
			_, _, _, _, _, err := DecodeLockObjectArgs(b)
			return err
		}},
		{"commitargs", AppendCommitArgs(nil, 3, 99, []SegImage{img, {Seg: seg}}), func(b []byte) error {
			_, _, _, err := DecodeCommitArgs(b)
			return err
		}},
		{"callbackargs", AppendCallbackArgs(nil, seg), func(b []byte) error {
			_, err := DecodeCallbackArgs(b)
			return err
		}},
		{"callbackreply", AppendCallbackReply(nil, true), func(b []byte) error {
			_, err := DecodeCallbackReply(b)
			return err
		}},
		{"segimage", EncodeSegImage(&img), func(b []byte) error {
			_, err := DecodeSegImage(b)
			return err
		}},
		{"scanstartargs", AppendScanStartArgs(nil, 3, 1, 9, 64<<10), func(b []byte) error {
			_, _, _, _, err := DecodeScanStartArgs(b)
			return err
		}},
		{"scanstartreply", AppendScanStartReply(nil, 42, []ScanSeg{{Seg: seg, SlottedPages: 2}, {Seg: SegKey{Area: 8, Start: 0}, SlottedPages: 1}}), func(b []byte) error {
			_, _, err := DecodeScanStartReply(b)
			return err
		}},
		{"scanbatch", AppendScanBatch(nil, &ScanBatch{Seq: 2, Last: true, Images: []SegImage{img, {Seg: seg}}}), func(b []byte) error {
			_, err := DecodeScanBatch(b)
			return err
		}},
		{"scanctl", AppendScanCtl(nil, false, 1<<20), func(b []byte) error {
			_, _, err := DecodeScanCtl(b)
			return err
		}},
		{"snapopenargs", AppendSnapOpenArgs(nil, 3), func(b []byte) error {
			_, err := DecodeSnapOpenArgs(b)
			return err
		}},
		{"snapopenreply", AppendSnapOpenReply(nil, 11, 1<<33), func(b []byte) error {
			_, _, err := DecodeSnapOpenReply(b)
			return err
		}},
		{"snapcloseargs", AppendSnapCloseArgs(nil, 3, 11), func(b []byte) error {
			_, _, err := DecodeSnapCloseArgs(b)
			return err
		}},
		{"snapfetchargs", AppendSnapFetchArgs(nil, 3, 11, seg), func(b []byte) error {
			_, _, _, err := DecodeSnapFetchArgs(b)
			return err
		}},
		{"snapscanstartargs", AppendSnapScanStartArgs(nil, 3, 1, 9, 64<<10, 11), func(b []byte) error {
			_, _, _, _, _, err := DecodeSnapScanStartArgs(b)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.enc); err != nil {
				t.Fatalf("full %d-byte encoding failed to decode: %v", len(tc.enc), err)
			}
			for i := 0; i < len(tc.enc); i++ {
				if err := tc.decode(tc.enc[:i:i]); err == nil {
					t.Errorf("decode accepted a %d/%d-byte prefix", i, len(tc.enc))
				}
			}
		})
	}
}
