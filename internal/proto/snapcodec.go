package proto

import (
	"encoding/binary"
	"fmt"
)

// Binary codecs for the snapshot-read methods (DESIGN.md §7), in the same
// style as msgcodec.go: big-endian, exact-width length pre-checks, no
// trailing bytes, canonical. SnapFetchSeg's reply reuses the SegImage
// codec and SnapScanStart's reply reuses AppendScanStartReply, so only the
// argument shapes (and SnapOpen's two-word reply) need codecs here.
// bess-vet's codecsym analyzer checks the pairs for symmetry (the package
// directive lives in msgcodec.go).

// AppendSnapOpenArgs encodes (client).
func AppendSnapOpenArgs(b []byte, client uint32) []byte {
	return binary.BigEndian.AppendUint32(b, client)
}

// DecodeSnapOpenArgs parses AppendSnapOpenArgs bytes.
func DecodeSnapOpenArgs(b []byte) (client uint32, err error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: truncated snap-open args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	return client, wantDone(b[4:])
}

// AppendSnapOpenReply encodes (snap, stamp).
func AppendSnapOpenReply(b []byte, snap, stamp uint64) []byte {
	b = binary.BigEndian.AppendUint64(b, snap)
	return binary.BigEndian.AppendUint64(b, stamp)
}

// DecodeSnapOpenReply parses AppendSnapOpenReply bytes.
func DecodeSnapOpenReply(b []byte) (snap, stamp uint64, err error) {
	if len(b) < 8+8 {
		return 0, 0, fmt.Errorf("%w: truncated snap-open reply", ErrBadMessage)
	}
	snap = binary.BigEndian.Uint64(b[0:8])
	stamp = binary.BigEndian.Uint64(b[8:16])
	return snap, stamp, wantDone(b[16:])
}

// AppendSnapCloseArgs encodes (client, snap).
func AppendSnapCloseArgs(b []byte, client uint32, snap uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	return binary.BigEndian.AppendUint64(b, snap)
}

// DecodeSnapCloseArgs parses AppendSnapCloseArgs bytes.
func DecodeSnapCloseArgs(b []byte) (client uint32, snap uint64, err error) {
	if len(b) < 4+8 {
		return 0, 0, fmt.Errorf("%w: truncated snap-close args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	snap = binary.BigEndian.Uint64(b[4:12])
	return client, snap, wantDone(b[12:])
}

// AppendSnapFetchArgs encodes (client, snap, seg).
func AppendSnapFetchArgs(b []byte, client uint32, snap uint64, seg SegKey) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	b = binary.BigEndian.AppendUint64(b, snap)
	return appendSegKey(b, seg)
}

// DecodeSnapFetchArgs parses AppendSnapFetchArgs bytes.
func DecodeSnapFetchArgs(b []byte) (client uint32, snap uint64, seg SegKey, err error) {
	if len(b) < 4+8+12 {
		return 0, 0, SegKey{}, fmt.Errorf("%w: truncated snap-fetch args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	snap = binary.BigEndian.Uint64(b[4:12])
	seg, rest, err := decodeSegKey(b[12:])
	if err != nil {
		return 0, 0, SegKey{}, err
	}
	return client, snap, seg, wantDone(rest)
}

// AppendSnapScanStartArgs encodes (client, db, fileID, batchBytes, snap) —
// the ScanStart argument shape plus the snapshot id the cursor reads as of.
func AppendSnapScanStartArgs(b []byte, client, db, fileID, batchBytes uint32, snap uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, client)
	b = binary.BigEndian.AppendUint32(b, db)
	b = binary.BigEndian.AppendUint32(b, fileID)
	b = binary.BigEndian.AppendUint32(b, batchBytes)
	return binary.BigEndian.AppendUint64(b, snap)
}

// DecodeSnapScanStartArgs parses AppendSnapScanStartArgs bytes.
func DecodeSnapScanStartArgs(b []byte) (client, db, fileID, batchBytes uint32, snap uint64, err error) {
	if len(b) < 4+4+4+4+8 {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: truncated snap-scan-start args", ErrBadMessage)
	}
	client = binary.BigEndian.Uint32(b[0:4])
	db = binary.BigEndian.Uint32(b[4:8])
	fileID = binary.BigEndian.Uint32(b[8:12])
	batchBytes = binary.BigEndian.Uint32(b[12:16])
	snap = binary.BigEndian.Uint64(b[16:24])
	return client, db, fileID, batchBytes, snap, wantDone(b[24:])
}
