package page

import (
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	id := ID{Area: 3, Page: 17}
	if s := id.String(); s != "3:17" {
		t.Fatalf("String() = %q", s)
	}
}

func TestIDLess(t *testing.T) {
	a := ID{Area: 1, Page: 99}
	b := ID{Area: 2, Page: 0}
	c := ID{Area: 2, Page: 1}
	if !a.Less(b) || !b.Less(c) || b.Less(a) || a.Less(a) {
		t.Fatal("Less ordering wrong")
	}
}

func TestChecksumDiffers(t *testing.T) {
	a := []byte("hello world")
	b := []byte("hello worle")
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksums collide on near inputs (unexpected for CRC32C)")
	}
	if Checksum(a) != Checksum([]byte("hello world")) {
		t.Fatal("checksum not deterministic")
	}
}

func TestLSNRoundTrip(t *testing.T) {
	f := func(l uint64) bool {
		var buf [8]byte
		PutLSN(buf[:], LSN(l))
		return GetLSN(buf[:]) == LSN(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometry(t *testing.T) {
	if Size&(Size-1) != 0 {
		t.Fatal("page size must be a power of two")
	}
	if PerExtent&(PerExtent-1) != 0 {
		t.Fatal("pages per extent must be a power of two")
	}
}
