// Package page defines the fixed page geometry shared by all BeSS storage
// layers, page identifiers, and small helpers (checksums, LSN slots) used by
// the segment and WAL layers.
//
// BeSS views every storage area as an array of fixed-size pages; the cache
// established by a node server is "a contiguous sequence of equal length
// frames, and the size of each frame is equal to the page size" (paper §4).
package page

import (
	"fmt"
	"hash/crc32"
)

// Size is the BeSS page size in bytes. All caches, virtual frames, and
// buffer-pool frames use this unit.
const Size = 4096

// PerExtent is the number of pages in one storage-area extent. Storage areas
// grow one extent at a time (paper §2). Must be a power of two so extents can
// be carved with the binary buddy system.
const PerExtent = 256

// AreaID identifies a storage area within a server.
type AreaID uint32

// No is a page number within a storage area (0-based, absolute).
type No int64

// ID names a page globally within one server: (area, page number).
type ID struct {
	Area AreaID
	Page No
}

// String renders the page ID as area:page.
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.Area, id.Page) }

// Less orders IDs by (area, page).
func (id ID) Less(other ID) bool {
	if id.Area != other.Area {
		return id.Area < other.Area
	}
	return id.Page < other.Page
}

// castagnoli is the CRC-32C table used for page and log checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumUpdate extends crc with b (incremental Checksum over
// discontiguous regions).
func ChecksumUpdate(crc uint32, b []byte) uint32 { return crc32.Update(crc, castagnoli, b) }

// CorruptError reports a checksum mismatch with enough identity to locate
// the bad bytes on media: which section of which object failed, the byte
// offset of the verified region, and both checksums. It wraps the sentinel
// err (segment.ErrChecksum, wal.ErrCorrupt, ...) so errors.Is keeps working.
type CorruptError struct {
	Section string // "slotted", "data", "overflow", "large", "wal", "frame"
	Area    AreaID // 0 when the region is not area-addressed
	Page    No     // first page of the damaged region (area-addressed only)
	Off     int64  // byte offset of the verified region within its container
	Len     int    // length of the verified region
	Want    uint32 // stored checksum
	Got     uint32 // recomputed checksum
	Err     error  // wrapped sentinel
}

func (e *CorruptError) Error() string {
	if e.Area != 0 || e.Page != 0 {
		return fmt.Sprintf("%v: %s section at %d:%d off=%d len=%d crc=%08x want %08x",
			e.Err, e.Section, e.Area, e.Page, e.Off, e.Len, e.Got, e.Want)
	}
	return fmt.Sprintf("%v: %s section off=%d len=%d crc=%08x want %08x",
		e.Err, e.Section, e.Off, e.Len, e.Got, e.Want)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Verify recomputes the CRC-32C of b and checks it against want, returning
// a *CorruptError wrapping sentinel on mismatch. The zero checksum is not
// special: callers gate verification on their own "checksummed" flag.
func Verify(b []byte, want uint32, section string, sentinel error) error {
	if got := Checksum(b); got != want {
		return &CorruptError{Section: section, Len: len(b), Want: want, Got: got, Err: sentinel}
	}
	return nil
}

// LSN is a log sequence number: a byte offset into the write-ahead log.
// LSN 0 means "never logged".
type LSN uint64

// PutLSN stores an LSN big-endian into the first 8 bytes of b.
func PutLSN(b []byte, l LSN) {
	_ = b[7]
	b[0] = byte(l >> 56)
	b[1] = byte(l >> 48)
	b[2] = byte(l >> 40)
	b[3] = byte(l >> 32)
	b[4] = byte(l >> 24)
	b[5] = byte(l >> 16)
	b[6] = byte(l >> 8)
	b[7] = byte(l)
}

// GetLSN reads an LSN stored by PutLSN.
func GetLSN(b []byte) LSN {
	_ = b[7]
	return LSN(b[0])<<56 | LSN(b[1])<<48 | LSN(b[2])<<40 | LSN(b[3])<<32 |
		LSN(b[4])<<24 | LSN(b[5])<<16 | LSN(b[6])<<8 | LSN(b[7])
}
