package baseline

import (
	"testing"

	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

func TestOIDTableChase(t *testing.T) {
	tab := NewOIDTable()
	// Ring of 10 objects.
	ids := make([]oid.OID, 10)
	for i := range ids {
		ids[i] = oid.OID{Host: 1, DB: 1, Offset: uint64(i + 1)}
	}
	for i := range ids {
		tab.Put(ids[i], &OIDObject{
			Data: []byte{byte(i)},
			Refs: []oid.OID{ids[(i+1)%len(ids)]},
		})
	}
	end, err := tab.Chase(ids[0], 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if end != ids[25%10] {
		t.Fatalf("chase ended at %v", end)
	}
	if tab.Lookups() != 25 {
		t.Fatalf("lookups = %d", tab.Lookups())
	}
	if _, err := tab.Chase(oid.OID{Offset: 999}, 0, 1); err == nil {
		t.Fatal("dangling chase succeeded")
	}
	if _, err := tab.Chase(ids[0], 7, 1); err == nil {
		t.Fatal("bad field chase succeeded")
	}
}

type fakeLister struct{ n, slotted, data int }

func (f fakeLister) ListSegments() ([]swizzle.SegID, []int, []int, error) {
	segs := make([]swizzle.SegID, f.n)
	sl := make([]int, f.n)
	dt := make([]int, f.n)
	for i := range segs {
		segs[i] = swizzle.SegID{Area: 1, Start: page.No(i * 10)}
		sl[i] = f.slotted
		dt[i] = f.data
	}
	return segs, sl, dt, nil
}

func TestEagerReservesEverything(t *testing.T) {
	space := vmem.New()
	e, err := NewEagerReserver(space, fakeLister{n: 50, slotted: 1, data: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Reserved != 50*(1+4) {
		t.Fatalf("Reserved = %d", e.Reserved)
	}
	st := space.Snapshot()
	if st.ReservedFrames != 250 {
		t.Fatalf("space reserved = %d", st.ReservedFrames)
	}
	if st.MappedFrames != 0 {
		t.Fatal("eager scheme mapped something")
	}
}

func TestSoftwareDetect(t *testing.T) {
	d := NewSoftwareDetect()
	seg := swizzle.SegID{Area: 1, Start: 10}
	d.MarkDirty(seg, 0)
	d.MarkDirty(seg, 0) // idempotent set, but each call pays a lock request
	d.MarkDirty(seg, 3)
	if !d.Dirty(seg, 0) || !d.Dirty(seg, 3) || d.Dirty(seg, 1) {
		t.Fatal("dirty set wrong")
	}
	if d.WriteSetSize() != 2 {
		t.Fatalf("write set = %d", d.WriteSetSize())
	}
	if d.Locks != 3 {
		t.Fatalf("locks = %d", d.Locks)
	}
	// Conservative lock on a read-only call.
	d.PassPointer(seg, 1)
	if d.Locks != 4 {
		t.Fatalf("locks after pass = %d", d.Locks)
	}
	// Forgotten dirty call.
	d.UnmarkedWrite()
	if d.MissedUpdates != 1 {
		t.Fatal("missed update not counted")
	}
}
