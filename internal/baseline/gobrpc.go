package baseline

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// GobPeer preserves the pre-E12 wire protocol as a comparison system: every
// frame is gob-encoded twice (the argument body is gob'd into Body, then
// the whole frame is gob'd onto the socket), every frame is an unbuffered
// connection write, and request ids come from a mutex. E12 measures the new
// binary framed protocol (internal/rpc) against this.
//
// The goroutines here carry stop evidence for bess-vet's golife analyzer
// (DESIGN.md §4e) just like internal/rpc's: the read loop breaks on the
// closable connection, and dispatch goroutines join a WaitGroup drained by
// Close.
//
//bess:golife

// ErrGobClosed reports a call on a torn-down GobPeer.
var ErrGobClosed = errors.New("baseline: gob rpc connection closed")

type gobFrame struct {
	ID     uint64
	Reply  bool
	Method string
	Err    string
	Body   []byte
}

// GobHandler serves one method from the inner gob body.
type GobHandler func(body []byte) ([]byte, error)

// GobPeer is one end of a gob-framed connection.
type GobPeer struct {
	conn io.ReadWriteCloser

	wmu sync.Mutex
	enc *gob.Encoder // writes straight to conn: one syscall batch per frame

	mu       sync.Mutex
	handlers map[string]GobHandler
	pending  map[uint64]chan gobFrame
	nextID   uint64
	closed   bool

	dg sync.WaitGroup // in-flight dispatch goroutines; drained by Close
}

// NewGobPeer wraps a connection and starts the read loop.
func NewGobPeer(conn io.ReadWriteCloser) *GobPeer {
	p := &GobPeer{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		handlers: make(map[string]GobHandler),
		pending:  make(map[uint64]chan gobFrame),
	}
	go p.readLoop()
	return p
}

// Handle registers a method handler.
func (p *GobPeer) Handle(method string, h GobHandler) {
	p.mu.Lock()
	p.handlers[method] = h
	p.mu.Unlock()
}

// Call gob-encodes args into the frame body, sends, and gob-decodes the
// reply body into reply — the double encode the binary protocol removed.
func (p *GobPeer) Call(method string, args any, reply any) error {
	var body bytes.Buffer
	if args != nil {
		if err := gob.NewEncoder(&body).Encode(args); err != nil {
			return err
		}
	}
	ch := make(chan gobFrame, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrGobClosed
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	p.mu.Unlock()
	if err := p.send(&gobFrame{ID: id, Method: method, Body: body.Bytes()}); err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		return err
	}
	rf, ok := <-ch
	if !ok {
		return ErrGobClosed
	}
	if rf.Err != "" {
		return errors.New("baseline: remote: " + rf.Err)
	}
	if reply != nil {
		return gob.NewDecoder(bytes.NewReader(rf.Body)).Decode(reply)
	}
	return nil
}

func (p *GobPeer) send(f *gobFrame) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return p.enc.Encode(f)
}

func (p *GobPeer) readLoop() {
	dec := gob.NewDecoder(p.conn)
	for {
		var f gobFrame
		if err := dec.Decode(&f); err != nil {
			break
		}
		if f.Reply {
			p.mu.Lock()
			ch, ok := p.pending[f.ID]
			if ok {
				delete(p.pending, f.ID)
			}
			p.mu.Unlock()
			if ok {
				ch <- f
			}
			continue
		}
		p.dg.Add(1)
		go func() {
			defer p.dg.Done()
			p.dispatch(f)
		}()
	}
	p.shutdown()
}

func (p *GobPeer) dispatch(f gobFrame) {
	p.mu.Lock()
	h := p.handlers[f.Method]
	p.mu.Unlock()
	reply := gobFrame{ID: f.ID, Reply: true}
	if h == nil {
		reply.Err = fmt.Sprintf("no handler for %s", f.Method)
	} else if body, err := h(f.Body); err != nil {
		reply.Err = err.Error()
	} else {
		reply.Body = body
	}
	_ = p.send(&reply)
}

func (p *GobPeer) shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for id, ch := range p.pending {
		close(ch)
		delete(p.pending, id)
	}
	p.mu.Unlock()
	p.conn.Close()
}

// Close tears the connection down and drains in-flight dispatches. The
// drain cannot hang: the closed connection fails their reply sends fast.
func (p *GobPeer) Close() error {
	err := p.conn.Close()
	p.shutdown()
	p.dg.Wait()
	return err
}

// GobListener accepts gob peers over TCP.
type GobListener struct{ l net.Listener }

// GobListen opens a TCP listener for the baseline protocol.
func GobListen(addr string) (*GobListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &GobListener{l: l}, nil
}

// Addr returns the bound address.
func (l *GobListener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next peer.
func (l *GobListener) Accept() (*GobPeer, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewGobPeer(conn), nil
}

// Close stops accepting.
func (l *GobListener) Close() error { return l.l.Close() }

// GobDial connects to a baseline endpoint.
func GobDial(addr string) (*GobPeer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewGobPeer(conn), nil
}
