// Package baseline implements the comparison systems the paper positions
// BeSS against; the benchmark harness runs them beside the real thing.
//
//   - OIDTable: EOS-style inter-object references — every dereference is a
//     hash-table lookup on a 96-bit OID instead of following a swizzled
//     virtual-memory pointer (paper §5: "pointer dereference in EOS is
//     somewhat slow because inter-object references are OIDs"). E1.
//
//   - EagerReserver: ObjectStore/QuickStore-style greedy address-space
//     reservation — address ranges for both the slotted and data segments
//     of every segment in the database are reserved up front, rather than
//     as references are discovered (paper §2.1: BeSS "does not involve a
//     greedy allocation of virtual memory addresses"). E3.
//
//   - SoftwareDetect: the Exodus/early-EOS software approach to update
//     detection — the programmer explicitly marks dirty data, and compiled
//     code must conservatively request exclusive locks whenever an object
//     pointer escapes into a function (paper §2.3). E7.
package baseline

import (
	"errors"
	"sync"

	"bess/internal/oid"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// --- E1: OID-based references ---

// OIDObject is one object in the OID-addressed store: payload plus OID
// reference fields (the on-disk and in-memory representations coincide).
type OIDObject struct {
	Data []byte
	Refs []oid.OID
}

// OIDTable is the EOS-style object table: dereference = hash lookup.
type OIDTable struct {
	mu      sync.RWMutex
	objects map[oid.OID]*OIDObject
	lookups int64
}

// NewOIDTable returns an empty table.
func NewOIDTable() *OIDTable {
	return &OIDTable{objects: make(map[oid.OID]*OIDObject)}
}

// Put stores an object.
func (t *OIDTable) Put(id oid.OID, o *OIDObject) {
	t.mu.Lock()
	t.objects[id] = o
	t.mu.Unlock()
}

// Deref looks an object up by OID — the slow path BeSS avoids.
func (t *OIDTable) Deref(id oid.OID) (*OIDObject, bool) {
	t.mu.RLock()
	o, ok := t.objects[id]
	t.lookups++
	t.mu.RUnlock()
	return o, ok
}

// Lookups reports the number of dereferences performed.
func (t *OIDTable) Lookups() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookups
}

// Chase follows ref field `field` from id for n hops, returning the final
// OID. Each hop pays one hash lookup.
func (t *OIDTable) Chase(id oid.OID, field, n int) (oid.OID, error) {
	cur := id
	for i := 0; i < n; i++ {
		o, ok := t.Deref(cur)
		if !ok {
			return oid.Nil, errors.New("baseline: dangling OID")
		}
		if field >= len(o.Refs) {
			return oid.Nil, errors.New("baseline: no such ref field")
		}
		cur = o.Refs[field]
	}
	return cur, nil
}

// --- E3: eager address-space reservation ---

// SegLister enumerates every segment of a database with its slotted and
// data sizes, so the eager scheme can reserve everything up front.
type SegLister interface {
	ListSegments() (segs []swizzle.SegID, slottedPages, dataPages []int, err error)
}

// EagerReserver models the greedy scheme: on open it reserves address
// ranges for the slotted AND data segments of every segment in the
// database, whether or not they are ever referenced.
type EagerReserver struct {
	space    *vmem.Space
	Reserved int64 // frames reserved up front
}

// NewEagerReserver performs the up-front reservation sweep.
func NewEagerReserver(space *vmem.Space, lister SegLister) (*EagerReserver, error) {
	segs, slotted, data, err := lister.ListSegments()
	if err != nil {
		return nil, err
	}
	e := &EagerReserver{space: space}
	for i := range segs {
		if _, err := space.Reserve(slotted[i]); err != nil {
			return nil, err
		}
		e.Reserved += int64(slotted[i])
		if _, err := space.Reserve(data[i]); err != nil {
			return nil, err
		}
		e.Reserved += int64(data[i])
	}
	return e, nil
}

// --- E7: software update detection ---

// SoftwareDetect models explicit dirty calls plus the conservative lock
// acquisition a compiler must emit when it cannot prove a callee does not
// write through an object pointer.
type SoftwareDetect struct {
	mu sync.Mutex
	// dirty is the explicitly-marked write set.
	dirty map[swizzle.SegID]map[int]bool
	// Locks tallies exclusive lock requests; conservative passes request X
	// even for read-only uses.
	Locks int64
	// MissedUpdates counts writes performed without a MarkDirty call — the
	// "forgetting to invoke the function" failure mode (§2.3). The test
	// harness injects these.
	MissedUpdates int64
}

// NewSoftwareDetect returns an empty tracker.
func NewSoftwareDetect() *SoftwareDetect {
	return &SoftwareDetect{dirty: make(map[swizzle.SegID]map[int]bool)}
}

// MarkDirty is the explicit dirty call the programmer must remember.
func (d *SoftwareDetect) MarkDirty(seg swizzle.SegID, pageIdx int) {
	d.mu.Lock()
	set := d.dirty[seg]
	if set == nil {
		set = make(map[int]bool)
		d.dirty[seg] = set
	}
	set[pageIdx] = true
	d.Locks++ // the dirty call requests the exclusive lock
	d.mu.Unlock()
}

// PassPointer models passing an object pointer to a separately-compiled
// function: the compiler conservatively requests an exclusive lock even if
// the function never writes (§2.3).
func (d *SoftwareDetect) PassPointer(seg swizzle.SegID, pageIdx int) {
	d.mu.Lock()
	d.Locks++
	d.mu.Unlock()
}

// UnmarkedWrite records a write the programmer forgot to flag; its effects
// would be lost or corrupted in the software scheme.
func (d *SoftwareDetect) UnmarkedWrite() {
	d.mu.Lock()
	d.MissedUpdates++
	d.mu.Unlock()
}

// Dirty reports whether (seg, pageIdx) was marked.
func (d *SoftwareDetect) Dirty(seg swizzle.SegID, pageIdx int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirty[seg][pageIdx]
}

// WriteSetSize returns the number of marked pages.
func (d *SoftwareDetect) WriteSetSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, set := range d.dirty {
		n += len(set)
	}
	return n
}
