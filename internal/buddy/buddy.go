// Package buddy implements the binary buddy allocator BeSS uses to carve
// disk segments out of storage-area extents (paper §2, reference [3]).
//
// An Allocator manages a contiguous region of 2^maxOrder units. Requests are
// rounded up to the nearest power of two; blocks are recursively split on
// allocation and buddies are coalesced on free. Offsets and sizes are in
// abstract units (the storage area layer uses pages as the unit).
package buddy

import (
	"errors"
	"fmt"
	"math/bits"
)

// Common allocator errors.
var (
	ErrNoSpace    = errors.New("buddy: no free block large enough")
	ErrBadFree    = errors.New("buddy: free of unallocated or mismatched block")
	ErrBadRequest = errors.New("buddy: invalid request size")
)

// MaxOrder is the largest supported block order; a single allocator can
// therefore manage up to 2^MaxOrder units.
const MaxOrder = 40

// Allocator is a binary buddy allocator over [0, Size()) units.
// It is not safe for concurrent use; callers serialize access
// (the storage area layer holds a latch while allocating).
type Allocator struct {
	maxOrder int
	// free[k] holds the offsets of free blocks of size 2^k, as a set.
	free []map[int64]struct{}
	// alloc maps the offset of each live allocation to its order.
	alloc map[int64]int

	// Statistics, cumulative since creation.
	splits    int64
	coalesces int64
	allocated int64 // units currently allocated
}

// New returns an allocator managing 2^maxOrder units, all initially free.
func New(maxOrder int) (*Allocator, error) {
	if maxOrder < 0 || maxOrder > MaxOrder {
		return nil, fmt.Errorf("buddy: max order %d out of range [0,%d]", maxOrder, MaxOrder)
	}
	a := &Allocator{
		maxOrder: maxOrder,
		free:     make([]map[int64]struct{}, maxOrder+1),
		alloc:    make(map[int64]int),
	}
	for k := range a.free {
		a.free[k] = make(map[int64]struct{})
	}
	a.free[maxOrder][0] = struct{}{}
	return a, nil
}

// Size returns the total number of units managed.
func (a *Allocator) Size() int64 { return int64(1) << uint(a.maxOrder) }

// Allocated returns the number of units currently allocated.
func (a *Allocator) Allocated() int64 { return a.allocated }

// Splits returns the cumulative number of block splits performed.
func (a *Allocator) Splits() int64 { return a.splits }

// Coalesces returns the cumulative number of buddy merges performed.
func (a *Allocator) Coalesces() int64 { return a.coalesces }

// OrderFor returns the smallest order k with 2^k >= n.
func OrderFor(n int64) (int, error) {
	if n <= 0 {
		return 0, ErrBadRequest
	}
	k := bits.Len64(uint64(n) - 1)
	if k > MaxOrder {
		return 0, ErrBadRequest
	}
	return k, nil
}

// Alloc allocates a block of at least n units and returns its offset and the
// actual (power-of-two) size granted.
func (a *Allocator) Alloc(n int64) (off, granted int64, err error) {
	k, err := OrderFor(n)
	if err != nil {
		return 0, 0, err
	}
	return a.AllocOrder(k)
}

// AllocOrder allocates a block of exactly 2^k units.
func (a *Allocator) AllocOrder(k int) (off, granted int64, err error) {
	if k < 0 || k > a.maxOrder {
		return 0, 0, ErrNoSpace
	}
	// Find the smallest order >= k with a free block.
	j := k
	for j <= a.maxOrder && len(a.free[j]) == 0 {
		j++
	}
	if j > a.maxOrder {
		return 0, 0, ErrNoSpace
	}
	off = a.popFree(j)
	// Split down to the requested order, returning the upper halves to the
	// free lists.
	for j > k {
		j--
		a.splits++
		buddy := off + (int64(1) << uint(j))
		a.free[j][buddy] = struct{}{}
	}
	a.alloc[off] = k
	granted = int64(1) << uint(k)
	a.allocated += granted
	return off, granted, nil
}

// Free releases the block previously returned by Alloc/AllocOrder at off.
func (a *Allocator) Free(off int64) error {
	k, ok := a.alloc[off]
	if !ok {
		return ErrBadFree
	}
	delete(a.alloc, off)
	a.allocated -= int64(1) << uint(k)
	// Coalesce with the buddy while it is free and we are below max order.
	for k < a.maxOrder {
		buddy := off ^ (int64(1) << uint(k))
		if _, free := a.free[k][buddy]; !free {
			break
		}
		delete(a.free[k], buddy)
		if buddy < off {
			off = buddy
		}
		k++
		a.coalesces++
	}
	a.free[k][off] = struct{}{}
	return nil
}

// BlockSize returns the granted size of the live allocation at off.
func (a *Allocator) BlockSize(off int64) (int64, bool) {
	k, ok := a.alloc[off]
	if !ok {
		return 0, false
	}
	return int64(1) << uint(k), true
}

// FreeUnits returns the number of units currently free.
func (a *Allocator) FreeUnits() int64 { return a.Size() - a.allocated }

// LargestFree returns the size of the largest currently free block
// (0 when the allocator is completely full).
func (a *Allocator) LargestFree() int64 {
	for k := a.maxOrder; k >= 0; k-- {
		if len(a.free[k]) > 0 {
			return int64(1) << uint(k)
		}
	}
	return 0
}

// Utilization returns allocated/total as a fraction in [0,1].
func (a *Allocator) Utilization() float64 {
	return float64(a.allocated) / float64(a.Size())
}

func (a *Allocator) popFree(k int) int64 {
	for off := range a.free[k] {
		delete(a.free[k], off)
		return off
	}
	panic("buddy: popFree on empty order") // unreachable; caller checked
}

// CheckInvariants verifies internal consistency: free blocks and allocations
// are disjoint, properly aligned, and together cover the whole region.
// It is used by tests and by the inspect tool.
func (a *Allocator) CheckInvariants() error {
	covered := int64(0)
	type span struct{ off, size int64 }
	var spans []span
	for k, set := range a.free {
		size := int64(1) << uint(k)
		for off := range set {
			if off%size != 0 {
				return fmt.Errorf("buddy: free block %d order %d misaligned", off, k)
			}
			spans = append(spans, span{off, size})
			covered += size
		}
	}
	for off, k := range a.alloc {
		size := int64(1) << uint(k)
		if off%size != 0 {
			return fmt.Errorf("buddy: allocated block %d order %d misaligned", off, k)
		}
		spans = append(spans, span{off, size})
		covered += size
	}
	if covered != a.Size() {
		return fmt.Errorf("buddy: blocks cover %d of %d units", covered, a.Size())
	}
	// Overlap check via interval endpoints: since total coverage equals the
	// region size and every block lies inside it, any overlap implies a gap
	// elsewhere; verify bounds to complete the argument.
	for _, s := range spans {
		if s.off < 0 || s.off+s.size > a.Size() {
			return fmt.Errorf("buddy: block [%d,%d) out of range", s.off, s.off+s.size)
		}
	}
	return nil
}
