package buddy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBounds(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("New(-1) should fail")
	}
	if _, err := New(MaxOrder + 1); err == nil {
		t.Fatal("New(MaxOrder+1) should fail")
	}
	a, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", a.Size())
	}
}

func TestOrderFor(t *testing.T) {
	cases := []struct {
		n    int64
		k    int
		fail bool
	}{
		{1, 0, false}, {2, 1, false}, {3, 2, false}, {4, 2, false},
		{5, 3, false}, {1024, 10, false}, {1025, 11, false},
		{0, 0, true}, {-7, 0, true},
	}
	for _, c := range cases {
		k, err := OrderFor(c.n)
		if c.fail {
			if err == nil {
				t.Errorf("OrderFor(%d): want error", c.n)
			}
			continue
		}
		if err != nil {
			t.Errorf("OrderFor(%d): %v", c.n, err)
			continue
		}
		if k != c.k {
			t.Errorf("OrderFor(%d) = %d, want %d", c.n, k, c.k)
		}
	}
}

func TestAllocExactFit(t *testing.T) {
	a, _ := New(4) // 16 units
	off, granted, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 || granted != 16 {
		t.Fatalf("Alloc(16) = (%d,%d), want (0,16)", off, granted)
	}
	if _, _, err := a.Alloc(1); err != ErrNoSpace {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	if err := a.Free(0); err != nil {
		t.Fatal(err)
	}
	if a.Allocated() != 0 {
		t.Fatalf("Allocated() = %d after free", a.Allocated())
	}
}

func TestAllocRoundsUp(t *testing.T) {
	a, _ := New(6)
	_, granted, err := a.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if granted != 8 {
		t.Fatalf("granted = %d, want 8", granted)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a, _ := New(3) // 8 units
	off1, _, _ := a.Alloc(1)
	off2, _, _ := a.Alloc(1)
	if off1 == off2 {
		t.Fatal("duplicate offsets")
	}
	if a.Splits() == 0 {
		t.Fatal("expected splits")
	}
	if err := a.Free(off1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(off2); err != nil {
		t.Fatal(err)
	}
	if a.LargestFree() != 8 {
		t.Fatalf("LargestFree = %d after freeing everything, want 8", a.LargestFree())
	}
	if a.Coalesces() == 0 {
		t.Fatal("expected coalesces")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFree(t *testing.T) {
	a, _ := New(3)
	off, _, _ := a.Alloc(2)
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(off); err != ErrBadFree {
		t.Fatalf("double free: got %v, want ErrBadFree", err)
	}
	if err := a.Free(12345); err != ErrBadFree {
		t.Fatalf("bogus free: got %v, want ErrBadFree", err)
	}
}

func TestBlockSize(t *testing.T) {
	a, _ := New(5)
	off, granted, _ := a.Alloc(3)
	sz, ok := a.BlockSize(off)
	if !ok || sz != granted {
		t.Fatalf("BlockSize = (%d,%v), want (%d,true)", sz, ok, granted)
	}
	if _, ok := a.BlockSize(off + 1); ok {
		t.Fatal("BlockSize of non-start offset should be false")
	}
}

func TestAllocZeroOrBad(t *testing.T) {
	a, _ := New(4)
	if _, _, err := a.Alloc(0); err != ErrBadRequest {
		t.Fatalf("Alloc(0): %v", err)
	}
	if _, _, err := a.Alloc(-2); err != ErrBadRequest {
		t.Fatalf("Alloc(-2): %v", err)
	}
	if _, _, err := a.Alloc(32); err != ErrNoSpace {
		t.Fatalf("Alloc(>size): %v", err)
	}
}

func TestNoOverlap(t *testing.T) {
	a, _ := New(8) // 256 units
	rng := rand.New(rand.NewSource(42))
	type block struct{ off, size int64 }
	var live []block
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live))
			if err := a.Free(live[j].off); err != nil {
				t.Fatal(err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		n := int64(1 + rng.Intn(32))
		off, granted, err := a.Alloc(n)
		if err == ErrNoSpace {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range live {
			if off < b.off+b.size && b.off < off+granted {
				t.Fatalf("overlap: [%d,%d) and [%d,%d)", off, off+granted, b.off, b.off+b.size)
			}
		}
		live = append(live, block{off, granted})
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Free all remaining; allocator must coalesce back to one block.
	for _, b := range live {
		if err := a.Free(b.off); err != nil {
			t.Fatal(err)
		}
	}
	if a.LargestFree() != a.Size() {
		t.Fatalf("after freeing all, LargestFree = %d want %d", a.LargestFree(), a.Size())
	}
}

func TestUtilization(t *testing.T) {
	a, _ := New(4)
	if a.Utilization() != 0 {
		t.Fatal("fresh allocator not empty")
	}
	a.Alloc(8)
	if u := a.Utilization(); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if a.FreeUnits() != 8 {
		t.Fatalf("FreeUnits = %d, want 8", a.FreeUnits())
	}
}

// Property: any sequence of allocations aligned: off % granted == 0.
func TestQuickAlignment(t *testing.T) {
	f := func(sizes []uint8) bool {
		a, _ := New(10)
		for _, s := range sizes {
			n := int64(s%64) + 1
			off, granted, err := a.Alloc(n)
			if err != nil {
				continue
			}
			if granted < n || off%granted != 0 {
				return false
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: alloc/free in random interleavings always restores full free
// space and passes invariants.
func TestQuickAllocFreeRoundTrip(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		a, _ := New(9)
		rng := rand.New(rand.NewSource(seed))
		var live []int64
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				off, _, err := a.Alloc(int64(op%100) + 1)
				if err == nil {
					live = append(live, off)
				}
			} else {
				j := rng.Intn(len(live))
				if a.Free(live[j]) != nil {
					return false
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, off := range live {
			if a.Free(off) != nil {
				return false
			}
		}
		return a.Allocated() == 0 && a.LargestFree() == a.Size() && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
