//go:build !walcheck

package walcheck

import "bess/internal/page"

// Enabled reports whether runtime write-ahead-order checking is compiled in.
const Enabled = false

// NoteUpdate records that a log record covering the next store of pid was
// appended. No-op in this build.
func NoteUpdate(pid page.ID) {}

// NoteWrite asserts that the store of pid about to happen is covered by a
// log record. No-op in this build.
func NoteWrite(pid page.ID) {}
