// Package walcheck provides a build-tagged runtime checker for the
// write-ahead rule: no page image may reach the store unless a covering
// log record was appended first. It is the dynamic twin of cmd/bess-vet's
// walorder analyzer — the analyzer proves the ordering on the call graph,
// this package asserts it on the executions the tests actually drive.
//
// The protocol has two sides. The logging side calls NoteUpdate(pid)
// immediately after appending the record that covers the next store of
// pid (tx.LogUpdate, the abort undo loop, and recovery's redo/undo passes
// do this). The storing side calls NoteWrite(pid) at the page-store choke
// point (server.WritePage): if no unconsumed covering record exists for
// pid, NoteWrite panics with the current stack and the site of the last
// covered write of that page. Each NoteUpdate covers exactly one
// NoteWrite — coverage is consumed, so a second store of the same page
// needs its own record, exactly like the log-before-data rule itself.
//
// Without the `walcheck` tag both calls are empty functions with no state
// behind them; the default build pays nothing.
package walcheck
