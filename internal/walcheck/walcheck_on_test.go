//go:build walcheck

package walcheck

import (
	"strings"
	"testing"

	"bess/internal/page"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func TestCoveredWrite(t *testing.T) {
	defer Reset()
	pid := page.ID{Area: 1, Page: 7}
	NoteUpdate(pid)
	NoteWrite(pid) // must not panic
}

func TestUncoveredWritePanics(t *testing.T) {
	defer Reset()
	pid := page.ID{Area: 1, Page: 8}
	mustPanic(t, "no covering log record", func() { NoteWrite(pid) })
}

func TestCoverageIsConsumed(t *testing.T) {
	defer Reset()
	pid := page.ID{Area: 1, Page: 9}
	NoteUpdate(pid)
	NoteWrite(pid)
	// The second store of the same page needs its own record.
	mustPanic(t, "no covering log record", func() { NoteWrite(pid) })
}

func TestPanicNamesLastCoveredSite(t *testing.T) {
	defer Reset()
	pid := page.ID{Area: 2, Page: 1}
	NoteUpdate(pid)
	NoteWrite(pid)
	mustPanic(t, "covered by", func() { NoteWrite(pid) })
}

func TestCoverageIsPerPage(t *testing.T) {
	defer Reset()
	NoteUpdate(page.ID{Area: 3, Page: 1})
	mustPanic(t, "no covering log record", func() {
		NoteWrite(page.ID{Area: 3, Page: 2})
	})
}
