//go:build walcheck

package walcheck

import (
	"fmt"
	"runtime"
	"sync"

	"bess/internal/page"
)

// Enabled reports whether runtime write-ahead-order checking is compiled in.
const Enabled = true

var registry struct {
	mu      sync.Mutex
	covered map[page.ID]string // pid -> site of the covering NoteUpdate
	last    map[page.ID]string // pid -> site of the last consumed NoteWrite
}

func init() {
	registry.covered = make(map[page.ID]string)
	registry.last = make(map[page.ID]string)
}

func callsite() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "?"
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// NoteUpdate records that a log record covering the next store of pid was
// appended. Call it right after the Append whose record describes the
// store; the coverage is consumed by exactly one NoteWrite.
func NoteUpdate(pid page.ID) {
	site := callsite()
	registry.mu.Lock()
	// Two appends before one store are legal (the later record still
	// precedes the store); the newer site wins as the covering one.
	registry.covered[pid] = site
	registry.mu.Unlock()
}

// NoteWrite asserts that the store of pid about to happen is covered by a
// log record, and consumes the coverage. An uncovered store panics with
// both stacks: the writing site (the panic's own trace) and, when the
// page was ever legally written, the site of that earlier covered write.
func NoteWrite(pid page.ID) {
	site := callsite()
	registry.mu.Lock()
	cov, ok := registry.covered[pid]
	if ok {
		delete(registry.covered, pid)
		registry.last[pid] = site + " (covered by " + cov + ")"
	}
	prev := registry.last[pid]
	registry.mu.Unlock()
	if !ok {
		var buf [8192]byte
		n := runtime.Stack(buf[:], false)
		if prev == "" {
			prev = "never written under coverage"
		}
		panic(fmt.Sprintf("walcheck: page %v stored at %s with no covering log record — the write-ahead rule requires Append before the store; last covered write: %s\nwriting goroutine:\n%s",
			pid, site, prev, buf[:n]))
	}
}

// Reset clears all recorded coverage (tests that simulate crashes reuse
// page ids across independent histories).
func Reset() {
	registry.mu.Lock()
	registry.covered = make(map[page.ID]string)
	registry.last = make(map[page.ID]string)
	registry.mu.Unlock()
}
