//go:build !walcheck

package walcheck

import (
	"testing"

	"bess/internal/page"
)

func TestDisabledIsFree(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the walcheck tag")
	}
	// Both sides are no-ops: an uncovered write must not panic here.
	pid := page.ID{Area: 1, Page: 1}
	NoteWrite(pid)
	NoteUpdate(pid)
	n := testing.AllocsPerRun(100, func() {
		NoteUpdate(pid)
		NoteWrite(pid)
	})
	if n != 0 {
		t.Fatalf("disabled checker allocates %v per op", n)
	}
}
