package shm

import (
	"errors"
	"sync"
	"testing"

	"bess/internal/page"
	"bess/internal/vmem"
)

// memBacking is a page store with fetch/write-back counters.
type memBacking struct {
	mu      sync.Mutex
	pages   map[page.ID][]byte
	fetches int
	writes  int
}

func newBacking() *memBacking { return &memBacking{pages: make(map[page.ID][]byte)} }

func (b *memBacking) put(id page.ID, tag byte) {
	data := make([]byte, page.Size)
	for i := range data {
		data[i] = tag
	}
	b.pages[id] = data
}

func (b *memBacking) Fetch(id page.ID) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fetches++
	if d, ok := b.pages[id]; ok {
		return append([]byte(nil), d...), nil
	}
	return make([]byte, page.Size), nil
}

func (b *memBacking) WriteBack(id page.ID, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	b.pages[id] = append([]byte(nil), data...)
	return nil
}

func pid(n int) page.ID { return page.ID{Area: 1, Page: page.No(n)} }

func TestRefArithmetic(t *testing.T) {
	r := MakeRef(3, 100)
	if r.FrameOf() != 3 || r.OffsetOf() != 100 {
		t.Fatalf("ref decomposition: %d/%d", r.FrameOf(), r.OffsetOf())
	}
	if NilRef.FrameOf() != 0 {
		t.Fatal("nil ref frame")
	}
}

func TestFigure4Walkthrough(t *testing.T) {
	// The exact scenario of Figure 4: P1 accesses A, P2 accesses B, then C
	// replaces B, then P1 accesses C and sees it at the same SVMA frame.
	back := newBacking()
	back.put(pid('A'), 'A')
	back.put(pid('B'), 'B')
	back.put(pid('C'), 'C')
	sc, err := NewSharedCache(2, 8, back)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := sc.Attach()
	p2, _ := sc.Attach()

	refA, err := p1.Access(pid('A'))
	if err != nil {
		t.Fatal(err)
	}
	refB, err := p2.Access(pid('B'))
	if err != nil {
		t.Fatal(err)
	}
	if refA.FrameOf() == refB.FrameOf() {
		t.Fatal("A and B share an SVMA frame")
	}
	var b [1]byte
	p1.Read(refA, b[:])
	if b[0] != 'A' {
		t.Fatalf("P1 reads %q at A", b[0])
	}
	p2.Read(refB, b[:])
	if b[0] != 'B' {
		t.Fatalf("P2 reads %q at B", b[0])
	}

	// P2 accesses C: cache is full (2 slots: A,B) — replacement must evict
	// something; pressure invalidates process frames until a slot frees.
	refC, err := p2.Access(pid('C'))
	if err != nil {
		t.Fatal(err)
	}
	p2.Read(refC, b[:])
	if b[0] != 'C' {
		t.Fatalf("P2 reads %q at C", b[0])
	}

	// P1 accesses C too: same SVMA frame as P2 sees (the SMT guarantee),
	// different absolute address spaces.
	refC1, err := p1.Access(pid('C'))
	if err != nil {
		t.Fatal(err)
	}
	if refC1 != refC {
		t.Fatalf("C at frame %d for P1 but %d for P2", refC1.FrameOf(), refC.FrameOf())
	}
	if p1.AddrOf(refC) == p2.AddrOf(refC) {
		// Different Spaces may coincidentally share numeric addresses since
		// both reserve from 1; the guarantee is same *frame index*, which
		// holds by construction. Equal addresses are fine.
		t.Log("absolute addresses coincide (both PVMAs reserved identically)")
	}
	p1.Read(refC1, b[:])
	if b[0] != 'C' {
		t.Fatalf("P1 reads %q at C", b[0])
	}
}

func TestSharedVisibility(t *testing.T) {
	back := newBacking()
	back.put(pid(1), 0)
	sc, _ := NewSharedCache(4, 8, back)
	p1, _ := sc.Attach()
	p2, _ := sc.Attach()
	r1, _ := p1.Access(pid(1))
	r2, _ := p2.Access(pid(1))
	if r1 != r2 {
		t.Fatal("same page, different shared refs")
	}
	if err := p1.Write(r1+10, []byte("shared!")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if err := p2.Read(r2+10, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared!" {
		t.Fatalf("P2 sees %q", got)
	}
	// One fetch total: the second process hit the shared cache.
	if back.fetches != 1 {
		t.Fatalf("fetches = %d", back.fetches)
	}
}

func TestSharedPointersValidAcrossProcesses(t *testing.T) {
	// Store a shared-space pointer (Ref) inside a page; both processes can
	// follow it — the §4.1.2 offset-pointer property.
	back := newBacking()
	back.put(pid(1), 0)
	back.put(pid(2), 0)
	sc, _ := NewSharedCache(4, 16, back)
	p1, _ := sc.Attach()
	p2, _ := sc.Attach()

	rTarget, _ := p1.Access(pid(2))
	p1.Write(rTarget+99, []byte("payload"))

	rHome, _ := p1.Access(pid(1))
	var enc [8]byte
	for i := 0; i < 8; i++ {
		enc[i] = byte(uint64(rTarget+99) >> (56 - 8*i))
	}
	p1.Write(rHome, enc[:])

	// P2 reads the pointer and follows it in its own address space.
	rHome2, _ := p2.Access(pid(1))
	var got [8]byte
	p2.Read(rHome2, got[:])
	var raw uint64
	for i := 0; i < 8; i++ {
		raw = raw<<8 | uint64(got[i])
	}
	payload := make([]byte, 7)
	if err := p2.Read(Ref(raw), payload); err != nil {
		t.Fatal(err)
	}
	if string(payload) != "payload" {
		t.Fatalf("followed pointer to %q", payload)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	back := newBacking()
	for i := 1; i <= 4; i++ {
		back.put(pid(i), byte(i))
	}
	sc, _ := NewSharedCache(2, 8, back)
	p, _ := sc.Attach()
	r1, _ := p.Access(pid(1))
	p.Write(r1, []byte{0xEE})
	// Touch more pages than slots; page 1 eventually evicts and its dirty
	// bytes reach the backing store.
	for i := 2; i <= 4; i++ {
		if _, err := p.Access(pid(i)); err != nil {
			t.Fatal(err)
		}
	}
	sc.FlushDirty() // anything still cached
	back.mu.Lock()
	v := back.pages[pid(1)][0]
	back.mu.Unlock()
	if v != 0xEE {
		t.Fatalf("dirty page lost: %x", v)
	}
}

func TestRefaultAfterInvalidation(t *testing.T) {
	back := newBacking()
	back.put(pid(1), 7)
	sc, _ := NewSharedCache(2, 8, back)
	p, _ := sc.Attach()
	r, _ := p.Access(pid(1))
	// Force level-1 invalidation of all frames.
	p.fclock.Pressure(8)
	// Reading again faults, and the handler re-establishes the mapping via
	// the SMT.
	var b [1]byte
	if err := p.Read(r, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 7 {
		t.Fatalf("read %d", b[0])
	}
}

func TestLatches(t *testing.T) {
	back := newBacking()
	back.put(pid(1), 0)
	sc, _ := NewSharedCache(2, 8, back)
	p1, _ := sc.Attach()
	p2, _ := sc.Attach()
	r, _ := p1.Access(pid(1))
	if _, err := p2.Access(pid(1)); err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	done := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		p1.WithLatch(r, func() error {
			close(entered)
			mu.Lock()
			order = append(order, "p1")
			mu.Unlock()
			<-done
			return nil
		})
	}()
	<-entered
	go func() {
		p2.WithLatch(r, func() error {
			mu.Lock()
			order = append(order, "p2")
			mu.Unlock()
			return nil
		})
	}()
	// p2 must be blocked until p1 releases.
	mu.Lock()
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
	mu.Unlock()
	close(done)
	// Wait for p2 to finish.
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 2 {
			break
		}
	}
	mu.Lock()
	if order[0] != "p1" || order[1] != "p2" {
		t.Fatalf("order = %v", order)
	}
	mu.Unlock()
}

func TestCrashCleanupReleasesLatches(t *testing.T) {
	back := newBacking()
	back.put(pid(1), 0)
	sc, _ := NewSharedCache(2, 8, back)
	p1, _ := sc.Attach()
	p2, _ := sc.Attach()
	r, _ := p1.Access(pid(1))
	if _, err := p2.Access(pid(1)); err != nil {
		t.Fatal(err)
	}
	// p1 dies while holding the latch.
	holding := make(chan struct{})
	go p1.WithLatch(r, func() error {
		close(holding)
		select {} // never returns: simulated hang before crash
	})
	<-holding
	p1.Crash()
	// p2 can take the latch because crash cleanup released it.
	ok := make(chan error, 1)
	go func() { ok <- p2.WithLatch(r, func() error { return nil }) }()
	if err := <-ok; err != nil {
		t.Fatal(err)
	}
}

func TestCrashReleasesSlotCounters(t *testing.T) {
	back := newBacking()
	for i := 1; i <= 3; i++ {
		back.put(pid(i), byte(i))
	}
	sc, _ := NewSharedCache(2, 8, back)
	p1, _ := sc.Attach()
	p1.Access(pid(1))
	p1.Access(pid(2))
	p1.Crash()
	// A fresh process can cycle all pages through the 2-slot cache.
	p2, _ := sc.Attach()
	for i := 1; i <= 3; i++ {
		if _, err := p2.Access(pid(i)); err != nil {
			t.Fatalf("page %d after crash: %v", i, err)
		}
	}
}

func TestDetachedProcessRejected(t *testing.T) {
	back := newBacking()
	sc, _ := NewSharedCache(2, 4, back)
	p, _ := sc.Attach()
	r, _ := p.Access(pid(1))
	p.Detach()
	if _, err := p.Access(pid(2)); err != ErrDetached {
		t.Fatalf("access after detach: %v", err)
	}
	if err := p.Read(r, make([]byte, 1)); err != ErrDetached {
		t.Fatalf("read after detach: %v", err)
	}
	p.Detach() // idempotent
}

func TestStaleFrameAccess(t *testing.T) {
	back := newBacking()
	for i := 1; i <= 3; i++ {
		back.put(pid(i), byte(i))
	}
	sc, _ := NewSharedCache(1, 8, back)
	p, _ := sc.Attach()
	r1, _ := p.Access(pid(1))
	// Evict page 1 by accessing others through the single slot.
	p.Access(pid(2))
	p.Access(pid(3))
	// r1's frame was released by the SMT when page 1 left the cache and may
	// have been reassigned ("the SMT assigns an unused virtual frame").
	// A stale shared ref therefore observes whichever page the SMT now
	// binds to that frame, or faults as stale — never torn or foreign
	// bytes. Shared refs are only meant to be used under latching while
	// the page is resident; this test pins down the failure mode.
	var b [1]byte
	err := p.Read(r1, b[:])
	if err == nil {
		cur := sc.smt[r1.FrameOf()]
		if b[0] != byte(cur.Page) {
			t.Fatalf("stale read returned %d, SMT says frame holds page %v", b[0], cur)
		}
	} else if !errors.Is(err, vmem.ErrViolation) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := NewSharedCache(8, 4, newBacking()); err == nil {
		t.Fatal("nframes < nslots accepted")
	}
}

func TestManyProcessesConcurrent(t *testing.T) {
	back := newBacking()
	for i := 0; i < 16; i++ {
		back.put(pid(i), byte(i))
	}
	sc, _ := NewSharedCache(8, 32, back)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		p, err := sc.Attach()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p *Process, g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := pid((g + i) % 16)
				r, err := p.Access(id)
				if err != nil {
					if errors.Is(err, ErrNoVictim) {
						continue
					}
					errs <- err
					return
				}
				var b [1]byte
				if err := p.WithLatch(r, func() error { return p.Read(r, b[:]) }); err != nil {
					if errors.Is(err, ErrNotMapped) || errors.Is(err, vmem.ErrViolation) {
						continue // frame was reclaimed between Access and latch
					}
					errs <- err
					return
				}
			}
			p.Detach()
		}(p, g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
