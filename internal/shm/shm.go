// Package shm implements the BeSS shared-memory operation mode
// (paper §4.1.2, Figures 3 and 4).
//
// Several application processes on one node attach to a shared cache — a
// contiguous sequence of page-size slots — plus control data. Pointers in
// the shared space must be valid for every process, so they are treated
// uniformly as offsets from the beginning of a fictitious shared virtual
// address space (SVMA). Each process reserves the same number of private
// virtual frames (PVMA); a shared mapping table (SMT) assigns every cached
// page to one SVMA frame, so all processes see a page at the same frame
// (though at different absolute addresses). The Ref type performs the
// shm_ref<T> translation between process addresses and shared offsets.
//
// Concurrent access is synchronized with latches (atomic test-and-set in
// the paper, sync.Mutex here), and cleanup of shared structures after a
// process failure follows the action-tracking approach of Rdb/VMS [20].
package shm

import (
	"errors"
	"fmt"
	"sync"

	"bess/internal/cache"
	"bess/internal/page"
	"bess/internal/vmem"
)

// Errors returned by the shm layer.
var (
	ErrNoFrames   = errors.New("shm: shared virtual address space exhausted")
	ErrNoVictim   = errors.New("shm: cache full and no process will release a slot")
	ErrDetached   = errors.New("shm: process detached")
	ErrStaleFrame = errors.New("shm: frame no longer maps a cached page")
	ErrNotMapped  = errors.New("shm: page not accessible in this process")
)

// Backing supplies pages to the shared cache and accepts write-backs: in a
// node server this is the path to the owning BeSS servers.
type Backing interface {
	Fetch(id page.ID) ([]byte, error)
	WriteBack(id page.ID, data []byte) error
}

// Ref is an SVMA offset — the shared-space pointer representation. Ref 0 is
// nil (frame 0 exists but offset 0 is never handed out for object data; we
// simply reserve it).
type Ref uint64

// NilRef is the null shared reference.
const NilRef Ref = 0

// FrameOf returns the SVMA frame index of r.
func (r Ref) FrameOf() int { return int(uint64(r) / vmem.FrameSize) }

// OffsetOf returns the byte offset within the frame.
func (r Ref) OffsetOf() int { return int(uint64(r) % vmem.FrameSize) }

// MakeRef builds a Ref from an SVMA frame and intra-page offset.
func MakeRef(frame, off int) Ref {
	return Ref(uint64(frame)*vmem.FrameSize + uint64(off))
}

// SharedCache is the node-wide cache plus SMT. Safe for concurrent use.
type SharedCache struct {
	mu      sync.Mutex
	pool    *cache.Pool
	backing Backing
	nframes int
	// SMT: SVMA frame → cached page, and the inverse.
	smt      []page.ID
	assigned []bool
	frameOf  map[page.ID]int
	free     []int
	procs    map[int]*Process
	nextProc int

	// slotLatch[i] serializes access to pool slot i — the paper's latches
	// for atomic read/write of cached objects.
	slotLatch []sync.Mutex

	writeBacks int64
}

// NewSharedCache builds a cache of nslots pages with an SVMA of nframes
// frames (nframes >= nslots; the PVMA "may be much larger than the size of
// the shared cache").
func NewSharedCache(nslots, nframes int, backing Backing) (*SharedCache, error) {
	if nframes < nslots {
		return nil, fmt.Errorf("shm: nframes %d < nslots %d", nframes, nslots)
	}
	sc := &SharedCache{
		pool:      cache.NewPool(nslots),
		backing:   backing,
		nframes:   nframes,
		smt:       make([]page.ID, nframes),
		assigned:  make([]bool, nframes),
		frameOf:   make(map[page.ID]int),
		procs:     make(map[int]*Process),
		slotLatch: make([]sync.Mutex, nslots),
	}
	// Frame 0 is reserved so Ref 0 can be nil.
	sc.assigned[0] = true
	for f := nframes - 1; f >= 1; f-- {
		sc.free = append(sc.free, f)
	}
	return sc, nil
}

// Pool exposes the underlying slot pool (stats, tests).
func (sc *SharedCache) Pool() *cache.Pool { return sc.pool }

// WriteBacks reports how many dirty pages were written back on eviction.
func (sc *SharedCache) WriteBacks() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.writeBacks
}

// FrameFor returns the SVMA frame assigned to id, if any.
func (sc *SharedCache) FrameFor(id page.ID) (int, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	f, ok := sc.frameOf[id]
	return f, ok
}

// assignFrameLocked gives id an SVMA frame, reusing an existing assignment.
func (sc *SharedCache) assignFrameLocked(id page.ID) (int, error) {
	if f, ok := sc.frameOf[id]; ok {
		return f, nil
	}
	if len(sc.free) == 0 {
		return 0, ErrNoFrames
	}
	f := sc.free[len(sc.free)-1]
	sc.free = sc.free[:len(sc.free)-1]
	sc.frameOf[id] = f
	sc.smt[f] = id
	sc.assigned[f] = true
	return f, nil
}

func (sc *SharedCache) releaseFrameLocked(id page.ID) {
	f, ok := sc.frameOf[id]
	if !ok {
		return
	}
	delete(sc.frameOf, id)
	sc.smt[f] = page.ID{}
	sc.assigned[f] = false
	sc.free = append(sc.free, f)
}

// acquireSlot brings id into the cache (fetching on miss), handling
// eviction write-back and SMT maintenance. Returns the slot index, pinned.
func (sc *SharedCache) acquireSlot(id page.ID) (int, error) {
	for attempt := 0; attempt < 3; attempt++ {
		slot, hit, ev, err := sc.pool.Acquire(id)
		if err == cache.ErrNoVictim {
			// Two-level clock, level 1: press the resident processes to
			// demote/invalidate their frames (§4.2).
			sc.mu.Lock()
			procs := make([]*Process, 0, len(sc.procs))
			for _, p := range sc.procs {
				procs = append(procs, p)
			}
			sc.mu.Unlock()
			freed := 0
			for _, p := range procs {
				freed += p.fclock.Pressure(1)
			}
			if freed == 0 {
				return 0, ErrNoVictim
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		if ev != nil {
			// The page that lost its slot leaves the cache: write back if
			// dirty and free its SVMA frame.
			if ev.Dirty {
				if err := sc.backing.WriteBack(ev.ID, ev.Data); err != nil {
					sc.pool.Unpin(slot)
					return 0, err
				}
				sc.mu.Lock()
				sc.writeBacks++
				sc.mu.Unlock()
			}
			sc.mu.Lock()
			sc.releaseFrameLocked(ev.ID)
			sc.mu.Unlock()
		}
		if !hit {
			// Fill under the slot latch so a concurrent hit in another
			// process cannot map the slot before the bytes arrive.
			sc.slotLatch[slot].Lock()
			data, err := sc.backing.Fetch(id)
			if err != nil {
				sc.slotLatch[slot].Unlock()
				sc.pool.Unpin(slot)
				return 0, err
			}
			copy(sc.pool.SlotData(slot), data)
			sc.slotLatch[slot].Unlock()
		} else {
			// Barrier: wait out any in-flight fill of this slot.
			sc.slotLatch[slot].Lock()
			//lint:ignore SA2001 empty critical section is the barrier
			sc.slotLatch[slot].Unlock()
		}
		return slot, nil
	}
	return 0, ErrNoVictim
}

// FlushDirty writes every dirty slot back to the backing store (shutdown,
// commit boundaries in the node server).
func (sc *SharedCache) FlushDirty() error {
	for _, id := range sc.pool.DirtyPages() {
		slot, ok := sc.pool.Peek(id)
		if !ok {
			continue
		}
		sc.slotLatch[slot].Lock()
		err := sc.backing.WriteBack(id, append([]byte(nil), sc.pool.SlotData(slot)...))
		sc.slotLatch[slot].Unlock()
		if err != nil {
			return err
		}
		sc.pool.MarkClean(slot)
		sc.mu.Lock()
		sc.writeBacks++
		sc.mu.Unlock()
	}
	return nil
}

// Process is one application process attached to the shared cache, with its
// own PVMA (a vmem.Space) whose frames mirror the SVMA one-to-one.
type Process struct {
	id     int
	sc     *SharedCache
	space  *vmem.Space
	base   vmem.Addr
	fclock *cache.FrameClock

	mu       sync.Mutex
	detached bool
	// Action tracking for failure cleanup [20]: latches currently held.
	heldLatches map[int]struct{}
	mapped      map[int]int // PVMA frame → pool slot
}

// Attach registers a new process: it reserves nframes PVMA frames, all
// access-protected and unmapped.
func (sc *SharedCache) Attach() (*Process, error) {
	space := vmem.New()
	base, err := space.Reserve(sc.nframes)
	if err != nil {
		return nil, err
	}
	p := &Process{
		sc:          sc,
		space:       space,
		base:        base,
		heldLatches: make(map[int]struct{}),
		mapped:      make(map[int]int),
	}
	p.fclock = cache.NewFrameClock(sc.pool, sc.nframes, func(frame, slot int) {
		// Level-1 invalidation revokes this process' access.
		_ = space.Unmap(base + vmem.Addr(frame*vmem.FrameSize))
		p.mu.Lock()
		delete(p.mapped, frame)
		p.mu.Unlock()
	})
	space.SetHandler(p.handleFault)
	sc.mu.Lock()
	sc.nextProc++
	p.id = sc.nextProc
	sc.procs[p.id] = p
	sc.mu.Unlock()
	return p, nil
}

// ID returns the process id.
func (p *Process) ID() int { return p.id }

// Space returns the process' address space (tests).
func (p *Process) Space() *vmem.Space { return p.space }

// AddrOf translates a shared reference to this process' address — the
// shm_ref<T> conversion.
func (p *Process) AddrOf(r Ref) vmem.Addr {
	if r == NilRef {
		return vmem.NilAddr
	}
	return p.base + vmem.Addr(r)
}

// RefOf translates one of this process' addresses back to the shared form.
func (p *Process) RefOf(a vmem.Addr) Ref {
	if a == vmem.NilAddr || a < p.base {
		return NilRef
	}
	return Ref(a - p.base)
}

// handleFault resolves PVMA faults: an unmapped-but-assigned frame is
// re-acquired through the SMT; a protected frame gets its second chance.
func (p *Process) handleFault(f vmem.Fault) error {
	frame := int(f.Frame - p.base.Frame())
	if frame < 0 || frame >= p.sc.nframes {
		return vmem.ErrUnreserved
	}
	switch f.Kind {
	case vmem.FaultNoBacking:
		p.sc.mu.Lock()
		id := p.sc.smt[frame]
		assigned := p.sc.assigned[frame] && frame != 0
		p.sc.mu.Unlock()
		if !assigned {
			return ErrStaleFrame
		}
		_, err := p.ensureMapped(id)
		return err
	case vmem.FaultProtRead, vmem.FaultProtWrite:
		// Second chance: the frame was demoted by the level-1 clock.
		if err := p.fclock.Touch(frame); err != nil {
			return ErrStaleFrame
		}
		return p.space.Protect(vmem.FrameAddr(f.Frame), 1, vmem.ProtReadWrite)
	default:
		return fmt.Errorf("shm: unhandled fault %v", f.Kind)
	}
}

// ensureMapped makes page id accessible in this process and returns its
// SVMA frame.
func (p *Process) ensureMapped(id page.ID) (int, error) {
	p.mu.Lock()
	if p.detached {
		p.mu.Unlock()
		return 0, ErrDetached
	}
	p.mu.Unlock()

	p.sc.mu.Lock()
	frame, err := p.sc.assignFrameLocked(id)
	p.sc.mu.Unlock()
	if err != nil {
		return 0, err
	}
	slot, err := p.sc.acquireSlot(id)
	if err != nil {
		return 0, err
	}
	defer p.sc.pool.Unpin(slot)

	p.mu.Lock()
	cur, have := p.mapped[frame]
	p.mu.Unlock()
	if have && cur == slot {
		// Already mapped; make sure it is accessible (may be demoted).
		_ = p.fclock.Touch(frame)
		_ = p.space.Protect(p.base+vmem.Addr(frame*vmem.FrameSize), 1, vmem.ProtReadWrite)
		return frame, nil
	}
	if err := p.fclock.MapFrame(frame, slot); err != nil {
		return 0, err
	}
	addr := p.base + vmem.Addr(frame*vmem.FrameSize)
	if err := p.space.Remap(addr, p.sc.pool.SlotData(slot), vmem.ProtReadWrite); err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.mapped[frame] = slot
	p.mu.Unlock()
	return frame, nil
}

// Access makes page id accessible and returns the shared reference to its
// first byte. This is the Fig. 4 walkthrough: SMT assignment, cache fill,
// PVMA mapping.
func (p *Process) Access(id page.ID) (Ref, error) {
	frame, err := p.ensureMapped(id)
	if err != nil {
		return NilRef, err
	}
	return MakeRef(frame, 0), nil
}

// Read copies n bytes at shared reference r; faults re-establish mappings
// transparently.
func (p *Process) Read(r Ref, buf []byte) error {
	p.mu.Lock()
	if p.detached {
		p.mu.Unlock()
		return ErrDetached
	}
	p.mu.Unlock()
	return p.space.ReadAt(p.AddrOf(r), buf)
}

// Write copies buf to shared reference r and marks the slot dirty.
func (p *Process) Write(r Ref, buf []byte) error {
	p.mu.Lock()
	if p.detached {
		p.mu.Unlock()
		return ErrDetached
	}
	p.mu.Unlock()
	if err := p.space.WriteAt(p.AddrOf(r), buf); err != nil {
		return err
	}
	if slot := p.fclock.SlotOf(r.FrameOf()); slot >= 0 {
		_ = p.sc.pool.MarkDirty(slot)
	}
	return nil
}

// WithLatch runs fn holding the latch of the slot behind shared frame
// r.FrameOf() — the atomic read/write primitive of §4.1.2.
func (p *Process) WithLatch(r Ref, fn func() error) error {
	slot := p.fclock.SlotOf(r.FrameOf())
	if slot < 0 {
		return ErrNotMapped
	}
	p.sc.slotLatch[slot].Lock()
	p.mu.Lock()
	p.heldLatches[slot] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.heldLatches, slot)
		p.mu.Unlock()
		p.sc.slotLatch[slot].Unlock()
	}()
	return fn()
}

// Detach cleanly releases the process' frames and counters.
func (p *Process) Detach() {
	p.mu.Lock()
	if p.detached {
		p.mu.Unlock()
		return
	}
	p.detached = true
	p.mu.Unlock()
	p.fclock.Release()
	p.sc.mu.Lock()
	delete(p.sc.procs, p.id)
	p.sc.mu.Unlock()
}

// Crash simulates abrupt process failure; the shared cache's cleanup code
// releases whatever the process held (latches, slot counters), as in [20].
func (p *Process) Crash() {
	p.mu.Lock()
	if p.detached {
		p.mu.Unlock()
		return
	}
	p.detached = true
	held := make([]int, 0, len(p.heldLatches))
	for s := range p.heldLatches {
		held = append(held, s)
	}
	p.heldLatches = make(map[int]struct{})
	p.mu.Unlock()
	// Cleanup performed by the surviving system using the action log.
	for _, s := range held {
		p.sc.slotLatch[s].Unlock()
	}
	p.fclock.Release()
	p.sc.mu.Lock()
	delete(p.sc.procs, p.id)
	p.sc.mu.Unlock()
}
