//go:build goleak

package goleak

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Enabled reports whether spawn tracking is compiled in.
const Enabled = true

// checkBudget bounds how long Check waits for tracked goroutines to drain
// before reporting them as leaked. Tests (in-package) may shorten it.
var checkBudget = 2 * time.Second

var reg = struct {
	mu   sync.Mutex
	next uint64
	live map[uint64]string // spawn id -> site label
}{live: make(map[uint64]string)}

// Go runs fn on a new goroutine, registered under the site label name until
// fn returns (or panics — the registration is cleared either way, so a
// crashed goroutine does not read as a leak on top of the panic).
func Go(name string, fn func()) {
	reg.mu.Lock()
	reg.next++
	id := reg.next
	reg.live[id] = name
	reg.mu.Unlock()
	go func() {
		defer func() {
			reg.mu.Lock()
			delete(reg.live, id)
			reg.mu.Unlock()
		}()
		fn()
	}()
}

// Live returns the site labels of the tracked goroutines currently running,
// one entry per goroutine, sorted. With prefixes, only sites whose label
// starts with one of them are reported.
func Live(prefixes ...string) []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	var out []string
	for _, name := range reg.live {
		if matches(name, prefixes) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func matches(name string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Check fails t if any tracked goroutine (matching the prefixes, when
// given) is still live after a short drain window. The failure names each
// leaked site with its live count.
func Check(t TB, prefixes ...string) {
	t.Helper()
	deadline := time.Now().Add(checkBudget)
	for {
		left := Live(prefixes...)
		if len(left) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goleak: %d tracked goroutine(s) still live: %s",
				len(left), strings.Join(aggregate(left), ", "))
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// aggregate folds a sorted label list into "name xN" entries.
func aggregate(sorted []string) []string {
	var out []string
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if n := j - i; n > 1 {
			out = append(out, sorted[i]+" x"+itoa(n))
		} else {
			out = append(out, sorted[i])
		}
		i = j
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
