// Package goleak is the runtime counterpart of bess-vet's golife analyzer:
// a build-tagged goroutine-leak tracker in the mold of internal/lockcheck.
//
// Production code spawns long-lived goroutines through Go(name, fn) instead
// of a bare `go` statement. Without the `goleak` build tag the wrapper
// compiles to a plain `go fn()` and the tracker costs nothing. With
// `-tags goleak` every spawn is registered under its site label until the
// goroutine returns, and tests assert teardown with
//
//	goleak.Check(t)                    // no tracked goroutine may be live
//	goleak.Check(t, "server.")         // none matching the prefixes may be
//
// Check polls briefly (teardown is often signalled just before the spawned
// function returns) and then fails the test naming every still-live site,
// so a leak reads as "rpc.dispatch x3", not as an opaque goroutine dump.
package goleak

// TB is the subset of testing.TB that Check needs. Declaring it here keeps
// the production packages that import goleak free of a testing dependency.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}
