//go:build !goleak

package goleak

// Enabled reports whether spawn tracking is compiled in.
const Enabled = false

// Go runs fn on a new goroutine. Without the goleak tag there is no
// registry: the name is ignored and the wrapper is a plain go statement.
func Go(name string, fn func()) {
	go fn()
}

// Check is a no-op without the goleak tag.
func Check(t TB, prefixes ...string) {}

// Live reports no sites without the goleak tag.
func Live(prefixes ...string) []string { return nil }
