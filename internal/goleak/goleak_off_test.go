//go:build !goleak

package goleak

import (
	"sync"
	"testing"
)

func TestOffModeStillRuns(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true without the goleak tag")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	ran := false
	Go("test.site", func() {
		ran = true
		wg.Done()
	})
	wg.Wait()
	if !ran {
		t.Fatal("Go did not run fn")
	}
	if live := Live(); live != nil {
		t.Fatalf("Live = %v, want nil", live)
	}
	Check(t) // must be a no-op
}
