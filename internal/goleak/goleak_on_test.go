//go:build goleak

package goleak

import (
	"strings"
	"testing"
	"time"
)

type fakeTB struct{ msgs []string }

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.msgs = append(f.msgs, strings.ReplaceAll(format, "%", "")+join(args))
}

func join(args []any) string {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(" ")
		if s, ok := a.(string); ok {
			b.WriteString(s)
		}
	}
	return b.String()
}

func TestGoTracksAndClears(t *testing.T) {
	release := make(chan struct{})
	Go("test.blocked", func() { <-release })
	if live := Live("test."); len(live) != 1 || live[0] != "test.blocked" {
		t.Fatalf("Live = %v, want [test.blocked]", live)
	}
	close(release)
	Check(t, "test.")
	if live := Live("test."); len(live) != 0 {
		t.Fatalf("Live after drain = %v, want empty", live)
	}
}

func TestCheckReportsLeakBySite(t *testing.T) {
	old := checkBudget
	checkBudget = 50 * time.Millisecond
	defer func() { checkBudget = old }()

	release := make(chan struct{})
	Go("test.leak", func() { <-release })
	Go("test.leak", func() { <-release })

	var f fakeTB
	Check(&f, "test.leak")
	if len(f.msgs) != 1 || !strings.Contains(f.msgs[0], "test.leak x2") {
		t.Fatalf("Check reported %q, want one message naming test.leak x2", f.msgs)
	}

	// A prefix that matches nothing passes even while the leak is live.
	var g fakeTB
	Check(&g, "other.")
	if len(g.msgs) != 0 {
		t.Fatalf("prefix-filtered Check reported %q, want none", g.msgs)
	}

	close(release)
	Check(t, "test.leak")
}

func TestGoClearsOnPanic(t *testing.T) {
	done := make(chan struct{})
	Go("test.panics", func() {
		defer func() {
			recover()
			close(done)
		}()
		panic("boom")
	})
	<-done
	Check(t, "test.panics")
}
