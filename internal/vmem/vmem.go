// Package vmem simulates the virtual-memory facilities BeSS obtains from the
// hardware and the UNIX mmap/mprotect interface (paper §2.1–§2.3, §4).
//
// A Space models one process' virtual address range (the paper's PVMA). It
// is a sparse table of fixed-size frames, each either unreserved, reserved
// (no backing store, access-protected), or mapped to a backing byte slice
// with a protection of None, Read, or ReadWrite. Reserving a range consumes
// no memory — exactly the property BeSS exploits to reserve address ranges
// for data segments lazily and cheaply.
//
// Every access goes through Read/Write, which check the frame protection and,
// on a violation, deliver a Fault to the registered handler — the analogue of
// the hardware raising SIGSEGV and the BeSS interrupt handler running. If the
// handler returns nil the access is retried, as the hardware resumes the
// offending instruction.
//
// Substitution note (see DESIGN.md §2): Go cannot take a recoverable fault on
// an ordinary pointer dereference, so "dereference a virtual address" is an
// explicit call here; all protection, reservation, and fault *accounting* —
// the quantities the paper reasons about — is preserved.
package vmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bess/internal/page"
)

// FrameSize is the size of one virtual frame, equal to the BeSS page size.
const FrameSize = page.Size

// Prot is a frame protection level.
type Prot uint8

// Protection levels, in increasing permissiveness.
const (
	ProtNone Prot = iota // reserved/invalid: any access faults
	ProtRead             // reads allowed, writes fault
	ProtReadWrite
)

// String names the protection level.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtRead:
		return "read"
	case ProtReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("prot(%d)", uint8(p))
	}
}

// Addr is a virtual address within a Space.
type Addr uint64

// NilAddr is the null virtual address. Frame 0 is never handed out, so no
// valid object address is ever 0.
const NilAddr Addr = 0

// Frame returns the frame index containing a.
func (a Addr) Frame() int64 { return int64(a) / FrameSize }

// Offset returns the byte offset of a within its frame.
func (a Addr) Offset() int { return int(int64(a) % FrameSize) }

// FrameAddr returns the base address of frame f.
func FrameAddr(f int64) Addr { return Addr(f * FrameSize) }

// FaultKind classifies an access violation.
type FaultKind uint8

// Fault kinds.
const (
	FaultUnreserved FaultKind = iota // access to an unreserved address (true SIGSEGV)
	FaultNoBacking                   // reserved but unmapped frame (BeSS segment fault)
	FaultProtRead                    // read of a ProtNone mapped frame
	FaultProtWrite                   // write of a read-only or ProtNone mapped frame
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultUnreserved:
		return "unreserved"
	case FaultNoBacking:
		return "no-backing"
	case FaultProtRead:
		return "prot-read"
	case FaultProtWrite:
		return "prot-write"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Fault describes one access violation delivered to a handler.
type Fault struct {
	Addr  Addr
	Frame int64
	Kind  FaultKind
	Write bool // the faulting access was a write
}

// Handler is invoked on an access violation, like a SIGSEGV handler. If it
// returns nil the faulting access is retried; an error aborts the access.
type Handler func(Fault) error

// Errors returned by Space operations.
var (
	ErrUnreserved   = errors.New("vmem: address not reserved")
	ErrViolation    = errors.New("vmem: access violation")
	ErrNoHandler    = errors.New("vmem: fault with no handler installed")
	ErrFaultStorm   = errors.New("vmem: fault handler did not resolve violation")
	ErrBadRange     = errors.New("vmem: bad address range")
	ErrDoubleMap    = errors.New("vmem: frame already mapped")
	ErrWrongBacking = errors.New("vmem: backing slice must be FrameSize bytes")
)

// maxRetries bounds handler retry loops; real hardware would loop forever on
// a handler that fixes nothing, we fail fast instead.
const maxRetries = 8

type frame struct {
	prot Prot
	data []byte // nil while reserved-but-unmapped
}

// Stats are cumulative counters for one Space. They are the measurable
// quantities the paper's evaluation reasons about: faults taken, protection
// changes (the "system calls" of §2.2), and reservation footprint.
type Stats struct {
	Faults         int64 // total faults delivered
	FaultsByKind   [4]int64
	ProtectCalls   int64 // Protect invocations (mprotect analogue)
	ReserveCalls   int64
	MapCalls       int64
	ReservedFrames int64 // current
	MappedFrames   int64 // current
}

// Space is one simulated virtual address space.
//
//bess:resource acquire=Space.Map release=Space.Unmap mode=pinned
type Space struct {
	mu      sync.RWMutex
	frames  map[int64]*frame
	next    int64 // next unreserved frame index (bump reservation)
	handler atomic.Pointer[Handler]

	stats struct {
		faults       atomic.Int64
		faultsByKind [4]atomic.Int64
		protects     atomic.Int64
		reserves     atomic.Int64
		maps         atomic.Int64
		reserved     atomic.Int64
		mapped       atomic.Int64
	}
}

// New returns an empty Space. Frame 0 is pre-burned so that address 0 is
// never valid (the null reference).
func New() *Space {
	return &Space{frames: make(map[int64]*frame), next: 1}
}

// SetHandler installs the fault handler (nil uninstalls).
func (s *Space) SetHandler(h Handler) {
	if h == nil {
		s.handler.Store(nil)
		return
	}
	s.handler.Store(&h)
}

// Reserve reserves n contiguous frames, access-protected and unmapped, and
// returns the base address of the range. Reservation allocates no backing
// memory.
func (s *Space) Reserve(n int) (Addr, error) {
	if n <= 0 {
		return NilAddr, ErrBadRange
	}
	s.mu.Lock()
	base := s.next
	s.next += int64(n)
	for i := int64(0); i < int64(n); i++ {
		s.frames[base+i] = &frame{prot: ProtNone}
	}
	s.mu.Unlock()
	s.stats.reserves.Add(1)
	s.stats.reserved.Add(int64(n))
	return FrameAddr(base), nil
}

// Release un-reserves n frames starting at the frame containing base,
// discarding any mappings.
func (s *Space) Release(base Addr, n int) error {
	if n <= 0 || base.Offset() != 0 {
		return ErrBadRange
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f0 := base.Frame()
	for i := int64(0); i < int64(n); i++ {
		fr, ok := s.frames[f0+i]
		if !ok {
			return ErrUnreserved
		}
		if fr.data != nil {
			s.stats.mapped.Add(-1)
		}
		delete(s.frames, f0+i)
	}
	s.stats.reserved.Add(-int64(n))
	return nil
}

// Map attaches backing bytes to the reserved frame containing addr and sets
// its protection. backing must be exactly FrameSize bytes; it is aliased, not
// copied, so several Spaces may map the same slice (the shared cache).
func (s *Space) Map(addr Addr, backing []byte, prot Prot) error {
	if len(backing) != FrameSize {
		return ErrWrongBacking
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.frames[addr.Frame()]
	if !ok {
		return ErrUnreserved
	}
	if fr.data != nil {
		return ErrDoubleMap
	}
	fr.data = backing
	fr.prot = prot
	s.stats.maps.Add(1)
	s.stats.mapped.Add(1)
	return nil
}

// Unmap detaches the backing of the frame containing addr; the frame stays
// reserved and access-protected. This is how a process "disables both read
// and write access" to a PVMA frame whose cache slot was replaced (paper
// §4.1.2).
func (s *Space) Unmap(addr Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.frames[addr.Frame()]
	if !ok {
		return ErrUnreserved
	}
	if fr.data != nil {
		fr.data = nil
		s.stats.mapped.Add(-1)
	}
	fr.prot = ProtNone
	return nil
}

// Remap atomically replaces the backing of the frame containing addr,
// mapping it whether or not it was previously mapped.
func (s *Space) Remap(addr Addr, backing []byte, prot Prot) error {
	if len(backing) != FrameSize {
		return ErrWrongBacking
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.frames[addr.Frame()]
	if !ok {
		return ErrUnreserved
	}
	if fr.data == nil {
		s.stats.mapped.Add(1)
		s.stats.maps.Add(1)
	}
	fr.data = backing
	fr.prot = prot
	return nil
}

// Protect changes the protection of n frames starting at the frame
// containing base. Each call counts once toward the ProtectCalls statistic —
// the "system call" cost of §2.2.
func (s *Space) Protect(base Addr, n int, prot Prot) error {
	if n <= 0 {
		return ErrBadRange
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f0 := base.Frame()
	for i := int64(0); i < int64(n); i++ {
		fr, ok := s.frames[f0+i]
		if !ok {
			return ErrUnreserved
		}
		fr.prot = prot
	}
	s.stats.protects.Add(1)
	return nil
}

// ProtOf returns the protection of the frame containing addr and whether the
// frame is mapped.
func (s *Space) ProtOf(addr Addr) (prot Prot, mapped, reserved bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fr, ok := s.frames[addr.Frame()]
	if !ok {
		return ProtNone, false, false
	}
	return fr.prot, fr.data != nil, true
}

// classify returns the fault for an access, or ok=true if permitted.
func (s *Space) classify(addr Addr, write bool) (Fault, bool) {
	s.mu.RLock()
	fr, ok := s.frames[addr.Frame()]
	s.mu.RUnlock()
	switch {
	case !ok:
		return Fault{Addr: addr, Frame: addr.Frame(), Kind: FaultUnreserved, Write: write}, false
	case fr.data == nil:
		return Fault{Addr: addr, Frame: addr.Frame(), Kind: FaultNoBacking, Write: write}, false
	case write && fr.prot != ProtReadWrite:
		return Fault{Addr: addr, Frame: addr.Frame(), Kind: FaultProtWrite, Write: true}, false
	case !write && fr.prot == ProtNone:
		return Fault{Addr: addr, Frame: addr.Frame(), Kind: FaultProtRead, Write: false}, false
	default:
		return Fault{}, true
	}
}

// deliver runs the fault handler for f, counting the fault.
func (s *Space) deliver(f Fault) error {
	s.stats.faults.Add(1)
	s.stats.faultsByKind[f.Kind].Add(1)
	hp := s.handler.Load()
	if hp == nil {
		return fmt.Errorf("%w: %s at %#x", ErrNoHandler, f.Kind, uint64(f.Addr))
	}
	return (*hp)(f)
}

// access performs op on the frame bytes once protection checks pass,
// delivering faults and retrying as the handler resolves them. The
// half-open byte range [addr, addr+n) must lie within a single frame.
func (s *Space) access(addr Addr, n int, write bool, op func(data []byte)) error {
	if n < 0 || addr.Offset()+n > FrameSize {
		return ErrBadRange
	}
	for try := 0; try <= maxRetries; try++ {
		if f, ok := s.classify(addr, write); !ok {
			if err := s.deliver(f); err != nil {
				return fmt.Errorf("%w: %s at %#x: %v", ErrViolation, f.Kind, uint64(f.Addr), err)
			}
			continue
		}
		s.mu.RLock()
		fr := s.frames[addr.Frame()]
		// Re-check under the lock: the handler may run concurrently with
		// other mutators.
		if fr == nil || fr.data == nil ||
			(write && fr.prot != ProtReadWrite) || (!write && fr.prot == ProtNone) {
			s.mu.RUnlock()
			continue
		}
		op(fr.data[addr.Offset() : addr.Offset()+n])
		s.mu.RUnlock()
		return nil
	}
	return ErrFaultStorm
}

// ReadAt copies len(buf) bytes at addr into buf. The range must not cross a
// frame boundary (BeSS objects never span pages within a data segment read;
// multi-frame copies use ReadRange).
func (s *Space) ReadAt(addr Addr, buf []byte) error {
	return s.access(addr, len(buf), false, func(data []byte) { copy(buf, data) })
}

// WriteAt copies buf to addr, subject to write protection.
func (s *Space) WriteAt(addr Addr, buf []byte) error {
	return s.access(addr, len(buf), true, func(data []byte) { copy(data, buf) })
}

// ReadRange copies len(buf) bytes starting at addr, spanning frames.
func (s *Space) ReadRange(addr Addr, buf []byte) error {
	for len(buf) > 0 {
		n := FrameSize - addr.Offset()
		if n > len(buf) {
			n = len(buf)
		}
		if err := s.ReadAt(addr, buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		addr += Addr(n)
	}
	return nil
}

// WriteRange copies buf starting at addr, spanning frames.
func (s *Space) WriteRange(addr Addr, buf []byte) error {
	for len(buf) > 0 {
		n := FrameSize - addr.Offset()
		if n > len(buf) {
			n = len(buf)
		}
		if err := s.WriteAt(addr, buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		addr += Addr(n)
	}
	return nil
}

// Touch performs a protection check at addr (read or write) without moving
// data, faulting exactly as a real access would. The swizzle layer uses it
// to trigger segment faults.
func (s *Space) Touch(addr Addr, write bool) error {
	return s.access(addr, 0, write, func([]byte) {})
}

// FrameBytes returns the backing slice of the frame containing addr for
// *trusted* code (BeSS internals), bypassing protection. Ordinary user
// access must use ReadAt/WriteAt.
func (s *Space) FrameBytes(addr Addr) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fr, ok := s.frames[addr.Frame()]
	if !ok {
		return nil, ErrUnreserved
	}
	if fr.data == nil {
		return nil, ErrViolation
	}
	return fr.data, nil
}

// Snapshot returns the current statistics.
func (s *Space) Snapshot() Stats {
	var st Stats
	st.Faults = s.stats.faults.Load()
	for i := range st.FaultsByKind {
		st.FaultsByKind[i] = s.stats.faultsByKind[i].Load()
	}
	st.ProtectCalls = s.stats.protects.Load()
	st.ReserveCalls = s.stats.reserves.Load()
	st.MapCalls = s.stats.maps.Load()
	st.ReservedFrames = s.stats.reserved.Load()
	st.MappedFrames = s.stats.mapped.Load()
	return st
}
