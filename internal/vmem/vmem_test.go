package vmem

import (
	"bytes"
	"errors"
	"testing"
)

func TestAddrArithmetic(t *testing.T) {
	a := FrameAddr(3) + 17
	if a.Frame() != 3 || a.Offset() != 17 {
		t.Fatalf("frame/offset = %d/%d", a.Frame(), a.Offset())
	}
	if NilAddr.Frame() != 0 || NilAddr.Offset() != 0 {
		t.Fatal("NilAddr decomposition wrong")
	}
}

func TestReserveIsLazy(t *testing.T) {
	s := New()
	base, err := s.Reserve(1000)
	if err != nil {
		t.Fatal(err)
	}
	if base == NilAddr {
		t.Fatal("Reserve returned nil address")
	}
	st := s.Snapshot()
	if st.ReservedFrames != 1000 || st.MappedFrames != 0 {
		t.Fatalf("reserved/mapped = %d/%d", st.ReservedFrames, st.MappedFrames)
	}
	// Reserved ranges are disjoint.
	base2, _ := s.Reserve(10)
	if base2.Frame() < base.Frame()+1000 {
		t.Fatal("overlapping reservations")
	}
}

func TestAccessUnreservedFaults(t *testing.T) {
	s := New()
	err := s.ReadAt(FrameAddr(99), make([]byte, 4))
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("got %v", err)
	}
	st := s.Snapshot()
	if st.FaultsByKind[FaultUnreserved] != 1 {
		t.Fatalf("unreserved faults = %d", st.FaultsByKind[FaultUnreserved])
	}
}

func TestMapAndAccess(t *testing.T) {
	s := New()
	base, _ := s.Reserve(2)
	backing := make([]byte, FrameSize)
	if err := s.Map(base, backing, ProtReadWrite); err != nil {
		t.Fatal(err)
	}
	msg := []byte("persistent object")
	if err := s.WriteAt(base+8, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.ReadAt(base+8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	// The write went through to the backing slice (in-place access).
	if !bytes.Equal(backing[8:8+len(msg)], msg) {
		t.Fatal("backing slice not updated in place")
	}
}

func TestWriteProtectionFaults(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	if err := s.Map(base, make([]byte, FrameSize), ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(base, make([]byte, 1)); err != nil {
		t.Fatalf("read of read-only frame: %v", err)
	}
	err := s.WriteAt(base, []byte{1})
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("write to read-only frame: %v", err)
	}
	st := s.Snapshot()
	if st.FaultsByKind[FaultProtWrite] != 1 {
		t.Fatalf("prot-write faults = %d", st.FaultsByKind[FaultProtWrite])
	}
}

func TestProtNoneBlocksReads(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	s.Map(base, make([]byte, FrameSize), ProtNone)
	if err := s.ReadAt(base, make([]byte, 1)); !errors.Is(err, ErrViolation) {
		t.Fatalf("read of none frame: %v", err)
	}
}

// TestHandlerResolvesFault models the BeSS interrupt handler: on a write
// fault it "records the update, performs locking, and grants write access
// ... before the offending instruction is resumed" (paper §2.3).
func TestHandlerResolvesFault(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	s.Map(base, make([]byte, FrameSize), ProtRead)
	var recorded []Fault
	s.SetHandler(func(f Fault) error {
		recorded = append(recorded, f)
		return s.Protect(FrameAddr(f.Frame), 1, ProtReadWrite)
	})
	if err := s.WriteAt(base+100, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 1 || recorded[0].Kind != FaultProtWrite || !recorded[0].Write {
		t.Fatalf("recorded = %+v", recorded)
	}
	// Second write: no further fault (access already granted).
	if err := s.WriteAt(base+101, []byte{43}); err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 1 {
		t.Fatalf("faulted again: %d", len(recorded))
	}
}

// TestHandlerDemandMaps models a BeSS data-segment fault: the handler fetches
// the page and maps it, then the access resumes.
func TestHandlerDemandMaps(t *testing.T) {
	s := New()
	base, _ := s.Reserve(4)
	disk := make([]byte, FrameSize)
	copy(disk, []byte("fetched from server"))
	fetches := 0
	s.SetHandler(func(f Fault) error {
		if f.Kind != FaultNoBacking {
			t.Fatalf("unexpected fault kind %v", f.Kind)
		}
		fetches++
		return s.Map(FrameAddr(f.Frame), disk, ProtRead)
	})
	got := make([]byte, 7)
	if err := s.ReadAt(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "fetched" || fetches != 1 {
		t.Fatalf("got %q, fetches %d", got, fetches)
	}
}

func TestFaultStorm(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	s.SetHandler(func(Fault) error { return nil }) // fixes nothing
	err := s.ReadAt(base, make([]byte, 1))
	if !errors.Is(err, ErrFaultStorm) {
		t.Fatalf("got %v", err)
	}
}

func TestHandlerErrorAborts(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	boom := errors.New("boom")
	s.SetHandler(func(Fault) error { return boom })
	err := s.ReadAt(base, make([]byte, 1))
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("got %v", err)
	}
}

func TestUnmapInvalidates(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	s.Map(base, make([]byte, FrameSize), ProtReadWrite)
	if err := s.Unmap(base); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(base, make([]byte, 1)); !errors.Is(err, ErrViolation) {
		t.Fatalf("read after unmap: %v", err)
	}
	st := s.Snapshot()
	if st.MappedFrames != 0 {
		t.Fatalf("mapped = %d", st.MappedFrames)
	}
	// Remapping works after unmap.
	if err := s.Map(base, make([]byte, FrameSize), ProtRead); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleMapRejected(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	s.Map(base, make([]byte, FrameSize), ProtRead)
	if err := s.Map(base, make([]byte, FrameSize), ProtRead); err != ErrDoubleMap {
		t.Fatalf("double map: %v", err)
	}
	// Remap replaces without error.
	fresh := make([]byte, FrameSize)
	fresh[0] = 9
	if err := s.Remap(base, fresh, ProtRead); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	s.ReadAt(base, b[:])
	if b[0] != 9 {
		t.Fatal("remap did not switch backing")
	}
}

func TestMapValidation(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	if err := s.Map(base, make([]byte, 7), ProtRead); err != ErrWrongBacking {
		t.Fatalf("short backing: %v", err)
	}
	if err := s.Map(FrameAddr(12345), make([]byte, FrameSize), ProtRead); err != ErrUnreserved {
		t.Fatalf("map unreserved: %v", err)
	}
}

func TestRelease(t *testing.T) {
	s := New()
	base, _ := s.Reserve(3)
	s.Map(base, make([]byte, FrameSize), ProtRead)
	if err := s.Release(base, 3); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.ReservedFrames != 0 || st.MappedFrames != 0 {
		t.Fatalf("reserved/mapped after release = %d/%d", st.ReservedFrames, st.MappedFrames)
	}
	if err := s.Release(base, 3); err != ErrUnreserved {
		t.Fatalf("double release: %v", err)
	}
	if err := s.Release(base+1, 1); err != ErrBadRange {
		t.Fatalf("unaligned release: %v", err)
	}
}

func TestRangeCopySpansFrames(t *testing.T) {
	s := New()
	base, _ := s.Reserve(3)
	for i := 0; i < 3; i++ {
		s.Map(base+Addr(i*FrameSize), make([]byte, FrameSize), ProtReadWrite)
	}
	data := make([]byte, FrameSize*2+100)
	for i := range data {
		data[i] = byte(i)
	}
	start := base + 50
	if err := s.WriteRange(start, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadRange(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-frame range round trip mismatch")
	}
}

func TestSingleAccessRejectsCrossFrame(t *testing.T) {
	s := New()
	base, _ := s.Reserve(2)
	s.Map(base, make([]byte, FrameSize), ProtReadWrite)
	err := s.ReadAt(base+FrameSize-1, make([]byte, 2))
	if err != ErrBadRange {
		t.Fatalf("cross-frame single access: %v", err)
	}
}

func TestSharedBackingBetweenSpaces(t *testing.T) {
	// Two "processes" map the same cache slot (Fig. 4): writes by one are
	// visible to the other, possibly at different virtual addresses.
	shared := make([]byte, FrameSize)
	p1, p2 := New(), New()
	b1, _ := p1.Reserve(5)
	b2, _ := p2.Reserve(9)
	a1 := b1 + Addr(2*FrameSize)
	a2 := b2 + Addr(7*FrameSize)
	p1.Map(a1, shared, ProtReadWrite)
	p2.Map(a2, shared, ProtRead)
	if err := p1.WriteAt(a1+10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := p2.ReadAt(a2+10, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("shared visibility: %q", got)
	}
}

func TestProtectCounting(t *testing.T) {
	s := New()
	base, _ := s.Reserve(4)
	for i := 0; i < 4; i++ {
		s.Map(base+Addr(i*FrameSize), make([]byte, FrameSize), ProtRead)
	}
	s.Protect(base, 4, ProtReadWrite)
	s.Protect(base, 1, ProtRead)
	st := s.Snapshot()
	if st.ProtectCalls != 2 {
		t.Fatalf("ProtectCalls = %d, want 2", st.ProtectCalls)
	}
}

func TestTouch(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	faults := 0
	s.SetHandler(func(f Fault) error {
		faults++
		return s.Map(FrameAddr(f.Frame), make([]byte, FrameSize), ProtRead)
	})
	if err := s.Touch(base, false); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d", faults)
	}
	if err := s.Touch(base, true); err == nil {
		t.Fatal("write touch on read-only frame should fail (handler doesn't upgrade)")
	}
}

func TestProtOf(t *testing.T) {
	s := New()
	base, _ := s.Reserve(1)
	prot, mapped, reserved := s.ProtOf(base)
	if prot != ProtNone || mapped || !reserved {
		t.Fatalf("fresh reserve: %v %v %v", prot, mapped, reserved)
	}
	s.Map(base, make([]byte, FrameSize), ProtRead)
	prot, mapped, _ = s.ProtOf(base)
	if prot != ProtRead || !mapped {
		t.Fatalf("after map: %v %v", prot, mapped)
	}
	_, _, reserved = s.ProtOf(FrameAddr(424242))
	if reserved {
		t.Fatal("unreserved frame reports reserved")
	}
}

func TestStringers(t *testing.T) {
	if ProtRead.String() != "read" || ProtReadWrite.String() != "read-write" || ProtNone.String() != "none" {
		t.Fatal("Prot strings")
	}
	if FaultNoBacking.String() != "no-backing" || FaultUnreserved.String() != "unreserved" {
		t.Fatal("FaultKind strings")
	}
}
