package cache

import (
	"errors"
	"sync"
	"time"

	"bess/internal/goleak"
	"bess/internal/lockcheck"
	"bess/internal/page"
)

// Version chains for multiversion snapshot reads (DESIGN.md §7).
//
// The newest committed image of a segment always lives on disk (and in the
// regular page cache); the VersionStore retains only superseded images —
// and only those a currently open snapshot might still need. An updater
// stages each segment before overwriting its pages (StageUpdate captures
// the pre-update image while any snapshot is open) and publishes the staged
// set at commit (CommitTx stamps the captured images with their validity
// window and bumps the segment's commit stamp). A snapshot read at stamp T
// resolves to exactly one of: a chain entry whose [From, Until) window
// contains T, the current disk image (when the segment's stamp is ≤ T and
// no update is mid-overwrite), or ErrTrimmed — the caller reconstructs the
// image from WAL before-images instead.
//
// Retention is bounded two ways: a watermark GC goroutine drops every entry
// whose Until is at or below the oldest open snapshot (all entries, when no
// snapshot is open), and a per-segment cap evicts the oldest unpinned entry
// beyond maxVersions (snapshots that still needed it fall back to the WAL).
// The GC goroutine carries stop evidence for bess-vet's golife analyzer:
//
//bess:golife

// ErrTrimmed reports that no retained version covers the requested stamp;
// the caller must reconstruct the image from the WAL (or treat the segment
// as not yet visible at that stamp).
var ErrTrimmed = errors.New("cache: version trimmed")

// Version-store tuning.
const (
	defaultMaxVersions = 8
	versionGCPeriod    = 50 * time.Millisecond
)

// VKey identifies one segment (area id + start page) without importing the
// wire-protocol package.
type VKey struct {
	Area  uint32
	Start int64
}

// VImage is one segment image: the three section byte runs.
type VImage struct {
	Slotted, Overflow, Data []byte
}

func (im *VImage) size() int { return len(im.Slotted) + len(im.Overflow) + len(im.Data) }

func cloneImage(im VImage) VImage {
	return VImage{
		Slotted:  append([]byte(nil), im.Slotted...),
		Overflow: append([]byte(nil), im.Overflow...),
		Data:     append([]byte(nil), im.Data...),
	}
}

// Version is one retained committed image, valid for snapshot stamps in
// [From, Until). It is handed out pinned by AsOf; the pin excludes it from
// GC until Release.
type Version struct {
	Key   VKey
	From  page.LSN // commit stamp that produced this image
	Until page.LSN // commit stamp that superseded it
	Img   VImage

	pins int // pin count; accessed only under the owning store's mu
}

// stagedUpdate is one segment an in-flight transaction has begun
// overwriting: the pre-update image (captured only while a snapshot is
// open) and the stamp that produced it.
type stagedUpdate struct {
	key  VKey
	from page.LSN
	old  *VImage // nil: not captured, WAL fallback covers it
}

// VStats counts version-store activity.
type VStats struct {
	Entries   int   // retained versions
	Bytes     int64 // retained image bytes
	Captures  int64 // pre-update images copied by StageUpdate
	ChainHits int64 // AsOf served from a chain entry
	DiskReads int64 // AsOf resolved to the current disk image
	Waits     int64 // AsOf blocked on a mid-overwrite segment
	Trimmed   int64 // AsOf fell through to WAL reconstruction
	Trims     int64 // entries dropped by GC or the per-segment cap
}

// RankVersionStoreMu is VersionStore.mu's position in the server lock
// hierarchy declared in internal/server/lockorder.go: inside every server
// registry lock (commit hooks stage under segment X locks), outside only
// Log.mu. Exported like wal.RankLogMu because cache cannot import server.
const RankVersionStoreMu lockcheck.Rank = 55

// VersionStore retains superseded segment images for open snapshots.
//
//bess:resource acquire=VersionStore.AsOf release=VersionStore.Release mode=pinned
type VersionStore struct {
	oldest func() (page.LSN, bool) // oldest open snapshot (the GC watermark)

	mu      lockcheck.Mutex
	cond    *sync.Cond
	chains  map[VKey][]*Version       // ascending From; guarded by mu
	stamp   map[VKey]page.LSN         // last commit stamp per key; guarded by mu
	staged  map[VKey]int              // in-flight overwrites per key; guarded by mu
	pending map[uint64][]stagedUpdate // per-tx staged updates; guarded by mu
	stats   VStats                    // guarded by mu

	maxVersions int

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewVersionStore wires a store to its snapshot registry: oldest yields the
// GC watermark. Starts the GC goroutine; Close stops it.
func NewVersionStore(oldest func() (page.LSN, bool)) *VersionStore {
	vs := &VersionStore{
		oldest:      oldest,
		chains:      make(map[VKey][]*Version),
		stamp:       make(map[VKey]page.LSN),
		staged:      make(map[VKey]int),
		pending:     make(map[uint64][]stagedUpdate),
		maxVersions: defaultMaxVersions,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	vs.mu.Init("VersionStore.mu", RankVersionStoreMu)
	vs.cond = sync.NewCond(&vs.mu)
	goleak.Go("cache.versionGC", func() {
		defer close(vs.done)
		t := time.NewTicker(versionGCPeriod)
		defer t.Stop()
		for {
			select {
			case <-vs.stop:
				return
			case <-t.C:
				vs.Trim()
			}
		}
	})
	return vs
}

// Close stops the GC goroutine and drops every unpinned entry. Idempotent.
func (vs *VersionStore) Close() {
	vs.stopOnce.Do(func() { close(vs.stop) })
	<-vs.done
	vs.mu.Lock()
	for key := range vs.chains {
		vs.trimChainLocked(key, 0, false)
	}
	vs.mu.Unlock()
}

// StageUpdate records that txID is about to overwrite key's pages. With
// capture set (the caller saw an open snapshot), old — the current
// committed image — is copied for the version chain; without it, WAL
// before-images cover reconstruction. Must be called before the first page
// of the new image is written, under the updater's X lock.
func (vs *VersionStore) StageUpdate(txID uint64, key VKey, old VImage, capture bool) {
	vs.mu.Lock()
	u := stagedUpdate{key: key, from: vs.stamp[key]}
	if capture {
		img := cloneImage(old)
		u.old = &img
		vs.stats.Captures++
	}
	vs.pending[txID] = append(vs.pending[txID], u)
	vs.staged[key]++
	vs.mu.Unlock()
}

// CommitTx publishes txID's staged updates at commit stamp: captured old
// images join their chains with Until=stamp, segment stamps advance, and
// waiting snapshot reads wake. Runs from the tx commit hook, before lock
// release.
func (vs *VersionStore) CommitTx(txID uint64, stamp page.LSN) {
	vs.mu.Lock()
	for _, u := range vs.pending[txID] {
		if u.old != nil {
			v := &Version{Key: u.key, From: u.from, Until: stamp, Img: *u.old}
			vs.chains[u.key] = append(vs.chains[u.key], v)
			vs.stats.Entries++
			vs.stats.Bytes += int64(v.Img.size())
			vs.capChainLocked(u.key)
		}
		vs.stamp[u.key] = stamp
		vs.unstageLocked(u.key)
	}
	delete(vs.pending, txID)
	vs.cond.Broadcast()
	vs.mu.Unlock()
}

// AbortTx drops txID's staged updates (undo restored the old pages) and
// wakes waiting snapshot reads.
func (vs *VersionStore) AbortTx(txID uint64) {
	vs.mu.Lock()
	for _, u := range vs.pending[txID] {
		vs.unstageLocked(u.key)
	}
	delete(vs.pending, txID)
	vs.cond.Broadcast()
	vs.mu.Unlock()
}

//bess:holds mu
func (vs *VersionStore) unstageLocked(key VKey) {
	if n := vs.staged[key]; n > 1 {
		vs.staged[key] = n - 1
	} else {
		delete(vs.staged, key)
	}
}

// AsOf resolves key as of snapshot stamp t.
//
//   - (v, nil): serve v.Img — a pinned chain entry; Release it afterwards.
//   - (nil, nil): the current disk image is the as-of-t version. The caller
//     reads it and must confirm with Recheck before trusting it (an update
//     may stage mid-read); on a false Recheck, call AsOf again.
//   - (nil, ErrTrimmed): no retained version covers t — reconstruct from
//     the WAL.
//
// AsOf blocks while key is mid-overwrite by an uncommitted update that a
// disk read would race (snapshot reads never block on locks, only on the
// short page-copy window of a committing writer).
func (vs *VersionStore) AsOf(key VKey, t page.LSN) (*Version, error) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for {
		if st := vs.stamp[key]; st <= t {
			// Current image is old enough. A zero st means the segment has
			// not been updated since startup; its image predates every
			// snapshot this store can have issued.
			if vs.staged[key] == 0 {
				vs.stats.DiskReads++
				return nil, nil
			}
			vs.stats.Waits++
			vs.cond.Wait()
			continue
		}
		// Superseded after t: serve the chain entry covering t, if retained.
		var best *Version
		for _, v := range vs.chains[key] {
			if v.From <= t && t < v.Until {
				best = v
				break
			}
		}
		if best == nil {
			vs.stats.Trimmed++
			return nil, ErrTrimmed
		}
		best.pins++
		vs.stats.ChainHits++
		return best, nil
	}
}

// Release unpins a version returned by AsOf. Release(nil) is a no-op (the
// disk-image outcome).
func (vs *VersionStore) Release(v *Version) {
	if v == nil {
		return
	}
	vs.mu.Lock()
	v.pins--
	vs.mu.Unlock()
}

// Recheck reports whether a disk image read after an AsOf disk-read verdict
// is still the valid as-of-t version of key: no update staged against it
// and its stamp still at or below t.
func (vs *VersionStore) Recheck(key VKey, t page.LSN) bool {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.stamp[key] <= t && vs.staged[key] == 0
}

// Trim drops every entry no open snapshot can reach: all of them when no
// snapshot is open, otherwise those whose Until is at or below the oldest
// snapshot's stamp. Pinned entries survive. Called by the GC goroutine and
// on snapshot close.
func (vs *VersionStore) Trim() {
	w, any := vs.oldest()
	vs.mu.Lock()
	for key := range vs.chains {
		vs.trimChainLocked(key, w, any)
	}
	vs.mu.Unlock()
}

//bess:holds mu
func (vs *VersionStore) trimChainLocked(key VKey, w page.LSN, any bool) {
	chain := vs.chains[key]
	kept := chain[:0]
	for _, v := range chain {
		if v.pins == 0 && (!any || v.Until <= w) {
			vs.stats.Entries--
			vs.stats.Bytes -= int64(v.Img.size())
			vs.stats.Trims++
			continue
		}
		kept = append(kept, v)
	}
	if len(kept) == 0 {
		delete(vs.chains, key)
		return
	}
	vs.chains[key] = kept
}

// capChainLocked evicts the oldest unpinned entries beyond maxVersions.
//
//bess:holds mu
func (vs *VersionStore) capChainLocked(key VKey) {
	chain := vs.chains[key]
	for len(chain) > vs.maxVersions {
		drop := -1
		for i, v := range chain {
			if v.pins == 0 {
				drop = i
				break
			}
		}
		if drop < 0 {
			break
		}
		v := chain[drop]
		vs.stats.Entries--
		vs.stats.Bytes -= int64(v.Img.size())
		vs.stats.Trims++
		chain = append(chain[:drop], chain[drop+1:]...)
	}
	vs.chains[key] = chain
}

// VersionStats returns a copy of the counters.
func (vs *VersionStore) VersionStats() VStats {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.stats
}
