package cache

import (
	"container/list"
	"sync"

	"bess/internal/page"
)

// LRU is a textbook least-recently-used page cache used as the baseline
// replacement policy in experiment E4 (BeSS cannot run LRU itself: with
// memory-mapped access the cache manager never sees per-access recency).
type LRU struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent
	byID   map[page.ID]*list.Element
	hits   int64
	misses int64
	evicts int64
}

type lruEntry struct {
	id   page.ID
	data []byte
}

// NewLRU creates an LRU cache of nslots pages.
func NewLRU(nslots int) *LRU {
	if nslots < 1 {
		nslots = 1
	}
	return &LRU{cap: nslots, order: list.New(), byID: make(map[page.ID]*list.Element)}
}

// Get returns the cached page and promotes it.
func (c *LRU) Get(id page.ID) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byID[id]; ok {
		c.order.MoveToFront(e)
		c.hits++
		return e.Value.(*lruEntry).data, true
	}
	c.misses++
	return nil, false
}

// Put inserts a page, evicting the least recently used if full. Returns the
// evicted id, if any.
func (c *LRU) Put(id page.ID, data []byte) (evicted page.ID, did bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byID[id]; ok {
		e.Value.(*lruEntry).data = data
		c.order.MoveToFront(e)
		return page.ID{}, false
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		ent := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.byID, ent.id)
		c.evicts++
		evicted, did = ent.id, true
	}
	c.byID[id] = c.order.PushFront(&lruEntry{id: id, data: data})
	return evicted, did
}

// Stats reports hits, misses, and evictions.
func (c *LRU) Stats() (hits, misses, evicts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts
}

// Len returns the number of cached pages.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
