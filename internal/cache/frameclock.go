package cache

import "sync"

// FrameState is the state of one virtual frame in a process (paper §4.2).
type FrameState uint8

// Frame states: invalid frames are access-protected and correspond to no
// cache slot; protected frames are access-protected but still mapped to a
// slot; accessible frames can be touched without a violation.
const (
	FrameInvalid FrameState = iota
	FrameProtected
	FrameAccessible
)

// String names the frame state.
func (s FrameState) String() string {
	switch s {
	case FrameInvalid:
		return "invalid"
	case FrameProtected:
		return "protected"
	case FrameAccessible:
		return "accessible"
	default:
		return "frame-state?"
	}
}

// OnInvalidate is called when the level-1 clock invalidates a frame, so the
// owner can revoke the process' access (unmap the PVMA frame).
type OnInvalidate func(frame int, slot int)

// FrameClock is the per-process level-1 clock over the process' virtual
// frames. In copy-on-access mode it is the whole replacement algorithm (a
// protected frame's slot is the victim); in shared-memory mode it only
// demotes frames and decrements slot counters, and the pool's level-2 clock
// picks victims among counter-zero slots.
type FrameClock struct {
	mu     sync.Mutex
	pool   *Pool
	states []FrameState
	slot   []int // frame → pool slot (valid when state != FrameInvalid)
	hand   int
	onInv  OnInvalidate

	demotions, invalidations int64
}

// NewFrameClock creates a clock over nframes process frames tied to pool.
func NewFrameClock(pool *Pool, nframes int, onInv OnInvalidate) *FrameClock {
	fc := &FrameClock{
		pool:   pool,
		states: make([]FrameState, nframes),
		slot:   make([]int, nframes),
		onInv:  onInv,
	}
	for i := range fc.slot {
		fc.slot[i] = -1
	}
	return fc
}

// Frames returns the number of frames.
func (fc *FrameClock) Frames() int { return len(fc.states) }

// State returns frame f's state.
func (fc *FrameClock) State(f int) FrameState {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if f < 0 || f >= len(fc.states) {
		return FrameInvalid
	}
	return fc.states[f]
}

// SlotOf returns the pool slot frame f maps, or -1.
func (fc *FrameClock) SlotOf(f int) int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if f < 0 || f >= len(fc.slot) {
		return -1
	}
	return fc.slot[f]
}

// MapFrame records that this process mapped frame f to pool slot s and can
// access it: the frame becomes accessible and the slot counter rises.
func (fc *FrameClock) MapFrame(f, s int) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if f < 0 || f >= len(fc.states) {
		return ErrBadSlot
	}
	if fc.states[f] != FrameInvalid {
		// Remapping an in-use frame: release the old slot first.
		if err := fc.pool.DecCounter(fc.slot[f]); err != nil {
			return err
		}
	}
	if err := fc.pool.IncCounter(s); err != nil {
		return err
	}
	fc.states[f] = FrameAccessible
	fc.slot[f] = s
	return nil
}

// Touch restores accessibility after a protection fault on a protected
// frame (the process re-gains access without re-mapping).
func (fc *FrameClock) Touch(f int) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if f < 0 || f >= len(fc.states) || fc.states[f] == FrameInvalid {
		return ErrBadSlot
	}
	fc.states[f] = FrameAccessible
	return nil
}

// SweepOne advances the hand one step: accessible frames are demoted to
// protected (second chance); a protected frame is invalidated — its slot
// counter drops and the owner unmaps it. Invalid frames are skipped.
// Returns the invalidated (frame, slot) or (-1, -1) if this step only
// demoted/skipped.
func (fc *FrameClock) SweepOne() (frame, slot int) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	n := len(fc.states)
	if n == 0 {
		return -1, -1
	}
	f := fc.hand
	fc.hand = (fc.hand + 1) % n
	switch fc.states[f] {
	case FrameInvalid:
		return -1, -1
	case FrameAccessible:
		fc.states[f] = FrameProtected
		fc.demotions++
		return -1, -1
	case FrameProtected:
		s := fc.slot[f]
		fc.states[f] = FrameInvalid
		fc.slot[f] = -1
		fc.invalidations++
		// Revoke the process' access BEFORE the counter drops: once the
		// counter hits zero the slot is replaceable, so no mapping may
		// remain.
		if fc.onInv != nil {
			fc.onInv(f, s)
		}
		_ = fc.pool.DecCounter(s)
		return f, s
	}
	return -1, -1
}

// Release invalidates every frame this process holds (transaction end in
// per-transaction caching, or process exit cleanup).
func (fc *FrameClock) Release() {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	for f := range fc.states {
		if fc.states[f] != FrameInvalid {
			s := fc.slot[f]
			fc.states[f] = FrameInvalid
			fc.slot[f] = -1
			if fc.onInv != nil {
				fc.onInv(f, s)
			}
			_ = fc.pool.DecCounter(s)
		}
	}
}

// Pressure runs sweep steps until it has invalidated want frames or swept
// two full revolutions. Returns how many frames were invalidated. The shm
// layer calls this on the resident processes when the pool reports
// ErrNoVictim.
func (fc *FrameClock) Pressure(want int) int {
	done := 0
	limit := 2 * len(fc.states)
	for step := 0; step < limit && done < want; step++ {
		if f, _ := fc.SweepOne(); f >= 0 {
			done++
		}
	}
	return done
}

// Counters reports cumulative demotions and invalidations.
func (fc *FrameClock) Counters() (demotions, invalidations int64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.demotions, fc.invalidations
}
