// Package cache implements the BeSS cache and its replacement machinery
// (paper §4.2).
//
// BeSS cannot run the textbook clock algorithm because, under the memory
// mapping architecture, the cache manager does not see which slots were
// accessed recently. Instead the clock is driven by virtual frame states:
// each frame is invalid (access-protected, no cache slot), protected
// (access-protected, has a slot), or accessible. The sweep converts
// accessible frames to protected and picks the slot behind a protected
// frame for replacement.
//
// In shared-memory mode a slot may be mapped by several processes, so the
// clock splits in two levels: level 1 is the per-process frame clock, which
// invalidates protected frames and decrements the per-slot reference
// counter; level 2 sweeps the cache slots and replaces one whose counter has
// dropped to zero.
package cache

import (
	"errors"
	"fmt"
	"sync"

	"bess/internal/page"
)

// Errors returned by the cache layer.
var (
	ErrNoVictim = errors.New("cache: no replaceable slot (all pinned or referenced)")
	ErrBadSlot  = errors.New("cache: slot index out of range")
	ErrFull     = errors.New("cache: full")
)

// Slot is one cache slot's metadata.
type Slot struct {
	ID      page.ID
	Valid   bool
	Dirty   bool
	Pins    int
	Counter int // number of processes that can access this slot (§4.2)
}

// Evicted describes a replaced slot so the caller can write back dirty data.
type Evicted struct {
	ID    page.ID
	Dirty bool
	Data  []byte // copy of the evicted bytes when dirty, nil otherwise
}

// Stats are cumulative pool counters.
type Stats struct {
	Hits, Misses, Evictions int64
	SweepSteps              int64 // level-2 clock hand movements
}

// Pool is the shared cache: a fixed array of page-size slots plus the
// level-2 clock. Safe for concurrent use.
//
//bess:resource acquire=Pool.Acquire release=Pool.Unpin mode=pinned
type Pool struct {
	mu sync.Mutex
	// data is deliberately unguarded: SlotData hands out slices into the
	// arena and pin counts, not mu, keep concurrent users apart.
	data   []byte          // nslots * page.Size, one contiguous arena (Figure 3)
	slots  []Slot          // guarded by mu
	lookup map[page.ID]int // guarded by mu
	hand   int             // guarded by mu
	stats  Stats           // guarded by mu
}

// NewPool creates a pool of nslots page frames.
func NewPool(nslots int) *Pool {
	if nslots < 1 {
		nslots = 1
	}
	return &Pool{
		data:   make([]byte, nslots*page.Size),
		slots:  make([]Slot, nslots),
		lookup: make(map[page.ID]int, nslots),
	}
}

// Cap returns the number of slots.
func (p *Pool) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}

// SlotData returns the backing bytes of slot i. The slice aliases the cache
// arena; processes map it into their address spaces.
func (p *Pool) SlotData(i int) []byte {
	return p.data[i*page.Size : (i+1)*page.Size]
}

// Lookup finds the slot caching id, counting a hit or miss.
func (p *Pool) Lookup(id page.ID) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.lookup[id]
	if ok {
		p.stats.Hits++
	} else {
		p.stats.Misses++
	}
	return i, ok
}

// Peek is Lookup without statistics (internal checks).
func (p *Pool) Peek(id page.ID) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.lookup[id]
	return i, ok
}

// Slot returns a copy of slot i's metadata.
func (p *Pool) Slot(i int) (Slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) {
		return Slot{}, ErrBadSlot
	}
	return p.slots[i], nil
}

// Acquire returns a slot for id: the existing one on a hit, or a victim
// chosen by the level-2 clock on a miss (the caller then fills SlotData and
// calls Commit). The returned Evicted is non-nil when a dirty slot was
// replaced. The slot is pinned; Unpin when done.
func (p *Pool) Acquire(id page.ID) (slot int, hit bool, ev *Evicted, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.lookup[id]; ok {
		p.stats.Hits++
		p.slots[i].Pins++
		return i, true, nil, nil
	}
	p.stats.Misses++
	i, ev, err := p.victimLocked()
	if err != nil {
		return 0, false, nil, err
	}
	p.slots[i] = Slot{ID: id, Valid: true, Pins: 1}
	p.lookup[id] = i
	return i, false, ev, nil
}

// victimLocked runs the level-2 clock: sweep slots, replace one with
// counter zero and no pins. Invalid slots are taken immediately.
//
//bess:holds mu
func (p *Pool) victimLocked() (int, *Evicted, error) {
	n := len(p.slots)
	for step := 0; step < 2*n; step++ {
		i := p.hand
		p.hand = (p.hand + 1) % n
		p.stats.SweepSteps++
		s := &p.slots[i]
		if !s.Valid {
			return i, nil, nil
		}
		if s.Pins > 0 || s.Counter > 0 {
			continue
		}
		// Replaceable.
		var ev *Evicted
		if s.Dirty {
			ev = &Evicted{ID: s.ID, Dirty: true, Data: append([]byte(nil), p.SlotData(i)...)}
		} else {
			ev = &Evicted{ID: s.ID}
		}
		delete(p.lookup, s.ID)
		p.stats.Evictions++
		*s = Slot{}
		return i, ev, nil
	}
	return 0, nil, ErrNoVictim
}

// Pin prevents slot i from being replaced.
func (p *Pool) Pin(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) || !p.slots[i].Valid {
		return ErrBadSlot
	}
	p.slots[i].Pins++
	return nil
}

// Unpin releases a pin.
func (p *Pool) Unpin(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) || p.slots[i].Pins == 0 {
		return ErrBadSlot
	}
	p.slots[i].Pins--
	return nil
}

// MarkDirty flags slot i for write-back on eviction.
func (p *Pool) MarkDirty(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) || !p.slots[i].Valid {
		return ErrBadSlot
	}
	p.slots[i].Dirty = true
	return nil
}

// MarkClean clears the dirty flag (after write-back).
func (p *Pool) MarkClean(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) || !p.slots[i].Valid {
		return ErrBadSlot
	}
	p.slots[i].Dirty = false
	return nil
}

// IncCounter notes that one more process gained access to slot i (§4.2:
// "each process increments it when the process gains access to that slot").
func (p *Pool) IncCounter(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) || !p.slots[i].Valid {
		return ErrBadSlot
	}
	p.slots[i].Counter++
	return nil
}

// DecCounter is called by a process' level-1 clock when it invalidates its
// frame for slot i.
func (p *Pool) DecCounter(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.slots) || p.slots[i].Counter == 0 {
		return ErrBadSlot
	}
	p.slots[i].Counter--
	return nil
}

// DropIfClean removes a clean, unpinned, unreferenced page from the cache
// (callback invalidation uses this).
func (p *Pool) DropIfClean(id page.ID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.lookup[id]
	if !ok {
		return true
	}
	s := &p.slots[i]
	if s.Dirty || s.Pins > 0 || s.Counter > 0 {
		return false
	}
	delete(p.lookup, id)
	*s = Slot{}
	return true
}

// Drop removes id unconditionally (after forced write-back), returning the
// dirty bytes if any.
func (p *Pool) Drop(id page.ID) *Evicted {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.lookup[id]
	if !ok {
		return nil
	}
	s := &p.slots[i]
	var ev *Evicted
	if s.Dirty {
		ev = &Evicted{ID: id, Dirty: true, Data: append([]byte(nil), p.SlotData(i)...)}
	} else {
		ev = &Evicted{ID: id}
	}
	delete(p.lookup, id)
	*s = Slot{}
	return ev
}

// Snapshot returns cumulative statistics.
func (p *Pool) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// DirtyPages lists the ids of dirty slots (checkpoints, shutdown flush).
func (p *Pool) DirtyPages() []page.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []page.ID
	for i := range p.slots {
		if p.slots[i].Valid && p.slots[i].Dirty {
			out = append(out, p.slots[i].ID)
		}
	}
	return out
}

// String summarizes the pool for diagnostics.
func (p *Pool) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := 0
	for i := range p.slots {
		if p.slots[i].Valid {
			live++
		}
	}
	return fmt.Sprintf("cache{slots=%d live=%d hits=%d misses=%d evictions=%d}",
		len(p.slots), live, p.stats.Hits, p.stats.Misses, p.stats.Evictions)
}
