package cache

import (
	"testing"

	"bess/internal/page"
)

func pid(n int) page.ID { return page.ID{Area: 1, Page: page.No(n)} }

func TestAcquireHitMiss(t *testing.T) {
	p := NewPool(4)
	s1, hit, ev, err := p.Acquire(pid(1))
	if err != nil || hit || ev != nil {
		t.Fatalf("first acquire: %d %v %v %v", s1, hit, ev, err)
	}
	copy(p.SlotData(s1), []byte("page-one"))
	p.Unpin(s1)
	s2, hit, _, err := p.Acquire(pid(1))
	if err != nil || !hit || s2 != s1 {
		t.Fatalf("second acquire: %d %v %v", s2, hit, err)
	}
	if string(p.SlotData(s2)[:8]) != "page-one" {
		t.Fatal("data lost")
	}
	p.Unpin(s2)
	st := p.Snapshot()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p := NewPool(2)
	a, _, _, _ := p.Acquire(pid(1))
	copy(p.SlotData(a), []byte("dirty-bytes"))
	p.MarkDirty(a)
	p.Unpin(a)
	b, _, _, _ := p.Acquire(pid(2))
	p.Unpin(b)
	// Third page evicts one of the two; continue until pid(1) goes.
	var ev *Evicted
	for n := 3; n < 6; n++ {
		s, _, e, err := p.Acquire(pid(n))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(s)
		if e != nil && e.ID == pid(1) {
			ev = e
			break
		}
	}
	if ev == nil {
		t.Fatal("dirty page never evicted")
	}
	if !ev.Dirty || string(ev.Data[:11]) != "dirty-bytes" {
		t.Fatalf("evicted = %+v", ev)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p := NewPool(2)
	a, _, _, _ := p.Acquire(pid(1)) // stays pinned
	b, _, _, _ := p.Acquire(pid(2))
	p.Unpin(b)
	s, _, ev, err := p.Acquire(pid(3))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.ID != pid(2) {
		t.Fatalf("evicted %+v, want pid(2)", ev)
	}
	p.Unpin(s)
	_ = a
	// Now both remaining are pinned (slot a) or just acquired (pinned).
	if _, _, _, err := p.Acquire(pid(4)); err != nil {
		t.Fatal(err) // s was unpinned, so 4 can replace 3
	}
}

func TestNoVictimWhenAllPinned(t *testing.T) {
	p := NewPool(2)
	p.Acquire(pid(1))
	p.Acquire(pid(2))
	if _, _, _, err := p.Acquire(pid(3)); err != ErrNoVictim {
		t.Fatalf("got %v", err)
	}
}

func TestCounterBlocksReplacement(t *testing.T) {
	p := NewPool(2)
	a, _, _, _ := p.Acquire(pid(1))
	p.Unpin(a)
	p.IncCounter(a) // some process can access this slot
	b, _, _, _ := p.Acquire(pid(2))
	p.Unpin(b)
	p.IncCounter(b)
	if _, _, _, err := p.Acquire(pid(3)); err != ErrNoVictim {
		t.Fatalf("counters ignored: %v", err)
	}
	p.DecCounter(a)
	s, _, ev, err := p.Acquire(pid(3))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.ID != pid(1) {
		t.Fatalf("evicted %+v", ev)
	}
	p.Unpin(s)
}

func TestDropIfClean(t *testing.T) {
	p := NewPool(2)
	a, _, _, _ := p.Acquire(pid(1))
	p.Unpin(a)
	if !p.DropIfClean(pid(1)) {
		t.Fatal("clean drop refused")
	}
	if _, ok := p.Peek(pid(1)); ok {
		t.Fatal("page still cached")
	}
	b, _, _, _ := p.Acquire(pid(2))
	p.MarkDirty(b)
	p.Unpin(b)
	if p.DropIfClean(pid(2)) {
		t.Fatal("dirty drop allowed")
	}
	ev := p.Drop(pid(2))
	if ev == nil || !ev.Dirty {
		t.Fatalf("forced drop: %+v", ev)
	}
	if p.Drop(pid(99)) != nil {
		t.Fatal("drop of absent page returned eviction")
	}
	if !p.DropIfClean(pid(99)) {
		t.Fatal("absent DropIfClean should be true")
	}
}

func TestMarkCleanAndDirtyPages(t *testing.T) {
	p := NewPool(4)
	a, _, _, _ := p.Acquire(pid(1))
	p.MarkDirty(a)
	if len(p.DirtyPages()) != 1 {
		t.Fatal("dirty list")
	}
	p.MarkClean(a)
	if len(p.DirtyPages()) != 0 {
		t.Fatal("clean list")
	}
	if err := p.MarkDirty(99); err != ErrBadSlot {
		t.Fatal("bad slot accepted")
	}
}

func TestFrameClockSecondChance(t *testing.T) {
	p := NewPool(4)
	var unmapped []int
	fc := NewFrameClock(p, 3, func(frame, slot int) { unmapped = append(unmapped, frame) })

	s0, _, _, _ := p.Acquire(pid(1))
	p.Unpin(s0)
	if err := fc.MapFrame(0, s0); err != nil {
		t.Fatal(err)
	}
	if fc.State(0) != FrameAccessible {
		t.Fatalf("state = %v", fc.State(0))
	}
	sl, _ := p.Slot(s0)
	if sl.Counter != 1 {
		t.Fatalf("counter = %d", sl.Counter)
	}
	// First sweep demotes; second invalidates.
	if f, _ := fc.SweepOne(); f != -1 {
		t.Fatal("first sweep should demote, not invalidate")
	}
	if fc.State(0) != FrameProtected {
		t.Fatalf("state = %v", fc.State(0))
	}
	// Sweep wraps the other (invalid) frames.
	fc.SweepOne()
	fc.SweepOne()
	f, s := fc.SweepOne()
	if f != 0 || s != s0 {
		t.Fatalf("invalidate = %d,%d", f, s)
	}
	sl, _ = p.Slot(s0)
	if sl.Counter != 0 {
		t.Fatalf("counter = %d", sl.Counter)
	}
	if len(unmapped) != 1 || unmapped[0] != 0 {
		t.Fatalf("unmapped = %v", unmapped)
	}
	d, inv := fc.Counters()
	if d != 1 || inv != 1 {
		t.Fatalf("counters = %d/%d", d, inv)
	}
}

func TestFrameClockTouchGivesSecondChance(t *testing.T) {
	p := NewPool(2)
	fc := NewFrameClock(p, 1, nil)
	s0, _, _, _ := p.Acquire(pid(1))
	p.Unpin(s0)
	fc.MapFrame(0, s0)
	fc.SweepOne() // demote
	if err := fc.Touch(0); err != nil {
		t.Fatal(err)
	}
	if fc.State(0) != FrameAccessible {
		t.Fatal("touch did not restore access")
	}
	fc.SweepOne() // demotes again rather than invalidating
	if fc.State(0) != FrameProtected {
		t.Fatal("second chance not honored")
	}
}

func TestFrameClockRemap(t *testing.T) {
	p := NewPool(4)
	fc := NewFrameClock(p, 2, nil)
	s0, _, _, _ := p.Acquire(pid(1))
	p.Unpin(s0)
	s1, _, _, _ := p.Acquire(pid(2))
	p.Unpin(s1)
	fc.MapFrame(0, s0)
	fc.MapFrame(0, s1) // remap frame 0 to another slot
	a, _ := p.Slot(s0)
	b, _ := p.Slot(s1)
	if a.Counter != 0 || b.Counter != 1 {
		t.Fatalf("counters = %d/%d", a.Counter, b.Counter)
	}
	if fc.SlotOf(0) != s1 {
		t.Fatal("slot mapping wrong")
	}
	if fc.SlotOf(5) != -1 {
		t.Fatal("out of range SlotOf")
	}
}

func TestFrameClockRelease(t *testing.T) {
	p := NewPool(4)
	fc := NewFrameClock(p, 3, nil)
	for i := 0; i < 3; i++ {
		s, _, _, _ := p.Acquire(pid(i + 1))
		p.Unpin(s)
		fc.MapFrame(i, s)
	}
	fc.Release()
	for i := 0; i < 3; i++ {
		if fc.State(i) != FrameInvalid {
			t.Fatalf("frame %d not invalid", i)
		}
	}
	// All counters back to zero → everything replaceable.
	for n := 10; n < 14; n++ {
		s, _, _, err := p.Acquire(pid(n))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(s)
	}
}

func TestTwoLevelPressure(t *testing.T) {
	// Pool full of counter-held slots; Pressure on the process clocks frees
	// enough for a new page — the §4.2 two-level interplay.
	p := NewPool(3)
	fc1 := NewFrameClock(p, 3, nil)
	fc2 := NewFrameClock(p, 3, nil)
	for i := 0; i < 3; i++ {
		s, _, _, _ := p.Acquire(pid(i + 1))
		p.Unpin(s)
		fc1.MapFrame(i, s)
		if i < 2 {
			fc2.MapFrame(i, s) // process 2 shares two of the slots
		}
	}
	if _, _, _, err := p.Acquire(pid(9)); err != ErrNoVictim {
		t.Fatalf("expected no victim, got %v", err)
	}
	// Level 1 pressure on both processes until a slot frees.
	freed := fc1.Pressure(3)
	if freed == 0 {
		t.Fatal("pressure freed nothing")
	}
	fc2.Pressure(3)
	s, _, ev, err := p.Acquire(pid(9))
	if err != nil {
		t.Fatalf("after pressure: %v", err)
	}
	if ev == nil {
		t.Fatal("no eviction")
	}
	p.Unpin(s)
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	c.Put(pid(1), []byte("one"))
	c.Put(pid(2), []byte("two"))
	if d, ok := c.Get(pid(1)); !ok || string(d) != "one" {
		t.Fatal("get 1")
	}
	// 2 is now LRU; inserting 3 evicts it.
	ev, did := c.Put(pid(3), []byte("three"))
	if !did || ev != pid(2) {
		t.Fatalf("evicted %v %v", ev, did)
	}
	if _, ok := c.Get(pid(2)); ok {
		t.Fatal("2 still cached")
	}
	hits, misses, evicts := c.Stats()
	if hits != 1 || misses != 1 || evicts != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, evicts)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Update in place does not evict.
	if _, did := c.Put(pid(3), []byte("III")); did {
		t.Fatal("update evicted")
	}
	if d, _ := c.Get(pid(3)); string(d) != "III" {
		t.Fatal("update lost")
	}
}

func TestStateStrings(t *testing.T) {
	if FrameInvalid.String() != "invalid" || FrameProtected.String() != "protected" ||
		FrameAccessible.String() != "accessible" {
		t.Fatal("frame state strings")
	}
}
