package largeobj

import (
	"bytes"
	"math/rand"
	"testing"

	"bess/internal/area"
	"bess/internal/page"
)

func newStore(t *testing.T) *AreaStore {
	t.Helper()
	a, err := area.NewMem(1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	return &AreaStore{A: a}
}

func create(t *testing.T, hint int64) *Object {
	t.Helper()
	o, err := Create(newStore(t), hint)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func readAll(t *testing.T, o *Object) []byte {
	t.Helper()
	buf := make([]byte, o.Size())
	if err := o.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// pattern produces deterministic but position-distinct bytes.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestAppendAndRead(t *testing.T) {
	o := create(t, 0)
	data := pattern(100_000, 1)
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 100_000 {
		t.Fatalf("size = %d", o.Size())
	}
	if !bytes.Equal(readAll(t, o), data) {
		t.Fatal("content mismatch")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Partial read.
	buf := make([]byte, 1000)
	if err := o.Read(50_000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[50_000:51_000]) {
		t.Fatal("partial read mismatch")
	}
}

func TestAppendFillsTail(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(100, 1))
	segs := o.Segments()
	o.Append(pattern(100, 2))
	if o.Segments() != segs {
		t.Fatalf("small appends allocated new segments: %d -> %d", segs, o.Segments())
	}
	want := append(pattern(100, 1), pattern(100, 2)...)
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("content after tail fill")
	}
}

func TestWriteInPlace(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(200_000, 1))
	patch := pattern(5000, 9)
	if err := o.Write(70_000, patch); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, o)
	want := pattern(200_000, 1)
	copy(want[70_000:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("overwrite mismatch")
	}
	if o.Size() != 200_000 {
		t.Fatalf("size changed: %d", o.Size())
	}
}

func TestWriteExtends(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(1000, 1))
	if err := o.Write(500, pattern(1000, 2)); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 1500 {
		t.Fatalf("size = %d", o.Size())
	}
	want := append(pattern(1000, 1)[:500], pattern(1000, 2)...)
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("extend-write mismatch")
	}
}

func TestInsertMiddle(t *testing.T) {
	o := create(t, 0)
	base := pattern(150_000, 1)
	o.Append(base)
	ins := pattern(10_000, 5)
	if err := o.Insert(60_000, ins); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 160_000 {
		t.Fatalf("size = %d", o.Size())
	}
	want := append(append(append([]byte{}, base[:60_000]...), ins...), base[60_000:]...)
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("insert mismatch")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertTouchesFewSegments(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(64*DefaultSegmentBytes, 1)) // 64 segments, 4MB
	r0, w0, _, _ := o.Stats()
	if err := o.Insert(int64(30*DefaultSegmentBytes+1234), pattern(100, 7)); err != nil {
		t.Fatal(err)
	}
	r1, w1, _, _ := o.Stats()
	// The edit reads the host segment once and writes a handful of
	// segments, regardless of the 4MB object size.
	if r1-r0 > 3 || w1-w0 > 5 {
		t.Fatalf("insert did %d reads, %d writes", r1-r0, w1-w0)
	}
}

func TestInsertAtBoundaryAndEnds(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(DefaultSegmentBytes, 1)) // exactly one full segment
	// Insert at 0 (clean boundary).
	if err := o.Insert(0, pattern(10, 2)); err != nil {
		t.Fatal(err)
	}
	// Insert at end (append path).
	if err := o.Insert(o.Size(), pattern(10, 3)); err != nil {
		t.Fatal(err)
	}
	want := append(append(pattern(10, 2), pattern(DefaultSegmentBytes, 1)...), pattern(10, 3)...)
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("boundary insert mismatch")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRanges(t *testing.T) {
	o := create(t, 0)
	base := pattern(200_000, 1)
	o.Append(base)
	// Delete a range spanning several segments; it fully covers the second
	// 64KB segment (bytes 65536..131072), which must be freed.
	if err := o.Delete(50_000, 90_000); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, base[:50_000]...), base[140_000:]...)
	if o.Size() != int64(len(want)) {
		t.Fatalf("size = %d, want %d", o.Size(), len(want))
	}
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("delete mismatch")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleting fully-covered segments freed disk space.
	_, _, allocs, frees := o.Stats()
	if frees == 0 || frees >= allocs {
		t.Fatalf("allocs=%d frees=%d", allocs, frees)
	}
}

func TestDeleteWithinOneSegment(t *testing.T) {
	o := create(t, 0)
	base := pattern(10_000, 1)
	o.Append(base)
	if err := o.Delete(100, 50); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, base[:100]...), base[150:]...)
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("intra-segment delete mismatch")
	}
}

func TestTruncate(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(100_000, 1))
	if err := o.Truncate(1234); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 1234 {
		t.Fatalf("size = %d", o.Size())
	}
	if !bytes.Equal(readAll(t, o), pattern(100_000, 1)[:1234]) {
		t.Fatal("truncate mismatch")
	}
	if err := o.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 || o.Segments() != 0 {
		t.Fatalf("empty object: size=%d segs=%d", o.Size(), o.Segments())
	}
}

func TestBoundsChecked(t *testing.T) {
	o := create(t, 0)
	o.Append(pattern(100, 1))
	if err := o.Read(50, make([]byte, 100)); err != ErrBadRange {
		t.Fatalf("over-read: %v", err)
	}
	if err := o.Read(-1, make([]byte, 1)); err != ErrBadRange {
		t.Fatalf("negative read: %v", err)
	}
	if err := o.Write(200, []byte{1}); err != ErrBadRange {
		t.Fatalf("write past size: %v", err)
	}
	if err := o.Insert(101, []byte{1}); err != ErrBadRange {
		t.Fatalf("insert past size: %v", err)
	}
	if err := o.Delete(90, 20); err != ErrBadRange {
		t.Fatalf("delete past size: %v", err)
	}
	if err := o.Truncate(200); err != ErrBadRange {
		t.Fatalf("truncate up: %v", err)
	}
}

func TestSizeHint(t *testing.T) {
	small, _ := Create(newStore(t), 0)
	big, _ := Create(newStore(t), 256<<20) // 256MB hint
	if big.SegmentBytes() <= small.SegmentBytes() {
		t.Fatalf("hint ignored: %d vs %d", big.SegmentBytes(), small.SegmentBytes())
	}
	if _, err := Create(newStore(t), -1); err != ErrBadHint {
		t.Fatalf("negative hint: %v", err)
	}
	// Hint is clamped to the maximum segment.
	huge, _ := Create(newStore(t), 1<<40)
	if huge.SegmentBytes() > (page.PerExtent/2)*page.Size {
		t.Fatalf("hint not clamped: %d", huge.SegmentBytes())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	st := newStore(t)
	o, _ := Create(st, 0)
	base := pattern(123_456, 3)
	o.Append(base)
	o.Insert(1000, pattern(500, 8))
	o.Delete(50_000, 10_000)
	want := readAll(t, o)

	desc := o.EncodeDescriptor()
	o2, err := Open(st, desc)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Size() != int64(len(want)) {
		t.Fatalf("reopened size = %d", o2.Size())
	}
	if !bytes.Equal(readAll(t, o2), want) {
		t.Fatal("reopened content mismatch")
	}
	if err := o2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Continue mutating the reopened object.
	if err := o2.Append(pattern(100, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	st := newStore(t)
	o, _ := Create(st, 0)
	o.Append(pattern(1000, 1))
	desc := o.EncodeDescriptor()
	bad := append([]byte{}, desc...)
	bad[0] = 0
	if _, err := Open(st, bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	short := desc[:10]
	if _, err := Open(st, short); err == nil {
		t.Fatal("short descriptor accepted")
	}
	// Size mismatch.
	bad2 := append([]byte{}, desc...)
	bad2[15] ^= 0x01
	if _, err := Open(st, bad2); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDestroy(t *testing.T) {
	st := newStore(t)
	freeBefore := st.A.FreePages()
	o, _ := Create(st, 0)
	o.Append(pattern(500_000, 1))
	if st.A.FreePages() >= freeBefore {
		t.Fatal("no pages allocated")
	}
	if err := o.Destroy(); err != nil {
		t.Fatal(err)
	}
	if st.A.FreePages() != freeBefore {
		t.Fatalf("pages leaked: %d vs %d", st.A.FreePages(), freeBefore)
	}
	if err := o.Append([]byte{1}); err != ErrDestroyed {
		t.Fatalf("use after destroy: %v", err)
	}
}

func TestDeepTree(t *testing.T) {
	o := create(t, 0)
	o.SetFanout(4) // force depth quickly
	for i := 0; i < 200; i++ {
		if err := o.Insert(int64(i*3%max(1, int(o.Size()))), pattern(100, byte(i))); err != nil {
			// Position may be invalid when size is 0; use append.
			if err := o.Append(pattern(100, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if o.Depth() < 3 {
		t.Fatalf("depth = %d, expected a real tree", o.Depth())
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestModelEquivalence drives random byte-range operations against both the
// large object and a plain []byte model — the E5 correctness property.
func TestModelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o := create(t, 0)
		if seed%2 == 1 {
			o.SetFanout(4)
		}
		var model []byte
		for op := 0; op < 120; op++ {
			switch rng.Intn(5) {
			case 0: // append
				d := pattern(rng.Intn(20_000), byte(op))
				if err := o.Append(d); err != nil {
					t.Fatal(err)
				}
				model = append(model, d...)
			case 1: // insert
				if len(model) == 0 {
					continue
				}
				pos := int64(rng.Intn(len(model) + 1))
				d := pattern(rng.Intn(10_000), byte(op))
				if err := o.Insert(pos, d); err != nil {
					t.Fatal(err)
				}
				model = append(model[:pos:pos], append(append([]byte{}, d...), model[pos:]...)...)
			case 2: // delete
				if len(model) == 0 {
					continue
				}
				pos := rng.Intn(len(model))
				n := rng.Intn(len(model) - pos)
				if err := o.Delete(int64(pos), int64(n)); err != nil {
					t.Fatal(err)
				}
				model = append(model[:pos:pos], model[pos+n:]...)
			case 3: // overwrite
				if len(model) == 0 {
					continue
				}
				pos := rng.Intn(len(model))
				n := rng.Intn(min(8000, len(model)-pos))
				d := pattern(n, byte(op+13))
				if err := o.Write(int64(pos), d); err != nil {
					t.Fatal(err)
				}
				copy(model[pos:], d)
			case 4: // read check of a random window
				if o.Size() != int64(len(model)) {
					t.Fatalf("seed %d op %d: size %d vs model %d", seed, op, o.Size(), len(model))
				}
				if len(model) == 0 {
					continue
				}
				pos := rng.Intn(len(model))
				n := rng.Intn(min(10_000, len(model)-pos))
				buf := make([]byte, n)
				if err := o.Read(int64(pos), buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, model[pos:pos+n]) {
					t.Fatalf("seed %d op %d: window mismatch at %d+%d", seed, op, pos, n)
				}
			}
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(readAll(t, o), model) {
			t.Fatalf("seed %d: final content mismatch (size %d vs %d)", seed, o.Size(), len(model))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
