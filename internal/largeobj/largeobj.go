// Package largeobj implements the BeSS very-large-object class (paper §2.1,
// references [3,4]): an object stored in a sequence of variable-size disk
// segments indexed by a positional B+-tree, supporting efficient byte-range
// operations — read, write, insert, delete at an arbitrary byte position,
// append, and truncate — without rewriting the whole object.
//
// Internal nodes hold subtree byte counts; leaves hold extents (disk segment
// runs with a used-byte count). An insert in the middle of a multi-megabyte
// object touches only the segments overlapping the edit plus O(log n) index
// nodes, which is the property experiment E5 measures against the
// rewrite-everything baseline.
//
// The user can supply a size hint at creation ("in anticipation of object
// growth, hints about the potential size of the object can be provided");
// the hint sets the target segment size.
package largeobj

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bess/internal/page"
)

// Store is the disk substrate: contiguous page runs allocated and freed by
// the storage-area layer.
type Store interface {
	// Alloc allocates a run of at least nPages pages, returning the start
	// page and granted length.
	Alloc(nPages int) (page.No, int, error)
	// Free releases a run previously returned by Alloc.
	Free(start page.No) error
	// ReadRun reads n pages starting at start.
	ReadRun(start page.No, n int, buf []byte) error
	// WriteRun writes len(data)/page.Size pages starting at start.
	WriteRun(start page.No, data []byte) error
}

// Errors returned by large-object operations.
var (
	ErrBadRange  = errors.New("largeobj: byte range out of bounds")
	ErrCorrupt   = errors.New("largeobj: corrupt descriptor")
	ErrBadHint   = errors.New("largeobj: size hint must be positive")
	ErrDestroyed = errors.New("largeobj: object destroyed")
)

// extent is one leaf entry: a disk segment run holding `used` bytes.
type extent struct {
	start page.No
	pages int32
	used  int32
}

func (e extent) capBytes() int { return int(e.pages) * page.Size }

// Tree geometry: maximum entries per leaf and children per internal node.
// Variable so E5's ablation can sweep it.
type node struct {
	leaf  bool
	ents  []extent // leaf
	kids  []*node  // internal
	sizes []int64  // byte size per kid
	total int64
}

func (n *node) computeTotal() int64 {
	if n.leaf {
		var t int64
		for _, e := range n.ents {
			t += int64(e.used)
		}
		n.total = t
		return t
	}
	var t int64
	for _, s := range n.sizes {
		t += s
	}
	n.total = t
	return t
}

// Object is one very large object. Not safe for concurrent use; the owning
// transaction serializes access.
type Object struct {
	store     Store
	root      *node
	size      int64
	segHint   int // target bytes per allocated segment
	fanout    int
	destroyed bool

	// Stats for E5.
	segReads, segWrites, allocs, frees int64
}

// DefaultSegmentBytes is the target segment size absent a hint.
const DefaultSegmentBytes = 16 * page.Size // 64KB

// DefaultFanout is the tree fanout (entries per leaf / kids per internal).
const DefaultFanout = 32

// Create makes an empty large object. sizeHint (bytes, 0 = default) sets the
// target segment size: objects expected to grow big get bigger segments.
func Create(store Store, sizeHint int64) (*Object, error) {
	seg := DefaultSegmentBytes
	if sizeHint > 0 {
		// Aim for ~64 segments at the hinted size, clamped to [1 page, 1/2 extent].
		target := int(sizeHint / 64)
		seg = clampSeg(target)
	} else if sizeHint < 0 {
		return nil, ErrBadHint
	}
	return &Object{
		store:   store,
		root:    &node{leaf: true},
		segHint: seg,
		fanout:  DefaultFanout,
	}, nil
}

func clampSeg(target int) int {
	if target < page.Size {
		return page.Size
	}
	max := (page.PerExtent / 2) * page.Size
	if target > max {
		return max
	}
	// Round to whole pages.
	return (target / page.Size) * page.Size
}

// SetFanout overrides the tree fanout (ablation benches only; must be >=4).
func (o *Object) SetFanout(f int) {
	if f >= 4 {
		o.fanout = f
	}
}

// SegmentBytes returns the target segment size in effect.
func (o *Object) SegmentBytes() int { return o.segHint }

// Size returns the object's length in bytes.
func (o *Object) Size() int64 { return o.size }

// Stats reports segment-level I/O counters.
func (o *Object) Stats() (reads, writes, allocs, frees int64) {
	return o.segReads, o.segWrites, o.allocs, o.frees
}

// Segments returns the number of extents (tree leaves' entries).
func (o *Object) Segments() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n.leaf {
			return len(n.ents)
		}
		c := 0
		for _, k := range n.kids {
			c += count(k)
		}
		return c
	}
	return count(o.root)
}

// Depth returns the tree height (1 = a single leaf).
func (o *Object) Depth() int {
	d := 1
	for n := o.root; !n.leaf; n = n.kids[0] {
		d++
	}
	return d
}

// --- segment I/O helpers ---

func (o *Object) readExtent(e extent) ([]byte, error) {
	buf := make([]byte, e.capBytes())
	if err := o.store.ReadRun(e.start, int(e.pages), buf); err != nil {
		return nil, err
	}
	o.segReads++
	return buf, nil
}

func (o *Object) writeExtent(e extent, data []byte) error {
	if len(data) != e.capBytes() {
		padded := make([]byte, e.capBytes())
		copy(padded, data)
		data = padded
	}
	if err := o.store.WriteRun(e.start, data); err != nil {
		return err
	}
	o.segWrites++
	return nil
}

// allocExtents cuts data into hint-sized segments and writes them out.
func (o *Object) allocExtents(data []byte) ([]extent, error) {
	var out []extent
	for len(data) > 0 {
		n := o.segHint
		if n > len(data) {
			n = len(data)
		}
		pagesWanted := (n + page.Size - 1) / page.Size
		start, granted, err := o.store.Alloc(pagesWanted)
		if err != nil {
			return out, err
		}
		o.allocs++
		e := extent{start: start, pages: int32(granted), used: int32(n)}
		if err := o.writeExtent(e, data[:n]); err != nil {
			return out, err
		}
		out = append(out, e)
		data = data[n:]
	}
	return out, nil
}

// --- tree primitives ---

// walk visits extents covering [off, off+n) in order, passing each extent's
// starting byte offset within the object. fn returning false stops the walk.
func (o *Object) walk(off, n int64, fn func(e extent, objOff int64) bool) {
	var rec func(nd *node, base int64) bool
	rec = func(nd *node, base int64) bool {
		if nd.leaf {
			cur := base
			for _, e := range nd.ents {
				end := cur + int64(e.used)
				if end > off && cur < off+n {
					if !fn(e, cur) {
						return false
					}
				}
				if cur >= off+n {
					return false
				}
				cur = end
			}
			return true
		}
		cur := base
		for i, k := range nd.kids {
			end := cur + nd.sizes[i]
			if end > off && cur < off+n {
				if !rec(k, cur) {
					return false
				}
			}
			if cur >= off+n {
				return false
			}
			cur = end
		}
		return true
	}
	rec(o.root, 0)
}

// insertAt inserts extents so the first one begins at byte position pos,
// which must be an entry boundary (callers split extents first).
func (o *Object) insertAt(pos int64, ents []extent) {
	if len(ents) == 0 {
		return
	}
	right := o.insertRec(o.root, pos, ents)
	if right != nil {
		// Root split: grow the tree.
		left := o.root
		o.root = &node{
			kids:  []*node{left, right},
			sizes: []int64{left.computeTotal(), right.computeTotal()},
		}
		o.root.computeTotal()
	}
}

func (o *Object) insertRec(n *node, pos int64, ents []extent) *node {
	if n.leaf {
		// Find the boundary index.
		idx := 0
		cur := int64(0)
		for idx < len(n.ents) && cur < pos {
			cur += int64(n.ents[idx].used)
			idx++
		}
		// (cur == pos guaranteed by callers.)
		n.ents = append(n.ents[:idx:idx], append(append([]extent{}, ents...), n.ents[idx:]...)...)
		n.computeTotal()
		if len(n.ents) <= o.fanout {
			return nil
		}
		mid := len(n.ents) / 2
		right := &node{leaf: true, ents: append([]extent{}, n.ents[mid:]...)}
		n.ents = n.ents[:mid]
		n.computeTotal()
		right.computeTotal()
		return right
	}
	// Internal: pick the kid whose range contains pos; a boundary position
	// goes to the earlier kid when it lands exactly at its end, except when
	// that kid is followed by nothing (append goes to the last kid).
	cur := int64(0)
	ki := len(n.kids) - 1
	for i := range n.kids {
		end := cur + n.sizes[i]
		if pos <= end {
			ki = i
			break
		}
		cur = end
	}
	right := o.insertRec(n.kids[ki], pos-cur, ents)
	n.sizes[ki] = n.kids[ki].total
	if right != nil {
		n.kids = append(n.kids[:ki+1:ki+1], append([]*node{right}, n.kids[ki+1:]...)...)
		n.sizes = append(n.sizes[:ki+1:ki+1], append([]int64{right.total}, n.sizes[ki+1:]...)...)
	}
	n.computeTotal()
	if len(n.kids) <= o.fanout {
		return nil
	}
	mid := len(n.kids) / 2
	r := &node{
		kids:  append([]*node{}, n.kids[mid:]...),
		sizes: append([]int64{}, n.sizes[mid:]...),
	}
	n.kids = n.kids[:mid]
	n.sizes = n.sizes[:mid]
	n.computeTotal()
	r.computeTotal()
	return r
}

// removeEntryAt removes the single extent starting exactly at byte pos.
func (o *Object) removeEntryAt(pos int64) {
	o.removeRec(o.root, pos)
	// Collapse a root with a single internal kid.
	for !o.root.leaf && len(o.root.kids) == 1 {
		o.root = o.root.kids[0]
	}
}

func (o *Object) removeRec(n *node, pos int64) {
	if n.leaf {
		cur := int64(0)
		for i := range n.ents {
			if cur == pos {
				n.ents = append(n.ents[:i:i], n.ents[i+1:]...)
				n.computeTotal()
				return
			}
			cur += int64(n.ents[i].used)
		}
		return
	}
	cur := int64(0)
	for i := range n.kids {
		end := cur + n.sizes[i]
		if pos < end || (pos == cur && n.sizes[i] == 0) {
			o.removeRec(n.kids[i], pos-cur)
			n.sizes[i] = n.kids[i].total
			// Drop empty kids (lazy rebalance: nodes may run underfull but
			// never empty).
			if (n.kids[i].leaf && len(n.kids[i].ents) == 0) ||
				(!n.kids[i].leaf && len(n.kids[i].kids) == 0) {
				n.kids = append(n.kids[:i:i], n.kids[i+1:]...)
				n.sizes = append(n.sizes[:i:i], n.sizes[i+1:]...)
			}
			n.computeTotal()
			return
		}
		cur = end
	}
}

// updateEntryAt replaces the extent starting at pos with e (used/pages may
// differ) and fixes sizes up the tree.
func (o *Object) updateEntryAt(pos int64, e extent) {
	var rec func(n *node, pos int64) bool
	rec = func(n *node, pos int64) bool {
		if n.leaf {
			cur := int64(0)
			for i := range n.ents {
				if cur == pos {
					n.ents[i] = e
					n.computeTotal()
					return true
				}
				cur += int64(n.ents[i].used)
			}
			return false
		}
		cur := int64(0)
		for i := range n.kids {
			end := cur + n.sizes[i]
			if pos < end || (pos == cur && n.sizes[i] == 0) {
				ok := rec(n.kids[i], pos-cur)
				n.sizes[i] = n.kids[i].total
				n.computeTotal()
				return ok
			}
			cur = end
		}
		return false
	}
	rec(o.root, pos)
}

// checkLive guards destroyed objects.
func (o *Object) checkLive() error {
	if o.destroyed {
		return ErrDestroyed
	}
	return nil
}

// --- byte-range operations ---

// Read copies bytes [off, off+len(buf)) into buf.
func (o *Object) Read(off int64, buf []byte) error {
	if err := o.checkLive(); err != nil {
		return err
	}
	if off < 0 || off+int64(len(buf)) > o.size {
		return ErrBadRange
	}
	if len(buf) == 0 {
		return nil
	}
	var ioErr error
	o.walk(off, int64(len(buf)), func(e extent, objOff int64) bool {
		data, err := o.readExtent(e)
		if err != nil {
			ioErr = err
			return false
		}
		// Overlap of [objOff, objOff+used) with [off, off+len).
		from := max64(off, objOff)
		to := min64(off+int64(len(buf)), objOff+int64(e.used))
		copy(buf[from-off:to-off], data[from-objOff:to-objOff])
		return true
	})
	return ioErr
}

// Write overwrites bytes [off, off+len(data)); writes ending beyond the
// current size extend the object (append semantics for the overhang).
func (o *Object) Write(off int64, data []byte) error {
	if err := o.checkLive(); err != nil {
		return err
	}
	if off < 0 || off > o.size {
		return ErrBadRange
	}
	if len(data) == 0 {
		return nil
	}
	// Overhang beyond size is an append.
	overlap := o.size - off
	if overlap > int64(len(data)) {
		overlap = int64(len(data))
	}
	if overlap > 0 {
		var ioErr error
		type patch struct {
			e      extent
			objOff int64
		}
		var patches []patch
		o.walk(off, overlap, func(e extent, objOff int64) bool {
			patches = append(patches, patch{e, objOff})
			return true
		})
		for _, p := range patches {
			buf, err := o.readExtent(p.e)
			if err != nil {
				return err
			}
			from := max64(off, p.objOff)
			to := min64(off+overlap, p.objOff+int64(p.e.used))
			copy(buf[from-p.objOff:to-p.objOff], data[from-off:to-off])
			if err := o.writeExtent(p.e, buf); err != nil {
				return err
			}
		}
		if ioErr != nil {
			return ioErr
		}
	}
	if int64(len(data)) > overlap {
		return o.Append(data[overlap:])
	}
	return nil
}

// Append adds data at the end of the object, filling the last segment's
// free space before allocating new segments.
func (o *Object) Append(data []byte) error {
	if err := o.checkLive(); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	// Fill the tail of the last extent, if any space remains.
	if o.size > 0 {
		var last extent
		var lastOff int64 = -1
		o.walk(o.size-1, 1, func(e extent, objOff int64) bool {
			last, lastOff = e, objOff
			return true
		})
		if lastOff >= 0 && int(last.used) < last.capBytes() {
			room := last.capBytes() - int(last.used)
			n := room
			if n > len(data) {
				n = len(data)
			}
			buf, err := o.readExtent(last)
			if err != nil {
				return err
			}
			copy(buf[last.used:], data[:n])
			grown := last
			grown.used += int32(n)
			if err := o.writeExtent(grown, buf); err != nil {
				return err
			}
			o.updateEntryAt(lastOff, grown)
			o.size += int64(n)
			data = data[n:]
		}
	}
	if len(data) == 0 {
		return nil
	}
	ents, err := o.allocExtents(data)
	if err != nil {
		return err
	}
	o.insertAt(o.size, ents)
	o.size += int64(len(data))
	return nil
}

// Insert inserts data at byte position off, shifting the tail of the object
// without rewriting it: only the extent containing off is split.
func (o *Object) Insert(off int64, data []byte) error {
	if err := o.checkLive(); err != nil {
		return err
	}
	if off < 0 || off > o.size {
		return ErrBadRange
	}
	if len(data) == 0 {
		return nil
	}
	if off == o.size {
		return o.Append(data)
	}
	// Find the extent containing off and split it at the insertion point.
	var host extent
	var hostOff int64 = -1
	o.walk(off, 1, func(e extent, objOff int64) bool {
		host, hostOff = e, objOff
		return false
	})
	if hostOff < 0 {
		return ErrBadRange
	}
	cut := int(off - hostOff)
	insPos := off
	var newEnts []extent
	if cut == 0 {
		// Clean boundary: no split needed.
		var err error
		newEnts, err = o.allocExtents(data)
		if err != nil {
			return err
		}
		insPos = hostOff
	} else {
		buf, err := o.readExtent(host)
		if err != nil {
			return err
		}
		tail := append([]byte(nil), buf[cut:host.used]...)
		// Shrink the host in place.
		shrunk := host
		shrunk.used = int32(cut)
		o.updateEntryAt(hostOff, shrunk)
		// New segments: inserted data, then the tail.
		newEnts, err = o.allocExtents(data)
		if err != nil {
			return err
		}
		tailEnts, err := o.allocExtents(tail)
		if err != nil {
			return err
		}
		newEnts = append(newEnts, tailEnts...)
		insPos = hostOff + int64(cut)
	}
	o.insertAt(insPos, newEnts)
	o.size += int64(len(data))
	return nil
}

// Delete removes n bytes starting at off, closing the gap. Only the extents
// overlapping the range are touched.
func (o *Object) Delete(off, n int64) error {
	if err := o.checkLive(); err != nil {
		return err
	}
	if off < 0 || n < 0 || off+n > o.size {
		return ErrBadRange
	}
	if n == 0 {
		return nil
	}
	type hit struct {
		e      extent
		objOff int64
	}
	var hits []hit
	o.walk(off, n, func(e extent, objOff int64) bool {
		hits = append(hits, hit{e, objOff})
		return true
	})
	// Process back to front so byte offsets of earlier entries stay valid.
	for i := len(hits) - 1; i >= 0; i-- {
		h := hits[i]
		from := max64(off, h.objOff)
		to := min64(off+n, h.objOff+int64(h.e.used))
		cut := to - from
		switch {
		case from == h.objOff && to == h.objOff+int64(h.e.used):
			// Fully covered: free and drop.
			o.removeEntryAt(h.objOff)
			if err := o.store.Free(h.e.start); err != nil {
				return err
			}
			o.frees++
		default:
			// Partial: slide the surviving tail left within the segment.
			buf, err := o.readExtent(h.e)
			if err != nil {
				return err
			}
			copy(buf[from-h.objOff:], buf[to-h.objOff:h.e.used])
			trimmed := h.e
			trimmed.used -= int32(cut)
			if err := o.writeExtent(trimmed, buf); err != nil {
				return err
			}
			o.updateEntryAt(h.objOff, trimmed)
		}
	}
	o.size -= n
	return nil
}

// Truncate shrinks the object to n bytes (growing is Append's job).
func (o *Object) Truncate(n int64) error {
	if err := o.checkLive(); err != nil {
		return err
	}
	if n < 0 || n > o.size {
		return ErrBadRange
	}
	return o.Delete(n, o.size-n)
}

// Destroy frees every segment; the object becomes unusable.
func (o *Object) Destroy() error {
	if err := o.checkLive(); err != nil {
		return err
	}
	var firstErr error
	o.walk(0, o.size, func(e extent, _ int64) bool {
		if err := o.store.Free(e.start); err != nil && firstErr == nil {
			firstErr = err
		}
		o.frees++
		return true
	})
	o.root = &node{leaf: true}
	o.size = 0
	o.destroyed = true
	return firstErr
}

// --- persistence ---

// descriptor layout: magic(4) segHint(4) size(8) nExtents(4) then extents
// (start 8, pages 4, used 4 each).
const descMagic = 0xBE55B16C

// EncodeDescriptor serializes the object's index (extent list in order).
// The caller stores the blob (typically in the overflow segment or a
// dedicated index run); Open rebuilds the tree from it.
func (o *Object) EncodeDescriptor() []byte {
	var ents []extent
	o.walk(0, o.size, func(e extent, _ int64) bool {
		ents = append(ents, e)
		return true
	})
	buf := make([]byte, 20+len(ents)*16)
	binary.BigEndian.PutUint32(buf[0:4], descMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(o.segHint))
	binary.BigEndian.PutUint64(buf[8:16], uint64(o.size))
	binary.BigEndian.PutUint32(buf[16:20], uint32(len(ents)))
	p := 20
	for _, e := range ents {
		binary.BigEndian.PutUint64(buf[p:], uint64(e.start))
		binary.BigEndian.PutUint32(buf[p+8:], uint32(e.pages))
		binary.BigEndian.PutUint32(buf[p+12:], uint32(e.used))
		p += 16
	}
	return buf
}

// Open rebuilds a large object from a descriptor blob.
func Open(store Store, desc []byte) (*Object, error) {
	if len(desc) < 20 || binary.BigEndian.Uint32(desc[0:4]) != descMagic {
		return nil, ErrCorrupt
	}
	o := &Object{
		store:   store,
		root:    &node{leaf: true},
		segHint: int(binary.BigEndian.Uint32(desc[4:8])),
		fanout:  DefaultFanout,
	}
	size := int64(binary.BigEndian.Uint64(desc[8:16]))
	n := int(binary.BigEndian.Uint32(desc[16:20]))
	if len(desc) < 20+n*16 {
		return nil, ErrCorrupt
	}
	p := 20
	var ents []extent
	var total int64
	for i := 0; i < n; i++ {
		e := extent{
			start: page.No(binary.BigEndian.Uint64(desc[p:])),
			pages: int32(binary.BigEndian.Uint32(desc[p+8:])),
			used:  int32(binary.BigEndian.Uint32(desc[p+12:])),
		}
		if e.used < 0 || int(e.used) > e.capBytes() {
			return nil, ErrCorrupt
		}
		ents = append(ents, e)
		total += int64(e.used)
		p += 16
	}
	if total != size {
		return nil, fmt.Errorf("%w: extents sum to %d, size says %d", ErrCorrupt, total, size)
	}
	// Bulk-load via repeated boundary inserts (keeps the tree balanced
	// enough; splits happen as needed).
	for i := 0; i < len(ents); i += o.fanout / 2 {
		j := i + o.fanout/2
		if j > len(ents) {
			j = len(ents)
		}
		o.insertAt(o.size, ents[i:j])
		for _, e := range ents[i:j] {
			o.size += int64(e.used)
		}
	}
	return o, nil
}

// CheckInvariants validates tree bookkeeping (sizes vs entries) — tests and
// the inspect tool call it.
func (o *Object) CheckInvariants() error {
	var rec func(n *node) (int64, error)
	rec = func(n *node) (int64, error) {
		if n.leaf {
			var t int64
			for _, e := range n.ents {
				if e.used < 0 || int(e.used) > e.capBytes() {
					return 0, fmt.Errorf("largeobj: extent used %d exceeds cap %d", e.used, e.capBytes())
				}
				t += int64(e.used)
			}
			if t != n.total {
				return 0, fmt.Errorf("largeobj: leaf total %d != computed %d", n.total, t)
			}
			return t, nil
		}
		if len(n.kids) != len(n.sizes) {
			return 0, errors.New("largeobj: kids/sizes length mismatch")
		}
		var t int64
		for i, k := range n.kids {
			kt, err := rec(k)
			if err != nil {
				return 0, err
			}
			if kt != n.sizes[i] {
				return 0, fmt.Errorf("largeobj: size[%d]=%d, subtree has %d", i, n.sizes[i], kt)
			}
			t += kt
		}
		if t != n.total {
			return 0, fmt.Errorf("largeobj: internal total %d != computed %d", n.total, t)
		}
		return t, nil
	}
	t, err := rec(o.root)
	if err != nil {
		return err
	}
	if t != o.size {
		return fmt.Errorf("largeobj: tree holds %d bytes, size says %d", t, o.size)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
