package largeobj

import (
	"fmt"

	"bess/internal/area"
	"bess/internal/page"
)

// AreaStore adapts a storage area to the large-object Store interface.
type AreaStore struct {
	A *area.Area
}

var _ Store = (*AreaStore)(nil)

// Alloc allocates a segment from the area.
func (s *AreaStore) Alloc(nPages int) (page.No, int, error) {
	return s.A.AllocSegment(nPages)
}

// Free releases a segment.
func (s *AreaStore) Free(start page.No) error {
	return s.A.FreeSegment(start)
}

// ReadRun reads n contiguous pages into buf.
func (s *AreaStore) ReadRun(start page.No, n int, buf []byte) error {
	if len(buf) < n*page.Size {
		return fmt.Errorf("largeobj: ReadRun buffer too small (%d < %d)", len(buf), n*page.Size)
	}
	for i := 0; i < n; i++ {
		if err := s.A.ReadPage(start+page.No(i), buf[i*page.Size:(i+1)*page.Size]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes len(data)/page.Size contiguous pages.
func (s *AreaStore) WriteRun(start page.No, data []byte) error {
	n := len(data) / page.Size
	for i := 0; i < n; i++ {
		if err := s.A.WritePage(start+page.No(i), data[i*page.Size:(i+1)*page.Size]); err != nil {
			return err
		}
	}
	return nil
}
