package client

import (
	"errors"
	"fmt"
	"sync"

	"bess/internal/detect"
	"bess/internal/largeobj"
	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// Errors returned by sessions.
var (
	ErrNoTx      = errors.New("client: no active transaction")
	ErrTxActive  = errors.New("client: transaction already active")
	ErrDirtySeg  = errors.New("client: operation invalid on a segment dirty in this transaction")
	ErrStaleRoot = errors.New("client: root object OID is stale")
)

// Stats are per-session counters: the quantities E2/E6 report.
type Stats struct {
	Transactions int64
	Snapshots    int64 // snapshot transactions opened (E16)
	LocalGrants  int64 // segment accesses served from the inter-tx cache
	SegsShipped  int64 // segment images shipped at commits
	Drops        int64 // cached copies dropped by callbacks
	Refusals     int64 // callbacks refused (copy in use)
}

// Session is one application's copy-on-access connection to a database:
// a private address space and buffer pool, segments cached across
// transactions, callback-maintained consistency, and commit shipping.
type Session struct {
	mu     sync.Mutex
	conn   proto.Conn
	remote *Remote // non-nil when conn is RPC-backed
	client uint32
	db     uint32
	host   uint16
	types  *segment.Registry
	space  *vmem.Space
	mapper *swizzle.Mapper
	fetch  *fetcher
	det    *detect.Detector

	txID         uint64                // guarded by mu
	inTx         bool                  // guarded by mu
	xLocked      map[proto.SegKey]bool // guarded by mu
	touched      map[proto.SegKey]bool // guarded by mu
	dirtySlotted map[proto.SegKey]bool // guarded by mu

	// Snapshot mode (snapshot.go): while snapMode is set the session is a
	// read-only transaction pinned to snapStamp. snapFetched tracks as-of
	// images cached by the fetcher and snapDrops the copies revoked during
	// the snapshot; both are dropped at EndSnapshot.
	snapMode    bool                   // guarded by mu
	snapID      uint64                 // guarded by mu
	snapStamp   uint64                 // guarded by mu
	snapFetched map[swizzle.SegID]bool // guarded by mu
	snapDrops   map[proto.SegKey]bool  // guarded by mu
	// pendingDrops holds callback revocations accepted between
	// transactions; the application thread applies them at the next Begin
	// (the mapper is single-threaded by design, so the RPC goroutine never
	// touches it).
	pendingDrops map[proto.SegKey]bool // guarded by mu

	// Streaming scan tuning (prefetch.go). Set before StreamScan; not
	// touched by the RPC goroutine.
	scanWindow int
	scanBatch  int
	scanHook   func(images, bytes int)
	lastScan   *scanStream // most recent stream, kept for leak checks in tests

	stats Stats // guarded by mu
}

// Open connects a session to database dbName through conn (a direct
// server handle, a node server, or a Remote). create makes the database if
// absent.
func Open(conn proto.Conn, name, dbName string, create bool) (*Session, error) {
	s := &Session{
		conn:         conn,
		types:        segment.NewRegistry(),
		space:        vmem.New(),
		xLocked:      make(map[proto.SegKey]bool),
		touched:      make(map[proto.SegKey]bool),
		dirtySlotted: make(map[proto.SegKey]bool),
		pendingDrops: make(map[proto.SegKey]bool),
	}
	id, err := conn.Hello(name)
	if err != nil {
		return nil, err
	}
	s.client = id
	s.db, s.host, err = conn.OpenDB(dbName, create)
	if err != nil {
		return nil, err
	}
	// Load the database's registered types.
	infos, err := conn.Types(s.db)
	if err != nil {
		return nil, err
	}
	for _, ti := range infos {
		if _, err := s.types.Register(ti.ToDesc()); err != nil {
			return nil, err
		}
	}
	s.fetch = &fetcher{s: s}
	s.mapper = swizzle.NewMapper(s.space, s.fetch, s.types)
	s.det = detect.New(s.mapper, true)
	s.det.SetAccessFunc(s.onAccess)
	// Wire the revocation path. Remote connections route the server's
	// Callback RPC here; direct server handles and node servers expose a
	// SetCallback method.
	type callbackSetter interface {
		SetCallback(uint32, func(proto.SegKey) (bool, error)) error
	}
	switch c := conn.(type) {
	case *Remote:
		s.remote = c
		c.SetCallback(s.onCallback)
	case callbackSetter:
		if err := c.SetCallback(id, func(k proto.SegKey) (bool, error) {
			return s.onCallback(k), nil
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// segKey / segID convert between wire and mapper segment names.
func segKey(id swizzle.SegID) proto.SegKey {
	return proto.SegKey{Area: uint32(id.Area), Start: int64(id.Start)}
}

func segID(k proto.SegKey) swizzle.SegID {
	return swizzle.SegID{Area: page.AreaID(k.Area), Start: page.No(k.Start)}
}

// DB returns the open database id.
func (s *Session) DB() uint32 { return s.db }

// Client returns the server-assigned client id.
func (s *Session) Client() uint32 { return s.client }

// Types returns the session's type registry.
func (s *Session) Types() *segment.Registry { return s.types }

// Mapper exposes the underlying mapper (benches and tools).
func (s *Session) Mapper() *swizzle.Mapper { return s.mapper }

// Snapshot returns the session counters.
func (s *Session) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RegisterType registers a type with the database and the local registry.
func (s *Session) RegisterType(td segment.TypeDesc) (*segment.TypeDesc, error) {
	info, err := s.conn.RegisterType(s.db, proto.FromDesc(&td))
	if err != nil {
		return nil, err
	}
	return s.types.Register(info.ToDesc())
}

// --- fetcher: the mapper's view of the connection ---

// fetcher fetches with the combined FetchSeg RPC: the mapper always asks for
// the slotted image first and the data image right after, so FetchSlotted
// pulls all three images in one round trip and stashes the data bytes for
// the FetchData that follows. The stash is invalidated whenever the cached
// segment is dropped (Session.dropSeg) so a refetch never sees stale data.
type fetcher struct {
	s *Session

	mu     sync.Mutex
	stash  map[swizzle.SegID][]byte     // guarded by mu
	primed map[swizzle.SegID]*primedSeg // guarded by mu
}

// primedSeg is a segment image handed to the fetcher ahead of demand by the
// streaming scan prefetcher: the next load of this segment is served
// locally, with zero round trips.
type primedSeg struct {
	img   *proto.SegImage
	pages int // slotted pages (the geometry SegInfo would report)
}

// prime installs a prefetched image for id.
func (f *fetcher) prime(id swizzle.SegID, img *proto.SegImage, pages int) {
	f.mu.Lock()
	if f.primed == nil {
		f.primed = make(map[swizzle.SegID]*primedSeg)
	}
	f.primed[id] = &primedSeg{img: img, pages: pages}
	f.mu.Unlock()
}

// unprime discards a prefetched image that was not consumed.
func (f *fetcher) unprime(id swizzle.SegID) {
	f.mu.Lock()
	delete(f.primed, id)
	f.mu.Unlock()
}

func (f *fetcher) SlottedPages(id swizzle.SegID) (int, error) {
	f.mu.Lock()
	p, ok := f.primed[id]
	f.mu.Unlock()
	if ok {
		return p.pages, nil
	}
	if snap, inSnap := f.s.snapState(); inSnap {
		// The live geometry may postdate the stamp: fetch the as-of image
		// and answer from it (primed for the FetchSlotted that follows).
		return f.snapPages(snap, id)
	}
	return f.s.conn.SegInfo(segKey(id))
}

func (f *fetcher) FetchSlotted(id swizzle.SegID) (*segment.Seg, error) {
	var sl, ov, data []byte
	f.mu.Lock()
	p, ok := f.primed[id]
	if ok {
		delete(f.primed, id)
	}
	f.mu.Unlock()
	if ok {
		sl, ov, data = p.img.Slotted, p.img.Overflow, p.img.Data
		// A primed image consumed mid-snapshot (the snapshot scan path) is
		// an as-of image: mark it for the end-of-snapshot drop.
		if _, inSnap := f.s.snapState(); inSnap {
			f.s.markSnapFetched(id)
		}
	} else if snap, inSnap := f.s.snapState(); inSnap {
		img, err := f.snapFetch(snap, id)
		if err != nil {
			return nil, err
		}
		sl, ov, data = img.Slotted, img.Overflow, img.Data
	} else {
		var err error
		sl, ov, data, err = f.s.conn.FetchSeg(f.s.client, segKey(id))
		if err != nil {
			return nil, err
		}
	}
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		return nil, err
	}
	dec.Overflow = ov
	// End-to-end verification at cache fault-in: DecodeSlotted checked the
	// header and slot-region CRCs; the overflow bytes are checked here
	// against the header's recorded section checksum, so wire or transport
	// corruption is caught before the image enters the client cache.
	if err := dec.VerifySections(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.stash == nil {
		f.stash = make(map[swizzle.SegID][]byte)
	}
	f.stash[id] = data
	f.mu.Unlock()
	return dec, nil
}

func (f *fetcher) FetchData(id swizzle.SegID, dec *segment.Seg) ([]byte, error) {
	f.mu.Lock()
	data, ok := f.stash[id]
	if ok {
		delete(f.stash, id)
	}
	f.mu.Unlock()
	if !ok {
		if snap, inSnap := f.s.snapState(); inSnap {
			img, err := f.snapFetch(snap, id)
			if err != nil {
				return nil, err
			}
			data = img.Data
		} else {
			var err error
			if data, err = f.s.conn.FetchData(f.s.client, segKey(id)); err != nil {
				return nil, err
			}
		}
	}
	// Verify the data section against the cached header's checksum before
	// it enters the client cache (skipped when the caller has no decoded
	// header or the bytes are not the full on-disk section).
	if dec != nil && len(data) == int(dec.Hdr.DataPages)*page.Size {
		if err := dec.VerifyData(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

func (f *fetcher) dropStash(id swizzle.SegID) {
	f.mu.Lock()
	delete(f.stash, id)
	// A dropped segment also invalidates any prefetched image: a refetch
	// must go to the server for the fresh copy.
	delete(f.primed, id)
	f.mu.Unlock()
}

func (f *fetcher) FetchLarge(id swizzle.SegID, _ *segment.Seg, slot int) ([]byte, error) {
	if _, inSnap := f.s.snapState(); inSnap {
		// FetchLarge takes an S lock server-side; snapshot reads hold none.
		return nil, ErrSnapLarge
	}
	return f.s.conn.FetchLarge(f.s.client, segKey(id), slot)
}

func (f *fetcher) Resolve(headerOff uint64) (swizzle.SegID, int, error) {
	k, slot, err := f.s.conn.Resolve(f.s.db, headerOff)
	if err != nil {
		return swizzle.SegID{}, 0, err
	}
	return segID(k), slot, nil
}

// --- update detection → locking ---

// onAccess runs inside the fault handler when a transaction first touches a
// page: reads are granted locally (the cached copy is the paper's retained
// lock); the first write to a segment acquires X at the server.
func (s *Session) onAccess(k detect.PageKey, write bool) error {
	key := segKey(k.Seg)
	s.mu.Lock()
	if !s.inTx {
		s.mu.Unlock()
		return ErrNoTx
	}
	if s.snapMode && write {
		s.mu.Unlock()
		return ErrSnapshotRead
	}
	s.markTouchedLocked(key)
	needLock := write && !s.xLocked[key]
	txid := s.txID
	s.mu.Unlock()
	if !needLock {
		return nil
	}
	if err := s.conn.Lock(s.client, txid, key, proto.LockX); err != nil {
		return err
	}
	s.mu.Lock()
	s.xLocked[key] = true
	s.mu.Unlock()
	return nil
}

// onCallback handles a server revocation. It runs on the RPC goroutine, so
// it never touches the (single-threaded) mapper: while a transaction is
// active the callback is refused — the paper's "callback waits until the
// client's transaction ends" — and between transactions the drop is queued
// for the application thread to apply at the next Begin. TryLock keeps the
// callback from deadlocking against an in-flight remote call that holds
// the session.
func (s *Session) onCallback(key proto.SegKey) (refused bool) {
	if !s.mu.TryLock() {
		return true
	}
	defer s.mu.Unlock()
	// A snapshot always accepts: the revoking writer's commit stamp is
	// strictly above this snapshot's (the callback precedes its commit,
	// which follows our stamp pin), so the cached pre-write copy is exactly
	// the as-of image. It keeps serving until EndSnapshot drops it.
	if s.snapMode {
		s.snapDrops[key] = true
		s.stats.Drops++
		return false
	}
	// Refuse while the current transaction is using this copy; copies of
	// segments the transaction has not touched may be promised away — the
	// drop is applied by the application thread before any later access
	// (drainDropLocked).
	if s.inTx && (s.touched[key] || s.xLocked[key] || s.dirtySlotted[key]) {
		s.stats.Refusals++
		return true
	}
	s.pendingDrops[key] = true
	s.stats.Drops++
	return false
}

// drainDrop atomically marks key as touched by the current transaction
// (so no callback can revoke it from here to end of transaction) and
// applies any queued revocation before the caller resolves an address in
// the segment. Runs on the application thread. The touch-before-drain
// order is load-bearing: marking first closes the window in which a
// revocation could be accepted after the drain but before the access.
func (s *Session) drainDrop(key proto.SegKey) error {
	s.mu.Lock()
	pending := s.pendingDrops[key]
	if pending {
		delete(s.pendingDrops, key)
	}
	if s.inTx {
		s.markTouchedLocked(key)
	}
	s.mu.Unlock()
	if !pending {
		return nil
	}
	return s.dropSeg(segID(key))
}

// dropSeg drops a cached segment and the fetcher's stashed data image for
// it, so a revoked or aborted copy can never satisfy the next fetch.
func (s *Session) dropSeg(id swizzle.SegID) error {
	s.fetch.dropStash(id)
	return s.mapper.DropSeg(id)
}

// --- transactions ---

// Begin starts a transaction, first applying any revocations accepted
// since the last one (the copies were promised to the server).
func (s *Session) Begin() error {
	s.mu.Lock()
	if s.inTx {
		s.mu.Unlock()
		return ErrTxActive
	}
	// Mark the transaction active before applying queued drops so a
	// callback racing this Begin is refused rather than queued behind the
	// drain (it would otherwise go unapplied until the next Begin while
	// this transaction reads the copy).
	s.inTx = true
	s.txID = 0
	drops := s.pendingDrops
	s.pendingDrops = make(map[proto.SegKey]bool)
	s.mu.Unlock()
	for key := range drops {
		if err := s.dropSeg(segID(key)); err != nil {
			s.mu.Lock()
			s.inTx = false
			s.mu.Unlock()
			return err
		}
	}
	id, err := s.conn.NewTx()
	if err != nil {
		s.mu.Lock()
		s.inTx = false
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.txID = id
	s.touched = make(map[proto.SegKey]bool)
	s.stats.Transactions++
	s.mu.Unlock()
	return nil
}

// TxID returns the current transaction id.
func (s *Session) TxID() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txID, s.inTx
}

// shipImages builds the commit payload from the dirty segments.
func (s *Session) shipImages() ([]proto.SegImage, error) {
	dirty := make(map[proto.SegKey]bool)
	for _, id := range s.mapper.DirtySegs() {
		dirty[segKey(id)] = true
	}
	s.mu.Lock()
	for k := range s.dirtySlotted {
		dirty[k] = true
	}
	s.mu.Unlock()
	var images []proto.SegImage
	for k := range dirty {
		id := segID(k)
		seg, ok := s.mapper.Seg(id)
		if !ok {
			continue
		}
		img := proto.SegImage{Seg: k, Slotted: seg.EncodeSlotted(), Overflow: seg.Overflow}
		if data, _, err := s.mapper.UnswizzledData(id); err == nil {
			img.Data = data
		}
		images = append(images, img)
	}
	return images, nil
}

// ensureWriteLocks acquires X on every dirty segment that was modified
// through trusted paths (object creation) rather than page faults.
func (s *Session) ensureWriteLocks(images []proto.SegImage) error {
	for _, img := range images {
		s.mu.Lock()
		have := s.xLocked[img.Seg]
		txid := s.txID
		s.mu.Unlock()
		if have {
			continue
		}
		if err := s.conn.Lock(s.client, txid, img.Seg, proto.LockX); err != nil {
			return err
		}
		s.mu.Lock()
		s.xLocked[img.Seg] = true
		s.mu.Unlock()
	}
	return nil
}

// Commit ships the dirty segments and commits at the server. Cached data
// stays resident for the next transaction.
func (s *Session) Commit() error {
	s.mu.Lock()
	if s.snapMode {
		s.mu.Unlock()
		return s.EndSnapshot() // a snapshot commits nothing; just close it
	}
	if !s.inTx {
		s.mu.Unlock()
		return ErrNoTx
	}
	txid := s.txID
	s.mu.Unlock()
	images, err := s.shipImages()
	if err != nil {
		return err
	}
	if err := s.ensureWriteLocks(images); err != nil {
		_ = s.Abort()
		return err
	}
	if err := s.conn.Commit(s.client, txid, images); err != nil {
		_ = s.Abort()
		return err
	}
	s.mu.Lock()
	s.stats.SegsShipped += int64(len(images))
	s.mu.Unlock()
	for _, img := range images {
		s.mapper.MarkClean(segID(img.Seg))
	}
	s.endTx()
	return nil
}

// PrepareCommit is the distributed variant's phase-1: ship images and vote.
// FinishCommit delivers the coordinator's decision.
func (s *Session) PrepareCommit() error {
	s.mu.Lock()
	if !s.inTx {
		s.mu.Unlock()
		return ErrNoTx
	}
	txid := s.txID
	s.mu.Unlock()
	images, err := s.shipImages()
	if err != nil {
		return err
	}
	if err := s.ensureWriteLocks(images); err != nil {
		return err
	}
	if err := s.conn.Prepare(s.client, txid, images); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.SegsShipped += int64(len(images))
	s.mu.Unlock()
	return nil
}

// FinishCommit completes a prepared transaction with the 2PC decision.
func (s *Session) FinishCommit(commit bool) error {
	s.mu.Lock()
	if !s.inTx {
		s.mu.Unlock()
		return ErrNoTx
	}
	txid := s.txID
	s.mu.Unlock()
	err := s.conn.Decide(txid, commit)
	if commit && err == nil {
		for _, id := range s.mapper.DirtySegs() {
			s.mapper.MarkClean(id)
		}
	} else {
		s.dropDirty()
	}
	s.endTx()
	return err
}

// Abort rolls back: local changes are discarded (dirty cached copies are
// dropped so the next access refetches committed state) and the server
// releases locks.
func (s *Session) Abort() error {
	s.mu.Lock()
	if s.snapMode {
		s.mu.Unlock()
		return s.EndSnapshot() // nothing to roll back
	}
	if !s.inTx {
		s.mu.Unlock()
		return ErrNoTx
	}
	txid := s.txID
	s.mu.Unlock()
	s.dropDirty()
	err := s.conn.Abort(s.client, txid)
	s.endTx()
	return err
}

func (s *Session) dropDirty() {
	dirty := make(map[proto.SegKey]bool)
	for _, id := range s.mapper.DirtySegs() {
		dirty[segKey(id)] = true
	}
	s.mu.Lock()
	for k := range s.dirtySlotted {
		dirty[k] = true
	}
	s.mu.Unlock()
	for k := range dirty {
		_ = s.dropSeg(segID(k))
		_ = s.conn.Released(s.client, k)
	}
}

func (s *Session) endTx() {
	s.det.EndTransaction()
	s.mu.Lock()
	s.inTx = false
	s.txID = 0
	s.xLocked = make(map[proto.SegKey]bool)
	s.touched = make(map[proto.SegKey]bool)
	s.dirtySlotted = make(map[proto.SegKey]bool)
	s.mu.Unlock()
}

// --- object operations ---

// LockObject takes an explicit object-level lock on the object at ref —
// the software-based finer-granularity locking of §2.3/[27]. Page-level
// detection still drives segment X locks on actual writes; object locks
// let applications serialize logical conflicts below segment granularity.
func (s *Session) LockObject(ref vmem.Addr, exclusive bool) error {
	s.mu.Lock()
	if s.snapMode {
		s.mu.Unlock()
		return ErrSnapshotRead // snapshots hold no locks, S included
	}
	if !s.inTx {
		s.mu.Unlock()
		return ErrNoTx
	}
	txid := s.txID
	s.mu.Unlock()
	obj, err := s.Deref(ref)
	if err != nil {
		return err
	}
	id, _, _, ok := s.mapper.FrameInfo(ref.Frame())
	if !ok {
		return swizzle.ErrUnknownAddr
	}
	mode := proto.LockS
	if exclusive {
		mode = proto.LockX
	}
	return s.conn.LockObject(s.client, txid, segKey(id), obj.Slot, mode)
}

// CreateSegment allocates a new object segment in the session's database.
func (s *Session) CreateSegment(fileID uint32, slottedPages, dataPages, areaHint int) (proto.SegKey, error) {
	return s.conn.CreateSegment(s.db, fileID, slottedPages, dataPages, areaHint)
}

// Deref resolves a reference (slot virtual address) to an object handle,
// marking the segment as touched by this transaction.
func (s *Session) Deref(ref vmem.Addr) (*swizzle.Object, error) {
	s.mu.Lock()
	if !s.inTx {
		s.mu.Unlock()
		return nil, ErrNoTx
	}
	s.mu.Unlock()
	if id, _, _, ok := s.mapper.FrameInfo(ref.Frame()); ok {
		if err := s.drainDrop(segKey(id)); err != nil {
			return nil, err
		}
	}
	obj, err := s.mapper.Deref(ref)
	if err != nil {
		return nil, err
	}
	if id, _, _, ok := s.mapper.FrameInfo(ref.Frame()); ok {
		s.mu.Lock()
		s.markTouchedLocked(segKey(id))
		s.mu.Unlock()
	}
	return obj, nil
}

// markTouchedLocked records the first use of a segment in this transaction;
// a use served entirely from the inter-transaction cache is a "local grant"
// (no server interaction), the quantity E6 reports. Callers hold s.mu.
//
//bess:holds mu
func (s *Session) markTouchedLocked(key proto.SegKey) {
	if !s.touched[key] {
		s.touched[key] = true
		s.stats.LocalGrants++
	}
}

// AddrOfSlot returns a reference to (seg, slot), reserving lazily.
func (s *Session) AddrOfSlot(seg proto.SegKey, slot int) (vmem.Addr, error) {
	if err := s.drainDrop(seg); err != nil {
		return vmem.NilAddr, err
	}
	return s.mapper.AddrOfSlot(segID(seg), slot)
}

// CreateObject allocates an object in seg, returning its slot address. The
// segment is X-locked and its image ships at commit.
func (s *Session) CreateObject(seg proto.SegKey, typ segment.TypeID, data []byte) (vmem.Addr, error) {
	s.mu.Lock()
	if s.snapMode {
		s.mu.Unlock()
		return vmem.NilAddr, ErrSnapshotRead
	}
	if !s.inTx {
		s.mu.Unlock()
		return vmem.NilAddr, ErrNoTx
	}
	txid := s.txID
	have := s.xLocked[seg]
	s.mu.Unlock()
	if !have {
		if err := s.conn.Lock(s.client, txid, seg, proto.LockX); err != nil {
			return vmem.NilAddr, err
		}
		s.mu.Lock()
		s.xLocked[seg] = true
		s.mu.Unlock()
	}
	if err := s.drainDrop(seg); err != nil {
		return vmem.NilAddr, err
	}
	id := segID(seg)
	if err := s.mapper.EnsureData(id); err != nil {
		return vmem.NilAddr, err
	}
	var slot int
	err := s.mapper.TrustedSlotUpdate(id, func(sg *segment.Seg) error {
		var err error
		slot, err = sg.CreateObject(typ, data)
		if err == segment.ErrDataFull {
			// Grow the data segment and relocate (server re-homes it at
			// commit); references are unaffected.
			pages := int(sg.Hdr.DataPages) * 2
			if pages == 0 {
				pages = 1
			}
			if err2 := sg.ResizeData(pages); err2 != nil {
				return err2
			}
			if err2 := s.mapper.RelocateData(id); err2 != nil {
				return err2
			}
			slot, err = sg.CreateObject(typ, data)
		}
		return err
	})
	if err != nil {
		return vmem.NilAddr, err
	}
	s.mapper.MarkDataDirty(id)
	s.mu.Lock()
	s.dirtySlotted[seg] = true
	s.touched[seg] = true
	s.mu.Unlock()
	return s.mapper.AddrOfSlot(id, slot)
}

// DeleteObject removes the object at ref; its slot's uniquifier is bumped
// and its name (if it is a root object) is unbound.
func (s *Session) DeleteObject(ref vmem.Addr) error {
	s.mu.Lock()
	if s.snapMode {
		s.mu.Unlock()
		return ErrSnapshotRead
	}
	s.mu.Unlock()
	obj, err := s.Deref(ref)
	if err != nil {
		return err
	}
	id, _, _, _ := s.mapper.FrameInfo(ref.Frame())
	key := segKey(id)
	s.mu.Lock()
	txid := s.txID
	have := s.xLocked[key]
	s.mu.Unlock()
	if !have {
		if err := s.conn.Lock(s.client, txid, key, proto.LockX); err != nil {
			return err
		}
		s.mu.Lock()
		s.xLocked[key] = true
		s.mu.Unlock()
	}
	o := s.OIDOf(ref)
	if err := s.mapper.TrustedSlotUpdate(id, func(sg *segment.Seg) error {
		return sg.DeleteObject(obj.Slot)
	}); err != nil {
		return err
	}
	s.mapper.MarkDataDirty(id)
	s.mu.Lock()
	s.dirtySlotted[key] = true
	s.mu.Unlock()
	// Referential integrity for root objects (§2.5): removing the object
	// removes its name.
	if !o.IsNil() {
		_ = s.conn.NameRemoveOID(s.db, o)
	}
	return nil
}

// OIDOf computes the 96-bit OID of the object at ref.
func (s *Session) OIDOf(ref vmem.Addr) oid.OID {
	id, kind, _, ok := s.mapper.FrameInfo(ref.Frame())
	if !ok || kind != swizzle.FrameSlotted {
		return oid.Nil
	}
	obj, err := s.mapper.Deref(ref)
	if err != nil {
		return oid.Nil
	}
	seg, _ := s.mapper.Seg(id)
	return oid.OID{
		Host:   s.host,
		DB:     uint16(s.db),
		Offset: swizzle.HeaderOffset(id, obj.Slot),
		Unique: seg.Slots[obj.Slot].Unique,
	}
}

// DerefOID resolves an OID (the global_ref<T> path: slower, validated
// against the slot uniquifier).
func (s *Session) DerefOID(o oid.OID) (*swizzle.Object, error) {
	id, slot, err := s.conn.Resolve(s.db, o.Offset)
	if err != nil {
		return nil, err
	}
	// Through the session's AddrOfSlot so a pending revocation of the
	// segment is applied before resolving a (then-fresh) address.
	addr, err := s.AddrOfSlot(proto.SegKey{Area: uint32(id.Area), Start: int64(id.Start)}, slot)
	if err != nil {
		return nil, err
	}
	obj, err := s.Deref(addr)
	if err != nil {
		return nil, err
	}
	seg, _ := s.mapper.Seg(segID(id))
	if seg.Slots[slot].Unique != o.Unique {
		return nil, ErrStaleRoot
	}
	return obj, nil
}

// SetRoot names the object at ref ("root" objects, §2.5).
func (s *Session) SetRoot(name string, ref vmem.Addr) error {
	o := s.OIDOf(ref)
	if o.IsNil() {
		return swizzle.ErrUnknownAddr
	}
	return s.conn.NameBind(s.db, name, o)
}

// Root resolves a named root object.
func (s *Session) Root(name string) (*swizzle.Object, error) {
	o, err := s.conn.NameLookup(s.db, name)
	if err != nil {
		return nil, err
	}
	return s.DerefOID(o)
}

// UnsetRoot removes a name.
func (s *Session) UnsetRoot(name string) error {
	return s.conn.NameUnbind(s.db, name)
}

// CreateLarge stores a transparent large object in seg server-side; the
// local cached copy is refreshed. Fails if the segment is dirty locally.
func (s *Session) CreateLarge(seg proto.SegKey, typ segment.TypeID, content []byte) (vmem.Addr, error) {
	s.mu.Lock()
	if s.snapMode {
		s.mu.Unlock()
		return vmem.NilAddr, ErrSnapshotRead
	}
	if !s.inTx {
		s.mu.Unlock()
		return vmem.NilAddr, ErrNoTx
	}
	if s.dirtySlotted[seg] {
		s.mu.Unlock()
		return vmem.NilAddr, ErrDirtySeg
	}
	txid := s.txID
	s.mu.Unlock()
	for _, id := range s.mapper.DirtySegs() {
		if segKey(id) == seg {
			return vmem.NilAddr, ErrDirtySeg
		}
	}
	slot, err := s.conn.CreateLarge(s.client, txid, seg, uint32(typ), content)
	if err != nil {
		return vmem.NilAddr, err
	}
	s.mu.Lock()
	s.xLocked[seg] = true // the server took X under our tx
	s.touched[seg] = true
	s.mu.Unlock()
	// Refresh the cached copy so the new slot is visible.
	if err := s.dropSeg(segID(seg)); err != nil {
		return vmem.NilAddr, err
	}
	return s.mapper.AddrOfSlot(segID(seg), slot)
}

// Conn exposes the underlying connection (the core layer issues catalog
// operations through it).
func (s *Session) Conn() proto.Conn { return s.conn }

// ScanSegment iterates over the live objects of one segment.
func (s *Session) ScanSegment(k proto.SegKey, fn func(addr vmem.Addr, obj *swizzle.Object) error) error {
	if err := s.drainDrop(k); err != nil {
		return err
	}
	id := segID(k)
	if err := s.mapper.EnsureLoaded(id); err != nil {
		return err
	}
	seg, _ := s.mapper.Seg(id)
	for _, slot := range seg.LiveSlots() {
		addr, err := s.mapper.AddrOfSlot(id, slot)
		if err != nil {
			return err
		}
		obj, err := s.Deref(addr)
		if err != nil {
			return err
		}
		if err := fn(addr, obj); err != nil {
			return err
		}
	}
	return nil
}

// Scan iterates over the live objects of every segment of file fileID,
// calling fn with each object's address. This is the cursor mechanism files
// provide (§2).
func (s *Session) Scan(fileID uint32, fn func(addr vmem.Addr, obj *swizzle.Object) error) error {
	segs, err := s.conn.SegmentsOf(s.db, fileID)
	if err != nil {
		return err
	}
	for _, k := range segs {
		if err := s.ScanSegment(k, fn); err != nil {
			// A segment listed by SegmentsOf may be dropped before the
			// cursor reaches it; that is a skip, not a scan failure.
			if isNoSegment(err) {
				continue
			}
			return err
		}
	}
	return nil
}

// runStore adapts the connection's raw-run methods to largeobj.Store so
// very large objects live on server disk. It is bound to one storage area
// (the database's run area), discovered at construction.
type runStore struct {
	s    *Session
	area uint32
}

var _ largeobj.Store = (*runStore)(nil)

// RunStore returns a largeobj.Store backed by this session's database.
func (s *Session) RunStore() (largeobj.Store, error) {
	a, start, _, err := s.conn.AllocRun(s.db, 1)
	if err != nil {
		return nil, err
	}
	if err := s.conn.FreeRun(s.db, a, start); err != nil {
		return nil, err
	}
	return &runStore{s: s, area: a}, nil
}

func (r *runStore) Alloc(nPages int) (page.No, int, error) {
	a, start, granted, err := r.s.conn.AllocRun(r.s.db, nPages)
	if err == nil && a != r.area {
		return 0, 0, fmt.Errorf("client: run area changed (%d → %d)", r.area, a)
	}
	return page.No(start), granted, err
}

func (r *runStore) Free(start page.No) error {
	return r.s.conn.FreeRun(r.s.db, r.area, int64(start))
}

func (r *runStore) ReadRun(start page.No, n int, buf []byte) error {
	data, err := r.s.conn.ReadRun(r.s.db, r.area, int64(start), n)
	if err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

func (r *runStore) WriteRun(start page.No, data []byte) error {
	return r.s.conn.WriteRun(r.s.db, r.area, int64(start), data)
}

// DropAllCached drops every cached segment (benchmarks compare cold/warm
// behaviour).
func (s *Session) DropAllCached() {
	for _, id := range s.mapper.CachedSegs() {
		_ = s.dropSeg(id)
		_ = s.conn.Released(s.client, segKey(id))
	}
}

func (s *Session) String() string {
	return fmt.Sprintf("session{client=%d db=%d}", s.client, s.db)
}
