package client

import (
	"errors"

	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/swizzle"
)

// Snapshot mode (DESIGN.md §7): a read-only transaction that never touches
// the lock manager. BeginSnapshot pins a version stamp at the server; every
// access then resolves against that stamp — cached copies keep serving
// (a registered copy is by definition unchanged since it was fetched, hence
// valid at any later stamp), cold fetches route to SnapFetchSeg for the
// as-of image, and writes fail. Callbacks arriving mid-snapshot are always
// accepted — the revoking writer commits after our stamp was pinned, so the
// cached pre-write copy is exactly the as-of image; it keeps serving until
// EndSnapshot, the version boundary where all snapshot-only state drops.

// Errors returned by snapshot mode.
var (
	ErrSnapshotRead = errors.New("client: snapshot transactions are read-only")
	ErrNoSnap       = errors.New("client: no open snapshot")
	ErrSnapLarge    = errors.New("client: large objects are not available in snapshot mode")
)

// BeginSnapshot opens a read-only snapshot transaction at the server's
// current commit stamp. Reads acquire no locks (and thus never block on or
// deadlock with writers); writes fail with ErrSnapshotRead. End it with
// EndSnapshot (Commit and Abort also end it).
func (s *Session) BeginSnapshot() error {
	s.mu.Lock()
	if s.inTx {
		s.mu.Unlock()
		return ErrTxActive
	}
	// Claim the transaction slot first so a concurrent Begin fails fast.
	s.inTx = true
	s.txID = 0
	s.mu.Unlock()
	snap, stamp, err := s.conn.SnapOpen(s.client)
	if err != nil {
		s.mu.Lock()
		s.inTx = false
		s.mu.Unlock()
		return err
	}
	// Enter snapshot mode and take the pending-drop queue in one critical
	// section: every revocation accepted before this instant may belong to a
	// writer that committed before our stamp was pinned, so those copies
	// must be dropped (the refetch serves the as-of image); every revocation
	// after it is queued to snapDrops and the copy retained — its writer
	// commits strictly after our stamp.
	s.mu.Lock()
	s.snapMode = true
	s.snapID, s.snapStamp = snap, stamp
	s.snapDrops = make(map[proto.SegKey]bool)
	s.snapFetched = make(map[swizzle.SegID]bool)
	s.touched = make(map[proto.SegKey]bool)
	drops := s.pendingDrops
	s.pendingDrops = make(map[proto.SegKey]bool)
	s.stats.Snapshots++
	s.mu.Unlock()
	for key := range drops {
		if err := s.dropSeg(segID(key)); err != nil {
			_ = s.EndSnapshot()
			return err
		}
	}
	return nil
}

// EndSnapshot closes the snapshot: the server unpins the stamp (releasing
// retained versions), and every as-of image plus every copy revoked during
// the snapshot is dropped — the version boundary at which invalidations
// take effect.
func (s *Session) EndSnapshot() error {
	s.mu.Lock()
	if !s.snapMode {
		s.mu.Unlock()
		return ErrNoSnap
	}
	snap := s.snapID
	fetched := s.snapFetched
	revoked := s.snapDrops
	s.snapMode = false
	s.snapID, s.snapStamp = 0, 0
	s.snapFetched, s.snapDrops = nil, nil
	s.mu.Unlock()
	for id := range fetched {
		_ = s.dropSeg(id) // as-of image, already stale and never registered
	}
	for key := range revoked {
		_ = s.dropSeg(segID(key)) // promised to the server mid-snapshot
	}
	err := s.conn.SnapClose(s.client, snap)
	s.endTx()
	return err
}

// InSnapshot reports whether a snapshot transaction is open.
func (s *Session) InSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapMode
}

// SnapStamp returns the open snapshot's version stamp (0 when none).
func (s *Session) SnapStamp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapStamp
}

// snapState returns the snapshot id and whether snapshot mode is active —
// the fetcher's routing switch.
func (s *Session) snapState() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapID, s.snapMode
}

// markSnapFetched records an as-of image now cached in the mapper; it is
// dropped at EndSnapshot.
func (s *Session) markSnapFetched(id swizzle.SegID) {
	s.mu.Lock()
	if s.snapMode {
		s.snapFetched[id] = true
	}
	s.mu.Unlock()
}

// snapFetch pulls id's as-of image in one SnapFetchSeg round trip and marks
// it for the end-of-snapshot drop.
func (f *fetcher) snapFetch(snap uint64, id swizzle.SegID) (*proto.SegImage, error) {
	sl, ov, data, err := f.s.conn.SnapFetchSeg(f.s.client, snap, segKey(id))
	if err != nil {
		return nil, err
	}
	f.s.markSnapFetched(id)
	return &proto.SegImage{Seg: segKey(id), Slotted: sl, Overflow: ov, Data: data}, nil
}

// snapPages fetches id's as-of image, primes the fetcher with it, and
// returns its slotted page count — SegInfo for snapshot mode, where the
// live geometry may postdate the stamp.
func (f *fetcher) snapPages(snap uint64, id swizzle.SegID) (int, error) {
	img, err := f.snapFetch(snap, id)
	if err != nil {
		return 0, err
	}
	pages := len(img.Slotted) / page.Size
	f.prime(id, img, pages)
	return pages, nil
}
