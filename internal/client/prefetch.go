package client

import (
	"strings"
	"sync"

	"bess/internal/cache"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/rpc"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// Client half of the streaming scan pipeline (DESIGN.md §6).
//
// StreamScan opens a server-side cursor with one ScanStart round trip, then
// consumes ScanData batches the server pushes ahead of the iterator. Pushed
// images are scattered into pinned frames of a private cache.Pool sized to
// the credit window, so prefetched data lives in preallocated page frames
// instead of unbounded heap garbage; the iterator gathers each image back
// into contiguous section buffers just before priming the fetcher with it.
// Flow control is credit-based in image bytes: the window opens with one
// ScanCtl grant after the stream is registered (no push can race the
// registration), and every consumed image tops the window back up.
//
// The prefetcher deliberately spawns nothing: delivery runs on the peer's
// read loop and the iterator runs on the caller. Any future goroutine here
// must carry stop evidence for bess-vet's golife analyzer (DESIGN.md §4e):
//
//bess:golife

// Streaming scan tuning. The window is the push budget granted to the
// server; the pool holds twice that so slow consumers spill rarely.
const (
	defaultScanWindow = 4 << 20
	scanFrameArea     = page.AreaID(0xFFFFFFFF) // synthetic ids for scan frames
)

// frameBuf is one byte run scattered across pinned pool frames, with a heap
// spill tail for bytes the pool could not hold (all slots pinned).
type frameBuf struct {
	slots []int
	tail  []byte
	n     int
}

// scanImage is one pushed segment image, held frame-scattered until the
// iterator reaches it.
type scanImage struct {
	sl, ov, data frameBuf
	size         int // total image bytes (the credit to return)
}

// scanStream is the client side of one streaming scan.
type scanStream struct {
	r    *Remote
	id   uint64
	plan []proto.ScanSeg
	idx  map[proto.SegKey]int // segment → plan position
	pool *cache.Pool
	hook func(images, bytes int)

	mu        sync.Mutex
	cond      *sync.Cond
	ready     map[proto.SegKey]*scanImage // delivered, not yet consumed; guarded by mu
	frontier  int                         // plan positions below this pushed or skipped; guarded by mu
	done      bool                        // final batch arrived; guarded by mu
	err       error                       // sticky failure; guarded by mu
	draining  bool                        // closed: discard further deliveries; guarded by mu
	nextFrame uint64                      // synthetic frame page numbers; guarded by mu
	spills    int64                       // images (partially) spilled to heap; guarded by mu
}

func newScanStream(r *Remote, id uint64, plan []proto.ScanSeg, poolSlots int, hook func(int, int)) *scanStream {
	st := &scanStream{
		r:     r,
		id:    id,
		plan:  plan,
		idx:   make(map[proto.SegKey]int, len(plan)),
		pool:  cache.NewPool(poolSlots),
		hook:  hook,
		ready: make(map[proto.SegKey]*scanImage),
	}
	for i, e := range plan {
		st.idx[e.Seg] = i
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// deliver consumes one pushed ScanData frame. It runs on the peer's read
// loop: decode, scatter into frames, signal the iterator — never block.
func (st *scanStream) deliver(body []byte) {
	sb, err := proto.DecodeScanBatch(body)
	if err != nil {
		st.fail(err)
		return
	}
	bytes := 0
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return
	}
	for i := range sb.Images {
		img := &sb.Images[i]
		pos, ok := st.idx[img.Seg]
		if !ok {
			continue // not in the plan; nothing will ever wait for it
		}
		si := &scanImage{
			sl:   st.scatterLocked(img.Slotted),
			ov:   st.scatterLocked(img.Overflow),
			data: st.scatterLocked(img.Data),
		}
		si.size = si.sl.n + si.ov.n + si.data.n
		bytes += si.size
		st.ready[img.Seg] = si
		if pos+1 > st.frontier {
			st.frontier = pos + 1
		}
	}
	if sb.Err != "" && st.err == nil {
		st.err = &rpc.RemoteError{Msg: sb.Err}
	}
	if sb.Last {
		st.done = true
		st.frontier = len(st.plan)
	}
	st.cond.Broadcast()
	st.mu.Unlock()
	if st.hook != nil {
		st.hook(len(sb.Images), bytes)
	}
}

// scatterLocked copies b into freshly pinned pool frames, spilling to the
// heap when every slot is pinned (the window normally prevents that).
//
//bess:holds mu
func (st *scanStream) scatterLocked(b []byte) frameBuf {
	fb := frameBuf{n: len(b)}
	for len(b) > 0 {
		st.nextFrame++
		slot, _, _, err := st.pool.Acquire(page.ID{Area: scanFrameArea, Page: page.No(st.nextFrame)})
		if err != nil {
			fb.tail = append([]byte(nil), b...)
			st.spills++
			return fb
		}
		n := copy(st.pool.SlotData(slot), b)
		fb.slots = append(fb.slots, slot)
		b = b[n:]
	}
	return fb
}

// gatherLocked reassembles a frameBuf into one contiguous slice, unpinning
// (and thereby recycling) its frames.
func (st *scanStream) gatherLocked(fb frameBuf) []byte {
	if fb.n == 0 {
		st.freeLocked(fb)
		return nil
	}
	out := make([]byte, 0, fb.n)
	framed := fb.n - len(fb.tail)
	for _, slot := range fb.slots {
		d := st.pool.SlotData(slot)
		if rest := framed - len(out); rest < len(d) {
			d = d[:rest]
		}
		out = append(out, d...)
		_ = st.pool.Unpin(slot)
	}
	return append(out, fb.tail...)
}

// freeLocked unpins a frameBuf without gathering it.
func (st *scanStream) freeLocked(fb frameBuf) {
	for _, slot := range fb.slots {
		_ = st.pool.Unpin(slot)
	}
}

// take blocks until the image for plan position i is available and gathers
// it. A (nil, 0, nil) return means the server skipped the segment (dropped
// after planning); the iterator skips it too.
func (st *scanStream) take(i int) (*proto.SegImage, int, error) {
	seg := st.plan[i].Seg
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if si, ok := st.ready[seg]; ok {
			delete(st.ready, seg)
			img := &proto.SegImage{
				Seg:      seg,
				Slotted:  st.gatherLocked(si.sl),
				Overflow: st.gatherLocked(si.ov),
				Data:     st.gatherLocked(si.data),
			}
			return img, si.size, nil
		}
		if st.err != nil {
			return nil, 0, st.err
		}
		if st.frontier > i || st.done {
			return nil, 0, nil
		}
		st.cond.Wait()
	}
}

// fail records a sticky stream failure and wakes the iterator.
func (st *scanStream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// credit returns n consumed bytes to the server's push window.
func (st *scanStream) credit(n int) error {
	return st.r.scanCtl(st.id, false, uint64(n))
}

// close cancels the scan if still live, stops delivery, and releases every
// pinned frame. Always called, on success and failure alike; idempotent.
func (st *scanStream) close() {
	st.r.unregisterScan(st.id)
	// A cancel for a finished cursor is dropped server-side; on a dead
	// peer the send fails, which is equally fine.
	_ = st.r.scanCtl(st.id, true, 0)
	st.mu.Lock()
	st.draining = true
	for seg, si := range st.ready {
		st.freeLocked(si.sl)
		st.freeLocked(si.ov)
		st.freeLocked(si.data)
		delete(st.ready, seg)
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// pinnedFrames counts pool frames still pinned (leak check for tests).
func (st *scanStream) pinnedFrames() int {
	n := 0
	for i := 0; i < st.pool.Cap(); i++ {
		s, err := st.pool.Slot(i)
		if err == nil {
			n += s.Pins
		}
	}
	return n
}

// isNoHandler reports the dispatch error an old server returns for an
// unknown method — the fallback trigger.
func isNoHandler(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no handler for method")
}

// isNoSegment matches server.ErrNoSegment across the wire (the client does
// not import internal/server): a segment listed by SegmentsOf but dropped
// before it could be read.
func isNoSegment(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no such segment")
}

// StreamScan iterates over the live objects of every segment of file
// fileID like Scan, but with the push-based streaming pipeline: the server
// pushes segment images ahead of the cursor and the iterator consumes them
// from local prefetched frames, so a cold full-file scan needs one round
// trip total instead of two per segment. Falls back to the pull path on
// non-RPC connections and on servers that predate the scan protocol.
func (s *Session) StreamScan(fileID uint32, fn func(addr vmem.Addr, obj *swizzle.Object) error) error {
	if s.remote == nil {
		return s.Scan(fileID, fn)
	}
	window := s.scanWindow
	if window <= 0 {
		window = defaultScanWindow
	}
	// In snapshot mode the cursor is pinned to the snapshot's stamp: every
	// pushed image is the as-of version, consistent under concurrent
	// commits. The pull fallback is equally consistent — the fetcher routes
	// cold reads to SnapFetchSeg.
	snapID, inSnap := s.snapState()
	var scanID uint64
	var plan []proto.ScanSeg
	var err error
	if inSnap {
		scanID, plan, err = s.remote.snapScanStart(s.client, s.db, fileID, uint32(s.scanBatch), snapID)
	} else {
		scanID, plan, err = s.remote.scanStart(s.client, s.db, fileID, uint32(s.scanBatch))
	}
	if err != nil {
		if isNoHandler(err) {
			return s.Scan(fileID, fn)
		}
		return err
	}
	// Pool of 2x the window: the window bounds undelivered bytes, and the
	// extra headroom absorbs the gather/consume lag of the current image.
	slots := 2*window/page.Size + 8
	st := newScanStream(s.remote, scanID, plan, slots, s.scanHook)
	s.lastScan = st // leak inspection for tests
	s.remote.registerScan(scanID, st)
	defer st.close()
	// Open the window; the server pushes nothing before this grant.
	if err := st.credit(window); err != nil {
		return err
	}
	// Consumed bytes are returned in watermark batches rather than one
	// ScanCtl per segment: the window only needs topping up before the
	// server can stall on it, and a grant per quarter-window keeps at
	// least 3/4 of the budget open while cutting the reverse control
	// traffic (and its round trips) by the batching factor.
	owed := 0
	for i := range plan {
		img, size, err := st.take(i)
		if err != nil {
			return err
		}
		if img == nil {
			continue // dropped server-side after planning; skip like Scan does
		}
		id := segID(img.Seg)
		s.fetch.prime(id, img, int(plan[i].SlottedPages))
		err = s.ScanSegment(img.Seg, fn)
		s.fetch.unprime(id)
		if err != nil {
			return err
		}
		if owed += size; owed >= window/4 {
			if err := st.credit(owed); err != nil {
				return err
			}
			owed = 0
		}
	}
	return nil
}

// SetScanTuning overrides the streaming scan's credit window and requested
// batch granularity in bytes (zero keeps the defaults). Benchmarks sweep
// these; applications normally leave them alone.
func (s *Session) SetScanTuning(window, batch int) {
	s.scanWindow, s.scanBatch = window, batch
}

// SetScanBatchHook installs fn to run as each pushed batch arrives, with
// the batch's image count and byte size. Test and measurement hook.
func (s *Session) SetScanBatchHook(fn func(images, bytes int)) { s.scanHook = fn }
