package client

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/server"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// setNodeVal overwrites the value field of (seg, slot) in one committed
// transaction — the writer side of every snapshot test.
func setNodeVal(t *testing.T, s *Session, seg proto.SegKey, slot int, v uint64) {
	t.Helper()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	addr, err := s.AddrOfSlot(seg, slot)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	if err := obj.Write(8, b[:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

// getNodeVal reads the value of (seg, slot) inside whatever transaction or
// snapshot s currently has open.
func getNodeVal(t *testing.T, s *Session, seg proto.SegKey, slot int) uint64 {
	t.Helper()
	addr, err := s.AddrOfSlot(seg, slot)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	return nodeVal(obj)
}

// snapSetup builds one committed node object and returns its segment.
func snapSetup(t *testing.T, srv *server.Server, w *Session) proto.SegKey {
	t.Helper()
	td, err := w.RegisterType(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := w.CreateSegment(1, 1, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateObject(seg, td.ID, nodeBytes(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	return seg
}

// TestSnapshotReadConsistency pins the headline property: a snapshot's view
// does not move while writers commit. The reader's cached copy is revoked by
// a concurrent committer, the snapshot keeps serving the pinned image, and
// only the next snapshot observes the new state.
func TestSnapshotReadConsistency(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	w := openDirect(t, srv, "writer")
	r := openDirect(t, srv, "reader")
	seg := snapSetup(t, srv, w)
	if _, err := r.RegisterType(nodeType); err != nil {
		t.Fatal(err)
	}

	// Warm the reader's cache under a plain transaction.
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if v := getNodeVal(t, r, seg, 0); v != 1 {
		t.Fatalf("warm read = %d, want 1", v)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if !r.InSnapshot() {
		t.Fatal("InSnapshot = false inside a snapshot")
	}
	if v := getNodeVal(t, r, seg, 0); v != 1 {
		t.Fatalf("snapshot read = %d, want 1", v)
	}

	// A concurrent commit revokes the reader's copy. The snapshot accepts
	// the callback but keeps the copy: it is exactly the as-of image.
	setNodeVal(t, w, seg, 0, 2)
	if v := getNodeVal(t, r, seg, 0); v != 1 {
		t.Fatalf("snapshot read after concurrent commit = %d, want 1", v)
	}
	if drops := r.Snapshot().Drops; drops == 0 {
		t.Fatal("revocation callback never reached the snapshot session")
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}

	// The next snapshot is a fresh version boundary: it sees the new state.
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if v := getNodeVal(t, r, seg, 0); v != 2 {
		t.Fatalf("fresh snapshot read = %d, want 2", v)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	if n := r.Snapshot().Snapshots; n != 2 {
		t.Fatalf("Snapshots stat = %d, want 2", n)
	}
}

// TestSnapshotColdFetchAsOf pins the server half: a cold fetch issued after
// a writer commits must still return the image as of the snapshot's stamp,
// from the version chain or a WAL reconstruction.
func TestSnapshotColdFetchAsOf(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	w := openDirect(t, srv, "writer")
	seg := snapSetup(t, srv, w)
	setNodeVal(t, w, seg, 0, 2)

	r := openDirect(t, srv, "cold")
	if _, err := r.RegisterType(nodeType); err != nil {
		t.Fatal(err)
	}
	fetchesBefore := srv.Snapshot().SnapFetches
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	// The overwrite lands after the stamp pin but before the reader's first
	// fetch: the fetch must travel back to the pinned version.
	setNodeVal(t, w, seg, 0, 3)
	if v := getNodeVal(t, r, seg, 0); v != 2 {
		t.Fatalf("cold as-of read = %d, want 2", v)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().SnapFetches; got == fetchesBefore {
		t.Fatal("cold snapshot read never hit SnapFetchSeg")
	}

	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if v := getNodeVal(t, r, seg, 0); v != 3 {
		t.Fatalf("fresh snapshot read = %d, want 3", v)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWritesRefused pins the read-only contract: every mutation and
// every lock-taking path fails with ErrSnapshotRead (or ErrSnapLarge for
// large objects, whose fetch is lock-coupled), and the session stays usable.
func TestSnapshotWritesRefused(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	w := openDirect(t, srv, "writer")
	seg := snapSetup(t, srv, w)
	td, err := w.RegisterType(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	largeSeg, err := w.CreateSegment(1, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateLarge(largeSeg, 0, make([]byte, 30_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	r := openDirect(t, srv, "ro")
	if _, err := r.RegisterType(nodeType); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	addr, err := r.AddrOfSlot(seg, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := r.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	// The write faults; the fault layer flattens the handler's refusal into
	// an ErrViolation, so match on the message.
	if err := obj.Write(8, make([]byte, 8)); err == nil ||
		!strings.Contains(err.Error(), ErrSnapshotRead.Error()) {
		t.Fatalf("Write in snapshot: %v, want ErrSnapshotRead", err)
	}
	if _, err := r.CreateObject(seg, td.ID, nodeBytes(9)); !errors.Is(err, ErrSnapshotRead) {
		t.Fatalf("CreateObject in snapshot: %v, want ErrSnapshotRead", err)
	}
	if _, err := r.CreateLarge(seg, td.ID, make([]byte, 20_000)); !errors.Is(err, ErrSnapshotRead) {
		t.Fatalf("CreateLarge in snapshot: %v, want ErrSnapshotRead", err)
	}
	if err := r.DeleteObject(addr); !errors.Is(err, ErrSnapshotRead) {
		t.Fatalf("DeleteObject in snapshot: %v, want ErrSnapshotRead", err)
	}
	if err := r.LockObject(addr, false); !errors.Is(err, ErrSnapshotRead) {
		t.Fatalf("LockObject in snapshot: %v, want ErrSnapshotRead", err)
	}
	laddr, err := r.AddrOfSlot(largeSeg, 0)
	if err != nil {
		t.Fatal(err)
	}
	lobj, err := r.Deref(laddr)
	if err == nil {
		_, err = lobj.Bytes()
	}
	if err == nil || !strings.Contains(err.Error(), ErrSnapLarge.Error()) {
		t.Fatalf("large object in snapshot: %v, want ErrSnapLarge", err)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := r.EndSnapshot(); !errors.Is(err, ErrNoSnap) {
		t.Fatalf("double EndSnapshot: %v, want ErrNoSnap", err)
	}

	// The session is intact: a plain transaction still works.
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if v := getNodeVal(t, r, seg, 0); v != 1 {
		t.Fatalf("post-snapshot read = %d, want 1", v)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotZeroLocks pins the perf claim at its root: a snapshot read
// phase — open, warm read, cold fetch, close — makes zero lock-manager
// acquisitions, while the 2PL baseline read demonstrably does not.
func TestSnapshotZeroLocks(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	w := openDirect(t, srv, "writer")
	td, err := w.RegisterType(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := w.CreateSegment(1, 1, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	seg2, err := w.CreateSegment(1, 1, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []proto.SegKey{seg, seg2} {
		if _, err := w.CreateObject(k, td.ID, nodeBytes(7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	r := openDirect(t, srv, "reader")
	if _, err := r.RegisterType(nodeType); err != nil {
		t.Fatal(err)
	}
	// Warm seg (but not seg2) so the snapshot exercises both cache paths.
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	getNodeVal(t, r, seg, 0)
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	before := srv.LockStats()
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if v := getNodeVal(t, r, seg, 0); v != 7 {
		t.Fatalf("warm snapshot read = %d", v)
	}
	if v := getNodeVal(t, r, seg2, 0); v != 7 {
		t.Fatalf("cold snapshot read = %d", v)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	after := srv.LockStats()
	if after.Acquires != before.Acquires {
		t.Fatalf("snapshot read phase acquired %d locks, want 0",
			after.Acquires-before.Acquires)
	}

	// Sanity check the meter itself: the strict-2PL baseline read acquires.
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	addr, err := r.AddrOfSlot(seg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LockObject(addr, false); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if srv.LockStats().Acquires == after.Acquires {
		t.Fatal("baseline S lock left no trace in the lock stats")
	}
}

// TestSnapshotStreamScanConsistent is the acceptance regression for the
// snapshot streaming scan: concurrent commits — before and in the middle of
// the scan — must not leak into the scanned image.
func TestSnapshotStreamScanConsistent(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	w := openDirect(t, srv, "updater")
	r, remote := openRemote(t, srv, "scanner")
	defer func() { _ = remote.Close() }()
	const fileID, nSegs, objsPer, blobLen = 9, 4, 8, 64
	segs := populateScanFile(t, w, fileID, nSegs, objsPer, blobLen)
	if _, err := r.RegisterType(blobType); err != nil {
		t.Fatal(err)
	}

	paint := func(segs []proto.SegKey, fill byte) {
		t.Helper()
		buf := make([]byte, blobLen)
		for i := range buf {
			buf[i] = fill
		}
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		for _, k := range segs {
			for j := 0; j < objsPer; j++ {
				addr, err := w.AddrOfSlot(k, j)
				if err != nil {
					t.Fatal(err)
				}
				obj, err := w.Deref(addr)
				if err != nil {
					t.Fatal(err)
				}
				if err := obj.Write(0, buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	paint(segs, 0xAA)

	countFill := func(fill byte) int {
		t.Helper()
		n := 0
		err := r.StreamScan(fileID, func(_ vmem.Addr, obj *swizzle.Object) error {
			b, err := obj.Bytes()
			if err != nil {
				return err
			}
			for i := range b {
				if b[i] != fill {
					t.Fatalf("scanned byte %d = %#x, want %#x", i, b[i], fill)
				}
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("StreamScan: %v", err)
		}
		return n
	}

	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Half the file is overwritten after the pin, the other half mid-scan.
	paint(segs[:nSegs/2], 0xBB)
	painted := false
	n := 0
	err := r.StreamScan(fileID, func(_ vmem.Addr, obj *swizzle.Object) error {
		if !painted {
			painted = true
			paint(segs[nSegs/2:], 0xBB)
		}
		b, err := obj.Bytes()
		if err != nil {
			return err
		}
		for i := range b {
			if b[i] != 0xAA {
				t.Fatalf("snapshot scan saw byte %d = %#x, want 0xAA", i, b[i])
			}
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("snapshot StreamScan: %v", err)
	}
	if n != nSegs*objsPer {
		t.Fatalf("snapshot scan visited %d objects, want %d", n, nSegs*objsPer)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot is past both commits: the whole file reads 0xBB.
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if n := countFill(0xBB); n != nSegs*objsPer {
		t.Fatalf("fresh snapshot scan visited %d objects, want %d", n, nSegs*objsPer)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	goleak.Check(t, "server.")
}
