package client

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"bess/internal/largeobj"
	"bess/internal/rpc"
	"bess/internal/segment"
	"bess/internal/server"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// nodeType: 16 bytes, value at [8:16], next-pointer at [0:8].
var nodeType = segment.TypeDesc{Name: "Node", Size: 16, RefOffsets: []int{0}}

func nodeBytes(val uint64) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b[8:], val)
	return b
}

func nodeVal(obj interface {
	Read(int, []byte) error
}) uint64 {
	var b [8]byte
	if err := obj.Read(8, b[:]); err != nil {
		panic(err)
	}
	return binary.BigEndian.Uint64(b[:])
}

// openDirect returns a session linked directly to an in-memory server (the
// "open server" configuration).
func openDirect(t *testing.T, srv *server.Server, name string) *Session {
	t.Helper()
	s, err := Open(srv, name, "testdb", true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// openRemote returns a session connected over an in-process RPC pipe.
func openRemote(t *testing.T, srv *server.Server, name string) (*Session, *Remote) {
	t.Helper()
	cEnd, sEnd := rpc.Pipe()
	server.ServePeer(srv, sEnd)
	r := NewRemote(cEnd)
	s, err := Open(r, name, "testdb", true)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestCreateCommitReadBack(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, err := s.RegisterType(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.CreateSegment(1, 1, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	addr, err := s.CreateObject(seg, td.ID, nodeBytes(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoot("answer", addr); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// A brand-new session (cold cache) sees the committed object by name.
	s2 := openDirect(t, srv, "app2")
	if err := s2.Begin(); err != nil {
		t.Fatal(err)
	}
	obj, err := s2.Root("answer")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(obj) != 42 {
		t.Fatalf("value = %d", nodeVal(obj))
	}
	s2.Commit()
}

func TestPointerChaseAcrossSegments(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	segA, _ := s.CreateSegment(1, 1, 2, -1)
	segB, _ := s.CreateSegment(1, 1, 2, -1)

	s.Begin()
	b, err := s.CreateObject(segB, td.ID, nodeBytes(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.CreateObject(segA, td.ID, nodeBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	objA, _ := s.Deref(a)
	if err := objA.SetRefField(0, b); err != nil {
		t.Fatal(err)
	}
	s.SetRoot("head", a)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Fresh session chases head -> B; references survive the unswizzle /
	// ship / reswizzle round trip.
	s2 := openDirect(t, srv, "reader")
	s2.Begin()
	head, err := s2.Root("head")
	if err != nil {
		t.Fatal(err)
	}
	next, err := head.RefField(0)
	if err != nil {
		t.Fatal(err)
	}
	objB, err := s2.Deref(next)
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(objB) != 2 {
		t.Fatalf("chased value = %d", nodeVal(objB))
	}
	s2.Commit()
}

func TestAbortDiscardsChanges(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	s.Begin()
	addr, _ := s.CreateObject(seg, td.ID, nodeBytes(7))
	s.SetRoot("r", addr)
	s.Commit()

	s.Begin()
	obj, _ := s.Root("r")
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 99)
	if err := obj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}

	s.Begin()
	obj2, err := s.Root("r")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(obj2) != 7 {
		t.Fatalf("aborted write visible: %d", nodeVal(obj2))
	}
	s.Commit()
}

func TestNoTxRejected(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	if _, err := s.CreateObject(seg, td.ID, nodeBytes(1)); !errors.Is(err, ErrNoTx) {
		t.Fatalf("create outside tx: %v", err)
	}
	if err := s.Commit(); !errors.Is(err, ErrNoTx) {
		t.Fatalf("commit outside tx: %v", err)
	}
	s.Begin()
	if err := s.Begin(); !errors.Is(err, ErrTxActive) {
		t.Fatalf("double begin: %v", err)
	}
	s.Abort()
}

func TestInterTransactionCaching(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	s.Begin()
	addr, _ := s.CreateObject(seg, td.ID, nodeBytes(1))
	s.Commit()

	before := srv.Snapshot()
	// Several read transactions over the same data: the cached copy serves
	// them without refetching (paper §3: data cached between transactions).
	for i := 0; i < 5; i++ {
		s.Begin()
		obj, err := s.Deref(addr)
		if err != nil {
			t.Fatal(err)
		}
		if nodeVal(obj) != 1 {
			t.Fatal("bad value")
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	after := srv.Snapshot()
	if after.SlottedFetches != before.SlottedFetches || after.DataFetches != before.DataFetches {
		t.Fatalf("warm reads refetched: %+v -> %+v", before, after)
	}
	if s.Snapshot().LocalGrants < 5 {
		t.Fatalf("local grants = %d", s.Snapshot().LocalGrants)
	}
}

func TestCallbackInvalidation(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	srv.CallbackTimeout = 500 * time.Millisecond

	writer, _ := openRemote(t, srv, "writer")
	reader, _ := openRemote(t, srv, "reader")
	td, _ := writer.RegisterType(nodeType)
	if _, err := reader.RegisterType(nodeType); err != nil {
		t.Fatal(err)
	}
	seg, _ := writer.CreateSegment(1, 1, 2, -1)

	writer.Begin()
	addr, _ := writer.CreateObject(seg, td.ID, nodeBytes(10))
	writer.SetRoot("x", addr)
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reader caches the object.
	reader.Begin()
	robj, err := reader.Root("x")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(robj) != 10 {
		t.Fatal("reader sees wrong value")
	}
	reader.Commit()

	// Writer updates: the X lock drives a callback that drops the reader's
	// idle cached copy.
	writer.Begin()
	wobj, _ := writer.Deref(addr)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 20)
	if err := wobj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if srv.Snapshot().Callbacks == 0 {
		t.Fatal("no callbacks issued")
	}
	if reader.Snapshot().Drops == 0 {
		t.Fatal("reader kept its stale copy")
	}

	// Reader refetches and sees the new value.
	reader.Begin()
	robj2, err := reader.Root("x")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(robj2) != 20 {
		t.Fatalf("reader sees %d after invalidation", nodeVal(robj2))
	}
	reader.Commit()
}

func TestCallbackRefusedWhileInUse(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	srv.CallbackTimeout = 200 * time.Millisecond

	writer, _ := openRemote(t, srv, "writer")
	reader, _ := openRemote(t, srv, "reader")
	td, _ := writer.RegisterType(nodeType)
	reader.RegisterType(nodeType)
	seg, _ := writer.CreateSegment(1, 1, 2, -1)
	writer.Begin()
	addr, _ := writer.CreateObject(seg, td.ID, nodeBytes(1))
	writer.SetRoot("y", addr)
	writer.Commit()

	// Reader holds the object inside an open transaction.
	reader.Begin()
	if _, err := reader.Root("y"); err != nil {
		t.Fatal(err)
	}

	// Writer's X lock cannot complete while the reader refuses callbacks.
	writer.Begin()
	wobj, _ := writer.Deref(addr)
	var buf [8]byte
	err := wobj.Write(8, buf[:])
	if err == nil {
		t.Fatal("write proceeded despite refused callback")
	}
	writer.Abort()
	if srv.Snapshot().CallbackRefusals == 0 {
		t.Fatal("no refusals recorded")
	}

	// Once the reader commits, the writer succeeds.
	reader.Commit()
	writer.Begin()
	wobj, err = writer.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := wobj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilityAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	s.Begin()
	addr, _ := s.CreateObject(seg, td.ID, nodeBytes(1234))
	s.SetRoot("persist", addr)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := server.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	s2, err := Open(srv2, "app", "testdb", false)
	if err != nil {
		t.Fatal(err)
	}
	s2.Begin()
	obj, err := s2.Root("persist")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(obj) != 1234 {
		t.Fatalf("value after restart = %d", nodeVal(obj))
	}
	s2.Commit()
}

func TestScan(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg1, _ := s.CreateSegment(7, 1, 2, -1)
	seg2, _ := s.CreateSegment(7, 1, 2, -1)
	s.Begin()
	for i := 0; i < 5; i++ {
		if _, err := s.CreateObject(seg1, td.ID, nodeBytes(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < 8; i++ {
		if _, err := s.CreateObject(seg2, td.ID, nodeBytes(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Commit()

	s.Begin()
	sum := uint64(0)
	count := 0
	err := s.Scan(7, func(_ vmem.Addr, obj *swizzle.Object) error {
		sum += nodeVal(obj)
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 || sum != 28 {
		t.Fatalf("scan: count=%d sum=%d", count, sum)
	}
	s.Commit()
}

func TestLargeObjectTransparent(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	content := make([]byte, 30_000)
	for i := range content {
		content[i] = byte(i * 13)
	}
	s.Begin()
	addr, err := s.CreateLarge(seg, 0, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	s.Begin()
	obj, err := s.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Size != len(content) {
		t.Fatalf("size = %d", obj.Size)
	}
	got, err := obj.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range content {
		if got[i] != content[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], content[i])
		}
	}
	s.Commit()
}

func TestVeryLargeObjectOverConnection(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s, _ := openRemote(t, srv, "vlo")
	store, err := s.RunStore()
	if err != nil {
		t.Fatal(err)
	}
	o, err := largeobj.Create(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200_000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := o.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(1000, []byte("inserted")); err != nil {
		t.Fatal(err)
	}
	desc := o.EncodeDescriptor()

	// Reopen through a second connection.
	s2, _ := openRemote(t, srv, "vlo2")
	store2, _ := s2.RunStore()
	o2, err := largeobj.Open(store2, desc)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := o2.Read(1000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "inserted" {
		t.Fatalf("read %q", buf)
	}
}

func TestDeleteObjectRemovesRootName(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	s.Begin()
	addr, _ := s.CreateObject(seg, td.ID, nodeBytes(5))
	s.SetRoot("victim", addr)
	s.Commit()

	s.Begin()
	if err := s.DeleteObject(addr); err != nil {
		t.Fatal(err)
	}
	s.Commit()

	s.Begin()
	if _, err := s.Root("victim"); err == nil {
		t.Fatal("name survived object deletion")
	}
	s.Abort()
}

func TestDataSegmentGrowth(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(segment.TypeDesc{Name: "Blob", Size: 0})
	seg, _ := s.CreateSegment(1, 1, 1, -1) // one data page only
	s.Begin()
	var addrs []vmem.Addr
	// Overflow the single page; the session grows and relocates the data
	// segment, the server re-homes it at commit.
	for i := 0; i < 10; i++ {
		a, err := s.CreateObject(seg, td.ID, make([]byte, 1000))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		addrs = append(addrs, a)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Everything readable from a cold session.
	s2 := openDirect(t, srv, "app2")
	s2.Begin()
	for i, a := range addrs {
		// Addresses are private to a session; resolve through OIDs.
		o := s.OIDOf(a)
		obj, err := s2.DerefOID(o)
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		if obj.Size != 1000 {
			t.Fatalf("object %d size %d", i, obj.Size)
		}
	}
	s2.Commit()
}
