// Package client implements BeSS client sessions (paper §3–§4): the
// copy-on-access operation mode over a private buffer pool, inter-
// transaction caching of data with callback-based consistency, automatic
// lock acquisition driven by update detection, and commit shipping to the
// owning server.
package client

import (
	"sync"
	"sync/atomic"

	"bess/internal/oid"
	"bess/internal/proto"
	"bess/internal/rpc"
)

// Remote implements proto.Conn over an RPC peer; one per server connection.
// The hot methods encode their bodies with the binary codecs in
// internal/proto via CallRaw; cold methods go through the gob fallback.
type Remote struct {
	p     *rpc.Peer
	calls atomic.Int64 // message count (E6); off the mutex so calls don't serialize

	mu         sync.Mutex
	onCallback func(proto.SegKey) bool // returns refused; guarded by mu
	scans      map[uint64]*scanStream  // live streaming scans; guarded by mu
}

// NewRemote wraps a connected peer. The "Callback" handler is registered
// immediately so revocations arriving at any time are served; they are
// refused until a session installs its policy.
func NewRemote(p *rpc.Peer) *Remote {
	r := &Remote{p: p}
	p.Handle("Callback", func(body []byte) ([]byte, error) {
		seg, err := proto.DecodeCallbackArgs(body)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		cb := r.onCallback
		r.mu.Unlock()
		refused := true
		if cb != nil {
			refused = cb(seg)
		}
		return proto.AppendCallbackReply(nil, refused), nil
	})
	// Pushed scan batches. Frames for an unregistered scan id (in flight
	// after a cancel, or racing the ScanStart reply of a scan the client
	// abandoned) are dropped here.
	p.HandleStream("ScanData", func(stream uint64, body []byte) {
		r.mu.Lock()
		st := r.scans[stream]
		r.mu.Unlock()
		if st != nil {
			st.deliver(body)
		}
	})
	// A dead peer must wake iterators parked on a scan stream.
	p.SetOnClose(func(err error) {
		if err == nil {
			err = rpc.ErrClosed
		}
		r.mu.Lock()
		sts := make([]*scanStream, 0, len(r.scans))
		for _, st := range r.scans {
			sts = append(sts, st)
		}
		r.mu.Unlock()
		for _, st := range sts {
			st.fail(err)
		}
	})
	return r
}

// Dial connects to a server address with the default fault-hardened dialer
// (connect timeout, jittered retry — see rpc.Dialer) and wraps the peer.
func Dial(addr string) (*Remote, error) {
	var d rpc.Dialer
	return DialWith(&d, addr)
}

// DialWith connects with an explicit dialer configuration.
func DialWith(d *rpc.Dialer, addr string) (*Remote, error) {
	p, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewRemote(p), nil
}

// SetCallback installs the revocation policy (the session's cache drop).
func (r *Remote) SetCallback(fn func(proto.SegKey) bool) {
	r.mu.Lock()
	r.onCallback = fn
	r.mu.Unlock()
}

// Calls reports the number of RPCs issued (message counting for E6).
func (r *Remote) Calls() int64 { return r.calls.Load() }

func (r *Remote) call(method string, args, reply any) error {
	r.calls.Add(1)
	return r.p.Call(method, args, reply)
}

func (r *Remote) callRaw(method string, body []byte) ([]byte, error) {
	r.calls.Add(1)
	return r.p.CallRaw(method, body)
}

// scanStart opens a streaming scan and returns the scan id and plan.
func (r *Remote) scanStart(client, db, fileID, batchBytes uint32) (uint64, []proto.ScanSeg, error) {
	rb, err := r.callRaw("ScanStart", proto.AppendScanStartArgs(nil, client, db, fileID, batchBytes))
	if err != nil {
		return 0, nil, err
	}
	return proto.DecodeScanStartReply(rb)
}

// snapScanStart opens a streaming scan pinned to a snapshot's stamp.
func (r *Remote) snapScanStart(client, db, fileID, batchBytes uint32, snap uint64) (uint64, []proto.ScanSeg, error) {
	rb, err := r.callRaw("SnapScanStart", proto.AppendSnapScanStartArgs(nil, client, db, fileID, batchBytes, snap))
	if err != nil {
		return 0, nil, err
	}
	return proto.DecodeScanStartReply(rb)
}

// scanCtl sends one flow-control frame for scan id (credit grant or cancel).
func (r *Remote) scanCtl(id uint64, cancel bool, credit uint64) error {
	return r.p.SendStream("ScanCtl", id, proto.AppendScanCtl(nil, cancel, credit))
}

// registerScan routes pushed ScanData frames for id to st.
func (r *Remote) registerScan(id uint64, st *scanStream) {
	r.mu.Lock()
	if r.scans == nil {
		r.scans = make(map[uint64]*scanStream)
	}
	r.scans[id] = st
	r.mu.Unlock()
}

// unregisterScan stops routing for id; later frames are dropped.
func (r *Remote) unregisterScan(id uint64) {
	r.mu.Lock()
	delete(r.scans, id)
	r.mu.Unlock()
}

// Hello implements proto.Conn.
func (r *Remote) Hello(name string) (uint32, error) {
	var rep proto.HelloReply
	if err := r.call("Hello", &proto.HelloArgs{Name: name}, &rep); err != nil {
		return 0, err
	}
	return rep.Client, nil
}

// OpenDB implements proto.Conn.
func (r *Remote) OpenDB(name string, create bool) (uint32, uint16, error) {
	var rep proto.OpenDBReply
	if err := r.call("OpenDB", &proto.OpenDBArgs{Name: name, Create: create}, &rep); err != nil {
		return 0, 0, err
	}
	return rep.DB, rep.Host, nil
}

// NewTx implements proto.Conn.
func (r *Remote) NewTx() (uint64, error) {
	var rep proto.NewTxReply
	if err := r.call("NewTx", &proto.NewTxArgs{}, &rep); err != nil {
		return 0, err
	}
	return rep.Tx, nil
}

// RegisterType implements proto.Conn.
func (r *Remote) RegisterType(db uint32, t proto.TypeInfo) (proto.TypeInfo, error) {
	var rep proto.RegisterTypeReply
	if err := r.call("RegisterType", &proto.RegisterTypeArgs{DB: db, Info: t}, &rep); err != nil {
		return proto.TypeInfo{}, err
	}
	return rep.Info, nil
}

// Types implements proto.Conn.
func (r *Remote) Types(db uint32) ([]proto.TypeInfo, error) {
	var rep proto.TypesReply
	if err := r.call("Types", &proto.TypesArgs{DB: db}, &rep); err != nil {
		return nil, err
	}
	return rep.Infos, nil
}

// NewFileID implements proto.Conn.
func (r *Remote) NewFileID(db uint32) (uint32, error) {
	var rep proto.NewFileIDReply
	if err := r.call("NewFileID", &proto.NewFileIDArgs{DB: db}, &rep); err != nil {
		return 0, err
	}
	return rep.File, nil
}

// AddArea implements proto.Conn.
func (r *Remote) AddArea(db uint32) (uint32, error) {
	var rep proto.AddAreaReply
	if err := r.call("AddArea", &proto.AddAreaArgs{DB: db}, &rep); err != nil {
		return 0, err
	}
	return rep.Area, nil
}

// CreateSegment implements proto.Conn.
func (r *Remote) CreateSegment(db, fileID uint32, slottedPages, dataPages, areaHint int) (proto.SegKey, error) {
	var rep proto.CreateSegmentReply
	err := r.call("CreateSegment", &proto.CreateSegmentArgs{
		DB: db, FileID: fileID, SlottedPages: slottedPages, DataPages: dataPages, AreaHint: areaHint,
	}, &rep)
	return rep.Seg, err
}

// SegInfo implements proto.Conn.
func (r *Remote) SegInfo(seg proto.SegKey) (int, error) {
	var rep proto.SegInfoReply
	err := r.call("SegInfo", &proto.SegInfoArgs{Seg: seg}, &rep)
	return rep.SlottedPages, err
}

// FetchSlotted implements proto.Conn.
func (r *Remote) FetchSlotted(client uint32, seg proto.SegKey) ([]byte, []byte, error) {
	rb, err := r.callRaw("FetchSlotted", proto.AppendFetchArgs(nil, client, seg))
	if err != nil {
		return nil, nil, err
	}
	return proto.DecodeFetchSlottedReply(rb)
}

// FetchData implements proto.Conn.
func (r *Remote) FetchData(client uint32, seg proto.SegKey) ([]byte, error) {
	return r.callRaw("FetchData", proto.AppendFetchArgs(nil, client, seg))
}

// FetchSeg implements proto.Conn: slotted + overflow + data in one round
// trip (the reply body is one SegImage encoding).
func (r *Remote) FetchSeg(client uint32, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	rb, err := r.callRaw("FetchSeg", proto.AppendFetchArgs(nil, client, seg))
	if err != nil {
		return nil, nil, nil, err
	}
	img, err := proto.DecodeSegImage(rb)
	if err != nil {
		return nil, nil, nil, err
	}
	return img.Slotted, img.Overflow, img.Data, nil
}

// FetchLarge implements proto.Conn.
func (r *Remote) FetchLarge(client uint32, seg proto.SegKey, slot int) ([]byte, error) {
	return r.callRaw("FetchLarge", proto.AppendFetchLargeArgs(nil, client, seg, slot))
}

// SnapOpen implements proto.Conn: open a server-side snapshot.
func (r *Remote) SnapOpen(client uint32) (uint64, uint64, error) {
	rb, err := r.callRaw("SnapOpen", proto.AppendSnapOpenArgs(nil, client))
	if err != nil {
		return 0, 0, err
	}
	return proto.DecodeSnapOpenReply(rb)
}

// SnapClose implements proto.Conn.
func (r *Remote) SnapClose(client uint32, snap uint64) error {
	_, err := r.callRaw("SnapClose", proto.AppendSnapCloseArgs(nil, client, snap))
	return err
}

// SnapFetchSeg implements proto.Conn: the segment's image as of the
// snapshot's stamp, without joining the callback protocol.
func (r *Remote) SnapFetchSeg(client uint32, snap uint64, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	rb, err := r.callRaw("SnapFetchSeg", proto.AppendSnapFetchArgs(nil, client, snap, seg))
	if err != nil {
		return nil, nil, nil, err
	}
	img, err := proto.DecodeSegImage(rb)
	if err != nil {
		return nil, nil, nil, err
	}
	return img.Slotted, img.Overflow, img.Data, nil
}

// Resolve implements proto.Conn.
func (r *Remote) Resolve(db uint32, headerOff uint64) (proto.SegKey, int, error) {
	var rep proto.ResolveReply
	err := r.call("Resolve", &proto.ResolveArgs{DB: db, HeaderOff: headerOff}, &rep)
	return rep.Seg, rep.Slot, err
}

// Lock implements proto.Conn.
func (r *Remote) Lock(client uint32, tx uint64, seg proto.SegKey, mode proto.LockMode) error {
	_, err := r.callRaw("Lock", proto.AppendLockArgs(nil, client, tx, seg, mode))
	return err
}

// LockObject implements proto.Conn.
func (r *Remote) LockObject(client uint32, tx uint64, seg proto.SegKey, slot int, mode proto.LockMode) error {
	_, err := r.callRaw("LockObject", proto.AppendLockObjectArgs(nil, client, tx, seg, slot, mode))
	return err
}

// Commit implements proto.Conn.
func (r *Remote) Commit(client uint32, tx uint64, segs []proto.SegImage) error {
	_, err := r.callRaw("Commit", proto.AppendCommitArgs(nil, client, tx, segs))
	return err
}

// Abort implements proto.Conn.
func (r *Remote) Abort(client uint32, tx uint64) error {
	return r.call("Abort", &proto.AbortArgs{Client: client, Tx: tx}, &proto.Empty{})
}

// Prepare implements proto.Conn.
func (r *Remote) Prepare(client uint32, tx uint64, segs []proto.SegImage) error {
	return r.call("Prepare", &proto.PrepareArgs{Client: client, Tx: tx, Segs: segs}, &proto.Empty{})
}

// Decide implements proto.Conn.
func (r *Remote) Decide(tx uint64, commit bool) error {
	return r.call("Decide", &proto.DecideArgs{Tx: tx, Commit: commit}, &proto.Empty{})
}

// SegmentsOf implements proto.Conn.
func (r *Remote) SegmentsOf(db, fileID uint32) ([]proto.SegKey, error) {
	var rep proto.SegmentsOfReply
	err := r.call("SegmentsOf", &proto.SegmentsOfArgs{DB: db, FileID: fileID}, &rep)
	return rep.Segs, err
}

// Released implements proto.Conn.
func (r *Remote) Released(client uint32, seg proto.SegKey) error {
	return r.call("Released", &proto.ReleasedArgs{Client: client, Seg: seg}, &proto.Empty{})
}

// CreateLarge implements proto.Conn.
func (r *Remote) CreateLarge(client uint32, tx uint64, seg proto.SegKey, typ uint32, content []byte) (int, error) {
	var rep proto.CreateLargeReply
	err := r.call("CreateLarge", &proto.CreateLargeArgs{
		Client: client, Tx: tx, Seg: seg, Type: typ, Content: content,
	}, &rep)
	return rep.Slot, err
}

// AllocRun implements proto.Conn.
func (r *Remote) AllocRun(db uint32, nPages int) (uint32, int64, int, error) {
	var rep proto.AllocRunReply
	err := r.call("AllocRun", &proto.AllocRunArgs{DB: db, NPages: nPages}, &rep)
	return rep.Area, rep.Start, rep.Granted, err
}

// FreeRun implements proto.Conn.
func (r *Remote) FreeRun(db, area uint32, start int64) error {
	return r.call("FreeRun", &proto.RunArgs{DB: db, Area: area, Start: start}, &proto.Empty{})
}

// ReadRun implements proto.Conn.
func (r *Remote) ReadRun(db, area uint32, start int64, nPages int) ([]byte, error) {
	var rep proto.RunReply
	err := r.call("ReadRun", &proto.RunArgs{DB: db, Area: area, Start: start, NPages: nPages}, &rep)
	return rep.Data, err
}

// WriteRun implements proto.Conn.
func (r *Remote) WriteRun(db, area uint32, start int64, data []byte) error {
	return r.call("WriteRun", &proto.RunArgs{DB: db, Area: area, Start: start, Data: data}, &proto.Empty{})
}

// NameBind implements proto.Conn.
func (r *Remote) NameBind(db uint32, name string, o oid.OID) error {
	var a proto.NameBindArgs
	a.DB, a.Name = db, name
	o.Put(a.OID[:])
	return r.call("NameBind", &a, &proto.Empty{})
}

// NameLookup implements proto.Conn.
func (r *Remote) NameLookup(db uint32, name string) (oid.OID, error) {
	var rep proto.NameLookupReply
	if err := r.call("NameLookup", &proto.NameLookupArgs{DB: db, Name: name}, &rep); err != nil {
		return oid.Nil, err
	}
	return oid.Decode(rep.OID[:])
}

// NameUnbind implements proto.Conn.
func (r *Remote) NameUnbind(db uint32, name string) error {
	return r.call("NameUnbind", &proto.NameUnbindArgs{DB: db, Name: name}, &proto.Empty{})
}

// NameRemoveOID implements proto.Conn.
func (r *Remote) NameRemoveOID(db uint32, o oid.OID) error {
	var a proto.NameRemoveOIDArgs
	a.DB = db
	o.Put(a.OID[:])
	return r.call("NameRemoveOID", &a, &proto.Empty{})
}

// Close tears down the connection.
func (r *Remote) Close() error { return r.p.Close() }

var _ proto.Conn = (*Remote)(nil)
