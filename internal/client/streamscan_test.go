package client

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"bess/internal/fault"
	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/rpc"
	"bess/internal/segment"
	"bess/internal/server"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

var blobType = segment.TypeDesc{Name: "ScanBlob", Size: 0}

// populateScanFile creates nSegs segments under fileID, each holding objsPer
// blob objects of blobLen bytes, in one committed transaction.
func populateScanFile(t *testing.T, s *Session, fileID uint32, nSegs, objsPer, blobLen int) []proto.SegKey {
	t.Helper()
	td, err := s.RegisterType(blobType)
	if err != nil {
		t.Fatal(err)
	}
	dataPages := (objsPer*(blobLen+16))/4096 + 2
	segs := make([]proto.SegKey, nSegs)
	for i := range segs {
		segs[i], err = s.CreateSegment(fileID, 1, dataPages, -1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, k := range segs {
		for j := 0; j < objsPer; j++ {
			if _, err := s.CreateObject(k, td.ID, make([]byte, blobLen)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return segs
}

func countStreamScan(t *testing.T, s *Session, fileID uint32) int {
	t.Helper()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := s.StreamScan(fileID, func(_ vmem.Addr, _ *swizzle.Object) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return n
}

func checkNoPinnedFrames(t *testing.T, s *Session) {
	t.Helper()
	if s.lastScan == nil {
		t.Fatal("no stream was used")
	}
	if n := s.lastScan.pinnedFrames(); n != 0 {
		t.Fatalf("%d pool frames still pinned after scan", n)
	}
}

func TestStreamScanVisitsAll(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s, r := openRemote(t, srv, "scanner")
	const fileID, nSegs, objsPer = 7, 6, 20
	populateScanFile(t, s, fileID, nSegs, objsPer, 512)

	t.Run("warm", func(t *testing.T) {
		if n := countStreamScan(t, s, fileID); n != nSegs*objsPer {
			t.Fatalf("visited %d objects, want %d", n, nSegs*objsPer)
		}
		checkNoPinnedFrames(t, s)
	})
	t.Run("cold", func(t *testing.T) {
		s.DropAllCached()
		batches := 0
		s.SetScanBatchHook(func(images, bytes int) { batches++ })
		defer s.SetScanBatchHook(nil)
		before := r.Calls()
		if n := countStreamScan(t, s, fileID); n != nSegs*objsPer {
			t.Fatalf("visited %d objects, want %d", n, nSegs*objsPer)
		}
		// Begin costs one NewTx, the scan itself exactly one ScanStart:
		// every segment image arrives pushed, with zero per-segment RPCs.
		if calls := r.Calls() - before; calls > 3 {
			t.Fatalf("cold streaming scan issued %d RPCs, want <= 3", calls)
		}
		if batches == 0 {
			t.Fatal("batch hook never fired")
		}
		checkNoPinnedFrames(t, s)
	})
}

// TestStreamScanFallback checks the pull-path fallback against a server
// that predates the scan protocol.
func TestStreamScanFallback(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	cEnd, sEnd := rpc.Pipe()
	server.ServePeer(srv, sEnd)
	// Simulate an old server: ScanStart answers with the exact dispatch
	// error an unregistered method produces.
	sEnd.Handle("ScanStart", func([]byte) ([]byte, error) {
		return nil, errors.New("rpc: no handler for method: ScanStart")
	})
	r := NewRemote(cEnd)
	s, err := Open(r, "old", "testdb", true)
	if err != nil {
		t.Fatal(err)
	}
	const fileID, nSegs, objsPer = 3, 4, 10
	populateScanFile(t, s, fileID, nSegs, objsPer, 256)
	s.DropAllCached()
	before := r.Calls()
	if n := countStreamScan(t, s, fileID); n != nSegs*objsPer {
		t.Fatalf("visited %d objects, want %d", n, nSegs*objsPer)
	}
	// The pull path pays per-segment round trips — proof it was taken.
	if calls := r.Calls() - before; calls < int64(nSegs) {
		t.Fatalf("fallback scan issued only %d RPCs, expected per-segment traffic", calls)
	}
}

// TestStreamScanCancelMidStream aborts from the visitor callback and checks
// nothing leaks: no pinned frames, and the server cursor goroutine exits.
func TestStreamScanCancelMidStream(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s, _ := openRemote(t, srv, "canceller")
	const fileID = 9
	populateScanFile(t, s, fileID, 8, 20, 512)
	s.DropAllCached()
	s.SetScanTuning(16<<10, 8<<10) // small window: the cursor must outlive many credit waits

	base := runtime.NumGoroutine()
	boom := errors.New("stop here")
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := s.StreamScan(fileID, func(_ vmem.Addr, _ *swizzle.Object) error {
		n++
		if n == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the visitor's error", err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	checkNoPinnedFrames(t, s)
	waitGoroutines(t, base)
	goleak.Check(t, "server.") // cursor and sender must both be gone
}

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d, want <= %d (cursor leaked?)", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// openFaultRemote opens a session whose connection is wrapped server-side
// with the given fault plan.
func openFaultRemote(t *testing.T, srv *server.Server, name string, plan fault.ConnPlan) (*Session, *rpc.Peer, *rpc.Peer) {
	t.Helper()
	c1, c2 := net.Pipe()
	cli := rpc.NewPeer(c1)
	sp := rpc.NewPeer(fault.WrapConn(c2, plan))
	server.ServePeer(srv, sp)
	s, err := Open(NewRemote(cli), name, "testdb", false)
	if err != nil {
		t.Fatal(err)
	}
	return s, cli, sp
}

// TestStreamScanFaultInjection runs the streaming scan over connections
// with injected faults. Delays must not break it; a short write or a
// dropped connection must surface as an error — never a hang — and leave
// no pinned frames or goroutines behind.
func TestStreamScanFaultInjection(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	setup := openDirect(t, srv, "setup")
	const fileID, nSegs, objsPer = 11, 24, 14
	populateScanFile(t, setup, fileID, nSegs, objsPer, 1024)

	t.Run("delay", func(t *testing.T) {
		s, cli, _ := openFaultRemote(t, srv, "slow", fault.ConnPlan{
			ReadDelay: 200 * time.Microsecond, WriteDelay: 200 * time.Microsecond,
		})
		defer cli.Close()
		if n := countStreamScan(t, s, fileID); n != nSegs*objsPer {
			t.Fatalf("visited %d objects, want %d", n, nSegs*objsPer)
		}
		checkNoPinnedFrames(t, s)
	})
	t.Run("shortwrite", func(t *testing.T) {
		base := runtime.NumGoroutine()
		// Session setup traffic fits well under the limit; the pushed
		// segment images (~350KB) cross it mid-stream.
		s, cli, _ := openFaultRemote(t, srv, "torn", fault.ConnPlan{ShortWriteAfter: 48 << 10})
		defer cli.Close()
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		err := s.StreamScan(fileID, func(_ vmem.Addr, _ *swizzle.Object) error { return nil })
		if err == nil {
			t.Fatal("scan over a torn connection succeeded")
		}
		checkNoPinnedFrames(t, s)
		cli.Close()
		waitGoroutines(t, base)
		goleak.Check(t, "server.")
	})
	t.Run("drop", func(t *testing.T) {
		base := runtime.NumGoroutine()
		s, cli, _ := openFaultRemote(t, srv, "dropped", fault.ConnPlan{DropAfterOps: 40})
		defer cli.Close()
		// Small window and batches: the stream needs many socket ops, so
		// the scheduled drop lands mid-stream, well past session setup.
		s.SetScanTuning(32<<10, 8<<10)
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		err := s.StreamScan(fileID, func(_ vmem.Addr, _ *swizzle.Object) error { return nil })
		if err == nil {
			t.Fatal("scan over a dropped connection succeeded")
		}
		checkNoPinnedFrames(t, s)
		cli.Close()
		waitGoroutines(t, base)
		goleak.Check(t, "server.")
	})
}

// TestStreamScanParallelFiles streams two files concurrently over separate
// sessions — the multifile parallel-scan configuration of §10.
func TestStreamScanParallelFiles(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	writer, _ := openRemote(t, srv, "writer")
	const objs = 40
	populateScanFile(t, writer, 21, 4, objs/4, 512)
	populateScanFile(t, writer, 22, 4, objs/4, 512)

	type result struct {
		n   int
		err error
	}
	results := make(chan result, 2)
	for _, fileID := range []uint32{21, 22} {
		go func(fid uint32) {
			s, _ := openRemote(t, srv, "p-scan")
			if err := s.Begin(); err != nil {
				results <- result{0, err}
				return
			}
			n := 0
			err := s.StreamScan(fid, func(_ vmem.Addr, _ *swizzle.Object) error {
				n++
				return nil
			})
			if err == nil {
				err = s.Commit()
			}
			results <- result{n, err}
		}(fileID)
	}
	for i := 0; i < 2; i++ {
		res := <-results
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.n != objs {
			t.Fatalf("parallel scan visited %d, want %d", res.n, objs)
		}
	}
}

// TestScanSkipsDroppedSegment is the regression test for Session.Scan
// aborting when a listed segment vanishes before the cursor reaches it: a
// conn whose SegmentsOf reports one segment that does not exist.
func TestScanSkipsDroppedSegment(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()

	run := func(t *testing.T, conn proto.Conn, fileID uint32) {
		s, err := Open(conn, "skipper", "testdb", true)
		if err != nil {
			t.Fatal(err)
		}
		const nSegs, objsPer = 3, 8
		populateScanFile(t, s, fileID, nSegs, objsPer, 128)
		s.DropAllCached()
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		n := 0
		err = s.Scan(fileID, func(_ vmem.Addr, _ *swizzle.Object) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Scan with a dropped segment: %v", err)
		}
		if n != nSegs*objsPer {
			t.Fatalf("visited %d objects, want %d", n, nSegs*objsPer)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("direct", func(t *testing.T) {
		run(t, phantomSegConn{srv}, 5)
	})
	t.Run("remote", func(t *testing.T) {
		cEnd, sEnd := rpc.Pipe()
		server.ServePeer(srv, sEnd)
		run(t, phantomSegConn{NewRemote(cEnd)}, 6)
	})
}

// phantomSegConn lists one extra segment that does not exist — the shape of
// a segment dropped between SegmentsOf and the fetch.
type phantomSegConn struct {
	proto.Conn
}

func (c phantomSegConn) SegmentsOf(db, fileID uint32) ([]proto.SegKey, error) {
	segs, err := c.Conn.SegmentsOf(db, fileID)
	if err != nil {
		return nil, err
	}
	// Splice the phantom into the middle so the scan must continue past it.
	out := append([]proto.SegKey(nil), segs[:len(segs)/2]...)
	out = append(out, proto.SegKey{Area: segs[0].Area, Start: 1 << 40})
	return append(out, segs[len(segs)/2:]...), nil
}
