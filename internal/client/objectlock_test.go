package client

import (
	"testing"
	"time"

	"bess/internal/lock"
	"bess/internal/server"
)

// TestObjectLevelLocking exercises the §2.3/[27] software object locks:
// two transactions conflict on the same object but coexist on different
// objects of the same segment.
func TestObjectLevelLocking(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	srv.CallbackTimeout = 200 * time.Millisecond
	srv.SetLockTimeout(150 * time.Millisecond)

	a := openDirect(t, srv, "a")
	b := openDirect(t, srv, "b")
	td, _ := a.RegisterType(nodeType)
	b.RegisterType(nodeType)
	seg, _ := a.CreateSegment(1, 1, 2, -1)
	a.Begin()
	o1, _ := a.CreateObject(seg, td.ID, nodeBytes(1))
	o2, _ := a.CreateObject(seg, td.ID, nodeBytes(2))
	a.SetRoot("o1", o1)
	a.SetRoot("o2", o2)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	// a takes X on o1; b can still take X on o2 (different objects, the
	// segment carries only intention locks).
	a.Begin()
	b.Begin()
	oa, err := a.Root("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LockObject(oa.Addr, true); err != nil {
		t.Fatal(err)
	}
	ob, err := b.Root("o2")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LockObject(ob.Addr, true); err != nil {
		t.Fatalf("object locks on distinct objects conflicted: %v", err)
	}
	// But b cannot take X on o1 while a holds it.
	ob1, err := b.Root("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LockObject(ob1.Addr, true); err == nil {
		t.Fatal("conflicting object X granted")
	}
	// S on o1 from b also blocks against a's X.
	if err := b.LockObject(ob1.Addr, false); err == nil {
		t.Fatal("S granted against held X")
	}
	a.Commit()
	// After a commits, b can lock o1.
	if err := b.LockObject(ob1.Addr, false); err != nil {
		t.Fatalf("S after release: %v", err)
	}
	b.Commit()
	_ = lock.S
}
