package client

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"bess/internal/server"
	"bess/internal/swizzle"
)

// TestStaleAddressAfterRevocation pins down reference lifetime semantics:
// after a callback drops a cached segment, addresses from the old mapping
// are dead — re-resolution through names/OIDs yields fresh, valid ones.
func TestStaleAddressAfterRevocation(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	srv.CallbackTimeout = 300 * time.Millisecond

	writer, _ := openRemote(t, srv, "writer")
	reader, _ := openRemote(t, srv, "reader")
	td, _ := writer.RegisterType(nodeType)
	reader.RegisterType(nodeType)
	seg, _ := writer.CreateSegment(1, 1, 2, -1)
	writer.Begin()
	addr, _ := writer.CreateObject(seg, td.ID, nodeBytes(1))
	writer.SetRoot("x", addr)
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	reader.Begin()
	robj, err := reader.Root("x")
	if err != nil {
		t.Fatal(err)
	}
	oldAddr := robj.Addr
	reader.Commit()

	// Writer's update revokes the reader's idle copy.
	writer.Begin()
	wobj, _ := writer.Deref(addr)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 2)
	if err := wobj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// The old address no longer resolves (its reservation is queued to
	// drop and dropped at Begin); re-resolving by name works and sees the
	// new value.
	reader.Begin()
	if _, err := reader.Deref(oldAddr); err == nil {
		// A same-address reuse is possible only if the drop had not yet
		// applied; after Begin it must have.
		t.Fatal("stale address still dereferences after revocation")
	} else if !errors.Is(err, swizzle.ErrUnknownAddr) && !errors.Is(err, swizzle.ErrNotSlotAddr) {
		t.Fatalf("unexpected error class: %v", err)
	}
	fresh, err := reader.Root("x")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(fresh) != 2 {
		t.Fatalf("fresh value = %d", nodeVal(fresh))
	}
	reader.Commit()
}

// TestDropAllCachedForcesRefetch verifies the cold-cache control used by
// the E6 baseline.
func TestDropAllCachedForcesRefetch(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	s := openDirect(t, srv, "app")
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	s.Begin()
	addr, _ := s.CreateObject(seg, td.ID, nodeBytes(9))
	s.SetRoot("r", addr)
	s.Commit()

	before := srv.Snapshot().SlottedFetches
	s.DropAllCached()
	s.Begin()
	obj, err := s.Root("r")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(obj) != 9 {
		t.Fatal("value after refetch")
	}
	s.Commit()
	if srv.Snapshot().SlottedFetches <= before {
		t.Fatal("DropAllCached did not force a refetch")
	}
}

// TestPendingDropAppliedOnTouch exercises the drainDrop path: a revocation
// accepted for an untouched segment mid-transaction is applied before the
// transaction's first access to it.
func TestPendingDropAppliedOnTouch(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()
	srv.CallbackTimeout = 300 * time.Millisecond

	writer, _ := openRemote(t, srv, "writer")
	reader, _ := openRemote(t, srv, "reader")
	td, _ := writer.RegisterType(nodeType)
	reader.RegisterType(nodeType)
	segA, _ := writer.CreateSegment(1, 1, 2, -1)
	segB, _ := writer.CreateSegment(1, 1, 2, -1)
	writer.Begin()
	a, _ := writer.CreateObject(segA, td.ID, nodeBytes(1))
	b, _ := writer.CreateObject(segB, td.ID, nodeBytes(2))
	writer.SetRoot("a", a)
	writer.SetRoot("b", b)
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reader warms BOTH segments, commits, then begins a tx touching only A.
	reader.Begin()
	reader.Root("a")
	reader.Root("b")
	reader.Commit()
	reader.Begin()
	ra, err := reader.Root("a")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodeVal(ra)

	// Writer updates B: reader's tx has NOT touched B, so the callback is
	// granted and the drop queued.
	writer.Begin()
	wb, _ := writer.Deref(b)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 22)
	if err := wb.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// The reader now touches B inside the same tx: the queued drop applies
	// first, so it refetches the committed value rather than stale bytes.
	rb, err := reader.Root("b")
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(rb) != 22 {
		t.Fatalf("reader saw stale B: %d", nodeVal(rb))
	}
	reader.Commit()
}
