package client

import (
	"testing"

	"bess/internal/server"
)

// TestColdTouchRoundTrips pins the message cost of a cold segment touch
// over RPC: reserving the address space costs one SegInfo and faulting the
// segment costs one combined FetchSeg — two round trips where the
// FetchSlotted/FetchData pair used to make three. Remote.Calls() counts
// every RPC, so the assertion is exact, not statistical.
func TestColdTouchRoundTrips(t *testing.T) {
	srv := server.NewMem(1)
	defer srv.Close()

	// A writer populates one segment.
	w := openDirect(t, srv, "writer")
	td, err := w.RegisterType(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := w.CreateSegment(1, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	addr, err := w.CreateObject(seg, td.ID, nodeBytes(7))
	if err != nil {
		t.Fatal(err)
	}
	_ = addr
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// A remote reader touches it cold.
	s, r := openRemote(t, srv, "reader")
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	before := r.Calls()
	a, err := s.AddrOfSlot(seg, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s.Deref(a)
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(obj) != 7 {
		t.Fatalf("value = %d", nodeVal(obj))
	}
	delta := r.Calls() - before
	if delta != 2 {
		t.Fatalf("cold segment touch cost %d RPCs, want 2 (SegInfo + FetchSeg)", delta)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Warm touch in the next transaction: the inter-transaction cache serves
	// everything, zero RPCs beyond the transaction bookkeeping.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	before = r.Calls()
	obj, err = s.Deref(a)
	if err != nil {
		t.Fatal(err)
	}
	if nodeVal(obj) != 7 {
		t.Fatalf("warm value = %d", nodeVal(obj))
	}
	if delta := r.Calls() - before; delta != 0 {
		t.Fatalf("warm touch cost %d RPCs, want 0", delta)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}
