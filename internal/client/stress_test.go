package client

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bess/internal/server"
)

// TestConcurrentTransfersPreserveInvariant drives several client sessions
// transferring money between two accounts in the same segment. Conflicts
// surface as lock timeouts or callback-revocation failures (the paper's
// timeout-based deadlock handling); clients abort and retry. Whatever the
// interleaving, committed state must conserve the total.
func TestConcurrentTransfersPreserveInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("contention stress test; skipped with -short")
	}
	srv := server.NewMem(1)
	defer srv.Close()
	srv.CallbackTimeout = 50 * time.Millisecond
	srv.SetLockTimeout(100 * time.Millisecond)

	setup := openRemoteT(t, srv, "setup")
	td, _ := setup.RegisterType(nodeType)
	seg, _ := setup.CreateSegment(1, 1, 2, -1)
	setup.Begin()
	a, err := setup.CreateObject(seg, td.ID, nodeBytes(700))
	if err != nil {
		t.Fatal(err)
	}
	b, err := setup.CreateObject(seg, td.ID, nodeBytes(300))
	if err != nil {
		t.Fatal(err)
	}
	setup.SetRoot("a", a)
	setup.SetRoot("b", b)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const (
		workers   = 3
		transfers = 5
	)
	var wg sync.WaitGroup
	var committed sync.Map
	fatal := make(chan error, workers)
	for w := 0; w < workers; w++ {
		sess := openRemoteT(t, srv, "worker")
		wg.Add(1)
		go func(w int, sess *Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			done := 0
			for attempt := 0; done < transfers && attempt < transfers*60; attempt++ {
				if err := runTransfer(sess, uint64(w+1)); err != nil {
					// Conflict (aborted inside): back off with jitter so
					// callbacks find the session between transactions.
					time.Sleep(time.Duration(1+rng.Intn(8)) * time.Millisecond)
					continue
				}
				committed.Store([2]int{w, done}, true)
				done++
			}
			if done < transfers {
				fatal <- errTooFewCommits
			}
		}(w, sess)
	}
	wg.Wait()
	select {
	case err := <-fatal:
		t.Fatal(err)
	default:
	}

	// The invariant: total conserved across every interleaving.
	check := openRemoteT(t, srv, "checker")
	check.Begin()
	oa, err := check.Root("a")
	if err != nil {
		t.Fatal(err)
	}
	ob, err := check.Root("b")
	if err != nil {
		t.Fatal(err)
	}
	total := nodeVal(oa) + nodeVal(ob)
	check.Commit()
	if total != 1000 {
		t.Fatalf("invariant broken: total = %d", total)
	}
	var n int
	committed.Range(func(any, any) bool { n++; return true })
	if n != workers*transfers {
		t.Fatalf("committed %d of %d transfers", n, workers*transfers)
	}
	st := srv.Snapshot()
	t.Logf("commits=%d aborts=%d callbacks=%d refusals=%d",
		st.Commits, st.Aborts, st.Callbacks, st.CallbackRefusals)
}

var errTooFewCommits = &retryExhausted{}

type retryExhausted struct{}

func (*retryExhausted) Error() string { return "client: too few transfers committed under contention" }

// runTransfer moves `amount` from a to b in one transaction, aborting on
// any conflict.
func runTransfer(sess *Session, amount uint64) error {
	if err := sess.Begin(); err != nil {
		return err
	}
	fail := func(err error) error {
		_ = sess.Abort()
		return err
	}
	oa, err := sess.Root("a")
	if err != nil {
		return fail(err)
	}
	ob, err := sess.Root("b")
	if err != nil {
		return fail(err)
	}
	va, vb := nodeVal(oa), nodeVal(ob)
	if va < amount {
		amount = va
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], va-amount)
	if err := oa.Write(8, buf[:]); err != nil {
		return fail(err)
	}
	binary.BigEndian.PutUint64(buf[:], vb+amount)
	if err := ob.Write(8, buf[:]); err != nil {
		return fail(err)
	}
	return sess.Commit()
}

// openRemoteT is openRemote without the second return value.
func openRemoteT(t *testing.T, srv *server.Server, name string) *Session {
	t.Helper()
	s, _ := openRemote(t, srv, name)
	if _, err := s.RegisterType(nodeType); err != nil {
		t.Fatal(err)
	}
	return s
}
