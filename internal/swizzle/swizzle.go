// Package swizzle implements the BeSS fast object reference mechanism
// (paper §2.1): inter-object references are virtual-memory pointers to the
// headers (slots) of referenced objects, established lazily by three waves
// of faulting over a simulated address space.
//
// Wave 1: when a reference into segment X is first seen, an address range
// for X's *slotted* segment is reserved and access-protected — nothing is
// fetched and no memory is consumed (the "less greedy" reservation).
//
// Wave 2: the first access to X's slotted range faults; the slotted segment
// is fetched, mapped write-protected (§2.2), an address range is reserved
// for X's *data* segment, and every slot's DP field is adjusted to point at
// the reserved data address — "just two arithmetic operations" per slot.
//
// Wave 3: the first access through a DP faults; the data segment is fetched
// and mapped, and every reference inside the fetched objects is swizzled:
// targets get wave-1 reservations and the persistent reference bytes are
// replaced by the virtual address of the target slot.
package swizzle

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bess/internal/page"
	"bess/internal/segment"
	"bess/internal/vmem"
)

// SegID identifies an object segment by the location of its slotted segment,
// which is never relocated (paper §2.1).
type SegID struct {
	Area  page.AreaID
	Start page.No
}

// String renders the id as area:page.
func (id SegID) String() string { return fmt.Sprintf("%d:%d", id.Area, id.Start) }

// PRef is a persistent (on-disk) reference: 48-bit header offset within the
// database, tagged in bit 63 to distinguish it from a swizzled virtual
// address. PRef 0 is the nil reference in both forms.
type PRef uint64

// unswizzledTag marks the persistent form of a reference field.
const unswizzledTag = uint64(1) << 63

// HeaderOffset packs (area, slotted segment start page, slot index) into the
// 48-bit "offset of the object's header within the database" carried by OIDs
// and persistent references: 16 bits of area, 32 bits of byte offset.
func HeaderOffset(id SegID, slot int) uint64 {
	return uint64(id.Area)<<32 | uint64(id.Start)*page.Size + segment.SlotByteOffset(slot)
}

// SplitHeaderOffset recovers the area and the byte offset within the area.
func SplitHeaderOffset(off uint64) (area page.AreaID, byteOff uint64) {
	return page.AreaID(off >> 32), off & 0xFFFFFFFF
}

// MakePRef builds the tagged persistent reference for a header offset.
func MakePRef(headerOff uint64) PRef {
	if headerOff == 0 {
		return 0
	}
	return PRef(headerOff | unswizzledTag)
}

// IsSwizzled reports whether the raw 8-byte field value is a virtual address
// (true) or a tagged persistent reference / nil (false for nil).
func IsSwizzled(raw uint64) bool { return raw != 0 && raw&unswizzledTag == 0 }

// Fetcher supplies segment images and resolves header offsets. The cache /
// server layers implement it.
type Fetcher interface {
	// SlottedPages returns the size in pages of id's slotted segment, so a
	// wave-1 reservation can be made without fetching anything.
	SlottedPages(id SegID) (int, error)
	// FetchSlotted returns the decoded slotted segment (header + slots +
	// overflow image).
	FetchSlotted(id SegID) (*segment.Seg, error)
	// FetchData returns the data segment bytes for seg
	// (len = DataPages*page.Size).
	FetchData(id SegID, seg *segment.Seg) ([]byte, error)
	// FetchLarge returns the full contents of the transparent large object
	// in slot (KindLarge), used to populate its reserved range on fault.
	FetchLarge(id SegID, seg *segment.Seg, slot int) ([]byte, error)
	// Resolve maps a 48-bit header offset to its segment and slot index.
	Resolve(headerOff uint64) (SegID, int, error)
}

// Errors returned by the mapper.
var (
	ErrUnknownAddr   = errors.New("swizzle: address does not name a mapped segment")
	ErrNotSlotAddr   = errors.New("swizzle: address is not an object header")
	ErrProtected     = errors.New("swizzle: write to protected control structure denied")
	ErrNoType        = errors.New("swizzle: object type not registered")
	ErrBadField      = errors.New("swizzle: reference field out of object bounds")
	ErrLargeSpan     = errors.New("swizzle: operation exceeds large object size")
	ErrNotLarge      = errors.New("swizzle: slot is not a transparent large object")
	ErrAlreadyMapped = errors.New("swizzle: segment already mapped")
)

// segState tracks how far a segment has progressed through the waves.
type segState uint8

const (
	stReserved   segState = iota // wave 1 done: slotted range reserved
	stSlotted                    // wave 2 done: slotted loaded, data range reserved
	stDataMapped                 // wave 3 done: data fetched and swizzled
)

// mseg is the per-segment mapping state ("segment handle" in Figure 1).
type mseg struct {
	id           SegID
	state        segState
	slottedBase  vmem.Addr
	slottedPages int
	seg          *segment.Seg
	dataBase     vmem.Addr // reserved at wave 2
	dataPages    int
	slottedImg   []byte // the write-protected mapped image of the slotted segment
	// dp[i] is slot i's in-memory DP: the virtual address of the object's
	// data. It mirrors what the paper stores in the mapped slot itself.
	dp []vmem.Addr
	// largeBase[i] is the reserved range for a KindLarge slot's object.
	largeBase map[int]vmem.Addr
	dirtyData bool
}

// Stats counts wave activity for one Mapper.
type Stats struct {
	Wave1Reservations int64 // slotted ranges reserved
	Wave2SlottedLoads int64 // slotted segments fetched + data ranges reserved
	Wave3DataLoads    int64 // data segments fetched
	RefsSwizzled      int64 // reference fields converted to virtual addresses
	DPFixups          int64 // slot DP adjustments (two arithmetic ops each)
	DeniedWrites      int64 // user writes to protected control structures
	LargeFetches      int64
}

// Mapper manages one process' view of the database: a vmem.Space plus the
// per-segment wave state. It is not safe for concurrent use (in BeSS each
// process faults on its own address space); the client layer serializes.
type Mapper struct {
	space *vmem.Space
	fetch Fetcher
	types *segment.Registry

	bySeg   map[SegID]*mseg
	byFrame map[int64]*mseg // frames of slotted + data + large ranges

	stats Stats
}

// NewMapper wires a mapper to a space, a fetcher, and a type registry, and
// installs the fault handler (the BeSS "interrupt handler").
func NewMapper(space *vmem.Space, fetch Fetcher, types *segment.Registry) *Mapper {
	m := &Mapper{
		space:   space,
		fetch:   fetch,
		types:   types,
		bySeg:   make(map[SegID]*mseg),
		byFrame: make(map[int64]*mseg),
	}
	space.SetHandler(m.handleFault)
	return m
}

// Space returns the underlying address space.
func (m *Mapper) Space() *vmem.Space { return m.space }

// Stats returns a copy of the wave counters.
func (m *Mapper) Stats() Stats { return m.stats }

// --- Wave 1 ---

// ReserveSeg performs wave 1 for id: reserve (but do not fetch) its slotted
// range. Idempotent.
func (m *Mapper) ReserveSeg(id SegID) (*mseg, error) {
	if ms, ok := m.bySeg[id]; ok {
		return ms, nil
	}
	n, err := m.fetch.SlottedPages(id)
	if err != nil {
		return nil, err
	}
	base, err := m.space.Reserve(n)
	if err != nil {
		return nil, err
	}
	ms := &mseg{id: id, state: stReserved, slottedBase: base, slottedPages: n}
	m.bySeg[id] = ms
	for i := 0; i < n; i++ {
		m.byFrame[base.Frame()+int64(i)] = ms
	}
	m.stats.Wave1Reservations++
	return ms, nil
}

// SwizzleRef converts a persistent reference into the virtual address of the
// target slot, reserving the target's slotted segment if needed (wave 1).
func (m *Mapper) SwizzleRef(p PRef) (vmem.Addr, error) {
	if p == 0 {
		return vmem.NilAddr, nil
	}
	headerOff := uint64(p) &^ unswizzledTag
	id, slot, err := m.fetch.Resolve(headerOff)
	if err != nil {
		return vmem.NilAddr, err
	}
	ms, err := m.ReserveSeg(id)
	if err != nil {
		return vmem.NilAddr, err
	}
	m.stats.RefsSwizzled++
	return ms.slottedBase + vmem.Addr(segment.SlotByteOffset(slot)), nil
}

// UnswizzleAddr converts a slot virtual address back to its persistent form.
func (m *Mapper) UnswizzleAddr(a vmem.Addr) (PRef, error) {
	if a == vmem.NilAddr {
		return 0, nil
	}
	ms, ok := m.byFrame[a.Frame()]
	if !ok {
		return 0, ErrUnknownAddr
	}
	if !m.inSlottedRange(ms, a.Frame()) {
		return 0, ErrNotSlotAddr
	}
	rel := uint64(a - ms.slottedBase)
	slot, err := segment.SlotIndexForOffset(rel)
	if err != nil {
		return 0, ErrNotSlotAddr
	}
	return MakePRef(HeaderOffset(ms.id, slot)), nil
}

// AddrOfSlot returns the virtual address of (id, slot), reserving as needed.
func (m *Mapper) AddrOfSlot(id SegID, slot int) (vmem.Addr, error) {
	ms, err := m.ReserveSeg(id)
	if err != nil {
		return vmem.NilAddr, err
	}
	return ms.slottedBase + vmem.Addr(segment.SlotByteOffset(slot)), nil
}

// --- Fault handling (waves 2 and 3) ---

// HandleFault is the mapper's fault policy. It is installed on the space by
// NewMapper; layers that need their own policy for some faults (the detect
// package grants+records data write faults) install a composite handler
// that delegates the rest here.
func (m *Mapper) HandleFault(f vmem.Fault) error { return m.handleFault(f) }

// FrameKind classifies a virtual frame for composite fault handlers.
type FrameKind uint8

// Frame kinds.
const (
	FrameUnknown FrameKind = iota
	FrameSlotted           // write-protected control structures
	FrameData              // data segment pages
	FrameLarge             // transparent large-object range
)

// FrameInfo reports which segment and which kind of range a frame belongs
// to, plus the page index within that range.
func (m *Mapper) FrameInfo(frame int64) (id SegID, kind FrameKind, pageIdx int, ok bool) {
	ms, found := m.byFrame[frame]
	if !found {
		return SegID{}, FrameUnknown, 0, false
	}
	switch {
	case m.inSlottedRange(ms, frame):
		return ms.id, FrameSlotted, int(frame - ms.slottedBase.Frame()), true
	case m.inDataRange(ms, frame):
		return ms.id, FrameData, int(frame - ms.dataBase.Frame()), true
	default:
		if slot, isLarge := m.largeSlotForFrame(ms, frame); isLarge {
			return ms.id, FrameLarge, int(frame - ms.largeBase[slot].Frame()), true
		}
		return ms.id, FrameUnknown, 0, true
	}
}

func (m *Mapper) handleFault(f vmem.Fault) error {
	ms, ok := m.byFrame[f.Frame]
	if !ok {
		return ErrUnknownAddr
	}
	switch f.Kind {
	case vmem.FaultNoBacking:
		// Which range does the frame fall in?
		if m.inSlottedRange(ms, f.Frame) {
			return m.loadSlotted(ms)
		}
		if m.inDataRange(ms, f.Frame) {
			return m.loadData(ms)
		}
		if slot, ok := m.largeSlotForFrame(ms, f.Frame); ok {
			return m.loadLarge(ms, slot)
		}
		return ErrUnknownAddr
	case vmem.FaultProtWrite:
		if m.inSlottedRange(ms, f.Frame) {
			// §2.2: ordinary user code cannot modify the slotted segment.
			m.stats.DeniedWrites++
			return ErrProtected
		}
		// Data-page write faults belong to the update-detection layer; the
		// mapper has no policy of its own, so deny. The detect package
		// installs a composite handler that grants access and records the
		// update before the mapper ever sees the fault.
		m.stats.DeniedWrites++
		return ErrProtected
	default:
		return fmt.Errorf("swizzle: unhandled fault %v at %#x", f.Kind, uint64(f.Addr))
	}
}

func (m *Mapper) inSlottedRange(ms *mseg, frame int64) bool {
	b := ms.slottedBase.Frame()
	return frame >= b && frame < b+int64(ms.slottedPages)
}

func (m *Mapper) inDataRange(ms *mseg, frame int64) bool {
	if ms.state < stSlotted {
		return false
	}
	b := ms.dataBase.Frame()
	return frame >= b && frame < b+int64(ms.dataPages)
}

func (m *Mapper) largeSlotForFrame(ms *mseg, frame int64) (int, bool) {
	for slot, base := range ms.largeBase {
		n := framesFor(int(ms.seg.Slots[slot].Size))
		if frame >= base.Frame() && frame < base.Frame()+int64(n) {
			return slot, true
		}
	}
	return 0, false
}

func framesFor(n int) int { return (n + page.Size - 1) / page.Size }

// loadSlotted is wave 2: fetch the slotted segment, map it write-protected,
// reserve the data range, and fix every DP.
func (m *Mapper) loadSlotted(ms *mseg) error {
	if ms.state >= stSlotted {
		return nil
	}
	seg, err := m.fetch.FetchSlotted(ms.id)
	if err != nil {
		return err
	}
	ms.seg = seg
	ms.dataPages = int(seg.Hdr.DataPages)
	if ms.dataPages == 0 {
		ms.dataPages = 1 // always reserve something so DPs are valid addresses
	}
	dataBase, err := m.space.Reserve(ms.dataPages)
	if err != nil {
		return err
	}
	ms.dataBase = dataBase
	for i := 0; i < ms.dataPages; i++ {
		m.byFrame[dataBase.Frame()+int64(i)] = ms
	}
	// Map the slotted image write-protected: readable, not writable (§2.2).
	img := seg.EncodeSlotted()
	ms.slottedImg = img
	for i := 0; i < ms.slottedPages && i < int(seg.Hdr.SlottedPages); i++ {
		fr := img[i*page.Size : (i+1)*page.Size]
		if err := m.space.Map(ms.slottedBase+vmem.Addr(i*page.Size), fr, vmem.ProtRead); err != nil {
			return err
		}
	}
	// Fix the DP of every live slot: dataBase + DataOff — the paper's "two
	// arithmetic operations". Transparent large objects instead get their
	// own reserved, access-protected range big enough for the whole object.
	ms.dp = make([]vmem.Addr, len(seg.Slots))
	ms.largeBase = make(map[int]vmem.Addr)
	for i := range seg.Slots {
		sl := &seg.Slots[i]
		switch sl.Kind {
		case segment.KindSmall, segment.KindForward:
			ms.dp[i] = ms.dataBase + vmem.Addr(sl.DataOff)
			m.stats.DPFixups++
		case segment.KindLarge:
			n := framesFor(int(sl.Size))
			if n == 0 {
				n = 1
			}
			base, err := m.space.Reserve(n)
			if err != nil {
				return err
			}
			ms.largeBase[i] = base
			ms.dp[i] = base
			for f := 0; f < n; f++ {
				m.byFrame[base.Frame()+int64(f)] = ms
			}
			m.stats.DPFixups++
		}
	}
	ms.state = stSlotted
	m.stats.Wave2SlottedLoads++
	return nil
}

// loadData is wave 3: fetch the data segment, map it, and swizzle every
// reference in every object present.
func (m *Mapper) loadData(ms *mseg) error {
	if ms.state >= stDataMapped {
		return nil
	}
	data, err := m.fetch.FetchData(ms.id, ms.seg)
	if err != nil {
		return err
	}
	if len(data) < ms.dataPages*page.Size {
		grown := make([]byte, ms.dataPages*page.Size)
		copy(grown, data)
		data = grown
	}
	ms.seg.Data = data
	// Swizzle references before the pages become visible.
	if err := m.swizzleDataRefs(ms); err != nil {
		return err
	}
	for i := 0; i < ms.dataPages; i++ {
		fr := data[i*page.Size : (i+1)*page.Size]
		if err := m.space.Map(ms.dataBase+vmem.Addr(i*page.Size), fr, vmem.ProtRead); err != nil {
			return err
		}
	}
	ms.state = stDataMapped
	m.stats.Wave3DataLoads++
	return nil
}

// swizzleDataRefs walks the type descriptor of every object in the fetched
// data segment and swizzles each reference (wave 3 → triggers wave 1 for
// the targets).
func (m *Mapper) swizzleDataRefs(ms *mseg) error {
	for _, i := range ms.seg.LiveSlots() {
		sl := ms.seg.Slots[i]
		if sl.Kind != segment.KindSmall {
			continue
		}
		td := m.types.Lookup(sl.Type)
		if td == nil {
			continue // typeless blob: no references to fix
		}
		obj := ms.seg.Data[sl.DataOff : sl.DataOff+uint64(sl.Size)]
		for _, off := range td.RefOffsets {
			if off+segment.RefSize > len(obj) {
				return ErrBadField
			}
			raw := binary.BigEndian.Uint64(obj[off:])
			if raw == 0 || IsSwizzled(raw) {
				continue
			}
			a, err := m.SwizzleRef(PRef(raw))
			if err != nil {
				return err
			}
			binary.BigEndian.PutUint64(obj[off:], uint64(a))
		}
	}
	return nil
}

// loadLarge populates a transparent large object's reserved range: "the
// actual object data may be fetched from the network in one step" (§2.1).
func (m *Mapper) loadLarge(ms *mseg, slot int) error {
	base := ms.largeBase[slot]
	if _, mapped, _ := m.space.ProtOf(base); mapped {
		return nil
	}
	content, err := m.fetch.FetchLarge(ms.id, ms.seg, slot)
	if err != nil {
		return err
	}
	n := framesFor(int(ms.seg.Slots[slot].Size))
	padded := make([]byte, n*page.Size)
	copy(padded, content)
	for i := 0; i < n; i++ {
		fr := padded[i*page.Size : (i+1)*page.Size]
		if err := m.space.Map(base+vmem.Addr(i*page.Size), fr, vmem.ProtRead); err != nil {
			return err
		}
	}
	m.stats.LargeFetches++
	return nil
}

// --- Object access ---

// Object is a dereferenced handle: the in-memory face of one object header.
type Object struct {
	m    *Mapper
	ms   *mseg
	Slot int
	Addr vmem.Addr // virtual address of the slot (the reference value)
	DP   vmem.Addr // virtual address of the object's data
	Size int
	Type segment.TypeID
	Kind segment.Kind
}

// Deref resolves a reference (a slot virtual address), triggering waves as
// needed, and returns the object handle. This is the hot path the paper
// optimizes: after the first access it is a map lookup plus two additions.
func (m *Mapper) Deref(ref vmem.Addr) (*Object, error) {
	if ref == vmem.NilAddr {
		return nil, ErrUnknownAddr
	}
	ms, ok := m.byFrame[ref.Frame()]
	if !ok {
		return nil, ErrUnknownAddr
	}
	if !m.inSlottedRange(ms, ref.Frame()) {
		return nil, ErrNotSlotAddr
	}
	if ms.state < stSlotted {
		// Touch the slot address: faults, wave 2 runs.
		if err := m.space.Touch(ref, false); err != nil {
			return nil, err
		}
	}
	rel := uint64(ref - ms.slottedBase)
	slot, err := segment.SlotIndexForOffset(rel)
	if err != nil {
		return nil, ErrNotSlotAddr
	}
	if slot >= len(ms.seg.Slots) || !ms.seg.Live(slot) {
		return nil, segment.ErrBadSlot
	}
	sl := ms.seg.Slots[slot]
	return &Object{
		m: m, ms: ms, Slot: slot, Addr: ref,
		DP:   ms.dp[slot],
		Size: int(sl.Size),
		Type: sl.Type,
		Kind: sl.Kind,
	}, nil
}

// Read copies n bytes at byte offset off of the object into buf, faulting
// the data segment in (wave 3) on first access.
func (o *Object) Read(off int, buf []byte) error {
	if off < 0 || off+len(buf) > o.Size {
		return ErrBadField
	}
	return o.m.space.ReadRange(o.DP+vmem.Addr(off), buf)
}

// Write copies buf into the object at byte offset off, subject to the
// space's write protection: the first write faults and the installed
// update-detection policy decides (grant + record, or deny).
func (o *Object) Write(off int, buf []byte) error {
	if off < 0 || off+len(buf) > o.Size {
		return ErrBadField
	}
	if err := o.m.space.WriteRange(o.DP+vmem.Addr(off), buf); err != nil {
		return err
	}
	o.ms.dirtyData = true
	return nil
}

// Bytes returns the object's bytes in place (trusted; no protection checks).
// The data segment is faulted in if needed.
func (o *Object) Bytes() ([]byte, error) {
	if err := o.m.space.Touch(o.DP, false); err != nil {
		return nil, err
	}
	if o.Kind == segment.KindLarge {
		buf := make([]byte, o.Size)
		if err := o.m.space.ReadRange(o.DP, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return o.ms.seg.Data[o.ms.seg.Slots[o.Slot].DataOff : o.ms.seg.Slots[o.Slot].DataOff+uint64(o.Size)], nil
}

// RefField returns the swizzled reference stored at field byte offset off.
// Reading it faults the data in; the stored value is a slot virtual address
// ready for another Deref — pointer-chasing is two Derefs and no table
// lookups, the paper's headline property.
func (o *Object) RefField(off int) (vmem.Addr, error) {
	var b [segment.RefSize]byte
	if err := o.Read(off, b[:]); err != nil {
		return vmem.NilAddr, err
	}
	raw := binary.BigEndian.Uint64(b[:])
	if raw != 0 && !IsSwizzled(raw) {
		// Lazily swizzle a field written in persistent form.
		a, err := o.m.SwizzleRef(PRef(raw))
		if err != nil {
			return vmem.NilAddr, err
		}
		return a, nil
	}
	return vmem.Addr(raw), nil
}

// SetRefField stores a reference (slot virtual address) at field offset off.
func (o *Object) SetRefField(off int, target vmem.Addr) error {
	var b [segment.RefSize]byte
	binary.BigEndian.PutUint64(b[:], uint64(target))
	return o.Write(off, b[:])
}

// --- Maintenance: flush, relocation, and release ---

// DirtySegs returns the ids of segments whose data has been written through
// this mapper.
func (m *Mapper) DirtySegs() []SegID {
	var out []SegID
	for id, ms := range m.bySeg {
		if ms.dirtyData {
			out = append(out, id)
		}
	}
	return out
}

// UnswizzledData returns a copy of the segment's data with every reference
// field converted back to persistent form, ready to be written to disk.
func (m *Mapper) UnswizzledData(id SegID) ([]byte, *segment.Seg, error) {
	ms, ok := m.bySeg[id]
	if !ok || ms.state < stDataMapped {
		return nil, nil, ErrUnknownAddr
	}
	out := append([]byte(nil), ms.seg.Data...)
	for _, i := range ms.seg.LiveSlots() {
		sl := ms.seg.Slots[i]
		if sl.Kind != segment.KindSmall {
			continue
		}
		td := m.types.Lookup(sl.Type)
		if td == nil {
			continue
		}
		obj := out[sl.DataOff : sl.DataOff+uint64(sl.Size)]
		for _, off := range td.RefOffsets {
			raw := binary.BigEndian.Uint64(obj[off:])
			if !IsSwizzled(raw) {
				continue
			}
			p, err := m.UnswizzleAddr(vmem.Addr(raw))
			if err != nil {
				return nil, nil, err
			}
			binary.BigEndian.PutUint64(obj[off:], uint64(p))
		}
	}
	return out, ms.seg, nil
}

// MarkClean clears the dirty flag after a successful flush.
func (m *Mapper) MarkClean(id SegID) {
	if ms, ok := m.bySeg[id]; ok {
		ms.dirtyData = false
	}
}

// Seg returns the decoded segment for id if its slotted part is loaded.
func (m *Mapper) Seg(id SegID) (*segment.Seg, bool) {
	ms, ok := m.bySeg[id]
	if !ok || ms.state < stSlotted {
		return nil, false
	}
	return ms.seg, true
}

// DataBase returns the reserved data-segment base address for id.
func (m *Mapper) DataBase(id SegID) (vmem.Addr, bool) {
	ms, ok := m.bySeg[id]
	if !ok || ms.state < stSlotted {
		return vmem.NilAddr, false
	}
	return ms.dataBase, true
}

// RelocateData re-homes a loaded segment's data (compaction, resizing, or
// movement between storage areas — §2.1's on-the-fly reorganization). The
// caller has already rewritten seg.Hdr geometry and seg.Data; the mapper
// releases the old reserved range, reserves a new one, re-fixes every DP,
// and remaps. Existing references (slot addresses) remain valid throughout.
func (m *Mapper) RelocateData(id SegID) error {
	ms, ok := m.bySeg[id]
	if !ok || ms.state < stSlotted {
		return ErrUnknownAddr
	}
	// Tear down the old data mapping.
	for i := 0; i < ms.dataPages; i++ {
		delete(m.byFrame, ms.dataBase.Frame()+int64(i))
	}
	if err := m.space.Release(ms.dataBase, ms.dataPages); err != nil {
		return err
	}
	wasMapped := ms.state == stDataMapped
	ms.dataPages = int(ms.seg.Hdr.DataPages)
	if ms.dataPages == 0 {
		ms.dataPages = 1
	}
	base, err := m.space.Reserve(ms.dataPages)
	if err != nil {
		return err
	}
	ms.dataBase = base
	for i := 0; i < ms.dataPages; i++ {
		m.byFrame[base.Frame()+int64(i)] = ms
	}
	for i := range ms.seg.Slots {
		sl := &ms.seg.Slots[i]
		if sl.Kind == segment.KindSmall || sl.Kind == segment.KindForward {
			ms.dp[i] = base + vmem.Addr(sl.DataOff)
			m.stats.DPFixups++
		}
	}
	if wasMapped {
		if len(ms.seg.Data) < ms.dataPages*page.Size {
			grown := make([]byte, ms.dataPages*page.Size)
			copy(grown, ms.seg.Data)
			ms.seg.Data = grown
		}
		for i := 0; i < ms.dataPages; i++ {
			fr := ms.seg.Data[i*page.Size : (i+1)*page.Size]
			if err := m.space.Map(base+vmem.Addr(i*page.Size), fr, vmem.ProtRead); err != nil {
				return err
			}
		}
		ms.state = stDataMapped
	} else {
		ms.state = stSlotted
	}
	return nil
}

// EvictData unmaps a segment's data pages (cache replacement took the
// slots); the reservation stays so DPs remain valid and the next access
// re-faults.
func (m *Mapper) EvictData(id SegID) error {
	ms, ok := m.bySeg[id]
	if !ok || ms.state < stDataMapped {
		return ErrUnknownAddr
	}
	for i := 0; i < ms.dataPages; i++ {
		if err := m.space.Unmap(ms.dataBase + vmem.Addr(i*page.Size)); err != nil {
			return err
		}
	}
	ms.state = stSlotted
	ms.seg.Data = nil
	return nil
}

// TrustedSlotUpdate performs a trusted modification of the write-protected
// slotted image: it unprotects the affected page, applies fn to the decoded
// segment, rewrites the image, and reprotects (paper §2.2). The protect /
// unprotect pair is what E7 counts.
func (m *Mapper) TrustedSlotUpdate(id SegID, fn func(*segment.Seg) error) error {
	ms, ok := m.bySeg[id]
	if !ok || ms.state < stSlotted {
		return ErrUnknownAddr
	}
	if err := m.space.Protect(ms.slottedBase, ms.slottedPages, vmem.ProtReadWrite); err != nil {
		return err
	}
	ferr := fn(ms.seg)
	if ferr == nil {
		// Refresh the mapped image in place so user-visible bytes match.
		img := ms.seg.EncodeSlotted()
		for i := 0; i < ms.slottedPages && (i+1)*page.Size <= len(img); i++ {
			if err := m.space.WriteAt(ms.slottedBase+vmem.Addr(i*page.Size), img[i*page.Size:(i+1)*page.Size]); err != nil {
				return err
			}
		}
		// Re-fix the DPs: the update may have created, moved, or resized
		// objects (two arithmetic operations per slot, as at load).
		for i := range ms.seg.Slots {
			sl := &ms.seg.Slots[i]
			if sl.Kind == segment.KindSmall || sl.Kind == segment.KindForward {
				ms.dp[i] = ms.dataBase + vmem.Addr(sl.DataOff)
				m.stats.DPFixups++
			}
		}
	}
	if err := m.space.Protect(ms.slottedBase, ms.slottedPages, vmem.ProtRead); err != nil {
		return err
	}
	return ferr
}

// EnsureLoaded forces wave 2 for id (reserve + fetch slotted) without
// dereferencing any particular object.
func (m *Mapper) EnsureLoaded(id SegID) error {
	ms, err := m.ReserveSeg(id)
	if err != nil {
		return err
	}
	if ms.state >= stSlotted {
		return nil
	}
	return m.loadSlotted(ms)
}

// EnsureData forces wave 3 for id (fetch + swizzle the data segment).
func (m *Mapper) EnsureData(id SegID) error {
	if err := m.EnsureLoaded(id); err != nil {
		return err
	}
	ms := m.bySeg[id]
	if ms.state >= stDataMapped {
		return nil
	}
	return m.loadData(ms)
}

// MarkDataDirty flags id's data as modified through a trusted path (object
// creation writes via the decoded segment, not the protected space).
func (m *Mapper) MarkDataDirty(id SegID) {
	if ms, ok := m.bySeg[id]; ok {
		ms.dirtyData = true
	}
}

// DropSeg evicts a segment entirely: its slotted and data reservations are
// released and the next reference to it restarts at wave 1. Callback
// revocation uses this to drop a cached copy.
func (m *Mapper) DropSeg(id SegID) error {
	ms, ok := m.bySeg[id]
	if !ok {
		return nil
	}
	for i := 0; i < ms.slottedPages; i++ {
		delete(m.byFrame, ms.slottedBase.Frame()+int64(i))
	}
	if err := m.space.Release(ms.slottedBase, ms.slottedPages); err != nil {
		return err
	}
	if ms.state >= stSlotted {
		for i := 0; i < ms.dataPages; i++ {
			delete(m.byFrame, ms.dataBase.Frame()+int64(i))
		}
		if err := m.space.Release(ms.dataBase, ms.dataPages); err != nil {
			return err
		}
		for slot, base := range ms.largeBase {
			n := framesFor(int(ms.seg.Slots[slot].Size))
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				delete(m.byFrame, base.Frame()+int64(i))
			}
			if err := m.space.Release(base, n); err != nil {
				return err
			}
		}
	}
	delete(m.bySeg, id)
	return nil
}

// CachedSegs lists every segment this mapper has reserved or loaded.
func (m *Mapper) CachedSegs() []SegID {
	out := make([]SegID, 0, len(m.bySeg))
	for id := range m.bySeg {
		out = append(out, id)
	}
	return out
}

// DataRange describes one segment's mapped data range.
type DataRange struct {
	ID    SegID
	Base  vmem.Addr
	Pages int
}

// MappedDataRanges lists the data ranges currently mapped (wave 3 done);
// the detect layer walks them to re-protect pages between transactions.
func (m *Mapper) MappedDataRanges() []DataRange {
	var out []DataRange
	for id, ms := range m.bySeg {
		if ms.state == stDataMapped {
			out = append(out, DataRange{ID: id, Base: ms.dataBase, Pages: ms.dataPages})
		}
	}
	return out
}

// SlottedBase exposes the reserved base address of a segment's slotted
// range (tests and the shm layer use it).
func (m *Mapper) SlottedBase(id SegID) (vmem.Addr, bool) {
	ms, ok := m.bySeg[id]
	if !ok {
		return vmem.NilAddr, false
	}
	return ms.slottedBase, true
}
