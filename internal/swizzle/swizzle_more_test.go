package swizzle

import (
	"errors"
	"testing"

	"bess/internal/segment"
	"bess/internal/vmem"
)

func TestSegIDString(t *testing.T) {
	if (SegID{Area: 3, Start: 99}).String() != "3:99" {
		t.Fatal("SegID string")
	}
}

func TestDropSegReleasesEverything(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	if _, err := obj.RefField(0); err != nil {
		t.Fatal(err)
	}
	before := m.Space().Snapshot()
	if before.ReservedFrames == 0 {
		t.Fatal("nothing reserved")
	}
	if err := m.DropSeg(idA); err != nil {
		t.Fatal(err)
	}
	// The segment's frames are gone; deref of the old address fails.
	if _, err := m.Deref(addr); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("deref after drop: %v", err)
	}
	// Dropping again is a no-op.
	if err := m.DropSeg(idA); err != nil {
		t.Fatal(err)
	}
	// Re-reserving works and reloads fresh state.
	addr2, err := m.AddrOfSlot(idA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Deref(addr2); err != nil {
		t.Fatal(err)
	}
}

func TestDropSegWithLargeObjects(t *testing.T) {
	reg := segment.NewRegistry()
	id := SegID{Area: 1, Start: 10}
	s := segment.New(1, 1, 1, 1, 100)
	s.EnsureOverflow(1)
	content := make([]byte, 10000)
	slot, _ := s.CreateDescriptor(segment.KindLarge, 0, uint32(len(content)), []byte("loc"))
	f := newMemFetcher()
	f.add(id, s)
	f.large[id] = map[int][]byte{slot: content}
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(id, slot)
	obj, _ := m.Deref(addr)
	if err := obj.Read(0, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.DropSeg(id); err != nil {
		t.Fatal(err)
	}
	snap := m.Space().Snapshot()
	if snap.ReservedFrames != 0 {
		t.Fatalf("frames leaked after drop: %d", snap.ReservedFrames)
	}
}

func TestCachedSegs(t *testing.T) {
	f, reg, idA, idB := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	if len(m.CachedSegs()) != 0 {
		t.Fatal("fresh mapper has cached segs")
	}
	m.ReserveSeg(idA)
	m.ReserveSeg(idB)
	if len(m.CachedSegs()) != 2 {
		t.Fatalf("cached = %v", m.CachedSegs())
	}
}

func TestEnsureLoadedAndData(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	if err := m.EnsureLoaded(idA); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Seg(idA); !ok {
		t.Fatal("not loaded")
	}
	if err := m.EnsureLoaded(idA); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := m.EnsureData(idA); err != nil {
		t.Fatal(err)
	}
	if err := m.EnsureData(idA); err != nil {
		t.Fatal(err)
	}
	if f.dataFetches != 1 {
		t.Fatalf("data fetched %d times", f.dataFetches)
	}
}

func TestUnswizzledDataErrors(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	// Not loaded at all.
	if _, _, err := m.UnswizzledData(idA); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("unloaded: %v", err)
	}
	// Slotted loaded but data not mapped.
	if err := m.EnsureLoaded(idA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.UnswizzledData(idA); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("no data: %v", err)
	}
}

func TestTrustedSlotUpdateErrors(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	// Unloaded segment.
	if err := m.TrustedSlotUpdate(idA, func(*segment.Seg) error { return nil }); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("unloaded: %v", err)
	}
	m.EnsureLoaded(idA)
	boom := errors.New("boom")
	if err := m.TrustedSlotUpdate(idA, func(*segment.Seg) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("fn error: %v", err)
	}
	// Protection restored after the failed update.
	addr, _ := m.AddrOfSlot(idA, 0)
	if err := m.Space().WriteAt(addr, []byte{1}); !errors.Is(err, vmem.ErrViolation) {
		t.Fatalf("slotted writable after failed trusted update: %v", err)
	}
}

func TestRelocateAndEvictErrors(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	if err := m.RelocateData(idA); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("relocate unloaded: %v", err)
	}
	if err := m.EvictData(idA); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("evict unloaded: %v", err)
	}
	m.EnsureLoaded(idA)
	if err := m.EvictData(idA); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("evict without data: %v", err)
	}
	// Relocate without data mapped (state stays slotted).
	seg, _ := m.Seg(idA)
	seg.MoveData(2, 500)
	if err := m.RelocateData(idA); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.DataBase(idA); !ok {
		t.Fatal("data base missing after relocate")
	}
}

func TestStatsProgression(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	obj.RefField(0)
	st := m.Stats()
	if st.Wave1Reservations == 0 || st.Wave2SlottedLoads == 0 || st.Wave3DataLoads == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DPFixups == 0 || st.RefsSwizzled == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
