package swizzle

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"bess/internal/page"
	"bess/internal/segment"
	"bess/internal/vmem"
)

// memFetcher is an in-memory database: a set of object segments addressable
// by SegID, serving decoded copies like a page server would.
type memFetcher struct {
	segs  map[SegID]*segment.Seg
	large map[SegID]map[int][]byte

	slottedFetches int
	dataFetches    int
	largeFetches   int
}

func newMemFetcher() *memFetcher {
	return &memFetcher{
		segs:  make(map[SegID]*segment.Seg),
		large: make(map[SegID]map[int][]byte),
	}
}

func (f *memFetcher) add(id SegID, s *segment.Seg) { f.segs[id] = s }

func (f *memFetcher) SlottedPages(id SegID) (int, error) {
	s, ok := f.segs[id]
	if !ok {
		return 0, errors.New("no such segment")
	}
	return int(s.Hdr.SlottedPages), nil
}

func (f *memFetcher) FetchSlotted(id SegID) (*segment.Seg, error) {
	s, ok := f.segs[id]
	if !ok {
		return nil, errors.New("no such segment")
	}
	f.slottedFetches++
	// Round-trip through the persistent encoding, like a disk read.
	dec, err := segment.DecodeSlotted(s.EncodeSlotted())
	if err != nil {
		return nil, err
	}
	dec.Overflow = append([]byte(nil), s.Overflow...)
	return dec, nil
}

func (f *memFetcher) FetchData(id SegID, _ *segment.Seg) ([]byte, error) {
	s, ok := f.segs[id]
	if !ok {
		return nil, errors.New("no such segment")
	}
	f.dataFetches++
	return append([]byte(nil), s.Data...), nil
}

func (f *memFetcher) FetchLarge(id SegID, _ *segment.Seg, slot int) ([]byte, error) {
	m, ok := f.large[id]
	if !ok {
		return nil, errors.New("no large objects in segment")
	}
	c, ok := m[slot]
	if !ok {
		return nil, errors.New("no such large object")
	}
	f.largeFetches++
	return c, nil
}

func (f *memFetcher) Resolve(headerOff uint64) (SegID, int, error) {
	area, byteOff := SplitHeaderOffset(headerOff)
	for id, s := range f.segs {
		if id.Area != area {
			continue
		}
		start := uint64(id.Start) * page.Size
		end := start + uint64(s.Hdr.SlottedPages)*page.Size
		if byteOff >= start && byteOff < end {
			slot, err := segment.SlotIndexForOffset(byteOff - start)
			if err != nil {
				return SegID{}, 0, err
			}
			return id, slot, nil
		}
	}
	return SegID{}, 0, errors.New("unresolved header offset")
}

// nodeType is a 16-byte object with two reference fields.
var nodeType = segment.TypeDesc{Name: "Node", Size: 16, RefOffsets: []int{0, 8}}

func putRef(obj []byte, off int, p PRef) { binary.BigEndian.PutUint64(obj[off:], uint64(p)) }

// buildGraph creates two segments: A holds a root node pointing at two nodes
// in B; B's nodes point back at the root. Returns fetcher, registry, ids.
func buildGraph(t *testing.T) (*memFetcher, *segment.Registry, SegID, SegID) {
	t.Helper()
	reg := segment.NewRegistry()
	td, err := reg.Register(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	idA := SegID{Area: 1, Start: 10}
	idB := SegID{Area: 1, Start: 50}
	segA := segment.New(1, 1, 2, idA.Area, 100)
	segB := segment.New(1, 1, 2, idB.Area, 200)

	// Allocate slots first so the header offsets are known.
	b0 := make([]byte, 16)
	b1 := make([]byte, 16)
	sB0, _ := segB.CreateObject(td.ID, b0)
	sB1, _ := segB.CreateObject(td.ID, b1)

	root := make([]byte, 16)
	putRef(root, 0, MakePRef(HeaderOffset(idB, sB0)))
	putRef(root, 8, MakePRef(HeaderOffset(idB, sB1)))
	sRoot, _ := segA.CreateObject(td.ID, root)

	// Back-references from B to the root in A.
	rb, _ := segB.ObjectBytes(sB0)
	putRef(rb, 0, MakePRef(HeaderOffset(idA, sRoot)))
	rb1, _ := segB.ObjectBytes(sB1)
	putRef(rb1, 0, MakePRef(HeaderOffset(idA, sRoot)))

	f := newMemFetcher()
	f.add(idA, segA)
	f.add(idB, segB)
	if sRoot != 0 {
		t.Fatalf("root expected in slot 0, got %d", sRoot)
	}
	return f, reg, idA, idB
}

// grantWrites installs the standard composite handler used by tests: data
// write faults are granted (update detection is the detect package's job),
// everything else goes to the mapper.
func grantWrites(m *Mapper) {
	m.Space().SetHandler(func(fa vmem.Fault) error {
		if fa.Kind == vmem.FaultProtWrite {
			if _, kind, _, ok := m.FrameInfo(fa.Frame); ok && kind != FrameSlotted {
				return m.Space().Protect(vmem.FrameAddr(fa.Frame), 1, vmem.ProtReadWrite)
			}
		}
		return m.HandleFault(fa)
	})
}

func TestHeaderOffsetRoundTrip(t *testing.T) {
	id := SegID{Area: 3, Start: 77}
	off := HeaderOffset(id, 12)
	area, byteOff := SplitHeaderOffset(off)
	if area != 3 {
		t.Fatalf("area = %d", area)
	}
	if byteOff != uint64(77)*page.Size+segment.SlotByteOffset(12) {
		t.Fatalf("byteOff = %d", byteOff)
	}
}

func TestPRefTagging(t *testing.T) {
	if MakePRef(0) != 0 {
		t.Fatal("nil headerOff should give nil PRef")
	}
	p := MakePRef(12345)
	if IsSwizzled(uint64(p)) {
		t.Fatal("persistent ref classified as swizzled")
	}
	if !IsSwizzled(0x1000) {
		t.Fatal("plain address classified as unswizzled")
	}
	if IsSwizzled(0) {
		t.Fatal("nil classified as swizzled")
	}
}

func TestThreeWaves(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)

	// Wave 1 for A only: nothing fetched.
	rootAddr, err := m.AddrOfSlot(idA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Wave1Reservations != 1 || st.Wave2SlottedLoads != 0 {
		t.Fatalf("after reserve: %+v", st)
	}
	if f.slottedFetches != 0 {
		t.Fatal("reservation fetched something")
	}

	// Deref triggers wave 2 for A (slotted fetch + data reservation).
	obj, err := m.Deref(rootAddr)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Wave2SlottedLoads != 1 || st.Wave3DataLoads != 0 {
		t.Fatalf("after deref: %+v", st)
	}
	if f.slottedFetches != 1 || f.dataFetches != 0 {
		t.Fatalf("fetches: slotted %d data %d", f.slottedFetches, f.dataFetches)
	}

	// Reading a field triggers wave 3 for A, which swizzles refs and
	// performs wave 1 for B.
	refB0, err := obj.RefField(0)
	if err != nil {
		t.Fatal(err)
	}
	if refB0 == vmem.NilAddr {
		t.Fatal("ref field is nil")
	}
	st := m.Stats()
	if st.Wave3DataLoads != 1 {
		t.Fatalf("wave3 loads = %d", st.Wave3DataLoads)
	}
	if st.Wave1Reservations != 2 {
		t.Fatalf("wave1 reservations = %d (B not reserved?)", st.Wave1Reservations)
	}
	if f.slottedFetches != 1 {
		t.Fatal("B's slotted segment fetched eagerly")
	}

	// Chase into B: wave 2 + 3 for B.
	objB, err := m.Deref(refB0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := objB.RefField(0)
	if err != nil {
		t.Fatal(err)
	}
	if back != rootAddr {
		t.Fatalf("back-reference %#x != root %#x", back, rootAddr)
	}
	if f.slottedFetches != 2 || f.dataFetches != 2 {
		t.Fatalf("fetches after full chase: %d/%d", f.slottedFetches, f.dataFetches)
	}

	// Both B fields resolve to distinct objects.
	refB1, _ := obj.RefField(8)
	if refB1 == refB0 || refB1 == vmem.NilAddr {
		t.Fatalf("second ref %#x", refB1)
	}
}

func TestDerefErrors(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	if _, err := m.Deref(vmem.NilAddr); err == nil {
		t.Fatal("deref nil")
	}
	if _, err := m.Deref(vmem.FrameAddr(999)); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("deref unknown: %v", err)
	}
	addr, _ := m.AddrOfSlot(idA, 0)
	if _, err := m.Deref(addr + 1); !errors.Is(err, ErrNotSlotAddr) {
		t.Fatalf("deref misaligned: %v", err)
	}
	// Deref of a free slot fails.
	freeAddr, _ := m.AddrOfSlot(idA, 100)
	if _, err := m.Deref(freeAddr); !errors.Is(err, segment.ErrBadSlot) {
		t.Fatalf("deref free slot: %v", err)
	}
}

func TestSlottedWriteProtection(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	if _, err := m.Deref(addr); err != nil {
		t.Fatal(err)
	}
	// A stray user write into the slotted segment is denied by the VM
	// protection (§2.2) — the bad pointer is caught at update time.
	err := m.Space().WriteAt(addr, []byte{0xFF})
	if !errors.Is(err, vmem.ErrViolation) {
		t.Fatalf("stray write: %v", err)
	}
	if m.Stats().DeniedWrites != 1 {
		t.Fatalf("denied = %d", m.Stats().DeniedWrites)
	}
	// Reading the mapped slotted image works and matches the encoding.
	var b [4]byte
	if err := m.Space().ReadAt(addr, b[:]); err != nil {
		t.Fatal(err)
	}
}

func TestTrustedSlotUpdate(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	if _, err := m.Deref(addr); err != nil {
		t.Fatal(err)
	}
	before := m.Space().Snapshot().ProtectCalls
	err := m.TrustedSlotUpdate(idA, func(s *segment.Seg) error {
		s.Slots[0].Type = 42
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := m.Space().Snapshot().ProtectCalls
	if after-before != 2 {
		t.Fatalf("protect calls for trusted update = %d, want 2 (unprotect+reprotect)", after-before)
	}
	seg, _ := m.Seg(idA)
	if seg.Slots[0].Type != 42 {
		t.Fatal("trusted update lost")
	}
	// And user writes are still denied afterwards.
	if err := m.Space().WriteAt(addr, []byte{1}); !errors.Is(err, vmem.ErrViolation) {
		t.Fatalf("write after reprotect: %v", err)
	}
}

func TestObjectWriteGrantedByCompositeHandler(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	grantWrites(m)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	// Without the composite handler this would be denied; with it the write
	// fault is granted and the write proceeds.
	if err := obj.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var b [3]byte
	if err := obj.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if b != [3]byte{1, 2, 3} {
		t.Fatalf("read back %v", b)
	}
	if len(m.DirtySegs()) != 1 {
		t.Fatalf("dirty segs = %v", m.DirtySegs())
	}
}

func TestObjectBoundsChecked(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	if err := obj.Read(10, make([]byte, 10)); !errors.Is(err, ErrBadField) {
		t.Fatalf("over-read: %v", err)
	}
	if err := obj.Read(-1, make([]byte, 1)); !errors.Is(err, ErrBadField) {
		t.Fatalf("negative read: %v", err)
	}
	if err := obj.Write(16, []byte{1}); !errors.Is(err, ErrBadField) {
		t.Fatalf("over-write: %v", err)
	}
}

func TestUnswizzleRoundTrip(t *testing.T) {
	f, reg, idA, idB := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	if _, err := obj.RefField(0); err != nil {
		t.Fatal(err)
	}
	data, _, err := m.UnswizzledData(idA)
	if err != nil {
		t.Fatal(err)
	}
	// The unswizzled copy must equal the original persistent bytes.
	orig := f.segs[idA].Data
	if !bytes.Equal(data[:len(orig)], orig) {
		t.Fatal("unswizzled data differs from original persistent form")
	}
	// And the in-memory copy is still swizzled (the copy did not mutate it).
	got, _ := obj.RefField(0)
	want, _ := m.AddrOfSlot(idB, 0)
	if got != want {
		t.Fatal("in-memory refs were disturbed by UnswizzledData")
	}
}

func TestSwizzleRefNil(t *testing.T) {
	f, reg, _, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	a, err := m.SwizzleRef(0)
	if err != nil || a != vmem.NilAddr {
		t.Fatalf("nil swizzle: %v %v", a, err)
	}
	p, err := m.UnswizzleAddr(vmem.NilAddr)
	if err != nil || p != 0 {
		t.Fatalf("nil unswizzle: %v %v", p, err)
	}
}

func TestRelocateDataPreservesReferences(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	grantWrites(m)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	ref0, _ := obj.RefField(0) // forces data load
	oldDP := obj.DP

	// Reorganize: grow the data segment and move it (header rewrite), as a
	// file-layer relocation would.
	seg, _ := m.Seg(idA)
	if err := seg.ResizeData(4); err != nil {
		t.Fatal(err)
	}
	seg.MoveData(2, 900)
	if err := m.RelocateData(idA); err != nil {
		t.Fatal(err)
	}

	// The same reference still dereferences to the same object content.
	obj2, err := m.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	if obj2.DP == oldDP {
		t.Fatal("DP unchanged after relocation")
	}
	ref0b, err := obj2.RefField(0)
	if err != nil {
		t.Fatal(err)
	}
	if ref0b != ref0 {
		t.Fatalf("reference changed by relocation: %#x vs %#x", ref0b, ref0)
	}
}

func TestEvictDataRefaults(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	if _, err := obj.RefField(0); err != nil {
		t.Fatal(err)
	}
	if f.dataFetches != 1 {
		t.Fatalf("data fetches = %d", f.dataFetches)
	}
	if err := m.EvictData(idA); err != nil {
		t.Fatal(err)
	}
	// Next access faults the data back in.
	obj2, _ := m.Deref(addr)
	if _, err := obj2.RefField(0); err != nil {
		t.Fatal(err)
	}
	if f.dataFetches != 2 {
		t.Fatalf("data fetches after evict = %d", f.dataFetches)
	}
	if m.Stats().Wave3DataLoads != 2 {
		t.Fatalf("wave3 = %d", m.Stats().Wave3DataLoads)
	}
}

func TestTransparentLargeObject(t *testing.T) {
	reg := segment.NewRegistry()
	id := SegID{Area: 1, Start: 10}
	s := segment.New(1, 1, 1, 1, 100)
	s.EnsureOverflow(1)
	content := bytes.Repeat([]byte("LARGE!"), 3000) // ~18KB, spans 5 frames
	slot, err := s.CreateDescriptor(segment.KindLarge, 0, uint32(len(content)), []byte("loc"))
	if err != nil {
		t.Fatal(err)
	}
	f := newMemFetcher()
	f.add(id, s)
	f.large[id] = map[int][]byte{slot: content}

	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(id, slot)
	obj, err := m.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Kind != segment.KindLarge || obj.Size != len(content) {
		t.Fatalf("obj = %+v", obj)
	}
	if f.largeFetches != 0 {
		t.Fatal("large object fetched before access")
	}
	// Read a span crossing frame boundaries.
	buf := make([]byte, 100)
	if err := obj.Read(page.Size-50, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, content[page.Size-50:page.Size+50]) {
		t.Fatal("large object content mismatch")
	}
	if f.largeFetches != 1 {
		t.Fatalf("large fetches = %d", f.largeFetches)
	}
	// Whole-object read via Bytes.
	all, err := obj.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(all, content) {
		t.Fatal("Bytes() mismatch")
	}
}

func TestFrameInfo(t *testing.T) {
	f, reg, idA, _ := buildGraph(t)
	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(idA, 0)
	obj, _ := m.Deref(addr)
	if _, err := obj.RefField(0); err != nil {
		t.Fatal(err)
	}
	id, kind, _, ok := m.FrameInfo(addr.Frame())
	if !ok || id != idA || kind != FrameSlotted {
		t.Fatalf("slotted frame info: %v %v %v", id, kind, ok)
	}
	id, kind, pageIdx, ok := m.FrameInfo(obj.DP.Frame())
	if !ok || id != idA || kind != FrameData || pageIdx != 0 {
		t.Fatalf("data frame info: %v %v %d %v", id, kind, pageIdx, ok)
	}
	if _, _, _, ok := m.FrameInfo(424242); ok {
		t.Fatal("unknown frame classified")
	}
}

func TestReservationIsLazyAcrossManySegments(t *testing.T) {
	// A root referencing objects in 20 segments: only the root's segment is
	// ever fetched if the refs are not chased — the paper's "less greedy"
	// claim, mechanically.
	reg := segment.NewRegistry()
	big := segment.TypeDesc{Name: "Big", Size: 8 * 20, RefOffsets: func() []int {
		offs := make([]int, 20)
		for i := range offs {
			offs[i] = i * 8
		}
		return offs
	}()}
	td, _ := reg.Register(big)
	node, _ := reg.Register(segment.TypeDesc{Name: "N", Size: 8, RefOffsets: []int{0}})

	f := newMemFetcher()
	rootID := SegID{Area: 1, Start: 1}
	rootSeg := segment.New(1, 1, 1, 1, 0)
	rootBytes := make([]byte, 160)
	for i := 0; i < 20; i++ {
		id := SegID{Area: 1, Start: page.No(100 + 10*i)}
		s := segment.New(1, 1, 1, 1, 0)
		sl, _ := s.CreateObject(node.ID, make([]byte, 8))
		f.add(id, s)
		putRef(rootBytes, i*8, MakePRef(HeaderOffset(id, sl)))
	}
	rs, _ := rootSeg.CreateObject(td.ID, rootBytes)
	f.add(rootID, rootSeg)

	m := NewMapper(vmem.New(), f, reg)
	addr, _ := m.AddrOfSlot(rootID, rs)
	obj, _ := m.Deref(addr)
	if _, err := obj.RefField(0); err != nil { // loads root data, swizzles all 20
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Wave1Reservations != 21 {
		t.Fatalf("wave1 = %d, want 21", st.Wave1Reservations)
	}
	if f.slottedFetches != 1 || f.dataFetches != 1 {
		t.Fatalf("fetches = %d/%d, want 1/1 (laziness violated)", f.slottedFetches, f.dataFetches)
	}
	// Reserved but unmapped frames consume no memory.
	snap := m.Space().Snapshot()
	if snap.MappedFrames >= snap.ReservedFrames {
		t.Fatalf("mapped %d, reserved %d", snap.MappedFrames, snap.ReservedFrames)
	}
}
