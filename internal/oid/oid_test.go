package oid

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []OID{
		{},
		{Host: 1, DB: 2, Offset: 3, Unique: 4},
		{Host: maxHost, DB: maxDB, Offset: maxOffset, Unique: maxUnique},
		{Host: 7, DB: 0, Offset: 1 << 40, Unique: 9},
	}
	for _, o := range cases {
		b := o.Encode(nil)
		if len(b) != Size {
			t.Fatalf("encode length %d, want %d", len(b), Size)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != o {
			t.Fatalf("round trip: got %v, want %v", got, o)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, maxOffset+1, 0); err == nil {
		t.Fatal("offset overflow accepted")
	}
	o, err := New(3, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if o.Host != 3 || o.DB != 4 || o.Offset != 5 || o.Unique != 6 {
		t.Fatalf("New fields wrong: %+v", o)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, Size-1)); err != ErrMalformed {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	o := OID{Unique: 1}
	if o.IsNil() {
		t.Fatal("non-zero OID reported nil")
	}
}

func TestString(t *testing.T) {
	o := OID{Host: 1, DB: 2, Offset: 3, Unique: 4}
	if s := o.String(); s != "1.2.3.4" {
		t.Fatalf("String() = %q", s)
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	a := OID{Host: 1}
	b := OID{Host: 1, DB: 1}
	c := OID{Host: 2}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("Less not transitive on sample")
	}
	if a.Less(a) {
		t.Fatal("Less not irreflexive")
	}
	d := OID{Host: 1, DB: 1, Offset: 5}
	e := OID{Host: 1, DB: 1, Offset: 5, Unique: 1}
	if !d.Less(e) || e.Less(d) {
		t.Fatal("unique tiebreak wrong")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(host, db, unique uint16, off uint64) bool {
		o := OID{Host: host, DB: db, Offset: off & maxOffset, Unique: unique}
		var buf [Size]byte
		o.Put(buf[:])
		got, err := Decode(buf[:])
		return err == nil && got == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
