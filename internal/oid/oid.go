// Package oid implements BeSS 96-bit object identifiers (paper §2.1).
//
// An OID uniquely identifies an object in a BeSS system. It carries the host
// machine number, the database number, the offset of the object's header
// (slot) within the database, and a uniquifier that approximates unique OIDs:
// the uniquifier is stored in every slot and bumped each time the slot is
// reused, so dangling OIDs to recycled slots are detected.
package oid

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the encoded size of an OID in bytes (96 bits).
const Size = 12

// Layout of the 96 bits:
//
//	host:   16 bits
//	db:     16 bits
//	offset: 48 bits  (slot offset within the database's slotted areas)
//	unique: 16 bits  (slot reuse counter)
const (
	maxHost   = 1<<16 - 1
	maxDB     = 1<<16 - 1
	maxOffset = 1<<48 - 1
	maxUnique = 1<<16 - 1
)

// ErrMalformed reports a byte slice that cannot hold an OID.
var ErrMalformed = errors.New("oid: malformed encoding")

// OID is a 96-bit object identifier. The zero OID is the nil reference.
type OID struct {
	Host   uint16 // host machine number
	DB     uint16 // database number on that host
	Offset uint64 // header (slot) offset within the database, 48 bits
	Unique uint16 // slot-reuse uniquifier
}

// Nil is the zero OID, used as the null reference.
var Nil OID

// New builds an OID, validating field ranges.
func New(host, db uint16, offset uint64, unique uint16) (OID, error) {
	if offset > maxOffset {
		return Nil, fmt.Errorf("oid: offset %d exceeds 48 bits", offset)
	}
	return OID{Host: host, DB: db, Offset: offset, Unique: unique}, nil
}

// IsNil reports whether o is the null reference.
func (o OID) IsNil() bool { return o == Nil }

// String renders the OID in host.db.offset.unique form.
func (o OID) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", o.Host, o.DB, o.Offset, o.Unique)
}

// Encode appends the 12-byte encoding of o to dst and returns the result.
func (o OID) Encode(dst []byte) []byte {
	var buf [Size]byte
	o.Put(buf[:])
	return append(dst, buf[:]...)
}

// Put writes the 12-byte encoding into b, which must have length >= Size.
func (o OID) Put(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], o.Host)
	binary.BigEndian.PutUint16(b[2:4], o.DB)
	// 48-bit offset, big endian.
	b[4] = byte(o.Offset >> 40)
	b[5] = byte(o.Offset >> 32)
	b[6] = byte(o.Offset >> 24)
	b[7] = byte(o.Offset >> 16)
	b[8] = byte(o.Offset >> 8)
	b[9] = byte(o.Offset)
	binary.BigEndian.PutUint16(b[10:12], o.Unique)
}

// Decode parses a 12-byte encoding.
func Decode(b []byte) (OID, error) {
	if len(b) < Size {
		return Nil, ErrMalformed
	}
	var o OID
	o.Host = binary.BigEndian.Uint16(b[0:2])
	o.DB = binary.BigEndian.Uint16(b[2:4])
	o.Offset = uint64(b[4])<<40 | uint64(b[5])<<32 | uint64(b[6])<<24 |
		uint64(b[7])<<16 | uint64(b[8])<<8 | uint64(b[9])
	o.Unique = binary.BigEndian.Uint16(b[10:12])
	return o, nil
}

// Less orders OIDs lexicographically by (host, db, offset, unique); it is
// used by directory scans that want deterministic output.
func (o OID) Less(p OID) bool {
	if o.Host != p.Host {
		return o.Host < p.Host
	}
	if o.DB != p.DB {
		return o.DB < p.DB
	}
	if o.Offset != p.Offset {
		return o.Offset < p.Offset
	}
	return o.Unique < p.Unique
}
