package detect

import (
	"errors"
	"testing"

	"bess/internal/page"
	"bess/internal/segment"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// fixture builds a single-segment database with two pages of objects.
type fixture struct {
	fetch *memFetcher
	reg   *segment.Registry
	id    swizzle.SegID
	slots []int
}

type memFetcher struct {
	segs map[swizzle.SegID]*segment.Seg
}

func (f *memFetcher) SlottedPages(id swizzle.SegID) (int, error) {
	return int(f.segs[id].Hdr.SlottedPages), nil
}
func (f *memFetcher) FetchSlotted(id swizzle.SegID) (*segment.Seg, error) {
	return segment.DecodeSlotted(f.segs[id].EncodeSlotted())
}
func (f *memFetcher) FetchData(id swizzle.SegID, _ *segment.Seg) ([]byte, error) {
	return append([]byte(nil), f.segs[id].Data...), nil
}
func (f *memFetcher) FetchLarge(swizzle.SegID, *segment.Seg, int) ([]byte, error) {
	return nil, errors.New("no large objects")
}
func (f *memFetcher) Resolve(off uint64) (swizzle.SegID, int, error) {
	area, byteOff := swizzle.SplitHeaderOffset(off)
	for id, s := range f.segs {
		if id.Area != area {
			continue
		}
		start := uint64(id.Start) * page.Size
		if byteOff >= start && byteOff < start+uint64(s.Hdr.SlottedPages)*page.Size {
			slot, err := segment.SlotIndexForOffset(byteOff - start)
			return id, slot, err
		}
	}
	return swizzle.SegID{}, 0, errors.New("unresolved")
}

func build(t *testing.T) *fixture {
	t.Helper()
	reg := segment.NewRegistry()
	id := swizzle.SegID{Area: 1, Start: 10}
	s := segment.New(1, 1, 3, 1, 100)
	var slots []int
	// Fill page 0 and page 1 with blobs.
	for i := 0; i < 3; i++ {
		sl, err := s.CreateObject(0, make([]byte, 3000))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, sl)
	}
	f := &memFetcher{segs: map[swizzle.SegID]*segment.Seg{id: s}}
	return &fixture{fetch: f, reg: reg, id: id, slots: slots}
}

func TestWriteSetViaFaults(t *testing.T) {
	fx := build(t)
	m := swizzle.NewMapper(vmem.New(), fx.fetch, fx.reg)
	d := New(m, false)

	addr, _ := m.AddrOfSlot(fx.id, fx.slots[0])
	obj, err := m.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Reads don't enter the write set.
	if err := obj.Read(0, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if len(d.WriteSet()) != 0 {
		t.Fatalf("write set after read: %v", d.WriteSet())
	}
	// First write faults once, is recorded, and proceeds.
	if err := obj.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ws := d.WriteSet()
	if len(ws) != 1 || ws[0] != (PageKey{Seg: fx.id, Page: 0}) {
		t.Fatalf("write set = %v", ws)
	}
	// Second write to the same page: no new fault.
	before := d.FaultsHandled()
	if err := obj.Write(4, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if d.FaultsHandled() != before {
		t.Fatal("second write faulted again")
	}
	// A write through object 1 (data bytes 3000..6000) crossing the page
	// boundary adds page 1.
	addr1, _ := m.AddrOfSlot(fx.id, fx.slots[1])
	obj1, err := m.Deref(addr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj1.Write(1000, make([]byte, 1400)); err != nil {
		t.Fatal(err)
	}
	if len(d.WriteSet()) != 2 {
		t.Fatalf("write set = %v", d.WriteSet())
	}
}

func TestReadTracking(t *testing.T) {
	fx := build(t)
	m := swizzle.NewMapper(vmem.New(), fx.fetch, fx.reg)
	d := New(m, true)

	addr, _ := m.AddrOfSlot(fx.id, fx.slots[0]) // object on page 0
	obj, err := m.Deref(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Read(0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	rs := d.ReadSet()
	if len(rs) != 1 || rs[0].Page != 0 {
		t.Fatalf("read set = %v", rs)
	}
	// Reading the third object (page 2 of data, offset 6000) adds that page
	// but not page 1.
	addr2, _ := m.AddrOfSlot(fx.id, fx.slots[2])
	obj2, _ := m.Deref(addr2)
	if err := obj2.Read(2000, make([]byte, 8)); err != nil { // at data offset ~8096: page 1
		t.Fatal(err)
	}
	if len(d.ReadSet()) != 2 {
		t.Fatalf("read set = %v", d.ReadSet())
	}
}

func TestAccessFuncDenies(t *testing.T) {
	fx := build(t)
	m := swizzle.NewMapper(vmem.New(), fx.fetch, fx.reg)
	d := New(m, false)
	conflict := errors.New("lock conflict")
	d.SetAccessFunc(func(k PageKey, write bool) error {
		if write {
			return conflict
		}
		return nil
	})
	addr, _ := m.AddrOfSlot(fx.id, fx.slots[0])
	obj, _ := m.Deref(addr)
	if err := obj.Read(0, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	err := obj.Write(0, []byte{1})
	if !errors.Is(err, vmem.ErrViolation) {
		t.Fatalf("denied write: %v", err)
	}
	if len(d.WriteSet()) != 0 {
		t.Fatal("denied write entered write set")
	}
}

func TestEndTransactionReprotects(t *testing.T) {
	fx := build(t)
	m := swizzle.NewMapper(vmem.New(), fx.fetch, fx.reg)
	d := New(m, false)
	addr, _ := m.AddrOfSlot(fx.id, fx.slots[0])
	obj, _ := m.Deref(addr)
	if err := obj.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	faults1 := d.FaultsHandled()
	d.EndTransaction()
	if len(d.WriteSet()) != 0 || len(d.ReadSet()) != 0 {
		t.Fatal("sets survive EndTransaction")
	}
	// The next transaction's write faults afresh and is re-recorded.
	if err := obj.Write(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if d.FaultsHandled() <= faults1 {
		t.Fatal("no fresh fault after EndTransaction")
	}
	if len(d.WriteSet()) != 1 {
		t.Fatalf("write set = %v", d.WriteSet())
	}
}

func TestSlottedStaysProtected(t *testing.T) {
	fx := build(t)
	m := swizzle.NewMapper(vmem.New(), fx.fetch, fx.reg)
	New(m, false)
	addr, _ := m.AddrOfSlot(fx.id, fx.slots[0])
	if _, err := m.Deref(addr); err != nil {
		t.Fatal(err)
	}
	// Even with the detector installed, slotted writes are denied.
	if err := m.Space().WriteAt(addr, []byte{0xFF}); !errors.Is(err, vmem.ErrViolation) {
		t.Fatalf("slotted write: %v", err)
	}
}

func TestWriteImpliesRead(t *testing.T) {
	fx := build(t)
	m := swizzle.NewMapper(vmem.New(), fx.fetch, fx.reg)
	d := New(m, true)
	addr, _ := m.AddrOfSlot(fx.id, fx.slots[0])
	obj, _ := m.Deref(addr)
	if err := obj.Write(0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if len(d.ReadSet()) != 1 || len(d.WriteSet()) != 1 {
		t.Fatalf("sets: r=%v w=%v", d.ReadSet(), d.WriteSet())
	}
}
