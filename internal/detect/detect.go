// Package detect implements BeSS's automatic update detection (paper §2.3).
//
// BeSS manages page locking "in an automatic and transparent way by using the
// virtual memory protection mechanisms provided by the underlying hardware":
// when an application gains access to a database page the page is protected;
// the protection violation raised by the first real access invokes the BeSS
// interrupt handler, which records the access in the transaction's read or
// write set, performs locking, and grants access before the offending
// instruction is resumed.
//
// A Detector wraps a swizzle.Mapper's fault handler with this policy. It is
// the hardware-based alternative to the software approach (explicit dirty
// calls) that the paper criticizes; package baseline implements that software
// approach for comparison (experiment E7).
package detect

import (
	"sort"
	"sync"

	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// PageKey names one database page in a transaction's read/write set.
type PageKey struct {
	Seg  swizzle.SegID
	Page int // page index within the segment's data range
}

// AccessFunc is consulted before access is granted: it performs locking (and,
// for writes, ensures log records will be written). A non-nil error denies
// the access — e.g. a lock conflict surfaces as a failed write.
type AccessFunc func(k PageKey, write bool) error

// Detector tracks per-transaction read and write sets by manipulating page
// protections. Safe for the single-process access model of the mapper it
// wraps (one goroutine faulting at a time); the sets themselves are guarded
// for concurrent observers.
type Detector struct {
	m     *swizzle.Mapper
	space *vmem.Space

	mu       sync.Mutex
	readSet  map[PageKey]struct{}
	writeSet map[PageKey]struct{}
	onAccess AccessFunc

	// trackReads maps fresh data pages ProtNone so the first read faults
	// and lands in the read set; when false pages arrive readable and only
	// writes are tracked.
	trackReads bool

	faultsHandled int64
}

// New wraps the mapper with update detection. trackReads selects per-page
// read-set maintenance (an extra fault per page read).
func New(m *swizzle.Mapper, trackReads bool) *Detector {
	d := &Detector{
		m:          m,
		space:      m.Space(),
		readSet:    make(map[PageKey]struct{}),
		writeSet:   make(map[PageKey]struct{}),
		trackReads: trackReads,
	}
	d.space.SetHandler(d.handle)
	return d
}

// SetAccessFunc installs the locking callback.
func (d *Detector) SetAccessFunc(f AccessFunc) {
	d.mu.Lock()
	d.onAccess = f
	d.mu.Unlock()
}

func (d *Detector) handle(f vmem.Fault) error {
	id, kind, pageIdx, ok := d.m.FrameInfo(f.Frame)
	if !ok {
		return d.m.HandleFault(f)
	}
	switch f.Kind {
	case vmem.FaultNoBacking:
		// Let the mapper fetch/map (waves 2–3), then demote fresh data
		// pages so their first genuine access is observed.
		if err := d.m.HandleFault(f); err != nil {
			return err
		}
		if d.trackReads {
			if _, k2, _, ok2 := d.m.FrameInfo(f.Frame); ok2 && (k2 == swizzle.FrameData || k2 == swizzle.FrameLarge) {
				d.demoteSegment(f.Frame)
			}
		}
		return nil
	case vmem.FaultProtRead:
		if kind != swizzle.FrameData && kind != swizzle.FrameLarge {
			return d.m.HandleFault(f)
		}
		k := PageKey{Seg: id, Page: pageIdx}
		if err := d.access(k, false); err != nil {
			return err
		}
		d.faultsHandled++
		return d.space.Protect(vmem.FrameAddr(f.Frame), 1, vmem.ProtRead)
	case vmem.FaultProtWrite:
		if kind != swizzle.FrameData && kind != swizzle.FrameLarge {
			// Writes to slotted segments stay denied: corruption prevention.
			return d.m.HandleFault(f)
		}
		k := PageKey{Seg: id, Page: pageIdx}
		if err := d.access(k, true); err != nil {
			return err
		}
		d.faultsHandled++
		return d.space.Protect(vmem.FrameAddr(f.Frame), 1, vmem.ProtReadWrite)
	default:
		return d.m.HandleFault(f)
	}
}

// demoteSegment re-protects the whole data range containing frame to
// ProtNone right after it was mapped, so per-page reads fault individually.
func (d *Detector) demoteSegment(frame int64) {
	for _, r := range d.m.MappedDataRanges() {
		if frame >= r.Base.Frame() && frame < r.Base.Frame()+int64(r.Pages) {
			_ = d.space.Protect(r.Base, r.Pages, vmem.ProtNone)
			return
		}
	}
}

func (d *Detector) access(k PageKey, write bool) error {
	d.mu.Lock()
	cb := d.onAccess
	d.mu.Unlock()
	if cb != nil {
		if err := cb(k, write); err != nil {
			return err
		}
	}
	d.mu.Lock()
	if write {
		d.writeSet[k] = struct{}{}
		// A write implies read access too.
		d.readSet[k] = struct{}{}
	} else {
		d.readSet[k] = struct{}{}
	}
	d.mu.Unlock()
	return nil
}

// ReadSet returns the transaction's read set, sorted for determinism.
func (d *Detector) ReadSet() []PageKey { return d.sorted(true) }

// WriteSet returns the transaction's write set, sorted for determinism.
func (d *Detector) WriteSet() []PageKey { return d.sorted(false) }

func (d *Detector) sorted(read bool) []PageKey {
	d.mu.Lock()
	src := d.writeSet
	if read {
		src = d.readSet
	}
	out := make([]PageKey, 0, len(src))
	for k := range src {
		out = append(out, k)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Seg != b.Seg {
			if a.Seg.Area != b.Seg.Area {
				return a.Seg.Area < b.Seg.Area
			}
			return a.Seg.Start < b.Seg.Start
		}
		return a.Page < b.Page
	})
	return out
}

// FaultsHandled reports how many access faults the detector resolved.
func (d *Detector) FaultsHandled() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faultsHandled
}

// EndTransaction clears the read/write sets and re-protects every mapped
// data page so the next transaction's accesses are detected afresh (the
// per-transaction protection cycle of §2.3).
func (d *Detector) EndTransaction() {
	d.mu.Lock()
	d.readSet = make(map[PageKey]struct{})
	d.writeSet = make(map[PageKey]struct{})
	d.mu.Unlock()
	prot := vmem.ProtRead
	if d.trackReads {
		prot = vmem.ProtNone
	}
	for _, r := range d.m.MappedDataRanges() {
		_ = d.space.Protect(r.Base, r.Pages, prot)
	}
}
