// Lock hierarchy of the BeSS server.
//
// This file is the single authoritative declaration of the order in which
// the server-side locks may nest. The directive below is machine-readable:
// cmd/bess-vet parses it and statically rejects any function whose call
// graph acquires these locks in a violating nested order, and the rank
// constants feed the same order to the runtime checker
// (internal/lockcheck, active under the `lockcheck` build tag).
//
// Names are unqualified Type.field pairs; "a < b" means a goroutine holding
// a may acquire b, never the reverse. Locks of equal rank (the 32 tx table
// shards all share txShard.mu) must not nest at all. Locks not named here
// (area.Area.mu, the lock manager's internals, client-side session locks)
// are unranked: they carry no ordering constraints but are still checked
// for recursive acquisition at runtime.
//
// The rpc.Peer locks rank below (outside) every server lock: a dispatch
// handler holds Peer.mu briefly before touching server state, and the
// coalescing writer takes Peer.wmu when a reply goes out — but no code path
// may send or match RPC traffic while holding server state locks, which is
// exactly the nesting the low ranks forbid.
//
// The hot paths rely on these locks never actually nesting (each is
// released before the next is taken — see Server's doc comment); the
// hierarchy exists so that any future nesting some PR introduces is forced
// into one deadlock-free direction and mechanically verified.
//
//bess:lockorder Peer.mu < Peer.wmu < Server.areaMu < Server.clientMu < Server.copyMu < Server.snapMu < txShard.mu < catalog.mu < VersionStore.mu < Log.mu
package server

import "bess/internal/lockcheck"

// Runtime ranks mirroring the //bess:lockorder directive above. Lower rank
// = acquired earlier (outermost). Log.mu's rank lives in the wal package
// (wal.RankLogMu), VersionStore.mu's in the cache package
// (cache.RankVersionStoreMu), and the Peer ranks in the rpc package
// (rankPeerMu, rankPeerWmu) because none of those can import server;
// bess-vet's self-test keeps the files consistent with the directive.
//
// The two multiversion locks rank where their real nesting demands:
// Server.snapMu sits outside the tx shards (Disconnect closes a client's
// snapshots before aborting its transactions), and VersionStore.mu sits
// innermost but for Log.mu — commit hooks publish staged versions while
// the committing transaction still holds everything else.
const (
	rankAreaMu   lockcheck.Rank = 10
	rankClientMu lockcheck.Rank = 20
	rankCopyMu   lockcheck.Rank = 30
	rankSnapMu   lockcheck.Rank = 35
	rankTxShard  lockcheck.Rank = 40
	rankCatalog  lockcheck.Rank = 50
)
