package server

import (
	"bess/internal/lockcheck"
	"bess/internal/tx"
)

// txShards is the shard count of the active-transaction table. Power of two;
// 32 is comfortably above the concurrency one server sees.
const txShards = 32

// txTable is the server's sharded active-transaction map. Commits, aborts,
// and lock calls from different clients hash to different shards instead of
// contending on one server-wide mutex.
type txTable struct {
	shards [txShards]txShard
}

type txShard struct {
	mu lockcheck.Mutex
	m  map[uint64]txEntry // guarded by mu
}

type txEntry struct {
	t     *tx.Tx
	owner uint32
}

//bess:prepublish
func (tt *txTable) init() {
	for i := range tt.shards {
		tt.shards[i].mu.Init("txShard.mu", rankTxShard)
		tt.shards[i].m = make(map[uint64]txEntry)
	}
}

func (tt *txTable) shard(id uint64) *txShard {
	// Fibonacci hashing spreads the sequential ids servers hand out.
	return &tt.shards[(id*0x9E3779B97F4A7C15)>>(64-5)]
}

// get returns the live branch for id, or nil.
func (tt *txTable) get(id uint64) *tx.Tx {
	s := tt.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[id].t
}

// put registers a branch (recovery adoption).
func (tt *txTable) put(id uint64, t *tx.Tx, owner uint32) {
	s := tt.shard(id)
	s.mu.Lock()
	s.m[id] = txEntry{t: t, owner: owner}
	s.mu.Unlock()
}

// ensure returns the live branch for id, creating it with mk under the
// shard lock so concurrent calls for the same id cannot double-begin.
func (tt *txTable) ensure(id uint64, owner uint32, mk func() *tx.Tx) *tx.Tx {
	s := tt.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[id]; ok {
		return e.t
	}
	t := mk()
	s.m[id] = txEntry{t: t, owner: owner}
	return t
}

// forget drops id from the table.
func (tt *txTable) forget(id uint64) {
	s := tt.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// takeOwned removes and returns every branch owned by client (disconnect).
func (tt *txTable) takeOwned(client uint32) []*tx.Tx {
	var out []*tx.Tx
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.Lock()
		for id, e := range s.m {
			if e.owner == client {
				if e.t != nil {
					out = append(out, e.t)
				}
				delete(s.m, id)
			}
		}
		s.mu.Unlock()
	}
	return out
}
