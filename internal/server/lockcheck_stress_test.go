//go:build lockcheck

package server

import (
	"fmt"
	"sync"
	"testing"

	"bess/internal/lockcheck"
	"bess/internal/proto"
)

// TestLockcheckEnabled guards against the build tag silently not reaching
// this package: the stress test below is only meaningful when the runtime
// checker is compiled in.
func TestLockcheckEnabled(t *testing.T) {
	if !lockcheck.Enabled {
		t.Fatal("lockcheck build tag set but lockcheck.Enabled is false")
	}
}

// TestLockcheckServerWorkload drives a full server workload — connects,
// fetches, lock calls, commits, aborts, disconnects, callback revocations —
// with the rank-checked wrappers active. Any nested acquisition that
// violates the hierarchy in lockorder.go, and any recursive acquisition,
// panics here instead of deadlocking in production.
func TestLockcheckServerWorkload(t *testing.T) {
	const clients, rounds = 6, 10
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := s.OpenDB("lockcheck", true)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]proto.SegKey, clients)
	imgs := make([][2]proto.SegImage, clients)
	conns := make([]uint32, clients)
	for c := 0; c < clients; c++ {
		keys[c], imgs[c], _ = altImages(t, s, db, fmt.Sprintf("lc-%d", c))
		if conns[c], err = s.Hello(fmt.Sprintf("lc%d", c)); err != nil {
			t.Fatal(err)
		}
		// A callback target so commits exercise the revocation path too.
		cc := c
		if err := s.SetCallback(conns[c], func(k proto.SegKey) (bool, error) {
			_ = cc
			return false, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Fetch registers a cached copy, so the next writer's commit
				// revokes it via the callback.
				if _, _, err := s.FetchSlotted(conns[c], keys[c]); err != nil {
					errs <- err
					return
				}
				txid, err := s.NewTx()
				if err != nil {
					errs <- err
					return
				}
				if err := s.Lock(conns[c], txid, keys[c], proto.LockX); err != nil {
					errs <- err
					return
				}
				if i%3 == 2 {
					if err := s.Abort(conns[c], txid); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := s.Commit(conns[c], txid, []proto.SegImage{imgs[c][i%2]}); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		s.Disconnect(conns[c])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := lockcheck.HeldByCurrent(); len(got) != 0 {
		t.Fatalf("locks leaked across the workload: %v", got)
	}
	// A clean reopen proves the log and catalog survived the tagged build.
	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
