package server

import (
	"bytes"
	"testing"
	"time"

	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/segment"
)

// overwriteImage builds a commit image that replaces object 0 of key with
// body (same size, so the segment geometry is untouched).
func overwriteImage(t *testing.T, s *Server, key proto.SegKey, body []byte) proto.SegImage {
	t.Helper()
	sl, ov, err := s.FetchSlotted(0, key)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.DecodeSlotted(sl)
	if err != nil {
		t.Fatal(err)
	}
	seg.Overflow = ov
	seg.Data, err = s.FetchData(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.UpdateObject(0, body); err != nil {
		t.Fatal(err)
	}
	return proto.SegImage{Seg: key, Slotted: seg.EncodeSlotted(), Overflow: seg.Overflow, Data: seg.Data}
}

// snapObject reads object 0 of key through an open snapshot.
func snapObject(t *testing.T, s *Server, client uint32, snap uint64, key proto.SegKey) []byte {
	t.Helper()
	sl, ov, data, err := s.SnapFetchSeg(client, snap, key)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		t.Fatal(err)
	}
	dec.Overflow = ov
	dec.Data = data
	b, err := dec.ObjectBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecoveryWithOpenSnapshots is the crash regression for the snapshot
// stack: the server goes down with a snapshot open and a commit caught
// mid-flight (phase 1 done — images logged and stolen to disk — decision
// pending), restart recovery must come up clean, the in-doubt branch must
// resolve, and fresh snapshots — including the watermark GC behind them —
// must work as if the crash never happened.
func TestRecoveryWithOpenSnapshots(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := s1.OpenDB("d", true)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := s1.Hello("w")
	key, img := mkSegImage(t, s1, db, []byte("v1......"))
	tx1, _ := s1.NewTx()
	if err := s1.Lock(cl, tx1, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(cl, tx1, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}

	snap1, _, err := s1.SnapOpen(cl)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite while the snapshot is open: v1 must be captured on the
	// version chain and keep serving the snapshot.
	tx2, _ := s1.NewTx()
	if err := s1.Lock(cl, tx2, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(cl, tx2, []proto.SegImage{overwriteImage(t, s1, key, []byte("v2......"))}); err != nil {
		t.Fatal(err)
	}
	if got := snapObject(t, s1, cl, snap1, key); !bytes.Equal(got, []byte("v1......")) {
		t.Fatalf("pre-crash snapshot read = %q, want v1", got)
	}
	if s1.VersionStats().ChainHits == 0 {
		t.Fatal("pre-crash snapshot read bypassed the version chain")
	}

	// The mid-flight commit: phase 1 logs and steals the v3 image, then the
	// server dies before any decision — with the snapshot still open.
	tx3, _ := s1.NewTx()
	if err := s1.Lock(cl, tx3, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s1.Prepare(cl, tx3, []proto.SegImage{overwriteImage(t, s1, key, []byte("v3......"))}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery repeats history and adopts the in-doubt branch; the
	// coordinator's decision is an abort, so v2 is the surviving state.
	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatalf("recovery with open snapshots at crash: %v", err)
	}
	defer func() {
		if s2 != nil {
			_ = s2.Close()
		}
	}()
	if err := s2.Decide(tx3, false); err != nil {
		t.Fatalf("abort of in-doubt branch: %v", err)
	}

	// Fresh snapshots work after recovery and see the decided state.
	snap2, _, err := s2.SnapOpen(cl)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapObject(t, s2, cl, snap2, key); !bytes.Equal(got, []byte("v2......")) {
		t.Fatalf("post-recovery snapshot read = %q, want v2", got)
	}

	// The version clock restarted above every pre-crash commit: a new commit
	// under the open snapshot must capture a version, and closing the
	// snapshot must let the restarted watermark GC drain the chain.
	tx4, _ := s2.NewTx()
	if err := s2.Lock(cl, tx4, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(cl, tx4, []proto.SegImage{overwriteImage(t, s2, key, []byte("v4......"))}); err != nil {
		t.Fatal(err)
	}
	if got := snapObject(t, s2, cl, snap2, key); !bytes.Equal(got, []byte("v2......")) {
		t.Fatalf("post-recovery snapshot read after commit = %q, want v2", got)
	}
	if s2.VersionStats().Entries == 0 {
		t.Fatal("commit under an open snapshot retained no version")
	}
	if err := s2.SnapClose(cl, snap2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for s2.VersionStats().Entries != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watermark GC never drained the chain: %d entries retained",
				s2.VersionStats().Entries)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Both servers are down: the GC goroutines must be gone with them.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s2 = nil
	goleak.Check(t, "cache.")
}
