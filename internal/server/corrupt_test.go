package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
)

// flipPageByte XORs one byte of an on-disk page, bypassing the WAL — the
// silent bit rot the detect/repair pipeline exists for.
func flipPageByte(t *testing.T, s *Server, areaID uint32, pno page.No, off int) {
	t.Helper()
	a := s.lookupArea(areaID)
	if a == nil {
		t.Fatalf("no area %d", areaID)
	}
	buf := make([]byte, page.Size)
	if err := a.ReadPage(pno, buf); err != nil {
		t.Fatal(err)
	}
	buf[off] ^= 0x5A
	if err := a.WritePage(pno, buf); err != nil {
		t.Fatal(err)
	}
}

// commitOne creates a segment with one object and commits it, so every
// section has logged full-page history.
func commitOne(t *testing.T, s *Server, db uint32, body []byte) proto.SegKey {
	t.Helper()
	key, img := mkSegImage(t, s, db, body)
	cl, _ := s.Hello("c")
	txid, _ := s.NewTx()
	if err := s.Lock(cl, txid, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(cl, txid, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}
	return key
}

func fetchObject(t *testing.T, s *Server, key proto.SegKey) ([]byte, error) {
	t.Helper()
	sl, ov, data, err := s.FetchSeg(0, key)
	if err != nil {
		return nil, err
	}
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		return nil, err
	}
	dec.Overflow, dec.Data = ov, data
	return dec.ObjectBytes(0)
}

func TestRepairSlottedPageFromWAL(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key := commitOne(t, s, db, []byte("survives rot"))
	flipPageByte(t, s, key.Area, page.No(key.Start), segment.HeaderSize+3)
	b, err := fetchObject(t, s, key)
	if err != nil {
		t.Fatalf("fetch after rot: %v", err)
	}
	if !bytes.Equal(b, []byte("survives rot")) {
		t.Fatalf("repaired object = %q", b)
	}
	st := s.ScrubStatus()
	if st.CorruptionsFound == 0 || st.Repaired == 0 || st.Quarantined != 0 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestRepairDataSectionFromWAL(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key := commitOne(t, s, db, []byte("data section payload"))
	sl, _, err := s.FetchSlotted(0, key)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		t.Fatal(err)
	}
	flipPageByte(t, s, uint32(dec.Hdr.DataArea), dec.Hdr.DataStart, 7)
	b, err := fetchObject(t, s, key)
	if err != nil {
		t.Fatalf("fetch after data rot: %v", err)
	}
	if !bytes.Equal(b, []byte("data section payload")) {
		t.Fatalf("repaired object = %q", b)
	}
	if st := s.ScrubStatus(); st.Repaired == 0 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestQuarantineUnrepairableSegment(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	// Never committed: the initial slotted image has no logged history.
	doomed, err := s.CreateSegment(db, 1, 1, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	healthy := commitOne(t, s, db, []byte("healthy"))
	flipPageByte(t, s, doomed.Area, page.No(doomed.Start), 40)
	if _, _, err := s.FetchSlotted(0, doomed); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want ErrQuarantined, got %v", err)
	}
	// Quarantine is sticky and typed on the fast path too.
	if _, _, err := s.FetchSlotted(0, doomed); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second fetch: %v", err)
	}
	if q := s.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined = %v", q)
	}
	// The server keeps serving other segments.
	if b, err := fetchObject(t, s, healthy); err != nil || !bytes.Equal(b, []byte("healthy")) {
		t.Fatalf("healthy segment: %q, %v", b, err)
	}
	if st := s.ScrubStatus(); st.Quarantined != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestScrubOnceRepairs(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key := commitOne(t, s, db, []byte("scrub me"))
	sl, _, _ := s.FetchSlotted(0, key)
	dec, _ := segment.DecodeSlotted(sl)
	flipPageByte(t, s, uint32(dec.Hdr.DataArea), dec.Hdr.DataStart, 100)
	st, err := s.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsChecked == 0 || st.PagesVerified == 0 || st.CorruptionsFound == 0 || st.Repaired == 0 {
		t.Fatalf("counters = %+v", st)
	}
	if b, err := fetchObject(t, s, key); err != nil || !bytes.Equal(b, []byte("scrub me")) {
		t.Fatalf("after scrub: %q, %v", b, err)
	}
}

func TestBackgroundScrubberRepairs(t *testing.T) {
	s := NewMem(1)
	db, _, _ := s.OpenDB("d", true)
	key := commitOne(t, s, db, []byte("background"))
	sl, _, _ := s.FetchSlotted(0, key)
	dec, _ := segment.DecodeSlotted(sl)
	flipPageByte(t, s, uint32(dec.Hdr.DataArea), dec.Hdr.DataStart, 11)
	s.StartScrub(time.Millisecond, 0)
	s.StartScrub(time.Millisecond, 0) // idempotent while running
	deadline := time.Now().Add(5 * time.Second)
	for s.ScrubStatus().Repaired == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never repaired: %+v", s.ScrubStatus())
		}
		time.Sleep(time.Millisecond)
	}
	s.PauseScrub(true)
	s.PauseScrub(false)
	s.StopScrub()
	if err := s.Close(); err != nil { // Close after StopScrub is clean
		t.Fatal(err)
	}
}

func TestLargeObjectChecksumRepair(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key, img := mkSegImage(t, s, db, []byte("small"))
	cl, _ := s.Hello("c")
	txid, _ := s.NewTx()
	if err := s.Lock(cl, txid, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(cl, txid, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("large-object-content."), 300) // > 1 page
	tx2, _ := s.NewTx()
	slot, err := s.CreateLarge(cl, tx2, key, 7, big)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(cl, tx2, nil); err != nil {
		t.Fatal(err)
	}
	// Find the run and rot one of its pages.
	sl, ov, err := s.FetchSlotted(0, key)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		t.Fatal(err)
	}
	dec.Overflow = ov
	d, err := dec.Descriptor(slot, largeDescSize)
	if err != nil {
		t.Fatal(err)
	}
	areaID, start, _, _, _ := decodeLargeDesc(d)
	flipPageByte(t, s, areaID, page.No(start)+1, 9)
	got, err := s.FetchLarge(0, key, slot)
	if err != nil {
		t.Fatalf("fetch large after rot: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("large object mismatch after repair (%d bytes)", len(got))
	}
	if st := s.ScrubStatus(); st.Repaired == 0 {
		t.Fatalf("counters = %+v", st)
	}
}
