package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"bess/internal/goleak"
	"bess/internal/lockcheck"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/rpc"
)

// Streaming scan cursor (DESIGN.md §6): the server walks a file's segments
// and pushes their images to the client in coalesced ScanData batches,
// ahead of the client's iterator. Flow control is credit-based and counted
// in image bytes: the client grants a window up front, the cursor deducts
// each batch from it, and the client tops the window back up as it consumes
// images. A batch larger than the whole window may be sent once the full
// window is available (the overdraw escape), so one giant segment cannot
// stall the pipeline forever.
//
// The cursor and sender goroutines are spawned through goleak.Go and carry
// stop evidence for bess-vet's golife analyzer (DESIGN.md §4e):
//
//bess:golife

// Scan batch sizing: bytes of segment images coalesced into one ScanData
// frame. The client can ask for a different granularity in ScanStart.
const (
	defaultScanBatch = 1 << 20
	maxScanBatch     = 4 << 20
)

// scanBatchPool recycles encoded ScanData bodies: SendStream copies the
// bytes into the peer's coalescing writer before returning, so the sender
// goroutine can hand each body straight back for the next flush instead
// of allocating ~1MB per batch. Not declared as a //bess:resource pair:
// ownership crosses a goroutine (flush encodes, the sender releases),
// which poollife's single-function model deliberately rejects.
var scanBatchPool = sync.Pool{New: func() any { b := make([]byte, 0, defaultScanBatch); return &b }}

func getScanBuf() *[]byte  { return scanBatchPool.Get().(*[]byte) }
func putScanBuf(b *[]byte) { scanBatchPool.Put(b) }

// scanCursor is one in-flight streaming scan.
type scanCursor struct {
	id     uint64
	client uint32
	batch  int
	plan   []proto.ScanSeg
	snap   bool     // read as of asOf instead of the live images
	asOf   page.LSN // snapshot stamp (snap only)

	mu        lockcheck.Mutex
	cond      *sync.Cond
	credit    int64 // bytes granted minus bytes pushed; guarded by mu
	peak      int64 // high-water credit balance (the window); guarded by mu
	cancelled bool  // guarded by mu
}

func newScanCursor(id uint64, client uint32, batch int, plan []proto.ScanSeg, snap bool, asOf page.LSN) *scanCursor {
	c := &scanCursor{id: id, client: client, batch: batch, plan: plan, snap: snap, asOf: asOf}
	c.mu.Init("scanCursor.mu", 0) // unranked: never held across other locks
	c.cond = sync.NewCond(&c.mu)
	return c
}

// grant credits n more bytes (or cancels) and wakes the cursor.
func (c *scanCursor) grant(cancel bool, n uint64) {
	c.mu.Lock()
	if cancel {
		c.cancelled = true
	} else {
		c.credit += int64(n)
		if c.credit > c.peak {
			c.peak = c.credit
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *scanCursor) cancel() { c.grant(true, 0) }

func (c *scanCursor) isCancelled() bool {
	//bess:lockfree ignore=cursor latch for the cancel flag; released immediately, never held across fetch or send
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// waitCredit blocks until n bytes of credit are available (or the full
// window is, whichever comes first) and deducts them. It returns false when
// the scan was cancelled instead. No push happens before the first grant:
// the client registers its stream and opens the window with one ScanCtl,
// which also keeps an empty final batch from racing ahead of registration.
func (c *scanCursor) waitCredit(n int) bool {
	//bess:lockfree ignore=credit latch: the sender deliberately parks on cond here for flow control, not data-path locking
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.cancelled {
			return false
		}
		if c.peak > 0 && (n == 0 || c.credit >= int64(n) || c.credit >= c.peak) {
			c.credit -= int64(n)
			return true
		}
		c.cond.Wait()
	}
}

// scanTable tracks one peer's live cursors.
type scanTable struct {
	mu    lockcheck.Mutex
	next  uint64                 // guarded by mu
	scans map[uint64]*scanCursor // guarded by mu
}

func newScanTable() *scanTable {
	t := &scanTable{scans: make(map[uint64]*scanCursor)}
	t.mu.Init("scanTable.mu", 0) // unranked: only cursor lookups nest under it
	return t
}

func (t *scanTable) add(client uint32, batch int, plan []proto.ScanSeg, snap bool, asOf page.LSN) *scanCursor {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	c := newScanCursor(t.next, client, batch, plan, snap, asOf)
	t.scans[c.id] = c
	return c
}

func (t *scanTable) remove(id uint64) {
	//bess:lockfree ignore=cursor-table latch, unranked and released before any fetch or send
	t.mu.Lock()
	delete(t.scans, id)
	t.mu.Unlock()
}

func (t *scanTable) lookup(id uint64) *scanCursor {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.scans[id]
}

// cancelAll cancels every live cursor (the peer went away).
func (t *scanTable) cancelAll() {
	t.mu.Lock()
	cs := make([]*scanCursor, 0, len(t.scans))
	for _, c := range t.scans {
		cs = append(cs, c)
	}
	t.mu.Unlock()
	for _, c := range cs {
		c.cancel()
	}
}

// serveScan registers the streaming-scan handlers on one peer.
func serveScan(s *Server, p *rpc.Peer) {
	table := newScanTable()
	p.SetOnClose(func(error) { table.cancelAll() })

	start := func(client, db, fileID, batch uint32, snap bool, asOf page.LSN) ([]byte, error) {
		b := int(batch)
		if b <= 0 {
			b = defaultScanBatch
		}
		if b > maxScanBatch {
			b = maxScanBatch
		}
		segs, err := s.SegmentsOf(db, fileID)
		if err != nil {
			return nil, err
		}
		plan := make([]proto.ScanSeg, 0, len(segs))
		for _, k := range segs {
			n, err := s.SegInfo(k)
			if errors.Is(err, ErrNoSegment) {
				continue // dropped since listing; the scan skips it
			}
			if err != nil {
				return nil, err
			}
			plan = append(plan, proto.ScanSeg{Seg: k, SlottedPages: uint32(n)})
		}
		c := table.add(client, b, plan, snap, asOf)
		goleak.Go("server.runScan", func() { s.runScan(p, table, c) })
		return proto.AppendScanStartReply(nil, c.id, plan), nil
	}

	p.Handle("ScanStart", func(body []byte) ([]byte, error) {
		client, db, fileID, batch, err := proto.DecodeScanStartArgs(body)
		if err != nil {
			return nil, err
		}
		return start(client, db, fileID, batch, false, 0)
	})

	// SnapScanStart opens the same push cursor, but every image the cursor
	// ships is read as of the snapshot's stamp — a stable analytics scan
	// while updaters commit underneath (DESIGN.md §7).
	p.Handle("SnapScanStart", func(body []byte) ([]byte, error) {
		client, db, fileID, batch, snap, err := proto.DecodeSnapScanStartArgs(body)
		if err != nil {
			return nil, err
		}
		stamp, err := s.snapStamp(snap)
		if err != nil {
			return nil, err
		}
		return start(client, db, fileID, batch, true, stamp)
	})

	p.HandleStream("ScanCtl", func(stream uint64, body []byte) {
		cancel, credit, err := proto.DecodeScanCtl(body)
		if err != nil {
			return // a garbled ctl frame is dropped, not fatal
		}
		if c := table.lookup(stream); c != nil {
			c.grant(cancel, credit)
		}
	})
}

// runScan drives one cursor: fetch each planned segment under the usual
// short read locks, coalesce images into batches, and push them as credits
// allow. Encoded batches are handed to a sender goroutine so fetching the
// next segment overlaps the credit wait and socket write of the previous
// batch. It exits on cancel, on a send error (peer gone), or after the
// final batch. Like SnapFetchSeg, runScan is a lockfree taint root: in snap
// mode its data path reaches no lock acquisition beyond the waived cursor
// and peer latches.
//
//bess:lockfree
func (s *Server) runScan(p *rpc.Peer, t *scanTable, c *scanCursor) {
	defer t.remove(c.id)
	type push struct {
		buf  *[]byte // pooled backing array; returned to the pool after the send
		size int
	}
	var (
		seq    uint32
		images []proto.SegImage
		size   int
		failed atomic.Bool
		sendCh = make(chan push, 2)
		done   = make(chan struct{})
	)
	goleak.Go("server.scanSender", func() {
		defer close(done)
		for sp := range sendCh {
			if !failed.Load() {
				// Draining continues after a failure so the fetch loop
				// never blocks; every batch still returns to the pool.
				//bess:lockfree ignore=SendStream takes only Peer.wmu to coalesce the write; no server-state locks are held at send time
				if !c.waitCredit(sp.size) || p.SendStream("ScanData", c.id, *sp.buf) != nil {
					failed.Store(true)
				}
			}
			putScanBuf(sp.buf)
		}
	})
	// flush encodes the accumulated images into a pooled buffer and queues
	// the batch for the sender. An error batch carries no images and is
	// always last.
	flush := func(last bool, errMsg string) {
		sb := proto.ScanBatch{Seq: seq, Last: last, Err: errMsg, Images: images}
		bp := getScanBuf()
		*bp = proto.AppendScanBatch((*bp)[:0], &sb)
		seq++
		sz := size
		images, size = images[:0], 0
		sendCh <- push{buf: bp, size: sz}
	}
	for _, e := range c.plan {
		if c.isCancelled() || failed.Load() {
			break
		}
		var sl, ov, data []byte
		var err error
		if c.snap {
			// As-of fetch: no locks, no copy-table registration, so the
			// pushed images never join the callback protocol.
			sl, ov, data, err = s.readAsOf(e.Seg, c.asOf)
		} else {
			//bess:lockfree ignore=live-scan branch: FetchSeg takes the usual short read locks and copy-table registration by design; the snap branch stays lock-free
			sl, ov, data, err = s.FetchSeg(c.client, e.Seg)
		}
		if errors.Is(err, ErrNoSegment) {
			continue // dropped between plan and read; the client skips it too
		}
		if err != nil {
			// Ship what was already read, then report the failure.
			if len(images) > 0 {
				flush(false, "")
			}
			flush(true, err.Error())
			close(sendCh)
			<-done
			return
		}
		images = append(images, proto.SegImage{Seg: e.Seg, Slotted: sl, Overflow: ov, Data: data})
		size += len(sl) + len(ov) + len(data)
		if size >= c.batch {
			flush(false, "")
		}
	}
	if !c.isCancelled() && !failed.Load() {
		flush(true, "")
	}
	close(sendCh)
	<-done
}
