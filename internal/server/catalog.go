package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bess/internal/lockcheck"
	"bess/internal/names"
	"bess/internal/proto"
)

// segMeta is the catalog's record of one object segment.
type segMeta struct {
	Seg          proto.SegKey
	FileID       uint32
	SlottedPages int
}

// dbMeta is the catalog's record of one database.
type dbMeta struct {
	ID       uint32
	Name     string
	Areas    []uint32 // storage areas, in attach order
	Segments map[proto.SegKey]*segMeta
	Files    map[uint32][]proto.SegKey
	NextFile uint32
	Types    []proto.TypeInfo
	NamesEnc []byte // encoded names.Directory
}

// catalog is the server's persistent metadata: databases, their areas,
// object segments, type descriptors, and root-object directories. It is
// written through to disk (when file-backed) before any dependent data is
// used.
type catalog struct {
	mu     lockcheck.Mutex
	path   string // "" = memory only
	NextDB uint32 // guarded by mu
	// NextArea is global: area ids are unique per server.
	NextArea uint32             // guarded by mu
	DBs      map[string]*dbMeta // guarded by mu
	ByID     map[uint32]*dbMeta // guarded by mu

	// decoded name directories, lazily materialized from NamesEnc
	dirs map[uint32]*names.Directory // guarded by mu
}

func newCatalog(path string) *catalog {
	c := &catalog{
		path:   path,
		NextDB: 1, NextArea: 1,
		DBs:  make(map[string]*dbMeta),
		ByID: make(map[uint32]*dbMeta),
		dirs: make(map[uint32]*names.Directory),
	}
	c.mu.Init("catalog.mu", rankCatalog)
	return c
}

// loadCatalog reads the catalog from path. The returned value is not yet
// shared, so fields are touched without c.mu.
//
//bess:prepublish
func loadCatalog(path string) (c *catalog, err error) {
	c = newCatalog(path)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	if err := gob.NewDecoder(f).Decode(c); err != nil {
		return nil, fmt.Errorf("server: load catalog: %w", err)
	}
	c.path = path
	c.dirs = make(map[uint32]*names.Directory)
	// gob skips nil maps inside; normalize.
	if c.DBs == nil {
		c.DBs = make(map[string]*dbMeta)
	}
	c.ByID = make(map[uint32]*dbMeta)
	for _, m := range c.DBs {
		if m.Segments == nil {
			m.Segments = make(map[proto.SegKey]*segMeta)
		}
		if m.Files == nil {
			m.Files = make(map[uint32][]proto.SegKey)
		}
		c.ByID[m.ID] = m
	}
	return c, nil
}

// persistLocked writes the catalog through to disk. Called with c.mu held.
//
//bess:holds mu
func (c *catalog) persistLocked() error {
	// Serialize live directories back into their blobs first.
	for id, d := range c.dirs {
		if d.Dirty() {
			if m := c.ByID[id]; m != nil {
				m.NamesEnc = d.Encode()
			}
		}
	}
	if c.path == "" {
		return nil
	}
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

func (c *catalog) createDB(name string) (*dbMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.DBs[name]; dup {
		return nil, fmt.Errorf("server: database %q exists", name)
	}
	m := &dbMeta{
		ID:       c.NextDB,
		Name:     name,
		Segments: make(map[proto.SegKey]*segMeta),
		Files:    make(map[uint32][]proto.SegKey),
		NextFile: 1,
	}
	c.NextDB++
	c.DBs[name] = m
	c.ByID[m.ID] = m
	return m, c.persistLocked()
}

func (c *catalog) db(id uint32) (*dbMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.ByID[id]
	if m == nil {
		return nil, fmt.Errorf("server: no database %d", id)
	}
	return m, nil
}

func (c *catalog) dbByName(name string) (*dbMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.DBs[name]
	return m, ok
}

// allocAreaID reserves the next area id and attaches it to db.
func (c *catalog) allocAreaID(db *dbMeta) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.NextArea
	c.NextArea++
	db.Areas = append(db.Areas, id)
	return id, c.persistLocked()
}

// addSegment records a new object segment.
func (c *catalog) addSegment(db *dbMeta, sm *segMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	db.Segments[sm.Seg] = sm
	db.Files[sm.FileID] = append(db.Files[sm.FileID], sm.Seg)
	return c.persistLocked()
}

// segmentsOf lists the segments of a file, in creation order.
func (c *catalog) segmentsOf(db *dbMeta, fileID uint32) []proto.SegKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]proto.SegKey(nil), db.Files[fileID]...)
}

// resolve finds the segment whose slotted range covers (area, byteOff).
func (c *catalog) resolve(db *dbMeta, areaID uint32, byteOff uint64) (proto.SegKey, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	const pageSize = 4096
	for key, sm := range db.Segments {
		if key.Area != areaID {
			continue
		}
		start := uint64(key.Start) * pageSize
		end := start + uint64(sm.SlottedPages)*pageSize
		if byteOff >= start && byteOff < end {
			return key, true
		}
	}
	return proto.SegKey{}, false
}

// segMetaOf fetches the catalog record of seg across all databases.
func (c *catalog) segMetaOf(seg proto.SegKey) (*segMeta, *dbMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.ByID {
		if sm, ok := m.Segments[seg]; ok {
			return sm, m, true
		}
	}
	return nil, nil, false
}

// registerType adds (or finds) a type descriptor for db.
func (c *catalog) registerType(db *dbMeta, t proto.TypeInfo) (proto.TypeInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range db.Types {
		if have.Name == t.Name {
			if have.Size != t.Size || len(have.RefOffsets) != len(t.RefOffsets) {
				return proto.TypeInfo{}, fmt.Errorf("server: type %q layout conflict", t.Name)
			}
			for i := range have.RefOffsets {
				if have.RefOffsets[i] != t.RefOffsets[i] {
					return proto.TypeInfo{}, fmt.Errorf("server: type %q offsets conflict", t.Name)
				}
			}
			return have, nil
		}
	}
	// Assign the next id.
	maxID := uint32(0)
	for _, have := range db.Types {
		if have.ID > maxID {
			maxID = have.ID
		}
	}
	t.ID = maxID + 1
	db.Types = append(db.Types, t)
	sort.Slice(db.Types, func(i, j int) bool { return db.Types[i].ID < db.Types[j].ID })
	return t, c.persistLocked()
}

// types lists db's registered types.
func (c *catalog) types(db *dbMeta) []proto.TypeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]proto.TypeInfo(nil), db.Types...)
}

// namesDir returns db's root-object directory, decoding it on first use.
func (c *catalog) namesDir(db *dbMeta) (*names.Directory, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.dirs[db.ID]; ok {
		return d, nil
	}
	var d *names.Directory
	if len(db.NamesEnc) > 0 {
		var err error
		d, err = names.Decode(db.NamesEnc)
		if err != nil {
			return nil, err
		}
	} else {
		d = names.New()
	}
	c.dirs[db.ID] = d
	return d, nil
}

// persistNames writes a db's directory through.
func (c *catalog) persistNames() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persistLocked()
}

// areaIDs lists every attached area id across databases (startup).
func (c *catalog) areaIDs() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []uint32
	for _, m := range c.ByID {
		out = append(out, m.Areas...)
	}
	return out
}

// allSegMetas snapshots every cataloged segment across databases, in a
// stable (area, start) order — the scrub walker's work list.
func (c *catalog) allSegMetas() []*segMeta {
	c.mu.Lock()
	var out []*segMeta
	for _, m := range c.ByID {
		for _, sm := range m.Segments {
			out = append(out, sm)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seg.Area != out[j].Seg.Area {
			return out[i].Seg.Area < out[j].Seg.Area
		}
		return out[i].Seg.Start < out[j].Seg.Start
	})
	return out
}

// catalogPath computes the catalog file path for a server directory.
func catalogPath(dir string) string { return filepath.Join(dir, "catalog.gob") }
