package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"bess/internal/proto"
	"bess/internal/segment"
)

// altImages builds two commit images for a fresh segment whose single object
// alternates between two payloads, so every commit logs real page changes.
func altImages(t *testing.T, s *Server, db uint32, tag string) (proto.SegKey, [2]proto.SegImage, [2][]byte) {
	t.Helper()
	fid, err := s.NewFileID(db)
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.CreateSegment(db, fid, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	var imgs [2]proto.SegImage
	var bodies [2][]byte
	for v := 0; v < 2; v++ {
		sl, ov, err := s.FetchSlotted(0, key)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := segment.DecodeSlotted(sl)
		if err != nil {
			t.Fatal(err)
		}
		seg.Overflow = ov
		if seg.Data, err = s.FetchData(0, key); err != nil {
			t.Fatal(err)
		}
		bodies[v] = []byte(fmt.Sprintf("%s-v%d", tag, v))
		if _, err := seg.CreateObject(0, bodies[v]); err != nil {
			t.Fatal(err)
		}
		imgs[v] = proto.SegImage{Seg: key, Slotted: seg.EncodeSlotted(), Overflow: seg.Overflow, Data: seg.Data}
	}
	return key, imgs, bodies
}

// TestConcurrentCommitStress hammers one file-backed server with N clients
// committing in parallel (run under -race), then checks the commit count,
// the drained transaction table, and a clean ARIES restart.
func TestConcurrentCommitStress(t *testing.T) {
	const clients, commitsEach = 8, 12
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := s.OpenDB("stress", true)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]proto.SegKey, clients)
	imgs := make([][2]proto.SegImage, clients)
	bodies := make([][2][]byte, clients)
	conns := make([]uint32, clients)
	for c := 0; c < clients; c++ {
		keys[c], imgs[c], bodies[c] = altImages(t, s, db, fmt.Sprintf("client-%d", c))
		if conns[c], err = s.Hello(fmt.Sprintf("c%d", c)); err != nil {
			t.Fatal(err)
		}
	}

	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < commitsEach; i++ {
				txid, err := s.NewTx()
				if err != nil {
					errs <- err
					return
				}
				if err := s.Lock(conns[c], txid, keys[c], proto.LockX); err != nil {
					errs <- fmt.Errorf("client %d lock: %w", c, err)
					return
				}
				if err := s.Commit(conns[c], txid, []proto.SegImage{imgs[c][i%2]}); err != nil {
					errs <- fmt.Errorf("client %d commit: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Snapshot()
	if st.Commits != clients*commitsEach {
		t.Fatalf("commits = %d, want %d", st.Commits, clients*commitsEach)
	}
	if st.WALSyncs == 0 || st.WALSyncs > st.WALFlushes {
		t.Fatalf("wal accounting off: syncs=%d flushes=%d", st.WALSyncs, st.WALFlushes)
	}
	if n := s.txm.ActiveCount(); n != 0 {
		t.Fatalf("%d transactions left active", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean ARIES restart: every segment holds exactly its client's final
	// payload (the last commit wrote i%2 == (commitsEach-1)%2).
	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	want := (commitsEach - 1) % 2
	for c := 0; c < clients; c++ {
		sl, _, err := s2.FetchSlotted(0, keys[c])
		if err != nil {
			t.Fatal(err)
		}
		dec, err := segment.DecodeSlotted(sl)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Data, err = s2.FetchData(0, keys[c]); err != nil {
			t.Fatal(err)
		}
		b, err := dec.ObjectBytes(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, bodies[c][want]) {
			t.Fatalf("client %d after restart: %q, want %q", c, b, bodies[c][want])
		}
	}
}

// TestCommitErrorForgetsTx: a failing t.Commit must still remove the txid
// from the active table (regression for the commit-path leak).
func TestCommitErrorForgetsTx(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("d", true)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := s.CreateSegment(db, 1, 1, 2, -1)
	c, _ := s.Hello("app")
	txid, _ := s.NewTx()
	if err := s.Lock(c, txid, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	// Closing the WAL under the server makes the commit-record append fail.
	if err := s.log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(c, txid, nil); err == nil {
		t.Fatal("commit succeeded with a closed log")
	}
	if s.txs.get(txid) != nil {
		t.Fatal("failed commit leaked the transaction in the active table")
	}
}
