// Silent-corruption resilience (DESIGN.md §5): every server read path
// verifies the section checksums carried by slotted images, data and
// overflow runs, and large-object descriptors. Detected damage is repaired
// in place by replaying the WAL's full-page history — the log is never
// truncated and logAndApply records whole page images, so the latest
// durable record for a page IS its current content (CLRs already in the
// log replay the undo, exactly as ARIES restart does). Pages with no
// logged history (initial images written by CreateSegment, raw WriteRun
// traffic) cannot be reconstructed; their segment is quarantined with a
// typed error while the rest of the server keeps serving.
//
// The same verified read paths back the background scrubber (StartScrub)
// and `bess-inspect -verify`, so one walker covers online scrubbing,
// offline audit, and demand-read verification.
package server

import (
	"errors"
	"fmt"
	"time"

	"bess/internal/goleak"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
	"bess/internal/wal"
	"bess/internal/walcheck"
)

// ErrQuarantined marks a segment whose corruption could not be repaired
// from WAL history. Reads and writes of the segment fail with an error
// wrapping this sentinel; other segments are unaffected.
var ErrQuarantined = errors.New("server: segment quarantined")

// ScrubStats is the cumulative detect/repair/scrub accounting.
type ScrubStats struct {
	SegmentsChecked  int64 // segments walked by scrub passes
	PagesVerified    int64 // pages covered by scrub-pass checksum checks
	CorruptionsFound int64 // checksum failures seen on any read path
	Repaired         int64 // corruptions healed by WAL replay
	Quarantined      int64 // segments taken out of service
}

// ScrubStatus returns the cumulative corruption counters.
func (s *Server) ScrubStatus() ScrubStats {
	return ScrubStats{
		SegmentsChecked:  s.scrubCtr.segsChecked.Load(),
		PagesVerified:    s.scrubCtr.pagesVerified.Load(),
		CorruptionsFound: s.scrubCtr.corruptions.Load(),
		Repaired:         s.scrubCtr.repaired.Load(),
		Quarantined:      s.scrubCtr.quarantined.Load(),
	}
}

// quarantine takes seg out of service, recording why.
func (s *Server) quarantine(seg proto.SegKey, cause error) {
	s.quarMu.Lock()
	if s.quarantined == nil {
		s.quarantined = make(map[proto.SegKey]string)
	}
	if _, dup := s.quarantined[seg]; !dup {
		s.quarantined[seg] = cause.Error()
		s.scrubCtr.quarantined.Add(1)
	}
	s.quarMu.Unlock()
}

// quarCheck fails fast when seg is quarantined.
func (s *Server) quarCheck(seg proto.SegKey) error {
	s.quarMu.Lock()
	cause, bad := s.quarantined[seg]
	s.quarMu.Unlock()
	if bad {
		return fmt.Errorf("%w: segment %d/%d: %s", ErrQuarantined, seg.Area, seg.Start, cause)
	}
	return nil
}

// Quarantined lists the out-of-service segments and why each one was
// pulled (tools, tests, operators).
func (s *Server) Quarantined() map[proto.SegKey]string {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	out := make(map[proto.SegKey]string, len(s.quarantined))
	for k, v := range s.quarantined {
		out[k] = v
	}
	return out
}

// corruptionIn reports whether err is a checksum-style detection (including
// a magic number destroyed by rot) rather than an I/O or logic error.
func corruptionIn(err error) bool {
	var ce *page.CorruptError
	return errors.As(err, &ce) || errors.Is(err, segment.ErrBadMagic)
}

// repairRange reconstructs pages [start, start+n) of area from the durable
// log: every update record is replayed in LSN order, so the last image wins
// exactly as redo would leave it. zeroBase marks ranges whose initial
// on-disk state was all zeroes (data and overflow runs, which CreateSegment
// and the allocator zero without logging) — those replay correctly from an
// empty history, while a slotted page is only repairable once some commit
// has logged a full image of it.
func (s *Server) repairRange(areaID uint32, start page.No, n int, zeroBase bool) error {
	s.repairMu.Lock()
	defer s.repairMu.Unlock()
	if err := s.log.Flush(0); err != nil {
		return err
	}
	type pageHist struct {
		img  []byte
		full bool // a whole-page image anchors the replay
	}
	hist := make(map[page.No]*pageHist, n)
	err := s.log.Iterate(wal.FirstLSN(), func(_ page.LSN, rec *wal.Record) error {
		if rec.Type != wal.TUpdate && rec.Type != wal.TCLR {
			return nil
		}
		if uint32(rec.Page.Area) != areaID ||
			rec.Page.Page < start || rec.Page.Page >= start+page.No(n) {
			return nil
		}
		ph := hist[rec.Page.Page]
		if ph == nil {
			ph = &pageHist{img: make([]byte, page.Size)}
			hist[rec.Page.Page] = ph
		}
		if rec.Off == 0 && len(rec.After) == page.Size {
			ph.full = true
		}
		if int(rec.Off)+len(rec.After) <= page.Size {
			copy(ph.img[rec.Off:], rec.After)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: repair: log history unreadable: %w", err)
	}
	for i := 0; i < n; i++ {
		pno := start + page.No(i)
		ph := hist[pno]
		if ph == nil {
			if !zeroBase {
				return fmt.Errorf("server: repair: page %d:%d has no logged history", areaID, pno)
			}
			ph = &pageHist{img: make([]byte, page.Size)}
		}
		if !ph.full && !zeroBase {
			return fmt.Errorf("server: repair: page %d:%d has no full-page image in the log", areaID, pno)
		}
		pid := page.ID{Area: page.AreaID(areaID), Page: pno}
		walcheck.NoteUpdate(pid)
		//bess:walorder ignore=repair replays page images whose update records are already durable in the log
		if err := s.WritePage(pid, ph.img); err != nil {
			return err
		}
	}
	return nil
}

// repairFor picks the damaged range from the detection error and repairs
// it. dec is the decoded header when decoding succeeded (section damage);
// nil when the slotted image itself would not decode.
func (s *Server) repairFor(seg proto.SegKey, sm *segMeta, dec *segment.Seg, err error) error {
	var ce *page.CorruptError
	if errors.As(err, &ce) && dec != nil {
		switch ce.Section {
		case "data":
			return s.repairRange(uint32(dec.Hdr.DataArea), dec.Hdr.DataStart, int(dec.Hdr.DataPages), true)
		case "overflow":
			return s.repairRange(uint32(dec.Hdr.OverArea), dec.Hdr.OverStart, int(dec.Hdr.OverPages), true)
		}
	}
	// Header, slot region, or magic damage: the slotted image itself.
	return s.repairRange(seg.Area, page.No(seg.Start), sm.SlottedPages, false)
}

// readSegVerified is readSeg's detect→repair→quarantine wrapper: one
// verified read, one repair attempt, one re-read. A segment that still
// fails after replaying its WAL history is quarantined.
func (s *Server) readSegVerified(seg proto.SegKey, sm *segMeta) (*segment.Seg, []byte, []byte, error) {
	if err := s.quarCheck(seg); err != nil {
		return nil, nil, nil, err
	}
	dec, img, over, err := s.readSegOnce(seg, sm)
	if err == nil || !corruptionIn(err) {
		return dec, img, over, err
	}
	s.scrubCtr.corruptions.Add(1)
	if rerr := s.repairFor(seg, sm, dec, err); rerr == nil {
		if dec, img, over, err2 := s.readSegOnce(seg, sm); err2 == nil {
			s.scrubCtr.repaired.Add(1)
			return dec, img, over, nil
		}
	}
	s.quarantine(seg, err)
	return nil, nil, nil, fmt.Errorf("%w: segment %d/%d: %v", ErrQuarantined, seg.Area, seg.Start, err)
}

// readDataVerified reads a segment's data run and checks it against the
// header's recorded checksum, repairing from the log on mismatch.
//
//bess:verified
func (s *Server) readDataVerified(seg proto.SegKey, dec *segment.Seg) ([]byte, error) {
	data, err := s.readData(dec)
	if err != nil {
		return nil, err
	}
	verr := dec.VerifyData(data)
	if verr == nil {
		return data, nil
	}
	s.scrubCtr.corruptions.Add(1)
	if rerr := s.repairFor(seg, nil, dec, verr); rerr == nil {
		if data, err = s.readData(dec); err == nil && dec.VerifyData(data) == nil {
			s.scrubCtr.repaired.Add(1)
			return data, nil
		}
	}
	s.quarantine(seg, verr)
	return nil, fmt.Errorf("%w: segment %d/%d: %v", ErrQuarantined, seg.Area, seg.Start, verr)
}

// readLargeVerified reads a large object's run and checks the stored bytes
// against the descriptor's checksum, repairing the run from the log on
// mismatch.
//
//bess:verified
func (s *Server) readLargeVerified(seg proto.SegKey, areaID uint32, start int64, pages, stored int, crc uint32) ([]byte, error) {
	read := func() ([]byte, error) {
		a := s.lookupArea(areaID)
		if a == nil {
			return nil, ErrNoArea
		}
		buf := make([]byte, pages*page.Size)
		for i := 0; i < pages; i++ {
			if err := a.ReadPage(page.No(start)+page.No(i), buf[i*page.Size:(i+1)*page.Size]); err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	buf, err := read()
	if err != nil {
		return nil, err
	}
	verr := page.Verify(buf[:stored], crc, "large", segment.ErrChecksum)
	if verr == nil {
		return buf, nil
	}
	var ce *page.CorruptError
	if errors.As(verr, &ce) {
		ce.Area, ce.Page = page.AreaID(areaID), page.No(start)
	}
	s.scrubCtr.corruptions.Add(1)
	if rerr := s.repairRange(areaID, page.No(start), pages, true); rerr == nil {
		if buf, err = read(); err == nil && page.Verify(buf[:stored], crc, "large", segment.ErrChecksum) == nil {
			s.scrubCtr.repaired.Add(1)
			return buf, nil
		}
	}
	s.quarantine(seg, verr)
	return nil, fmt.Errorf("%w: segment %d/%d: %v", ErrQuarantined, seg.Area, seg.Start, verr)
}

// --- background scrubber ---

// ScrubOnce walks every cataloged segment through the verified read paths,
// repairing or quarantining whatever it finds. Segments with an active
// lock holder are skipped (a writer is mid-flight; the next pass will see
// the committed image), as are already-quarantined ones. It returns the
// cumulative counters and the first non-corruption error.
//
// The walker is shared by three consumers: the background scrubber
// (StartScrub), `bess-inspect -verify`, and tests.
func (s *Server) ScrubOnce() (ScrubStats, error) {
	for _, sm := range s.cat.allSegMetas() {
		if s.closed.Load() || s.scrubPaused.Load() {
			break
		}
		seg := sm.Seg
		if s.quarCheck(seg) != nil {
			continue
		}
		if len(s.locks.Holders(segLockName(seg))) > 0 {
			continue // in-flight writer: verify on the next pass
		}
		dec, _, _, err := s.readSegVerified(seg, sm)
		s.scrubCtr.segsChecked.Add(1)
		if err != nil {
			if errors.Is(err, ErrQuarantined) {
				continue
			}
			return s.ScrubStatus(), err
		}
		pages := sm.SlottedPages + int(dec.Hdr.OverPages)
		if dec.Hdr.DataPages > 0 {
			if _, err := s.readDataVerified(seg, dec); err != nil && !errors.Is(err, ErrQuarantined) {
				return s.ScrubStatus(), err
			}
			pages += int(dec.Hdr.DataPages)
		}
		s.scrubCtr.pagesVerified.Add(int64(pages))
		if s.scrubPace > 0 {
			time.Sleep(s.scrubPace)
		}
	}
	return s.ScrubStatus(), nil
}

// PauseScrub pauses (true) or resumes (false) scrub passes — foreground
// load spikes can shed the scrubber's read traffic without stopping it.
func (s *Server) PauseScrub(paused bool) { s.scrubPaused.Store(paused) }

// StartScrub launches the background scrubber: one full pass every
// interval, sleeping pace between segments so a pass never monopolizes the
// disk. One-shot per server: a second call while running is a no-op, and
// StopScrub (or Close) retires the scrubber for good.
func (s *Server) StartScrub(interval, pace time.Duration) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.scrubStarted || s.closed.Load() {
		return
	}
	s.scrubStarted = true
	s.scrubEvery, s.scrubPace = interval, pace
	goleak.Go("server.scrubber", func() {
		defer close(s.scrubDone)
		t := time.NewTicker(s.scrubEvery)
		defer t.Stop()
		for {
			select {
			case <-s.scrubStop:
				return
			case <-t.C:
			}
			if s.scrubPaused.Load() || s.closed.Load() {
				continue
			}
			_, _ = s.ScrubOnce()
		}
	})
}

// StopScrub stops the background scrubber and waits for it to exit.
// Idempotent; called by Close.
func (s *Server) StopScrub() {
	s.scrubMu.Lock()
	started := s.scrubStarted
	s.scrubMu.Unlock()
	s.scrubStopOnce.Do(func() { close(s.scrubStop) })
	if started {
		<-s.scrubDone
	}
}
