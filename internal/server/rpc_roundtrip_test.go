package server

import (
	"bytes"
	"errors"
	"testing"

	"bess/internal/goleak"
	"bess/internal/oid"
	"bess/internal/proto"
	"bess/internal/rpc"
)

// callPeer builds a served pipe and a typed call helper, exercising the
// ServePeer surface end to end.
func callPeer(t *testing.T) (*Server, *rpc.Peer) {
	t.Helper()
	s := NewMem(1)
	t.Cleanup(func() { s.Close() })
	cEnd, sEnd := rpc.Pipe()
	ServePeer(s, sEnd)
	t.Cleanup(func() { cEnd.Close() })
	return s, cEnd
}

func TestRPCFullSurface(t *testing.T) {
	s, p := callPeer(t)

	var hello proto.HelloReply
	if err := p.Call("Hello", &proto.HelloArgs{Name: "rpc-test"}, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Client == 0 {
		t.Fatal("no client id")
	}

	var odb proto.OpenDBReply
	if err := p.Call("OpenDB", &proto.OpenDBArgs{Name: "db", Create: true}, &odb); err != nil {
		t.Fatal(err)
	}

	var fid proto.NewFileIDReply
	if err := p.Call("NewFileID", &proto.NewFileIDArgs{DB: odb.DB}, &fid); err != nil {
		t.Fatal(err)
	}
	if fid.File == 0 {
		t.Fatal("file id 0")
	}

	var aa proto.AddAreaReply
	if err := p.Call("AddArea", &proto.AddAreaArgs{DB: odb.DB}, &aa); err != nil {
		t.Fatal(err)
	}

	var rt proto.RegisterTypeReply
	if err := p.Call("RegisterType", &proto.RegisterTypeArgs{
		DB: odb.DB, Info: proto.TypeInfo{Name: "T", Size: 16, RefOffsets: []int{0}},
	}, &rt); err != nil {
		t.Fatal(err)
	}
	var tys proto.TypesReply
	if err := p.Call("Types", &proto.TypesArgs{DB: odb.DB}, &tys); err != nil {
		t.Fatal(err)
	}
	if len(tys.Infos) != 1 || tys.Infos[0].Name != "T" {
		t.Fatalf("types = %+v", tys.Infos)
	}

	var cs proto.CreateSegmentReply
	if err := p.Call("CreateSegment", &proto.CreateSegmentArgs{
		DB: odb.DB, FileID: fid.File, SlottedPages: 1, DataPages: 2, AreaHint: 1,
	}, &cs); err != nil {
		t.Fatal(err)
	}
	var si proto.SegInfoReply
	if err := p.Call("SegInfo", &proto.SegInfoArgs{Seg: cs.Seg}, &si); err != nil {
		t.Fatal(err)
	}
	if si.SlottedPages != 1 {
		t.Fatalf("slotted pages = %d", si.SlottedPages)
	}

	var segs proto.SegmentsOfReply
	if err := p.Call("SegmentsOf", &proto.SegmentsOfArgs{DB: odb.DB, FileID: fid.File}, &segs); err != nil {
		t.Fatal(err)
	}
	if len(segs.Segs) != 1 || segs.Segs[0] != cs.Seg {
		t.Fatalf("segments = %v", segs.Segs)
	}

	// Hot methods speak the binary codecs over raw frame bodies.
	fsBody, err := p.CallRaw("FetchSlotted", proto.AppendFetchArgs(nil, hello.Client, cs.Seg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := proto.DecodeFetchSlottedReply(fsBody); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CallRaw("FetchData", proto.AppendFetchArgs(nil, hello.Client, cs.Seg)); err != nil {
		t.Fatal(err)
	}
	segBody, err := p.CallRaw("FetchSeg", proto.AppendFetchArgs(nil, hello.Client, cs.Seg))
	if err != nil {
		t.Fatal(err)
	}
	img, err := proto.DecodeSegImage(segBody)
	if err != nil {
		t.Fatal(err)
	}
	if img.Seg != cs.Seg || len(img.Slotted) == 0 || len(img.Data) == 0 {
		t.Fatalf("combined fetch image = %+v", img.Seg)
	}

	var ntx proto.NewTxReply
	if err := p.Call("NewTx", &proto.NewTxArgs{Client: hello.Client}, &ntx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CallRaw("Lock", proto.AppendLockArgs(nil, hello.Client, ntx.Tx, cs.Seg, proto.LockX)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CallRaw("LockObject", proto.AppendLockObjectArgs(nil, hello.Client, ntx.Tx, cs.Seg, 0, proto.LockS)); err != nil {
		t.Fatal(err)
	}

	// Transparent large object over the wire.
	var cl proto.CreateLargeReply
	content := bytes.Repeat([]byte("x"), 5000)
	if err := p.Call("CreateLarge", &proto.CreateLargeArgs{
		Client: hello.Client, Tx: ntx.Tx, Seg: cs.Seg, Content: content,
	}, &cl); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CallRaw("Commit", proto.AppendCommitArgs(nil, hello.Client, ntx.Tx, nil)); err != nil {
		t.Fatal(err)
	}
	flData, err := p.CallRaw("FetchLarge", proto.AppendFetchLargeArgs(nil, hello.Client, cs.Seg, cl.Slot))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flData, content) {
		t.Fatal("large content over RPC")
	}

	// Raw runs.
	var ar proto.AllocRunReply
	if err := p.Call("AllocRun", &proto.AllocRunArgs{DB: odb.DB, NPages: 2}, &ar); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*4096)
	copy(data, "raw-run")
	if err := p.Call("WriteRun", &proto.RunArgs{DB: odb.DB, Area: ar.Area, Start: ar.Start, Data: data}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}
	var rr proto.RunReply
	if err := p.Call("ReadRun", &proto.RunArgs{DB: odb.DB, Area: ar.Area, Start: ar.Start, NPages: 1}, &rr); err != nil {
		t.Fatal(err)
	}
	if string(rr.Data[:7]) != "raw-run" {
		t.Fatalf("run data %q", rr.Data[:7])
	}
	if err := p.Call("FreeRun", &proto.RunArgs{DB: odb.DB, Area: ar.Area, Start: ar.Start}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}

	// Resolve.
	var rv proto.ResolveReply
	off := uint64(cs.Seg.Area)<<32 | uint64(cs.Seg.Start)*4096 + 128
	if err := p.Call("Resolve", &proto.ResolveArgs{DB: odb.DB, HeaderOff: off}, &rv); err != nil {
		t.Fatal(err)
	}
	if rv.Seg != cs.Seg || rv.Slot != 0 {
		t.Fatalf("resolve = %+v", rv)
	}

	// Names.
	o := oid.OID{Host: 1, DB: uint16(odb.DB), Offset: off, Unique: 0}
	var nb proto.NameBindArgs
	nb.DB, nb.Name = odb.DB, "root"
	o.Put(nb.OID[:])
	if err := p.Call("NameBind", &nb, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}
	var nl proto.NameLookupReply
	if err := p.Call("NameLookup", &proto.NameLookupArgs{DB: odb.DB, Name: "root"}, &nl); err != nil {
		t.Fatal(err)
	}
	got, _ := oid.Decode(nl.OID[:])
	if got != o {
		t.Fatalf("lookup = %v", got)
	}
	var nro proto.NameRemoveOIDArgs
	nro.DB = odb.DB
	o.Put(nro.OID[:])
	if err := p.Call("NameRemoveOID", &nro, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("NameLookup", &proto.NameLookupArgs{DB: odb.DB, Name: "root"}, &nl); err == nil {
		t.Fatal("name survived RemoveOID over RPC")
	}
	if err := p.Call("NameBind", &nb, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("NameUnbind", &proto.NameUnbindArgs{DB: odb.DB, Name: "root"}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}

	// 2PC over RPC.
	var ntx2 proto.NewTxReply
	p.Call("NewTx", &proto.NewTxArgs{}, &ntx2)
	if err := p.Call("Prepare", &proto.PrepareArgs{Client: hello.Client, Tx: ntx2.Tx}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("Decide", &proto.DecideArgs{Tx: ntx2.Tx, Commit: false}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}

	// Abort of a never-started tx is a no-op.
	if err := p.Call("Abort", &proto.AbortArgs{Client: hello.Client, Tx: 999999}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}

	// Released.
	if err := p.Call("Released", &proto.ReleasedArgs{Client: hello.Client, Seg: cs.Seg}, &proto.Empty{}); err != nil {
		t.Fatal(err)
	}

	// Server-side view.
	info := s.Inspect()
	if len(info.Databases) != 1 || info.Databases[0].Segments != 1 {
		t.Fatalf("inspect = %+v", info)
	}
	st := s.Snapshot()
	if st.Messages == 0 || st.Commits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRPCDisconnectCleans(t *testing.T) {
	s, p := callPeer(t)
	var hello proto.HelloReply
	if err := p.Call("Hello", &proto.HelloArgs{Name: "flaky"}, &hello); err != nil {
		t.Fatal(err)
	}
	var odb proto.OpenDBReply
	p.Call("OpenDB", &proto.OpenDBArgs{Name: "db", Create: true}, &odb)
	var cs proto.CreateSegmentReply
	p.Call("CreateSegment", &proto.CreateSegmentArgs{DB: odb.DB, FileID: 1, SlottedPages: 1, DataPages: 1}, &cs)
	var ntx proto.NewTxReply
	p.Call("NewTx", &proto.NewTxArgs{}, &ntx)
	if _, err := p.CallRaw("Lock", proto.AppendLockArgs(nil, hello.Client, ntx.Tx, cs.Seg, proto.LockX)); err != nil {
		t.Fatal(err)
	}
	p.Close() // connection drops; OnClose disconnects the client

	// Another client can take the lock once the disconnect aborts the tx.
	c2, err := s.Hello("healthy")
	if err != nil {
		t.Fatal(err)
	}
	tx2, _ := s.NewTx()
	deadline := errors.New("")
	_ = deadline
	var lockErr error
	for i := 0; i < 100; i++ {
		lockErr = s.Lock(c2, tx2, cs.Seg, proto.LockX)
		if lockErr == nil {
			break
		}
	}
	if lockErr != nil {
		t.Fatalf("lock after disconnect: %v", lockErr)
	}
	// The dropped connection must take its tracked goroutines with it.
	goleak.Check(t, "rpc.", "server.")
}
