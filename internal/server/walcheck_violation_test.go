//go:build walcheck

package server

import (
	"strings"
	"testing"

	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/walcheck"
)

// TestWalcheckCatchesLogAfterWrite drives a deliberate write-ahead
// violation — storing a page image before appending its log record — and
// asserts the runtime checker panics at the store. The same bug shape is
// flagged statically by the walorder analyzer (fixture WriteThenLog); this
// test proves the dynamic twin fires on the execution, not just the graph.
func TestWalcheckCatchesLogAfterWrite(t *testing.T) {
	walcheck.Reset()
	defer walcheck.Reset()
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("d", true)
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.CreateSegment(db, 1, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	pid := page.ID{Area: page.AreaID(key.Area), Page: page.No(key.Start)}
	img := make([]byte, page.Size)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("uncovered WritePage did not panic under -tags walcheck")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "no covering log record") {
			t.Fatalf("panic %v is not the walcheck diagnostic", r)
		}
	}()
	_ = s.WritePage(pid, img) // the log record for this store was never appended
}

// TestWalcheckCleanCommit exercises the legal order end to end: a full
// lock-commit cycle must not trip the checker.
func TestWalcheckCleanCommit(t *testing.T) {
	walcheck.Reset()
	defer walcheck.Reset()
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("d", true)
	if err != nil {
		t.Fatal(err)
	}
	key, img := mkSegImage(t, s, db, []byte("ordered payload"))
	cl, _ := s.Hello("c")
	txid, _ := s.NewTx()
	if err := s.Lock(cl, txid, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(cl, txid, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}
}
