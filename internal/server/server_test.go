package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bess/internal/hooks"
	"bess/internal/lock"
	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
)

// mkSegImage builds a commit image for a fresh segment with one object.
func mkSegImage(t *testing.T, s *Server, db uint32, body []byte) (proto.SegKey, proto.SegImage) {
	t.Helper()
	key, err := s.CreateSegment(db, 1, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	sl, ov, err := s.FetchSlotted(0, key)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.DecodeSlotted(sl)
	if err != nil {
		t.Fatal(err)
	}
	seg.Overflow = ov
	seg.Data, err = s.FetchData(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.CreateObject(0, body); err != nil {
		t.Fatal(err)
	}
	return key, proto.SegImage{Seg: key, Slotted: seg.EncodeSlotted(), Overflow: seg.Overflow, Data: seg.Data}
}

func TestCommitRequiresLock(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("d", true)
	if err != nil {
		t.Fatal(err)
	}
	key, img := mkSegImage(t, s, db, []byte("payload"))
	cl, _ := s.Hello("c")
	tx, _ := s.NewTx()
	if err := s.Commit(cl, tx, []proto.SegImage{img}); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("unlocked commit: %v", err)
	}
	// With the lock it succeeds.
	tx2, _ := s.NewTx()
	if err := s.Lock(cl, tx2, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(cl, tx2, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}
	// The object is durably readable.
	sl, _, _ := s.FetchSlotted(0, key)
	dec, _ := segment.DecodeSlotted(sl)
	dec.Data, _ = s.FetchData(0, key)
	b, err := dec.ObjectBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "payload" {
		t.Fatalf("stored %q", b)
	}
}

func TestLockConflictBetweenTxs(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	s.locks.DefaultTimeout = 50 * time.Millisecond
	db, _, _ := s.OpenDB("d", true)
	key, _ := s.CreateSegment(db, 1, 1, 2, -1)
	c1, _ := s.Hello("a")
	c2, _ := s.Hello("b")
	t1, _ := s.NewTx()
	t2, _ := s.NewTx()
	if err := s.Lock(c1, t1, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(c2, t2, key, proto.LockX); !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("conflicting X: %v", err)
	}
	if err := s.Abort(c1, t1); err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(c2, t2, key, proto.LockX); err != nil {
		t.Fatalf("after abort: %v", err)
	}
	s.Abort(c2, t2)
}

func TestTwoPCAcrossServers(t *testing.T) {
	s1 := NewMem(1)
	s2 := NewMem(2)
	defer s1.Close()
	defer s2.Close()
	db1, _, _ := s1.OpenDB("d1", true)
	db2, _, _ := s2.OpenDB("d2", true)
	k1, img1 := mkSegImage(t, s1, db1, []byte("branch-1"))
	k2, img2 := mkSegImage(t, s2, db2, []byte("branch-2"))
	c1, _ := s1.Hello("coord")
	c2, _ := s2.Hello("coord")
	gid := uint64(0xABC)
	if err := s1.Lock(c1, gid, k1, proto.LockX); err != nil {
		t.Fatal(err)
	}
	if err := s2.Lock(c2, gid, k2, proto.LockX); err != nil {
		t.Fatal(err)
	}
	// Phase 1.
	if err := s1.Prepare(c1, gid, []proto.SegImage{img1}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Prepare(c2, gid, []proto.SegImage{img2}); err != nil {
		t.Fatal(err)
	}
	// Phase 2: commit both.
	if err := s1.Decide(gid, true); err != nil {
		t.Fatal(err)
	}
	if err := s2.Decide(gid, true); err != nil {
		t.Fatal(err)
	}
	for i, pair := range []struct {
		s   *Server
		key proto.SegKey
		v   string
	}{{s1, k1, "branch-1"}, {s2, k2, "branch-2"}} {
		sl, _, _ := pair.s.FetchSlotted(0, pair.key)
		dec, _ := segment.DecodeSlotted(sl)
		dec.Data, _ = pair.s.FetchData(0, pair.key)
		b, err := dec.ObjectBytes(0)
		if err != nil || string(b) != pair.v {
			t.Fatalf("server %d: %q %v", i+1, b, err)
		}
	}
}

func TestTwoPCAbortDecision(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key, img := mkSegImage(t, s, db, []byte("doomed"))
	c, _ := s.Hello("coord")
	gid := uint64(7)
	s.Lock(c, gid, key, proto.LockX)
	if err := s.Prepare(c, gid, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}
	if err := s.Decide(gid, false); err != nil {
		t.Fatal(err)
	}
	// The branch's effects were rolled back: segment has no objects.
	sl, _, _ := s.FetchSlotted(0, key)
	dec, _ := segment.DecodeSlotted(sl)
	if dec.Hdr.NObjects != 0 {
		t.Fatalf("aborted branch left %d objects", dec.Hdr.NObjects)
	}
	if err := s.Decide(999, true); !errors.Is(err, ErrUnknownTx) {
		t.Fatalf("decide unknown: %v", err)
	}
}

func TestServerRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _, _ := s.OpenDB("d", true)
	key, img := mkSegImage(t, s, db, []byte("durable"))
	c, _ := s.Hello("x")
	tx, _ := s.NewTx()
	s.Lock(c, tx, key, proto.LockX)
	if err := s.Commit(c, tx, []proto.SegImage{img}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	db2, _, err := s2.OpenDB("d", false)
	if err != nil {
		t.Fatal(err)
	}
	if db2 != db {
		t.Fatalf("db id changed: %d -> %d", db, db2)
	}
	sl, _, err := s2.FetchSlotted(0, key)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := segment.DecodeSlotted(sl)
	dec.Data, _ = s2.FetchData(0, key)
	b, err := dec.ObjectBytes(0)
	if err != nil || !bytes.Equal(b, []byte("durable")) {
		t.Fatalf("after restart: %q %v", b, err)
	}
}

func TestResolve(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key, _ := s.CreateSegment(db, 1, 1, 2, -1)
	off := uint64(key.Area)<<32 | uint64(key.Start)*page.Size + segment.SlotByteOffset(3)
	gotKey, slot, err := s.Resolve(db, off)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || slot != 3 {
		t.Fatalf("resolve = %v,%d", gotKey, slot)
	}
	if _, _, err := s.Resolve(db, uint64(99)<<32); err == nil {
		t.Fatal("bogus offset resolved")
	}
}

func TestNamesAPI(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	o := oid.OID{Host: 1, DB: uint16(db), Offset: 42, Unique: 1}
	if err := s.NameBind(db, "root", o); err != nil {
		t.Fatal(err)
	}
	got, err := s.NameLookup(db, "root")
	if err != nil || got != o {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if err := s.NameRemoveOID(db, o); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NameLookup(db, "root"); err == nil {
		t.Fatal("name survived RemoveOID")
	}
	if err := s.NameBind(db, "a", o); err != nil {
		t.Fatal(err)
	}
	if err := s.NameUnbind(db, "a"); err != nil {
		t.Fatal(err)
	}
}

func TestCommitHook(t *testing.T) {
	// The §2.4 scenario: count commits without touching any application.
	s := NewMem(1)
	defer s.Close()
	commits := 0
	s.Hooks().Register(hooks.EvTxCommit, func(*hooks.Info) error {
		commits++
		return nil
	})
	db, _, _ := s.OpenDB("d", true)
	key, img := mkSegImage(t, s, db, []byte("x"))
	c, _ := s.Hello("app")
	for i := 0; i < 3; i++ {
		tx, _ := s.NewTx()
		s.Lock(c, tx, key, proto.LockX)
		if err := s.Commit(c, tx, []proto.SegImage{img}); err != nil {
			t.Fatal(err)
		}
	}
	if commits != 3 {
		t.Fatalf("commit hook ran %d times", commits)
	}
}

func TestCompressionHooks(t *testing.T) {
	// Large objects compressed on store, decompressed on fetch (§2.4).
	s := NewMem(1)
	defer s.Close()
	s.Hooks().Register(hooks.EvObjectFlush, func(i *hooks.Info) error {
		*i.Data = append([]byte("Z:"), *i.Data...) // mock compressor
		return nil
	})
	s.Hooks().Register(hooks.EvObjectFetch, func(i *hooks.Info) error {
		if len(*i.Data) >= 2 && string((*i.Data)[:2]) == "Z:" {
			*i.Data = (*i.Data)[2:]
		}
		return nil
	})
	db, _, _ := s.OpenDB("d", true)
	key, _ := s.CreateSegment(db, 1, 1, 2, -1)
	c, _ := s.Hello("app")
	tx, _ := s.NewTx()
	content := bytes.Repeat([]byte("media"), 1000)
	slot, err := s.CreateLarge(c, tx, key, 0, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(c, tx, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.FetchLarge(0, key, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("round trip through compression hooks failed (%d vs %d bytes)", len(got), len(content))
	}
}

func TestDisconnectAbortsClientTxs(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key, _ := s.CreateSegment(db, 1, 1, 2, -1)
	c, _ := s.Hello("flaky")
	tx, _ := s.NewTx()
	if err := s.Lock(c, tx, key, proto.LockX); err != nil {
		t.Fatal(err)
	}
	s.Disconnect(c)
	// The lock is released: another client proceeds immediately.
	c2, _ := s.Hello("healthy")
	tx2, _ := s.NewTx()
	if err := s.Lock(c2, tx2, key, proto.LockX); err != nil {
		t.Fatalf("lock after disconnect: %v", err)
	}
	s.Abort(c2, tx2)
}

func TestCreateSegmentValidation(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	if _, err := s.CreateSegment(db, 0, 1, 2, -1); err == nil {
		t.Fatal("fileID 0 accepted")
	}
	if _, err := s.CreateSegment(999, 1, 1, 2, -1); err == nil {
		t.Fatal("bogus db accepted")
	}
	if _, err := s.SegInfo(proto.SegKey{Area: 9, Start: 9}); !errors.Is(err, ErrNoSegment) {
		t.Fatal("bogus seg info")
	}
}

func TestCreateLargeTooBig(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	key, _ := s.CreateSegment(db, 1, 1, 2, -1)
	c, _ := s.Hello("app")
	tx, _ := s.NewTx()
	if _, err := s.CreateLarge(c, tx, key, 0, make([]byte, segment.MaxTransparentLarge+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized large object: %v", err)
	}
	s.Abort(c, tx)
}

func TestNewFileIDsDistinct(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, _ := s.OpenDB("d", true)
	a, _ := s.NewFileID(db)
	b, _ := s.NewFileID(db)
	if a == b || a == 0 || b == 0 {
		t.Fatalf("file ids: %d %d", a, b)
	}
}
