// Package server implements the BeSS server (paper §3): it owns storage
// areas and provides distributed transaction management, concurrency
// control, and recovery for the databases stored in them. Clients cache
// data between transactions; consistency is maintained with the callback
// locking algorithm. Commits use the write-ahead log; distributed commits
// run two-phase commit with the server as a participant.
//
// The same Server value serves three configurations: linked directly into
// an application (the "open server" of §1 — trusted code calls methods),
// fronted by the RPC loop (ServePeer) for remote clients, and wrapped by a
// node server.
package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bess/internal/area"
	"bess/internal/cache"
	"bess/internal/hooks"
	"bess/internal/lock"
	"bess/internal/lockcheck"
	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
	"bess/internal/tx"
	"bess/internal/wal"
	"bess/internal/walcheck"
)

// Errors returned by the server.
var (
	ErrNoArea      = errors.New("server: no such storage area")
	ErrNoSegment   = errors.New("server: no such segment")
	ErrNotLocked   = errors.New("server: transaction does not hold the required lock")
	ErrCallback    = errors.New("server: callback revocation timed out")
	ErrUnknownTx   = errors.New("server: unknown transaction")
	ErrTooLarge    = errors.New("server: object exceeds transparent large-object limit")
	ErrShutdown    = errors.New("server: shut down")
	errUnknownName = errors.New("server: unknown client")
)

// CallbackFunc revokes a client's cached copy of seg; refused=true means a
// live transaction is using it and the server must wait.
type CallbackFunc func(seg proto.SegKey) (refused bool, err error)

type clientHandle struct {
	id       uint32
	name     string
	callback CallbackFunc
}

// Stats are cumulative server counters (experiment E6 reads them).
type Stats struct {
	Messages         int64 // client requests handled
	SlottedFetches   int64
	DataFetches      int64
	LargeFetches     int64
	Commits          int64
	Aborts           int64
	Callbacks        int64
	CallbackRefusals int64
	PagesWritten     int64
	SnapFetches      int64 // as-of segment fetches served to snapshots

	// WAL counters (group commit, experiment E11): Syncs stays far below
	// Commits under concurrency because committers share fsyncs.
	WALAppends        int64
	WALFlushes        int64
	WALSyncs          int64
	WALGroupedCommits int64
}

// Server is one BeSS server.
//
// Locking is striped per concern so fetches, lock calls, and commits from
// different clients do not contend on one server-wide mutex: areaMu guards
// the area table (read-mostly), clientMu the client registry, copyMu the
// cached-copy table, and the active-transaction map is the sharded txs
// table. None of these locks is ever held while acquiring another; the
// permitted nesting order, should one ever be introduced, is declared in
// lockorder.go and enforced by cmd/bess-vet and `-tags lockcheck` builds.
type Server struct {
	host uint16
	dir  string // "" = in-memory

	areaMu lockcheck.RWMutex
	areas  map[uint32]*area.Area // guarded by areaMu

	clientMu   lockcheck.Mutex
	clients    map[uint32]*clientHandle // guarded by clientMu
	nextClient uint32                   // guarded by clientMu

	copyMu lockcheck.Mutex
	copies map[proto.SegKey]map[uint32]bool // guarded by copyMu

	// The snapshot registry is copy-on-write: writers (open/close, rare)
	// mutate the map under snapMu and publish an immutable copy to
	// snapView; readers (snapStamp, on every SnapFetchSeg) load the view
	// with no lock at all — the snapshot read path must stay lock-free.
	snapMu    lockcheck.Mutex
	snapshots map[uint64]*snapEntry                 // guarded by snapMu
	snapView  atomic.Pointer[map[uint64]*snapEntry] // immutable published copy

	txs txTable

	closed atomic.Bool

	// Silent-corruption state (corrupt.go). These are plain (unranked)
	// mutexes: none is ever held while taking a ranked server lock.
	quarMu        sync.Mutex
	quarantined   map[proto.SegKey]string // guarded by quarMu
	repairMu      sync.Mutex              // serializes WAL-replay repairs
	scrubMu       sync.Mutex
	scrubStarted  bool          // guarded by scrubMu
	scrubStop     chan struct{} // created at open; closed once by StopScrub
	scrubDone     chan struct{} // closed by the scrubber goroutine on exit
	scrubStopOnce sync.Once
	scrubPaused   atomic.Bool
	scrubEvery    time.Duration // set before the scrubber starts
	scrubPace     time.Duration // set before the scrubber starts
	scrubCtr      struct {
		segsChecked, pagesVerified, corruptions, repaired, quarantined atomic.Int64
	}

	// media, when non-nil, supplies the durable devices instead of dir
	// (OpenMedia: fault-injection harnesses run the full stack over
	// simulated stores).
	media *Media

	cat   *catalog
	log   *wal.Log
	locks *lock.Manager
	txm   *tx.Manager
	vs    *cache.VersionStore
	hk    *hooks.Registry

	nextTx atomic.Uint64

	stats struct {
		messages, slottedFetches, dataFetches, largeFetches atomic.Int64
		commits, aborts, callbacks, refusals, pagesWritten  atomic.Int64
		snapFetches                                         atomic.Int64
	}

	// CallbackTimeout bounds revocation waits (paper: timeouts detect
	// distributed deadlock).
	CallbackTimeout time.Duration
}

// NewMem creates an in-memory server (tests, benches).
func NewMem(host uint16) *Server {
	s, err := open("", host)
	if err != nil {
		panic(err) // memory backing cannot fail
	}
	return s
}

// Open creates or reopens a file-backed server rooted at dir, running
// ARIES restart over its log.
func Open(dir string, host uint16) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return open(dir, host)
}

// Media supplies the durable devices for OpenMedia: a WAL backing plus a
// factory invoked for each storage area the server attaches. It lets fault
// harnesses (experiment E19) run the full server stack — commit, WAL,
// checksums, repair — over simulated media with injected corruption. The
// catalog stays in memory: a Media server's metadata does not survive it.
type Media struct {
	Log     wal.Backing
	NewArea func(id uint32) (area.Store, error)
}

// OpenMedia creates a server over the given devices (see Media).
func OpenMedia(m Media, host uint16) (*Server, error) {
	s, err := open("", host)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(m.Log)
	if err != nil {
		return nil, err
	}
	s.log = log
	s.media = &m
	// Rebind the managers to the real log (open("") wired a throwaway
	// in-memory one), and the version store to the new tx manager.
	s.txm = tx.NewManager(s.log, s.locks, s, s.hk)
	s.vs = cache.NewVersionStore(s.txm.OldestSnapshot)
	s.txm.SetCommitHook(s.vs.CommitTx)
	s.txm.SetAbortHook(s.vs.AbortTx)
	if nl := s.log.NextLSN(); nl > 0 {
		s.txm.SeedCommitStamp(nl - 1)
	}
	return s, nil
}

func open(dir string, host uint16) (*Server, error) {
	s := &Server{
		host:            host,
		dir:             dir,
		areas:           make(map[uint32]*area.Area),
		clients:         make(map[uint32]*clientHandle),
		copies:          make(map[proto.SegKey]map[uint32]bool),
		locks:           lock.NewManager(),
		hk:              hooks.NewRegistry(),
		CallbackTimeout: 2 * time.Second,
	}
	s.areaMu.Init("Server.areaMu", rankAreaMu)
	s.clientMu.Init("Server.clientMu", rankClientMu)
	s.copyMu.Init("Server.copyMu", rankCopyMu)
	s.txs.init()
	s.scrubStop = make(chan struct{})
	s.scrubDone = make(chan struct{})
	s.locks.DefaultTimeout = 5 * time.Second
	var err error
	if dir == "" {
		s.cat = newCatalog("")
		s.log = wal.NewMem()
	} else {
		s.cat, err = loadCatalog(catalogPath(dir))
		if err != nil {
			return nil, err
		}
		s.log, err = wal.OpenFile(filepath.Join(dir, "wal.log"))
		if err != nil {
			return nil, err
		}
		// Open every known area.
		for _, aid := range s.cat.areaIDs() {
			a, err := area.OpenFile(s.areaPath(aid))
			if err != nil {
				return nil, fmt.Errorf("server: open area %d: %w", aid, err)
			}
			s.areas[aid] = a
		}
		// Restart: repeat history, roll back losers; in-doubt 2PC branches
		// are adopted below so the coordinator's decision can complete them.
		st, err := wal.Recover(s.log, s)
		if err != nil {
			return nil, fmt.Errorf("server: recovery: %w", err)
		}
		s.txm = tx.NewManager(s.log, s.locks, s, s.hk)
		for _, id := range st.InDoubt {
			s.txs.put(id, s.txm.AdoptPrepared(id, st.InDoubtLast[id]), 0)
		}
	}
	if s.txm == nil {
		s.txm = tx.NewManager(s.log, s.locks, s, s.hk)
	}
	// Multiversion reads (DESIGN.md §7): the version store retains
	// superseded segment images while snapshots are open, fed by the tx
	// commit/abort hooks and trimmed at the oldest-snapshot watermark. The
	// version clock restarts above every pre-crash commit.
	s.snapMu.Init("Server.snapMu", rankSnapMu)
	s.snapshots = make(map[uint64]*snapEntry)
	s.vs = cache.NewVersionStore(s.txm.OldestSnapshot)
	s.txm.SetCommitHook(s.vs.CommitTx)
	s.txm.SetAbortHook(s.vs.AbortTx)
	if nl := s.log.NextLSN(); nl > 0 {
		s.txm.SeedCommitStamp(nl - 1)
	}
	s.nextTx.Store(uint64(host)<<48 | 1)
	return s, nil
}

func (s *Server) areaPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("area-%d.bess", id))
}

// Host returns the server's host number (embedded in OIDs).
func (s *Server) Host() uint16 { return s.host }

// SetLockTimeout adjusts how long lock acquisitions wait before the
// timeout-based (distributed) deadlock detection gives up (paper §3).
func (s *Server) SetLockTimeout(d time.Duration) { s.locks.DefaultTimeout = d }

// Hooks exposes the server's hook registry ("value added" code registers
// commit counters, compression, etc.).
func (s *Server) Hooks() *hooks.Registry { return s.hk }

// Log exposes the WAL (checkpointing, tools).
func (s *Server) Log() *wal.Log { return s.log }

// Snapshot returns cumulative statistics.
func (s *Server) Snapshot() Stats {
	ls := s.log.Stats()
	return Stats{
		Messages:         s.stats.messages.Load(),
		SlottedFetches:   s.stats.slottedFetches.Load(),
		DataFetches:      s.stats.dataFetches.Load(),
		LargeFetches:     s.stats.largeFetches.Load(),
		Commits:          s.stats.commits.Load(),
		Aborts:           s.stats.aborts.Load(),
		Callbacks:        s.stats.callbacks.Load(),
		CallbackRefusals: s.stats.refusals.Load(),
		PagesWritten:     s.stats.pagesWritten.Load(),
		SnapFetches:      s.stats.snapFetches.Load(),

		WALAppends:        ls.Appends,
		WALFlushes:        ls.Flushes,
		WALSyncs:          ls.Syncs,
		WALGroupedCommits: ls.GroupedCommits,
	}
}

// --- wal.Pager over the storage areas ---

// lookupArea returns the open area with the given id, or nil.
func (s *Server) lookupArea(id uint32) *area.Area {
	s.areaMu.RLock()
	a := s.areas[id]
	s.areaMu.RUnlock()
	return a
}

// ReadPage implements wal.Pager.
func (s *Server) ReadPage(id page.ID, buf []byte) error {
	a := s.lookupArea(uint32(id.Area))
	if a == nil {
		return ErrNoArea
	}
	return a.ReadPage(id.Page, buf)
}

// Write-ahead ordering (DESIGN.md §4f). The server package opts into
// bess-vet's walorder analyzer: every call to Server.WritePage — the
// page-store choke point for logged mutations — must be dominated on its
// path by a WAL append (directly, or through a callee like tx.Tx.LogUpdate
// whose call-graph summary proves one), and every call to
// Server.logAndApply must be preceded in the same function by a
// VersionStore.StageUpdate capture, so open snapshots always see the
// pre-update image staged before the first page of the overwrite lands.
// The walcheck build tag enforces the same log-before-data contract at
// runtime (internal/walcheck).
//
//bess:walorder
//bess:walsink Server.WritePage
//bess:walorder capture=VersionStore.StageUpdate mutate=Server.logAndApply

// WritePage implements wal.Pager. This is the page-store choke point for
// every logged mutation: under `-tags walcheck` the store asserts that a
// covering log record was appended first (internal/walcheck).
func (s *Server) WritePage(id page.ID, data []byte) error {
	a := s.lookupArea(uint32(id.Area))
	if a == nil {
		return ErrNoArea
	}
	walcheck.NoteWrite(id)
	s.stats.pagesWritten.Add(1)
	return a.WritePage(id.Page, data)
}

// --- client registry ---

// Hello implements proto.Conn.
func (s *Server) Hello(name string) (uint32, error) {
	if s.closed.Load() {
		return 0, ErrShutdown
	}
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	s.nextClient++
	id := s.nextClient
	s.clients[id] = &clientHandle{id: id, name: name}
	return id, nil
}

// SetCallback installs the revocation path for a client (in-process clients
// pass a closure; ServePeer wires the RPC callback). The parameter is the
// raw function type so client code can wire it through a small interface
// without importing this package.
func (s *Server) SetCallback(client uint32, cb func(proto.SegKey) (bool, error)) error {
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	h := s.clients[client]
	if h == nil {
		return errUnknownName
	}
	h.callback = cb
	return nil
}

// Disconnect drops a client: its cached copies are forgotten, its live
// transactions aborted, and its open snapshots closed (unpinning the
// version watermark).
func (s *Server) Disconnect(client uint32) {
	s.closeClientSnaps(client)
	doomed := s.txs.takeOwned(client)
	s.copyMu.Lock()
	for seg, set := range s.copies {
		delete(set, client)
		if len(set) == 0 {
			delete(s.copies, seg)
		}
	}
	s.copyMu.Unlock()
	s.clientMu.Lock()
	delete(s.clients, client)
	s.clientMu.Unlock()
	for _, t := range doomed {
		_ = t.Abort()
	}
}

// --- databases, areas, segments ---

// OpenDB implements proto.Conn.
func (s *Server) OpenDB(name string, create bool) (uint32, uint16, error) {
	s.stats.messages.Add(1)
	if m, ok := s.cat.dbByName(name); ok {
		return m.ID, s.host, nil
	}
	if !create {
		return 0, 0, fmt.Errorf("server: no database %q", name)
	}
	m, err := s.cat.createDB(name)
	if err != nil {
		return 0, 0, err
	}
	if _, err := s.AddArea(m.ID); err != nil {
		return 0, 0, err
	}
	_ = s.hk.Fire(hooks.EvDatabaseOpen, name)
	return m.ID, s.host, nil
}

// AddArea implements proto.Conn: attach one more storage area to db.
func (s *Server) AddArea(db uint32) (uint32, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return 0, err
	}
	aid, err := s.cat.allocAreaID(m)
	if err != nil {
		return 0, err
	}
	var a *area.Area
	if s.media != nil {
		var st area.Store
		if st, err = s.media.NewArea(aid); err == nil {
			a, err = area.Create(st, page.AreaID(aid), 1, true)
		}
	} else if s.dir == "" {
		a, err = area.NewMem(page.AreaID(aid), 1, true)
	} else {
		a, err = area.CreateFile(s.areaPath(aid), page.AreaID(aid), 1)
	}
	if err != nil {
		return 0, err
	}
	s.areaMu.Lock()
	s.areas[aid] = a
	s.areaMu.Unlock()
	return aid, nil
}

// NewFileID implements proto.Conn.
func (s *Server) NewFileID(db uint32) (uint32, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return 0, err
	}
	s.cat.mu.Lock()
	defer s.cat.mu.Unlock()
	id := m.NextFile
	m.NextFile++
	if err := s.cat.persistLocked(); err != nil {
		return 0, err
	}
	return id, nil
}

// NewTx implements proto.Conn.
func (s *Server) NewTx() (uint64, error) {
	s.stats.messages.Add(1)
	return s.nextTx.Add(1), nil
}

// RegisterType implements proto.Conn.
func (s *Server) RegisterType(db uint32, t proto.TypeInfo) (proto.TypeInfo, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return proto.TypeInfo{}, err
	}
	return s.cat.registerType(m, t)
}

// Types implements proto.Conn.
func (s *Server) Types(db uint32) ([]proto.TypeInfo, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return nil, err
	}
	return s.cat.types(m), nil
}

// areaOf returns the db's area chosen by hint (-1 = first).
func (s *Server) areaOf(m *dbMeta, hint int) (*area.Area, uint32, error) {
	s.cat.mu.Lock()
	if len(m.Areas) == 0 {
		s.cat.mu.Unlock()
		return nil, 0, ErrNoArea
	}
	idx := 0
	if hint >= 0 {
		idx = hint % len(m.Areas)
	}
	aid := m.Areas[idx]
	s.cat.mu.Unlock()
	a := s.lookupArea(aid)
	if a == nil {
		return nil, 0, ErrNoArea
	}
	return a, aid, nil
}

// CreateSegment implements proto.Conn: allocate slotted + data runs and
// write the initial images.
func (s *Server) CreateSegment(db uint32, fileID uint32, slottedPages, dataPages, areaHint int) (proto.SegKey, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return proto.SegKey{}, err
	}
	if fileID == 0 {
		return proto.SegKey{}, errors.New("server: fileID 0 is reserved")
	}
	a, aid, err := s.areaOf(m, areaHint)
	if err != nil {
		return proto.SegKey{}, err
	}
	slStart, _, err := a.AllocSegment(slottedPages)
	if err != nil {
		return proto.SegKey{}, err
	}
	dtStart, dtGranted, err := a.AllocSegment(dataPages)
	if err != nil {
		_ = a.FreeSegment(slStart)
		return proto.SegKey{}, err
	}
	seg := segment.New(fileID, slottedPages, dtGranted, page.AreaID(aid), dtStart)
	// Attach the zeroed data section so the initial encode records its
	// checksum: the segment is verifiable from its very first read.
	seg.Data = make([]byte, dtGranted*page.Size)
	img := seg.EncodeSlotted()
	for i := 0; i < slottedPages; i++ {
		if err := a.WritePage(slStart+page.No(i), img[i*page.Size:(i+1)*page.Size]); err != nil {
			return proto.SegKey{}, err
		}
	}
	zero := make([]byte, page.Size)
	for i := 0; i < dtGranted; i++ {
		if err := a.WritePage(dtStart+page.No(i), zero); err != nil {
			return proto.SegKey{}, err
		}
	}
	key := proto.SegKey{Area: aid, Start: int64(slStart)}
	if err := s.cat.addSegment(m, &segMeta{Seg: key, FileID: fileID, SlottedPages: slottedPages}); err != nil {
		return proto.SegKey{}, err
	}
	return key, nil
}

// SegInfo implements proto.Conn.
func (s *Server) SegInfo(seg proto.SegKey) (int, error) {
	s.stats.messages.Add(1)
	sm, _, ok := s.cat.segMetaOf(seg)
	if !ok {
		return 0, ErrNoSegment
	}
	return sm.SlottedPages, nil
}

// readSeg loads, decodes, and checksum-verifies a segment's slotted image
// plus overflow. Corruption is repaired from WAL history in place, or the
// segment is quarantined (corrupt.go).
func (s *Server) readSeg(seg proto.SegKey) (*segment.Seg, []byte, []byte, error) {
	sm, _, ok := s.cat.segMetaOf(seg)
	if !ok {
		return nil, nil, nil, ErrNoSegment
	}
	return s.readSegVerified(seg, sm)
}

// readSegOnce is the raw one-attempt read under readSegVerified: the
// slotted image is verified by DecodeSlotted (header + slot-region CRCs),
// the overflow bytes against the header's recorded section checksum. On
// corruption the decoded header (when available) rides along so the caller
// can locate the damaged range.
//
//bess:verified
func (s *Server) readSegOnce(seg proto.SegKey, sm *segMeta) (*segment.Seg, []byte, []byte, error) {
	a := s.lookupArea(seg.Area)
	if a == nil {
		return nil, nil, nil, ErrNoArea
	}
	img := make([]byte, sm.SlottedPages*page.Size)
	for i := 0; i < sm.SlottedPages; i++ {
		if err := a.ReadPage(page.No(seg.Start)+page.No(i), img[i*page.Size:(i+1)*page.Size]); err != nil {
			return nil, nil, nil, err
		}
	}
	dec, err := segment.DecodeSlotted(img)
	if err != nil {
		var ce *page.CorruptError
		if errors.As(err, &ce) {
			ce.Area, ce.Page = page.AreaID(seg.Area), page.No(seg.Start)
		}
		return nil, nil, nil, err
	}
	var over []byte
	if dec.Hdr.OverPages > 0 {
		oa := s.lookupArea(uint32(dec.Hdr.OverArea))
		if oa == nil {
			return nil, nil, nil, ErrNoArea
		}
		over = make([]byte, int(dec.Hdr.OverPages)*page.Size)
		for i := 0; i < int(dec.Hdr.OverPages); i++ {
			if err := oa.ReadPage(dec.Hdr.OverStart+page.No(i), over[i*page.Size:(i+1)*page.Size]); err != nil {
				return nil, nil, nil, err
			}
		}
		if err := dec.VerifyOverflow(over); err != nil {
			return dec, nil, nil, err
		}
		dec.Overflow = over
	}
	return dec, img, over, nil
}

// recordCopy notes that client caches seg so callbacks reach it.
func (s *Server) recordCopy(client uint32, seg proto.SegKey) {
	if client == 0 {
		return
	}
	s.copyMu.Lock()
	set := s.copies[seg]
	if set == nil {
		set = make(map[uint32]bool)
		s.copies[seg] = set
	}
	set[client] = true
	s.copyMu.Unlock()
}

// readData loads the data segment named by a decoded slotted header.
func (s *Server) readData(dec *segment.Seg) ([]byte, error) {
	da := s.lookupArea(uint32(dec.Hdr.DataArea))
	if da == nil {
		return nil, ErrNoArea
	}
	data := make([]byte, int(dec.Hdr.DataPages)*page.Size)
	for i := 0; i < int(dec.Hdr.DataPages); i++ {
		if err := da.ReadPage(dec.Hdr.DataStart+page.No(i), data[i*page.Size:(i+1)*page.Size]); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// FetchSlotted implements proto.Conn; it also records the client in the
// copy table so callbacks reach it.
func (s *Server) FetchSlotted(client uint32, seg proto.SegKey) ([]byte, []byte, error) {
	s.stats.messages.Add(1)
	s.stats.slottedFetches.Add(1)
	_, img, over, err := s.readSeg(seg)
	if err != nil {
		return nil, nil, err
	}
	s.recordCopy(client, seg)
	_ = s.hk.Fire(hooks.EvSegmentFault, seg)
	return img, over, nil
}

// FetchData implements proto.Conn.
func (s *Server) FetchData(client uint32, seg proto.SegKey) ([]byte, error) {
	s.stats.messages.Add(1)
	s.stats.dataFetches.Add(1)
	dec, _, _, err := s.readSeg(seg)
	if err != nil {
		return nil, err
	}
	return s.readDataVerified(seg, dec)
}

// FetchSeg implements proto.Conn: the combined cold-touch fetch. One message
// returns what a FetchSlotted + FetchData pair would, so a first access to a
// segment costs a single round trip. Both per-kind fetch counters still
// advance (E3's fault accounting counts segment faults, not messages), but
// the message counter advances once.
func (s *Server) FetchSeg(client uint32, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	s.stats.messages.Add(1)
	s.stats.slottedFetches.Add(1)
	s.stats.dataFetches.Add(1)
	dec, img, over, err := s.readSeg(seg)
	if err != nil {
		return nil, nil, nil, err
	}
	data, err := s.readDataVerified(seg, dec)
	if err != nil {
		return nil, nil, nil, err
	}
	s.recordCopy(client, seg)
	_ = s.hk.Fire(hooks.EvSegmentFault, seg)
	return img, over, data, nil
}

// FetchLarge implements proto.Conn: the descriptor names the run holding
// the object's pages.
func (s *Server) FetchLarge(client uint32, seg proto.SegKey, slot int) ([]byte, error) {
	s.stats.messages.Add(1)
	s.stats.largeFetches.Add(1)
	dec, _, _, err := s.readSeg(seg)
	if err != nil {
		return nil, err
	}
	if !dec.Live(slot) || dec.Slots[slot].Kind != segment.KindLarge {
		return nil, segment.ErrBadSlot
	}
	d, err := dec.Descriptor(slot, largeDescSize)
	if err != nil {
		return nil, err
	}
	areaID, start, pages, stored, crc := decodeLargeDesc(d)
	buf, err := s.readLargeVerified(seg, areaID, start, pages, stored, crc)
	if err != nil {
		return nil, err
	}
	content := buf[:stored]
	// Decompression and similar user transforms run here (§2.4); they must
	// restore the object's logical size.
	if err := s.hk.FireData(hooks.EvObjectFetch, seg, &content); err != nil {
		return nil, err
	}
	if len(content) != int(dec.Slots[slot].Size) {
		return nil, fmt.Errorf("server: fetch hooks produced %d bytes, object is %d", len(content), dec.Slots[slot].Size)
	}
	return content, nil
}

// Resolve implements proto.Conn.
func (s *Server) Resolve(db uint32, headerOff uint64) (proto.SegKey, int, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return proto.SegKey{}, 0, err
	}
	areaID := uint32(headerOff >> 32)
	byteOff := headerOff & 0xFFFFFFFF
	key, ok := s.cat.resolve(m, areaID, byteOff)
	if !ok {
		return proto.SegKey{}, 0, ErrNoSegment
	}
	rel := byteOff - uint64(key.Start)*page.Size
	slot, err := segment.SlotIndexForOffset(rel)
	if err != nil {
		return proto.SegKey{}, 0, err
	}
	return key, slot, nil
}

// SegmentsOf implements proto.Conn.
func (s *Server) SegmentsOf(db uint32, fileID uint32) ([]proto.SegKey, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return nil, err
	}
	return s.cat.segmentsOf(m, fileID), nil
}

// Released implements proto.Conn: the client dropped its cached copy.
func (s *Server) Released(client uint32, seg proto.SegKey) error {
	s.stats.messages.Add(1)
	s.dropCopy(seg, client)
	return nil
}

// dropCopy forgets one client's cached copy of seg.
func (s *Server) dropCopy(seg proto.SegKey, client uint32) {
	s.copyMu.Lock()
	if set := s.copies[seg]; set != nil {
		delete(set, client)
		if len(set) == 0 {
			delete(s.copies, seg)
		}
	}
	s.copyMu.Unlock()
}

// --- locking with callbacks ---

func segLockName(seg proto.SegKey) lock.Name {
	return lock.Name{Kind: lock.KindSegment, Q0: uint64(seg.Area), Q1: uint64(seg.Start)}
}

// ensureTx returns the live server-side branch for id, creating it lazily.
func (s *Server) ensureTx(client uint32, id uint64) *tx.Tx {
	return s.txs.ensure(id, client, func() *tx.Tx { return s.txm.BeginWithID(id) })
}

// Lock implements proto.Conn. Exclusive locks drive callback revocation of
// other clients' cached copies (callback locking, §3).
func (s *Server) Lock(client uint32, txid uint64, seg proto.SegKey, mode proto.LockMode) error {
	s.stats.messages.Add(1)
	t := s.ensureTx(client, txid)
	lm := lock.Mode(mode)
	if err := t.Lock(segLockName(seg), lm); err != nil {
		return err
	}
	if lm == lock.X || lm == lock.SIX || lm == lock.IX {
		if err := s.revokeCopies(seg, client); err != nil {
			return err
		}
	}
	return nil
}

// LockObject implements proto.Conn: software object-level locking
// (§2.3/[27]). The object lock is taken under the matching intention lock
// on its segment. It is a *logical* lock: cache revocation still happens
// when an actual write escalates to the segment X lock, so readers of
// other objects in the segment keep their copies.
func (s *Server) LockObject(client uint32, txid uint64, seg proto.SegKey, slot int, mode proto.LockMode) error {
	s.stats.messages.Add(1)
	t := s.ensureTx(client, txid)
	lm := lock.Mode(mode)
	intent := lock.IS
	if lm == lock.X || lm == lock.IX || lm == lock.SIX {
		intent = lock.IX
	}
	if err := t.Lock(segLockName(seg), intent); err != nil {
		return err
	}
	return t.Lock(lock.ObjectName(seg.Area, seg.Start, slot), lm)
}

// revokeCopies calls back every other client caching seg until they all
// comply or the timeout passes.
func (s *Server) revokeCopies(seg proto.SegKey, except uint32) error {
	deadline := time.Now().Add(s.CallbackTimeout)
	for {
		s.copyMu.Lock()
		cids := make([]uint32, 0, len(s.copies[seg]))
		for cid := range s.copies[seg] {
			if cid != except {
				cids = append(cids, cid)
			}
		}
		s.copyMu.Unlock()
		var targets []*clientHandle
		s.clientMu.Lock()
		var unreachable []uint32
		for _, cid := range cids {
			if h := s.clients[cid]; h != nil && h.callback != nil {
				targets = append(targets, h)
			} else {
				unreachable = append(unreachable, cid)
			}
		}
		s.clientMu.Unlock()
		// No way to reach them (disconnected): forget the copies.
		for _, cid := range unreachable {
			s.dropCopy(seg, cid)
		}
		if len(targets) == 0 {
			return nil
		}
		anyRefused := false
		for _, h := range targets {
			s.stats.callbacks.Add(1)
			refused, err := h.callback(seg)
			if err != nil {
				// Client unreachable: drop it.
				s.Disconnect(h.id)
				continue
			}
			if refused {
				s.stats.refusals.Add(1)
				anyRefused = true
				continue
			}
			s.dropCopy(seg, h.id)
		}
		if !anyRefused {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrCallback
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- commit / abort / 2PC ---

// applySegImages logs and applies the shipped images under t, allocating
// new runs when a segment's data or overflow grew (server-side relocation).
func (s *Server) applySegImages(t *tx.Tx, segs []proto.SegImage) error {
	for _, si := range segs {
		if err := s.applyOne(t, si); err != nil {
			return err
		}
	}
	// No force here: the single force of the commit/prepare record's LSN
	// (tx.Commit / tx.Prepare) covers these buffered records, so a commit
	// never pays a second fsync or waits on another transaction's tail.
	return nil
}

func (s *Server) applyOne(t *tx.Tx, si proto.SegImage) error {
	sm, _, ok := s.cat.segMetaOf(si.Seg)
	if !ok {
		return ErrNoSegment
	}
	newSeg, err := segment.DecodeSlotted(si.Slotted)
	if err != nil {
		return fmt.Errorf("server: commit image: %w", err)
	}
	cur, curImg, curOver, err := s.readSeg(si.Seg)
	if err != nil {
		return err
	}
	// Stage the update with the version store before any page is
	// overwritten: snapshot reads of this segment wait out the overwrite
	// window, and with a snapshot open the pre-update image is captured for
	// its chain (data section read only when the copy will actually happen).
	capture := s.txm.SnapshotCount() > 0
	var curData []byte
	if capture {
		if curData, err = s.readDataVerified(si.Seg, cur); err != nil {
			return err
		}
	}
	s.vs.StageUpdate(t.ID(), vkeyOf(si.Seg),
		cache.VImage{Slotted: curImg, Overflow: curOver, Data: curData}, capture)
	// Grown data segment? Allocate a fresh run and point the header at it
	// — on-the-fly relocation; existing references are unaffected because
	// they name slots.
	if int(newSeg.Hdr.DataPages) > int(cur.Hdr.DataPages) ||
		newSeg.Hdr.DataStart != cur.Hdr.DataStart {
		a, aid, err2 := s.areaForAlloc(si.Seg.Area)
		if err2 != nil {
			return err2
		}
		start, granted, err2 := a.AllocSegment(int(newSeg.Hdr.DataPages))
		if err2 != nil {
			return err2
		}
		newSeg.Hdr.DataArea = page.AreaID(aid)
		newSeg.Hdr.DataStart = start
		newSeg.Hdr.DataPages = uint32(granted)
		if len(si.Data) < granted*page.Size {
			grown := make([]byte, granted*page.Size)
			copy(grown, si.Data)
			si.Data = grown
		}
	} else {
		newSeg.Hdr.DataArea = cur.Hdr.DataArea
		newSeg.Hdr.DataStart = cur.Hdr.DataStart
	}
	// Overflow growth likewise.
	if int(newSeg.Hdr.OverPages) > int(cur.Hdr.OverPages) {
		a, aid, err2 := s.areaForAlloc(si.Seg.Area)
		if err2 != nil {
			return err2
		}
		start, granted, err2 := a.AllocSegment(int(newSeg.Hdr.OverPages))
		if err2 != nil {
			return err2
		}
		newSeg.Hdr.OverArea = page.AreaID(aid)
		newSeg.Hdr.OverStart = start
		newSeg.Hdr.OverPages = uint32(granted)
		if len(si.Overflow) < granted*page.Size {
			grown := make([]byte, granted*page.Size)
			copy(grown, si.Overflow)
			si.Overflow = grown
		}
	} else if cur.Hdr.OverPages > 0 {
		newSeg.Hdr.OverArea = cur.Hdr.OverArea
		newSeg.Hdr.OverStart = cur.Hdr.OverStart
		newSeg.Hdr.OverPages = cur.Hdr.OverPages
	}
	// The server is authoritative for section checksums: a client-encoded
	// header may carry CRCs that predate server-side relocation padding, or
	// cover a cached data section this commit does not ship. Recompute over
	// the bytes that will actually land on disk; carry the current
	// (verified) CRC forward when the section is untouched.
	if len(si.Data) > 0 {
		if n := int(newSeg.Hdr.DataPages) * page.Size; len(si.Data) >= n {
			newSeg.Hdr.DataCRC = page.Checksum(si.Data[:n])
			newSeg.Hdr.CRCFlags |= segment.CRCData
		} else {
			newSeg.Hdr.CRCFlags &^= segment.CRCData // partial ship: unverifiable
		}
	} else if cur.Hdr.CRCFlags&segment.CRCData != 0 {
		newSeg.Hdr.DataCRC = cur.Hdr.DataCRC
		newSeg.Hdr.CRCFlags |= segment.CRCData
	} else {
		newSeg.Hdr.CRCFlags &^= segment.CRCData
	}
	if len(si.Overflow) > 0 && newSeg.Hdr.OverPages > 0 {
		if n := int(newSeg.Hdr.OverPages) * page.Size; len(si.Overflow) >= n {
			newSeg.Hdr.OverCRC = page.Checksum(si.Overflow[:n])
			newSeg.Hdr.CRCFlags |= segment.CRCOver
		} else {
			newSeg.Hdr.CRCFlags &^= segment.CRCOver
		}
	} else if cur.Hdr.OverPages > 0 && newSeg.Hdr.OverStart == cur.Hdr.OverStart &&
		cur.Hdr.CRCFlags&segment.CRCOver != 0 {
		newSeg.Hdr.OverCRC = cur.Hdr.OverCRC
		newSeg.Hdr.CRCFlags |= segment.CRCOver
	} else {
		newSeg.Hdr.CRCFlags &^= segment.CRCOver
	}
	// Re-encode with the final geometry and write everything with logging.
	img := newSeg.EncodeSlotted()
	if err := s.logAndApply(t, si.Seg.Area, page.No(si.Seg.Start), img[:sm.SlottedPages*page.Size]); err != nil {
		return err
	}
	if len(si.Data) > 0 {
		n := int(newSeg.Hdr.DataPages) * page.Size
		if n > len(si.Data) {
			n = len(si.Data)
		}
		if err := s.logAndApply(t, uint32(newSeg.Hdr.DataArea), newSeg.Hdr.DataStart, si.Data[:n]); err != nil {
			return err
		}
	}
	if len(si.Overflow) > 0 && newSeg.Hdr.OverPages > 0 {
		n := int(newSeg.Hdr.OverPages) * page.Size
		if n > len(si.Overflow) {
			n = len(si.Overflow)
		}
		if err := s.logAndApply(t, uint32(newSeg.Hdr.OverArea), newSeg.Hdr.OverStart, si.Overflow[:n]); err != nil {
			return err
		}
	}
	return nil
}

// areaForAlloc picks the area for a relocation allocation (same area as the
// slotted segment).
func (s *Server) areaForAlloc(areaID uint32) (*area.Area, uint32, error) {
	a := s.lookupArea(areaID)
	if a == nil {
		return nil, 0, ErrNoArea
	}
	return a, areaID, nil
}

// logAndApply writes page images with full-page update records, skipping
// pages whose bytes are unchanged.
func (s *Server) logAndApply(t *tx.Tx, areaID uint32, start page.No, data []byte) error {
	n := (len(data) + page.Size - 1) / page.Size
	before := make([]byte, page.Size)
	for i := 0; i < n; i++ {
		pid := page.ID{Area: page.AreaID(areaID), Page: start + page.No(i)}
		end := (i + 1) * page.Size
		if end > len(data) {
			end = len(data)
		}
		after := data[i*page.Size : end]
		if err := s.ReadPage(pid, before); err != nil {
			return err
		}
		if string(before[:len(after)]) == string(after) {
			continue
		}
		if _, err := t.LogUpdate(pid, 0, before[:len(after)], after); err != nil {
			return err
		}
		full := before
		copy(full, after)
		if err := s.WritePage(pid, full); err != nil {
			return err
		}
		// Reset scratch for the next page read.
		before = make([]byte, page.Size)
	}
	return nil
}

// requireLocks verifies the tx holds X (or SIX) on each shipped segment.
func (s *Server) requireLocks(txid uint64, segs []proto.SegImage) error {
	for _, si := range segs {
		m := s.locks.Holds(lock.TxID(txid), segLockName(si.Seg))
		if m != lock.X && m != lock.SIX {
			return fmt.Errorf("%w: %v holds %v on %v", ErrNotLocked, txid, m, si.Seg)
		}
	}
	return nil
}

// Commit implements proto.Conn: single-server commit of the shipped images.
func (s *Server) Commit(client uint32, txid uint64, segs []proto.SegImage) error {
	s.stats.messages.Add(1)
	if len(segs) > 0 {
		if err := s.requireLocks(txid, segs); err != nil {
			return err
		}
	}
	t := s.ensureTx(client, txid)
	if err := s.applySegImages(t, segs); err != nil {
		_ = t.Abort()
		s.forgetTx(txid)
		return err
	}
	if err := t.Commit(); err != nil {
		// The branch is dead either way: drop it so the txid does not leak
		// in the active table, and unstage its version-store entries so
		// snapshot reads do not wait on a commit that will never publish.
		s.vs.AbortTx(txid)
		s.forgetTx(txid)
		return err
	}
	s.forgetTx(txid)
	s.stats.commits.Add(1)
	return nil
}

// Abort implements proto.Conn.
func (s *Server) Abort(client uint32, txid uint64) error {
	s.stats.messages.Add(1)
	t := s.txs.get(txid)
	if t == nil {
		return nil // nothing ever reached the server: trivial abort
	}
	err := t.Abort()
	s.forgetTx(txid)
	s.stats.aborts.Add(1)
	return err
}

// Prepare implements proto.Conn: 2PC phase-1 vote. Images are logged and
// applied; the branch stays prepared (locks held) until Decide.
func (s *Server) Prepare(client uint32, txid uint64, segs []proto.SegImage) error {
	s.stats.messages.Add(1)
	if len(segs) > 0 {
		if err := s.requireLocks(txid, segs); err != nil {
			return err
		}
	}
	t := s.ensureTx(client, txid)
	if err := s.applySegImages(t, segs); err != nil {
		_ = t.Abort()
		s.forgetTx(txid)
		return err
	}
	return t.Prepare()
}

// Decide implements proto.Conn: 2PC phase-2 decision delivery.
func (s *Server) Decide(txid uint64, commit bool) error {
	s.stats.messages.Add(1)
	t := s.txs.get(txid)
	if t == nil {
		return ErrUnknownTx
	}
	var err error
	if commit {
		err = t.Commit()
		s.stats.commits.Add(1)
	} else {
		err = t.Abort()
		s.stats.aborts.Add(1)
	}
	s.forgetTx(txid)
	return err
}

func (s *Server) forgetTx(txid uint64) {
	s.txs.forget(txid)
}

// --- large objects ---

// largeDescSize is the byte size of a transparent large object descriptor:
// (area, start, pages, stored bytes, content CRC-32C). The stored byte
// count may differ from the slot's logical object size when flush-side
// hooks (compression) transformed the content; the checksum covers exactly
// the stored bytes, so FetchLarge verifies the run end to end before any
// fetch-side hook runs.
const largeDescSize = 24

func encodeLargeDesc(areaID uint32, start page.No, pages, stored int, crc uint32) []byte {
	d := make([]byte, largeDescSize)
	d[0] = byte(areaID >> 24)
	d[1] = byte(areaID >> 16)
	d[2] = byte(areaID >> 8)
	d[3] = byte(areaID)
	v := uint64(start)
	for i := 0; i < 8; i++ {
		d[4+i] = byte(v >> (56 - 8*i))
	}
	p := uint32(pages)
	d[12] = byte(p >> 24)
	d[13] = byte(p >> 16)
	d[14] = byte(p >> 8)
	d[15] = byte(p)
	s := uint32(stored)
	d[16] = byte(s >> 24)
	d[17] = byte(s >> 16)
	d[18] = byte(s >> 8)
	d[19] = byte(s)
	d[20] = byte(crc >> 24)
	d[21] = byte(crc >> 16)
	d[22] = byte(crc >> 8)
	d[23] = byte(crc)
	return d
}

func decodeLargeDesc(d []byte) (areaID uint32, start int64, pages, stored int, crc uint32) {
	areaID = uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(d[4+i])
	}
	start = int64(v)
	pages = int(uint32(d[12])<<24 | uint32(d[13])<<16 | uint32(d[14])<<8 | uint32(d[15]))
	stored = int(uint32(d[16])<<24 | uint32(d[17])<<16 | uint32(d[18])<<8 | uint32(d[19]))
	crc = uint32(d[20])<<24 | uint32(d[21])<<16 | uint32(d[22])<<8 | uint32(d[23])
	return
}

// CreateLarge implements proto.Conn: store a transparent large object
// (≤64KB) and add its descriptor slot to seg, transactionally.
func (s *Server) CreateLarge(client uint32, txid uint64, seg proto.SegKey, typ uint32, content []byte) (int, error) {
	s.stats.messages.Add(1)
	if len(content) > segment.MaxTransparentLarge {
		return 0, ErrTooLarge
	}
	logicalSize := len(content)
	// Flush-side user transforms (compression, §2.4) may change the stored
	// byte count; the slot keeps the logical size.
	if err := s.hk.FireData(hooks.EvObjectFlush, seg, &content); err != nil {
		return 0, err
	}
	t := s.ensureTx(client, txid)
	if err := t.Lock(segLockName(seg), lock.X); err != nil {
		return 0, err
	}
	if err := s.revokeCopies(seg, client); err != nil {
		return 0, err
	}
	dec, curImg, curOver, err := s.readSeg(seg)
	if err != nil {
		return 0, err
	}
	sm, _, _ := s.cat.segMetaOf(seg)
	// Stage with the version store before any page of seg is overwritten,
	// exactly as applyOne does for commit images: without this, an open
	// snapshot's Recheck passes (the stamp never advanced) while the
	// descriptor pages change underneath it — a torn as-of read.
	capture := s.txm.SnapshotCount() > 0
	var curData []byte
	if capture {
		if curData, err = s.readDataVerified(seg, dec); err != nil {
			return 0, err
		}
	}
	s.vs.StageUpdate(t.ID(), vkeyOf(seg),
		cache.VImage{Slotted: curImg, Overflow: curOver, Data: curData}, capture)
	// Store the content in its own run.
	a, aid, err := s.areaForAlloc(seg.Area)
	if err != nil {
		return 0, err
	}
	pages := (len(content) + page.Size - 1) / page.Size
	if pages == 0 {
		pages = 1
	}
	start, granted, err := a.AllocSegment(pages)
	if err != nil {
		return 0, err
	}
	padded := make([]byte, granted*page.Size)
	copy(padded, content)
	if err := s.logAndApply(t, aid, start, padded); err != nil {
		return 0, err
	}
	// Grow overflow if needed and add the descriptor slot.
	if dec.Hdr.OverPages == 0 {
		oStart, oGranted, err2 := a.AllocSegment(1)
		if err2 != nil {
			return 0, err2
		}
		dec.EnsureOverflow(oGranted)
		dec.Hdr.OverArea = page.AreaID(aid)
		dec.Hdr.OverStart = oStart
		dec.Hdr.OverPages = uint32(oGranted)
	}
	slot, err := dec.CreateDescriptor(segment.KindLarge, segment.TypeID(typ), uint32(logicalSize),
		encodeLargeDesc(aid, start, granted, len(content), page.Checksum(content)))
	if err != nil {
		return 0, err
	}
	img := dec.EncodeSlotted()
	if err := s.logAndApply(t, seg.Area, page.No(seg.Start), img[:sm.SlottedPages*page.Size]); err != nil {
		return 0, err
	}
	if err := s.logAndApply(t, uint32(dec.Hdr.OverArea), dec.Hdr.OverStart, dec.Overflow); err != nil {
		return 0, err
	}
	// Force only this transaction's records (WAL rule for the page writes
	// above), not every other committer's unforced tail.
	if err := s.log.Flush(t.LastLSN()); err != nil {
		return 0, err
	}
	return slot, nil
}

// --- raw runs (very-large-object substrate) ---

// AllocRun implements proto.Conn.
func (s *Server) AllocRun(db uint32, nPages int) (uint32, int64, int, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return 0, 0, 0, err
	}
	a, aid, err := s.areaOf(m, -1)
	if err != nil {
		return 0, 0, 0, err
	}
	start, granted, err := a.AllocSegment(nPages)
	if err != nil {
		return 0, 0, 0, err
	}
	return aid, int64(start), granted, nil
}

// FreeRun implements proto.Conn.
func (s *Server) FreeRun(db uint32, areaID uint32, start int64) error {
	s.stats.messages.Add(1)
	a := s.lookupArea(areaID)
	if a == nil {
		return ErrNoArea
	}
	return a.FreeSegment(page.No(start))
}

// ReadRun implements proto.Conn.
func (s *Server) ReadRun(db uint32, areaID uint32, start int64, nPages int) ([]byte, error) {
	s.stats.messages.Add(1)
	a := s.lookupArea(areaID)
	if a == nil {
		return nil, ErrNoArea
	}
	buf := make([]byte, nPages*page.Size)
	for i := 0; i < nPages; i++ {
		if err := a.ReadPage(page.No(start)+page.No(i), buf[i*page.Size:(i+1)*page.Size]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// WriteRun implements proto.Conn.
func (s *Server) WriteRun(db uint32, areaID uint32, start int64, data []byte) error {
	s.stats.messages.Add(1)
	a := s.lookupArea(areaID)
	if a == nil {
		return ErrNoArea
	}
	n := len(data) / page.Size
	for i := 0; i < n; i++ {
		if err := a.WritePage(page.No(start)+page.No(i), data[i*page.Size:(i+1)*page.Size]); err != nil {
			return err
		}
	}
	return nil
}

// --- names ---

// NameBind implements proto.Conn.
func (s *Server) NameBind(db uint32, name string, o oid.OID) error {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return err
	}
	d, err := s.cat.namesDir(m)
	if err != nil {
		return err
	}
	if err := d.Bind(name, o); err != nil {
		return err
	}
	return s.cat.persistNames()
}

// NameLookup implements proto.Conn.
func (s *Server) NameLookup(db uint32, name string) (oid.OID, error) {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return oid.Nil, err
	}
	d, err := s.cat.namesDir(m)
	if err != nil {
		return oid.Nil, err
	}
	return d.Lookup(name)
}

// NameUnbind implements proto.Conn.
func (s *Server) NameUnbind(db uint32, name string) error {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return err
	}
	d, err := s.cat.namesDir(m)
	if err != nil {
		return err
	}
	if err := d.Unbind(name); err != nil {
		return err
	}
	return s.cat.persistNames()
}

// NameRemoveOID implements proto.Conn: referential integrity on object
// deletion.
func (s *Server) NameRemoveOID(db uint32, o oid.OID) error {
	s.stats.messages.Add(1)
	m, err := s.cat.db(db)
	if err != nil {
		return err
	}
	d, err := s.cat.namesDir(m)
	if err != nil {
		return err
	}
	if d.ObjectRemoved(o) {
		return s.cat.persistNames()
	}
	return nil
}

// DBInfo summarizes one database for tools.
type DBInfo struct {
	ID       uint32
	Name     string
	Areas    []uint32
	Types    int
	Segments int
	Files    int
	Roots    []string
}

// InspectInfo is the server summary bess-inspect prints.
type InspectInfo struct {
	Databases []DBInfo
}

// Inspect reports the catalog contents.
func (s *Server) Inspect() InspectInfo {
	var out InspectInfo
	s.cat.mu.Lock()
	metas := make([]*dbMeta, 0, len(s.cat.ByID))
	for _, m := range s.cat.ByID {
		metas = append(metas, m)
	}
	s.cat.mu.Unlock()
	for _, m := range metas {
		di := DBInfo{ID: m.ID, Name: m.Name, Areas: append([]uint32(nil), m.Areas...)}
		s.cat.mu.Lock()
		di.Types = len(m.Types)
		di.Segments = len(m.Segments)
		di.Files = len(m.Files)
		s.cat.mu.Unlock()
		if d, err := s.cat.namesDir(m); err == nil {
			di.Roots = d.Names()
		}
		out.Databases = append(out.Databases, di)
	}
	return out
}

// Checkpoint writes a fuzzy checkpoint to the log.
func (s *Server) Checkpoint() error {
	_, err := s.txm.Checkpoint()
	return err
}

// Close flushes and shuts down.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.StopScrub()
	s.vs.Close()
	s.areaMu.RLock()
	areas := make([]*area.Area, 0, len(s.areas))
	for _, a := range s.areas {
		areas = append(areas, a)
	}
	s.areaMu.RUnlock()
	if err := s.log.Close(); err != nil {
		return err
	}
	for _, a := range areas {
		if err := a.Close(); err != nil {
			return err
		}
	}
	s.locks.Close()
	return nil
}

var _ proto.Conn = (*Server)(nil)
