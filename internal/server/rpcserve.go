package server

import (
	"bess/internal/oid"
	"bess/internal/proto"
	"bess/internal/rpc"
)

// ServePeer wires one connected peer to the server: every proto method gets
// an RPC handler, and the client's callback path (server→client revocation)
// is routed back over the same connection. It returns after registering;
// the peer's read loop drives everything.
//
// The hot methods — fetches, locks, commit, and the callback — use the
// binary codecs from internal/proto over raw frame bodies; everything else
// stays on the gob fallback.
func ServePeer(s *Server, p *rpc.Peer) {
	var clientID uint32

	rpc.HandleFunc(p, "Hello", func(a *proto.HelloArgs) (*proto.HelloReply, error) {
		id, err := s.Hello(a.Name)
		if err != nil {
			return nil, err
		}
		clientID = id
		// Revocations travel back over this connection.
		err = s.SetCallback(id, func(seg proto.SegKey) (bool, error) {
			rb, err := p.CallRaw("Callback", proto.AppendCallbackArgs(nil, seg))
			if err != nil {
				return false, err
			}
			return proto.DecodeCallbackReply(rb)
		})
		if err != nil {
			return nil, err
		}
		return &proto.HelloReply{Client: id}, nil
	})

	p.SetOnClose(func(error) {
		if clientID != 0 {
			s.Disconnect(clientID)
		}
	})

	// Streaming scans: ScanStart plus the ScanData/ScanCtl stream pair.
	serveScan(s, p)

	rpc.HandleFunc(p, "OpenDB", func(a *proto.OpenDBArgs) (*proto.OpenDBReply, error) {
		db, host, err := s.OpenDB(a.Name, a.Create)
		if err != nil {
			return nil, err
		}
		return &proto.OpenDBReply{DB: db, Host: host}, nil
	})
	rpc.HandleFunc(p, "NewTx", func(a *proto.NewTxArgs) (*proto.NewTxReply, error) {
		id, err := s.NewTx()
		if err != nil {
			return nil, err
		}
		return &proto.NewTxReply{Tx: id}, nil
	})
	rpc.HandleFunc(p, "RegisterType", func(a *proto.RegisterTypeArgs) (*proto.RegisterTypeReply, error) {
		info, err := s.RegisterType(a.DB, a.Info)
		if err != nil {
			return nil, err
		}
		return &proto.RegisterTypeReply{Info: info}, nil
	})
	rpc.HandleFunc(p, "Types", func(a *proto.TypesArgs) (*proto.TypesReply, error) {
		infos, err := s.Types(a.DB)
		if err != nil {
			return nil, err
		}
		return &proto.TypesReply{Infos: infos}, nil
	})
	rpc.HandleFunc(p, "NewFileID", func(a *proto.NewFileIDArgs) (*proto.NewFileIDReply, error) {
		id, err := s.NewFileID(a.DB)
		if err != nil {
			return nil, err
		}
		return &proto.NewFileIDReply{File: id}, nil
	})
	rpc.HandleFunc(p, "AddArea", func(a *proto.AddAreaArgs) (*proto.AddAreaReply, error) {
		id, err := s.AddArea(a.DB)
		if err != nil {
			return nil, err
		}
		return &proto.AddAreaReply{Area: id}, nil
	})
	rpc.HandleFunc(p, "CreateSegment", func(a *proto.CreateSegmentArgs) (*proto.CreateSegmentReply, error) {
		seg, err := s.CreateSegment(a.DB, a.FileID, a.SlottedPages, a.DataPages, a.AreaHint)
		if err != nil {
			return nil, err
		}
		return &proto.CreateSegmentReply{Seg: seg}, nil
	})
	rpc.HandleFunc(p, "SegInfo", func(a *proto.SegInfoArgs) (*proto.SegInfoReply, error) {
		n, err := s.SegInfo(a.Seg)
		if err != nil {
			return nil, err
		}
		return &proto.SegInfoReply{SlottedPages: n}, nil
	})
	p.Handle("FetchSlotted", func(body []byte) ([]byte, error) {
		client, seg, err := proto.DecodeFetchArgs(body)
		if err != nil {
			return nil, err
		}
		sl, ov, err := s.FetchSlotted(client, seg)
		if err != nil {
			return nil, err
		}
		return proto.AppendFetchSlottedReply(nil, sl, ov), nil
	})
	p.Handle("FetchData", func(body []byte) ([]byte, error) {
		client, seg, err := proto.DecodeFetchArgs(body)
		if err != nil {
			return nil, err
		}
		return s.FetchData(client, seg)
	})
	p.Handle("FetchSeg", func(body []byte) ([]byte, error) {
		client, seg, err := proto.DecodeFetchArgs(body)
		if err != nil {
			return nil, err
		}
		sl, ov, data, err := s.FetchSeg(client, seg)
		if err != nil {
			return nil, err
		}
		return proto.EncodeSegImage(&proto.SegImage{Seg: seg, Slotted: sl, Overflow: ov, Data: data}), nil
	})
	// Snapshot reads (DESIGN.md §7): binary codecs, zero locks server-side.
	p.Handle("SnapOpen", func(body []byte) ([]byte, error) {
		client, err := proto.DecodeSnapOpenArgs(body)
		if err != nil {
			return nil, err
		}
		snap, stamp, err := s.SnapOpen(client)
		if err != nil {
			return nil, err
		}
		return proto.AppendSnapOpenReply(nil, snap, stamp), nil
	})
	p.Handle("SnapClose", func(body []byte) ([]byte, error) {
		client, snap, err := proto.DecodeSnapCloseArgs(body)
		if err != nil {
			return nil, err
		}
		return nil, s.SnapClose(client, snap)
	})
	p.Handle("SnapFetchSeg", func(body []byte) ([]byte, error) {
		client, snap, seg, err := proto.DecodeSnapFetchArgs(body)
		if err != nil {
			return nil, err
		}
		sl, ov, data, err := s.SnapFetchSeg(client, snap, seg)
		if err != nil {
			return nil, err
		}
		return proto.EncodeSegImage(&proto.SegImage{Seg: seg, Slotted: sl, Overflow: ov, Data: data}), nil
	})
	p.Handle("FetchLarge", func(body []byte) ([]byte, error) {
		client, seg, slot, err := proto.DecodeFetchLargeArgs(body)
		if err != nil {
			return nil, err
		}
		return s.FetchLarge(client, seg, slot)
	})
	rpc.HandleFunc(p, "Resolve", func(a *proto.ResolveArgs) (*proto.ResolveReply, error) {
		seg, slot, err := s.Resolve(a.DB, a.HeaderOff)
		if err != nil {
			return nil, err
		}
		return &proto.ResolveReply{Seg: seg, Slot: slot}, nil
	})
	p.Handle("Lock", func(body []byte) ([]byte, error) {
		client, tx, seg, mode, err := proto.DecodeLockArgs(body)
		if err != nil {
			return nil, err
		}
		return nil, s.Lock(client, tx, seg, mode)
	})
	p.Handle("LockObject", func(body []byte) ([]byte, error) {
		client, tx, seg, slot, mode, err := proto.DecodeLockObjectArgs(body)
		if err != nil {
			return nil, err
		}
		return nil, s.LockObject(client, tx, seg, slot, mode)
	})
	p.Handle("Commit", func(body []byte) ([]byte, error) {
		client, tx, segs, err := proto.DecodeCommitArgs(body)
		if err != nil {
			return nil, err
		}
		return nil, s.Commit(client, tx, segs)
	})
	rpc.HandleFunc(p, "Abort", func(a *proto.AbortArgs) (*proto.Empty, error) {
		if err := s.Abort(a.Client, a.Tx); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "Prepare", func(a *proto.PrepareArgs) (*proto.Empty, error) {
		if err := s.Prepare(a.Client, a.Tx, a.Segs); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "Decide", func(a *proto.DecideArgs) (*proto.Empty, error) {
		if err := s.Decide(a.Tx, a.Commit); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "SegmentsOf", func(a *proto.SegmentsOfArgs) (*proto.SegmentsOfReply, error) {
		segs, err := s.SegmentsOf(a.DB, a.FileID)
		if err != nil {
			return nil, err
		}
		return &proto.SegmentsOfReply{Segs: segs}, nil
	})
	rpc.HandleFunc(p, "Released", func(a *proto.ReleasedArgs) (*proto.Empty, error) {
		if err := s.Released(a.Client, a.Seg); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "CreateLarge", func(a *proto.CreateLargeArgs) (*proto.CreateLargeReply, error) {
		slot, err := s.CreateLarge(a.Client, a.Tx, a.Seg, a.Type, a.Content)
		if err != nil {
			return nil, err
		}
		return &proto.CreateLargeReply{Slot: slot}, nil
	})
	rpc.HandleFunc(p, "AllocRun", func(a *proto.AllocRunArgs) (*proto.AllocRunReply, error) {
		areaID, start, granted, err := s.AllocRun(a.DB, a.NPages)
		if err != nil {
			return nil, err
		}
		return &proto.AllocRunReply{Area: areaID, Start: start, Granted: granted}, nil
	})
	rpc.HandleFunc(p, "FreeRun", func(a *proto.RunArgs) (*proto.Empty, error) {
		if err := s.FreeRun(a.DB, a.Area, a.Start); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "ReadRun", func(a *proto.RunArgs) (*proto.RunReply, error) {
		d, err := s.ReadRun(a.DB, a.Area, a.Start, a.NPages)
		if err != nil {
			return nil, err
		}
		return &proto.RunReply{Data: d}, nil
	})
	rpc.HandleFunc(p, "WriteRun", func(a *proto.RunArgs) (*proto.Empty, error) {
		if err := s.WriteRun(a.DB, a.Area, a.Start, a.Data); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "NameBind", func(a *proto.NameBindArgs) (*proto.Empty, error) {
		o, err := oid.Decode(a.OID[:])
		if err != nil {
			return nil, err
		}
		if err := s.NameBind(a.DB, a.Name, o); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "NameLookup", func(a *proto.NameLookupArgs) (*proto.NameLookupReply, error) {
		o, err := s.NameLookup(a.DB, a.Name)
		if err != nil {
			return nil, err
		}
		var rep proto.NameLookupReply
		o.Put(rep.OID[:])
		return &rep, nil
	})
	rpc.HandleFunc(p, "NameUnbind", func(a *proto.NameUnbindArgs) (*proto.Empty, error) {
		if err := s.NameUnbind(a.DB, a.Name); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
	rpc.HandleFunc(p, "NameRemoveOID", func(a *proto.NameRemoveOIDArgs) (*proto.Empty, error) {
		o, err := oid.Decode(a.OID[:])
		if err != nil {
			return nil, err
		}
		if err := s.NameRemoveOID(a.DB, o); err != nil {
			return nil, err
		}
		return &proto.Empty{}, nil
	})
}
