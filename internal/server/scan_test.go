package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/rpc"
)

// scanClient drives the raw scan protocol from the client end of a pipe:
// collect pushed batches, grant credits, and wait for the final batch.
type scanClient struct {
	p *rpc.Peer

	mu      sync.Mutex
	batches []*proto.ScanBatch
	done    chan struct{}
}

func newScanClient(p *rpc.Peer) *scanClient {
	c := &scanClient{p: p, done: make(chan struct{})}
	p.HandleStream("ScanData", func(stream uint64, body []byte) {
		sb, err := proto.DecodeScanBatch(body)
		if err != nil {
			panic(err)
		}
		c.mu.Lock()
		c.batches = append(c.batches, sb)
		last := sb.Last
		c.mu.Unlock()
		if last {
			close(c.done)
		}
	})
	return c
}

func (c *scanClient) wait(t *testing.T) []*proto.ScanBatch {
	t.Helper()
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatal("no final scan batch arrived")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches
}

// TestScanCursorProtocol drives ScanStart/ScanCtl/ScanData over a pipe:
// every planned segment is pushed, batches respect the credit window, and
// the final batch is flagged.
func TestScanCursorProtocol(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("scandb", true)
	if err != nil {
		t.Fatal(err)
	}
	const fileID = 4
	var want []proto.SegKey
	for i := 0; i < 5; i++ {
		k, err := s.CreateSegment(db, fileID, 1, 2, -1)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}

	cEnd, sEnd := rpc.Pipe()
	defer cEnd.Close()
	ServePeer(s, sEnd)
	cli := newScanClient(cEnd)

	rb, err := cEnd.CallRaw("ScanStart", proto.AppendScanStartArgs(nil, 1, db, fileID, 8<<10))
	if err != nil {
		t.Fatal(err)
	}
	scanID, plan, err := proto.DecodeScanStartReply(rb)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != len(want) {
		t.Fatalf("plan has %d segments, want %d", len(plan), len(want))
	}
	for i, e := range plan {
		if e.Seg != want[i] {
			t.Fatalf("plan[%d] = %v, want %v", i, e.Seg, want[i])
		}
		if e.SlottedPages != 1 {
			t.Fatalf("plan[%d] slotted pages = %d, want 1", i, e.SlottedPages)
		}
	}
	// Nothing may be pushed before the first grant.
	time.Sleep(20 * time.Millisecond)
	cli.mu.Lock()
	if n := len(cli.batches); n != 0 {
		cli.mu.Unlock()
		t.Fatalf("%d batches pushed before any credit", n)
	}
	cli.mu.Unlock()

	if err := cEnd.SendStream("ScanCtl", scanID, proto.AppendScanCtl(nil, false, 1<<20)); err != nil {
		t.Fatal(err)
	}
	batches := cli.wait(t)
	got := make(map[proto.SegKey]bool)
	for i, sb := range batches {
		if sb.Seq != uint32(i) {
			t.Fatalf("batch %d has seq %d", i, sb.Seq)
		}
		if sb.Err != "" {
			t.Fatalf("batch %d carries error %q", i, sb.Err)
		}
		for j := range sb.Images {
			got[sb.Images[j].Seg] = true
		}
	}
	for _, k := range want {
		if !got[k] {
			t.Fatalf("segment %v never pushed", k)
		}
	}
}

// TestRunScanSkipsVanishedSegment checks the cursor race guard directly: a
// plan entry that no longer resolves (dropped between planning and the
// read) is skipped, not fatal.
func TestRunScanSkipsVanishedSegment(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("racedb", true)
	if err != nil {
		t.Fatal(err)
	}
	real1, err := s.CreateSegment(db, 2, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	real2, err := s.CreateSegment(db, 2, 1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	phantom := proto.SegKey{Area: real1.Area, Start: 1 << 40}

	cEnd, sEnd := rpc.Pipe()
	defer cEnd.Close()
	defer sEnd.Close()
	cli := newScanClient(cEnd)

	table := newScanTable()
	c := table.add(1, 8<<10, []proto.ScanSeg{
		{Seg: real1, SlottedPages: 1},
		{Seg: phantom, SlottedPages: 1},
		{Seg: real2, SlottedPages: 1},
	}, false, 0)
	c.grant(false, 1<<20)
	go s.runScan(sEnd, table, c)

	batches := cli.wait(t)
	var segs []proto.SegKey
	for _, sb := range batches {
		if sb.Err != "" {
			t.Fatalf("cursor reported error %q, want phantom skipped", sb.Err)
		}
		for j := range sb.Images {
			segs = append(segs, sb.Images[j].Seg)
		}
	}
	if len(segs) != 2 || segs[0] != real1 || segs[1] != real2 {
		t.Fatalf("pushed segments %v, want [%v %v]", segs, real1, real2)
	}
	// The Last batch is pushed by the cursor's sender goroutine, so the
	// client can observe it just before runScan's deferred removal runs.
	deadline := time.Now().Add(2 * time.Second)
	for table.lookup(c.id) != nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if table.lookup(c.id) != nil {
		t.Fatal("cursor not removed from table")
	}
	goleak.Check(t, "server.")
}

// TestScanCancelReleasesCursorGoroutines cancels a cursor whose sender is
// blocked waiting for credit and verifies the whole pipeline unwinds: the
// fetch loop stops, the sender drains, the cursor leaves the table, and
// (under -tags goleak) no server goroutine stays behind.
func TestScanCancelReleasesCursorGoroutines(t *testing.T) {
	s := NewMem(1)
	defer s.Close()
	db, _, err := s.OpenDB("canceldb", true)
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]proto.ScanSeg, 0, 3)
	for i := 0; i < 3; i++ {
		k, err := s.CreateSegment(db, 3, 1, 2, -1)
		if err != nil {
			t.Fatal(err)
		}
		plan = append(plan, proto.ScanSeg{Seg: k, SlottedPages: 1})
	}

	cEnd, sEnd := rpc.Pipe()
	defer cEnd.Close()
	defer sEnd.Close()
	var batches atomic.Int32
	cEnd.HandleStream("ScanData", func(stream uint64, body []byte) { batches.Add(1) })

	// One byte of credit: the overdraw escape lets the first batch out,
	// then the sender parks in waitCredit with the window deep in debt.
	table := newScanTable()
	c := table.add(1, 1, plan, false, 0)
	c.grant(false, 1)
	go s.runScan(sEnd, table, c)

	deadline := time.Now().Add(5 * time.Second)
	for batches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no batch arrived before cancel")
		}
		time.Sleep(time.Millisecond)
	}
	c.cancel()
	for table.lookup(c.id) != nil {
		if time.Now().After(deadline) {
			t.Fatal("cancelled cursor never left the table")
		}
		time.Sleep(time.Millisecond)
	}
	goleak.Check(t, "server.")
}
