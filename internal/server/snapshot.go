package server

import (
	"fmt"

	"bess/internal/cache"
	"bess/internal/lock"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
	"bess/internal/tx"
	"bess/internal/wal"
)

// Snapshot reads (DESIGN.md §7): SnapOpen pins a version stamp, SnapFetchSeg
// serves segment images as of that stamp, SnapClose unpins it. The read path
// touches neither the lock manager nor the copy table — snapshot readers
// hold no locks, receive no callbacks, and cause none.

// snapEntry is one open snapshot: its tx-layer pin and owning client.
type snapEntry struct {
	snap   *tx.Snap
	client uint32
}

func vkeyOf(seg proto.SegKey) cache.VKey {
	return cache.VKey{Area: seg.Area, Start: seg.Start}
}

// publishSnapsLocked copies the registry and publishes the copy for
// lock-free readers. Called with snapMu held; the published map is never
// mutated again.
//
//bess:holds snapMu
func (s *Server) publishSnapsLocked() {
	view := make(map[uint64]*snapEntry, len(s.snapshots))
	for id, e := range s.snapshots {
		view[id] = e
	}
	s.snapView.Store(&view)
}

// SnapOpen implements proto.Conn: open a read-only snapshot at the current
// commit stamp.
func (s *Server) SnapOpen(client uint32) (uint64, uint64, error) {
	s.stats.messages.Add(1)
	if s.closed.Load() {
		return 0, 0, ErrShutdown
	}
	sn := s.txm.BeginSnapshot()
	s.snapMu.Lock()
	s.snapshots[sn.ID()] = &snapEntry{snap: sn, client: client}
	s.publishSnapsLocked()
	s.snapMu.Unlock()
	return sn.ID(), uint64(sn.Stamp()), nil
}

// SnapClose implements proto.Conn: release a snapshot and trim versions it
// alone was retaining.
func (s *Server) SnapClose(client uint32, snap uint64) error {
	s.stats.messages.Add(1)
	s.snapMu.Lock()
	e := s.snapshots[snap]
	delete(s.snapshots, snap)
	s.publishSnapsLocked()
	s.snapMu.Unlock()
	if e != nil {
		e.snap.Close()
		s.vs.Trim()
	}
	return nil
}

// snapStamp resolves a snapshot id to its stamp. Lock-free: it runs on
// every snapshot fetch, so it reads the published copy-on-write view
// instead of taking snapMu (bess-vet's lockfree analyzer holds this path
// to zero lock acquisitions).
func (s *Server) snapStamp(snap uint64) (page.LSN, error) {
	var e *snapEntry
	if view := s.snapView.Load(); view != nil {
		e = (*view)[snap]
	}
	if e == nil {
		return 0, fmt.Errorf("server: unknown snapshot %d", snap)
	}
	return e.snap.Stamp(), nil
}

// closeClientSnaps releases every snapshot a disconnecting client left open.
func (s *Server) closeClientSnaps(client uint32) {
	s.snapMu.Lock()
	var doomed []*snapEntry
	for id, e := range s.snapshots {
		if e.client == client {
			doomed = append(doomed, e)
			delete(s.snapshots, id)
		}
	}
	if len(doomed) > 0 {
		s.publishSnapsLocked()
	}
	s.snapMu.Unlock()
	for _, e := range doomed {
		e.snap.Close()
	}
	if len(doomed) > 0 && s.vs != nil {
		s.vs.Trim()
	}
}

// SnapFetchSeg implements proto.Conn: the segment's image as of the
// snapshot's stamp. Unlike FetchSeg it records no cached copy (the image
// may be stale by design, so it must not join the callback protocol) and
// acquires no locks. bess-vet's lockfree analyzer walks the whole call
// graph from here: any reachable lock acquisition is a finding unless a
// waiver names the deliberate exception.
//
//bess:lockfree
func (s *Server) SnapFetchSeg(client uint32, snap uint64, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	s.stats.messages.Add(1)
	t, err := s.snapStamp(snap)
	if err != nil {
		return nil, nil, nil, err
	}
	return s.readAsOf(seg, t)
}

// readAsOf serves seg's image as of stamp t: a retained chain version, the
// current disk image when the segment is unchanged since t (verified
// against concurrent overwrites), or a WAL undo reconstruction. On the hot
// outcomes it allocates nothing: chain images are served as-is and the
// disk read reuses the fetch path's buffers.
//
//bess:hotpath
func (s *Server) readAsOf(seg proto.SegKey, t page.LSN) ([]byte, []byte, []byte, error) {
	s.stats.snapFetches.Add(1)
	key := vkeyOf(seg)
	for {
		//bess:lockfree ignore=version-store latch only: AsOf pins a chain entry under VersionStore.mu, never the lock manager; it blocks only on a committing writer's page-copy window
		v, err := s.vs.AsOf(key, t)
		if err != nil {
			// Chain trimmed (or version never captured): rebuild from WAL
			// before-images.
			//bess:lockfree ignore=WAL fallback for trimmed chains: reconstruction reads the catalog and log under their latches, off the hot chain and disk paths
			return s.reconstructAsOf(seg, t)
		}
		if v != nil {
			// Chain images are immutable after capture (StageUpdate clones
			// them once), so the sections are returned as-is: the reply
			// encoder only reads them, and three per-fetch clones off the
			// hot snapshot path are pure waste. Release only unpins the
			// entry; the GC drops the chain reference and the bytes stay
			// alive for as long as this reply needs them.
			sl, ov, data := v.Img.Slotted, v.Img.Overflow, v.Img.Data
			//bess:lockfree ignore=version-store latch only: Release unpins under VersionStore.mu and returns
			s.vs.Release(v)
			return sl, ov, data, nil
		}
		// Disk image verdict: read it, then confirm no update staged or
		// committed underneath the read.
		//bess:lockfree ignore=disk read under the area's short page latches; the lock manager is never consulted
		dec, img, over, err := s.readSeg(seg)
		if err != nil {
			return nil, nil, nil, err
		}
		//bess:lockfree ignore=disk read under the area's short page latches; the lock manager is never consulted
		data, err := s.readData(dec)
		if err != nil {
			return nil, nil, nil, err
		}
		//bess:lockfree ignore=version-store latch only: Recheck compares the stamp under VersionStore.mu and returns
		if s.vs.Recheck(key, t) {
			return img, over, data, nil
		}
	}
}

// reconstructAsOf rebuilds seg's image at stamp t from the WAL: the as-of
// content of a page is the before-image of its earliest update by a
// transaction that committed after t (or never committed); pages with no
// such update still hold their as-of content on disk. Updates are logged as
// full-page images (logAndApply), so reconstruction is exact. Pages are
// read before the log is scanned — any write that could have raced the read
// appended its record first (WAL rule), so the scan always sees it.
//
// Known limitation: CreateSegment initializes pages without logging, so an
// as-of image whose pages were since freed and handed to a new segment
// reconstructs to that segment's initial state. Snapshot workloads that
// drop and reallocate whole segments should not outlive the version chain.
func (s *Server) reconstructAsOf(seg proto.SegKey, t page.LSN) ([]byte, []byte, []byte, error) {
	sm, _, ok := s.cat.segMetaOf(seg)
	if !ok {
		return nil, nil, nil, ErrNoSegment
	}
	a := s.lookupArea(seg.Area)
	if a == nil {
		return nil, nil, nil, ErrNoArea
	}

	// Slotted section first: its reconstructed header names the data and
	// overflow runs as of t.
	sl := make([]byte, sm.SlottedPages*page.Size)
	for i := 0; i < sm.SlottedPages; i++ {
		pid := page.ID{Area: page.AreaID(seg.Area), Page: page.No(seg.Start) + page.No(i)}
		if err := s.ReadPage(pid, sl[i*page.Size:(i+1)*page.Size]); err != nil {
			return nil, nil, nil, err
		}
	}
	befores, err := s.asOfBefores(t)
	if err != nil {
		return nil, nil, nil, err
	}
	overlayAsOf(befores, page.AreaID(seg.Area), page.No(seg.Start), sl)
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: no image at stamp %d", ErrNoSegment, t)
	}

	// Data and overflow at the reconstructed geometry. Pages again read
	// before a fresh scan; the rescan may only add before-images for pages
	// the first scan had none for, so the slotted geometry stays valid.
	data := make([]byte, int(dec.Hdr.DataPages)*page.Size)
	for i := 0; i < int(dec.Hdr.DataPages); i++ {
		pid := page.ID{Area: dec.Hdr.DataArea, Page: dec.Hdr.DataStart + page.No(i)}
		if err := s.ReadPage(pid, data[i*page.Size:(i+1)*page.Size]); err != nil {
			return nil, nil, nil, err
		}
	}
	var over []byte
	if dec.Hdr.OverPages > 0 {
		over = make([]byte, int(dec.Hdr.OverPages)*page.Size)
		for i := 0; i < int(dec.Hdr.OverPages); i++ {
			pid := page.ID{Area: dec.Hdr.OverArea, Page: dec.Hdr.OverStart + page.No(i)}
			if err := s.ReadPage(pid, over[i*page.Size:(i+1)*page.Size]); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	befores, err = s.asOfBefores(t)
	if err != nil {
		return nil, nil, nil, err
	}
	overlayAsOf(befores, dec.Hdr.DataArea, dec.Hdr.DataStart, data)
	if over != nil {
		overlayAsOf(befores, dec.Hdr.OverArea, dec.Hdr.OverStart, over)
	}
	return sl, over, data, nil
}

// asOfBefores scans the durable log and returns, per page, the before-image
// of its earliest update whose transaction committed after t or has no
// commit record — exactly the content the page held at stamp t. The log is
// flushed first so records for every page write that already reached an
// area are visible to the scan.
func (s *Server) asOfBefores(t page.LSN) (map[page.ID][]byte, error) {
	if err := s.log.Flush(s.log.NextLSN()); err != nil {
		return nil, err
	}
	commit := make(map[uint64]page.LSN)
	if err := s.log.Iterate(wal.FirstLSN(), func(lsn page.LSN, rec *wal.Record) error {
		if rec.Type == wal.TCommit {
			commit[rec.Tx] = lsn
		}
		return nil
	}); err != nil {
		return nil, err
	}
	befores := make(map[page.ID][]byte)
	if err := s.log.Iterate(wal.FirstLSN(), func(lsn page.LSN, rec *wal.Record) error {
		if rec.Type != wal.TUpdate {
			return nil
		}
		if cl, done := commit[rec.Tx]; done && cl <= t {
			// Part of the as-of state: its After supersedes anything an
			// earlier rolled-back writer left in the map. The as-of image is
			// now this update's After — the Before of the next undone write,
			// or the disk content if none follows (aborted writers in
			// between net out through their CLRs).
			delete(befores, rec.Page)
			return nil
		}
		if _, seen := befores[rec.Page]; seen {
			return nil // an earlier undone update already fixed this page's as-of image
		}
		if rec.Off != 0 {
			return fmt.Errorf("server: as-of reconstruction: partial update at %d (off %d)", lsn, rec.Off)
		}
		befores[rec.Page] = append([]byte(nil), rec.Before...)
		return nil
	}); err != nil {
		return nil, err
	}
	return befores, nil
}

// overlayAsOf replaces pages of buf (a run starting at area/start) that have
// an as-of before-image.
func overlayAsOf(befores map[page.ID][]byte, areaID page.AreaID, start page.No, buf []byte) {
	n := (len(buf) + page.Size - 1) / page.Size
	for i := 0; i < n; i++ {
		b, ok := befores[page.ID{Area: areaID, Page: start + page.No(i)}]
		if !ok {
			continue
		}
		end := (i + 1) * page.Size
		if end > len(buf) {
			end = len(buf)
		}
		dst := buf[i*page.Size : end]
		for j := copy(dst, b); j < len(dst); j++ {
			dst[j] = 0
		}
	}
}

// VersionStats exposes the version store's counters (tests, benches).
func (s *Server) VersionStats() cache.VStats { return s.vs.VersionStats() }

// LockStats exposes the lock manager's counters — the zero-locks assertion
// for snapshot reads (E16) checks the Acquires delta across a read phase.
func (s *Server) LockStats() lock.Stats { return s.locks.Snapshot() }
