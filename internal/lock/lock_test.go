package lock

import (
	"sync"
	"testing"
	"time"
)

var res = Name{Kind: KindPage, Q0: 1, Q1: 10, Q2: 0}

func TestCompatibilityMatrix(t *testing.T) {
	// Classic matrix: rows requested, columns held.
	want := map[[2]Mode]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, SIX}: true, {IS, X}: false,
		{IX, IS}: true, {IX, IX}: true, {IX, S}: false, {IX, SIX}: false, {IX, X}: false,
		{S, IS}: true, {S, IX}: false, {S, S}: true, {S, SIX}: false, {S, X}: false,
		{SIX, IS}: true, {SIX, IX}: false, {SIX, S}: false, {SIX, SIX}: false, {SIX, X}: false,
		{X, IS}: false, {X, IX}: false, {X, S}: false, {X, SIX}: false, {X, X}: false,
	}
	for pair, ok := range want {
		if Compatible(pair[0], pair[1]) != ok {
			t.Errorf("Compatible(%v,%v) != %v", pair[0], pair[1], ok)
		}
		// Matrix is symmetric.
		if Compatible(pair[1], pair[0]) != ok {
			t.Errorf("Compatible(%v,%v) asymmetric", pair[1], pair[0])
		}
	}
}

func TestSupLattice(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{None, S, S}, {IS, IX, IX}, {S, IX, SIX}, {IX, S, SIX},
		{S, S, S}, {S, X, X}, {SIX, IX, SIX}, {SIX, X, X}, {IS, S, S},
	}
	for _, c := range cases {
		if got := Sup(c.a, c.b); got != c.want {
			t.Errorf("Sup(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if Sup(c.b, c.a) != Sup(c.a, c.b) {
			t.Errorf("Sup(%v,%v) not commutative", c.a, c.b)
		}
	}
}

func TestSharedThenExclusiveBlocks(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, res, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, S, 0); err != nil {
		t.Fatal(err)
	}
	// X must block; no-wait returns timeout.
	if err := m.Acquire(3, res, X, -1); err != ErrTimeout {
		t.Fatalf("no-wait X: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, res, X, time.Second) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	select {
	case err := <-done:
		t.Fatalf("X granted with S still held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("X after releases: %v", err)
	}
	if m.Holds(3, res) != X {
		t.Fatal("holder table wrong")
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := NewManager()
	m.Acquire(1, res, S, 0)
	if err := m.Acquire(1, res, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, res, IS, 0); err != nil {
		t.Fatal(err) // covered by S already
	}
	if m.Holds(1, res) != S {
		t.Fatalf("mode = %v", m.Holds(1, res))
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager()
	m.Acquire(1, res, S, 0)
	if err := m.Acquire(1, res, X, 0); err != nil {
		t.Fatal(err)
	}
	if m.Holds(1, res) != X {
		t.Fatalf("mode = %v", m.Holds(1, res))
	}
	if m.Snapshot().Upgrades != 1 {
		t.Fatalf("upgrades = %d", m.Snapshot().Upgrades)
	}
}

func TestUpgradeWaitsForOtherReader(t *testing.T) {
	m := NewManager()
	m.Acquire(1, res, S, 0)
	m.Acquire(2, res, S, 0)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, res, X, time.Second) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("upgrade granted while another S held")
	default:
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	a := Name{Kind: KindPage, Q0: 1}
	b := Name{Kind: KindPage, Q0: 2}
	m.Acquire(1, a, X, 0)
	m.Acquire(2, b, X, 0)
	errCh := make(chan error, 1)
	go func() { errCh <- m.Acquire(1, b, X, time.Second) }()
	time.Sleep(20 * time.Millisecond) // let tx1 block on b
	// tx2 requesting a closes the cycle; it must get ErrDeadlock.
	err := m.Acquire(2, a, X, time.Second)
	if err != ErrDeadlock {
		t.Fatalf("cycle request: %v", err)
	}
	if m.Snapshot().Deadlocks != 1 {
		t.Fatalf("deadlocks = %d", m.Snapshot().Deadlocks)
	}
	// Victim aborts, releasing its locks; tx1 proceeds.
	m.ReleaseAll(2)
	if err := <-errCh; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	m.ReleaseAll(1)
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two readers both upgrading to X on the same name is the classic
	// upgrade deadlock.
	m := NewManager()
	m.Acquire(1, res, S, 0)
	m.Acquire(2, res, S, 0)
	errCh := make(chan error, 1)
	go func() { errCh <- m.Acquire(1, res, X, time.Second) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, res, X, time.Second)
	if err != ErrDeadlock {
		t.Fatalf("second upgrader: %v", err)
	}
	m.ReleaseAll(2)
	if err := <-errCh; err != nil {
		t.Fatalf("first upgrader: %v", err)
	}
}

func TestTimeout(t *testing.T) {
	m := NewManager()
	m.Acquire(1, res, X, 0)
	start := time.Now()
	err := m.Acquire(2, res, X, 30*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned before timeout")
	}
	if m.Snapshot().Timeouts != 1 {
		t.Fatalf("timeouts = %d", m.Snapshot().Timeouts)
	}
	// The timed-out waiter is gone: release and verify no phantom grant.
	m.ReleaseAll(1)
	if got := m.Holds(2, res); got != None {
		t.Fatalf("phantom grant %v", got)
	}
}

func TestDefaultTimeout(t *testing.T) {
	m := NewManager()
	m.DefaultTimeout = 20 * time.Millisecond
	m.Acquire(1, res, X, 0)
	if err := m.Acquire(2, res, S, 0); err != ErrTimeout {
		t.Fatalf("default timeout: %v", err)
	}
}

func TestFIFOFairnessPreventsWriterStarvation(t *testing.T) {
	m := NewManager()
	m.Acquire(1, res, S, 0)
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(2, res, X, time.Second) }()
	time.Sleep(10 * time.Millisecond)
	// A new reader must queue behind the waiting writer, not jump it.
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Acquire(3, res, S, time.Second) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-readerDone:
		t.Fatal("reader jumped the writer queue")
	default:
	}
	m.ReleaseAll(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager()
	names := []Name{{Kind: KindPage, Q0: 1}, {Kind: KindPage, Q0: 2}, {Kind: KindPage, Q0: 3}}
	for _, n := range names {
		m.Acquire(1, n, X, 0)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, n := range names {
		wg.Add(1)
		go func(i int, n Name) {
			defer wg.Done()
			errs[i] = m.Acquire(TxID(10+i), n, X, time.Second)
		}(i, n)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if len(m.Owned(1)) != 0 {
		t.Fatal("owner table not cleared")
	}
}

func TestIntentionModes(t *testing.T) {
	m := NewManager()
	f := FileName(1, 1)
	// Two writers intending on the same file coexist.
	if err := m.Acquire(1, f, IX, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, f, IX, 0); err != nil {
		t.Fatal(err)
	}
	// A whole-file S lock conflicts with IX.
	if err := m.Acquire(3, f, S, -1); err != ErrTimeout {
		t.Fatalf("S vs IX: %v", err)
	}
	// But IS coexists with IX.
	if err := m.Acquire(4, f, IS, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHoldersAndNames(t *testing.T) {
	m := NewManager()
	m.Acquire(7, res, S, 0)
	hs := m.Holders(res)
	if len(hs) != 1 || hs[0] != 7 {
		t.Fatalf("holders = %v", hs)
	}
	if m.Holders(Name{Kind: KindFile}) != nil {
		t.Fatal("phantom holders")
	}
	if PageName(1, 10, 3) == ObjectName(1, 10, 3) {
		t.Fatal("page and object names collide")
	}
	if DatabaseName(1) == FileName(1, 0) {
		t.Fatal("db and file names collide")
	}
}

func TestClose(t *testing.T) {
	m := NewManager()
	m.Acquire(1, res, X, 0)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, res, X, time.Second) }()
	time.Sleep(10 * time.Millisecond)
	m.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("waiter on close: %v", err)
	}
	if err := m.Acquire(3, res, S, 0); err != ErrClosed {
		t.Fatalf("acquire after close: %v", err)
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const goroutines = 16
	const iters = 200
	names := []Name{{Kind: KindPage, Q0: 1}, {Kind: KindPage, Q0: 2}, {Kind: KindPage, Q0: 3}}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := names[i%len(names)]
				mode := S
				if i%5 == 0 {
					mode = X
				}
				err := m.Acquire(tx, n, mode, 250*time.Millisecond)
				if err == ErrDeadlock || err == ErrTimeout {
					m.ReleaseAll(tx)
					continue
				}
				if err != nil {
					t.Errorf("tx %d: %v", tx, err)
					return
				}
				m.ReleaseAll(tx)
			}
		}(TxID(g + 1))
	}
	wg.Wait()
	// Everything must be released.
	for _, n := range names {
		if hs := m.Holders(n); len(hs) != 0 {
			t.Fatalf("leftover holders on %v: %v", n, hs)
		}
	}
}

func TestModeString(t *testing.T) {
	if X.String() != "X" || SIX.String() != "SIX" || None.String() != "none" {
		t.Fatal("mode strings")
	}
}
