// Package lock implements the BeSS lock manager: hierarchical lock modes,
// blocking acquisition with timeouts, waits-for deadlock detection, and
// strict two-phase locking release (paper §3: "The strict two phase locking
// algorithm is used for concurrency control", with timeouts used for
// distributed deadlock detection).
//
// The same manager serves page-level locks acquired automatically by the
// update-detection layer (§2.3) and the software object-level locks of [27].
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes: intention share/exclusive, share, share+intention-exclusive,
// exclusive.
const (
	None Mode = iota
	IS
	IX
	S
	SIX
	X
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// compatible reports whether two granted modes may coexist.
func compatible(a, b Mode) bool {
	switch a {
	case None:
		return true
	case IS:
		return b != X
	case IX:
		return b == None || b == IS || b == IX
	case S:
		return b == None || b == IS || b == S
	case SIX:
		return b == None || b == IS
	case X:
		return b == None
	}
	return false
}

// Compatible is the exported compatibility predicate (tests, server layer).
func Compatible(a, b Mode) bool { return compatible(a, b) }

// sup returns the least mode covering both a and b (lock upgrade lattice).
func sup(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == None:
		return b
	case a == IS:
		return b // IS is below everything else
	case a == IX && b == S, a == S && b == IX:
		return SIX
	case a == IX && (b == SIX || b == X):
		return b
	case a == S && (b == SIX || b == X):
		return b
	case a == SIX && b == X:
		return X
	}
	return X
}

// Sup is the exported upgrade lattice join.
func Sup(a, b Mode) Mode { return sup(a, b) }

// TxID identifies a lock owner (a transaction).
type TxID uint64

// Kind partitions the lock name space.
type Kind uint8

// Lock name kinds, from coarse to fine.
const (
	KindDatabase Kind = iota
	KindFile
	KindSegment
	KindPage
	KindObject
)

// Name is a lockable resource name.
type Name struct {
	Kind       Kind
	Q0, Q1, Q2 uint64
}

// String renders the name for diagnostics.
func (n Name) String() string {
	return fmt.Sprintf("%d/%d.%d.%d", n.Kind, n.Q0, n.Q1, n.Q2)
}

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected")
	ErrTimeout  = errors.New("lock: acquisition timed out")
	ErrClosed   = errors.New("lock: manager closed")
)

type waiter struct {
	tx   TxID
	mode Mode
	ch   chan error
}

type head struct {
	granted map[TxID]Mode
	queue   []*waiter
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Acquires  int64
	Blocks    int64
	Deadlocks int64
	Timeouts  int64
	Upgrades  int64
}

// Manager is a lock manager. Safe for concurrent use.
type Manager struct {
	mu     sync.Mutex
	locks  map[Name]*head
	byTx   map[TxID]map[Name]Mode
	waits  map[TxID]Name // tx → name it is blocked on
	closed bool
	stats  Stats

	// DefaultTimeout bounds Acquire when the context has no deadline;
	// zero means wait forever (deadlock detection still applies).
	DefaultTimeout time.Duration
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks: make(map[Name]*head),
		byTx:  make(map[TxID]map[Name]Mode),
		waits: make(map[TxID]Name),
	}
}

// Acquire obtains (or upgrades to) mode on name for tx, blocking until
// granted, deadlock, or timeout (0 = DefaultTimeout; negative = no wait).
func (m *Manager) Acquire(tx TxID, name Name, mode Mode, timeout time.Duration) error {
	if timeout == 0 {
		timeout = m.DefaultTimeout
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.stats.Acquires++
	h := m.locks[name]
	if h == nil {
		h = &head{granted: make(map[TxID]Mode)}
		m.locks[name] = h
	}
	cur := h.granted[tx]
	want := sup(cur, mode)
	if want == cur {
		m.mu.Unlock()
		return nil // already held
	}
	if cur != None {
		m.stats.Upgrades++
	}
	if m.grantable(h, tx, want) {
		m.grantLocked(h, tx, name, want)
		m.mu.Unlock()
		return nil
	}
	if timeout < 0 {
		m.mu.Unlock()
		return ErrTimeout
	}
	// Block. First check for a deadlock this wait would create.
	w := &waiter{tx: tx, mode: want, ch: make(chan error, 1)}
	h.queue = append(h.queue, w)
	m.waits[tx] = name
	if m.cycleFrom(tx) {
		m.removeWaiter(h, w)
		delete(m.waits, tx)
		m.stats.Deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	m.stats.Blocks++
	m.mu.Unlock()

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutCh = timer.C
		defer timer.Stop()
	}
	select {
	case err := <-w.ch:
		return err
	case <-timeoutCh:
		m.mu.Lock()
		// Re-check: the grant may have raced the timer.
		select {
		case err := <-w.ch:
			m.mu.Unlock()
			return err
		default:
		}
		m.removeWaiter(h, w)
		delete(m.waits, tx)
		m.stats.Timeouts++
		m.mu.Unlock()
		return ErrTimeout
	}
}

// grantable reports whether tx may hold `want` on h given other grants.
func (m *Manager) grantable(h *head, tx TxID, want Mode) bool {
	for other, om := range h.granted {
		if other == tx {
			continue
		}
		if !compatible(want, om) {
			return false
		}
	}
	// FIFO fairness: a fresh request must also not jump a compatible queue
	// unless it is an upgrade (upgrades get priority to avoid upgrade
	// deadlocks stalling forever behind new arrivals).
	if _, upgrading := h.granted[tx]; !upgrading {
		for _, w := range h.queue {
			if w.tx != tx && !compatible(want, w.mode) {
				return false
			}
		}
	}
	return true
}

func (m *Manager) grantLocked(h *head, tx TxID, name Name, mode Mode) {
	h.granted[tx] = mode
	owned := m.byTx[tx]
	if owned == nil {
		owned = make(map[Name]Mode)
		m.byTx[tx] = owned
	}
	owned[name] = mode
}

func (m *Manager) removeWaiter(h *head, w *waiter) {
	for i, q := range h.queue {
		if q == w {
			h.queue = append(h.queue[:i:i], h.queue[i+1:]...)
			return
		}
	}
}

// wake re-examines a head's queue after a release, granting in FIFO order.
func (m *Manager) wakeLocked(name Name, h *head) {
	for len(h.queue) > 0 {
		w := h.queue[0]
		cur := h.granted[w.tx]
		want := sup(cur, w.mode)
		ok := true
		for other, om := range h.granted {
			if other != w.tx && !compatible(want, om) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		h.queue = h.queue[1:]
		delete(m.waits, w.tx)
		m.grantLocked(h, w.tx, name, want)
		w.ch <- nil
	}
}

// Release drops tx's lock on name (rare; strict 2PL normally releases all at
// end of transaction).
func (m *Manager) Release(tx TxID, name Name) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(tx, name)
}

func (m *Manager) releaseLocked(tx TxID, name Name) {
	h := m.locks[name]
	if h == nil {
		return
	}
	if _, held := h.granted[tx]; !held {
		return
	}
	delete(h.granted, tx)
	if owned := m.byTx[tx]; owned != nil {
		delete(owned, name)
		if len(owned) == 0 {
			delete(m.byTx, tx)
		}
	}
	m.wakeLocked(name, h)
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(m.locks, name)
	}
}

// ReleaseAll drops every lock tx holds (commit/abort under strict 2PL).
func (m *Manager) ReleaseAll(tx TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	owned := m.byTx[tx]
	names := make([]Name, 0, len(owned))
	for n := range owned {
		names = append(names, n)
	}
	for _, n := range names {
		m.releaseLocked(tx, n)
	}
}

// Holds returns the mode tx holds on name (None if not held).
func (m *Manager) Holds(tx TxID, name Name) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.locks[name]; h != nil {
		return h.granted[tx]
	}
	return None
}

// Owned returns a copy of tx's lock table.
func (m *Manager) Owned(tx TxID) map[Name]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Name]Mode, len(m.byTx[tx]))
	for n, md := range m.byTx[tx] {
		out[n] = md
	}
	return out
}

// Holders returns the transactions with a granted lock on name.
func (m *Manager) Holders(name Name) []TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.locks[name]
	if h == nil {
		return nil
	}
	out := make([]TxID, 0, len(h.granted))
	for tx := range h.granted {
		out = append(out, tx)
	}
	return out
}

// cycleFrom reports whether the waits-for graph has a cycle reachable from
// start. Called with m.mu held.
func (m *Manager) cycleFrom(start TxID) bool {
	// Edges: waiter → every holder of an incompatible grant on the awaited
	// name, and → incompatible waiters queued ahead of it.
	visited := map[TxID]bool{}
	var dfs func(tx TxID) bool
	dfs = func(tx TxID) bool {
		name, waiting := m.waits[tx]
		if !waiting {
			return false
		}
		h := m.locks[name]
		if h == nil {
			return false
		}
		var mode Mode
		for _, w := range h.queue {
			if w.tx == tx {
				mode = w.mode
				break
			}
		}
		for other, om := range h.granted {
			if other == tx || compatible(mode, om) {
				continue
			}
			if other == start {
				return true
			}
			if !visited[other] {
				visited[other] = true
				if dfs(other) {
					return true
				}
			}
		}
		return false
	}
	visited[start] = true
	return dfs(start)
}

// Snapshot returns the cumulative statistics.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close fails all waiters and rejects further acquisitions.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, h := range m.locks {
		for _, w := range h.queue {
			w.ch <- ErrClosed
		}
		h.queue = nil
	}
}

// --- Name helpers used across layers ---

// PageName builds the canonical lock name for a data page.
func PageName(area uint32, segStart int64, pageIdx int) Name {
	return Name{Kind: KindPage, Q0: uint64(area), Q1: uint64(segStart), Q2: uint64(pageIdx)}
}

// ObjectName builds the canonical lock name for object-level locking [27].
func ObjectName(area uint32, segStart int64, slot int) Name {
	return Name{Kind: KindObject, Q0: uint64(area), Q1: uint64(segStart), Q2: uint64(slot)}
}

// FileName builds the lock name for a BeSS file.
func FileName(db uint32, file uint32) Name {
	return Name{Kind: KindFile, Q0: uint64(db), Q1: uint64(file)}
}

// DatabaseName builds the lock name for a whole database.
func DatabaseName(db uint32) Name {
	return Name{Kind: KindDatabase, Q0: uint64(db)}
}
