package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync/atomic"
	"testing"

	"bess/internal/segment"
	"bess/internal/server"
)

// person mirrors the paper's Person example: name (fixed 24 bytes) and a
// spouse reference.
type person struct {
	Name   string
	Spouse Ref
}

const personSize = 32 // ref(8) + name(24)

var personDesc = TypeDesc{Name: "Person", Size: personSize, RefOffsets: []int{0}}

func encPerson(p *person) []byte {
	b := make([]byte, personSize)
	binary.BigEndian.PutUint64(b[0:8], uint64(p.Spouse.Addr()))
	copy(b[8:], p.Name)
	return b
}

func decPerson(b []byte) *person {
	name := bytes.TrimRight(b[8:32], "\x00")
	return &person{Name: string(name)}
}

func openDB(t *testing.T) (*server.Server, *Database) {
	t.Helper()
	srv := server.NewMem(1)
	t.Cleanup(func() { srv.Close() })
	db, err := OpenDatabase(srv, "test-app", "people", true)
	if err != nil {
		t.Fatal(err)
	}
	return srv, db
}

func TestPersonGraph(t *testing.T) {
	_, db := openDB(t)
	personType, err := Register(db, personDesc, encPerson, decPerson)
	if err != nil {
		t.Fatal(err)
	}
	f, err := db.CreateFile("people")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	alice, err := personType.New(f, &person{Name: "Alice"})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := personType.New(f, &person{Name: "Bob"})
	if err != nil {
		t.Fatal(err)
	}
	// p->spouse->name style navigation (paper §2.5).
	aObj, _ := db.Deref(alice)
	if err := aObj.SetRef(0, bob); err != nil {
		t.Fatal(err)
	}
	bObj, _ := db.Deref(bob)
	if err := bObj.SetRef(0, alice); err != nil {
		t.Fatal(err)
	}
	if err := db.SetRoot("alice", alice); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	db.Begin()
	root, err := db.Root("alice")
	if err != nil {
		t.Fatal(err)
	}
	spouseRef, err := root.Ref(0)
	if err != nil {
		t.Fatal(err)
	}
	spouse, err := personType.Get(db, spouseRef)
	if err != nil {
		t.Fatal(err)
	}
	if spouse.Name != "Bob" {
		t.Fatalf("spouse = %q", spouse.Name)
	}
	// And back: alice is her spouse's spouse.
	sObj, _ := db.Deref(spouseRef)
	backRef, _ := sObj.Ref(0)
	back, _ := personType.Get(db, backRef)
	if back.Name != "Alice" {
		t.Fatalf("spouse's spouse = %q", back.Name)
	}
	db.Commit()
}

func TestGlobalRef(t *testing.T) {
	_, db := openDB(t)
	personType, _ := Register(db, personDesc, encPerson, decPerson)
	f, _ := db.CreateFile("people")
	db.Begin()
	r, _ := personType.New(f, &person{Name: "Carol"})
	g := db.GlobalRefOf(r)
	if g.OID.IsNil() {
		t.Fatal("nil OID")
	}
	db.Commit()

	db.Begin()
	obj, err := db.DerefGlobal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := obj.Bytes()
	if decPerson(b).Name != "Carol" {
		t.Fatal("global deref content")
	}
	db.Commit()
}

func TestFileGrowsSegments(t *testing.T) {
	_, db := openDB(t)
	blob, _ := db.RegisterType(TypeDesc{Name: "Blob", Size: 0})
	f, err := db.CreateFile("blobs", WithGeometry(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	db.Begin()
	// Far more data than one small segment holds.
	var refs []Ref
	for i := 0; i < 300; i++ {
		r, err := f.New(blob, bytes.Repeat([]byte{byte(i)}, 200))
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		refs = append(refs, r)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	segs, err := f.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("file never grew: %d segments", len(segs))
	}
	// Everything readable via scan.
	db.Begin()
	count := 0
	err = f.Scan(func(o *Object) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 300 {
		t.Fatalf("scan saw %d objects", count)
	}
	db.Commit()
	_ = refs
}

func TestOpenFileByName(t *testing.T) {
	_, db := openDB(t)
	blob, _ := db.RegisterType(TypeDesc{Name: "Blob", Size: 0})
	f, _ := db.CreateFile("stuff")
	db.Begin()
	f.New(blob, []byte("hello"))
	db.Commit()

	f2, err := db.OpenFile("stuff")
	if err != nil {
		t.Fatal(err)
	}
	if f2.ID() != f.ID() {
		t.Fatalf("reopened id %d != %d", f2.ID(), f.ID())
	}
	if _, err := db.OpenFile("missing"); err == nil {
		t.Fatal("opened missing file")
	}
}

func TestMultifileParallelScan(t *testing.T) {
	srv, db := openDB(t)
	blob, _ := db.RegisterType(TypeDesc{Name: "Blob", Size: 0})
	f, err := db.CreateFile("media", AsMultifile(3), WithGeometry(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsMultifile() {
		t.Fatal("not a multifile")
	}
	db.Begin()
	for i := 0; i < 120; i++ {
		if _, err := f.New(blob, bytes.Repeat([]byte{1}, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	// Segments must span several areas.
	segs, _ := f.segments()
	areas := map[uint32]bool{}
	for _, s := range segs {
		areas[s.Area] = true
	}
	if len(areas) < 2 {
		t.Fatalf("multifile stayed in %d area(s) over %d segments", len(areas), len(segs))
	}
	// Parallel content analysis (the Prospector/MoonBase use case).
	var count atomic.Int64
	err = f.ParallelScan(srv, "people", 4, func(_ segment.TypeID, data []byte) error {
		if len(data) != 500 {
			return errors.New("bad object")
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 120 {
		t.Fatalf("parallel scan saw %d", count.Load())
	}
}

func TestTransparentLargeThroughFile(t *testing.T) {
	_, db := openDB(t)
	f, _ := db.CreateFile("big")
	content := bytes.Repeat([]byte("media"), 8000) // 40KB
	db.Begin()
	r, err := f.NewLarge(0, content)
	if err != nil {
		t.Fatal(err)
	}
	db.Commit()

	db.Begin()
	obj, err := db.Deref(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("large content mismatch")
	}
	db.Commit()
}

func TestVLOLifecycle(t *testing.T) {
	_, db := openDB(t)
	vlo, err := db.NewVLO(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte("0123456789"), 50_000) // 500KB
	if err := vlo.Append(base); err != nil {
		t.Fatal(err)
	}
	if err := vlo.Insert(1000, []byte("<<injected>>")); err != nil {
		t.Fatal(err)
	}
	db.Begin()
	if err := db.SaveVLO("track-1", vlo); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	db.Begin()
	again, err := db.OpenVLO("track-1")
	if err != nil {
		t.Fatal(err)
	}
	db.Commit()
	if again.Size() != vlo.Size() {
		t.Fatalf("size %d != %d", again.Size(), vlo.Size())
	}
	buf := make([]byte, 12)
	if err := again.Read(1000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "<<injected>>" {
		t.Fatalf("read %q", buf)
	}
}

func TestDeleteRemovesRoot(t *testing.T) {
	_, db := openDB(t)
	personType, _ := Register(db, personDesc, encPerson, decPerson)
	f, _ := db.CreateFile("people")
	db.Begin()
	r, _ := personType.New(f, &person{Name: "Dave"})
	db.SetRoot("dave", r)
	db.Commit()

	db.Begin()
	obj, _ := db.Deref(r)
	if err := obj.Delete(); err != nil {
		t.Fatal(err)
	}
	db.Commit()

	db.Begin()
	if _, err := db.Root("dave"); err == nil {
		t.Fatal("root name survived deletion")
	}
	db.Abort()
}

func TestNilRefGuards(t *testing.T) {
	_, db := openDB(t)
	if _, err := db.Deref(NilRef); !errors.Is(err, ErrNilRef) {
		t.Fatalf("deref nil: %v", err)
	}
	if err := db.SetRoot("x", NilRef); !errors.Is(err, ErrNilRef) {
		t.Fatalf("root nil: %v", err)
	}
	if !NilRef.IsNil() {
		t.Fatal("NilRef not nil")
	}
}
