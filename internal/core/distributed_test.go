package core

import (
	"encoding/binary"
	"testing"

	"bess/internal/client"
	"bess/internal/rpc"
	"bess/internal/server"
)

var acctDesc = TypeDesc{Name: "Account", Size: 8}

func encU64(v *uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, *v)
	return b
}

func decU64(b []byte) *uint64 {
	v := binary.BigEndian.Uint64(b)
	return &v
}

// tcpServer starts an in-memory server behind a real TCP listener.
func tcpServer(t *testing.T, host uint16) (*server.Server, string) {
	t.Helper()
	srv := server.NewMem(host)
	t.Cleanup(func() { srv.Close() })
	l, err := rpc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			server.ServePeer(srv, p)
		}
	}()
	return srv, l.Addr()
}

func dialDB(t *testing.T, addr, dbName string) *Database {
	t.Helper()
	p, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(client.NewRemote(p), "tcp-app", dbName, true)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTCPLifecycle(t *testing.T) {
	_, addr := tcpServer(t, 1)
	db := dialDB(t, addr, "tcpdb")
	ty, err := Register(db, acctDesc, encU64, decU64)
	if err != nil {
		t.Fatal(err)
	}
	f, err := db.CreateFile("accts")
	if err != nil {
		t.Fatal(err)
	}
	db.Begin()
	v := uint64(77)
	r, err := ty.New(f, &v)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetRoot("acct", r); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	// A second TCP connection reads it back.
	db2 := dialDB(t, addr, "tcpdb")
	db2.Begin()
	obj, err := db2.Root("acct")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := obj.Bytes()
	if binary.BigEndian.Uint64(b) != 77 {
		t.Fatalf("value = %d", binary.BigEndian.Uint64(b))
	}
	db2.Commit()
}

// transfer moves amount between roots on two databases with 2PC.
func transfer(t *testing.T, db1, db2 *Database, amount uint64, decide bool) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db1.Begin())
	must(db2.Begin())
	o1, err := db1.Root("acct")
	must(err)
	o2, err := db2.Root("acct")
	must(err)
	b1, _ := o1.Bytes()
	b2, _ := o2.Bytes()
	e := binary.BigEndian.Uint64(b1) - amount
	w := binary.BigEndian.Uint64(b2) + amount
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, e)
	must(o1.Write(0, buf))
	binary.BigEndian.PutUint64(buf, w)
	must(o2.Write(0, buf))
	must(db1.Session().PrepareCommit())
	must(db2.Session().PrepareCommit())
	must(db1.Session().FinishCommit(decide))
	must(db2.Session().FinishCommit(decide))
}

func readAcct(t *testing.T, db *Database) uint64 {
	t.Helper()
	db.Begin()
	obj, err := db.Root("acct")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := obj.Bytes()
	db.Commit()
	return binary.BigEndian.Uint64(b)
}

func TestTwoPCAcrossTCPServers(t *testing.T) {
	_, addr1 := tcpServer(t, 1)
	_, addr2 := tcpServer(t, 2)
	db1 := dialDB(t, addr1, "east")
	db2 := dialDB(t, addr2, "west")
	t1, _ := Register(db1, acctDesc, encU64, decU64)
	t2, _ := Register(db2, acctDesc, encU64, decU64)
	f1, _ := db1.CreateFile("a")
	f2, _ := db2.CreateFile("a")
	seed := func(db *Database, ty *Type[uint64], f *File, v uint64) {
		db.Begin()
		r, err := ty.New(f, &v)
		if err != nil {
			t.Fatal(err)
		}
		db.SetRoot("acct", r)
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	seed(db1, t1, f1, 100)
	seed(db2, t2, f2, 0)

	// Committed transfer.
	transfer(t, db1, db2, 30, true)
	if e, w := readAcct(t, db1), readAcct(t, db2); e != 70 || w != 30 {
		t.Fatalf("after commit: %d/%d", e, w)
	}
	// Aborted transfer: balances unchanged.
	transfer(t, db1, db2, 30, false)
	if e, w := readAcct(t, db1), readAcct(t, db2); e != 70 || w != 30 {
		t.Fatalf("after abort: %d/%d", e, w)
	}
}

// TestInDoubtBranchSurvivesRestart prepares a branch on a file-backed
// server, crashes it, and completes the branch after restart — the 2PC
// durability contract.
func TestInDoubtBranchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(srv, "app", "d", true)
	if err != nil {
		t.Fatal(err)
	}
	ty, _ := Register(db, acctDesc, encU64, decU64)
	f, _ := db.CreateFile("a")
	db.Begin()
	v := uint64(5)
	r, _ := ty.New(f, &v)
	db.SetRoot("acct", r)
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	// Prepare an update but never decide.
	db.Begin()
	obj, _ := db.Root("acct")
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, 500)
	if err := obj.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := db.Session().PrepareCommit(); err != nil {
		t.Fatal(err)
	}
	gid, _ := db.Session().TxID()
	if err := srv.Close(); err != nil { // crash with the branch in doubt
		t.Fatal(err)
	}

	srv2, err := server.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	// The coordinator's decision arrives after restart: commit.
	if err := srv2.Decide(gid, true); err != nil {
		t.Fatalf("decide after restart: %v", err)
	}
	db2, err := OpenDatabase(srv2, "app", "d", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAcct(t, db2); got != 500 {
		t.Fatalf("in-doubt commit lost: %d", got)
	}
}

// TestInDoubtAbortAfterRestart is the presumed-abort path.
func TestInDoubtAbortAfterRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := OpenDatabase(srv, "app", "d", true)
	ty, _ := Register(db, acctDesc, encU64, decU64)
	f, _ := db.CreateFile("a")
	db.Begin()
	v := uint64(5)
	r, _ := ty.New(f, &v)
	db.SetRoot("acct", r)
	db.Commit()

	db.Begin()
	obj, _ := db.Root("acct")
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, 500)
	obj.Write(0, buf)
	if err := db.Session().PrepareCommit(); err != nil {
		t.Fatal(err)
	}
	gid, _ := db.Session().TxID()
	srv.Close()

	srv2, err := server.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := srv2.Decide(gid, false); err != nil {
		t.Fatalf("abort after restart: %v", err)
	}
	db2, _ := OpenDatabase(srv2, "app", "d", false)
	if got := readAcct(t, db2); got != 5 {
		t.Fatalf("aborted branch visible: %d", got)
	}
}
