// Package core is the public BeSS storage-manager API — the layer a
// database implementor builds a relational, object-oriented, or home-grown
// DBMS on (paper §1). It wraps a client session with the paper's §2.5
// interface: databases holding BeSS files of clustered objects, implicit
// retrieval through typed references, explicit retrieval through OIDs
// (global references) and named root objects, multifiles spanning storage
// areas with parallel scans, and large objects.
//
// A Database talks to a BeSS server through any proto.Conn: a direct server
// handle (the open-server configuration), an RPC connection, or a node
// server.
//
// Scan worker goroutines are spawned through goleak.Go and carry stop
// evidence for bess-vet's golife analyzer (DESIGN.md §4e):
//
//bess:golife
package core

import (
	"errors"
	"fmt"
	"sync"

	"bess/internal/client"
	"bess/internal/goleak"
	"bess/internal/largeobj"
	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/segment"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// Errors returned by the core API.
var (
	ErrNilRef = errors.New("core: nil reference")
)

// Segment geometry defaults for files.
const (
	defaultSlottedPages = 1
	defaultDataPages    = 8
)

// Database is an open BeSS database.
type Database struct {
	sess *client.Session

	mu    sync.Mutex
	files map[uint32]*File
}

// OpenDatabase opens (or creates) a database over conn.
func OpenDatabase(conn proto.Conn, appName, dbName string, create bool) (*Database, error) {
	sess, err := client.Open(conn, appName, dbName, create)
	if err != nil {
		return nil, err
	}
	return &Database{sess: sess, files: make(map[uint32]*File)}, nil
}

// Session exposes the underlying session (benchmarks, tools).
func (db *Database) Session() *client.Session { return db.sess }

// Begin starts a transaction.
func (db *Database) Begin() error { return db.sess.Begin() }

// Commit commits the current transaction.
func (db *Database) Commit() error { return db.sess.Commit() }

// Abort rolls the current transaction back.
func (db *Database) Abort() error { return db.sess.Abort() }

// Ref is a reference to a persistent object: the swizzled form is a virtual
// address of the object's header (slot), so dereference is direct — the
// ref<T> of §2.5 without the C++ operator sugar.
type Ref struct {
	addr vmem.Addr
	db   *Database
}

// NilRef is the null reference.
var NilRef = Ref{}

// IsNil reports whether r is null.
func (r Ref) IsNil() bool { return r.addr == vmem.NilAddr }

// Addr exposes the raw slot address (tools, benchmarks).
func (r Ref) Addr() vmem.Addr { return r.addr }

// GlobalRef is the explicit, OID-carrying reference (global_ref<T>):
// position-independent and valid across sessions, but slower to follow.
type GlobalRef struct {
	OID oid.OID
}

// Object is a dereferenced object handle.
type Object struct {
	obj *swizzle.Object
	db  *Database
}

// Deref follows a reference (implicit retrieval, §2.5).
func (db *Database) Deref(r Ref) (*Object, error) {
	if r.IsNil() {
		return nil, ErrNilRef
	}
	o, err := db.sess.Deref(r.addr)
	if err != nil {
		return nil, err
	}
	return &Object{obj: o, db: db}, nil
}

// DerefGlobal follows a global reference, validating its uniquifier.
func (db *Database) DerefGlobal(g GlobalRef) (*Object, error) {
	o, err := db.sess.DerefOID(g.OID)
	if err != nil {
		return nil, err
	}
	return &Object{obj: o, db: db}, nil
}

// GlobalRefOf converts a reference into its OID form.
func (db *Database) GlobalRefOf(r Ref) GlobalRef {
	return GlobalRef{OID: db.sess.OIDOf(r.addr)}
}

// Size returns the object's size in bytes.
func (o *Object) Size() int { return o.obj.Size }

// TypeID returns the object's type descriptor id.
func (o *Object) TypeID() segment.TypeID { return o.obj.Type }

// Read copies object bytes at off into buf (faults data in on demand).
func (o *Object) Read(off int, buf []byte) error { return o.obj.Read(off, buf) }

// Write updates object bytes in place; the first write to each page is
// detected through the VM protection and locks the segment exclusively.
func (o *Object) Write(off int, buf []byte) error { return o.obj.Write(off, buf) }

// Bytes returns the object's bytes (copy-free for small objects).
func (o *Object) Bytes() ([]byte, error) { return o.obj.Bytes() }

// Ref reads the reference field at byte offset off.
func (o *Object) Ref(off int) (Ref, error) {
	a, err := o.obj.RefField(off)
	if err != nil {
		return NilRef, err
	}
	return Ref{addr: a, db: o.db}, nil
}

// SetRef stores a reference at byte offset off.
func (o *Object) SetRef(off int, r Ref) error {
	return o.obj.SetRefField(off, r.addr)
}

// Self returns the reference to this object.
func (o *Object) Self() Ref {
	return Ref{addr: o.obj.Addr, db: o.db}
}

// Delete removes the object (and, for named root objects, its name).
func (o *Object) Delete() error { return o.db.sess.DeleteObject(o.obj.Addr) }

// --- type registration ---

// TypeDesc re-exports the type descriptor for API users.
type TypeDesc = segment.TypeDesc

// RegisterType registers (idempotently) a type with the database.
func (db *Database) RegisterType(td TypeDesc) (*TypeDesc, error) {
	return db.sess.RegisterType(td)
}

// --- files and multifiles ---

// File groups objects for clustering and scanning (§2). Objects created in
// the file land in its object segments; new segments are allocated when the
// current ones fill. A multifile's segments rotate over several storage
// areas, enabling parallel I/O.
type File struct {
	db           *Database
	id           uint32
	slottedPages int
	dataPages    int
	spread       int // number of areas to rotate over (1 = plain file)

	mu      sync.Mutex
	segs    []proto.SegKey
	created int // segments created by this handle (area rotation)
}

// FileOption customizes file creation.
type FileOption func(*File)

// WithGeometry sets the per-segment geometry (slotted pages, data pages).
func WithGeometry(slottedPages, dataPages int) FileOption {
	return func(f *File) {
		f.slottedPages = slottedPages
		f.dataPages = dataPages
	}
}

// AsMultifile spreads the file's segments over n storage areas ("they
// expand over multiple physical storage areas", §2). Additional areas are
// attached to the database as needed.
func AsMultifile(n int) FileOption {
	return func(f *File) {
		if n > 1 {
			f.spread = n
		}
	}
}

// CreateFile makes a new BeSS file and names it name (via the root
// directory, so it can be reopened).
func (db *Database) CreateFile(name string, opts ...FileOption) (*File, error) {
	id, err := db.sess.Conn().NewFileID(db.sess.DB())
	if err != nil {
		return nil, err
	}
	f := &File{db: db, id: id, slottedPages: defaultSlottedPages, dataPages: defaultDataPages, spread: 1}
	for _, o := range opts {
		o(f)
	}
	if f.spread > 1 {
		// Ensure enough areas exist for the rotation.
		for i := 1; i < f.spread; i++ {
			if _, err := db.sess.Conn().AddArea(db.sess.DB()); err != nil {
				return nil, err
			}
		}
	}
	if name != "" {
		fo := oid.OID{Host: 0xFFFF, DB: uint16(db.sess.DB()), Offset: uint64(id), Unique: uint16(f.spread)}
		if err := db.sess.Conn().NameBind(db.sess.DB(), "\x00file:"+name, fo); err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	db.files[id] = f
	db.mu.Unlock()
	return f, nil
}

// OpenFile reopens a named file.
func (db *Database) OpenFile(name string, opts ...FileOption) (*File, error) {
	fo, err := db.sess.Conn().NameLookup(db.sess.DB(), "\x00file:"+name)
	if err != nil {
		return nil, err
	}
	f := &File{
		db: db, id: uint32(fo.Offset),
		slottedPages: defaultSlottedPages, dataPages: defaultDataPages,
		spread: int(fo.Unique),
	}
	if f.spread < 1 {
		f.spread = 1
	}
	for _, o := range opts {
		o(f)
	}
	db.mu.Lock()
	db.files[f.id] = f
	db.mu.Unlock()
	return f, nil
}

// ID returns the file id.
func (f *File) ID() uint32 { return f.id }

// IsMultifile reports whether the file spreads over several areas.
func (f *File) IsMultifile() bool { return f.spread > 1 }

// segments refreshes and returns the file's segment list.
func (f *File) segments() ([]proto.SegKey, error) {
	segs, err := f.db.sess.Conn().SegmentsOf(f.db.sess.DB(), f.id)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.segs = segs
	f.mu.Unlock()
	return segs, nil
}

// New creates an object of type td with the given bytes in this file,
// allocating a new object segment when the current ones are full. A
// segment's data part may grow to a few times its initial geometry; beyond
// that, clustering moves to a fresh segment (and, for multifiles, the next
// storage area).
func (f *File) New(td *TypeDesc, data []byte) (Ref, error) {
	segs, err := f.segments()
	if err != nil {
		return NilRef, err
	}
	// Try the most recent segment first, unless it has outgrown its
	// geometry.
	if len(segs) > 0 {
		newest := segs[len(segs)-1]
		if f.segmentHasRoom(newest) {
			addr, err := f.db.sess.CreateObject(newest, td.ID, data)
			if err == nil {
				return Ref{addr: addr, db: f.db}, nil
			}
			if !errors.Is(err, segment.ErrNoSlot) && !errors.Is(err, segment.ErrDataFull) {
				return NilRef, err
			}
		}
	}
	// Allocate a fresh segment, rotating areas for multifiles.
	f.mu.Lock()
	hint := -1
	if f.spread > 1 {
		hint = f.created % f.spread
	}
	f.created++
	f.mu.Unlock()
	seg, err := f.db.sess.CreateSegment(f.id, f.slottedPages, f.dataPages, hint)
	if err != nil {
		return NilRef, err
	}
	addr, err := f.db.sess.CreateObject(seg, td.ID, data)
	if err != nil {
		return NilRef, err
	}
	return Ref{addr: addr, db: f.db}, nil
}

// growCap bounds how many data pages a file segment may reach before New
// prefers a fresh segment.
func (f *File) growCap() int {
	c := 4 * f.dataPages
	if c < f.dataPages+1 {
		c = f.dataPages + 1
	}
	return c
}

// segmentHasRoom loads the newest segment's header and checks slot and
// data-growth headroom.
func (f *File) segmentHasRoom(key proto.SegKey) bool {
	id := swizzle.SegID{Area: page.AreaID(key.Area), Start: page.No(key.Start)}
	if err := f.db.sess.Mapper().EnsureLoaded(id); err != nil {
		return false
	}
	seg, ok := f.db.sess.Mapper().Seg(id)
	if !ok {
		return false
	}
	if seg.Hdr.NObjects >= seg.Hdr.NSlots {
		return false
	}
	return int(seg.Hdr.DataPages) < f.growCap()
}

// Scan visits every live object in the file through a cursor (§2).
func (f *File) Scan(fn func(*Object) error) error {
	return f.db.sess.Scan(f.id, func(_ vmem.Addr, obj *swizzle.Object) error {
		return fn(&Object{obj: obj, db: f.db})
	})
}

// StreamScan visits every live object like Scan, but through the
// push-based streaming pipeline when the session is RPC-backed: the server
// streams segment images ahead of the cursor, so a cold scan costs one
// round trip instead of two per segment (DESIGN.md §6). On direct
// connections and pre-streaming servers it falls back to Scan.
func (f *File) StreamScan(fn func(*Object) error) error {
	return f.db.sess.StreamScan(f.id, func(_ vmem.Addr, obj *swizzle.Object) error {
		return fn(&Object{obj: obj, db: f.db})
	})
}

// StreamScanFiles streams several files' scans in parallel, one session —
// and therefore one independent push pipeline — per file: the multifile
// parallel-scan configuration of §10. open returns a fresh connection for
// scan i; fn must be safe for concurrent use.
func StreamScanFiles(open func(i int) (proto.Conn, error), dbName string, files []uint32, fn func(file uint32, typ segment.TypeID, data []byte) error) error {
	errCh := make(chan error, len(files))
	var wg sync.WaitGroup
	for i, fileID := range files {
		wg.Add(1)
		goleak.Go("core.streamScan", func() {
			defer wg.Done()
			conn, err := open(i)
			if err != nil {
				errCh <- err
				return
			}
			sess, err := client.Open(conn, fmt.Sprintf("stream-scan-%d", i), dbName, false)
			if err != nil {
				errCh <- err
				return
			}
			if err := sess.Begin(); err != nil {
				errCh <- err
				return
			}
			err = sess.StreamScan(fileID, func(_ vmem.Addr, obj *swizzle.Object) error {
				b, err := obj.Bytes()
				if err != nil {
					return err
				}
				return fn(fileID, obj.Type, b)
			})
			if err != nil {
				errCh <- err
				return
			}
			errCh <- sess.Commit()
		})
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelScan partitions the file's segments over `workers` goroutines,
// each with its own session — the parallel I/O a multifile enables when its
// areas sit on different devices (§2). fn must be safe for concurrent use;
// it receives the object's type id and bytes.
func (f *File) ParallelScan(conn proto.Conn, dbName string, workers int, fn func(typ segment.TypeID, data []byte) error) error {
	segs, err := f.segments()
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		goleak.Go("core.parallelScan", func() {
			defer wg.Done()
			sess, err := client.Open(conn, fmt.Sprintf("scan-%d", w), dbName, false)
			if err != nil {
				errCh <- err
				return
			}
			if err := sess.Begin(); err != nil {
				errCh <- err
				return
			}
			for i := w; i < len(segs); i += workers {
				id := segs[i]
				addr0, err := sess.AddrOfSlot(id, 0)
				if err != nil {
					errCh <- err
					return
				}
				_ = addr0
				if err := scanOneSegment(sess, id, fn); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- sess.Commit()
		})
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

func scanOneSegment(sess *client.Session, seg proto.SegKey, fn func(segment.TypeID, []byte) error) error {
	return sess.ScanSegment(seg, func(_ vmem.Addr, obj *swizzle.Object) error {
		b, err := obj.Bytes()
		if err != nil {
			return err
		}
		return fn(obj.Type, b)
	})
}

// --- root objects ---

// SetRoot gives the object a name (root objects, §2.5).
func (db *Database) SetRoot(name string, r Ref) error {
	if r.IsNil() {
		return ErrNilRef
	}
	return db.sess.SetRoot(name, r.addr)
}

// Root retrieves a named root object.
func (db *Database) Root(name string) (*Object, error) {
	o, err := db.sess.Root(name)
	if err != nil {
		return nil, err
	}
	return &Object{obj: o, db: db}, nil
}

// UnsetRoot removes a name without deleting the object.
func (db *Database) UnsetRoot(name string) error { return db.sess.UnsetRoot(name) }

// --- large objects ---

// NewLarge stores a transparent large object (≤64KB) in the file's newest
// segment; it is read through Object like a small object.
func (f *File) NewLarge(typ segment.TypeID, content []byte) (Ref, error) {
	segs, err := f.segments()
	if err != nil {
		return NilRef, err
	}
	var seg proto.SegKey
	if len(segs) == 0 {
		seg, err = f.db.sess.CreateSegment(f.id, f.slottedPages, f.dataPages, -1)
		if err != nil {
			return NilRef, err
		}
	} else {
		seg = segs[len(segs)-1]
	}
	addr, err := f.db.sess.CreateLarge(seg, typ, content)
	if err != nil {
		return NilRef, err
	}
	return Ref{addr: addr, db: f.db}, nil
}

// VLO is a very large object opened for byte-range operations (§2.1's class
// interface: read, write, insert, delete, append, truncate).
type VLO = largeobj.Object

// NewVLO creates a very large object; sizeHint tunes its segment size.
func (db *Database) NewVLO(sizeHint int64) (*VLO, error) {
	store, err := db.sess.RunStore()
	if err != nil {
		return nil, err
	}
	return largeobj.Create(store, sizeHint)
}

// SaveVLO persists the object's index as a named blob so it can be
// reopened; the data segments are already on the server.
func (db *Database) SaveVLO(name string, o *VLO) error {
	desc := o.EncodeDescriptor()
	f, err := db.CreateFile("")
	if err != nil {
		return err
	}
	blob, err := db.RegisterType(TypeDesc{Name: "\x00vlodesc", Size: 0})
	if err != nil {
		return err
	}
	ref, err := f.New(blob, desc)
	if err != nil {
		return err
	}
	return db.SetRoot("\x00vlo:"+name, ref)
}

// OpenVLO reopens a named very large object.
func (db *Database) OpenVLO(name string) (*VLO, error) {
	obj, err := db.Root("\x00vlo:" + name)
	if err != nil {
		return nil, err
	}
	desc, err := obj.Bytes()
	if err != nil {
		return nil, err
	}
	store, err := db.sess.RunStore()
	if err != nil {
		return nil, err
	}
	return largeobj.Open(store, desc)
}

// --- generic typed layer ---

// Type pairs a registered descriptor with user encode/decode functions,
// giving a typed New/Get/Put in the spirit of ref<T>.
type Type[T any] struct {
	Desc   *TypeDesc
	Encode func(*T) []byte
	Decode func([]byte) *T
}

// Register registers the descriptor and returns the typed handle.
func Register[T any](db *Database, td TypeDesc, enc func(*T) []byte, dec func([]byte) *T) (*Type[T], error) {
	desc, err := db.RegisterType(td)
	if err != nil {
		return nil, err
	}
	return &Type[T]{Desc: desc, Encode: enc, Decode: dec}, nil
}

// New creates a typed object in f.
func (ty *Type[T]) New(f *File, v *T) (Ref, error) {
	return f.New(ty.Desc, ty.Encode(v))
}

// Get dereferences and decodes.
func (ty *Type[T]) Get(db *Database, r Ref) (*T, error) {
	obj, err := db.Deref(r)
	if err != nil {
		return nil, err
	}
	b, err := obj.Bytes()
	if err != nil {
		return nil, err
	}
	return ty.Decode(b), nil
}

// Put re-encodes and writes the object in place.
func (ty *Type[T]) Put(db *Database, r Ref, v *T) error {
	obj, err := db.Deref(r)
	if err != nil {
		return err
	}
	return obj.Write(0, ty.Encode(v))
}
