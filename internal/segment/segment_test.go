package segment

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bess/internal/page"
)

func newTestSeg() *Seg { return New(1, 2, 4, 9, 100) }

func TestSlotGeometry(t *testing.T) {
	if SlotCapacity(0) != 0 {
		t.Fatal("capacity of 0 pages")
	}
	if SlotCapacity(1) != SlotsFirstPage {
		t.Fatal("capacity of 1 page")
	}
	if SlotCapacity(3) != SlotsFirstPage+2*SlotsPerPage {
		t.Fatal("capacity of 3 pages")
	}
	// Position of the first slot on each page.
	if p, off := SlotPos(0); p != 0 || off != HeaderSize {
		t.Fatalf("SlotPos(0) = %d,%d", p, off)
	}
	if p, off := SlotPos(SlotsFirstPage); p != 1 || off != 0 {
		t.Fatalf("SlotPos(first of page 1) = %d,%d", p, off)
	}
}

func TestSlotOffsetRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		i := int(raw) % SlotCapacity(4)
		got, err := SlotIndexForOffset(SlotByteOffset(i))
		return err == nil && got == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := SlotIndexForOffset(HeaderSize + 1); err == nil {
		t.Fatal("misaligned offset accepted")
	}
	if _, err := SlotIndexForOffset(3); err == nil {
		t.Fatal("offset inside header accepted")
	}
}

func TestCreateReadObject(t *testing.T) {
	s := newTestSeg()
	data := []byte("an object body")
	i, err := s.CreateObject(7, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ObjectBytes(i)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ObjectBytes = %q", got)
	}
	if s.Slots[i].Type != 7 || s.Slots[i].Kind != KindSmall {
		t.Fatalf("slot = %+v", s.Slots[i])
	}
	if s.Hdr.NObjects != 1 {
		t.Fatalf("NObjects = %d", s.Hdr.NObjects)
	}
}

func TestObjectBytesAliasesData(t *testing.T) {
	s := newTestSeg()
	i, _ := s.CreateObject(1, []byte("mutate me"))
	b, _ := s.ObjectBytes(i)
	b[0] = 'M'
	b2, _ := s.ObjectBytes(i)
	if b2[0] != 'M' {
		t.Fatal("ObjectBytes does not alias the data segment")
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := newTestSeg()
	i, _ := s.CreateObject(1, []byte("aaaa"))
	if err := s.UpdateObject(i, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	b, _ := s.ObjectBytes(i)
	if string(b) != "bbbb" {
		t.Fatalf("after update: %q", b)
	}
	if err := s.UpdateObject(i, []byte("toolong")); err != ErrSizeChange {
		t.Fatalf("size change: %v", err)
	}
}

func TestResizeObjectMovesButSlotStays(t *testing.T) {
	s := newTestSeg()
	i, _ := s.CreateObject(1, []byte("short"))
	_, _ = s.CreateObject(1, []byte("blocker so resize must move"))
	oldOff := s.Slots[i].DataOff
	big := bytes.Repeat([]byte("x"), 100)
	if err := s.ResizeObject(i, big); err != nil {
		t.Fatal(err)
	}
	if s.Slots[i].DataOff == oldOff {
		t.Fatal("expected object to move")
	}
	b, _ := s.ObjectBytes(i)
	if !bytes.Equal(b, big) {
		t.Fatal("content after resize")
	}
	// Shrink in place.
	if err := s.ResizeObject(i, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	b, _ = s.ObjectBytes(i)
	if string(b) != "tiny" {
		t.Fatalf("after shrink: %q", b)
	}
}

func TestDeleteAndSlotReuseBumpsUnique(t *testing.T) {
	s := newTestSeg()
	i, _ := s.CreateObject(1, []byte("doomed"))
	u0 := s.Slots[i].Unique
	if err := s.DeleteObject(i); err != nil {
		t.Fatal(err)
	}
	if s.Live(i) {
		t.Fatal("slot live after delete")
	}
	if err := s.CheckSlot(i, u0); err != ErrBadSlot {
		t.Fatalf("CheckSlot on free slot: %v", err)
	}
	j, _ := s.CreateObject(2, []byte("recycled"))
	if j != i {
		t.Fatalf("expected LIFO slot reuse, got %d want %d", j, i)
	}
	if s.Slots[j].Unique != u0+1 {
		t.Fatalf("uniquifier = %d, want %d", s.Slots[j].Unique, u0+1)
	}
	if err := s.CheckSlot(j, u0); err != ErrStaleSlot {
		t.Fatalf("stale reference: %v", err)
	}
	if err := s.CheckSlot(j, u0+1); err != nil {
		t.Fatalf("fresh reference: %v", err)
	}
}

func TestCompactReclaimsAndPreservesObjects(t *testing.T) {
	s := newTestSeg()
	var keep []int
	contents := map[int][]byte{}
	for k := 0; k < 40; k++ {
		body := bytes.Repeat([]byte{byte(k + 1)}, 50+k)
		i, err := s.CreateObject(1, body)
		if err != nil {
			t.Fatal(err)
		}
		if k%2 == 0 {
			keep = append(keep, i)
			contents[i] = body
		} else {
			defer func() {}()
		}
	}
	for i := range s.Slots {
		if s.Live(i) && contents[i] == nil {
			if err := s.DeleteObject(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	garbage := s.Hdr.DataGarbage
	if garbage == 0 {
		t.Fatal("expected garbage after deletes")
	}
	usedBefore := s.Hdr.DataUsed
	moved := s.Compact()
	if moved == 0 {
		t.Fatal("Compact moved nothing")
	}
	if s.Hdr.DataGarbage != 0 {
		t.Fatalf("garbage after compact = %d", s.Hdr.DataGarbage)
	}
	if s.Hdr.DataUsed >= usedBefore {
		t.Fatalf("DataUsed %d -> %d", usedBefore, s.Hdr.DataUsed)
	}
	for _, i := range keep {
		b, err := s.ObjectBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, contents[i]) {
			t.Fatalf("object %d corrupted by compact", i)
		}
	}
}

func TestCreateTriggersCompact(t *testing.T) {
	s := New(1, 1, 1, 9, 100) // one data page = 4096 bytes
	a, err := s.CreateObject(1, bytes.Repeat([]byte("a"), 2000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateObject(1, bytes.Repeat([]byte("b"), 2000)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteObject(a); err != nil {
		t.Fatal(err)
	}
	// Tail space is short but compaction frees enough.
	if _, err := s.CreateObject(1, bytes.Repeat([]byte("c"), 1500)); err != nil {
		t.Fatal(err)
	}
	// And a genuinely oversized object still fails.
	if _, err := s.CreateObject(1, bytes.Repeat([]byte("d"), 5000)); err != ErrDataFull {
		t.Fatalf("oversized: %v", err)
	}
}

func TestResizeData(t *testing.T) {
	s := newTestSeg()
	i, _ := s.CreateObject(1, bytes.Repeat([]byte("z"), 3000))
	if err := s.ResizeData(8); err != nil {
		t.Fatal(err)
	}
	if len(s.Data) != 8*page.Size {
		t.Fatalf("data len %d", len(s.Data))
	}
	b, _ := s.ObjectBytes(i)
	if len(b) != 3000 || b[0] != 'z' {
		t.Fatal("object lost on grow")
	}
	if err := s.ResizeData(1); err != nil {
		t.Fatal(err)
	}
	b, _ = s.ObjectBytes(i)
	if len(b) != 3000 || b[2999] != 'z' {
		t.Fatal("object lost on shrink")
	}
	// Shrinking below live data fails.
	if err := s.ResizeData(0); err != ErrDataFull {
		t.Fatalf("shrink to 0: %v", err)
	}
}

func TestForwardObject(t *testing.T) {
	s := newTestSeg()
	payload := []byte("encoded-oid!") // 12 bytes like an OID
	i, err := s.CreateForward(payload)
	if err != nil {
		t.Fatal(err)
	}
	if s.Slots[i].Kind != KindForward {
		t.Fatalf("kind = %v", s.Slots[i].Kind)
	}
	b, _ := s.ObjectBytes(i)
	if !bytes.Equal(b, payload) {
		t.Fatal("forward payload")
	}
}

func TestOverflowDescriptors(t *testing.T) {
	s := newTestSeg()
	if _, err := s.CreateDescriptor(KindLarge, 1, 50000, []byte("desc")); err != ErrOverflowOff {
		t.Fatalf("descriptor without overflow: %v", err)
	}
	s.EnsureOverflow(1)
	i, err := s.CreateDescriptor(KindLarge, 1, 50000, []byte("descriptor-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Descriptor(i, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(d) != "descriptor-bytes" {
		t.Fatalf("descriptor = %q", d)
	}
	if _, err := s.ObjectBytes(i); err != ErrNotSmall {
		t.Fatalf("ObjectBytes on large: %v", err)
	}
	if _, err := s.Descriptor(i, page.Size*2); err != ErrOverflowOff {
		t.Fatalf("oversized descriptor read: %v", err)
	}
	// EnsureOverflow never shrinks.
	s.EnsureOverflow(0)
	if s.Hdr.OverPages != 1 {
		t.Fatal("overflow shrank")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := newTestSeg()
	s.EnsureOverflow(1)
	var made []int
	for k := 0; k < 25; k++ {
		i, err := s.CreateObject(TypeID(k%3+1), bytes.Repeat([]byte{byte(k)}, 10+k*3))
		if err != nil {
			t.Fatal(err)
		}
		made = append(made, i)
	}
	s.DeleteObject(made[5])
	s.CreateDescriptor(KindVeryLarge, 2, 1<<20, []byte("tree-root"))

	img := s.EncodeSlotted()
	if len(img) != 2*page.Size {
		t.Fatalf("image size %d", len(img))
	}
	got, err := DecodeSlotted(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hdr != s.Hdr {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got.Hdr, s.Hdr)
	}
	for i := range s.Slots {
		if got.Slots[i] != s.Slots[i] {
			t.Fatalf("slot %d mismatch: %+v vs %+v", i, got.Slots[i], s.Slots[i])
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := newTestSeg()
	img := s.EncodeSlotted()
	img[4] ^= 0xFF // flip a header byte
	if _, err := DecodeSlotted(img); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt header: %v", err)
	}
	img[4] ^= 0xFF
	img[0] = 0
	if _, err := DecodeSlotted(img); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := DecodeSlotted(img[:100]); err != ErrBadMagic {
		t.Fatalf("short image: %v", err)
	}
}

func TestSlotExhaustion(t *testing.T) {
	s := New(1, 1, 64, 9, 100)
	n := SlotCapacity(1)
	for k := 0; k < n; k++ {
		if _, err := s.CreateObject(1, []byte{1}); err != nil {
			t.Fatalf("create %d/%d: %v", k, n, err)
		}
	}
	if _, err := s.CreateObject(1, []byte{1}); err != ErrNoSlot {
		t.Fatalf("exhausted: %v", err)
	}
}

func TestBadSlotOperations(t *testing.T) {
	s := newTestSeg()
	if _, err := s.ObjectBytes(-1); err != ErrBadSlot {
		t.Fatal("negative index")
	}
	if _, err := s.ObjectBytes(len(s.Slots)); err != ErrBadSlot {
		t.Fatal("out of range index")
	}
	if err := s.DeleteObject(3); err != ErrBadSlot {
		t.Fatal("delete free slot")
	}
	if err := s.FreeSlot(3); err != ErrBadSlot {
		t.Fatal("free free slot")
	}
	if _, err := s.AllocSlot(KindFree, 0, 0, 0); err != ErrBadSlot {
		t.Fatal("alloc of KindFree")
	}
}

// Property: random create/update/delete/compact keeps a model map consistent.
func TestQuickModelConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1, 2, 8, 1, 10)
		model := map[int][]byte{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1: // create
				body := make([]byte, 1+rng.Intn(200))
				rng.Read(body)
				i, err := s.CreateObject(1, body)
				if err != nil {
					continue
				}
				model[i] = append([]byte(nil), body...)
			case 2: // delete
				for i := range model {
					if err := s.DeleteObject(i); err != nil {
						return false
					}
					delete(model, i)
					break
				}
			case 3: // resize
				for i := range model {
					body := make([]byte, 1+rng.Intn(300))
					rng.Read(body)
					if err := s.ResizeObject(i, body); err != nil {
						break
					}
					model[i] = append([]byte(nil), body...)
					break
				}
			case 4:
				s.Compact()
			}
		}
		for i, want := range model {
			got, err := s.ObjectBytes(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return int(s.Hdr.NObjects) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindFree: "free", KindSmall: "small", KindLarge: "large",
		KindVeryLarge: "very-large", KindForward: "forward",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
