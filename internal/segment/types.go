package segment

import (
	"errors"
	"fmt"
	"sync"
)

// RefSize is the byte size of an inter-object reference field inside an
// object's data: 64 bits holding either the persistent form (the referenced
// object's 48-bit header offset within the database plus its 16-bit
// uniquifier) or, once swizzled, the referenced slot's virtual address.
const RefSize = 8

// TypeDesc describes a persistent type: its size and the offsets of the
// reference fields within objects of the type. "Type descriptors contain the
// offsets of pointers within the objects they describe" (paper §2.1). BeSS
// walks these offsets when a data segment is fetched, swizzling each
// reference (wave 2 of the three-wave scheme).
type TypeDesc struct {
	ID         TypeID
	Name       string
	Size       int   // fixed object size in bytes, 0 if variable
	RefOffsets []int // byte offsets of RefSize reference fields
}

// Validate checks internal consistency of the descriptor.
func (t *TypeDesc) Validate() error {
	if t.ID == 0 {
		return errors.New("segment: type id 0 is reserved")
	}
	if t.Name == "" {
		return errors.New("segment: type needs a name")
	}
	seen := make(map[int]bool, len(t.RefOffsets))
	for _, off := range t.RefOffsets {
		if off < 0 {
			return fmt.Errorf("segment: type %s: negative ref offset %d", t.Name, off)
		}
		if t.Size > 0 && off+RefSize > t.Size {
			return fmt.Errorf("segment: type %s: ref offset %d beyond size %d", t.Name, off, t.Size)
		}
		if off%RefSize != 0 {
			return fmt.Errorf("segment: type %s: ref offset %d not %d-aligned", t.Name, off, RefSize)
		}
		if seen[off] {
			return fmt.Errorf("segment: type %s: duplicate ref offset %d", t.Name, off)
		}
		seen[off] = true
	}
	return nil
}

// Registry maps type ids to descriptors. A database keeps one; it is safe
// for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byID   map[TypeID]*TypeDesc
	byName map[string]*TypeDesc
	nextID TypeID
}

// NewRegistry returns an empty registry. Type ids start at 1.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[TypeID]*TypeDesc),
		byName: make(map[string]*TypeDesc),
		nextID: 1,
	}
}

// Register adds a descriptor, assigning its ID if zero. Registering a name
// twice returns the existing descriptor if layouts match, an error otherwise.
func (r *Registry) Register(t TypeDesc) (*TypeDesc, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[t.Name]; ok {
		if existing.Size != t.Size || len(existing.RefOffsets) != len(t.RefOffsets) {
			return nil, fmt.Errorf("segment: type %q re-registered with different layout", t.Name)
		}
		for i, off := range existing.RefOffsets {
			if t.RefOffsets[i] != off {
				return nil, fmt.Errorf("segment: type %q re-registered with different ref offsets", t.Name)
			}
		}
		return existing, nil
	}
	if t.ID == 0 {
		t.ID = r.nextID
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if _, dup := r.byID[t.ID]; dup {
		return nil, fmt.Errorf("segment: type id %d already registered", t.ID)
	}
	if t.ID >= r.nextID {
		r.nextID = t.ID + 1
	}
	cp := t
	cp.RefOffsets = append([]int(nil), t.RefOffsets...)
	r.byID[cp.ID] = &cp
	r.byName[cp.Name] = &cp
	return &cp, nil
}

// Lookup returns the descriptor for id, or nil.
func (r *Registry) Lookup(id TypeID) *TypeDesc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byID[id]
}

// LookupName returns the descriptor named name, or nil.
func (r *Registry) LookupName(name string) *TypeDesc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Types returns all descriptors, in id order.
func (r *Registry) Types() []*TypeDesc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*TypeDesc, 0, len(r.byID))
	for id := TypeID(1); id < r.nextID; id++ {
		if t, ok := r.byID[id]; ok {
			out = append(out, t)
		}
	}
	return out
}
