package segment

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"bess/internal/page"
)

// FuzzSegmentHeaderParse drives DecodeSlotted with arbitrary bytes. It must
// never panic, and any image it accepts must survive a re-encode/re-decode
// with identical header and slots (reserved bytes are zeroed on encode, so
// the comparison is on the decoded form, not the raw bytes). A second
// property builds a live segment from input-derived geometry and checks
// decode(encode(s)) preserves header and slot array exactly.
func FuzzSegmentHeaderParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage, far too short to be a slotted segment"))
	f.Add(New(1, 1, 1, 2, 64).EncodeSlotted())
	multi := New(9, 3, 2, 5, 128)
	if _, err := multi.AllocSlot(KindSmall, 4, 24, 0); err != nil {
		f.Fatal(err)
	}
	if _, err := multi.AllocSlot(KindLarge, 2, 70000, 16); err != nil {
		f.Fatal(err)
	}
	f.Add(multi.EncodeSlotted())
	corrupt := New(1, 1, 1, 2, 64).EncodeSlotted()
	corrupt[20] ^= 0xFF // breaks the checksum
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, wire []byte) {
		if s, err := DecodeSlotted(wire); err == nil {
			s2, err := DecodeSlotted(s.EncodeSlotted())
			if err != nil {
				t.Fatalf("re-decode of accepted image failed: %v", err)
			}
			if s.Hdr != s2.Hdr || !reflect.DeepEqual(s.Slots, s2.Slots) {
				t.Fatalf("re-decode mismatch:\n%+v\n%+v", s, s2)
			}
		}

		// Structured roundtrip from input-derived geometry.
		geom := func(i int) byte {
			if i < len(wire) {
				return wire[i]
			}
			return 0
		}
		slottedPages := int(geom(0)%4) + 1
		s := New(uint32(geom(1)), slottedPages, int(geom(2)%3)+1,
			page.AreaID(geom(3)), page.No(geom(4)))
		// Allocate (and sometimes free) slots driven by the input bytes.
		for i, b := range wire {
			if i > 256 {
				break
			}
			if b%5 == 0 && i > 0 {
				s.FreeSlot(int(b) % len(s.Slots)) // may fail on a free slot; fine
				continue
			}
			if _, err := s.AllocSlot(Kind(b%4)+1, TypeID(b), uint32(b)*13, uint64(i)); err != nil {
				break // segment full
			}
		}
		s2, err := DecodeSlotted(s.EncodeSlotted())
		if err != nil {
			t.Fatalf("roundtrip decode failed: %v", err)
		}
		if s.Hdr != s2.Hdr || !reflect.DeepEqual(s.Slots, s2.Slots) {
			t.Fatalf("roundtrip mismatch:\nhdr %+v vs %+v", s.Hdr, s2.Hdr)
		}
	})
}

// FuzzVerifyPage is the detection property behind the whole corruption
// story: every byte of an encoded slotted image is covered by some CRC
// (header, stored-CRC word, or slot region), so ANY single-byte change must
// fail DecodeSlotted — a corruption that verifies clean is a silent wrong
// read. The same property is checked for the raw page.Verify primitive and
// for the data-section checksum.
func FuzzVerifyPage(f *testing.F) {
	f.Add(uint32(0), byte(0x01))           // magic
	f.Add(uint32(10), byte(0x40))          // header field
	f.Add(uint32(125), byte(0xFF))         // the stored header CRC itself
	f.Add(uint32(HeaderSize), byte(0x80))  // first slot byte
	f.Add(uint32(page.Size-1), byte(0xA5)) // last byte of the image
	f.Add(uint32(73), byte(0x02))          // the stored slot-region CRC

	f.Fuzz(func(t *testing.T, off uint32, xor byte) {
		if xor == 0 {
			xor = 1 // a zero XOR is not a corruption
		}
		s := New(7, 1, 1, 2, 64)
		if _, err := s.AllocSlot(KindSmall, 3, 40, 9); err != nil {
			t.Fatal(err)
		}
		s.Data = bytes.Repeat([]byte{0xD7}, int(s.Hdr.DataPages)*page.Size)
		img := s.EncodeSlotted()
		pos := int(off) % len(img)
		img[pos] ^= xor
		if _, err := DecodeSlotted(img); err == nil {
			t.Fatalf("corrupt image (byte %d ^= %#02x) decoded clean", pos, xor)
		}

		// page.Verify on an arbitrary region: clean bytes pass, any change
		// fails with the sentinel identity intact.
		region := bytes.Repeat([]byte{xor}, 256)
		crc := page.Checksum(region)
		if err := page.Verify(region, crc, "fuzz", ErrChecksum); err != nil {
			t.Fatalf("clean region failed verification: %v", err)
		}
		region[pos%len(region)] ^= xor
		if err := page.Verify(region, crc, "fuzz", ErrChecksum); err == nil {
			t.Fatalf("corrupt region (byte %d ^= %#02x) verified clean", pos%len(region), xor)
		} else if !errors.Is(err, ErrChecksum) {
			t.Fatalf("verification error %v lost ErrChecksum identity", err)
		}

		// Data-section coverage: the CRC travels in the (clean) header.
		clean, err := DecodeSlotted(s.EncodeSlotted())
		if err != nil {
			t.Fatal(err)
		}
		data := append([]byte(nil), s.Data...)
		data[pos%len(data)] ^= xor
		if err := clean.VerifyData(data); err == nil {
			t.Fatalf("corrupt data section (byte %d ^= %#02x) verified clean", pos%len(data), xor)
		}
	})
}
