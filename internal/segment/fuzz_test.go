package segment

import (
	"reflect"
	"testing"

	"bess/internal/page"
)

// FuzzSegmentHeaderParse drives DecodeSlotted with arbitrary bytes. It must
// never panic, and any image it accepts must survive a re-encode/re-decode
// with identical header and slots (reserved bytes are zeroed on encode, so
// the comparison is on the decoded form, not the raw bytes). A second
// property builds a live segment from input-derived geometry and checks
// decode(encode(s)) preserves header and slot array exactly.
func FuzzSegmentHeaderParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage, far too short to be a slotted segment"))
	f.Add(New(1, 1, 1, 2, 64).EncodeSlotted())
	multi := New(9, 3, 2, 5, 128)
	if _, err := multi.AllocSlot(KindSmall, 4, 24, 0); err != nil {
		f.Fatal(err)
	}
	if _, err := multi.AllocSlot(KindLarge, 2, 70000, 16); err != nil {
		f.Fatal(err)
	}
	f.Add(multi.EncodeSlotted())
	corrupt := New(1, 1, 1, 2, 64).EncodeSlotted()
	corrupt[20] ^= 0xFF // breaks the checksum
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, wire []byte) {
		if s, err := DecodeSlotted(wire); err == nil {
			s2, err := DecodeSlotted(s.EncodeSlotted())
			if err != nil {
				t.Fatalf("re-decode of accepted image failed: %v", err)
			}
			if s.Hdr != s2.Hdr || !reflect.DeepEqual(s.Slots, s2.Slots) {
				t.Fatalf("re-decode mismatch:\n%+v\n%+v", s, s2)
			}
		}

		// Structured roundtrip from input-derived geometry.
		geom := func(i int) byte {
			if i < len(wire) {
				return wire[i]
			}
			return 0
		}
		slottedPages := int(geom(0)%4) + 1
		s := New(uint32(geom(1)), slottedPages, int(geom(2)%3)+1,
			page.AreaID(geom(3)), page.No(geom(4)))
		// Allocate (and sometimes free) slots driven by the input bytes.
		for i, b := range wire {
			if i > 256 {
				break
			}
			if b%5 == 0 && i > 0 {
				s.FreeSlot(int(b) % len(s.Slots)) // may fail on a free slot; fine
				continue
			}
			if _, err := s.AllocSlot(Kind(b%4)+1, TypeID(b), uint32(b)*13, uint64(i)); err != nil {
				break // segment full
			}
		}
		s2, err := DecodeSlotted(s.EncodeSlotted())
		if err != nil {
			t.Fatalf("roundtrip decode failed: %v", err)
		}
		if s.Hdr != s2.Hdr || !reflect.DeepEqual(s.Slots, s2.Slots) {
			t.Fatalf("roundtrip mismatch:\nhdr %+v vs %+v", s.Hdr, s2.Hdr)
		}
	})
}
