// Package segment implements BeSS object segments (paper §2.1, Figure 1).
//
// An object segment has two basic parts: the slotted segment — a fixed-size
// header plus an array of slots, one per object, holding the object headers —
// and the data segment, which holds the actual variable-size objects. An
// optional overflow segment holds additional control information such as
// large-object descriptors.
//
// Slots (and therefore object headers) are never relocated once allocated;
// data segments may be resized, compacted, or moved without affecting the
// validity of object references, because a reference names the slot, and the
// slot's DP field is re-pointed at the object's current location.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bess/internal/page"
)

// Layout constants.
const (
	// HeaderSize is the byte size of the slotted-segment header, stored at
	// the start of the slotted segment's first page.
	HeaderSize = 128
	// SlotSize is the on-disk size of one slot (object header).
	SlotSize = 24
	// SlotsFirstPage is the number of slots on the slotted segment's first
	// page (after the header).
	SlotsFirstPage = (page.Size - HeaderSize) / SlotSize
	// SlotsPerPage is the number of slots on each subsequent page.
	SlotsPerPage = page.Size / SlotSize
	// MaxTransparentLarge is the largest fixed-size object accessed
	// transparently through a reserved address range (paper: "currently, up
	// to 64KB"). Bigger objects use the very-large-object class interface.
	MaxTransparentLarge = 64 << 10

	segMagic = 0xBE555E61
)

// Section-checksum validity bits (Header.CRCFlags). A section's CRC field is
// meaningful only when its bit is set; images written before checksums
// existed carry zero flags and decode (but never verify) as before.
const (
	CRCSlots uint8 = 1 << 0 // SlotCRC covers the slotted image past the header
	CRCData  uint8 = 1 << 1 // DataCRC covers the full data segment
	CRCOver  uint8 = 1 << 2 // OverCRC covers the full overflow segment
)

// Errors returned by the segment layer.
var (
	ErrBadMagic    = errors.New("segment: bad magic")
	ErrChecksum    = errors.New("segment: header checksum mismatch")
	ErrNoSlot      = errors.New("segment: no free slot")
	ErrBadSlot     = errors.New("segment: slot index out of range or free")
	ErrStaleSlot   = errors.New("segment: slot uniquifier mismatch (dangling reference)")
	ErrDataFull    = errors.New("segment: data segment full")
	ErrSizeChange  = errors.New("segment: in-place update must preserve size")
	ErrNotSmall    = errors.New("segment: operation requires a small object slot")
	ErrOverflowOff = errors.New("segment: overflow offset out of range")
)

// Kind classifies what a slot's object header describes.
type Kind uint8

// Slot kinds.
const (
	KindFree      Kind = iota // unallocated slot
	KindSmall                 // object stored inline in the data segment
	KindLarge                 // fixed-size large object (≤64KB), descriptor in overflow
	KindVeryLarge             // byte-range large object, tree root in overflow
	KindForward               // forward object: payload is the OID of an object in another database
)

// String names the slot kind.
func (k Kind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindSmall:
		return "small"
	case KindLarge:
		return "large"
	case KindVeryLarge:
		return "very-large"
	case KindForward:
		return "forward"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TypeID names a registered type descriptor.
type TypeID uint32

// Slot is one object header (Figure 1): the TP field is the type descriptor
// id, DP is the object's location, plus size and bookkeeping. On disk DP is
// an offset; in memory the swizzle layer re-points it at the object's
// virtual address with two arithmetic operations.
type Slot struct {
	Kind    Kind
	Unique  uint16 // bumped on every reuse of this slot (OID uniquifier)
	Type    TypeID
	Size    uint32 // object size in bytes
	DataOff uint64 // offset in data segment (Small/Forward) or overflow segment (Large/VeryLarge)
}

// Header is the slotted-segment header (Figure 1): bookkeeping for the
// object segment, including where its data and overflow segments live.
type Header struct {
	FileID       uint32 // the BeSS file this object segment belongs to
	SlottedPages uint32 // pages in the slotted segment (including header page)
	NSlots       uint32 // total slots
	NObjects     uint32 // live objects
	DataArea     page.AreaID
	DataStart    page.No // first page of the data segment
	DataPages    uint32
	DataUsed     uint32 // bump-allocation high water mark in the data segment
	DataGarbage  uint32 // bytes freed below the high water mark (reclaimed by Compact)
	OverArea     page.AreaID
	OverStart    page.No
	OverPages    uint32
	OverUsed     uint32
	FreeSlotHead int32 // head of the free-slot list, -1 if none

	// Section checksums (CRC-32C), written into the reserved header bytes by
	// EncodeSlotted and verified on decode / fault-in. CRCFlags says which
	// fields are valid — a pre-checksum image decodes with all bits clear.
	CRCFlags uint8
	SlotCRC  uint32 // slotted image past the 128-byte header
	DataCRC  uint32 // data segment bytes
	OverCRC  uint32 // overflow segment bytes
}

// Seg is the in-memory image of an object segment: decoded header, slot
// array, and the raw bytes of the data and overflow segments. It corresponds
// to the paper's "segment handle" run-time structure. Seg is not safe for
// concurrent use; callers latch.
type Seg struct {
	Hdr       Header
	Slots     []Slot
	Data      []byte // data segment bytes, len == DataPages*page.Size
	Overflow  []byte // overflow segment bytes, len == OverPages*page.Size
	Dirty     bool   // slotted/header state changed since load
	DataDirty bool   // data segment bytes changed since load
}

// SlotCapacity returns the number of slots a slotted segment of n pages holds.
func SlotCapacity(n int) int {
	if n <= 0 {
		return 0
	}
	return SlotsFirstPage + (n-1)*SlotsPerPage
}

// SlotPos returns the (page, byte offset within slotted segment) of slot i.
func SlotPos(i int) (pageIdx, byteOff int) {
	if i < SlotsFirstPage {
		return 0, HeaderSize + i*SlotSize
	}
	i -= SlotsFirstPage
	return 1 + i/SlotsPerPage, (i % SlotsPerPage) * SlotSize
}

// SlotByteOffset returns slot i's byte offset from the start of the slotted
// segment; this is the quantity embedded in OIDs and in swizzled addresses.
func SlotByteOffset(i int) uint64 {
	p, off := SlotPos(i)
	return uint64(p)*page.Size + uint64(off)
}

// SlotIndexForOffset inverts SlotByteOffset.
func SlotIndexForOffset(off uint64) (int, error) {
	p := int(off / page.Size)
	b := int(off % page.Size)
	if p == 0 {
		if b < HeaderSize || (b-HeaderSize)%SlotSize != 0 {
			return 0, ErrBadSlot
		}
		return (b - HeaderSize) / SlotSize, nil
	}
	if b%SlotSize != 0 {
		return 0, ErrBadSlot
	}
	return SlotsFirstPage + (p-1)*SlotsPerPage + b/SlotSize, nil
}

// New creates an empty object segment with the given slotted capacity and
// data segment geometry. Overflow starts absent (OverPages 0) and is added
// on demand by the file layer.
func New(fileID uint32, slottedPages, dataPages int, dataArea page.AreaID, dataStart page.No) *Seg {
	n := SlotCapacity(slottedPages)
	s := &Seg{
		Hdr: Header{
			FileID:       fileID,
			SlottedPages: uint32(slottedPages),
			NSlots:       uint32(n),
			DataArea:     dataArea,
			DataStart:    dataStart,
			DataPages:    uint32(dataPages),
			FreeSlotHead: 0,
		},
		Slots: make([]Slot, n),
		Data:  make([]byte, dataPages*page.Size),
		Dirty: true,
	}
	// Chain the free list through DataOff.
	for i := 0; i < n; i++ {
		if i == n-1 {
			s.Slots[i].DataOff = uint64(0xFFFFFFFF)
		} else {
			s.Slots[i].DataOff = uint64(i + 1)
		}
	}
	if n == 0 {
		s.Hdr.FreeSlotHead = -1
	}
	return s
}

// AllocSlot takes a slot off the free list and initializes it.
func (s *Seg) AllocSlot(kind Kind, typ TypeID, size uint32, dataOff uint64) (int, error) {
	if kind == KindFree {
		return 0, ErrBadSlot
	}
	i := int(s.Hdr.FreeSlotHead)
	if i < 0 {
		return 0, ErrNoSlot
	}
	sl := &s.Slots[i]
	if next := uint32(sl.DataOff); next == 0xFFFFFFFF {
		s.Hdr.FreeSlotHead = -1
	} else {
		s.Hdr.FreeSlotHead = int32(next)
	}
	sl.Kind = kind
	sl.Type = typ
	sl.Size = size
	sl.DataOff = dataOff
	s.Hdr.NObjects++
	s.Dirty = true
	return i, nil
}

// FreeSlot returns slot i to the free list, bumping its uniquifier so stale
// OIDs to the recycled slot are detectable (paper §2.1).
func (s *Seg) FreeSlot(i int) error {
	if i < 0 || i >= len(s.Slots) || s.Slots[i].Kind == KindFree {
		return ErrBadSlot
	}
	sl := &s.Slots[i]
	sl.Kind = KindFree
	sl.Unique++
	sl.Type = 0
	sl.Size = 0
	if s.Hdr.FreeSlotHead < 0 {
		sl.DataOff = uint64(0xFFFFFFFF)
	} else {
		sl.DataOff = uint64(uint32(s.Hdr.FreeSlotHead))
	}
	s.Hdr.FreeSlotHead = int32(i)
	s.Hdr.NObjects--
	s.Dirty = true
	return nil
}

// Live reports whether slot i holds a live object header.
func (s *Seg) Live(i int) bool {
	return i >= 0 && i < len(s.Slots) && s.Slots[i].Kind != KindFree
}

// CheckSlot validates a reference to slot i with uniquifier u.
func (s *Seg) CheckSlot(i int, u uint16) error {
	if !s.Live(i) {
		return ErrBadSlot
	}
	if s.Slots[i].Unique != u {
		return ErrStaleSlot
	}
	return nil
}

// dataFree returns the free bytes at the data segment's tail.
func (s *Seg) dataFree() int { return len(s.Data) - int(s.Hdr.DataUsed) }

// align8 rounds n up to a multiple of 8 so object starts (and thus the
// 8-byte reference fields inside them) stay aligned.
func align8(n int) int { return (n + 7) &^ 7 }

// CreateObject allocates space in the data segment and a slot, copies data
// in, and returns the slot index. Compact is tried before reporting the data
// segment full.
func (s *Seg) CreateObject(typ TypeID, data []byte) (int, error) {
	return s.createKind(KindSmall, typ, data)
}

// CreateForward stores a forward object: a small payload (an encoded OID of
// an object in another database) that inter-database references point to
// (paper §2.1).
func (s *Seg) CreateForward(payload []byte) (int, error) {
	return s.createKind(KindForward, 0, payload)
}

func (s *Seg) createKind(kind Kind, typ TypeID, data []byte) (int, error) {
	need := align8(len(data))
	if s.dataFree() < need {
		s.Compact()
	}
	if s.dataFree() < need {
		return 0, ErrDataFull
	}
	off := uint64(s.Hdr.DataUsed)
	i, err := s.AllocSlot(kind, typ, uint32(len(data)), off)
	if err != nil {
		return 0, err
	}
	copy(s.Data[off:], data)
	s.Hdr.DataUsed += uint32(need)
	s.DataDirty = true
	return i, nil
}

// CreateDescriptor stores a descriptor blob for a Large or VeryLarge object
// in the overflow segment, allocating a slot whose DataOff points at it.
// The caller must have sized the overflow segment (EnsureOverflow).
func (s *Seg) CreateDescriptor(kind Kind, typ TypeID, objectSize uint32, desc []byte) (int, error) {
	if kind != KindLarge && kind != KindVeryLarge {
		return 0, ErrBadSlot
	}
	need := align8(len(desc))
	if int(s.Hdr.OverUsed)+need > len(s.Overflow) {
		return 0, ErrOverflowOff
	}
	off := uint64(s.Hdr.OverUsed)
	i, err := s.AllocSlot(kind, typ, objectSize, off)
	if err != nil {
		return 0, err
	}
	copy(s.Overflow[off:], desc)
	s.Hdr.OverUsed += uint32(need)
	s.Dirty = true
	return i, nil
}

// Descriptor returns the n-byte descriptor blob of slot i in the overflow
// segment. The returned slice aliases the segment; trusted code only.
func (s *Seg) Descriptor(i, n int) ([]byte, error) {
	if !s.Live(i) {
		return nil, ErrBadSlot
	}
	sl := s.Slots[i]
	if sl.Kind != KindLarge && sl.Kind != KindVeryLarge {
		return nil, ErrNotSmall
	}
	off := int(sl.DataOff)
	if off+n > len(s.Overflow) {
		return nil, ErrOverflowOff
	}
	return s.Overflow[off : off+n], nil
}

// EnsureOverflow grows (never shrinks) the in-memory overflow segment to at
// least n pages. The file layer persists the new geometry.
func (s *Seg) EnsureOverflow(nPages int) {
	if int(s.Hdr.OverPages) >= nPages {
		return
	}
	grown := make([]byte, nPages*page.Size)
	copy(grown, s.Overflow)
	s.Overflow = grown
	s.Hdr.OverPages = uint32(nPages)
	s.Dirty = true
}

// ObjectBytes returns the live bytes of small/forward object i. The slice
// aliases the data segment — this is the paper's "manipulated directly on
// the segment on which they reside, without in-memory copying".
func (s *Seg) ObjectBytes(i int) ([]byte, error) {
	if !s.Live(i) {
		return nil, ErrBadSlot
	}
	sl := s.Slots[i]
	if sl.Kind != KindSmall && sl.Kind != KindForward {
		return nil, ErrNotSmall
	}
	return s.Data[sl.DataOff : sl.DataOff+uint64(sl.Size)], nil
}

// UpdateObject overwrites object i in place; the new data must be the same
// size (resizing is ResizeObject).
func (s *Seg) UpdateObject(i int, data []byte) error {
	b, err := s.ObjectBytes(i)
	if err != nil {
		return err
	}
	if len(data) != len(b) {
		return ErrSizeChange
	}
	copy(b, data)
	s.DataDirty = true
	return nil
}

// ResizeObject replaces object i's bytes with data of a possibly different
// size. The object may move within the data segment; its slot (and hence all
// references to it) is unchanged.
func (s *Seg) ResizeObject(i int, data []byte) error {
	if !s.Live(i) {
		return ErrBadSlot
	}
	sl := &s.Slots[i]
	if sl.Kind != KindSmall && sl.Kind != KindForward {
		return ErrNotSmall
	}
	oldNeed := align8(int(sl.Size))
	newNeed := align8(len(data))
	if newNeed <= oldNeed {
		copy(s.Data[sl.DataOff:], data)
		sl.Size = uint32(len(data))
		s.Hdr.DataGarbage += uint32(oldNeed - newNeed)
		s.Dirty, s.DataDirty = true, true
		return nil
	}
	if s.dataFree() < newNeed {
		s.Compact()
		if s.dataFree() < newNeed {
			return ErrDataFull
		}
	}
	off := uint64(s.Hdr.DataUsed)
	copy(s.Data[off:], data)
	s.Hdr.DataUsed += uint32(newNeed)
	s.Hdr.DataGarbage += uint32(oldNeed)
	sl.DataOff = off
	sl.Size = uint32(len(data))
	s.Dirty, s.DataDirty = true, true
	return nil
}

// DeleteObject frees object i: its data bytes become garbage (reclaimed by
// Compact) and its slot returns to the free list with a bumped uniquifier.
func (s *Seg) DeleteObject(i int) error {
	if !s.Live(i) {
		return ErrBadSlot
	}
	sl := s.Slots[i]
	if sl.Kind == KindSmall || sl.Kind == KindForward {
		s.Hdr.DataGarbage += uint32(align8(int(sl.Size)))
	}
	return s.FreeSlot(i)
}

// Compact slides live objects down over garbage, updating each slot's
// DataOff. References are unaffected because they name slots, not data
// offsets — the reorganization property of §2.1. Returns the number of
// objects moved.
func (s *Seg) Compact() int {
	if s.Hdr.DataGarbage == 0 {
		return 0
	}
	// Collect live small/forward slots ordered by DataOff.
	type ent struct{ slot int }
	var order []int
	for i := range s.Slots {
		sl := s.Slots[i]
		if sl.Kind == KindSmall || sl.Kind == KindForward {
			order = append(order, i)
		}
	}
	// Insertion sort by DataOff (segments hold at most a few hundred slots).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.Slots[order[j]].DataOff < s.Slots[order[j-1]].DataOff; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	moved := 0
	used := uint32(0)
	for _, i := range order {
		sl := &s.Slots[i]
		need := uint32(align8(int(sl.Size)))
		if sl.DataOff != uint64(used) {
			copy(s.Data[used:used+sl.Size], s.Data[sl.DataOff:sl.DataOff+uint64(sl.Size)])
			sl.DataOff = uint64(used)
			moved++
		}
		used += need
	}
	s.Hdr.DataUsed = used
	s.Hdr.DataGarbage = 0
	s.Dirty, s.DataDirty = true, true
	return moved
}

// ResizeData grows or shrinks the data segment to nPages. Shrinking compacts
// first and fails if live data does not fit.
func (s *Seg) ResizeData(nPages int) error {
	newLen := nPages * page.Size
	if newLen < int(s.Hdr.DataUsed) {
		s.Compact()
		if newLen < int(s.Hdr.DataUsed) {
			return ErrDataFull
		}
	}
	grown := make([]byte, newLen)
	copy(grown, s.Data[:min(len(s.Data), newLen)])
	s.Data = grown
	s.Hdr.DataPages = uint32(nPages)
	s.Dirty, s.DataDirty = true, true
	return nil
}

// MoveData records a new home for the data segment (relocation across areas
// or within one). The physical copy is performed by the file layer; slots
// are untouched because DataOff is relative to the data segment start.
func (s *Seg) MoveData(area page.AreaID, start page.No) {
	s.Hdr.DataArea = area
	s.Hdr.DataStart = start
	s.Dirty = true
}

// LiveSlots returns the indices of live slots in ascending order.
func (s *Seg) LiveSlots() []int {
	var out []int
	for i := range s.Slots {
		if s.Slots[i].Kind != KindFree {
			out = append(out, i)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Persistent encoding ---

// EncodeSlotted serializes the header and slot array into SlottedPages pages.
// Section checksums are refreshed as a side effect: the slot-region CRC is
// always recomputed from this image, and the data/overflow CRCs are
// recomputed when the section bytes are attached at their full on-disk size
// (carried forward from the last decode otherwise, so a commit that ships no
// data bytes keeps the data segment verifiable).
func (s *Seg) EncodeSlotted() []byte {
	if len(s.Data) == int(s.Hdr.DataPages)*page.Size {
		s.Hdr.DataCRC = page.Checksum(s.Data)
		s.Hdr.CRCFlags |= CRCData
	}
	if len(s.Overflow) == int(s.Hdr.OverPages)*page.Size {
		s.Hdr.OverCRC = page.Checksum(s.Overflow)
		s.Hdr.CRCFlags |= CRCOver
	}
	s.Hdr.CRCFlags |= CRCSlots
	buf := make([]byte, int(s.Hdr.SlottedPages)*page.Size)
	h := s.Hdr
	binary.BigEndian.PutUint32(buf[0:4], segMagic)
	binary.BigEndian.PutUint32(buf[4:8], h.FileID)
	binary.BigEndian.PutUint32(buf[8:12], h.SlottedPages)
	binary.BigEndian.PutUint32(buf[12:16], h.NSlots)
	binary.BigEndian.PutUint32(buf[16:20], h.NObjects)
	binary.BigEndian.PutUint32(buf[20:24], uint32(h.DataArea))
	binary.BigEndian.PutUint64(buf[24:32], uint64(h.DataStart))
	binary.BigEndian.PutUint32(buf[32:36], h.DataPages)
	binary.BigEndian.PutUint32(buf[36:40], h.DataUsed)
	binary.BigEndian.PutUint32(buf[40:44], h.DataGarbage)
	binary.BigEndian.PutUint32(buf[44:48], uint32(h.OverArea))
	binary.BigEndian.PutUint64(buf[48:56], uint64(h.OverStart))
	binary.BigEndian.PutUint32(buf[56:60], h.OverPages)
	binary.BigEndian.PutUint32(buf[60:64], h.OverUsed)
	binary.BigEndian.PutUint32(buf[64:68], uint32(h.FreeSlotHead))
	// buf[68:88] section checksums; buf[88:124] reserved.
	buf[68] = h.CRCFlags
	binary.BigEndian.PutUint32(buf[76:80], h.DataCRC)
	binary.BigEndian.PutUint32(buf[80:84], h.OverCRC)
	for i := range s.Slots {
		p, off := SlotPos(i)
		encodeSlot(buf[p*page.Size+off:], &s.Slots[i])
	}
	// The slot-region CRC goes in last: it covers every slotted byte past
	// the header, so with the header's own checksum below the whole slotted
	// image is protected.
	s.Hdr.SlotCRC = page.Checksum(buf[HeaderSize:])
	binary.BigEndian.PutUint32(buf[72:76], s.Hdr.SlotCRC)
	// Header checksum over the first page minus the checksum field.
	binary.BigEndian.PutUint32(buf[124:128], page.Checksum(buf[0:124]))
	return buf
}

// DecodeSlotted parses pages produced by EncodeSlotted.
func DecodeSlotted(buf []byte) (*Seg, error) {
	if len(buf) < page.Size {
		return nil, ErrBadMagic
	}
	if binary.BigEndian.Uint32(buf[0:4]) != segMagic {
		return nil, ErrBadMagic
	}
	if want, got := binary.BigEndian.Uint32(buf[124:128]), page.Checksum(buf[0:124]); want != got {
		return nil, &page.CorruptError{
			Section: "header", Off: 0, Len: HeaderSize,
			Want: want, Got: got, Err: ErrChecksum,
		}
	}
	var h Header
	h.FileID = binary.BigEndian.Uint32(buf[4:8])
	h.SlottedPages = binary.BigEndian.Uint32(buf[8:12])
	h.NSlots = binary.BigEndian.Uint32(buf[12:16])
	h.NObjects = binary.BigEndian.Uint32(buf[16:20])
	h.DataArea = page.AreaID(binary.BigEndian.Uint32(buf[20:24]))
	h.DataStart = page.No(binary.BigEndian.Uint64(buf[24:32]))
	h.DataPages = binary.BigEndian.Uint32(buf[32:36])
	h.DataUsed = binary.BigEndian.Uint32(buf[36:40])
	h.DataGarbage = binary.BigEndian.Uint32(buf[40:44])
	h.OverArea = page.AreaID(binary.BigEndian.Uint32(buf[44:48]))
	h.OverStart = page.No(binary.BigEndian.Uint64(buf[48:56]))
	h.OverPages = binary.BigEndian.Uint32(buf[56:60])
	h.OverUsed = binary.BigEndian.Uint32(buf[60:64])
	h.FreeSlotHead = int32(binary.BigEndian.Uint32(buf[64:68]))
	h.CRCFlags = buf[68]
	h.SlotCRC = binary.BigEndian.Uint32(buf[72:76])
	h.DataCRC = binary.BigEndian.Uint32(buf[76:80])
	h.OverCRC = binary.BigEndian.Uint32(buf[80:84])
	if int(h.SlottedPages)*page.Size != len(buf) {
		return nil, fmt.Errorf("segment: slotted image is %d bytes, header says %d pages", len(buf), h.SlottedPages)
	}
	if int(h.NSlots) != SlotCapacity(int(h.SlottedPages)) {
		return nil, fmt.Errorf("segment: slot count %d inconsistent with %d pages", h.NSlots, h.SlottedPages)
	}
	if h.CRCFlags&CRCSlots != 0 {
		// The decoder does not know which area the image came from; callers
		// with that identity annotate the CorruptError they get back.
		if err := page.Verify(buf[HeaderSize:], h.SlotCRC, "slotted", ErrChecksum); err != nil {
			err.(*page.CorruptError).Off = HeaderSize
			return nil, err
		}
	}
	s := &Seg{Hdr: h, Slots: make([]Slot, h.NSlots)}
	for i := range s.Slots {
		p, off := SlotPos(i)
		decodeSlot(buf[p*page.Size+off:], &s.Slots[i])
	}
	return s, nil
}

func encodeSlot(b []byte, sl *Slot) {
	b[0] = byte(sl.Kind)
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], sl.Unique)
	binary.BigEndian.PutUint32(b[4:8], uint32(sl.Type))
	binary.BigEndian.PutUint32(b[8:12], sl.Size)
	binary.BigEndian.PutUint64(b[12:20], sl.DataOff)
	// b[20:24] reserved.
}

func decodeSlot(b []byte, sl *Slot) {
	sl.Kind = Kind(b[0])
	sl.Unique = binary.BigEndian.Uint16(b[2:4])
	sl.Type = TypeID(binary.BigEndian.Uint32(b[4:8]))
	sl.Size = binary.BigEndian.Uint32(b[8:12])
	sl.DataOff = binary.BigEndian.Uint64(b[12:20])
}

// VerifyData checks data (the full data-segment bytes) against the header's
// recorded section checksum. Images written before checksums existed have no
// recorded CRC and verify vacuously.
func (s *Seg) VerifyData(data []byte) error {
	if s.Hdr.CRCFlags&CRCData == 0 {
		return nil
	}
	if err := page.Verify(data, s.Hdr.DataCRC, "data", ErrChecksum); err != nil {
		ce := err.(*page.CorruptError)
		ce.Area, ce.Page = s.Hdr.DataArea, s.Hdr.DataStart
		return err
	}
	return nil
}

// VerifyOverflow checks ov (the full overflow-segment bytes) against the
// header's recorded section checksum.
func (s *Seg) VerifyOverflow(ov []byte) error {
	if s.Hdr.CRCFlags&CRCOver == 0 {
		return nil
	}
	if err := page.Verify(ov, s.Hdr.OverCRC, "overflow", ErrChecksum); err != nil {
		ce := err.(*page.CorruptError)
		ce.Area, ce.Page = s.Hdr.OverArea, s.Hdr.OverStart
		return err
	}
	return nil
}

// VerifySections checks the attached Data and Overflow byte slices; the
// slotted section was already verified by DecodeSlotted. Sections not
// attached at their full on-disk size are skipped (nothing to check yet).
func (s *Seg) VerifySections() error {
	if len(s.Data) == int(s.Hdr.DataPages)*page.Size {
		if err := s.VerifyData(s.Data); err != nil {
			return err
		}
	}
	if len(s.Overflow) == int(s.Hdr.OverPages)*page.Size {
		return s.VerifyOverflow(s.Overflow)
	}
	return nil
}
