package segment

import (
	"errors"
	"strings"
	"testing"

	"bess/internal/page"
)

// TestChecksumErrorContext pins the error contract for corrupt images:
// every checksum failure keeps its sentinel identity (errors.Is must keep
// matching ErrChecksum) while carrying enough context — section, byte
// offset, both CRCs, and after annotation the area/page identity — for an
// operator to locate the bad sector.
func TestChecksumErrorContext(t *testing.T) {
	s := New(7, 1, 1, 2, 64)
	if _, err := s.AllocSlot(KindSmall, 3, 40, 9); err != nil {
		t.Fatal(err)
	}
	img := s.EncodeSlotted()

	t.Run("header", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[10] ^= 0x40 // inside the CRC-covered 124-byte header
		_, err := DecodeSlotted(bad)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum identity", err)
		}
		var ce *page.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %T, want *page.CorruptError", err)
		}
		if ce.Section != "header" || ce.Len != HeaderSize {
			t.Fatalf("context = %+v, want header section of %d bytes", ce, HeaderSize)
		}
		if !strings.Contains(err.Error(), "header") {
			t.Fatalf("message %q does not name the section", err)
		}
	})

	t.Run("slotted-section", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[HeaderSize+3] ^= 0x01
		_, err := DecodeSlotted(bad)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum identity", err)
		}
		var ce *page.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %T, want *page.CorruptError", err)
		}
		if ce.Section != "slotted" || ce.Off != HeaderSize {
			t.Fatalf("context = %+v, want slotted section at offset %d", ce, HeaderSize)
		}
	})

	t.Run("annotated-identity", func(t *testing.T) {
		// The decoder cannot know which area the image came from; callers
		// annotate the error. Annotation must not break errors.Is.
		bad := append([]byte(nil), img...)
		bad[HeaderSize] ^= 0xFF
		_, err := DecodeSlotted(bad)
		var ce *page.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %T, want *page.CorruptError", err)
		}
		ce.Area, ce.Page = 3, 17
		if !errors.Is(ce, ErrChecksum) {
			t.Fatalf("annotated err = %v lost ErrChecksum identity", ce)
		}
		if !strings.Contains(ce.Error(), "3:17") {
			t.Fatalf("message %q does not carry the area:page identity", ce)
		}
	})
}
