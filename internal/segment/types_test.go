package segment

import "testing"

func TestTypeDescValidate(t *testing.T) {
	good := TypeDesc{ID: 1, Name: "Person", Size: 32, RefOffsets: []int{8, 16}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TypeDesc{
		{ID: 0, Name: "x", Size: 8},
		{ID: 1, Name: "", Size: 8},
		{ID: 1, Name: "x", Size: 8, RefOffsets: []int{-8}},
		{ID: 1, Name: "x", Size: 8, RefOffsets: []int{8}},     // beyond size
		{ID: 1, Name: "x", Size: 32, RefOffsets: []int{3}},    // misaligned
		{ID: 1, Name: "x", Size: 32, RefOffsets: []int{8, 8}}, // duplicate
	}
	for i, td := range bad {
		if err := td.Validate(); err == nil {
			t.Fatalf("case %d: invalid descriptor accepted: %+v", i, td)
		}
	}
	// Variable-size types (Size 0) allow any non-negative aligned offsets.
	v := TypeDesc{ID: 2, Name: "Var", Size: 0, RefOffsets: []int{0, 8, 160}}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAssignsIDs(t *testing.T) {
	r := NewRegistry()
	a, err := r.Register(TypeDesc{Name: "A", Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Register(TypeDesc{Name: "B", Size: 24, RefOffsets: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == 0 || b.ID == 0 || a.ID == b.ID {
		t.Fatalf("ids: %d %d", a.ID, b.ID)
	}
	if r.Lookup(a.ID) != a || r.LookupName("B") != b {
		t.Fatal("lookup mismatch")
	}
	if r.Lookup(999) != nil || r.LookupName("missing") != nil {
		t.Fatal("phantom lookups")
	}
}

func TestRegistryIdempotentSameLayout(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Register(TypeDesc{Name: "A", Size: 16, RefOffsets: []int{8}})
	a2, err := r.Register(TypeDesc{Name: "A", Size: 16, RefOffsets: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("re-registration returned a different descriptor")
	}
	if _, err := r.Register(TypeDesc{Name: "A", Size: 24, RefOffsets: []int{8}}); err == nil {
		t.Fatal("layout conflict accepted (size)")
	}
	if _, err := r.Register(TypeDesc{Name: "A", Size: 16, RefOffsets: []int{0}}); err == nil {
		t.Fatal("layout conflict accepted (offsets)")
	}
}

func TestRegistryExplicitIDs(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(TypeDesc{ID: 7, Name: "Seven", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(TypeDesc{ID: 7, Name: "Other", Size: 8}); err == nil {
		t.Fatal("duplicate explicit id accepted")
	}
	next, err := r.Register(TypeDesc{Name: "Auto", Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= 7 {
		t.Fatalf("auto id %d did not advance past explicit 7", next.ID)
	}
}

func TestRegistryTypesOrdered(t *testing.T) {
	r := NewRegistry()
	r.Register(TypeDesc{Name: "A", Size: 8})
	r.Register(TypeDesc{Name: "B", Size: 8})
	r.Register(TypeDesc{Name: "C", Size: 8})
	ts := r.Types()
	if len(ts) != 3 {
		t.Fatalf("Types len %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].ID <= ts[i-1].ID {
			t.Fatal("Types not id-ordered")
		}
	}
}
