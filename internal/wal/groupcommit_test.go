package wal

import (
	"sync"
	"testing"
	"time"

	"bess/internal/page"
)

// slowSync injects latency into Sync so concurrent committers overlap and
// the group-commit path is exercised deterministically.
type slowSync struct {
	*memBacking
	delay time.Duration
}

func (b *slowSync) Sync() error {
	time.Sleep(b.delay)
	return nil
}

func TestGroupCommitSharesSyncs(t *testing.T) {
	l := &Log{back: &slowSync{memBacking: &memBacking{}, delay: time.Millisecond}}
	if err := l.init(); err != nil {
		t.Fatal(err)
	}
	const goroutines, commits = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commits; i++ {
				lsn, err := l.Append(&Record{Type: TCommit, Tx: uint64(g*commits + i + 1)})
				if err != nil {
					errs <- err
					return
				}
				if err := l.Flush(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Flushes != goroutines*commits {
		t.Fatalf("flushes = %d, want %d", st.Flushes, goroutines*commits)
	}
	if st.Syncs >= st.Flushes {
		t.Fatalf("no grouping: syncs=%d flushes=%d", st.Syncs, st.Flushes)
	}
	if st.GroupedCommits == 0 {
		t.Fatal("no grouped commits recorded")
	}
	if l.FlushedLSN() != l.NextLSN() {
		t.Fatalf("tail left unflushed: flushed=%d next=%d", l.FlushedLSN(), l.NextLSN())
	}
	// Every record survived the concurrent flushing intact.
	var n int64
	if err := l.Iterate(0, func(page.LSN, *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != st.Appends {
		t.Fatalf("iterated %d of %d records", n, st.Appends)
	}
}

// Regression for the early-return boundary: forcing an LSN that is already
// durable must be a no-op even when later records are buffered — it must
// neither advance the durable frontier nor pay another sync.
func TestFlushAlreadyDurableNoResync(t *testing.T) {
	l := NewMem()
	l1, err := l.Append(&Record{Type: TCommit, Tx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l1); err != nil {
		t.Fatal(err)
	}
	syncs := l.Stats().Syncs
	durable := l.FlushedLSN()
	if _, err := l.Append(&Record{Type: TCommit, Tx: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l1); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != syncs {
		t.Fatalf("re-synced an already-durable LSN: syncs %d -> %d", syncs, got)
	}
	if l.FlushedLSN() != durable {
		t.Fatalf("durable frontier moved: %d -> %d", durable, l.FlushedLSN())
	}
	// The record appended after the force is still only buffered; a real
	// force picks it up.
	if err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() == durable {
		t.Fatal("tail never flushed")
	}
}

// A commit record whose LSN equals the durable frontier (everything before
// it is durable, the record itself is not) must still be forced — the
// boundary fix must not trade away commit durability.
func TestFlushFirstUnflushedRecordForces(t *testing.T) {
	l := NewMem()
	if _, err := l.Append(&Record{Type: TCommit, Tx: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(&Record{Type: TCommit, Tx: 2}) // lsn == FlushedLSN()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != l.FlushedLSN() {
		t.Fatalf("test setup: lsn=%d flushed=%d", lsn, l.FlushedLSN())
	}
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() <= lsn {
		t.Fatalf("commit record at the durable frontier not forced: flushed=%d", l.FlushedLSN())
	}
}
