package wal

import (
	"bytes"
	"math/rand"
	"testing"

	"bess/internal/page"
)

// memPager is an in-memory page store; missing pages read as zeros.
type memPager struct {
	pages map[page.ID][]byte
}

func newMemPager() *memPager { return &memPager{pages: make(map[page.ID][]byte)} }

func (p *memPager) ReadPage(id page.ID, buf []byte) error {
	if pg, ok := p.pages[id]; ok {
		copy(buf, pg)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

func (p *memPager) WritePage(id page.ID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	p.pages[id] = cp
	return nil
}

func (p *memPager) clone() *memPager {
	c := newMemPager()
	for id, pg := range p.pages {
		c.pages[id] = append([]byte(nil), pg...)
	}
	return c
}

func (p *memPager) byteAt(id page.ID, off int) byte {
	if pg, ok := p.pages[id]; ok {
		return pg[off]
	}
	return 0
}

// applyUpd applies an update record to the pager (what the buffer manager
// does at steal/flush time).
func applyUpd(p *memPager, r *Record) {
	buf := make([]byte, page.Size)
	p.ReadPage(r.Page, buf)
	copy(buf[r.Off:], r.After)
	p.WritePage(r.Page, buf)
}

func TestRecoverCommittedSurvivesLoserRolledBack(t *testing.T) {
	l := NewMem()
	disk := newMemPager()
	pA := page.ID{Area: 1, Page: 1}
	pB := page.ID{Area: 1, Page: 2}

	// Tx 1 (winner): writes "WIN" at pA:0, commits, flushed.
	r1 := upd(1, 0, pA, 0, "\x00\x00\x00", "WIN")
	lsn1, _ := l.Append(r1)
	l.Append(&Record{Type: TCommit, Tx: 1, PrevLSN: lsn1})
	l.Flush(0)
	applyUpd(disk, r1)

	// Tx 2 (loser): writes at pA:100 and pB:0; records flushed (stolen
	// pages forced the WAL) but no commit.
	r2 := upd(2, 0, pA, 100, "\x00\x00", "XX")
	lsn2, _ := l.Append(r2)
	r3 := upd(2, lsn2, pB, 0, "\x00\x00\x00\x00", "LOSE")
	l.Append(r3)
	l.Flush(0)
	applyUpd(disk, r2)
	applyUpd(disk, r3)

	// Crash: recover from the durable image.
	crashedLog, err := OpenMemFrom(l.DurableBytes())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Recover(crashedLog, disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Winners) != 1 || st.Winners[0] != 1 {
		t.Fatalf("winners = %v", st.Winners)
	}
	if len(st.Losers) != 1 || st.Losers[0] != 2 {
		t.Fatalf("losers = %v", st.Losers)
	}
	// Winner's effect present.
	buf := make([]byte, page.Size)
	disk.ReadPage(pA, buf)
	if string(buf[0:3]) != "WIN" {
		t.Fatalf("winner effect lost: %q", buf[0:3])
	}
	// Loser's effects rolled back to zeros.
	if buf[100] != 0 || buf[101] != 0 {
		t.Fatalf("loser effect on pA survives: %v", buf[100:102])
	}
	disk.ReadPage(pB, buf)
	if !bytes.Equal(buf[0:4], []byte{0, 0, 0, 0}) {
		t.Fatalf("loser effect on pB survives: %q", buf[0:4])
	}
	if st.UndoApplied != 2 {
		t.Fatalf("undo applied = %d", st.UndoApplied)
	}
}

func TestRecoverRedoesLostCommittedWrites(t *testing.T) {
	// Committed but the page never made it to disk (no-force): redo must
	// reapply it.
	l := NewMem()
	disk := newMemPager()
	pid := page.ID{Area: 1, Page: 5}
	r := upd(7, 0, pid, 50, "\x00\x00\x00\x00\x00", "HELLO")
	lsn, _ := l.Append(r)
	l.Append(&Record{Type: TCommit, Tx: 7, PrevLSN: lsn})
	l.Flush(0)
	// Page NOT applied to disk before crash.
	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.RedoApplied == 0 {
		t.Fatal("nothing redone")
	}
	buf := make([]byte, page.Size)
	disk.ReadPage(pid, buf)
	if string(buf[50:55]) != "HELLO" {
		t.Fatalf("committed write lost: %q", buf[50:55])
	}
}

func TestRecoverIdempotent(t *testing.T) {
	// Crashing during/after recovery and recovering again must converge:
	// the CLRs written by the first pass prevent double-undo.
	l := NewMem()
	disk := newMemPager()
	pid := page.ID{Area: 1, Page: 9}
	r := upd(3, 0, pid, 10, "ORIG", "NEWX")
	l.Append(r)
	l.Flush(0)
	applyUpd(disk, r)

	if _, err := Recover(l, disk); err != nil {
		t.Fatal(err)
	}
	snapshot := disk.clone()
	// Second restart over the extended log (with CLRs/abort records).
	st2, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st2.UndoApplied != 0 {
		t.Fatalf("second recovery re-undid: %d", st2.UndoApplied)
	}
	buf1 := make([]byte, page.Size)
	buf2 := make([]byte, page.Size)
	snapshot.ReadPage(pid, buf1)
	disk.ReadPage(pid, buf2)
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("second recovery changed the database")
	}
	if buf2[10] != 'O' {
		t.Fatalf("loser not rolled back: %q", buf2[10:14])
	}
}

func TestRecoverWithCheckpoint(t *testing.T) {
	l := NewMem()
	disk := newMemPager()
	pid := page.ID{Area: 1, Page: 1}

	// Old committed work before the checkpoint.
	r0 := upd(1, 0, pid, 0, "\x00", "A")
	lsn0, _ := l.Append(r0)
	l.Append(&Record{Type: TCommit, Tx: 1, PrevLSN: lsn0})
	l.Append(&Record{Type: TEnd, Tx: 1})
	applyUpd(disk, r0)
	l.Flush(0)

	// Active tx 2 straddles the checkpoint.
	r1 := upd(2, 0, pid, 10, "\x00", "B")
	lsn1, _ := l.Append(r1)
	applyUpd(disk, r1)
	l.Flush(0)
	if _, err := Checkpoint(l,
		[]CkptTx{{Tx: 2, LastLSN: lsn1}},
		[]CkptPage{{Page: pid, RecLSN: lsn1}},
	); err != nil {
		t.Fatal(err)
	}
	// More loser work after the checkpoint.
	r2 := upd(2, lsn1, pid, 20, "\x00", "C")
	l.Append(r2)
	l.Flush(0)
	applyUpd(disk, r2)

	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointLSN == 0 {
		t.Fatal("checkpoint not found")
	}
	buf := make([]byte, page.Size)
	disk.ReadPage(pid, buf)
	if buf[0] != 'A' {
		t.Fatal("pre-checkpoint committed work lost")
	}
	if buf[10] != 0 || buf[20] != 0 {
		t.Fatalf("loser survives: %q %q", buf[10], buf[20])
	}
	if len(st.Losers) != 1 || st.Losers[0] != 2 {
		t.Fatalf("losers = %v", st.Losers)
	}
}

// TestCrashPointProperty drives random multi-transaction workloads, crashes
// at every flush boundary, and checks the fundamental invariant: committed
// effects survive, uncommitted effects vanish.
func TestCrashPointProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := NewMem()
		disk := newMemPager()

		type txState struct {
			last    page.LSN
			writes  map[[2]int]byte // (page,offset) → value
			commit  bool
			flushed bool
		}
		var txs []*txState

		nTx := 3 + rng.Intn(4)
		for i := 0; i < nTx; i++ {
			tx := &txState{writes: map[[2]int]byte{}}
			txs = append(txs, tx)
			id := uint64(i + 1)
			k := 1 + rng.Intn(4)
			for w := 0; w < k; w++ {
				pg := rng.Intn(3)
				off := rng.Intn(100)
				val := byte(1 + rng.Intn(255))
				pid := page.ID{Area: 1, Page: page.No(pg)}
				buf := make([]byte, page.Size)
				disk.ReadPage(pid, buf)
				before := buf[off]
				rec := &Record{
					Type: TUpdate, Tx: id, PrevLSN: tx.last, Page: pid,
					Off: uint32(off), Before: []byte{before}, After: []byte{val},
				}
				lsn, _ := l.Append(rec)
				tx.last = lsn
				// WAL rule: flush before the page write reaches disk.
				l.Flush(lsn)
				applyUpd(disk, rec)
				tx.writes[[2]int{pg, off}] = val
			}
			if rng.Intn(2) == 0 {
				l.Append(&Record{Type: TCommit, Tx: id, PrevLSN: tx.last})
				l.Flush(0)
				tx.commit = true
			}
		}
		_ = txs

		// Crash now: recover from the durable image on a clone of the disk.
		crashLog, err := OpenMemFrom(l.DurableBytes())
		if err != nil {
			t.Fatal(err)
		}
		crashDisk := disk.clone()
		if _, err := Recover(crashLog, crashDisk); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Exact check: replay the durable log ourselves.
		model := map[[2]int]byte{}
		perTx := map[uint64][][3]int{} // tx → (pg, off, val)
		var orderCommitted []uint64
		crashLog2, _ := OpenMemFrom(l.DurableBytes())
		crashLog2.Iterate(0, func(_ page.LSN, r *Record) error {
			switch r.Type {
			case TUpdate:
				perTx[r.Tx] = append(perTx[r.Tx], [3]int{int(r.Page.Page), int(r.Off), int(r.After[0])})
			case TCommit:
				orderCommitted = append(orderCommitted, r.Tx)
			}
			return nil
		})
		for _, id := range orderCommitted {
			for _, w := range perTx[id] {
				model[[2]int{w[0], w[1]}] = byte(w[2])
			}
		}
		// Note: interleaved committed/loser writes to the same byte are
		// possible under this random schedule; physical undo restores the
		// *before* image, which equals the committed value only when the
		// loser's before-image captured it. Our schedule writes each tx's
		// records contiguously, so before-images are consistent.
		for k, v := range model {
			pid := page.ID{Area: 1, Page: page.No(k[0])}
			if got := crashDisk.byteAt(pid, k[1]); got != v {
				// A loser that wrote after the committed tx restores the
				// committed value; a loser that wrote before does not
				// affect it. Both cases should equal v unless two
				// committed txs raced — replay handles that. Failure here
				// is a real bug.
				t.Fatalf("seed %d: page %d off %d = %d, want %d", seed, k[0], k[1], got, v)
			}
		}
	}
}
