package wal

import (
	"bytes"
	"path/filepath"
	"testing"

	"bess/internal/page"
)

func upd(tx uint64, prev page.LSN, pid page.ID, off uint32, before, after string) *Record {
	return &Record{
		Type: TUpdate, Tx: tx, PrevLSN: prev, Page: pid, Off: off,
		Before: []byte(before), After: []byte(after),
	}
}

func TestAppendFlushIterate(t *testing.T) {
	l := NewMem()
	pid := page.ID{Area: 1, Page: 10}
	l1, err := l.Append(upd(1, 0, pid, 100, "aaa", "bbb"))
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := l.Append(&Record{Type: TCommit, Tx: 1, PrevLSN: l1})
	if l2 <= l1 {
		t.Fatalf("LSNs not increasing: %d %d", l1, l2)
	}
	// Nothing durable yet.
	var seen int
	l.Iterate(0, func(page.LSN, *Record) error { seen++; return nil })
	if seen != 0 {
		t.Fatalf("unflushed records visible: %d", seen)
	}
	if err := l.Flush(l2); err != nil {
		t.Fatal(err)
	}
	var recs []*Record
	var lsns []page.LSN
	l.Iterate(0, func(lsn page.LSN, r *Record) error {
		recs = append(recs, r)
		lsns = append(lsns, lsn)
		return nil
	})
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if lsns[0] != l1 || lsns[1] != l2 {
		t.Fatalf("lsns = %v", lsns)
	}
	r := recs[0]
	if r.Type != TUpdate || r.Tx != 1 || r.Page != pid || r.Off != 100 ||
		string(r.Before) != "aaa" || string(r.After) != "bbb" {
		t.Fatalf("record round trip: %+v", r)
	}
	if recs[1].PrevLSN != l1 {
		t.Fatal("prevLSN lost")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	l := NewMem()
	lsn, err := Checkpoint(l,
		[]CkptTx{{Tx: 5, LastLSN: 99}, {Tx: 6, LastLSN: 120}},
		[]CkptPage{{Page: page.ID{Area: 1, Page: 3}, RecLSN: 42}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := l.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ActiveTxs) != 2 || rec.ActiveTxs[1].Tx != 6 || rec.ActiveTxs[1].LastLSN != 120 {
		t.Fatalf("active txs: %+v", rec.ActiveTxs)
	}
	if len(rec.DirtyPages) != 1 || rec.DirtyPages[0].RecLSN != 42 {
		t.Fatalf("dirty pages: %+v", rec.DirtyPages)
	}
}

func TestDurableBytesExcludesTail(t *testing.T) {
	l := NewMem()
	pid := page.ID{Area: 1, Page: 1}
	l.Append(upd(1, 0, pid, 0, "x", "y"))
	l.Flush(0)
	l.Append(upd(1, 0, pid, 0, "y", "z")) // not flushed: lost in the crash
	img := l.DurableBytes()

	l2, err := OpenMemFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	l2.Iterate(0, func(page.LSN, *Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("recovered records = %d, want 1", n)
	}
	// The reopened log appends after the surviving prefix.
	lsn, _ := l2.Append(&Record{Type: TCommit, Tx: 9})
	if lsn < l2.FlushedLSN() {
		t.Fatal("append into durable region")
	}
}

func TestTornTailDetected(t *testing.T) {
	l := NewMem()
	l.Append(upd(1, 0, page.ID{Area: 1, Page: 1}, 0, "a", "b"))
	l.Flush(0)
	img := l.DurableBytes()
	// Corrupt the final byte (torn write).
	img[len(img)-1] ^= 0xFF
	l2, err := OpenMemFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	l2.Iterate(0, func(page.LSN, *Record) error { n++; return nil })
	if n != 0 {
		t.Fatalf("torn record surfaced: %d", n)
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pid := page.ID{Area: 2, Page: 7}
	lsn, _ := l.Append(upd(3, 0, pid, 8, "old", "new"))
	l.Append(&Record{Type: TCommit, Tx: 3, PrevLSN: lsn})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var types []Type
	l2.Iterate(0, func(_ page.LSN, r *Record) error {
		types = append(types, r.Type)
		return nil
	})
	if len(types) != 2 || types[0] != TUpdate || types[1] != TCommit {
		t.Fatalf("types = %v", types)
	}
}

func TestFlushUpToAlreadyFlushed(t *testing.T) {
	l := NewMem()
	lsn, _ := l.Append(&Record{Type: TCommit, Tx: 1})
	l.Flush(0)
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 1 || st.Syncs != 1 {
		t.Fatalf("stats = %d/%d", st.Appends, st.Syncs)
	}
}

func TestTypeStrings(t *testing.T) {
	if TUpdate.String() != "update" || TCLR.String() != "clr" || TCheckpoint.String() != "checkpoint" {
		t.Fatal("type strings")
	}
}

func TestClosedLog(t *testing.T) {
	l := NewMem()
	l.Close()
	if _, err := l.Append(&Record{Type: TCommit}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Flush(0); err != ErrClosed {
		t.Fatalf("flush after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRecordEncodingAllTypes(t *testing.T) {
	l := NewMem()
	pid := page.ID{Area: 9, Page: 1234}
	records := []*Record{
		upd(1, 0, pid, 77, "before-bytes", "after-bytes"),
		{Type: TCLR, Tx: 1, PrevLSN: 5, Page: pid, Off: 3, After: []byte("undoimg"), UndoNext: 17},
		{Type: TCommit, Tx: 2, PrevLSN: 9},
		{Type: TAbort, Tx: 3},
		{Type: TEnd, Tx: 3},
	}
	for _, r := range records {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush(0)
	var got []*Record
	l.Iterate(0, func(_ page.LSN, r *Record) error { got = append(got, r); return nil })
	if len(got) != len(records) {
		t.Fatalf("got %d records", len(got))
	}
	clr := got[1]
	if clr.Type != TCLR || clr.UndoNext != 17 || !bytes.Equal(clr.After, []byte("undoimg")) {
		t.Fatalf("clr = %+v", clr)
	}
	for i, r := range got {
		if r.Tx != records[i].Tx || r.Type != records[i].Type {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}
