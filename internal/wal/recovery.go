package wal

import (
	"fmt"
	"sort"

	"bess/internal/page"
	"bess/internal/walcheck"
)

// The wal package opts into bess-vet's walorder analyzer (DESIGN.md §4f):
// recovery's stores through the Pager interface replay records already in
// the durable log — redo applies after-images inside the Iterate closure
// (covered by the walcheck runtime checker), and undo's restores follow the
// abort/end appends of the loser pass on the same walk.
//
//bess:walorder
//bess:walsink Pager.WritePage

// Pager is the page store recovery replays against.
type Pager interface {
	ReadPage(id page.ID, buf []byte) error
	WritePage(id page.ID, data []byte) error
}

// RecoveryStats summarizes one restart.
type RecoveryStats struct {
	RecordsAnalyzed int
	RedoApplied     int
	UndoApplied     int // CLRs written during undo
	Losers          []uint64
	Winners         []uint64
	InDoubt         []uint64 // prepared but undecided 2PC participants
	// InDoubtLast maps each in-doubt transaction to its last LSN (the
	// prepare record) so the server can adopt and later commit or roll
	// back the branch when the coordinator's decision arrives.
	InDoubtLast   map[uint64]page.LSN
	CheckpointLSN page.LSN
	RedoStartLSN  page.LSN
}

// txInfo tracks one transaction during analysis.
type txInfo struct {
	lastLSN page.LSN
	status  byte // 'A' active, 'C' committed, 'E' ended
}

// Recover performs ARIES-style restart: analysis from the most recent
// checkpoint, physical redo of history, and undo of loser transactions with
// CLR logging. New CLR/abort records are appended to l and flushed.
func Recover(l *Log, p Pager) (*RecoveryStats, error) {
	st := &RecoveryStats{}

	// Pass 0: find the most recent checkpoint.
	var ckptLSN page.LSN
	var ckpt *Record
	if err := l.Iterate(firstLSN, func(lsn page.LSN, rec *Record) error {
		st.RecordsAnalyzed++
		if rec.Type == TCheckpoint {
			ckptLSN, ckpt = lsn, rec
		}
		return nil
	}); err != nil {
		return nil, err
	}
	st.CheckpointLSN = ckptLSN

	// Pass 1: analysis — rebuild the transaction table and dirty-page table
	// starting from the checkpoint.
	txs := make(map[uint64]*txInfo)
	dpt := make(map[page.ID]page.LSN)
	scanFrom := firstLSN
	if ckpt != nil {
		scanFrom = ckptLSN
		for _, e := range ckpt.ActiveTxs {
			txs[e.Tx] = &txInfo{lastLSN: e.LastLSN, status: 'A'}
		}
		for _, e := range ckpt.DirtyPages {
			dpt[e.Page] = e.RecLSN
		}
	}
	if err := l.Iterate(scanFrom, func(lsn page.LSN, rec *Record) error {
		switch rec.Type {
		case TUpdate, TCLR:
			ti := txs[rec.Tx]
			if ti == nil {
				ti = &txInfo{status: 'A'}
				txs[rec.Tx] = ti
			}
			ti.lastLSN = lsn
			ti.status = 'A'
			if _, ok := dpt[rec.Page]; !ok {
				dpt[rec.Page] = lsn
			}
		case TCommit:
			if ti := txs[rec.Tx]; ti != nil {
				ti.status = 'C'
				ti.lastLSN = lsn
			} else {
				txs[rec.Tx] = &txInfo{status: 'C', lastLSN: lsn}
			}
		case TPrepare:
			// In-doubt: neither redone away nor undone until the
			// coordinator's decision arrives (presumed-abort handled by
			// the server layer).
			if ti := txs[rec.Tx]; ti != nil {
				ti.status = 'P'
				ti.lastLSN = lsn
			} else {
				txs[rec.Tx] = &txInfo{status: 'P', lastLSN: lsn}
			}
		case TAbort:
			// Rollback completed before the crash: nothing left to undo.
			if ti := txs[rec.Tx]; ti != nil {
				ti.status = 'E'
			}
		case TEnd:
			delete(txs, rec.Tx)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 2: redo — repeat history from the earliest recLSN.
	redoStart := firstLSN
	if ckpt != nil {
		redoStart = ckptLSN
		for _, rl := range dpt {
			if rl < redoStart {
				redoStart = rl
			}
		}
	}
	st.RedoStartLSN = redoStart
	buf := make([]byte, page.Size)
	if err := l.Iterate(redoStart, func(lsn page.LSN, rec *Record) error {
		if rec.Type != TUpdate && rec.Type != TCLR {
			return nil
		}
		if len(rec.After) == 0 {
			return nil
		}
		if err := p.ReadPage(rec.Page, buf); err != nil {
			return fmt.Errorf("wal: redo read %v: %w", rec.Page, err)
		}
		if int(rec.Off)+len(rec.After) > len(buf) {
			return fmt.Errorf("wal: redo record at %d out of page bounds", lsn)
		}
		copy(buf[rec.Off:], rec.After)
		// Redo re-applies a record already durable in the log: that record
		// is the coverage.
		walcheck.NoteUpdate(rec.Page)
		if err := p.WritePage(rec.Page, buf); err != nil {
			return fmt.Errorf("wal: redo write %v: %w", rec.Page, err)
		}
		st.RedoApplied++
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 3: undo losers, deepest LSN first, writing CLRs.
	type loser struct {
		tx   uint64
		next page.LSN
	}
	var losers []loser
	for tx, ti := range txs {
		switch ti.status {
		case 'A':
			losers = append(losers, loser{tx: tx, next: ti.lastLSN})
			st.Losers = append(st.Losers, tx)
		case 'C':
			st.Winners = append(st.Winners, tx)
		case 'P':
			st.InDoubt = append(st.InDoubt, tx)
			if st.InDoubtLast == nil {
				st.InDoubtLast = make(map[uint64]page.LSN)
			}
			st.InDoubtLast[tx] = ti.lastLSN
		}
	}
	sort.Slice(st.InDoubt, func(i, j int) bool { return st.InDoubt[i] < st.InDoubt[j] })
	sort.Slice(losers, func(i, j int) bool { return losers[i].next > losers[j].next })
	sort.Slice(st.Losers, func(i, j int) bool { return st.Losers[i] < st.Losers[j] })
	sort.Slice(st.Winners, func(i, j int) bool { return st.Winners[i] < st.Winners[j] })

	for len(losers) > 0 {
		// Take the loser with the largest next-LSN (reverse chronological).
		sort.Slice(losers, func(i, j int) bool { return losers[i].next > losers[j].next })
		cur := &losers[0]
		if cur.next == 0 {
			// Rollback complete for this transaction.
			if _, err := l.Append(&Record{Type: TAbort, Tx: cur.tx}); err != nil {
				return nil, err
			}
			if _, err := l.Append(&Record{Type: TEnd, Tx: cur.tx}); err != nil {
				return nil, err
			}
			losers = losers[1:]
			continue
		}
		rec, err := l.ReadRecord(cur.next)
		if err != nil {
			return nil, fmt.Errorf("wal: undo read at %d: %w", cur.next, err)
		}
		switch rec.Type {
		case TUpdate:
			// Apply the before-image and log a CLR.
			if len(rec.Before) > 0 {
				if err := p.ReadPage(rec.Page, buf); err != nil {
					return nil, err
				}
				copy(buf[rec.Off:], rec.Before)
				// The loser's update record covers its own undo; the CLR
				// appended below re-describes the restore for redo.
				walcheck.NoteUpdate(rec.Page)
				if err := p.WritePage(rec.Page, buf); err != nil {
					return nil, err
				}
			}
			if _, err := l.Append(&Record{
				Type:     TCLR,
				Tx:       rec.Tx,
				Page:     rec.Page,
				Off:      rec.Off,
				After:    rec.Before, // the CLR's redo is the undo image
				UndoNext: rec.PrevLSN,
			}); err != nil {
				return nil, err
			}
			st.UndoApplied++
			cur.next = rec.PrevLSN
		case TCLR:
			// Already-compensated work: skip to UndoNext.
			cur.next = rec.UndoNext
		default:
			cur.next = rec.PrevLSN
		}
	}
	if err := l.Flush(0); err != nil {
		return nil, err
	}
	return st, nil
}

// Checkpoint writes a fuzzy checkpoint record capturing the live
// transaction table and dirty-page table, and flushes the log.
func Checkpoint(l *Log, active []CkptTx, dirty []CkptPage) (page.LSN, error) {
	lsn, err := l.Append(&Record{Type: TCheckpoint, ActiveTxs: active, DirtyPages: dirty})
	if err != nil {
		return 0, err
	}
	if err := l.Flush(0); err != nil {
		return 0, err
	}
	return lsn, nil
}
