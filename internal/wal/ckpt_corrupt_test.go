package wal

import (
	"bytes"
	"testing"

	"bess/internal/page"
)

// ckptCorruptImage builds a log with two checkpoints: tx1 commits an update
// to page 1, checkpoint #1, tx2 commits an update to page 2, checkpoint #2
// last. Returns the durable image, both checkpoint LSNs, the byte offset
// one past checkpoint #2, and the expected post-recovery page contents.
func ckptCorruptImage(t *testing.T) (img []byte, ckpt1, ckpt2, end page.LSN, want map[page.ID][]byte) {
	t.Helper()
	l := NewMem()
	defer l.Close()
	want = make(map[page.ID][]byte)
	pg := func(n page.No) page.ID { return page.ID{Area: 3, Page: n} }
	fill := func(b byte) []byte { return bytes.Repeat([]byte{b}, page.Size) }
	zero := make([]byte, page.Size)

	commitUpdate := func(tx uint64, id page.ID, after []byte) {
		lsn, err := l.Append(&Record{Type: TUpdate, Tx: tx, Page: id, Off: 0, Before: zero, After: after})
		if err != nil {
			t.Fatal(err)
		}
		clsn, err := l.Append(&Record{Type: TCommit, Tx: tx, PrevLSN: lsn})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(clsn); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(&Record{Type: TEnd, Tx: tx}); err != nil {
			t.Fatal(err)
		}
		want[id] = after
	}

	commitUpdate(1, pg(1), fill(0x11))
	var err error
	if ckpt1, err = Checkpoint(l, nil, []CkptPage{{Page: pg(1), RecLSN: firstLSN}}); err != nil {
		t.Fatal(err)
	}
	commitUpdate(2, pg(2), fill(0x22))
	if ckpt2, err = Checkpoint(l, nil,
		[]CkptPage{{Page: pg(1), RecLSN: firstLSN}, {Page: pg(2), RecLSN: firstLSN}}); err != nil {
		t.Fatal(err)
	}
	end = l.NextLSN()
	if err := l.Flush(end); err != nil {
		t.Fatal(err)
	}
	return l.DurableBytes(), ckpt1, ckpt2, end, want
}

// TestCheckpointCorruptionFallsBack garbage-fills the most recent
// checkpoint record at every byte boundary (mirroring the torn-tail
// sweeps): recovery must never consume the broken record — it falls back
// to the previous checkpoint and reaches exactly the clean-run state.
func TestCheckpointCorruptionFallsBack(t *testing.T) {
	img, ckpt1, ckpt2, end, want := ckptCorruptImage(t)

	checkState := func(t *testing.T, p *memPager) {
		t.Helper()
		buf := make([]byte, page.Size)
		for id, w := range want {
			if err := p.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, w) {
				t.Fatalf("page %v diverges from the clean-run state", id)
			}
		}
	}

	// Clean baseline: recovery analyzes from checkpoint #2.
	l, err := OpenMemFrom(append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	p := newMemPager()
	st, err := Recover(l, p)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if st.CheckpointLSN != ckpt2 {
		t.Fatalf("clean recovery used checkpoint at %d, want %d", st.CheckpointLSN, ckpt2)
	}
	checkState(t, p)

	recLen := int(end - ckpt2)
	for off := 0; off < recLen; off++ {
		broken := append([]byte(nil), img...)
		// Garbage, not a flip: splitmix-ish bytes so every boundary sees a
		// different wrong value (and never the original).
		broken[int(ckpt2)+off] ^= byte(0x9E+off*0x61) | 1
		l, err := OpenMemFrom(broken)
		if err != nil {
			t.Fatalf("off %d: reopen: %v", off, err)
		}
		p := newMemPager()
		st, err := Recover(l, p)
		if err != nil {
			t.Fatalf("off %d: recover: %v", off, err)
		}
		if st.CheckpointLSN == ckpt2 {
			t.Fatalf("off %d: recovery consumed the corrupt checkpoint record", off)
		}
		if st.CheckpointLSN != ckpt1 {
			t.Fatalf("off %d: recovery used checkpoint at %d, want fallback to %d", off, st.CheckpointLSN, ckpt1)
		}
		checkState(t, p)
		l.Close()
	}
}
