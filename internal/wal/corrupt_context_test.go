package wal

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"bess/internal/page"
)

// TestCorruptRecordErrorContext pins the error contract for log rot: a
// record whose CRC no longer matches must surface with the ErrCorrupt
// sentinel intact (errors.Is) and the byte offset of the damage in the
// message, both through ReadRecord and through the full-log Verify sweep.
func TestCorruptRecordErrorContext(t *testing.T) {
	l := NewMem()
	fill := bytes.Repeat([]byte{0x5A}, page.Size)
	zero := make([]byte, page.Size)
	lsn1, err := l.Append(&Record{
		Type: TUpdate, Tx: 1, Page: page.ID{Area: 3, Page: 1}, Before: zero, After: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(&Record{Type: TCommit, Tx: 1, PrevLSN: lsn1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	img := l.DurableBytes()
	l.Close()

	// Rot a byte in the middle of the first record's body. The reopened
	// log's tail scan stops there (torn-tail doctrine), so the second,
	// intact record past the stored length proves mid-log rot.
	img[int(lsn1)+recHeaderSize+6] ^= 0x80
	l2, err := OpenMemFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	_, rerr := l2.ReadRecord(lsn1)
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("ReadRecord err = %v, want ErrCorrupt identity", rerr)
	}
	if want := fmt.Sprintf("byte offset %d", lsn1); !strings.Contains(rerr.Error(), want) {
		t.Fatalf("ReadRecord message %q does not carry %q", rerr, want)
	}

	_, verr := l2.Verify()
	if !errors.Is(verr, ErrCorrupt) {
		t.Fatalf("Verify err = %v, want ErrCorrupt identity", verr)
	}
	var ce *page.CorruptError
	if !errors.As(verr, &ce) {
		t.Fatalf("Verify err = %T, want *page.CorruptError", verr)
	}
	if ce.Section != "wal" || ce.Off != int64(lsn1) {
		t.Fatalf("Verify context = %+v, want wal section at offset %d", ce, lsn1)
	}

	// Rot is local: the intact record past the damage still reads clean.
	if rec, err := l2.ReadRecord(lsn2); err != nil || rec.Type != TCommit {
		t.Fatalf("intact record at %d: rec=%+v err=%v", lsn2, rec, err)
	}
}
