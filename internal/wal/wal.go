// Package wal implements the BeSS write-ahead log: an ARIES-like protocol
// (paper §3, reference [21]) with physical byte-range update records,
// compensation log records (CLRs), fuzzy checkpoints, and a three-pass
// restart (analysis, redo, undo).
//
// Redo is physical (copy the after-image to the page at the recorded
// offset) and therefore idempotent, so pages need not carry a pageLSN:
// restart always repeats history from the checkpoint's redo point and then
// rolls back losers under CLR protection, exactly in ARIES style.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"bess/internal/lockcheck"
	"bess/internal/page"
)

// Type is a log record type.
type Type uint8

// Log record types.
const (
	TUpdate Type = iota + 1
	TCLR
	TCommit
	TAbort // transaction rollback complete
	TEnd   // transaction removed from the table (after commit or abort)
	TCheckpoint
	TPrepare // 2PC: participant vote logged and forced; tx is in-doubt until decision
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TUpdate:
		return "update"
	case TCLR:
		return "clr"
	case TCommit:
		return "commit"
	case TAbort:
		return "abort"
	case TEnd:
		return "end"
	case TCheckpoint:
		return "checkpoint"
	case TPrepare:
		return "prepare"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// CkptTx is an active-transaction-table entry in a checkpoint record.
type CkptTx struct {
	Tx      uint64
	LastLSN page.LSN
}

// CkptPage is a dirty-page-table entry in a checkpoint record.
type CkptPage struct {
	Page   page.ID
	RecLSN page.LSN
}

// Record is one log record. LSNs are byte offsets of the record in the log.
type Record struct {
	Type    Type
	Tx      uint64
	PrevLSN page.LSN // previous record of the same transaction

	// Update / CLR fields.
	Page     page.ID
	Off      uint32   // byte offset within the page
	Before   []byte   // undo image (empty for CLRs)
	After    []byte   // redo image
	UndoNext page.LSN // CLR: next record to undo

	// Checkpoint fields.
	ActiveTxs  []CkptTx
	DirtyPages []CkptPage
}

// Errors returned by the log.
var (
	ErrCorrupt = errors.New("wal: corrupt record")
	ErrClosed  = errors.New("wal: closed")
)

const recHeaderSize = 4 + 4 // length + crc

// encode serializes r (excluding the length/crc header).
func (r *Record) encode() []byte {
	var b []byte
	b = append(b, byte(r.Type))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], r.Tx)
	b = append(b, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(r.PrevLSN))
	b = append(b, tmp[:]...)
	switch r.Type {
	case TUpdate, TCLR:
		binary.BigEndian.PutUint32(tmp[:4], uint32(r.Page.Area))
		b = append(b, tmp[:4]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(r.Page.Page))
		b = append(b, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:4], r.Off)
		b = append(b, tmp[:4]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(r.UndoNext))
		b = append(b, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.Before)))
		b = append(b, tmp[:4]...)
		b = append(b, r.Before...)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.After)))
		b = append(b, tmp[:4]...)
		b = append(b, r.After...)
	case TCheckpoint:
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.ActiveTxs)))
		b = append(b, tmp[:4]...)
		for _, e := range r.ActiveTxs {
			binary.BigEndian.PutUint64(tmp[:], e.Tx)
			b = append(b, tmp[:]...)
			binary.BigEndian.PutUint64(tmp[:], uint64(e.LastLSN))
			b = append(b, tmp[:]...)
		}
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.DirtyPages)))
		b = append(b, tmp[:4]...)
		for _, e := range r.DirtyPages {
			binary.BigEndian.PutUint32(tmp[:4], uint32(e.Page.Area))
			b = append(b, tmp[:4]...)
			binary.BigEndian.PutUint64(tmp[:], uint64(e.Page.Page))
			b = append(b, tmp[:]...)
			binary.BigEndian.PutUint64(tmp[:], uint64(e.RecLSN))
			b = append(b, tmp[:]...)
		}
	}
	return b
}

func decodeRecord(b []byte) (*Record, error) {
	if len(b) < 17 {
		return nil, ErrCorrupt
	}
	r := &Record{Type: Type(b[0])}
	r.Tx = binary.BigEndian.Uint64(b[1:9])
	r.PrevLSN = page.LSN(binary.BigEndian.Uint64(b[9:17]))
	p := b[17:]
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, ErrCorrupt
		}
		v := binary.BigEndian.Uint32(p[:4])
		p = p[4:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, ErrCorrupt
		}
		v := binary.BigEndian.Uint64(p[:8])
		p = p[8:]
		return v, nil
	}
	switch r.Type {
	case TUpdate, TCLR:
		area, err := u32()
		if err != nil {
			return nil, err
		}
		pg, err := u64()
		if err != nil {
			return nil, err
		}
		r.Page = page.ID{Area: page.AreaID(area), Page: page.No(pg)}
		off, err := u32()
		if err != nil {
			return nil, err
		}
		r.Off = off
		un, err := u64()
		if err != nil {
			return nil, err
		}
		r.UndoNext = page.LSN(un)
		nb, err := u32()
		if err != nil || int(nb) > len(p) {
			return nil, ErrCorrupt
		}
		r.Before = append([]byte(nil), p[:nb]...)
		p = p[nb:]
		na, err := u32()
		if err != nil || int(na) > len(p) {
			return nil, ErrCorrupt
		}
		r.After = append([]byte(nil), p[:na]...)
		p = p[na:]
	case TCheckpoint:
		n, err := u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			tx, err := u64()
			if err != nil {
				return nil, err
			}
			l, err := u64()
			if err != nil {
				return nil, err
			}
			r.ActiveTxs = append(r.ActiveTxs, CkptTx{Tx: tx, LastLSN: page.LSN(l)})
		}
		n, err = u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			area, err := u32()
			if err != nil {
				return nil, err
			}
			pg, err := u64()
			if err != nil {
				return nil, err
			}
			l, err := u64()
			if err != nil {
				return nil, err
			}
			r.DirtyPages = append(r.DirtyPages, CkptPage{
				Page:   page.ID{Area: page.AreaID(area), Page: page.No(pg)},
				RecLSN: page.LSN(l),
			})
		}
	case TCommit, TAbort, TEnd, TPrepare:
		// header only
	default:
		return nil, ErrCorrupt
	}
	return r, nil
}

// Backing abstracts the durable medium behind the log buffer. Production
// logs run on the file/mem implementations below; the fault-injection layer
// (internal/fault) substitutes a medium that can lose power mid-write.
type Backing interface {
	io.WriterAt
	io.ReaderAt
	Sync() error
	Close() error
	Size() int64
}

type fileBacking struct{ f *os.File }

func (b fileBacking) WriteAt(p []byte, off int64) (int, error) { return b.f.WriteAt(p, off) }
func (b fileBacking) ReadAt(p []byte, off int64) (int, error)  { return b.f.ReadAt(p, off) }
func (b fileBacking) Sync() error                              { return b.f.Sync() }
func (b fileBacking) Close() error                             { return b.f.Close() }
func (b fileBacking) Size() int64 {
	fi, err := b.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

type memBacking struct {
	mu  sync.Mutex
	buf []byte
}

func (b *memBacking) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(b.buf)) {
		g := make([]byte, end)
		copy(g, b.buf)
		b.buf = g
	}
	copy(b.buf[off:end], p)
	return len(p), nil
}

func (b *memBacking) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off >= int64(len(b.buf)) {
		return 0, io.EOF
	}
	n := copy(p, b.buf[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (b *memBacking) Sync() error  { return nil }
func (b *memBacking) Close() error { return nil }
func (b *memBacking) Size() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(len(b.buf))
}

// RankLogMu is Log.mu's position in the server lock hierarchy declared in
// internal/server/lockorder.go (the innermost rank: commit paths may reach
// the log while holding a tx shard, never the reverse). The constant lives
// here because wal cannot import server.
const RankLogMu lockcheck.Rank = 60

// Log is an append-only write-ahead log with group commit. Safe for
// concurrent use: committers that arrive while a sync is in flight park on
// a condition variable and are woken when the leader's sync covers their
// LSN, so N concurrent commits share ~1 fsync.
type Log struct {
	mu       lockcheck.Mutex
	syncDone sync.Cond // broadcast at the end of every sync round
	back     Backing
	tail     []byte   // guarded by mu; buffered bytes not yet handed to a sync round
	tailAt   page.LSN // guarded by mu; byte offset of tail[0]
	nextLSN  page.LSN // guarded by mu; LSN of the next record to append
	flushed  page.LSN // guarded by mu; all bytes below this are durable
	syncing  bool     // guarded by mu; a leader is writing+syncing outside the lock
	closed   bool     // guarded by mu

	appends int64 // guarded by mu
	flushes int64 // guarded by mu
	syncs   int64 // guarded by mu
	grouped int64 // guarded by mu
}

// LogStats are cumulative log counters. Under group commit Syncs stays far
// below Flushes: followers whose LSN was covered by another caller's sync
// count as GroupedCommits instead of paying their own.
type LogStats struct {
	Appends        int64 // records buffered
	Flushes        int64 // Flush calls
	Syncs          int64 // physical write+sync rounds against the backing
	GroupedCommits int64 // Flush calls made durable by another caller's sync
}

// firstLSN is the LSN of the first record: offsets start after a small file
// header so that LSN 0 can mean "none".
const firstLSN = page.LSN(8)

var logMagic = []byte{0xBE, 0x55, 0x10, 0x60, 0, 0, 0, 1}

// OpenFile opens (creating if absent) a file-backed log, scanning to find
// the durable end.
func OpenFile(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{back: fileBacking{f}}
	if err := l.init(); err != nil {
		// Preserve err's identity when the cleanup Close succeeds.
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return l, nil
}

// Open opens (creating if empty) a log over an arbitrary backing — the
// entry point for fault-injected media; OpenFile/NewMem are conveniences
// over the same path.
func Open(b Backing) (*Log, error) {
	l := &Log{back: b}
	if err := l.init(); err != nil {
		return nil, err
	}
	return l, nil
}

// NewMem returns a memory-backed log (tests and crash simulation).
func NewMem() *Log {
	l := &Log{back: &memBacking{}}
	if err := l.init(); err != nil {
		panic(err) // memBacking cannot fail
	}
	return l
}

// OpenMemFrom rebuilds a memory log from a durable image produced by
// DurableBytes — the crash-recovery entry point for tests.
func OpenMemFrom(img []byte) (*Log, error) {
	l := &Log{back: &memBacking{buf: append([]byte(nil), img...)}}
	if err := l.init(); err != nil {
		return nil, err
	}
	return l, nil
}

// init finishes constructing a Log that no other goroutine can see yet.
//
//bess:prepublish
func (l *Log) init() error {
	l.mu.Init("Log.mu", RankLogMu)
	l.syncDone.L = &l.mu
	size := l.back.Size()
	if size == 0 {
		if _, err := l.back.WriteAt(logMagic, 0); err != nil {
			return err
		}
		if err := l.back.Sync(); err != nil {
			return err
		}
		l.nextLSN, l.flushed, l.tailAt = firstLSN, firstLSN, firstLSN
		return nil
	}
	hdr := make([]byte, 8)
	if _, err := l.back.ReadAt(hdr, 0); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if hdr[i] != logMagic[i] {
			return fmt.Errorf("wal: bad log magic")
		}
	}
	// Scan to the last valid record (a torn tail is truncated logically).
	lsn := firstLSN
	for {
		rec, next, err := l.readAt(lsn)
		if err != nil || rec == nil {
			break
		}
		lsn = next
	}
	l.nextLSN, l.flushed, l.tailAt = lsn, lsn, lsn
	return nil
}

// Append buffers rec and returns its LSN. The record is durable only after
// a Flush covering the LSN.
func (l *Log) Append(rec *Record) (page.LSN, error) {
	body := rec.encode()
	buf := make([]byte, recHeaderSize+len(body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], page.Checksum(body))
	copy(buf[recHeaderSize:], body)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	l.tail = append(l.tail, buf...)
	l.nextLSN += page.LSN(len(buf))
	l.appends++
	return lsn, nil
}

// Flush forces the log: on return every record with LSN <= upTo is durable
// (0 = everything buffered at entry) — the WAL force at commit. Concurrent
// callers form a group commit: one leader writes and syncs the accumulated
// tail for the whole group while the rest park on a condition variable.
func (l *Log) Flush(upTo page.LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.flushes++
	return l.flushTo(l.target(upTo))
}

// target converts Flush's inclusive record LSN into the exclusive byte
// offset the log must be durable through. The durable frontier only moves
// in whole records, so upTo+1 covers the record starting at upTo.
//
//bess:holds mu
func (l *Log) target(upTo page.LSN) page.LSN {
	if upTo == 0 || upTo >= l.nextLSN {
		return l.nextLSN
	}
	return upTo + 1
}

// flushTo blocks until the log is durable through target. Called with l.mu
// held; returns with it held (the lock is dropped around the physical
// write+sync so appenders keep making progress).
//
//bess:holds mu
func (l *Log) flushTo(target page.LSN) error {
	waited := false
	for {
		if l.closed {
			return ErrClosed
		}
		// <=, not <: an already-durable target must not rewrite and
		// re-sync the tail.
		if target <= l.flushed {
			if waited {
				l.grouped++
			}
			return nil
		}
		if !l.syncing {
			break
		}
		waited = true
		l.syncDone.Wait()
	}
	// Leader: detach the accumulated tail and sync it outside the lock so
	// appends and later committers keep running; they ride this round if
	// its snapshot covers them, or lead the next one.
	buf, base := l.tail, l.tailAt
	l.tail, l.tailAt = nil, l.nextLSN
	l.syncing = true
	l.mu.Unlock()
	_, err := l.back.WriteAt(buf, int64(base))
	if err == nil {
		err = l.back.Sync()
	}
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		// Put the unsynced bytes back in front of whatever was appended
		// meanwhile; woken followers retry leadership and surface their
		// own error.
		l.tail = append(buf, l.tail...)
		l.tailAt = base
		l.syncDone.Broadcast()
		return err
	}
	l.flushed = base + page.LSN(len(buf))
	l.syncs++
	l.syncDone.Broadcast()
	return nil
}

// FlushedLSN returns the first non-durable LSN.
func (l *Log) FlushedLSN() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next Append will get.
func (l *Log) NextLSN() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats reports cumulative log counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{Appends: l.appends, Flushes: l.flushes, Syncs: l.syncs, GroupedCommits: l.grouped}
}

// readAt reads the durable record at lsn. Returns (nil, lsn, nil) at a clean
// end of log.
func (l *Log) readAt(lsn page.LSN) (*Record, page.LSN, error) {
	hdr := make([]byte, recHeaderSize)
	if _, err := l.back.ReadAt(hdr, int64(lsn)); err != nil {
		return nil, lsn, nil // end of log
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > 1<<26 {
		return nil, lsn, nil
	}
	body := make([]byte, n)
	if _, err := l.back.ReadAt(body, int64(lsn)+recHeaderSize); err != nil {
		return nil, lsn, nil // torn record
	}
	if page.Checksum(body) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, lsn, nil // torn/corrupt tail
	}
	rec, err := decodeRecord(body)
	if err != nil {
		return nil, lsn, fmt.Errorf("wal: record at lsn %d: %w", lsn, err)
	}
	return rec, lsn + page.LSN(recHeaderSize+len(body)), nil
}

// VerifyStats summarizes one Verify walk.
type VerifyStats struct {
	Records int   // records that re-verified clean
	Bytes   int64 // durable bytes covered
}

// Verify re-checks the CRC of every record below the durable frontier, where
// a failure can only be bit rot (the bytes were once synced and valid), and
// then probes past the frontier: a broken record followed by a decodable one
// is mid-log corruption — readAt alone would silently treat it as a torn
// tail and truncate history. Corruption is reported as a *page.CorruptError
// wrapping ErrCorrupt with the record's LSN as the byte offset.
//
// A rotted record whose length prefix was also destroyed is indistinguishable
// from a torn tail in a length-prefixed log; the probe covers the common
// single-record rot, and the frontier walk covers everything a live server
// has flushed.
func (l *Log) Verify() (VerifyStats, error) {
	l.mu.Lock()
	end := l.flushed
	l.mu.Unlock()
	var st VerifyStats
	lsn := firstLSN
	for lsn < end {
		rec, next, err := l.readAt(lsn)
		if err != nil {
			return st, err
		}
		if rec == nil {
			return st, &page.CorruptError{
				Section: "wal", Off: int64(lsn), Len: recHeaderSize, Err: ErrCorrupt,
			}
		}
		st.Records++
		lsn = next
	}
	st.Bytes = int64(end)
	// Past the frontier (a reopened log stops its scan at the first invalid
	// record): if the stored length leads to a record that checks out, the
	// break is rot in the middle of history, not a tail lost to a crash.
	if rec, _, _ := l.readAt(end); rec == nil {
		hdr := make([]byte, recHeaderSize)
		if _, err := l.back.ReadAt(hdr, int64(end)); err == nil {
			n := binary.BigEndian.Uint32(hdr[0:4])
			if n > 0 && n <= 1<<26 {
				probe := end + page.LSN(recHeaderSize) + page.LSN(n)
				if rec2, _, _ := l.readAt(probe); rec2 != nil {
					return st, &page.CorruptError{
						Section: "wal", Off: int64(end), Len: int(recHeaderSize + n), Err: ErrCorrupt,
					}
				}
			}
		}
	}
	return st, nil
}

// Iterate calls fn for every durable record with LSN >= from (use firstLSN
// or a checkpoint LSN). Stops at the first error.
func (l *Log) Iterate(from page.LSN, fn func(lsn page.LSN, rec *Record) error) error {
	if from < firstLSN {
		from = firstLSN
	}
	l.mu.Lock()
	end := l.flushed
	l.mu.Unlock()
	lsn := from
	for lsn < end {
		rec, next, err := l.readAt(lsn)
		if err != nil {
			return err
		}
		if rec == nil {
			return nil
		}
		if err := fn(lsn, rec); err != nil {
			return err
		}
		lsn = next
	}
	return nil
}

// ReadRecord returns the durable record at lsn.
func (l *Log) ReadRecord(lsn page.LSN) (*Record, error) {
	rec, _, err := l.readAt(lsn)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		// Keep the sentinel identity (errors.Is) while telling the operator
		// which byte offset of the log file failed its checksum.
		return nil, fmt.Errorf("wal: no valid record at byte offset %d: %w", lsn, ErrCorrupt)
	}
	return rec, nil
}

// DurableBytes snapshots the flushed log image (crash simulation).
func (l *Log) DurableBytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, l.flushed)
	if _, err := l.back.ReadAt(out, 0); err != nil && !errors.Is(err, io.EOF) {
		return out[:0]
	}
	return out
}

// FirstLSN exposes the start-of-log LSN.
func FirstLSN() page.LSN { return firstLSN }

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.flushTo(l.nextLSN); err != nil && err != ErrClosed {
		return err
	}
	// Wait out any round still in flight for later appends before closing
	// the backing underneath it.
	for l.syncing {
		l.syncDone.Wait()
	}
	if l.closed {
		return nil
	}
	l.closed = true
	return l.back.Close()
}
