package wal

import (
	"bytes"
	"errors"
	"testing"

	"bess/internal/fault"
	"bess/internal/page"
)

// tornTestImage builds a durable log image: tx1 fully committed, then one
// final tx2 update record. Returns the image and the final record's LSN
// (its byte offset — the start of the region the tests tear).
func tornTestImage(t *testing.T) ([]byte, page.LSN) {
	t.Helper()
	l := NewMem()
	defer l.Close()
	if _, err := l.Append(&Record{
		Type: TUpdate, Tx: 1, Page: page.ID{Area: 1, Page: 2},
		Before: []byte("old-value"), After: []byte("new-value"),
	}); err != nil {
		t.Fatal(err)
	}
	clsn, err := l.Append(&Record{Type: TCommit, Tx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(clsn); err != nil {
		t.Fatal(err)
	}
	last, err := l.Append(&Record{
		Type: TUpdate, Tx: 2, Page: page.ID{Area: 1, Page: 3},
		Before: bytes.Repeat([]byte{0x11}, 64), After: bytes.Repeat([]byte{0x22}, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	return l.DurableBytes(), last
}

// countAndLast reopens img and returns how many records survive and the
// tx of the last one.
func countAndLast(t *testing.T, img []byte) (int, uint64) {
	t.Helper()
	l, err := OpenMemFrom(img)
	if err != nil {
		t.Fatalf("reopening image of %d bytes: %v", len(img), err)
	}
	defer l.Close()
	n, lastTx := 0, uint64(0)
	if err := l.Iterate(firstLSN, func(_ page.LSN, rec *Record) error {
		n++
		lastTx = rec.Tx
		return nil
	}); err != nil {
		t.Fatalf("iterating image of %d bytes: %v", len(img), err)
	}
	return n, lastTx
}

// TestTornTailEveryByteBoundary cuts the final record at every byte
// boundary: reopening must never fail or panic, the torn record must be
// treated as end-of-log, and the committed prefix must stay intact.
func TestTornTailEveryByteBoundary(t *testing.T) {
	img, last := tornTestImage(t)

	// Sanity: the intact image has all three records.
	if n, lastTx := countAndLast(t, img); n != 3 || lastTx != 2 {
		t.Fatalf("intact image: %d records ending with tx %d, want 3/2", n, lastTx)
	}

	for cut := int(last); cut < len(img); cut++ {
		n, lastTx := countAndLast(t, img[:cut])
		if n != 2 || lastTx != 1 {
			t.Fatalf("cut at %d: %d records ending with tx %d, want exactly tx1's 2 records", cut, n, lastTx)
		}
	}
}

// TestTornTailGarbageFilled is the same sweep with the lost suffix
// overwritten by 0xA5 garbage instead of truncated — the checksum, not the
// file length, must reject the tail.
func TestTornTailGarbageFilled(t *testing.T) {
	img, last := tornTestImage(t)
	for cut := int(last); cut < len(img); cut++ {
		torn := append([]byte(nil), img...)
		for i := cut; i < len(torn); i++ {
			torn[i] = 0xA5
		}
		n, lastTx := countAndLast(t, torn)
		if n != 2 || lastTx != 1 {
			t.Fatalf("garbage from %d: %d records ending with tx %d, want exactly tx1's 2 records", cut, n, lastTx)
		}
	}
}

// TestTornTailOverwrittenByNewAppends: after reopening a torn log, new
// appends land at the logical end and replace the torn bytes.
func TestTornTailOverwrittenByNewAppends(t *testing.T) {
	img, last := tornTestImage(t)
	torn := img[:int(last)+5] // mid-header tear

	l, err := OpenMemFrom(torn)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.NextLSN(); got != last {
		t.Fatalf("NextLSN after torn reopen = %d, want the torn record's offset %d", got, last)
	}
	lsn, err := l.Append(&Record{Type: TCommit, Tx: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	if n, lastTx := countAndLast(t, l.DurableBytes()); n != 3 || lastTx != 9 {
		t.Fatalf("after overwrite: %d records ending with tx %d, want 3 ending with 9", n, lastTx)
	}
}

// TestFlushRetryAfterTransientSyncError: an injected EIO on the sync leg
// fails the Flush, but the log re-queues the detached tail so a retry
// makes the records durable.
func TestFlushRetryAfterTransientSyncError(t *testing.T) {
	inj := fault.NewInjector(5)
	st := fault.NewStore(inj)
	l, err := Open(st.WAL())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	lsn, err := l.Append(&Record{Type: TCommit, Tx: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Flush = one write then one sync; fail the sync.
	inj.FailAt(inj.Events()+2, nil)
	if err := l.Flush(lsn); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("flush err = %v, want the injected error", err)
	}
	if err := l.Flush(lsn); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	l2, err := OpenMemFrom(st.CrashImage())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec, err := l2.ReadRecord(lsn)
	if err != nil || rec.Type != TCommit || rec.Tx != 1 {
		t.Fatalf("record not durable after retried flush: %+v, %v", rec, err)
	}
}
