package wal

import (
	"bytes"
	"reflect"
	"testing"

	"bess/internal/page"
)

// FuzzWALDecodeRecord drives the record decoder with arbitrary bytes — the
// exact situation recovery faces when a torn or scribbled log tail happens
// to pass the length probe. Properties: never panic, and any input that
// decodes must re-encode and decode to the identical record (the decoder
// accepts nothing the encoder cannot reproduce).
func FuzzWALDecodeRecord(f *testing.F) {
	seed := []*Record{
		{Type: TCommit, Tx: 7, PrevLSN: 1234},
		{Type: TPrepare, Tx: 9, PrevLSN: 88},
		{Type: TUpdate, Tx: 1, PrevLSN: 8, Page: page.ID{Area: 3, Page: 42}, Off: 128,
			Before: []byte("before-img"), After: []byte("after-img")},
		{Type: TCLR, Tx: 2, Page: page.ID{Area: 1, Page: 7}, After: []byte("undo"), UndoNext: 16},
		{Type: TCheckpoint,
			ActiveTxs:  []CkptTx{{Tx: 5, LastLSN: 100}, {Tx: 6, LastLSN: 200}},
			DirtyPages: []CkptPage{{Page: page.ID{Area: 1, Page: 2}, RecLSN: 64}}},
	}
	for _, r := range seed {
		f.Add(r.encode())
	}
	enc := seed[2].encode()
	f.Add(enc[:20])                       // truncated mid-record
	f.Add(bytes.Repeat([]byte{0xA5}, 32)) // garbage that passes the length gate

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeRecord(b)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		out := rec.encode()
		rec2, err := decodeRecord(out)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v (input %x)", err, b)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip diverged:\n in: %+v\nout: %+v\nraw: %x", rec, rec2, b)
		}
	})
}
