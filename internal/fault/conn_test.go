package fault_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"bess/internal/fault"
)

// pipePair returns both ends of an in-memory duplex connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestConnPassThrough(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	fa := fault.WrapConn(a, fault.ConnPlan{})

	go b.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := fa.Read(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("read %q", buf)
	}
}

func TestConnDropAfterOps(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	fa := fault.WrapConn(a, fault.ConnPlan{DropAfterOps: 2})

	done := make(chan struct{})
	go func() {
		b.Write([]byte("x"))
		close(done)
	}()
	if _, err := fa.Read(make([]byte, 1)); err != nil { // op 1
		t.Fatal(err)
	}
	<-done
	if _, err := fa.Write([]byte("y")); err != fault.ErrConnDropped { // op 2: drops
		t.Fatalf("err = %v, want ErrConnDropped", err)
	}
	// Every later op fails too.
	if _, err := fa.Read(make([]byte, 1)); err != fault.ErrConnDropped {
		t.Fatalf("post-drop read err = %v, want ErrConnDropped", err)
	}
	// The peer sees the close as EOF / closed-pipe.
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after drop")
	}
}

func TestConnShortWrite(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	fa := fault.WrapConn(a, fault.ConnPlan{ShortWriteAfter: 3})

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	n, err := fa.Write([]byte("hello"))
	if err != fault.ErrConnDropped {
		t.Fatalf("err = %v, want ErrConnDropped", err)
	}
	if n != 3 {
		t.Fatalf("delivered %d bytes, want the 3-byte prefix", n)
	}
	if prefix := <-got; !bytes.Equal(prefix, []byte("hel")) {
		t.Fatalf("peer received %q, want %q", prefix, "hel")
	}
	// The stream is unframeable: later writes fail.
	if _, err := fa.Write([]byte("more")); err != fault.ErrConnDropped {
		t.Fatalf("post-short-write err = %v, want ErrConnDropped", err)
	}
}

func TestConnDelay(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	const d = 20 * time.Millisecond
	fa := fault.WrapConn(a, fault.ConnPlan{WriteDelay: d})

	go func() {
		buf := make([]byte, 1)
		b.Read(buf)
	}()
	start := time.Now()
	if _, err := fa.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < d {
		t.Fatalf("write completed in %v, want >= %v", el, d)
	}
}
