package fault

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrConnDropped is returned by operations on a Conn after its scheduled
// drop fired (and surfaces as a read error on the peer side, whose
// underlying connection is closed).
var ErrConnDropped = errors.New("fault: connection dropped")

// ConnPlan schedules faults on one wrapped connection. The zero value
// injects nothing (pure pass-through).
type ConnPlan struct {
	// ReadDelay / WriteDelay sleep before every read/write — a slow or
	// congested link.
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// ShortWriteAfter, when > 0, lets exactly that many bytes through and
	// then fails the write that crosses the limit after delivering only the
	// allowed prefix — the classic short write that leaves a byte-oriented
	// stream unframeable.
	ShortWriteAfter int64

	// DropAfterOps, when > 0, closes the underlying connection after that
	// many combined read/write calls — a peer dying mid-conversation.
	DropAfterOps int64

	// FlipByteAt, when > 0, XORs the n-th byte of the write stream (1-based)
	// with 0xFF before it reaches the wire — silent corruption a flaky NIC
	// or switch introduces without failing the connection. Detected only by
	// an end-to-end frame checksum.
	FlipByteAt int64
}

// Conn wraps a net.Conn with the faults scheduled in its plan. Safe for
// the usual one-reader/one-writer concurrent use of net.Conn.
type Conn struct {
	net.Conn
	plan ConnPlan

	mu      sync.Mutex
	ops     int64
	written int64
	dropped bool
}

// WrapConn attaches a fault plan to conn.
func WrapConn(conn net.Conn, plan ConnPlan) *Conn {
	return &Conn{Conn: conn, plan: plan}
}

// countOp advances the operation counter and fires the scheduled drop.
func (c *Conn) countOp() error {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return ErrConnDropped
	}
	c.ops++
	drop := c.plan.DropAfterOps > 0 && c.ops >= c.plan.DropAfterOps
	if drop {
		c.dropped = true
	}
	c.mu.Unlock()
	if drop {
		c.Conn.Close()
		return ErrConnDropped
	}
	return nil
}

// Ops reports how many socket operations the connection has performed.
// Benchmarks divide by it to attribute emulated per-op delays.
func (c *Conn) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.plan.ReadDelay > 0 {
		time.Sleep(c.plan.ReadDelay)
	}
	if err := c.countOp(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn: the write crossing ShortWriteAfter delivers
// only the allowed prefix and then reports the failure.
func (c *Conn) Write(p []byte) (int, error) {
	if c.plan.WriteDelay > 0 {
		time.Sleep(c.plan.WriteDelay)
	}
	if err := c.countOp(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.plan.FlipByteAt > 0 {
		idx := c.plan.FlipByteAt - 1 - c.written
		if idx >= 0 && idx < int64(len(p)) {
			flipped := append([]byte(nil), p...)
			flipped[idx] ^= 0xFF
			p = flipped
		}
	}
	allowed := len(p)
	short := false
	if c.plan.ShortWriteAfter > 0 {
		remain := c.plan.ShortWriteAfter - c.written
		if remain < int64(len(p)) {
			if remain < 0 {
				remain = 0
			}
			allowed = int(remain)
			short = true
			c.dropped = true // the stream is unframeable from here on
		}
	}
	c.written += int64(allowed)
	c.mu.Unlock()
	n, err := c.Conn.Write(p[:allowed])
	if err != nil {
		return n, err
	}
	if short {
		c.Conn.Close()
		return n, ErrConnDropped
	}
	return n, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.dropped = true
	c.mu.Unlock()
	return c.Conn.Close()
}
