// Package fault is the deterministic fault-injection layer behind the
// crash-torture tests (DESIGN.md §5). It simulates the failure modes a
// storage manager must survive without ever leaving the process:
//
//   - power loss at any chosen write/sync boundary: every byte not yet
//     covered by a successful Sync is discarded;
//   - torn writes: the write in flight at the crash keeps a sector-aligned
//     prefix, loses the suffix, and the lost extent may be garbage-filled
//     (a drive scribbling mid-write);
//   - transient I/O errors (EIO-style) on any write or sync event;
//   - network faults: delay, short-write, and dropped connections on a
//     wrapped net.Conn (conn.go).
//
// The layer is scheduled, not random: an Injector numbers every write/sync
// event across all media attached to it, and the caller chooses the event at
// which the machine dies. Running a deterministic workload once counts its
// events; replaying it once per event index enumerates every crash point.
// Garbage bytes come from a seeded generator, so a failing crash point
// replays exactly.
//
// The production I/O paths do not know this package exists: wal.Open and
// area.Create/Load accept their Backing/Store interfaces, and a Store's
// WAL()/Area() views satisfy them structurally. When no injector is
// installed the real file/mem implementations run untouched — the seam is
// the interface call that was already there.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// SectorSize is the granularity at which an in-flight write tears: a crash
// never splits a sector, mirroring the atomicity unit disks actually
// provide (512B, not the 4KB page).
const SectorSize = 512

// Errors surfaced by injected faults.
var (
	// ErrCrashed is returned by every operation at and after the scheduled
	// power loss: the machine is dead until the caller extracts the
	// surviving image and "reboots" onto fresh media.
	ErrCrashed = errors.New("fault: simulated power loss")
	// ErrInjected is the transient EIO-style error: the operation did not
	// happen, but the medium is still alive and may be retried.
	ErrInjected = errors.New("fault: injected I/O error")
)

// Injector schedules faults for one simulated machine. All media attached
// to the same Injector share one event clock, so a crash point can land
// between a WAL sync and the area page write that followed it. Safe for
// concurrent use, but crash-point enumeration needs a deterministic
// workload to be meaningful.
type Injector struct {
	mu      sync.Mutex
	events  int64 // write/sync events observed so far
	crashAt int64 // crash when the event counter reaches this value; 0 = never
	crashed bool

	tearSectors int  // sectors of the in-flight write that survive the crash
	garbage     bool // garbage-fill the lost extent of the torn write
	seed        uint64

	errAt map[int64]error // transient error injected at an event index
	rotAt map[int64]int   // silent bit rot: event index -> bytes to flip
}

// NewInjector returns an injector with no faults scheduled. seed drives the
// garbage-byte generator so torn images are reproducible.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: uint64(seed)}
}

// SetCrashPoint schedules a power loss at event index n (1-based: the n-th
// write/sync event fails and the machine is dead from then on). If the
// fatal event is a write, tearSectors sectors of it survive; with garbage
// set, the lost extent of that write is filled with seeded pseudo-random
// bytes instead of simply not arriving.
func (i *Injector) SetCrashPoint(n int64, tearSectors int, garbage bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashAt = n
	i.tearSectors = tearSectors
	i.garbage = garbage
}

// FailAt schedules a transient error at event index n (1-based). The event
// still consumes an index; the operation reports err and has no effect.
func (i *Injector) FailAt(n int64, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	if i.errAt == nil {
		i.errAt = make(map[int64]error)
	}
	i.errAt[n] = err
}

// RotAt schedules silent bit rot at event index n (1-based): the n-th
// write/sync event completes normally, and then nbytes seeded pseudo-random
// byte positions of the affected extent are flipped in both the volatile and
// synced images — the medium lies without an error, the failure mode
// checksums exist to catch. Enumerating n over a workload's events visits a
// corruption point inside every write the workload performs, the way
// SetCrashPoint enumeration visits every crash point.
func (i *Injector) RotAt(n int64, nbytes int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.rotAt == nil {
		i.rotAt = make(map[int64]int)
	}
	i.rotAt[n] = nbytes
}

// Events returns the number of write/sync events observed so far — run the
// workload once fault-free and this is the crash-point space to enumerate.
func (i *Injector) Events() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.events
}

// Crashed reports whether the scheduled power loss has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// fate is one event's decided outcome. Exactly one of crashNow / err /
// rotBytes is meaningful: crashNow means this event is the power loss (a
// write applies its torn prefix, then everything returns ErrCrashed); err is
// a transient injected error; rotBytes>0 means the event succeeds and then
// rots silently. tear/garbage describe how the fatal write tears.
type fate struct {
	crashNow    bool
	tearSectors int
	garbage     bool
	gseed       uint64
	rotBytes    int
	rotSeed     uint64
	err         error
}

// step accounts one write/sync event and decides its fate.
func (i *Injector) step() fate {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return fate{err: ErrCrashed}
	}
	i.events++
	if e, ok := i.errAt[i.events]; ok {
		return fate{err: e}
	}
	if i.crashAt != 0 && i.events >= i.crashAt {
		i.crashed = true
		// Mix the event index into the garbage seed so distinct crash
		// points scribble distinct bytes.
		return fate{
			crashNow: true, tearSectors: i.tearSectors, garbage: i.garbage,
			gseed: i.seed ^ uint64(i.events)*0x9E3779B97F4A7C15,
		}
	}
	if n, ok := i.rotAt[i.events]; ok {
		return fate{rotBytes: n, rotSeed: i.seed ^ uint64(i.events)*0x9E3779B97F4A7C15}
	}
	return fate{}
}

// garbageFill overwrites p with seeded pseudo-random bytes (splitmix64).
func garbageFill(p []byte, seed uint64) {
	x := seed
	for n := 0; n < len(p); {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		for b := 0; b < 8 && n < len(p); b++ {
			p[n] = byte(z >> (8 * b))
			n++
		}
	}
}

// String describes the injector state (test failure messages).
func (i *Injector) String() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return fmt.Sprintf("fault.Injector{events=%d crashAt=%d crashed=%v tear=%d garbage=%v}",
		i.events, i.crashAt, i.crashed, i.tearSectors, i.garbage)
}
