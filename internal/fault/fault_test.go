package fault_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"bess/internal/area"
	"bess/internal/fault"
	"bess/internal/page"
	"bess/internal/wal"
)

// Compile-time proof that the views satisfy the storage interfaces they
// were built for. This is the contract the whole package exists to honor.
var (
	_ wal.Backing = fault.WALView{}
	_ area.Store  = fault.AreaView{}
)

func TestPassThroughNoFaults(t *testing.T) {
	inj := fault.NewInjector(1)
	st := fault.NewStore(inj)
	w := st.WAL()

	data := []byte("hello, durable world")
	if _, err := w.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := w.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, wrote %q", got, data)
	}
	if w.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", w.Size(), len(data))
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// 1 write + 1 sync = 2 events.
	if n := inj.Events(); n != 2 {
		t.Fatalf("Events = %d, want 2", n)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	st := fault.NewStore(fault.NewInjector(1))
	w := st.WAL()
	if _, err := w.WriteAt([]byte("abcd"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadAt(make([]byte, 4), 100); err != io.EOF {
		t.Fatalf("read past end: err = %v, want io.EOF", err)
	}
	if n, err := w.ReadAt(make([]byte, 8), 2); err != io.ErrUnexpectedEOF || n != 2 {
		t.Fatalf("short read: n=%d err=%v, want 2, ErrUnexpectedEOF", n, err)
	}
}

// TestCrashDiscardsUnsynced is the core power-loss semantics: synced bytes
// survive, unsynced bytes vanish.
func TestCrashDiscardsUnsynced(t *testing.T) {
	inj := fault.NewInjector(7)
	st := fault.NewStore(inj)
	w := st.WAL()

	durable := bytes.Repeat([]byte{0xAA}, 100)
	if _, err := w.WriteAt(durable, 0); err != nil { // event 1
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil { // event 2
		t.Fatal(err)
	}

	// Crash on the next write: nothing of it survives (tear 0 sectors).
	inj.SetCrashPoint(3, 0, false)
	if _, err := w.WriteAt(bytes.Repeat([]byte{0xBB}, 100), 100); err != fault.ErrCrashed {
		t.Fatalf("fatal write err = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed after crash point")
	}
	// The machine is dead: every later op fails.
	if _, err := w.WriteAt([]byte{1}, 0); err != fault.ErrCrashed {
		t.Fatalf("post-crash write err = %v, want ErrCrashed", err)
	}
	if _, err := w.ReadAt(make([]byte, 1), 0); err != fault.ErrCrashed {
		t.Fatalf("post-crash read err = %v, want ErrCrashed", err)
	}
	if err := w.Sync(); err != fault.ErrCrashed {
		t.Fatalf("post-crash sync err = %v, want ErrCrashed", err)
	}

	img := st.CrashImage()
	if !bytes.Equal(img, durable) {
		t.Fatalf("crash image = %d bytes, want exactly the 100 synced bytes", len(img))
	}
}

// TestCrashOnSyncLosesEverythingUnsynced: a crash *during* sync means the
// sync never happened.
func TestCrashOnSyncLosesEverythingUnsynced(t *testing.T) {
	inj := fault.NewInjector(7)
	st := fault.NewStore(inj)
	w := st.WAL()

	if _, err := w.WriteAt([]byte("aaaa"), 0); err != nil { // event 1
		t.Fatal(err)
	}
	inj.SetCrashPoint(2, 0, false)
	if err := w.Sync(); err != fault.ErrCrashed { // event 2: dies here
		t.Fatalf("sync err = %v, want ErrCrashed", err)
	}
	if len(st.CrashImage()) != 0 {
		t.Fatalf("crash image has %d bytes, want 0 (sync never completed)", len(st.CrashImage()))
	}
}

func TestTornWritePrefixSurvives(t *testing.T) {
	inj := fault.NewInjector(3)
	st := fault.NewStore(inj)
	w := st.WAL()

	// Crash on the very first write, keeping one sector of it.
	inj.SetCrashPoint(1, 1, false)
	p := bytes.Repeat([]byte{0xCC}, 3*fault.SectorSize)
	if _, err := w.WriteAt(p, 0); err != fault.ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	img := st.CrashImage()
	if len(img) != fault.SectorSize {
		t.Fatalf("crash image = %d bytes, want one sector (%d)", len(img), fault.SectorSize)
	}
	if !bytes.Equal(img, p[:fault.SectorSize]) {
		t.Fatal("surviving sector does not match the write's prefix")
	}
}

func TestTornWriteGarbageFill(t *testing.T) {
	inj := fault.NewInjector(3)
	st := fault.NewStore(inj)
	w := st.WAL()

	inj.SetCrashPoint(1, 1, true)
	p := bytes.Repeat([]byte{0xCC}, 2*fault.SectorSize)
	if _, err := w.WriteAt(p, 0); err != fault.ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	img := st.CrashImage()
	if len(img) != 2*fault.SectorSize {
		t.Fatalf("crash image = %d bytes, want the full write extent %d", len(img), 2*fault.SectorSize)
	}
	if !bytes.Equal(img[:fault.SectorSize], p[:fault.SectorSize]) {
		t.Fatal("prefix sector corrupted")
	}
	if bytes.Equal(img[fault.SectorSize:], p[fault.SectorSize:]) {
		t.Fatal("lost sector arrived intact; want garbage")
	}

	// Determinism: the same seed and crash point scribble the same bytes.
	inj2 := fault.NewInjector(3)
	st2 := fault.NewStore(inj2)
	inj2.SetCrashPoint(1, 1, true)
	st2.WAL().WriteAt(p, 0)
	if !bytes.Equal(st2.CrashImage(), img) {
		t.Fatal("garbage fill is not deterministic for equal seeds")
	}

	// ... and a different seed scribbles different bytes.
	inj3 := fault.NewInjector(4)
	st3 := fault.NewStore(inj3)
	inj3.SetCrashPoint(1, 1, true)
	st3.WAL().WriteAt(p, 0)
	if bytes.Equal(st3.CrashImage(), img) {
		t.Fatal("different seeds produced identical garbage")
	}
}

func TestTransientError(t *testing.T) {
	inj := fault.NewInjector(1)
	st := fault.NewStore(inj)
	w := st.WAL()

	inj.FailAt(2, nil) // default ErrInjected on the second event
	if _, err := w.WriteAt([]byte("aa"), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	// The medium is still alive: retry succeeds.
	if err := w.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	if !bytes.Equal(st.CrashImage(), []byte("aa")) {
		t.Fatal("retry sync did not persist")
	}
}

// TestRebootCycle exercises the test-harness loop: crash, extract image,
// reboot onto fresh media, verify contents.
func TestRebootCycle(t *testing.T) {
	inj := fault.NewInjector(9)
	st := fault.NewStore(inj)
	w := st.WAL()
	w.WriteAt([]byte("generation-1"), 0)
	w.Sync()
	inj.SetCrashPoint(3, 0, false)
	w.WriteAt([]byte("generation-2"), 0) // dies

	inj2 := fault.NewInjector(9)
	st2 := fault.NewStoreFrom(inj2, st.CrashImage())
	got := make([]byte, 12)
	if _, err := st2.WAL().ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-1" {
		t.Fatalf("rebooted image reads %q, want generation-1", got)
	}
}

// TestSharedClockAcrossMedia: two stores on one injector interleave on a
// single event counter, so crash points can land between WAL and area I/O.
func TestSharedClockAcrossMedia(t *testing.T) {
	inj := fault.NewInjector(1)
	walSt := fault.NewStore(inj)
	areaSt := fault.NewStore(inj)

	inj.SetCrashPoint(2, 0, false)
	if _, err := walSt.WAL().WriteAt([]byte("log"), 0); err != nil { // event 1
		t.Fatal(err)
	}
	if _, err := areaSt.Area().WriteAt([]byte("page"), 0); err != fault.ErrCrashed { // event 2
		t.Fatalf("area write err = %v, want ErrCrashed (shared clock)", err)
	}
	// Both media are dead.
	if err := walSt.WAL().Sync(); err != fault.ErrCrashed {
		t.Fatalf("wal sync after shared crash: %v", err)
	}
}

// TestWALOverFaultStore drives the real WAL through the fault layer:
// flushed records survive a crash, unflushed ones do not.
func TestWALOverFaultStore(t *testing.T) {
	inj := fault.NewInjector(11)
	st := fault.NewStore(inj)
	l, err := wal.Open(st.WAL())
	if err != nil {
		t.Fatal(err)
	}

	r1 := &wal.Record{Type: wal.TUpdate, Tx: 1, Page: page.ID{Area: 1, Page: 1}}
	lsn1, err := l.Append(r1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(lsn1); err != nil {
		t.Fatal(err)
	}

	// Appended but never flushed: must vanish at the crash.
	if _, err := l.Append(&wal.Record{Type: wal.TUpdate, Tx: 2, Page: page.ID{Area: 1, Page: 2}}); err != nil {
		t.Fatal(err)
	}
	inj.SetCrashPoint(inj.Events()+1, 0, false)
	if err := l.Flush(0); err == nil {
		t.Fatal("flush at crash point unexpectedly succeeded")
	}

	l2, err := wal.OpenMemFrom(st.CrashImage())
	if err != nil {
		t.Fatalf("reopening surviving log: %v", err)
	}
	defer l2.Close()
	var got []uint64
	if err := l2.Iterate(wal.FirstLSN(), func(lsn page.LSN, r *wal.Record) error {
		got = append(got, r.Tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("surviving log has txids %v, want [1]", got)
	}
}

// TestAreaOverFaultStore drives the real area package through the fault
// layer: a crash before sync loses the page write, and the surviving image
// still loads.
func TestAreaOverFaultStore(t *testing.T) {
	inj := fault.NewInjector(13)
	st := fault.NewStore(inj)
	a, err := area.Create(st.Area(), 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := a.AllocSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Area().Sync(); err != nil {
		t.Fatal(err)
	}

	buf := bytes.Repeat([]byte{0x42}, page.Size)
	if err := a.WritePage(first, buf); err != nil {
		t.Fatal(err)
	}
	// Crash before the page write is synced.
	inj.SetCrashPoint(inj.Events()+1, 0, false)
	if _, err := st.Area().WriteAt([]byte{0}, 0); err != fault.ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}

	st2 := fault.NewStoreFrom(fault.NewInjector(13), st.CrashImage())
	a2, err := area.Load(st2.Area(), true)
	if err != nil {
		t.Fatalf("loading surviving area image: %v", err)
	}
	got := make([]byte, page.Size)
	if err := a2.ReadPage(first, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, buf) {
		t.Fatal("unsynced page write survived the crash")
	}
}
