package fault

import (
	"fmt"
	"io"
	"sync"
)

// Store is a simulated durable medium with two images: the volatile view
// (what reads observe — the OS page cache) and the synced image (what the
// platter holds). Writes land in the volatile view only; Sync copies it to
// the synced image. A crash discards the volatile view, applies the torn
// prefix of the in-flight write to the synced image, and fails every later
// operation with ErrCrashed. CrashImage then extracts the surviving bytes
// so a test can "reboot" onto fresh media.
//
// A Store never satisfies wal.Backing or area.Store itself (their Size
// signatures conflict); the WAL() and Area() views do, structurally, so
// this package imports neither.
type Store struct {
	inj *Injector

	mu     sync.Mutex
	cur    []byte // volatile view: synced content plus unsynced writes
	synced []byte // durable image; torn prefixes land here at crash time
	closed bool
}

// NewStore returns an empty medium attached to inj.
func NewStore(inj *Injector) *Store {
	return &Store{inj: inj}
}

// NewStoreFrom returns a medium whose synced and volatile images both start
// as img (rebooting onto a surviving crash image).
func NewStoreFrom(inj *Injector, img []byte) *Store {
	return &Store{
		inj:    inj,
		cur:    append([]byte(nil), img...),
		synced: append([]byte(nil), img...),
	}
}

// writeAt applies one write event: transient error, crash (torn prefix
// applied to the synced image), or success into the volatile view.
func (s *Store) writeAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("fault: negative offset %d", off)
	}
	f := s.inj.step()
	if f.err != nil {
		return 0, f.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("fault: store closed")
	}
	if f.crashNow {
		s.tearLocked(p, off, f.tearSectors, f.garbage, f.gseed)
		return 0, ErrCrashed
	}
	end := off + int64(len(p))
	if end > int64(len(s.cur)) {
		grown := make([]byte, end)
		copy(grown, s.cur)
		s.cur = grown
	}
	copy(s.cur[off:end], p)
	if f.rotBytes > 0 {
		s.rotLocked(off, int64(len(p)), f.rotBytes, f.rotSeed)
	}
	return len(p), nil
}

// rotLocked flips nbytes seeded pseudo-random byte positions within
// [off, off+n) of the volatile view, mirroring each flip into the synced
// image where it reaches — silent rot that survives both reads and reboot.
// Flips are XORs with a nonzero byte, so a rotted extent never equals the
// original.
func (s *Store) rotLocked(off, n int64, nbytes int, seed uint64) {
	if n <= 0 {
		return
	}
	x := seed
	for k := 0; k < nbytes; k++ {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		pos := off + int64(z%uint64(n))
		bit := byte(z>>56) | 1
		if pos < int64(len(s.cur)) {
			s.cur[pos] ^= bit
		}
		if pos < int64(len(s.synced)) {
			s.synced[pos] ^= bit
		}
	}
}

// tearLocked applies the surviving prefix of the fatal write to the synced
// image: tearSectors whole sectors arrive, the rest of the write's extent
// is lost — or, with garbage, overwritten with seeded noise (the sector the
// head was in when power died).
func (s *Store) tearLocked(p []byte, off int64, tearSectors int, garbage bool, gseed uint64) {
	keep := tearSectors * SectorSize
	if keep > len(p) {
		keep = len(p)
	}
	end := off + int64(len(p))
	reach := off + int64(keep)
	if garbage {
		reach = end
	}
	if reach > int64(len(s.synced)) {
		grown := make([]byte, reach)
		copy(grown, s.synced)
		s.synced = grown
	}
	copy(s.synced[off:off+int64(keep)], p[:keep])
	if garbage && keep < len(p) {
		garbageFill(s.synced[off+int64(keep):end], gseed)
	}
}

// readAt serves reads from the volatile view. Reads are not fault events
// (crash points live at write/sync boundaries) but fail once crashed.
func (s *Store) readAt(p []byte, off int64) (int, error) {
	if s.inj.Crashed() {
		return 0, ErrCrashed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= int64(len(s.cur)) {
		return 0, io.EOF
	}
	n := copy(p, s.cur[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// sync makes the volatile view durable — unless this event is the crash
// (the sync never completed; unsynced bytes are lost) or a transient error.
func (s *Store) sync() error {
	f := s.inj.step()
	if f.err != nil {
		return f.err
	}
	if f.crashNow {
		return ErrCrashed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced = append(s.synced[:0], s.cur...)
	if f.rotBytes > 0 {
		// Rot on a sync event lands anywhere in the image just made durable.
		s.rotLocked(0, int64(len(s.synced)), f.rotBytes, f.rotSeed)
	}
	return nil
}

// truncate resizes the volatile view (area extent growth). It counts as a
// write event; the synced image only changes at the next sync.
func (s *Store) truncate(size int64) error {
	f := s.inj.step()
	if f.err != nil {
		return f.err
	}
	if f.crashNow {
		return ErrCrashed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if size <= int64(len(s.cur)) {
		s.cur = s.cur[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, s.cur)
	s.cur = grown
	return nil
}

func (s *Store) size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.cur))
}

func (s *Store) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// CrashImage returns the bytes that survived the power loss: everything
// synced, plus the torn prefix (and any garbage) of the in-flight write.
// Valid any time, but meaningful after the crash fired.
func (s *Store) CrashImage() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.synced...)
}

// Image returns the volatile view (what a clean shutdown would leave after
// one final sync).
func (s *Store) Image() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.cur...)
}

// WALView adapts a Store to the wal.Backing interface.
type WALView struct{ s *Store }

// WAL returns a view satisfying wal.Backing, for wal.Open.
func (s *Store) WAL() WALView { return WALView{s} }

// WriteAt implements wal.Backing.
func (v WALView) WriteAt(p []byte, off int64) (int, error) { return v.s.writeAt(p, off) }

// ReadAt implements wal.Backing.
func (v WALView) ReadAt(p []byte, off int64) (int, error) { return v.s.readAt(p, off) }

// Sync implements wal.Backing.
func (v WALView) Sync() error { return v.s.sync() }

// Close implements wal.Backing.
func (v WALView) Close() error { return v.s.close() }

// Size implements wal.Backing.
func (v WALView) Size() int64 { return v.s.size() }

// AreaView adapts a Store to the area.Store interface.
type AreaView struct{ s *Store }

// Area returns a view satisfying area.Store, for area.Create / area.Load.
func (s *Store) Area() AreaView { return AreaView{s} }

// ReadAt implements area.Store.
func (v AreaView) ReadAt(p []byte, off int64) (int, error) { return v.s.readAt(p, off) }

// WriteAt implements area.Store.
func (v AreaView) WriteAt(p []byte, off int64) (int, error) { return v.s.writeAt(p, off) }

// Size implements area.Store.
func (v AreaView) Size() (int64, error) { return v.s.size(), nil }

// Truncate implements area.Store.
func (v AreaView) Truncate(size int64) error { return v.s.truncate(size) }

// Sync implements area.Store.
func (v AreaView) Sync() error { return v.s.sync() }

// Close implements area.Store.
func (v AreaView) Close() error { return v.s.close() }
