package names

import (
	"testing"

	"bess/internal/oid"
)

func o(n uint64) oid.OID { return oid.OID{Host: 1, DB: 1, Offset: n, Unique: 0} }

func TestBindLookup(t *testing.T) {
	d := New()
	if err := d.Bind("root", o(1)); err != nil {
		t.Fatal(err)
	}
	got, err := d.Lookup("root")
	if err != nil || got != o(1) {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if _, err := d.Lookup("missing"); err != ErrNotFound {
		t.Fatalf("missing: %v", err)
	}
	name, ok := d.NameOf(o(1))
	if !ok || name != "root" {
		t.Fatalf("NameOf = %q, %v", name, ok)
	}
	if _, ok := d.NameOf(o(9)); ok {
		t.Fatal("phantom NameOf")
	}
}

func TestBindConstraints(t *testing.T) {
	d := New()
	d.Bind("a", o(1))
	if err := d.Bind("a", o(2)); err != ErrExists {
		t.Fatalf("dup name: %v", err)
	}
	if err := d.Bind("b", o(1)); err != ErrExists {
		t.Fatalf("dup oid: %v", err)
	}
	if err := d.Bind("", o(3)); err != ErrBadName {
		t.Fatalf("empty name: %v", err)
	}
	if err := d.Bind("n", oid.Nil); err != ErrNilOID {
		t.Fatalf("nil oid: %v", err)
	}
}

func TestUnbind(t *testing.T) {
	d := New()
	d.Bind("a", o(1))
	if err := d.Unbind("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Unbind("a"); err != ErrNotFound {
		t.Fatalf("double unbind: %v", err)
	}
	// Both directions cleared; rebinding works.
	if err := d.Bind("a2", o(1)); err != nil {
		t.Fatal(err)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := New()
	d.Bind("doomed", o(5))
	if !d.ObjectRemoved(o(5)) {
		t.Fatal("removal not reported")
	}
	if _, err := d.Lookup("doomed"); err != ErrNotFound {
		t.Fatal("name survives object removal")
	}
	if d.ObjectRemoved(o(5)) {
		t.Fatal("second removal reported")
	}
}

func TestNamesSorted(t *testing.T) {
	d := New()
	d.Bind("zebra", o(1))
	d.Bind("apple", o(2))
	d.Bind("mango", o(3))
	ns := d.Names()
	if len(ns) != 3 || ns[0] != "apple" || ns[2] != "zebra" {
		t.Fatalf("names = %v", ns)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	d.Bind("alpha", o(10))
	d.Bind("beta", oid.OID{Host: 2, DB: 3, Offset: 4, Unique: 5})
	if !d.Dirty() {
		t.Fatal("not dirty after bind")
	}
	enc := d.Encode()
	if d.Dirty() {
		t.Fatal("dirty after encode")
	}
	d2, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 {
		t.Fatalf("len = %d", d2.Len())
	}
	got, _ := d2.Lookup("beta")
	if got != (oid.OID{Host: 2, DB: 3, Offset: 4, Unique: 5}) {
		t.Fatalf("beta = %v", got)
	}
	// Deterministic encoding.
	if string(enc) != string(d2.Encode()) {
		t.Fatal("encoding not canonical")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err != ErrCorrupt {
		t.Fatal("nil accepted")
	}
	if _, err := Decode([]byte{0, 0, 0, 5}); err != ErrCorrupt {
		t.Fatal("truncated accepted")
	}
	d := New()
	d.Bind("x", o(1))
	enc := d.Encode()
	if _, err := Decode(enc[:len(enc)-2]); err != ErrCorrupt {
		t.Fatal("truncated tail accepted")
	}
}
