// Package names implements the BeSS named ("root") object directory
// (paper §2.5): any object can be given a name; the directory is a pair of
// hash tables (name→OID and OID→name), and BeSS enforces referential
// integrity between root objects and their names — removing a root object
// removes its name.
package names

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"bess/internal/oid"
)

// Errors returned by the directory.
var (
	ErrExists   = errors.New("names: name already bound")
	ErrNotFound = errors.New("names: no such name")
	ErrNilOID   = errors.New("names: cannot bind the nil OID")
	ErrBadName  = errors.New("names: empty or oversized name")
	ErrCorrupt  = errors.New("names: corrupt directory encoding")
)

// MaxNameLen bounds name length in the persistent encoding.
const MaxNameLen = 1 << 16

// Directory is the pair of hash tables. Safe for concurrent use.
type Directory struct {
	mu     sync.RWMutex
	byName map[string]oid.OID
	byOID  map[oid.OID]string
	dirty  bool
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		byName: make(map[string]oid.OID),
		byOID:  make(map[oid.OID]string),
	}
}

// Bind names an object. A name maps to exactly one object and an object has
// at most one name; rebinding either side fails (unbind first).
func (d *Directory) Bind(name string, o oid.OID) error {
	if name == "" || len(name) >= MaxNameLen {
		return ErrBadName
	}
	if o.IsNil() {
		return ErrNilOID
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byName[name]; dup {
		return ErrExists
	}
	if _, dup := d.byOID[o]; dup {
		return ErrExists
	}
	d.byName[name] = o
	d.byOID[o] = name
	d.dirty = true
	return nil
}

// Lookup resolves a name.
func (d *Directory) Lookup(name string) (oid.OID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	o, ok := d.byName[name]
	if !ok {
		return oid.Nil, ErrNotFound
	}
	return o, nil
}

// NameOf returns the name bound to o, if any.
func (d *Directory) NameOf(o oid.OID) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.byOID[o]
	return n, ok
}

// Unbind removes a name, leaving the object itself alone.
func (d *Directory) Unbind(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.byName[name]
	if !ok {
		return ErrNotFound
	}
	delete(d.byName, name)
	delete(d.byOID, o)
	d.dirty = true
	return nil
}

// ObjectRemoved enforces referential integrity: when a root object is
// deleted from the database its name is removed too. Reports whether a
// binding existed.
func (d *Directory) ObjectRemoved(o oid.OID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	name, ok := d.byOID[o]
	if !ok {
		return false
	}
	delete(d.byOID, o)
	delete(d.byName, name)
	d.dirty = true
	return true
}

// Len returns the number of bindings.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byName)
}

// Names returns all bound names, sorted.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.byName))
	for n := range d.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Dirty reports whether the directory changed since the last Encode.
func (d *Directory) Dirty() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dirty
}

// Encode serializes the directory (sorted for determinism) and clears the
// dirty flag.
func (d *Directory) Encode() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.byName))
	for n := range d.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(names)))
	buf = append(buf, tmp[:]...)
	for _, n := range names {
		binary.BigEndian.PutUint32(tmp[:], uint32(len(n)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, n...)
		buf = d.byName[n].Encode(buf)
	}
	d.dirty = false
	return buf
}

// Decode rebuilds a directory from Encode output.
func Decode(b []byte) (*Directory, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(b[:4]))
	b = b[4:]
	d := New()
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, ErrCorrupt
		}
		nl := int(binary.BigEndian.Uint32(b[:4]))
		b = b[4:]
		if nl == 0 || nl >= MaxNameLen || len(b) < nl+oid.Size {
			return nil, ErrCorrupt
		}
		name := string(b[:nl])
		b = b[nl:]
		o, err := oid.Decode(b)
		if err != nil {
			return nil, ErrCorrupt
		}
		b = b[oid.Size:]
		if err := d.Bind(name, o); err != nil {
			return nil, ErrCorrupt
		}
	}
	d.dirty = false
	return d, nil
}
