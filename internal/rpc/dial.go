package rpc

import (
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Defaults for the zero Dialer.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultDialRetries = 3
	defaultBackoff     = 50 * time.Millisecond
	defaultMaxBackoff  = time.Second
)

// Dialer connects to a BeSS endpoint without hanging on a dead or
// unreachable host: every connect attempt is bounded by Timeout, and
// transient failures (server restarting, listener not up yet) are retried
// with jittered exponential backoff. The zero value is ready to use with
// the defaults above; rpc.Dial uses it.
type Dialer struct {
	// Timeout bounds each individual connect attempt. <= 0 means
	// DefaultDialTimeout.
	Timeout time.Duration

	// Retries is the number of attempts after the first. < 0 disables
	// retrying entirely; 0 means DefaultDialRetries. (The zero value should
	// retry — a Dialer that gives up on the first RST is no better than
	// net.Dial.)
	Retries int

	// Backoff is the base sleep before the first retry; it doubles per
	// attempt up to MaxBackoff. <= 0 means the 50ms/1s defaults.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// Rand supplies jitter in [0,1); nil uses math/rand. Each sleep is
	// scaled by 0.5+Rand() so synchronized clients (a fleet reconnecting
	// after a server restart) spread out instead of stampeding.
	Rand func() float64

	// DialFunc replaces net.DialTimeout — the test seam that lets a
	// never-accepting host or a listener that comes up mid-retry be
	// simulated hermetically. nil uses the real network.
	DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)
}

// Dial connects to addr and wraps the connection in a Peer. It returns the
// last attempt's error (wrapped with the attempt count) once the retry
// budget is spent.
func (d *Dialer) Dial(addr string) (*Peer, error) {
	conn, err := d.dialConn(addr)
	if err != nil {
		return nil, err
	}
	return NewPeer(conn), nil
}

func (d *Dialer) dialConn(addr string) (net.Conn, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	retries := d.Retries
	if retries == 0 {
		retries = DefaultDialRetries
	} else if retries < 0 {
		retries = 0
	}
	dial := d.DialFunc
	if dial == nil {
		dial = net.DialTimeout
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := dial("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if attempt >= retries {
			break
		}
		time.Sleep(d.backoff(attempt))
	}
	if retries > 0 {
		return nil, fmt.Errorf("rpc: dial %s: %d attempts: %w", addr, retries+1, lastErr)
	}
	return nil, fmt.Errorf("rpc: dial %s: %w", addr, lastErr)
}

// backoff computes the jittered sleep before retry attempt+1.
func (d *Dialer) backoff(attempt int) time.Duration {
	base := d.Backoff
	if base <= 0 {
		base = defaultBackoff
	}
	max := d.MaxBackoff
	if max <= 0 {
		max = defaultMaxBackoff
	}
	sleep := base << uint(attempt)
	if sleep > max || sleep <= 0 { // <= 0: shift overflow
		sleep = max
	}
	r := d.Rand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(float64(sleep) * (0.5 + r()))
}
