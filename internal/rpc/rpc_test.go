package rpc

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bess/internal/goleak"
)

type echoArgs struct{ Msg string }
type echoReply struct{ Msg string }

func TestCallOverPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(b, "echo", func(in *echoArgs) (*echoReply, error) {
		return &echoReply{Msg: "re: " + in.Msg}, nil
	})
	var rep echoReply
	if err := a.Call("echo", &echoArgs{Msg: "hi"}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Msg != "re: hi" {
		t.Fatalf("reply = %q", rep.Msg)
	}
}

func TestRemoteError(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(b, "boom", func(in *echoArgs) (*echoReply, error) {
		return nil, errors.New("kapow")
	})
	err := a.Call("boom", &echoArgs{}, &echoReply{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kapow" {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	err := a.Call("nope", &echoArgs{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(a, "client-side", func(in *echoArgs) (*echoReply, error) {
		return &echoReply{Msg: "from-a"}, nil
	})
	// b's handler calls back into a over the same connection — the callback
	// locking pattern.
	HandleFunc(b, "server-side", func(in *echoArgs) (*echoReply, error) {
		var rep echoReply
		if err := b.Call("client-side", &echoArgs{}, &rep); err != nil {
			return nil, err
		}
		return &echoReply{Msg: "server saw " + rep.Msg}, nil
	})
	var rep echoReply
	if err := a.Call("server-side", &echoArgs{}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Msg != "server saw from-a" {
		t.Fatalf("reply = %q", rep.Msg)
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(b, "echo", func(in *echoArgs) (*echoReply, error) {
		return &echoReply{Msg: in.Msg}, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rep echoReply
			msg := strings.Repeat("x", i+1)
			if err := a.Call("echo", &echoArgs{Msg: msg}, &rep); err != nil {
				errs <- err
				return
			}
			if rep.Msg != msg {
				errs <- errors.New("reply mismatch: " + rep.Msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloseFailsPendingAndFutureCalls is the mid-call close regression: a
// peer closed while calls are in flight must fail every pending call with
// ErrClosed — promptly, not by deadlocking until some transport timeout —
// and future calls must fail the same way.
func TestCloseFailsPendingAndFutureCalls(t *testing.T) {
	// After the deferred release unblocks the handlers, every tracked rpc
	// goroutine on both peers must wind down (Cleanup runs after defers).
	t.Cleanup(func() { goleak.Check(t, "rpc.") })
	a, b := Pipe()
	release := make(chan struct{})
	HandleFunc(b, "slow", func(in *echoArgs) (*echoReply, error) {
		<-release
		return &echoReply{}, nil
	})
	defer close(release)
	const pending = 8
	done := make(chan error, pending)
	for i := 0; i < pending; i++ {
		go func() { done <- a.Call("slow", &echoArgs{}, &echoReply{}) }()
	}
	time.Sleep(20 * time.Millisecond)
	a.Close()
	for i := 0; i < pending; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("pending call err = %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending call deadlocked after close")
		}
	}
	if err := a.Call("echo", &echoArgs{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close err = %v, want ErrClosed", err)
	}
}

// TestCloseMidBurstDrainsDispatch closes a peer while a burst of requests
// is still executing in its per-frame dispatch goroutines. Close must wait
// for every in-flight handler (the WaitGroup drain), so no dispatch
// goroutine outlives the peer, and it must finish well inside the drain
// budget once the handlers return.
func TestCloseMidBurstDrainsDispatch(t *testing.T) {
	a, b := Pipe()
	var entered, exited atomic.Int32
	release := make(chan struct{})
	HandleFunc(b, "slow", func(in *echoArgs) (*echoReply, error) {
		entered.Add(1)
		<-release
		exited.Add(1)
		return &echoReply{}, nil
	})
	const burst = 16
	done := make(chan error, burst)
	for i := 0; i < burst; i++ {
		go func() { done <- a.Call("slow", &echoArgs{}, &echoReply{}) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() != burst {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d handlers entered", entered.Load(), burst)
		}
		time.Sleep(time.Millisecond)
	}
	// Release the handlers while Close is (most likely) already draining,
	// so the drain really overlaps live dispatches.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	start := time.Now()
	b.Close()
	drainTime := time.Since(start)
	if got := exited.Load(); got != burst {
		t.Fatalf("Close returned with %d/%d dispatch handlers still running", burst-got, burst)
	}
	if drainTime >= dispatchDrain {
		t.Fatalf("Close took %v, exhausted the %v dispatch drain budget", drainTime, dispatchDrain)
	}
	a.Close()
	for i := 0; i < burst; i++ {
		<-done
	}
	goleak.Check(t, "rpc.")
}

// TestConcurrentRawCalls hammers CallRaw from many goroutines and then
// checks the coalescing counters: all frames arrive intact, and the write
// path flushed fewer times than it sent frames (followers rode a leader's
// flush at least part of the time).
func TestConcurrentRawCalls(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.Handle("sum", func(body []byte) ([]byte, error) {
		var s byte
		for _, x := range body {
			s += x
		}
		return []byte{s}, nil
	})
	const callers, perCaller = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := make([]byte, i+1)
			var want byte
			for j := range body {
				body[j] = byte(i + j)
				want += body[j]
			}
			for k := 0; k < perCaller; k++ {
				rep, err := a.CallRaw("sum", body)
				if err != nil {
					errs <- err
					return
				}
				if len(rep) != 1 || rep[0] != want {
					errs <- errors.New("bad sum reply")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := a.WireStats()
	if st.FramesSent != callers*perCaller {
		t.Fatalf("frames sent = %d, want %d", st.FramesSent, callers*perCaller)
	}
	if st.Flushes <= 0 || st.Flushes > st.FramesSent {
		t.Fatalf("flushes = %d out of %d frames", st.Flushes, st.FramesSent)
	}
	// net.Pipe writes block until the reader drains them, so with 16 callers
	// the leader is guaranteed to pick up parked followers on its next pass:
	// coalescing must engage here, deterministically, even on one CPU.
	if st.Flushes >= st.FramesSent {
		t.Fatalf("flushes = %d for %d frames: no batching", st.Flushes, st.FramesSent)
	}
	if st.Coalesced == 0 {
		t.Fatalf("no coalesced frames under %d concurrent callers", callers)
	}
}

// TestReplySendFailureShutsDown: when a handler's reply cannot be sent, the
// peer must shut down (failing everything) instead of leaving the caller
// hanging forever.
func TestReplySendFailureShutsDown(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	started := make(chan struct{})
	b.Handle("wedge", func(body []byte) ([]byte, error) {
		close(started)
		// Kill the transport under b before it sends the reply.
		time.Sleep(10 * time.Millisecond)
		b.conn.Close()
		return []byte("late"), nil
	})
	closed := make(chan struct{})
	b.SetOnClose(func(error) { close(closed) })
	_, err := a.CallRaw("wedge", nil)
	if err == nil {
		t.Fatal("call succeeded over a dead transport")
	}
	<-started
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not shut down after reply send failure")
	}
}

func TestOnClose(t *testing.T) {
	a, b := Pipe()
	fired := make(chan struct{})
	b.SetOnClose(func(error) { close(fired) })
	a.Close()
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("OnClose never fired")
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		p, err := l.Accept()
		if err != nil {
			return
		}
		HandleFunc(p, "echo", func(in *echoArgs) (*echoReply, error) {
			return &echoReply{Msg: "tcp " + in.Msg}, nil
		})
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var rep echoReply
	// The handler registers asynchronously after accept; retry briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err = c.Call("echo", &echoArgs{Msg: "net"}, &rep)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Msg != "tcp net" {
		t.Fatalf("reply = %q", rep.Msg)
	}
}
