package rpc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoArgs struct{ Msg string }
type echoReply struct{ Msg string }

func TestCallOverPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(b, "echo", func(in *echoArgs) (*echoReply, error) {
		return &echoReply{Msg: "re: " + in.Msg}, nil
	})
	var rep echoReply
	if err := a.Call("echo", &echoArgs{Msg: "hi"}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Msg != "re: hi" {
		t.Fatalf("reply = %q", rep.Msg)
	}
}

func TestRemoteError(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(b, "boom", func(in *echoArgs) (*echoReply, error) {
		return nil, errors.New("kapow")
	})
	err := a.Call("boom", &echoArgs{}, &echoReply{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kapow" {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	err := a.Call("nope", &echoArgs{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(a, "client-side", func(in *echoArgs) (*echoReply, error) {
		return &echoReply{Msg: "from-a"}, nil
	})
	// b's handler calls back into a over the same connection — the callback
	// locking pattern.
	HandleFunc(b, "server-side", func(in *echoArgs) (*echoReply, error) {
		var rep echoReply
		if err := b.Call("client-side", &echoArgs{}, &rep); err != nil {
			return nil, err
		}
		return &echoReply{Msg: "server saw " + rep.Msg}, nil
	})
	var rep echoReply
	if err := a.Call("server-side", &echoArgs{}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Msg != "server saw from-a" {
		t.Fatalf("reply = %q", rep.Msg)
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	HandleFunc(b, "echo", func(in *echoArgs) (*echoReply, error) {
		return &echoReply{Msg: in.Msg}, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rep echoReply
			msg := strings.Repeat("x", i+1)
			if err := a.Call("echo", &echoArgs{Msg: msg}, &rep); err != nil {
				errs <- err
				return
			}
			if rep.Msg != msg {
				errs <- errors.New("reply mismatch: " + rep.Msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCloseFailsPendingAndFutureCalls(t *testing.T) {
	a, b := Pipe()
	HandleFunc(b, "slow", func(in *echoArgs) (*echoReply, error) {
		time.Sleep(200 * time.Millisecond)
		return &echoReply{}, nil
	})
	done := make(chan error, 1)
	go func() { done <- a.Call("slow", &echoArgs{}, &echoReply{}) }()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	if err := <-done; err == nil {
		t.Fatal("pending call survived close")
	}
	if err := a.Call("echo", &echoArgs{}, nil); err == nil {
		t.Fatal("call after close succeeded")
	}
}

func TestOnClose(t *testing.T) {
	a, b := Pipe()
	fired := make(chan struct{})
	b.OnClose = func(error) { close(fired) }
	a.Close()
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("OnClose never fired")
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		p, err := l.Accept()
		if err != nil {
			return
		}
		HandleFunc(p, "echo", func(in *echoArgs) (*echoReply, error) {
			return &echoReply{Msg: "tcp " + in.Msg}, nil
		})
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var rep echoReply
	// The handler registers asynchronously after accept; retry briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err = c.Call("echo", &echoArgs{Msg: "net"}, &rep)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Msg != "tcp net" {
		t.Fatalf("reply = %q", rep.Msg)
	}
}
