// Package rpc implements the symmetric message protocol BeSS processes use
// to talk to each other (paper §3): clients call servers for data and
// locks, and servers call back into clients to revoke cached pages (the
// callback locking algorithm), so both ends of a connection can originate
// requests.
//
// Wire format: a stream of length-prefixed binary frames (see frame.go);
// each frame carries a request or a reply matched by id. Hot methods encode
// their bodies with the hand-written codecs in internal/proto via CallRaw /
// Handle; cold methods keep gob bodies via Call / HandleFunc, so the two
// body codecs coexist on one connection. Outbound frames coalesce: a sender
// appends its frame to a pending buffer and the first sender to reach the
// socket flushes for everyone queued behind it — the same leader/follower
// pattern the WAL uses for group commit, applied to writes instead of
// fsyncs. Transports: TCP (cmd/bess-server) and net.Pipe for in-process
// deterministic tests.
//
// Besides request/reply, a peer carries one-way stream frames (SendStream /
// HandleStream): server-pushed scan batches and their credit/cancel flow
// control, matched by stream id instead of request id (DESIGN.md §6).
//
// Every goroutine here is spawned through goleak.Go and must carry stop
// evidence for bess-vet's golife analyzer (DESIGN.md §4e):
//
//bess:golife
package rpc

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bess/internal/goleak"
	"bess/internal/lockcheck"
)

// Errors returned by the peer.
var (
	ErrClosed    = errors.New("rpc: connection closed")
	ErrNoHandler = errors.New("rpc: no handler for method")
)

// Runtime ranks of the peer's locks, mirroring the //bess:lockorder
// directive in internal/server/lockorder.go. They rank below every server
// lock: sending or matching RPC traffic while holding server state locks is
// the latency/deadlock hazard the hierarchy exists to forbid.
const (
	rankPeerMu  lockcheck.Rank = 2
	rankPeerWmu lockcheck.Rank = 5
)

// RemoteError wraps an error string returned by the other side.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Handler serves one method: parse the request body, return the encoded
// reply body (nil for an empty reply). The body aliases the read buffer of
// its frame and may be retained.
type Handler func(body []byte) ([]byte, error)

// StreamHandler consumes one one-way stream frame. Stream handlers run
// synchronously on the read loop so frames of one stream arrive in order;
// they must hand off promptly and never block on traffic over the same
// peer. The body aliases the read buffer of its frame and may be retained.
type StreamHandler func(stream uint64, body []byte)

// Stats are cumulative wire counters. With write coalescing Flushes stays
// below FramesSent under concurrency: followers whose frame was carried to
// the socket by another sender's flush count as Coalesced.
type Stats struct {
	FramesSent int64
	Flushes    int64
	Coalesced  int64
}

// Peer is one end of a connection. Both sides may Call and Serve. Safe for
// concurrent use.
type Peer struct {
	conn io.ReadWriteCloser

	nextID atomic.Uint64 // request ids, assigned without locking

	// crcOut, when set, stamps every outbound frame with a CRC-32C trailer
	// (flagCRC). Set explicitly by the end that wants end-to-end wire
	// verification, or mirrored automatically when a checksummed frame
	// arrives — one side opting in upgrades both directions. Off by default:
	// loopback benches pay nothing.
	crcOut atomic.Bool

	// dg counts in-flight request dispatch goroutines so Close can drain
	// them: a peer closed mid-burst must not strand handlers running
	// against state the caller is about to tear down.
	dg sync.WaitGroup

	// Write side: senders append encoded frames to pending; the first to
	// arrive becomes the leader, detaches the buffer, and writes+flushes it
	// outside the lock while followers park on wcond (mirrors wal.Log.Flush).
	wmu      lockcheck.Mutex
	wcond    *sync.Cond
	bw       *bufio.Writer // leader-only (serialized by writing)
	pending  []byte        // guarded by wmu
	wseq     uint64        // guarded by wmu; frames appended
	wflushed uint64        // guarded by wmu; frames on the socket
	writing  bool          // guarded by wmu; a leader is on the socket
	werr     error         // guarded by wmu; sticky first write error
	frames   int64         // guarded by wmu
	flushes  int64         // guarded by wmu
	grouped  int64         // guarded by wmu

	mu       lockcheck.Mutex
	handlers map[string]Handler       // guarded by mu
	streams  map[string]StreamHandler // guarded by mu
	calls    map[uint64]chan frame    // guarded by mu
	closed   bool                     // guarded by mu
	closeErr error                    // guarded by mu

	onClose func(error) // guarded by mu; runs once when the read loop exits
}

// SetOnClose registers fn to run once when the peer shuts down, composing
// with (after) any previously registered hook. If the peer is already
// closed, fn runs immediately with the close error. Safe to call while the
// read loop is running — which is always, since NewPeer starts it.
func (p *Peer) SetOnClose(fn func(error)) {
	p.mu.Lock()
	if p.closed {
		err := p.closeErr
		p.mu.Unlock()
		fn(err)
		return
	}
	prev := p.onClose
	if prev == nil {
		p.onClose = fn
	} else {
		p.onClose = func(err error) { prev(err); fn(err) }
	}
	p.mu.Unlock()
}

// NewPeer wraps a connection and starts the read loop.
func NewPeer(conn io.ReadWriteCloser) *Peer {
	p := &Peer{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64<<10),
		handlers: make(map[string]Handler),
		calls:    make(map[uint64]chan frame),
	}
	p.mu.Init("Peer.mu", rankPeerMu)
	p.wmu.Init("Peer.wmu", rankPeerWmu)
	p.wcond = sync.NewCond(&p.wmu)
	goleak.Go("rpc.readLoop", p.readLoop)
	return p
}

// Handle registers a raw method handler (binary body codec). Must be called
// before the method can arrive; registering after NewPeer but before the
// other side calls is the normal pattern.
func (p *Peer) Handle(method string, h Handler) {
	p.mu.Lock()
	p.handlers[method] = h
	p.mu.Unlock()
}

// HandleStream registers a handler for one-way stream frames of method. A
// stream frame whose method has no handler is silently dropped — frames in
// flight after a cancel are normal, not an error.
func (p *Peer) HandleStream(method string, h StreamHandler) {
	p.mu.Lock()
	if p.streams == nil {
		p.streams = make(map[string]StreamHandler)
	}
	p.streams[method] = h
	p.mu.Unlock()
}

// SendStream sends a one-way stream frame: no reply is expected or matched.
// The bytes ride the same coalescing writer as requests and replies, so
// stream data interleaves with — and never starves — regular traffic.
func (p *Peer) SendStream(method string, stream uint64, body []byte) error {
	f := frame{id: stream, flags: flagStream, body: body}
	if mid, ok := methodIDs[method]; ok {
		f.method = mid
	} else {
		f.flags |= flagNamed
		f.name = method
	}
	return p.send(&f)
}

// HandleFunc registers a typed gob handler: args is decoded into a fresh A.
// This is the cold-method fallback; hot methods register a Handle with a
// proto binary codec instead.
func HandleFunc[A any, R any](p *Peer, method string, fn func(*A) (*R, error)) {
	p.Handle(method, func(body []byte) ([]byte, error) {
		var a A
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&a); err != nil {
			return nil, fmt.Errorf("rpc: decode %s args: %w", method, err)
		}
		res, err := fn(&a)
		if err != nil || res == nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// CallRaw sends a request whose body is already encoded and returns the
// reply body. The reply aliases the read buffer — no second decode pass.
func (p *Peer) CallRaw(method string, body []byte) ([]byte, error) {
	id := p.nextID.Add(1)
	ch := make(chan frame, 1)
	p.mu.Lock()
	if p.closed {
		err := p.closeErr
		p.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	p.calls[id] = ch
	p.mu.Unlock()

	f := frame{id: id, body: body}
	if mid, ok := methodIDs[method]; ok {
		f.method = mid
	} else {
		f.flags |= flagNamed
		f.name = method
	}
	if err := p.send(&f); err != nil {
		p.dropCall(id)
		return nil, err
	}
	rf, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	if rf.flags&flagError != 0 {
		return nil, &RemoteError{Msg: string(rf.body)}
	}
	return rf.body, nil
}

// Call sends a request with a gob-encoded body and gob-decodes the reply
// into reply (a pointer). The cold-method path.
func (p *Peer) Call(method string, args any, reply any) error {
	var body []byte
	if args != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(args); err != nil {
			return err
		}
		body = buf.Bytes()
	}
	rb, err := p.CallRaw(method, body)
	if err != nil {
		return err
	}
	if reply != nil {
		if err := gob.NewDecoder(bytes.NewReader(rb)).Decode(reply); err != nil {
			return fmt.Errorf("rpc: decode %s reply: %w", method, err)
		}
	}
	return nil
}

func (p *Peer) dropCall(id uint64) {
	p.mu.Lock()
	delete(p.calls, id)
	p.mu.Unlock()
}

// EnableChecksums turns on CRC-32C frame trailers for everything this peer
// sends. The other side verifies (the flag is self-describing) and mirrors,
// so calling this on one end at handshake time protects both directions.
func (p *Peer) EnableChecksums() { p.crcOut.Store(true) }

// ChecksumsEnabled reports whether outbound frames carry CRC trailers.
func (p *Peer) ChecksumsEnabled() bool { return p.crcOut.Load() }

// send serializes f into a pooled scratch buffer and hands the bytes to the
// coalescing writer.
func (p *Peer) send(f *frame) error {
	if p.crcOut.Load() {
		f.flags |= flagCRC
	}
	bp := getBuf()
	*bp = appendFrame((*bp)[:0], f)
	err := p.write(*bp)
	putBuf(bp)
	return err
}

// write appends one encoded frame to the pending buffer and returns once
// those bytes are on the socket — flushed either by this sender as leader
// or by another sender's flush that covered them.
func (p *Peer) write(frame []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.werr != nil {
		return p.werr
	}
	if p.pending == nil {
		bp := getBuf()
		p.pending = *bp
	}
	p.pending = append(p.pending, frame...)
	p.wseq++
	p.frames++
	return p.flushPending(p.wseq)
}

// flushPending blocks until every frame through seq is written. Called with
// p.wmu held; returns with it held (the lock is dropped around each socket
// write so other senders keep queueing — the leader carries them out on its
// next pass while they wait parked on wcond).
//
//bess:holds wmu
func (p *Peer) flushPending(seq uint64) error {
	waited := false
	for {
		if p.werr != nil {
			return p.werr
		}
		if p.wflushed >= seq {
			if waited {
				p.grouped++
			}
			return nil
		}
		if !p.writing {
			break
		}
		waited = true
		p.wcond.Wait()
	}
	// Leader: write batches outside the lock until nothing is pending.
	// Frames appended while a batch is on the socket ride the next pass, so
	// their senders stay parked and count as coalesced — the leader drains
	// the queue for everyone instead of handing the socket back per frame.
	p.writing = true
	for p.werr == nil && len(p.pending) > 0 {
		buf := p.pending
		top := p.wseq
		p.pending = nil
		p.wmu.Unlock()
		_, err := p.bw.Write(buf)
		if err == nil {
			err = p.bw.Flush()
		}
		p.wmu.Lock()
		if err != nil {
			// The stream is byte-oriented: a short write leaves the socket
			// unframeable, so the connection is done for — fail everyone.
			p.werr = err
		} else {
			p.wflushed = top
			p.flushes++
		}
		// The detached batch buffer is recycled on both outcomes: a failed
		// connection must not leak one pooled buffer per peer.
		putBuf(&buf)
		p.wcond.Broadcast()
	}
	p.writing = false
	p.wcond.Broadcast()
	return p.werr
}

// WireStats reports cumulative write-side counters.
func (p *Peer) WireStats() Stats {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return Stats{FramesSent: p.frames, Flushes: p.flushes, Coalesced: p.grouped}
}

func (p *Peer) readLoop() {
	br := bufio.NewReaderSize(p.conn, 64<<10)
	var err error
	for {
		var f frame
		if f, err = readFrame(br); err != nil {
			break
		}
		if f.flags&flagCRC != 0 {
			// The other side speaks checksums: mirror, so our replies and
			// calls are verified too.
			p.crcOut.Store(true)
		}
		if f.flags&flagStream != 0 {
			// Stream frames dispatch synchronously: per-stream ordering is
			// the point, and handlers are required to hand off promptly.
			p.mu.Lock()
			h := p.streams[f.name]
			p.mu.Unlock()
			if h != nil {
				h(f.id, f.body)
			}
			continue
		}
		if f.flags&flagReply != 0 {
			p.mu.Lock()
			ch, ok := p.calls[f.id]
			if ok {
				delete(p.calls, f.id)
			}
			p.mu.Unlock()
			if ok {
				ch <- f
			}
			continue
		}
		// Request: dispatch in its own goroutine so a handler that calls
		// back over the same peer cannot deadlock the loop. Each dispatch
		// joins p.dg so Close can drain the in-flight ones.
		p.dg.Add(1)
		goleak.Go("rpc.dispatch", func() {
			defer p.dg.Done()
			p.dispatch(f)
		})
	}
	p.shutdown(err)
}

func (p *Peer) dispatch(f frame) {
	p.mu.Lock()
	h := p.handlers[f.name]
	p.mu.Unlock()
	reply := frame{id: f.id, flags: flagReply}
	if h == nil {
		name := f.name
		if name == "" {
			name = fmt.Sprintf("#%d", f.method)
		}
		reply.flags |= flagError
		reply.body = []byte(ErrNoHandler.Error() + ": " + name)
	} else {
		body, err := h(f.body)
		if err != nil {
			reply.flags |= flagError
			reply.body = []byte(err.Error())
		} else {
			reply.body = body
		}
	}
	if err := p.send(&reply); err != nil {
		// A peer that cannot carry a reply is broken for every caller in
		// both directions: shut it down so pending calls fail fast instead
		// of hanging until TCP notices.
		p.shutdown(err)
	}
}

func (p *Peer) shutdown(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.closeErr = err
	for id, ch := range p.calls {
		close(ch)
		delete(p.calls, id)
	}
	onClose := p.onClose
	p.mu.Unlock()
	// Fail senders parked on the coalescing buffer and any future writes.
	p.wmu.Lock()
	if p.werr == nil {
		p.werr = ErrClosed
	}
	p.wcond.Broadcast()
	p.wmu.Unlock()
	p.conn.Close()
	if onClose != nil {
		onClose(err)
	}
}

// dispatchDrain bounds how long Close waits for in-flight request
// dispatches. Handlers hand off promptly by contract, and after shutdown
// their reply sends fail immediately, so the bound only guards against a
// handler stuck in user code.
const dispatchDrain = 2 * time.Second

// Close tears the connection down; pending calls fail with ErrClosed. It
// then drains the in-flight dispatch goroutines, bounded by dispatchDrain.
func (p *Peer) Close() error {
	err := p.conn.Close()
	p.shutdown(ErrClosed)
	drained := make(chan struct{})
	goleak.Go("rpc.dispatchDrain", func() {
		p.dg.Wait()
		close(drained)
	})
	select {
	case <-drained:
	case <-time.After(dispatchDrain):
	}
	return err
}

// Pipe returns two connected in-process peers.
func Pipe() (*Peer, *Peer) {
	c1, c2 := net.Pipe()
	return NewPeer(c1), NewPeer(c2)
}

// Dial connects to a TCP BeSS endpoint with the default Dialer: a bounded
// connect timeout and a few retries with jittered backoff (dial.go).
func Dial(addr string) (*Peer, error) {
	var d Dialer
	return d.Dial(addr)
}

// Listener accepts TCP peers.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next peer.
func (l *Listener) Accept() (*Peer, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewPeer(conn), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
