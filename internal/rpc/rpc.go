// Package rpc implements the symmetric message protocol BeSS processes use
// to talk to each other (paper §3): clients call servers for data and
// locks, and servers call back into clients to revoke cached pages (the
// callback locking algorithm), so both ends of a connection can originate
// requests.
//
// Wire format: a gob stream of frames; each frame carries a request or a
// reply matched by id. Transports: TCP (cmd/bess-server) and net.Pipe for
// in-process deterministic tests.
package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// frame is the wire unit.
type frame struct {
	ID     uint64
	Reply  bool
	Method string
	Err    string
	Body   []byte
}

// Errors returned by the peer.
var (
	ErrClosed    = errors.New("rpc: connection closed")
	ErrNoHandler = errors.New("rpc: no handler for method")
)

// RemoteError wraps an error string returned by the other side.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Handler serves one method: decode args from r, return a reply value.
type Handler func(dec *gob.Decoder) (any, error)

// Peer is one end of a connection. Both sides may Call and Serve. Safe for
// concurrent use.
type Peer struct {
	conn io.ReadWriteCloser

	writeMu sync.Mutex
	enc     *gob.Encoder

	mu       sync.Mutex
	handlers map[string]Handler
	pending  map[uint64]chan frame
	nextID   uint64
	closed   bool
	closeErr error

	// OnClose runs once when the read loop exits.
	OnClose func(error)
}

// NewPeer wraps a connection and starts the read loop.
func NewPeer(conn io.ReadWriteCloser) *Peer {
	p := &Peer{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]chan frame),
		nextID:   1,
	}
	go p.readLoop()
	return p
}

// Handle registers a method handler. Must be called before the method can
// arrive; registering after NewPeer but before the other side calls is the
// normal pattern.
func (p *Peer) Handle(method string, h Handler) {
	p.mu.Lock()
	p.handlers[method] = h
	p.mu.Unlock()
}

// HandleFunc registers a typed handler: args is decoded into a fresh A.
func HandleFunc[A any, R any](p *Peer, method string, fn func(*A) (*R, error)) {
	p.Handle(method, func(dec *gob.Decoder) (any, error) {
		var a A
		if err := dec.Decode(&a); err != nil {
			return nil, fmt.Errorf("rpc: decode %s args: %w", method, err)
		}
		return fn(&a)
	})
}

// Call sends a request and decodes the reply into reply (a pointer).
func (p *Peer) Call(method string, args any, reply any) error {
	p.mu.Lock()
	if p.closed {
		err := p.closeErr
		p.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	id := p.nextID
	p.nextID++
	ch := make(chan frame, 1)
	p.pending[id] = ch
	p.mu.Unlock()

	body, err := encodeBody(args)
	if err != nil {
		p.dropPending(id)
		return err
	}
	if err := p.send(frame{ID: id, Method: method, Body: body}); err != nil {
		p.dropPending(id)
		return err
	}
	f, ok := <-ch
	if !ok {
		return ErrClosed
	}
	if f.Err != "" {
		return &RemoteError{Msg: f.Err}
	}
	if reply != nil {
		dec := gob.NewDecoder(bytesReader(f.Body))
		if err := dec.Decode(reply); err != nil {
			return fmt.Errorf("rpc: decode %s reply: %w", method, err)
		}
	}
	return nil
}

func (p *Peer) dropPending(id uint64) {
	p.mu.Lock()
	delete(p.pending, id)
	p.mu.Unlock()
}

func (p *Peer) send(f frame) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	return p.enc.Encode(f)
}

func encodeBody(v any) ([]byte, error) {
	var buf writerBuf
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// writerBuf is a minimal bytes.Buffer substitute for encode.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type readerBuf struct {
	b []byte
	i int
}

func (r *readerBuf) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func bytesReader(b []byte) io.Reader { return &readerBuf{b: b} }

func (p *Peer) readLoop() {
	dec := gob.NewDecoder(p.conn)
	var err error
	for {
		var f frame
		if err = dec.Decode(&f); err != nil {
			break
		}
		if f.Reply {
			p.mu.Lock()
			ch, ok := p.pending[f.ID]
			if ok {
				delete(p.pending, f.ID)
			}
			p.mu.Unlock()
			if ok {
				ch <- f
			}
			continue
		}
		// Request: dispatch in its own goroutine so a handler that calls
		// back over the same peer cannot deadlock the loop.
		go p.dispatch(f)
	}
	p.shutdown(err)
}

func (p *Peer) dispatch(f frame) {
	p.mu.Lock()
	h := p.handlers[f.Method]
	p.mu.Unlock()
	var reply frame
	reply.ID = f.ID
	reply.Reply = true
	if h == nil {
		reply.Err = ErrNoHandler.Error() + ": " + f.Method
	} else {
		res, err := h(gob.NewDecoder(bytesReader(f.Body)))
		if err != nil {
			reply.Err = err.Error()
		} else if res != nil {
			body, err := encodeBody(res)
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Body = body
			}
		}
	}
	_ = p.send(reply)
}

func (p *Peer) shutdown(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.closeErr = err
	for id, ch := range p.pending {
		close(ch)
		delete(p.pending, id)
	}
	onClose := p.OnClose
	p.mu.Unlock()
	p.conn.Close()
	if onClose != nil {
		onClose(err)
	}
}

// Close tears the connection down; pending calls fail.
func (p *Peer) Close() error {
	err := p.conn.Close()
	p.shutdown(ErrClosed)
	return err
}

// Pipe returns two connected in-process peers.
func Pipe() (*Peer, *Peer) {
	c1, c2 := net.Pipe()
	return NewPeer(c1), NewPeer(c2)
}

// Dial connects to a TCP BeSS endpoint.
func Dial(addr string) (*Peer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewPeer(conn), nil
}

// Listener accepts TCP peers.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next peer.
func (l *Listener) Accept() (*Peer, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewPeer(conn), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
