package rpc

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// neverDial simulates a host that drops SYNs: the attempt blocks for the
// full connect timeout, then fails. (A real loopback listener cannot model
// this — the kernel completes handshakes even with a full backlog.)
func neverDial(calls *atomic.Int64) func(string, string, time.Duration) (net.Conn, error) {
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		calls.Add(1)
		time.Sleep(timeout)
		return nil, &net.OpError{Op: "dial", Net: network, Err: errors.New("i/o timeout")}
	}
}

func TestDialTimeoutAndRetryBudget(t *testing.T) {
	var calls atomic.Int64
	d := Dialer{
		Timeout:    5 * time.Millisecond,
		Retries:    2,
		Backoff:    time.Millisecond,
		MaxBackoff: 2 * time.Millisecond,
		Rand:       func() float64 { return 0.5 },
		DialFunc:   neverDial(&calls),
	}
	start := time.Now()
	_, err := d.Dial("10.255.255.1:1")
	if err == nil {
		t.Fatal("dial of a never-accepting host succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 1+2 retries", got)
	}
	// 3 bounded attempts + 2 tiny backoffs — nowhere near a default TCP
	// connect hang.
	if el := time.Since(start); el > time.Second {
		t.Fatalf("dial took %v; timeout not enforced", el)
	}
}

func TestDialNoRetries(t *testing.T) {
	var calls atomic.Int64
	d := Dialer{
		Timeout:  time.Millisecond,
		Retries:  -1, // explicit: fail on the first error
		DialFunc: neverDial(&calls),
	}
	if _, err := d.Dial("x:1"); err == nil {
		t.Fatal("dial succeeded")
	}
	if calls.Load() != 1 {
		t.Fatalf("made %d attempts, want 1", calls.Load())
	}
}

// TestDialRetriesUntilListenerAppears proves the retry loop end-to-end over
// real TCP: the first attempts hit a closed port, then the listener starts
// during the backoff window and the dial lands.
func TestDialRetriesUntilListenerAppears(t *testing.T) {
	// Reserve a port, then close it so the first dial gets RST.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	var attempts atomic.Int64
	started := make(chan *Listener, 1)
	d := Dialer{
		Timeout: time.Second,
		Retries: 10,
		Backoff: 10 * time.Millisecond,
		DialFunc: func(network, a string, timeout time.Duration) (net.Conn, error) {
			if attempts.Add(1) == 2 {
				// Bring the server up between attempts.
				l, err := Listen(addr)
				if err != nil {
					t.Errorf("listen: %v", err)
				} else {
					go func() {
						p, err := l.Accept()
						if err == nil {
							p.Handle("ping", func([]byte) ([]byte, error) { return []byte("pong"), nil })
						}
					}()
					started <- l
				}
			}
			return net.DialTimeout(network, a, timeout)
		},
	}
	p, err := d.Dial(addr)
	if err != nil {
		t.Fatalf("dial never recovered: %v (attempts=%d)", err, attempts.Load())
	}
	defer p.Close()
	defer (<-started).Close()
	if attempts.Load() < 2 {
		t.Fatalf("succeeded in %d attempts; retry path not exercised", attempts.Load())
	}
	// The recovered connection actually works.
	if b, err := p.CallRaw("ping", nil); err != nil || string(b) != "pong" {
		t.Fatalf("call over recovered connection: %q, %v", b, err)
	}
}

func TestDialerBackoffShape(t *testing.T) {
	d := Dialer{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second, Rand: func() float64 { return 0 }}
	// With Rand=0 the scale factor is exactly 0.5.
	for i, want := range []time.Duration{50, 100, 200, 400, 500, 500} {
		if got := d.backoff(i); got != want*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	// Jitter spreads attempts: Rand=1 doubles the floor.
	d.Rand = func() float64 { return 0.999999 }
	if got := d.backoff(0); got <= 50*time.Millisecond || got > 150*time.Millisecond {
		t.Fatalf("jittered backoff(0) = %v, want in (50ms, 150ms]", got)
	}
}
