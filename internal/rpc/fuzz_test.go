package rpc

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode holds the frame parser to its contract on arbitrary
// bytes: no panic, no huge allocation (lengths are checked before use), and
// canonical encoding — any input that decodes re-encodes to exactly the
// consumed bytes and decodes again to the same frame.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, &frame{id: 1, method: 10}))
	f.Add(appendFrame(nil, &frame{id: 0x0102030405060708, method: 17, body: []byte("body")}))
	f.Add(appendFrame(nil, &frame{id: 2, flags: flagNamed, name: "echo", body: []byte("hi")}))
	f.Add(appendFrame(nil, &frame{id: 3, flags: flagReply | flagError, body: []byte("boom")}))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := decodeFrame(b)
		if err != nil {
			return
		}
		if n < frameHdrLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := appendFrame(nil, &fr)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("not canonical:\n in %#v\nout %#v", b[:n], re)
		}
		fr2, n2, err := decodeFrame(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if fr2.id != fr.id || fr2.flags != fr.flags || fr2.method != fr.method ||
			fr2.name != fr.name || !bytes.Equal(fr2.body, fr.body) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", fr, fr2)
		}
	})
}
