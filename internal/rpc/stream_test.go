package rpc

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// TestStreamFramesOrderedPerStream checks that stream frames dispatch
// synchronously in arrival order, keyed by stream id, while regular calls
// keep working on the same connection.
func TestStreamFramesOrderedPerStream(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	var mu sync.Mutex
	got := make(map[uint64][]uint32)
	done := make(chan struct{}, 1)
	b.HandleStream("ScanData", func(stream uint64, body []byte) {
		seq := binary.BigEndian.Uint32(body)
		mu.Lock()
		got[stream] = append(got[stream], seq)
		n := len(got[1]) + len(got[2])
		mu.Unlock()
		if n == 8 {
			done <- struct{}{}
		}
	})
	b.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })

	for i := uint32(0); i < 4; i++ {
		for _, stream := range []uint64{1, 2} {
			var body [4]byte
			binary.BigEndian.PutUint32(body[:], i)
			if err := a.SendStream("ScanData", stream, body[:]); err != nil {
				t.Fatalf("SendStream: %v", err)
			}
		}
		// A regular call in between must not disturb stream delivery.
		if _, err := a.CallRaw("echo", []byte("x")); err != nil {
			t.Fatalf("CallRaw: %v", err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream frames not delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, stream := range []uint64{1, 2} {
		seqs := got[stream]
		if len(seqs) != 4 {
			t.Fatalf("stream %d got %d frames, want 4", stream, len(seqs))
		}
		for i, s := range seqs {
			if s != uint32(i) {
				t.Fatalf("stream %d out of order: %v", stream, seqs)
			}
		}
	}
}

// TestStreamUnknownMethodDropped checks that stream frames with no handler
// vanish without wedging the connection (late frames after a cancel).
func TestStreamUnknownMethodDropped(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })

	if err := a.SendStream("ScanData", 9, []byte("orphan")); err != nil {
		t.Fatalf("SendStream: %v", err)
	}
	if err := a.SendStream("NoSuchStream", 9, []byte("named orphan")); err != nil {
		t.Fatalf("SendStream named: %v", err)
	}
	rb, err := a.CallRaw("echo", []byte("still alive"))
	if err != nil || string(rb) != "still alive" {
		t.Fatalf("call after orphan stream frames: %q, %v", rb, err)
	}
}

// TestStreamSendAfterClose checks SendStream fails cleanly on a dead peer.
func TestStreamSendAfterClose(t *testing.T) {
	a, b := Pipe()
	b.Close()
	a.Close()
	if err := a.SendStream("ScanData", 1, []byte("x")); err == nil {
		t.Fatal("SendStream on closed peer succeeded")
	}
}
