package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"bess/internal/page"
)

// Binary frame format.
//
// The wire unit is a length-prefixed binary frame with a fixed big-endian
// header:
//
//	offset  size  field
//	0       8     request id (stream id on stream frames)
//	8       1     flags (bit0 reply, bit1 error, bit2 named method, bit3 stream, bit4 crc)
//	9       2     method id (0 on replies and named-method frames)
//	11      4     payload length N
//	15      N     payload
//	15+N    4     CRC-32C of the preceding 15+N bytes — only when bit4 is set
//
// The checksum trailer (flagCRC) is optional and per-frame: a peer that
// enables checksums sets the bit on everything it sends, and a peer that
// receives a checksummed frame mirrors the setting — so one side opting in
// at handshake time upgrades the connection in both directions, while
// loopback benches that never opt in pay nothing. N never includes the
// trailer.
//
// The payload of a request is the method's encoded argument body; hot
// methods use the hand-written codecs in internal/proto, cold methods carry
// a gob stream. A reply's payload is the encoded result body, or the error
// message when the error flag is set — either way the bytes travel exactly
// once (no inner encode of an outer frame, unlike the pre-E12 double-gob
// protocol). Methods outside the fixed id table (flagNamed) prefix the
// payload with a 2-byte name length and the method name, keeping the
// protocol open to tests and future methods without burning ids.
//
// Stream frames (flagStream) are one-way: the id field names a stream (a
// scan id) instead of a pending request, no reply is ever matched, and the
// reply/error bits must be clear. They carry the push half of the scan
// pipeline (server→client data) and its flow control (client→server
// credit/cancel) — see DESIGN.md §6.
//
// Every length is bounds-checked before anything is allocated, so a corrupt
// or hostile prefix cannot drive a huge allocation, and a successful decode
// always re-encodes to the identical bytes (the encoding is canonical —
// FuzzFrameDecode holds the parser to this).
const (
	frameHdrLen = 15

	flagReply  uint8 = 1 << 0 // frame answers the request with the same id
	flagError  uint8 = 1 << 1 // reply payload is an error message
	flagNamed  uint8 = 1 << 2 // payload starts with u16 name length + name
	flagStream uint8 = 1 << 3 // one-way stream frame: id is a stream id, no reply
	flagCRC    uint8 = 1 << 4 // CRC-32C trailer follows the payload

	flagsKnown = flagReply | flagError | flagNamed | flagStream | flagCRC

	// maxPayload bounds one frame (a commit can ship many segment images).
	maxPayload = 1 << 30
)

// ErrBadFrame reports bytes that are not a valid frame encoding.
var ErrBadFrame = errors.New("rpc: bad frame encoding")

// ErrFrameChecksum reports a CRC-flagged frame whose trailer did not match
// its bytes: the wire corrupted the frame in flight. The connection is
// unframeable past this point and is shut down.
var ErrFrameChecksum = errors.New("rpc: frame checksum mismatch")

// Method ids. The table below is part of the wire protocol: ids are
// append-only and never reassigned (the golden wire test pins them).
// Id 0 is reserved for named-method frames.
var methodNames = [...]string{
	1:  "Hello",
	2:  "OpenDB",
	3:  "NewTx",
	4:  "RegisterType",
	5:  "Types",
	6:  "NewFileID",
	7:  "AddArea",
	8:  "CreateSegment",
	9:  "SegInfo",
	10: "FetchSlotted",
	11: "FetchData",
	12: "FetchLarge",
	13: "FetchSeg",
	14: "Resolve",
	15: "Lock",
	16: "LockObject",
	17: "Commit",
	18: "Abort",
	19: "Prepare",
	20: "Decide",
	21: "SegmentsOf",
	22: "Released",
	23: "CreateLarge",
	24: "AllocRun",
	25: "FreeRun",
	26: "ReadRun",
	27: "WriteRun",
	28: "NameBind",
	29: "NameLookup",
	30: "NameUnbind",
	31: "NameRemoveOID",
	32: "Callback",
	33: "ScanStart",
	34: "ScanData",
	35: "ScanCtl",
	36: "SnapOpen",
	37: "SnapClose",
	38: "SnapFetchSeg",
	39: "SnapScanStart",
}

var methodIDs = func() map[string]uint16 {
	m := make(map[string]uint16, len(methodNames))
	for id, name := range methodNames {
		if name != "" {
			m[name] = uint16(id)
		}
	}
	return m
}()

// frame is the parsed wire unit.
type frame struct {
	id     uint64
	flags  uint8
	method uint16 // 0 when the name travels inline (flagNamed)
	name   string // resolved method name ("" on replies)
	body   []byte
}

// appendFrame serializes f onto dst, returning the extended slice. It
// runs once per frame on the send path and must not allocate beyond dst.
//
//bess:hotpath
func appendFrame(dst []byte, f *frame) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint64(dst, f.id)
	dst = append(dst, f.flags)
	dst = binary.BigEndian.AppendUint16(dst, f.method)
	plen := len(f.body)
	if f.flags&flagNamed != 0 {
		plen += 2 + len(f.name)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(plen))
	if f.flags&flagNamed != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.name)))
		dst = append(dst, f.name...)
	}
	dst = append(dst, f.body...)
	if f.flags&flagCRC != 0 {
		dst = binary.BigEndian.AppendUint32(dst, page.Checksum(dst[start:]))
	}
	return dst
}

// parseHeader validates a fixed header and returns the partial frame plus
// the payload length still to read. It runs once per received frame and
// allocates only on the (cold) malformed-header paths.
//
//bess:hotpath
func parseHeader(hdr *[frameHdrLen]byte) (frame, int, error) {
	f := frame{
		id:     binary.BigEndian.Uint64(hdr[0:8]),
		flags:  hdr[8],
		method: binary.BigEndian.Uint16(hdr[9:11]),
	}
	plen := binary.BigEndian.Uint32(hdr[11:15])
	if f.flags&^flagsKnown != 0 {
		return frame{}, 0, fmt.Errorf("%w: unknown flags %#02x", ErrBadFrame, f.flags)
	}
	if f.flags&flagNamed != 0 && f.method != 0 {
		return frame{}, 0, fmt.Errorf("%w: named frame carries method id %d", ErrBadFrame, f.method)
	}
	if f.flags&flagStream != 0 && f.flags&(flagReply|flagError) != 0 {
		return frame{}, 0, fmt.Errorf("%w: stream frame carries reply flags %#02x", ErrBadFrame, f.flags)
	}
	if plen > maxPayload {
		return frame{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, plen, maxPayload)
	}
	return f, int(plen), nil
}

// setPayload splits payload into inline name and body, resolving table
// method ids. The body aliases payload; callers must hand over ownership.
func (f *frame) setPayload(payload []byte) error {
	if f.flags&flagNamed != 0 {
		if len(payload) < 2 {
			return fmt.Errorf("%w: truncated method name length", ErrBadFrame)
		}
		n := int(binary.BigEndian.Uint16(payload[0:2]))
		if len(payload)-2 < n {
			return fmt.Errorf("%w: method name length %d exceeds %d remaining bytes", ErrBadFrame, n, len(payload)-2)
		}
		f.name = string(payload[2 : 2+n])
		payload = payload[2+n:]
	} else if f.flags&flagReply == 0 && int(f.method) < len(methodNames) {
		f.name = methodNames[f.method]
	}
	if len(payload) > 0 {
		f.body = payload
	} else {
		f.body = nil
	}
	return nil
}

// readFrame reads and parses one frame from br. The returned frame's body
// is freshly allocated: it may be retained and aliased by the consumer.
func readFrame(br *bufio.Reader) (frame, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	f, plen, err := parseHeader(&hdr)
	if err != nil {
		return frame{}, err
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	if f.flags&flagCRC != 0 {
		var trailer [4]byte
		if _, err := io.ReadFull(br, trailer[:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return frame{}, err
		}
		crc := page.Checksum(hdr[:])
		crc = page.ChecksumUpdate(crc, payload)
		if got := binary.BigEndian.Uint32(trailer[:]); got != crc {
			return frame{}, fmt.Errorf("%w: frame id %d: crc %08x want %08x", ErrFrameChecksum, f.id, crc, got)
		}
	}
	if err := f.setPayload(payload); err != nil {
		return frame{}, err
	}
	return f, nil
}

// decodeFrame parses one frame from the head of b, returning the number of
// bytes consumed. The frame aliases b. This is the slice-based twin of
// readFrame shared with FuzzFrameDecode.
func decodeFrame(b []byte) (frame, int, error) {
	if len(b) < frameHdrLen {
		return frame{}, 0, fmt.Errorf("%w: %d bytes is shorter than a header", ErrBadFrame, len(b))
	}
	var hdr [frameHdrLen]byte
	copy(hdr[:], b)
	f, plen, err := parseHeader(&hdr)
	if err != nil {
		return frame{}, 0, err
	}
	total := frameHdrLen + plen
	if f.flags&flagCRC != 0 {
		total += 4
	}
	if len(b) < total {
		return frame{}, 0, fmt.Errorf("%w: payload length %d exceeds %d remaining bytes", ErrBadFrame, plen, len(b)-frameHdrLen)
	}
	if f.flags&flagCRC != 0 {
		crc := page.Checksum(b[:frameHdrLen+plen])
		if got := binary.BigEndian.Uint32(b[frameHdrLen+plen : total]); got != crc {
			return frame{}, 0, fmt.Errorf("%w: frame id %d: crc %08x want %08x", ErrFrameChecksum, f.id, crc, got)
		}
	}
	if err := f.setPayload(b[frameHdrLen : frameHdrLen+plen]); err != nil {
		return frame{}, 0, err
	}
	return f, total, nil
}

// bufPool recycles frame-encode scratch and write-coalescing buffers; the
// send path allocates nothing steady-state for small frames.
//
//bess:resource acquire=getBuf release=putBuf sink=Peer.pending
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledBuf keeps one giant commit payload from pinning a huge buffer in
// the pool forever.
const maxPooledBuf = 1 << 20

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}
