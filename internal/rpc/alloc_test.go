package rpc

import "testing"

// Allocation budgets for the frame header codec (//bess:hotpath): encode
// appends onto the caller's buffer and parse fills a stack frame — neither
// may allocate on the valid-input path.

func TestAppendFrameAllocs(t *testing.T) {
	f := frame{id: 42, method: 13, body: make([]byte, 300)}
	named := frame{id: 43, flags: flagNamed, name: "SomeTestMethod", body: make([]byte, 64)}
	buf := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendFrame(buf[:0], &f)
		buf = appendFrame(buf, &named)
	}); n != 0 {
		t.Fatalf("appendFrame: %v allocs/op into a sized buffer, want 0", n)
	}
}

func TestParseHeaderAllocs(t *testing.T) {
	enc := appendFrame(nil, &frame{id: 7, method: 13, body: make([]byte, 99)})
	var hdr [frameHdrLen]byte
	copy(hdr[:], enc)
	var fSink frame
	var lenSink int
	if n := testing.AllocsPerRun(200, func() {
		f, plen, err := parseHeader(&hdr)
		if err != nil {
			t.Fatal(err)
		}
		fSink, lenSink = f, plen
	}); n != 0 {
		t.Fatalf("parseHeader: %v allocs/op on a valid header, want 0", n)
	}
	if fSink.id != 7 || lenSink != 99 {
		t.Fatalf("parsed id=%d plen=%d, want 7/99", fSink.id, lenSink)
	}
}
