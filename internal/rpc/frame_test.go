package rpc

import (
	"bytes"
	"errors"
	"testing"
)

// TestGoldenWireFormat pins the frame encoding byte for byte. These bytes
// are the wire protocol: if this test fails, the change breaks every peer
// that speaks the old format — bump a version, don't edit the expectation.
func TestGoldenWireFormat(t *testing.T) {
	cases := []struct {
		name string
		f    frame
		want []byte
	}{
		{
			name: "request/table-method/body",
			f:    frame{id: 0x0102030405060708, method: 10, body: []byte{0xAA, 0xBB}},
			want: []byte{
				0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // id
				0x00,       // flags
				0x00, 0x0A, // method id (FetchSlotted)
				0x00, 0x00, 0x00, 0x02, // payload length
				0xAA, 0xBB, // body
			},
		},
		{
			name: "request/named-method",
			f:    frame{id: 2, flags: flagNamed, name: "echo", body: []byte("hi")},
			want: []byte{
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02,
				0x04,       // flags: named
				0x00, 0x00, // method id 0
				0x00, 0x00, 0x00, 0x08, // payload: 2 + 4 name + 2 body
				0x00, 0x04, 'e', 'c', 'h', 'o',
				'h', 'i',
			},
		},
		{
			name: "stream/table-method/body",
			f:    frame{id: 7, flags: flagStream, method: 34, body: []byte{0xC0, 0xDE}},
			want: []byte{
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, // stream id
				0x08,       // flags: stream
				0x00, 0x22, // method id (ScanData)
				0x00, 0x00, 0x00, 0x02, // payload length
				0xC0, 0xDE, // body
			},
		},
		{
			name: "reply/empty",
			f:    frame{id: 3, flags: flagReply},
			want: []byte{
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03,
				0x01,
				0x00, 0x00,
				0x00, 0x00, 0x00, 0x00,
			},
		},
		{
			name: "reply/error",
			f:    frame{id: 4, flags: flagReply | flagError, body: []byte("boom")},
			want: []byte{
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04,
				0x03,
				0x00, 0x00,
				0x00, 0x00, 0x00, 0x04,
				'b', 'o', 'o', 'm',
			},
		},
		{
			name: "request/crc-trailer",
			f:    frame{id: 5, flags: flagCRC, method: 10, body: []byte{0xAA, 0xBB}},
			want: []byte{
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, // id
				0x10,       // flags: crc
				0x00, 0x0A, // method id (FetchSlotted)
				0x00, 0x00, 0x00, 0x02, // payload length (trailer NOT counted)
				0xAA, 0xBB, // body
				0x83, 0x1C, 0xFB, 0x85, // CRC-32C of the 17 preceding bytes
			},
		},
		{
			name: "reply/crc-trailer",
			f:    frame{id: 5, flags: flagReply | flagCRC, body: []byte("okay")},
			want: []byte{
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05,
				0x11, // flags: reply | crc
				0x00, 0x00,
				0x00, 0x00, 0x00, 0x04,
				'o', 'k', 'a', 'y',
				0x96, 0x0C, 0x38, 0x3E,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := appendFrame(nil, &tc.f)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("encoding changed:\n got %#v\nwant %#v", got, tc.want)
			}
			dec, n, err := decodeFrame(got)
			if err != nil || n != len(got) {
				t.Fatalf("decode: n=%d err=%v", n, err)
			}
			if dec.id != tc.f.id || dec.flags != tc.f.flags || dec.method != tc.f.method {
				t.Fatalf("decoded header = %+v", dec)
			}
			if !bytes.Equal(dec.body, tc.f.body) {
				t.Fatalf("decoded body = %q", dec.body)
			}
		})
	}
}

// TestMethodIDTablePinned pins the method-id assignments. Ids are part of
// the wire protocol: append-only, never reassigned.
func TestMethodIDTablePinned(t *testing.T) {
	want := map[string]uint16{
		"Hello": 1, "OpenDB": 2, "NewTx": 3, "RegisterType": 4, "Types": 5,
		"NewFileID": 6, "AddArea": 7, "CreateSegment": 8, "SegInfo": 9,
		"FetchSlotted": 10, "FetchData": 11, "FetchLarge": 12, "FetchSeg": 13,
		"Resolve": 14, "Lock": 15, "LockObject": 16, "Commit": 17, "Abort": 18,
		"Prepare": 19, "Decide": 20, "SegmentsOf": 21, "Released": 22,
		"CreateLarge": 23, "AllocRun": 24, "FreeRun": 25, "ReadRun": 26,
		"WriteRun": 27, "NameBind": 28, "NameLookup": 29, "NameUnbind": 30,
		"NameRemoveOID": 31, "Callback": 32, "ScanStart": 33, "ScanData": 34,
		"ScanCtl": 35, "SnapOpen": 36, "SnapClose": 37, "SnapFetchSeg": 38,
		"SnapScanStart": 39,
	}
	if len(methodIDs) != len(want) {
		t.Fatalf("method table has %d entries, want %d", len(methodIDs), len(want))
	}
	for name, id := range want {
		if got := methodIDs[name]; got != id {
			t.Fatalf("method %q = id %d, want %d", name, got, id)
		}
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	valid := appendFrame(nil, &frame{id: 1, method: 10})
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", valid[:frameHdrLen-1]},
		{"unknown flags", append(append([]byte(nil), valid[:8]...), append([]byte{0x80}, valid[9:]...)...)},
		{"named with method id", func() []byte {
			b := append([]byte(nil), valid...)
			b[8] = flagNamed
			return b
		}()},
		{"stream with reply flag", func() []byte {
			b := append([]byte(nil), valid...)
			b[8] = flagStream | flagReply
			return b
		}()},
		{"stream with error flag", func() []byte {
			b := append([]byte(nil), valid...)
			b[8] = flagStream | flagError
			return b
		}()},
		{"truncated payload", func() []byte {
			b := append([]byte(nil), valid...)
			b[14] = 4 // claims 4 payload bytes, none follow
			return b
		}()},
		{"oversized payload", func() []byte {
			b := append([]byte(nil), valid...)
			b[11], b[12], b[13], b[14] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}()},
		{"truncated inline name", func() []byte {
			f := frame{id: 1, flags: flagNamed, name: "echo"}
			b := appendFrame(nil, &f)
			b[16] = 0xFF // name length exceeds payload
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := decodeFrame(tc.b); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("err = %v, want ErrBadFrame", err)
			}
		})
	}
}
