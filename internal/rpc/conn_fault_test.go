package rpc_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"bess/internal/fault"
	"bess/internal/rpc"
)

// echoServer serves "echo" on a loopback listener and returns its address.
func echoServer(t *testing.T) string {
	t.Helper()
	l, err := rpc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			p.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
		}
	}()
	return l.Addr()
}

// faultPeer dials addr raw and wraps the client side of the connection.
func faultPeer(t *testing.T, addr string, plan fault.ConnPlan) *rpc.Peer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := rpc.NewPeer(fault.WrapConn(conn, plan))
	t.Cleanup(func() { p.Close() })
	return p
}

// TestRPCOverDelayedConn: a slow link delays calls but does not break the
// protocol.
func TestRPCOverDelayedConn(t *testing.T) {
	addr := echoServer(t)
	const d = 5 * time.Millisecond
	p := faultPeer(t, addr, fault.ConnPlan{ReadDelay: d, WriteDelay: d})
	start := time.Now()
	b, err := p.CallRaw("echo", []byte("slow"))
	if err != nil || string(b) != "slow" {
		t.Fatalf("call over slow link: %q, %v", b, err)
	}
	// The read loop pays its delay while parked waiting for frames, so only
	// the write delay is guaranteed to extend the round trip.
	if el := time.Since(start); el < d {
		t.Fatalf("round trip took %v, want >= the write delay (%v)", el, d)
	}
}

// TestRPCOverDroppingConn: when the connection dies mid-conversation,
// in-flight and subsequent calls fail promptly instead of hanging.
func TestRPCOverDroppingConn(t *testing.T) {
	addr := echoServer(t)
	p := faultPeer(t, addr, fault.ConnPlan{DropAfterOps: 3})

	// Burn ops until the drop fires, bounded by the plan.
	var lastErr error
	for i := 0; i < 10; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := p.CallRaw("echo", []byte("x"))
			done <- err
		}()
		select {
		case lastErr = <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("call hung on a dropped connection")
		}
		if lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("no call failed although the connection dropped")
	}
}

// TestRPCOverShortWriteConn: a torn frame kills the stream; the caller gets
// an error (not a corrupted reply) and the peer shuts down cleanly.
func TestRPCOverShortWriteConn(t *testing.T) {
	addr := echoServer(t)
	// Let the first call through, then tear a frame mid-write.
	p := faultPeer(t, addr, fault.ConnPlan{ShortWriteAfter: 40})

	if b, err := p.CallRaw("echo", []byte("a")); err != nil || string(b) != "a" {
		t.Fatalf("first call: %q, %v", b, err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.CallRaw("echo", []byte(strings.Repeat("b", 64)))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call over a torn stream succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call hung after short write")
	}
	// Close after the tear must not hang or panic; the connection is already
	// dead, so the error (already-closed) is immaterial.
	p.Close()
}

// crcPipe builds a connected peer pair with the client side's writes going
// through a fault.Conn.
func crcPipe(t *testing.T, plan fault.ConnPlan) (cli, srv *rpc.Peer) {
	t.Helper()
	cc, sc := net.Pipe()
	cli = rpc.NewPeer(fault.WrapConn(cc, plan))
	srv = rpc.NewPeer(sc)
	srv.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// TestChecksumMirroring: one side opting in upgrades the connection in both
// directions — the receiver of a checksummed frame mirrors the setting.
func TestChecksumMirroring(t *testing.T) {
	cli, srv := crcPipe(t, fault.ConnPlan{})
	cli.EnableChecksums()
	if srv.ChecksumsEnabled() {
		t.Fatal("server opted in before seeing a checksummed frame")
	}
	body := []byte("mirror me")
	got, err := cli.CallRaw("echo", body)
	if err != nil || string(got) != string(body) {
		t.Fatalf("checksummed call: %q, %v", got, err)
	}
	if !srv.ChecksumsEnabled() {
		t.Fatal("server did not mirror the checksum setting")
	}
}

// TestChecksumDetectsWireFlip: a flipped payload byte in flight must kill
// the exchange with ErrFrameChecksum — and the same flip without checksums
// is served back as silent garbage, which is exactly why the trailer
// exists.
func TestChecksumDetectsWireFlip(t *testing.T) {
	// Byte 22 (1-based) of the write stream: inside the request payload
	// (15 header + 2 name length + 4 name, then the body).
	const flipAt = 22

	cli, srv := crcPipe(t, fault.ConnPlan{FlipByteAt: flipAt})
	cli.EnableChecksums()
	srvErr := make(chan error, 1)
	srv.SetOnClose(func(err error) { srvErr <- err })
	if _, err := cli.CallRaw("echo", []byte("precious payload")); err == nil {
		t.Fatal("corrupted call succeeded")
	}
	select {
	case err := <-srvErr:
		if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("server shut down with %v, want a checksum error", err)
		}
	case <-time.After(time.Second):
		t.Fatal("server never detected the corrupt frame")
	}

	// Control: without the trailer the flip sails through undetected.
	cli2, _ := crcPipe(t, fault.ConnPlan{FlipByteAt: flipAt})
	body := []byte("precious payload")
	got, err := cli2.CallRaw("echo", body)
	if err != nil {
		t.Fatalf("uncorrupted-looking call failed: %v", err)
	}
	if string(got) == string(body) {
		t.Fatal("flip never fired")
	}
}
