// Package bench implements the experiment harness behind the repository's
// benchmarks (bench_test.go) and the bess-bench tool. Each experiment Ei
// reproduces a figure or performance claim of the paper; DESIGN.md §4 maps
// them to paper sections and EXPERIMENTS.md records representative output.
//
// Harness goroutines — acceptors, workers, updaters — are spawned through
// goleak.Go and joined on every exit path, so a failed run cannot strand
// senders; bess-vet's golife analyzer enforces the stop evidence
// (DESIGN.md §4e):
//
//bess:golife
package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"bess/internal/baseline"
	"bess/internal/buddy"
	"bess/internal/cache"
	"bess/internal/client"
	"bess/internal/core"
	"bess/internal/largeobj"
	"bess/internal/nodeserver"
	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/rpc"
	"bess/internal/segment"
	"bess/internal/server"
	"bess/internal/shm"
	"bess/internal/swizzle"
	"bess/internal/vmem"
	"bess/internal/wal"
)

var nodeDesc = segment.TypeDesc{Name: "BenchNode", Size: 16, RefOffsets: []int{0}}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// --- E1: pointer dereference — swizzled VM pointers vs OIDs ---

// E1Env holds a warm ring of objects reachable three ways: swizzled
// references (BeSS), a global-ref OID per hop, and an EOS-style OID table.
type E1Env struct {
	db     *core.Database
	srv    *server.Server
	Start  core.Ref
	oids   []oid.OID
	table  *baseline.OIDTable
	tStart oid.OID
}

// SetupE1 builds a ring of n nodes spread over several segments and warms
// every cache, so the measured cost is pure dereference.
func SetupE1(n int) *E1Env {
	srv := server.NewMem(1)
	db, err := core.OpenDatabase(srv, "e1", "db", true)
	must(err)
	td, err := db.RegisterType(nodeDesc)
	must(err)
	f, err := db.CreateFile("ring", core.WithGeometry(1, 8))
	must(err)
	must(db.Begin())
	refs := make([]core.Ref, n)
	for i := range refs {
		b := make([]byte, 16)
		binary.BigEndian.PutUint64(b[8:], uint64(i))
		refs[i], err = f.New(td, b)
		must(err)
	}
	for i := range refs {
		obj, err := db.Deref(refs[i])
		must(err)
		must(obj.SetRef(0, refs[(i+1)%n]))
	}
	must(db.Commit())

	// Warm everything.
	must(db.Begin())
	env := &E1Env{db: db, srv: srv, Start: refs[0]}
	env.oids = make([]oid.OID, n)
	for i := range refs {
		obj, err := db.Deref(refs[i])
		must(err)
		if _, err := obj.Ref(0); err != nil {
			panic(err)
		}
		env.oids[i] = db.GlobalRefOf(refs[i]).OID
	}
	// The EOS-style baseline: same ring as an OID table.
	env.table = baseline.NewOIDTable()
	for i := range refs {
		env.table.Put(env.oids[i], &baseline.OIDObject{
			Data: []byte{byte(i)},
			Refs: []oid.OID{env.oids[(i+1)%n]},
		})
	}
	env.tStart = env.oids[0]
	return env
}

// ChaseBeSS follows hops swizzled references.
func (e *E1Env) ChaseBeSS(hops int) {
	cur := e.Start
	for i := 0; i < hops; i++ {
		obj, err := e.db.Deref(cur)
		if err != nil {
			panic(err)
		}
		cur, err = obj.Ref(0)
		if err != nil {
			panic(err)
		}
	}
}

// ChaseOID follows hops through the hash table (EOS baseline).
func (e *E1Env) ChaseOID(hops int) {
	if _, err := e.table.Chase(e.tStart, 0, hops); err != nil {
		panic(err)
	}
}

// ChaseGlobal follows hops through global_ref-style OID resolution.
func (e *E1Env) ChaseGlobal(hops int) {
	cur := e.tStart
	for i := 0; i < hops; i++ {
		obj, err := e.db.Session().DerefOID(cur)
		if err != nil {
			panic(err)
		}
		a, err := obj.RefField(0)
		if err != nil {
			panic(err)
		}
		cur = e.db.Session().OIDOf(a)
	}
}

// Close releases the environment.
func (e *E1Env) Close() {
	_ = e.db.Abort()
	must(e.srv.Close())
}

// --- E2: operation modes — copy-on-access vs shared memory ---

// E2Env wires a server, a node server, a copy-on-access session through
// the node, and shared-memory processes on the node's cache.
type E2Env struct {
	srv   *server.Server
	node  *nodeserver.NodeServer
	sess  *client.Session
	shmP  *shm.Process
	pages []page.ID
}

// SetupE2 seeds nPages disk pages and attaches both modes.
func SetupE2(nPages int) *E2Env {
	srv := server.NewMem(1)
	cEnd, sEnd := rpc.Pipe()
	server.ServePeer(srv, sEnd)
	node, err := nodeserver.New(client.NewRemote(cEnd), "node", nPages+8, 2*nPages+16)
	must(err)
	sess, err := client.Open(node, "coa", "db", true)
	must(err)
	env := &E2Env{srv: srv, node: node, sess: sess}
	for i := 0; i < nPages; i++ {
		area, start, _, err := node.AllocRun(sess.DB(), 1)
		must(err)
		data := make([]byte, page.Size)
		data[0] = byte(i)
		must(node.WriteRun(sess.DB(), area, start, data))
		env.pages = append(env.pages, page.ID{Area: page.AreaID(area), Page: page.No(start)})
	}
	env.shmP, err = node.AttachShared()
	must(err)
	return env
}

// ShortTxShared touches k pages in place through the shared cache — the
// in-place mode's short transaction.
func (e *E2Env) ShortTxShared(k int) {
	var b [8]byte
	for i := 0; i < k; i++ {
		id := e.pages[i%len(e.pages)]
		r, err := e.shmP.Access(id)
		if err != nil {
			panic(err)
		}
		if err := e.shmP.WithLatch(r, func() error { return e.shmP.Read(r, b[:]) }); err != nil {
			panic(err)
		}
	}
}

// ShortTxCopy touches k pages through the node server with per-request
// copying (copy on access): each access fetches the page into the private
// space and reads the copy.
func (e *E2Env) ShortTxCopy(k int) {
	var b [8]byte
	for i := 0; i < k; i++ {
		id := e.pages[i%len(e.pages)]
		data, err := e.node.ReadRun(e.sess.DB(), uint32(id.Area), int64(id.Page), 1)
		if err != nil {
			panic(err)
		}
		copy(b[:], data)
	}
}

// Close releases the environment.
func (e *E2Env) Close() { must(e.srv.Close()) }

// --- E3: reservation greediness — lazy waves vs eager ---

// E3Result compares address-space consumption after traversing a fraction
// of a database.
type E3Result struct {
	Segments       int
	TouchedSegs    int
	LazyReserved   int64 // frames reserved by BeSS's wave scheme
	LazyMapped     int64
	EagerReserved  int64 // frames the greedy scheme reserves up front
	SlottedFetches int64
}

// RunE3 builds a database of segs segments, then dereferences one object in
// a fraction of them.
func RunE3(segs int, fraction float64) E3Result {
	srv := server.NewMem(1)
	defer func() { must(srv.Close()) }()
	db, err := core.OpenDatabase(srv, "e3", "db", true)
	must(err)
	td, err := db.RegisterType(nodeDesc)
	must(err)
	must(db.Begin())
	keys := make([]proto.SegKey, segs)
	for i := 0; i < segs; i++ {
		keys[i], err = db.Session().CreateSegment(1, 1, 4, -1)
		must(err)
		_, err := db.Session().CreateObject(keys[i], td.ID, make([]byte, 16))
		must(err)
	}
	must(db.Commit())

	// Fresh session: the measurement subject.
	sess, err := client.Open(srv, "probe", "db", false)
	must(err)
	must(sess.Begin())
	touch := int(float64(segs) * fraction)
	for i := 0; i < touch; i++ {
		addr, err := sess.AddrOfSlot(keys[i], 0)
		must(err)
		obj, err := sess.Deref(addr)
		must(err)
		var b [8]byte
		must(obj.Read(0, b[:]))
	}
	snap := sess.Mapper().Space().Snapshot()
	res := E3Result{
		Segments:     segs,
		TouchedSegs:  touch,
		LazyReserved: snap.ReservedFrames,
		LazyMapped:   snap.MappedFrames,
	}
	res.SlottedFetches = srv.Snapshot().SlottedFetches
	_ = sess.Abort()

	// The eager baseline reserves everything up front.
	eager, err := baseline.NewEagerReserver(vmem.New(), &segLister{keys: keys, slotted: 1, data: 4})
	must(err)
	res.EagerReserved = eager.Reserved
	return res
}

type segLister struct {
	keys    []proto.SegKey
	slotted int
	data    int
}

func (l *segLister) ListSegments() ([]swizzle.SegID, []int, []int, error) {
	segs := make([]swizzle.SegID, len(l.keys))
	sl := make([]int, len(l.keys))
	dt := make([]int, len(l.keys))
	for i, k := range l.keys {
		segs[i] = swizzle.SegID{Area: page.AreaID(k.Area), Start: page.No(k.Start)}
		sl[i] = l.slotted
		dt[i] = l.data
	}
	return segs, sl, dt, nil
}

// --- E4: replacement — two-level clock vs LRU under shared access ---

// E4Result reports hit ratios for one cache/workload configuration.
type E4Result struct {
	Pages, Slots, Procs int
	Accesses            int
	ClockHitRatio       float64
	LRUHitRatio         float64
}

type countingBacking struct{ fetches int64 }

func (b *countingBacking) Fetch(id page.ID) ([]byte, error) {
	b.fetches++
	d := make([]byte, page.Size)
	return d, nil
}
func (b *countingBacking) WriteBack(page.ID, []byte) error { return nil }

// RunE4 drives procs processes over a Zipf-ish page population through the
// shared cache (two-level clock) and through an LRU of the same size.
func RunE4(pages, slots, procs, accesses int, seed int64) E4Result {
	back := &countingBacking{}
	sc, err := shm.NewSharedCache(slots, 4*pages, back)
	must(err)
	ps := make([]*shm.Process, procs)
	for i := range ps {
		ps[i], err = sc.Attach()
		must(err)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(pages-1))
	ids := make([]page.ID, accesses)
	for i := range ids {
		ids[i] = page.ID{Area: 1, Page: page.No(zipf.Uint64())}
	}
	var b [1]byte
	for i, id := range ids {
		p := ps[i%procs]
		r, err := p.Access(id)
		if err != nil {
			continue
		}
		_ = p.Read(r, b[:])
	}
	st := sc.Pool().Snapshot()
	res := E4Result{Pages: pages, Slots: slots, Procs: procs, Accesses: accesses}
	if st.Hits+st.Misses > 0 {
		res.ClockHitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}

	// LRU baseline over the identical trace.
	lru := cache.NewLRU(slots)
	for _, id := range ids {
		if _, ok := lru.Get(id); !ok {
			lru.Put(id, nil)
		}
	}
	h, m, _ := lru.Stats()
	if h+m > 0 {
		res.LRUHitRatio = float64(h) / float64(h+m)
	}
	return res
}

// --- E5: large object byte-range ops vs whole rewrite ---

// E5Result compares segment I/O for one edit pattern.
type E5Result struct {
	ObjectBytes              int64
	EditBytes                int
	TreeReads, TreeWrites    int64
	RewriteReads, RewriteIOs int64 // baseline reads whole + writes whole
}

// RunE5 creates an object of size bytes and inserts editBytes in the
// middle, via the tree and via the rewrite-everything baseline.
func RunE5(size int64, editBytes int) E5Result {
	st := newMemAreaStore()
	o, err := largeobj.Create(st, size)
	must(err)
	chunk := make([]byte, 1<<16)
	for written := int64(0); written < size; written += int64(len(chunk)) {
		n := size - written
		if n > int64(len(chunk)) {
			n = int64(len(chunk))
		}
		must(o.Append(chunk[:n]))
	}
	r0, w0, _, _ := o.Stats()
	must(o.Insert(size/2, make([]byte, editBytes)))
	r1, w1, _, _ := o.Stats()

	// Baseline: read the whole object, splice in memory, write it back.
	whole := make([]byte, o.Size())
	must(o.Read(0, whole))
	segReads := (size + (1 << 16) - 1) / (1 << 16)
	segWrites := (o.Size() + (1 << 16) - 1) / (1 << 16)
	return E5Result{
		ObjectBytes: size,
		EditBytes:   editBytes,
		TreeReads:   r1 - r0, TreeWrites: w1 - w0,
		RewriteReads: segReads, RewriteIOs: segWrites,
	}
}

// RunE5Ablation repeats the E5 edit with an explicit segment-size hint —
// the design choice §2.1 exposes to users ("hints about the potential size
// of the object can be provided"). Smaller segments mean cheaper edits but
// more index entries.
func RunE5Ablation(size int64, hintBytes int64, editBytes int) (segments int, treeWrites int64) {
	st := newMemAreaStore()
	o, err := largeobj.Create(st, hintBytes)
	must(err)
	chunk := make([]byte, 1<<16)
	for written := int64(0); written < size; written += int64(len(chunk)) {
		n := size - written
		if n > int64(len(chunk)) {
			n = int64(len(chunk))
		}
		must(o.Append(chunk[:n]))
	}
	_, w0, _, _ := o.Stats()
	must(o.Insert(size/2+1, make([]byte, editBytes))) // off-boundary: forces a split
	_, w1, _, _ := o.Stats()
	return o.Segments(), w1 - w0
}

type memAreaStore struct {
	next page.No
	segs map[page.No][]byte
}

func newMemAreaStore() *memAreaStore {
	return &memAreaStore{next: 1, segs: make(map[page.No][]byte)}
}

func (s *memAreaStore) Alloc(nPages int) (page.No, int, error) {
	start := s.next
	s.next += page.No(nPages)
	s.segs[start] = make([]byte, nPages*page.Size)
	return start, nPages, nil
}

func (s *memAreaStore) Free(start page.No) error {
	delete(s.segs, start)
	return nil
}

func (s *memAreaStore) ReadRun(start page.No, n int, buf []byte) error {
	copy(buf, s.segs[start])
	return nil
}

func (s *memAreaStore) WriteRun(start page.No, data []byte) error {
	copy(s.segs[start], data)
	return nil
}

// --- E6: inter-transaction caching + callback locking ---

// E6Result reports server messages per transaction with and without
// inter-transaction caching.
type E6Result struct {
	Txns             int
	SegsPerTx        int
	MsgsPerTxCached  float64
	MsgsPerTxNoCache float64
	Callbacks        int64
	LocalGrantsPerTx float64
}

// RunE6 runs txns read transactions over k segments, warm-cached vs cache
// dropped at end of transaction (the no-inter-tx-caching baseline).
func RunE6(txns, k int) E6Result {
	srv := server.NewMem(1)
	defer func() { must(srv.Close()) }()
	db, err := core.OpenDatabase(srv, "e6", "db", true)
	must(err)
	td, err := db.RegisterType(nodeDesc)
	must(err)
	must(db.Begin())
	keys := make([]proto.SegKey, k)
	for i := range keys {
		keys[i], err = db.Session().CreateSegment(1, 1, 2, -1)
		must(err)
		_, err = db.Session().CreateObject(keys[i], td.ID, make([]byte, 16))
		must(err)
	}
	must(db.Commit())

	run := func(drop bool) float64 {
		sess, err := client.Open(srv, "worker", "db", false)
		must(err)
		before := srv.Snapshot().Messages
		for t := 0; t < txns; t++ {
			must(sess.Begin())
			for _, key := range keys {
				addr, err := sess.AddrOfSlot(key, 0)
				must(err)
				obj, err := sess.Deref(addr)
				must(err)
				var b [8]byte
				must(obj.Read(0, b[:]))
			}
			must(sess.Commit())
			if drop {
				sess.DropAllCached()
			}
		}
		return float64(srv.Snapshot().Messages-before) / float64(txns)
	}

	res := E6Result{Txns: txns, SegsPerTx: k}
	res.MsgsPerTxCached = run(false)
	res.MsgsPerTxNoCache = run(true)
	res.Callbacks = srv.Snapshot().Callbacks
	return res
}

// --- E7: update detection — hardware protection vs software dirty calls ---

// E7Result compares costs for a mixed read/write transaction.
type E7Result struct {
	ReadObjs, WriteObjs int
	HWFaults            int64 // protection faults taken (one per page/mode)
	HWProtectCalls      int64 // mprotect analogues
	HWLockRequests      int64 // exclusive locks actually needed
	SWLockRequests      int64 // conservative software scheme
}

// RunE7 reads r objects and writes w of them; the software baseline must
// conservatively lock on every pointer pass.
func RunE7(r, w int) E7Result {
	srv := server.NewMem(1)
	defer func() { must(srv.Close()) }()
	db, err := core.OpenDatabase(srv, "e7", "db", true)
	must(err)
	td, err := db.RegisterType(nodeDesc)
	must(err)
	f, err := db.CreateFile("objs", core.WithGeometry(1, 8))
	must(err)
	must(db.Begin())
	refs := make([]core.Ref, r)
	for i := range refs {
		refs[i], err = f.New(td, make([]byte, 16))
		must(err)
	}
	must(db.Commit())

	sess := db.Session()
	space := sess.Mapper().Space()
	f0 := space.Snapshot()
	must(db.Begin())
	var buf [8]byte
	for i, ref := range refs {
		obj, err := db.Deref(ref)
		must(err)
		must(obj.Read(8, buf[:]))
		if i < w {
			must(obj.Write(8, buf[:]))
		}
	}
	x := sess.Snapshot()
	_ = x
	must(db.Commit())
	f1 := space.Snapshot()

	// Software baseline: the compiler cannot see which of the r accesses
	// write, so every object pointer passed to a function costs an
	// exclusive lock request; writes additionally mark dirty.
	sw := baseline.NewSoftwareDetect()
	seg := swizzle.SegID{Area: 1, Start: 1}
	for i := 0; i < r; i++ {
		sw.PassPointer(seg, i%4)
		if i < w {
			sw.MarkDirty(seg, i%4)
		}
	}
	return E7Result{
		ReadObjs: r, WriteObjs: w,
		HWFaults:       f1.Faults - f0.Faults,
		HWProtectCalls: f1.ProtectCalls - f0.ProtectCalls,
		HWLockRequests: int64(len(sessWriteSegs(sess))),
		SWLockRequests: sw.Locks,
	}
}

func sessWriteSegs(s *client.Session) []proto.SegKey {
	out := map[proto.SegKey]bool{}
	for _, id := range s.Mapper().DirtySegs() {
		out[proto.SegKey{Area: uint32(id.Area), Start: int64(id.Start)}] = true
	}
	keys := make([]proto.SegKey, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	return keys
}

// --- E8: recovery — ARIES restart vs log volume ---

// E8Result reports restart work for one crash scenario.
type E8Result struct {
	Txns, UpdatesPerTx int
	Checkpoint         bool
	RecordsAnalyzed    int
	RedoApplied        int
	UndoApplied        int
	Losers             int
}

// RunE8 builds a log of txns transactions (half commit, half crash live),
// optionally checkpointed midway, then restarts.
func RunE8(txns, updates int, checkpoint bool) E8Result {
	l := wal.NewMem()
	disk := &memPager{pages: make(map[page.ID][]byte)}
	var at []wal.CkptTx
	for t := 0; t < txns; t++ {
		id := uint64(t + 1)
		var last page.LSN
		for u := 0; u < updates; u++ {
			pid := page.ID{Area: 1, Page: page.No(u % 32)}
			rec := &wal.Record{
				Type: wal.TUpdate, Tx: id, PrevLSN: last, Page: pid,
				Off: uint32(u % 100), Before: []byte{0}, After: []byte{byte(t)},
			}
			lsn, err := l.Append(rec)
			must(err)
			last = lsn
		}
		if t%2 == 0 {
			_, err := l.Append(&wal.Record{Type: wal.TCommit, Tx: id, PrevLSN: last})
			must(err)
			_, err = l.Append(&wal.Record{Type: wal.TEnd, Tx: id})
			must(err)
		} else {
			at = append(at, wal.CkptTx{Tx: id, LastLSN: last})
		}
		if checkpoint && t == txns/2 {
			_, err := wal.Checkpoint(l, at, nil)
			must(err)
		}
	}
	must(l.Flush(0))
	crashed, err := wal.OpenMemFrom(l.DurableBytes())
	must(err)
	st, err := wal.Recover(crashed, disk)
	must(err)
	return E8Result{
		Txns: txns, UpdatesPerTx: updates, Checkpoint: checkpoint,
		RecordsAnalyzed: st.RecordsAnalyzed, RedoApplied: st.RedoApplied,
		UndoApplied: st.UndoApplied, Losers: len(st.Losers),
	}
}

type memPager struct{ pages map[page.ID][]byte }

func (p *memPager) ReadPage(id page.ID, buf []byte) error {
	if pg, ok := p.pages[id]; ok {
		copy(buf, pg)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

func (p *memPager) WritePage(id page.ID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	p.pages[id] = cp
	return nil
}

// --- E9: multifile parallel scan ---

// DiskDelay models the rotational/seek latency of one segment fetch when a
// multifile's areas sit on distinct devices. The paper's parallel-I/O claim
// is about overlapping these latencies; an in-memory substrate has none, so
// the bench injects them explicitly (see DESIGN.md §2, substitution 6).
const DiskDelay = 300 * time.Microsecond

// delayConn wraps a connection, sleeping DiskDelay on every segment fetch —
// concurrent fetches by different workers overlap, as independent disks
// would.
type delayConn struct{ proto.Conn }

func (d delayConn) FetchSlotted(c uint32, seg proto.SegKey) ([]byte, []byte, error) {
	time.Sleep(DiskDelay)
	return d.Conn.FetchSlotted(c, seg)
}

func (d delayConn) FetchData(c uint32, seg proto.SegKey) ([]byte, error) {
	time.Sleep(DiskDelay)
	return d.Conn.FetchData(c, seg)
}

func (d delayConn) FetchSeg(c uint32, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	// One combined fetch is still one disk visit.
	time.Sleep(DiskDelay)
	return d.Conn.FetchSeg(c, seg)
}

// E9Env is a populated multifile ready for scan sweeps.
type E9Env struct {
	srv  *server.Server
	db   *core.Database
	file *core.File
	N    int
}

// SetupE9 creates a multifile of objs objects over areas storage areas.
func SetupE9(objs, areas int) *E9Env {
	srv := server.NewMem(1)
	db, err := core.OpenDatabase(srv, "e9", "db", true)
	must(err)
	blob, err := db.RegisterType(core.TypeDesc{Name: "Blob", Size: 0})
	must(err)
	f, err := db.CreateFile("scan", core.AsMultifile(areas), core.WithGeometry(1, 2))
	must(err)
	must(db.Begin())
	for i := 0; i < objs; i++ {
		_, err := f.New(blob, make([]byte, 1000))
		must(err)
	}
	must(db.Commit())
	return &E9Env{srv: srv, db: db, file: f, N: objs}
}

// Scan runs a parallel scan with the given worker count and returns the
// number of objects visited. Fetches pay the simulated disk latency.
func (e *E9Env) Scan(workers int) int {
	var count atomic.Int64
	err := e.file.ParallelScan(delayConn{e.srv}, "db", workers, func(_ segment.TypeID, data []byte) error {
		count.Add(1)
		return nil
	})
	must(err)
	return int(count.Load())
}

// Close releases the environment.
func (e *E9Env) Close() { must(e.srv.Close()) }

// --- E10: buddy allocation ---

// E10Result reports allocator behaviour for a random workload.
type E10Result struct {
	Ops         int
	Utilization float64
	Splits      int64
	Coalesces   int64
	Failures    int
}

// RunE10 drives ops random alloc/free operations on a 2^order allocator.
func RunE10(ops, order int, seed int64) E10Result {
	a, err := buddy.New(order)
	must(err)
	rng := rand.New(rand.NewSource(seed))
	var live []int64
	fail := 0
	for i := 0; i < ops; i++ {
		if len(live) > 0 && rng.Intn(5) < 2 {
			j := rng.Intn(len(live))
			must(a.Free(live[j]))
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		off, _, err := a.Alloc(int64(1 + rng.Intn(64)))
		if err != nil {
			fail++
			continue
		}
		live = append(live, off)
	}
	return E10Result{
		Ops:         ops,
		Utilization: a.Utilization(),
		Splits:      a.Splits(),
		Coalesces:   a.Coalesces(),
		Failures:    fail,
	}
}

// FormatE3 renders an E3 row.
func FormatE3(r E3Result) string {
	return fmt.Sprintf("segs=%-5d touched=%-5d lazy-reserved=%-6d lazy-mapped=%-6d eager-reserved=%-6d fetches=%d",
		r.Segments, r.TouchedSegs, r.LazyReserved, r.LazyMapped, r.EagerReserved, r.SlottedFetches)
}
