package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/segment"
	"bess/internal/server"
)

// --- E11: commit throughput vs client concurrency (group commit) ---

// E11Result reports commit throughput for one client count against a
// file-backed (really fsyncing) server.
type E11Result struct {
	Clients        int            `json:"clients"`
	Commits        int            `json:"commits"`
	Seconds        float64        `json:"seconds"`
	CommitsPerSec  float64        `json:"commits_per_sec"`
	WALSyncs       int64          `json:"wal_syncs"`
	GroupedCommits int64          `json:"grouped_commits"`
	SyncsPerCommit float64        `json:"syncs_per_commit"`
	Latency        LatencySummary `json:"latency"` // per update transaction
}

// RunE11 opens a file-backed server (commits pay a real fsync), gives each
// client its own segment plus two prebuilt commit images with equal-length
// alternating payloads (so every commit logs real page changes), and runs
// clients goroutines each committing commitsPerClient update transactions.
// With group commit, concurrent committers share fsync rounds, so
// SyncsPerCommit should fall well below 1 as Clients grows.
func RunE11(clients, commitsPerClient int) E11Result {
	return runE11(clients, commitsPerClient, 0)
}

// RunE11Scrubbed is RunE11 with the background scrubber passing over the
// catalog at the given interval for the whole run. Comparing it against
// RunE11 measures the scrubber's overhead on the commit path (the E19
// acceptance wants it inside noise).
func RunE11Scrubbed(clients, commitsPerClient int, scrubEvery time.Duration) E11Result {
	return runE11(clients, commitsPerClient, scrubEvery)
}

func runE11(clients, commitsPerClient int, scrubEvery time.Duration) E11Result {
	dir, err := os.MkdirTemp("", "bess-e11-")
	must(err)
	defer os.RemoveAll(dir)
	srv, err := server.Open(dir, 1)
	must(err)
	defer func() { must(srv.Close()) }()
	db, _, err := srv.OpenDB("e11", true)
	must(err)
	if scrubEvery > 0 {
		srv.StartScrub(scrubEvery, 0)
	}

	keys := make([]proto.SegKey, clients)
	imgs := make([][2]proto.SegImage, clients)
	conns := make([]uint32, clients)
	for c := 0; c < clients; c++ {
		fid, err := srv.NewFileID(db)
		must(err)
		keys[c], err = srv.CreateSegment(db, fid, 1, 2, -1)
		must(err)
		for v := 0; v < 2; v++ {
			sl, ov, err := srv.FetchSlotted(0, keys[c])
			must(err)
			seg, err := segment.DecodeSlotted(sl)
			must(err)
			seg.Overflow = ov
			seg.Data, err = srv.FetchData(0, keys[c])
			must(err)
			_, err = seg.CreateObject(0, []byte(fmt.Sprintf("e11-client-%03d-v%d", c, v)))
			must(err)
			imgs[c][v] = proto.SegImage{Seg: keys[c], Slotted: seg.EncodeSlotted(), Overflow: seg.Overflow, Data: seg.Data}
		}
		conns[c], err = srv.Hello(fmt.Sprintf("e11-%d", c))
		must(err)
	}

	before := srv.Snapshot()
	var lat Hist
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		goleak.Go("bench.e11Worker", func() {
			defer wg.Done()
			for i := 0; i < commitsPerClient; i++ {
				t0 := time.Now()
				txid, err := srv.NewTx()
				must(err)
				must(srv.Lock(conns[c], txid, keys[c], proto.LockX))
				must(srv.Commit(conns[c], txid, []proto.SegImage{imgs[c][i%2]}))
				lat.Observe(time.Since(t0))
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := srv.Snapshot()

	commits := clients * commitsPerClient
	res := E11Result{
		Clients:        clients,
		Commits:        commits,
		Seconds:        elapsed.Seconds(),
		CommitsPerSec:  float64(commits) / elapsed.Seconds(),
		WALSyncs:       after.WALSyncs - before.WALSyncs,
		GroupedCommits: after.WALGroupedCommits - before.WALGroupedCommits,
		Latency:        lat.Summary(),
	}
	res.SyncsPerCommit = float64(res.WALSyncs) / float64(commits)
	return res
}

// FormatE11 renders an E11 row.
func FormatE11(r E11Result) string {
	return fmt.Sprintf("clients=%-3d commits=%-5d %8.0f commits/s  syncs=%-5d syncs/commit=%.3f grouped=%d  %s",
		r.Clients, r.Commits, r.CommitsPerSec, r.WALSyncs, r.SyncsPerCommit, r.GroupedCommits, FormatLatency(r.Latency))
}
