package bench

import (
	"sort"
	"testing"
	"time"
)

// TestScrubOverhead runs the E11 commit smoke and the E18 scan smoke with
// the background scrubber sweeping the full catalog every 25ms — far more
// aggressive than any production cadence — and compares against the
// scrubber-free baseline. The E19 acceptance wants the overhead within
// noise (<5%); shared CI runners are too jittery to pin that on a smoke,
// so the committed EXPERIMENTS.md numbers (12 interleaved pairs at full
// size) carry the <5% claim and this test trips only on a gross
// regression (median-of-5 over 40% slower).
func TestScrubOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; run without -short")
	}
	median5 := func(f func() float64) float64 {
		s := []float64{f(), f(), f(), f(), f()}
		sort.Float64s(s)
		return s[2]
	}

	e11 := func(scrub time.Duration) func() float64 {
		return func() float64 {
			if scrub > 0 {
				return RunE11Scrubbed(4, 150, scrub).Seconds
			}
			return RunE11(4, 150).Seconds
		}
	}
	base := median5(e11(0))
	scrubbed := median5(e11(25 * time.Millisecond))
	over := (scrubbed - base) / base * 100
	t.Logf("E11 commit smoke: base %.3fs, scrubbed %.3fs, overhead %+.1f%%", base, scrubbed, over)
	if over > 40 {
		t.Errorf("scrubber costs %.1f%% on the E11 commit path — far beyond noise", over)
	}

	e18 := func(scrub time.Duration) func() float64 {
		return func() float64 {
			env := SetupE18(2, 4, 10, 2048)
			defer env.Close()
			if scrub > 0 {
				env.srv.StartScrub(scrub, 0)
			}
			t0 := time.Now()
			for i := 0; i < 12; i++ {
				RunE18Scan(env, "stream", env.Files[0], false)
			}
			return time.Since(t0).Seconds()
		}
	}
	base = median5(e18(0))
	scrubbed = median5(e18(25 * time.Millisecond))
	over = (scrubbed - base) / base * 100
	t.Logf("E18 scan smoke:   base %.3fs, scrubbed %.3fs, overhead %+.1f%%", base, scrubbed, over)
	if over > 40 {
		t.Errorf("scrubber costs %.1f%% on the E18 scan path — far beyond noise", over)
	}
}
