package bench

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bess/internal/client"
	"bess/internal/core"
	"bess/internal/fault"
	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/rpc"
	"bess/internal/segment"
	"bess/internal/server"
	"bess/internal/swizzle"
	"bess/internal/vmem"
)

// --- E18: streaming scan — push-based pipeline vs per-segment fetch (§10) ---
//
// The experiment runs a file-backed server on loopback TCP and scans blob
// files cold from fresh sessions. The pull mode is the classic cursor: one
// SegInfo plus one FetchSeg round trip per segment, serializing server read,
// wire transfer, and client consumption. The stream mode opens a server-side
// cursor (ScanStart) that pushes coalesced segment-image batches ahead of
// the iterator under a byte-credit window, so the three stages overlap.
// Axes: cold full-file bandwidth, multi-file parallel streams, and a mixed
// workload with an updater committing against a second file mid-scan.

var e18BlobType = segment.TypeDesc{Name: "E18Blob", Size: 0}

// E18Env is one populated server reachable over loopback TCP.
type E18Env struct {
	dir        string
	srv        *server.Server
	lis        *rpc.Listener
	acceptDone chan struct{} // closed when the accept loop exits
	db         uint32        // database id
	Files      []uint32      // populated file ids
	Segs       int           // segments per file
	Objs       int           // objects per segment
	Blob       int           // payload bytes per object
}

// Close shuts the listener, server, and backing directory down, joining the
// accept loop so no goroutine outlives the environment.
func (e *E18Env) Close() {
	e.lis.Close()
	<-e.acceptDone
	must(e.srv.Close())
	os.RemoveAll(e.dir)
}

// NetDelay models the network between client and server. The paper's
// client/server measurements ran across a real LAN; loopback TCP on one
// host has neither propagation delay nor store-and-forward cost, so — like
// E9's DiskDelay — the bench injects it explicitly: every socket operation
// on the client's connection sleeps this long. Request/reply turnarounds
// pay it per round trip; bulk data pays it per buffer-sized read. The
// loopback rows record the undelayed floor next to the emulated-LAN rows.
const NetDelay = 250 * time.Microsecond

// dialConn opens the client-side net.Conn, wrapped in the emulated network
// when lan is set.
func (e *E18Env) dialConn(lan bool) *rpc.Peer {
	c, err := net.Dial("tcp", e.lis.Addr())
	must(err)
	if lan {
		return rpc.NewPeer(fault.WrapConn(c, fault.ConnPlan{ReadDelay: NetDelay, WriteDelay: NetDelay}))
	}
	return rpc.NewPeer(c)
}

// dial opens a fresh session over its own TCP connection and returns the
// remote for RPC accounting. A new session has an empty segment cache, so
// its first scan is cold by construction.
func (e *E18Env) dial(name string, lan bool) (*client.Session, *client.Remote) {
	r := client.NewRemote(e.dialConn(lan))
	s, err := client.Open(r, name, "e18", false)
	must(err)
	_, err = s.RegisterType(e18BlobType)
	must(err)
	return s, r
}

// SetupE18 opens a file-backed server, serves it on loopback TCP, and
// populates files of blob segments sized ~(1+objs*(blob+16)/4096) pages.
func SetupE18(files, segsPerFile, objsPerSeg, blobLen int) *E18Env {
	dir, err := os.MkdirTemp("", "bess-e18-")
	must(err)
	srv, err := server.Open(dir, 1)
	must(err)
	lis, err := rpc.Listen("127.0.0.1:0")
	must(err)
	acceptDone := make(chan struct{})
	goleak.Go("bench.e18Accept", func() {
		defer close(acceptDone)
		for {
			p, err := lis.Accept()
			if err != nil {
				return
			}
			server.ServePeer(srv, p)
		}
	})

	env := &E18Env{dir: dir, srv: srv, lis: lis, acceptDone: acceptDone, Segs: segsPerFile, Objs: objsPerSeg, Blob: blobLen}
	p, err := rpc.Dial(lis.Addr())
	must(err)
	s, err := client.Open(client.NewRemote(p), "e18-setup", "e18", true)
	must(err)
	env.db = s.DB()
	td, err := s.RegisterType(e18BlobType)
	must(err)
	payload := make([]byte, blobLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	dataPages := (objsPerSeg*(blobLen+16))/4096 + 2
	for f := 0; f < files; f++ {
		fileID := uint32(f + 1)
		env.Files = append(env.Files, fileID)
		for g := 0; g < segsPerFile; g++ {
			seg, err := s.CreateSegment(fileID, 1, dataPages, -1)
			must(err)
			must(s.Begin())
			for o := 0; o < objsPerSeg; o++ {
				_, err := s.CreateObject(seg, td.ID, payload)
				must(err)
			}
			must(s.Commit())
		}
	}
	// Settle: flush the dirty pages populate left behind, so the measured
	// scans read clean pages instead of paying eviction write-back.
	must(srv.Checkpoint())
	return env
}

// E18Scan is one cold full-file scan measurement.
type E18Scan struct {
	Mode     string         `json:"mode"` // "pull" or "stream"
	Net      string         `json:"net"`  // "loopback" or "lan" (NetDelay emulated)
	Segments int            `json:"segments"`
	Objects  int            `json:"objects"`
	Bytes    int64          `json:"bytes"` // payload bytes visited
	Seconds  float64        `json:"seconds"`
	MBPerSec float64        `json:"mb_per_sec"`
	RPCCalls int64          `json:"rpc_calls"`
	Batches  int            `json:"batches,omitempty"` // stream only
	Service  LatencySummary `json:"service"`           // per segment (pull) / per batch (stream)
}

// warmServer touches every segment of fileID through the server's own
// fetch path (no wire, no client cache), so timed scans measure the scan
// protocol rather than the backing filesystem.
func (e *E18Env) warmServer(fileID uint32) {
	keys, err := e.srv.SegmentsOf(e.db, fileID)
	must(err)
	for _, k := range keys {
		_, _, _, err := e.srv.FetchSeg(0, k)
		must(err)
	}
}

// RunE18Scan scans fileID with a warm server and a cold client cache. Pull
// mode walks the cursor segment by segment (timing each segment's
// fetch+visit); stream mode uses the push pipeline (timing batch
// inter-arrivals). With lan, the connection pays NetDelay per socket
// operation. Two cold passes run back to back and the faster one is
// reported, shielding the row from background I/O spikes.
func RunE18Scan(env *E18Env, mode string, fileID uint32, lan bool) E18Scan {
	s, r := env.dial(fmt.Sprintf("e18-%s-%d", mode, fileID), lan)
	defer r.Close()
	env.warmServer(fileID)
	best := runE18ScanOnce(env, s, r, mode, fileID, lan)
	s.DropAllCached()
	if again := runE18ScanOnce(env, s, r, mode, fileID, lan); again.MBPerSec > best.MBPerSec {
		best = again
	}
	return best
}

func runE18ScanOnce(env *E18Env, s *client.Session, r *client.Remote, mode string, fileID uint32, lan bool) E18Scan {
	must(s.Begin())

	var (
		objects int
		bytes   int64
		service Hist
		batches int
	)
	visit := func(_ vmem.Addr, obj *swizzle.Object) error {
		b, err := obj.Bytes()
		if err != nil {
			return err
		}
		objects++
		bytes += int64(len(b))
		return nil
	}

	before := r.Calls()
	var elapsed time.Duration
	var segs int
	switch mode {
	case "pull":
		keys, err := s.Conn().SegmentsOf(s.DB(), fileID)
		must(err)
		segs = len(keys)
		start := time.Now()
		for _, k := range keys {
			t0 := time.Now()
			must(s.ScanSegment(k, visit))
			service.Observe(time.Since(t0))
		}
		elapsed = time.Since(start)
	case "stream":
		var last time.Time
		s.SetScanBatchHook(func(images, bytes int) {
			now := time.Now()
			service.Observe(now.Sub(last))
			last = now
			batches++
		})
		segs = env.Segs
		start := time.Now()
		last = start
		must(s.StreamScan(fileID, visit))
		elapsed = time.Since(start)
	default:
		panic("e18: unknown mode " + mode)
	}
	must(s.Commit())

	netw := "loopback"
	if lan {
		netw = "lan"
	}
	return E18Scan{
		Mode:     mode,
		Net:      netw,
		Segments: segs,
		Objects:  objects,
		Bytes:    bytes,
		Seconds:  elapsed.Seconds(),
		MBPerSec: float64(bytes) / (1 << 20) / elapsed.Seconds(),
		RPCCalls: r.Calls() - before,
		Batches:  batches,
		Service:  service.Summary(),
	}
}

// E18Parallel is the multi-file row: one push pipeline per file, all
// streaming concurrently over their own connections (§10).
type E18Parallel struct {
	Files    int     `json:"files"`
	Bytes    int64   `json:"bytes"`
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
}

// RunE18Parallel streams every populated file at once via StreamScanFiles.
func RunE18Parallel(env *E18Env, lan bool) E18Parallel {
	for _, f := range env.Files {
		env.warmServer(f)
	}
	var bytes atomic.Int64
	start := time.Now()
	err := core.StreamScanFiles(func(i int) (proto.Conn, error) {
		return client.NewRemote(env.dialConn(lan)), nil
	}, "e18", env.Files, func(_ uint32, _ segment.TypeID, data []byte) error {
		bytes.Add(int64(len(data)))
		return nil
	})
	must(err)
	elapsed := time.Since(start)
	return E18Parallel{
		Files:    len(env.Files),
		Bytes:    bytes.Load(),
		Seconds:  elapsed.Seconds(),
		MBPerSec: float64(bytes.Load()) / (1 << 20) / elapsed.Seconds(),
	}
}

// E18Mixed is a scan measured while an updater commits against another file.
type E18Mixed struct {
	Scan          E18Scan        `json:"scan"`
	UpdateCommits int            `json:"update_commits"`
	UpdatesPerSec float64        `json:"updates_per_sec"`
	UpdateLatency LatencySummary `json:"update_latency"`
}

// RunE18Mixed scans scanFile in the given mode while a second session runs
// create/delete update transactions against updFile until the scan ends.
// Only the scanning connection pays the emulated network; the updater
// models a co-located writer.
func RunE18Mixed(env *E18Env, mode string, scanFile, updFile uint32, lan bool) E18Mixed {
	env.warmServer(updFile)
	u, ur := env.dial(fmt.Sprintf("e18-upd-%d", updFile), false)
	defer ur.Close()
	segs, err := u.Conn().SegmentsOf(u.DB(), updFile)
	must(err)
	td, err := u.RegisterType(e18BlobType)
	must(err)

	stop := make(chan struct{})
	var lat Hist
	var commits int
	var wg sync.WaitGroup
	wg.Add(1)
	goleak.Go("bench.e18Updater", func() {
		defer wg.Done()
		payload := make([]byte, 128)
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			must(u.Begin())
			addr, err := u.CreateObject(segs[commits%len(segs)], td.ID, payload)
			must(err)
			must(u.Commit())
			lat.Observe(time.Since(t0))
			t0 = time.Now()
			must(u.Begin())
			must(u.DeleteObject(addr))
			must(u.Commit())
			lat.Observe(time.Since(t0))
			commits += 2
		}
	})
	// Join on every exit path: a scan that panics mid-run must not strand
	// the updater against a server the deferred Closes are tearing down.
	var stopOnce sync.Once
	join := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	defer join()

	scan := RunE18Scan(env, mode, scanFile, lan)
	join()
	return E18Mixed{
		Scan:          scan,
		UpdateCommits: commits,
		UpdatesPerSec: float64(commits) / scan.Seconds,
		UpdateLatency: lat.Summary(),
	}
}

// E18Report is the full experiment output (BENCH_E18.json). The headline
// Speedup compares the emulated-LAN rows — the configuration the streaming
// pipeline exists for; the loopback rows record the zero-latency floor.
type E18Report struct {
	SegmentBytes    int         `json:"segment_bytes"` // ~bytes per segment image
	NetDelayUs      float64     `json:"net_delay_us"`  // emulated per-op network delay
	PullLoopback    E18Scan     `json:"pull_loopback"`
	StreamLoopback  E18Scan     `json:"stream_loopback"`
	SpeedupLoopback float64     `json:"speedup_loopback"`
	Pull            E18Scan     `json:"pull"`    // emulated LAN
	Stream          E18Scan     `json:"stream"`  // emulated LAN
	Speedup         float64     `json:"speedup"` // stream MB/s over pull MB/s (LAN)
	Parallel        E18Parallel `json:"parallel"`
	MixedPull       E18Mixed    `json:"mixed_pull"`
	MixedStream     E18Mixed    `json:"mixed_stream"`
}

// RunE18 runs the whole experiment against one populated environment. The
// cold rows scan Files[0]; the mixed rows scan Files[0] while updating the
// last file.
func RunE18(env *E18Env) E18Report {
	rep := E18Report{
		SegmentBytes: ((env.Objs*(env.Blob+16))/4096 + 3) * 4096,
		NetDelayUs:   float64(NetDelay) / 1e3,
	}
	rep.PullLoopback = RunE18Scan(env, "pull", env.Files[0], false)
	rep.StreamLoopback = RunE18Scan(env, "stream", env.Files[0], false)
	rep.SpeedupLoopback = rep.StreamLoopback.MBPerSec / rep.PullLoopback.MBPerSec
	rep.Pull = RunE18Scan(env, "pull", env.Files[0], true)
	rep.Stream = RunE18Scan(env, "stream", env.Files[0], true)
	rep.Speedup = rep.Stream.MBPerSec / rep.Pull.MBPerSec
	rep.Parallel = RunE18Parallel(env, true)
	upd := env.Files[len(env.Files)-1]
	rep.MixedPull = RunE18Mixed(env, "pull", env.Files[0], upd, true)
	rep.MixedStream = RunE18Mixed(env, "stream", env.Files[0], upd, true)
	return rep
}

// FormatE18Scan renders one scan row.
func FormatE18Scan(r E18Scan) string {
	extra := ""
	if r.Mode == "stream" {
		extra = fmt.Sprintf(" batches=%d", r.Batches)
	}
	return fmt.Sprintf("%-7s %-9s segs=%-4d %8.1f MB/s  rpcs=%-5d %s%s",
		r.Mode, r.Net, r.Segments, r.MBPerSec, r.RPCCalls, FormatLatency(r.Service), extra)
}
