package bench

import (
	"sort"
	"testing"
)

// TestZipfShape pins the skew of the zipfian key stream: the hot keys must
// absorb a large share of the traffic (that is the point of the
// distribution), but no single key may be the whole workload.
func TestZipfShape(t *testing.T) {
	w := Workload{Keys: 1000, Dist: "zipf", Seed: 1}
	counts := w.Stream(0).KeyCounts(100000)

	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))

	top10 := 0
	for _, c := range sorted[:10] {
		top10 += c
	}
	// With s=1.1 over 1k keys, the top 10 keys carry roughly half the
	// traffic. Pin a generous band so the test survives rand reseeding
	// while still failing if the distribution degenerates to uniform
	// (top-10 share would be ~1%) or to a constant (share ~100%).
	if share := float64(top10) / 100000; share < 0.25 || share > 0.95 {
		t.Fatalf("zipf top-10 share = %.3f, want within [0.25, 0.95]", share)
	}
	// The head must dominate the median key.
	if sorted[0] < 50*sorted[len(sorted)/2] && sorted[len(sorted)/2] > 0 {
		t.Fatalf("zipf head %d not dominant over median %d", sorted[0], sorted[len(sorted)/2])
	}
}

// TestUniformShape pins the flatness of the uniform stream.
func TestUniformShape(t *testing.T) {
	w := Workload{Keys: 100, Dist: "uniform", Seed: 2}
	counts := w.Stream(0).KeyCounts(100000)
	for k, c := range counts {
		// Expected 1000 per key; 5 sigma is ~±160.
		if c < 700 || c > 1300 {
			t.Fatalf("uniform key %d drawn %d times, want ~1000", k, c)
		}
	}
}

// TestStreamDeterminism pins reproducibility: same workload and worker give
// the same sequence; different workers diverge.
func TestStreamDeterminism(t *testing.T) {
	w := Workload{Keys: 64, ReadFrac: 0.5, Dist: "zipf", Seed: 7}
	a, b, c := w.Stream(3), w.Stream(3), w.Stream(4)
	same, diff := true, false
	for i := 0; i < 256; i++ {
		ak, ar := a.Next()
		bk, br := b.Next()
		ck, _ := c.Next()
		if ak != bk || ar != br {
			same = false
		}
		if ak != ck {
			diff = true
		}
	}
	if !same {
		t.Fatal("same worker index produced different streams")
	}
	if !diff {
		t.Fatal("different worker indexes produced identical key streams")
	}
}

// TestReadFraction pins the op mix: the read share of a long stream tracks
// ReadFrac.
func TestReadFraction(t *testing.T) {
	for _, frac := range []float64{0.5, 0.95, 0.99} {
		w := Workload{Keys: 10, ReadFrac: frac, Seed: 11}
		st := w.Stream(0)
		reads := 0
		for i := 0; i < 100000; i++ {
			if _, r := st.Next(); r {
				reads++
			}
		}
		got := float64(reads) / 100000
		if got < frac-0.01 || got > frac+0.01 {
			t.Fatalf("ReadFrac %.2f: observed %.3f", frac, got)
		}
	}
}
