package bench

import "testing"

// TestE18Smoke runs a miniature E18 end to end — tiny segments, both scan
// modes, the parallel row, and one mixed round. It asserts structure, not
// speed (the committed BENCH_E18.json records the full-size margins), and
// is cheap enough to run under -short as the CI smoke.
func TestE18Smoke(t *testing.T) {
	env := SetupE18(2, 4, 10, 2048)
	defer env.Close()
	wantObjs := env.Segs * env.Objs
	wantBytes := int64(wantObjs * env.Blob)

	pull := RunE18Scan(env, "pull", env.Files[0], false)
	stream := RunE18Scan(env, "stream", env.Files[0], false)
	t.Logf("pull:   %s", FormatE18Scan(pull))
	t.Logf("stream: %s", FormatE18Scan(stream))
	for _, r := range []E18Scan{pull, stream} {
		if r.Objects != wantObjs || r.Bytes != wantBytes {
			t.Fatalf("%s scan visited %d objects / %d bytes, want %d / %d",
				r.Mode, r.Objects, r.Bytes, wantObjs, wantBytes)
		}
		if r.Segments != env.Segs {
			t.Fatalf("%s scan saw %d segments, want %d", r.Mode, r.Segments, env.Segs)
		}
	}
	// The pull cursor pays per-segment round trips; the stream pays one
	// ScanStart plus pushed data. Cold pull needs at least 2 calls per
	// segment (SegInfo + FetchSeg); streaming must stay well under that.
	if pull.RPCCalls < int64(2*env.Segs) {
		t.Fatalf("pull used %d calls, expected >= %d", pull.RPCCalls, 2*env.Segs)
	}
	if stream.RPCCalls >= int64(env.Segs) {
		t.Fatalf("stream used %d calls for %d segments — push path not engaged", stream.RPCCalls, env.Segs)
	}
	if stream.Batches <= 0 {
		t.Fatal("stream reported no batches")
	}

	par := RunE18Parallel(env, false)
	if par.Bytes != wantBytes*int64(len(env.Files)) {
		t.Fatalf("parallel scan covered %d bytes, want %d", par.Bytes, wantBytes*int64(len(env.Files)))
	}

	mixed := RunE18Mixed(env, "stream", env.Files[0], env.Files[1], false)
	if mixed.Scan.Objects != wantObjs {
		t.Fatalf("mixed scan visited %d objects, want %d", mixed.Scan.Objects, wantObjs)
	}
	if mixed.UpdateCommits <= 0 {
		t.Fatal("updater made no commits during the mixed scan")
	}
	if mixed.UpdateLatency.Count == 0 {
		t.Fatal("mixed update latency histogram is empty")
	}
}
