package bench

import "testing"

// TestE13CrashTorture enumerates every crash point of the E13 workload in
// all three tear modes and requires 100% consistent recovery. Under -short
// a bounded evenly-spaced sample runs instead (the CI crash-torture job).
func TestE13CrashTorture(t *testing.T) {
	sample := 0
	if testing.Short() {
		sample = 12
	}
	rep, err := RunE13(42, sample)
	if err != nil {
		t.Fatalf("E13: %v", err)
	}
	if rep.CrashPoints == 0 {
		t.Fatal("E13 enumerated no crash points")
	}
	if rep.Inconsistent != 0 {
		t.Fatalf("E13: %d/%d trials inconsistent; first failures: %v",
			rep.Inconsistent, rep.Trials, rep.Failures)
	}
	if rep.WorkloadAcked == 0 {
		t.Fatal("E13 baseline run acknowledged no commits")
	}
	t.Logf("E13: %d crash points x %d modes, %d consistent, mean recover %.1fus",
		rep.CrashPoints, len(rep.Modes), rep.Consistent, rep.MeanRecoverUs)
}

// TestE13SeedStability: two runs with the same seed must agree exactly —
// the property that makes a failing crash point replayable.
func TestE13SeedStability(t *testing.T) {
	a, err := RunE13(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE13(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEvents != b.TotalEvents || a.Trials != b.Trials ||
		a.Consistent != b.Consistent || a.Inconsistent != b.Inconsistent {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
