package bench

import (
	"testing"
	"time"
)

// TestE16Smoke runs a miniature E16: one writer-sweep row per mode plus one
// mixed row per mode, on a tiny dataset and short windows. It asserts the
// structural properties the experiment's headline rests on — snapshot reads
// acquire zero locks and refuse no callbacks, the 2PL baseline measurably
// hits the lock manager, and both op classes make progress — not absolute
// throughput (BENCH_E16.json records the full-size margins). Race-clean and
// -short friendly: it is the race/goleak CI smoke for the snapshot stack.
func TestE16Smoke(t *testing.T) {
	env := SetupE16(8, 4, 128)
	defer env.Close()

	dur := 200 * time.Millisecond
	if testing.Short() {
		dur = 80 * time.Millisecond
	}
	for _, mode := range []string{"base", "snap"} {
		readers := runE16(env, mode, "zipf", e16Split(2, 2), dur, 1)
		t.Logf("%s", FormatE16Row(readers))
		if readers.ReadOps == 0 || readers.WriteOps == 0 {
			t.Fatalf("%s: no progress (reads=%d writes=%d)", mode, readers.ReadOps, readers.WriteOps)
		}
		if readers.ReadLat.Count == 0 || readers.WriteLat.Count == 0 {
			t.Fatalf("%s: empty latency histograms", mode)
		}
		switch mode {
		case "snap":
			// Snapshot readers never refuse a revocation callback: writers
			// are never made to wait on them. (Writer sessions still refuse
			// each other's callbacks mid-transaction — that is write-write
			// contention, identical in both modes — so only the pure-reader
			// sessions are held to zero.)
			if readers.ReaderRefusals != 0 {
				t.Fatalf("snapshot readers refused %d callbacks, want 0", readers.ReaderRefusals)
			}
			if readers.SnapFetches == 0 {
				t.Fatal("snap mode never hit SnapFetchSeg")
			}
		case "base":
			if readers.LockAcquires == 0 {
				t.Fatal("2PL baseline acquired no locks — the comparison is vacuous")
			}
		}
	}

	// A pure-reader snapshot row makes no lock-manager traffic at all.
	quiet := runE16(env, "snap", "zipf", e16Split(2, 0), dur, 2)
	if quiet.LockAcquires != 0 {
		t.Fatalf("reader-only snapshot row acquired %d locks, want 0", quiet.LockAcquires)
	}
	if quiet.ReadOps == 0 {
		t.Fatal("reader-only snapshot row made no reads")
	}
}
