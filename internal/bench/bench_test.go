package bench

import "testing"

// These tests pin the *shapes* the experiments must produce — the
// qualitative claims of the paper — independent of machine speed.

func TestE1ShapesHold(t *testing.T) {
	env := SetupE1(128)
	defer env.Close()
	// All three chase paths terminate and agree on ring membership.
	env.ChaseBeSS(200)
	env.ChaseOID(200)
	env.ChaseGlobal(50)
}

func TestE2BothModesWork(t *testing.T) {
	env := SetupE2(16)
	defer env.Close()
	env.ShortTxShared(8)
	env.ShortTxCopy(8)
}

func TestE3LazyBeatsEager(t *testing.T) {
	r := RunE3(40, 0.25)
	if r.LazyReserved >= r.EagerReserved {
		t.Fatalf("lazy %d >= eager %d at 25%% traversal", r.LazyReserved, r.EagerReserved)
	}
	full := RunE3(40, 1.0)
	if full.LazyReserved != full.EagerReserved {
		t.Fatalf("full traversal should converge: %d vs %d", full.LazyReserved, full.EagerReserved)
	}
	// Laziness is monotone in the traversed fraction.
	if r.LazyReserved <= RunE3(40, 0.05).LazyReserved {
		t.Fatal("reservation not monotone in touched fraction")
	}
}

func TestE4ClockTracksLRU(t *testing.T) {
	r := RunE4(128, 64, 4, 5000, 1)
	if r.ClockHitRatio <= 0.2 {
		t.Fatalf("clock hit ratio %.2f implausibly low", r.ClockHitRatio)
	}
	if r.ClockHitRatio > r.LRUHitRatio+0.05 {
		t.Fatalf("clock %.2f beats the LRU oracle %.2f", r.ClockHitRatio, r.LRUHitRatio)
	}
	// Bigger cache, better ratio.
	big := RunE4(128, 96, 4, 5000, 1)
	if big.ClockHitRatio < r.ClockHitRatio {
		t.Fatalf("hit ratio fell with a bigger cache: %.2f -> %.2f", r.ClockHitRatio, big.ClockHitRatio)
	}
}

func TestE5TreeBeatsRewrite(t *testing.T) {
	small := RunE5(1<<20, 4096)
	big := RunE5(4<<20, 4096)
	if small.TreeWrites >= small.RewriteIOs {
		t.Fatalf("tree writes %d >= rewrite %d", small.TreeWrites, small.RewriteIOs)
	}
	// The gap grows with object size while tree cost stays flat.
	if big.TreeWrites > small.TreeWrites+2 {
		t.Fatalf("tree edit cost scaled with object size: %d vs %d", big.TreeWrites, small.TreeWrites)
	}
	if big.RewriteIOs <= small.RewriteIOs {
		t.Fatal("rewrite cost did not scale with object size")
	}
}

func TestE6CachingSavesMessages(t *testing.T) {
	r := RunE6(8, 6)
	if r.MsgsPerTxCached >= r.MsgsPerTxNoCache {
		t.Fatalf("caching did not reduce messages: %.1f vs %.1f",
			r.MsgsPerTxCached, r.MsgsPerTxNoCache)
	}
}

func TestE7HardwareBeatsConservativeSoftware(t *testing.T) {
	r := RunE7(64, 8)
	if r.HWProtectCalls >= r.SWLockRequests {
		t.Fatalf("hw protects %d >= sw lock requests %d", r.HWProtectCalls, r.SWLockRequests)
	}
	if r.HWFaults == 0 {
		t.Fatal("no faults recorded — detection not exercised")
	}
}

func TestE8CheckpointCutsRedo(t *testing.T) {
	no := RunE8(40, 8, false)
	yes := RunE8(40, 8, true)
	if yes.RedoApplied >= no.RedoApplied {
		t.Fatalf("checkpoint did not reduce redo: %d vs %d", yes.RedoApplied, no.RedoApplied)
	}
	if no.Losers != yes.Losers {
		t.Fatalf("losers differ: %d vs %d", no.Losers, yes.Losers)
	}
}

func TestE9ScanComplete(t *testing.T) {
	env := SetupE9(200, 3)
	defer env.Close()
	for _, w := range []int{1, 4} {
		if n := env.Scan(w); n != env.N {
			t.Fatalf("workers=%d saw %d of %d", w, n, env.N)
		}
	}
}

func TestE10HighUtilization(t *testing.T) {
	r := RunE10(5000, 14, 3)
	if r.Utilization < 0.5 {
		t.Fatalf("utilization %.2f", r.Utilization)
	}
}

func TestFormatE3(t *testing.T) {
	if FormatE3(RunE3(10, 0.5)) == "" {
		t.Fatal("empty format")
	}
}
