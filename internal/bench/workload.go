package bench

import (
	"fmt"
	"math/rand"
)

// Workload driver (E16): a keyed read/write operation stream over a fixed
// dataset. Keys are drawn uniformly or zipfian-skewed (the classic hot-set
// shape: a few segments absorb most of the traffic, which is exactly where
// callback revocation and lock contention hurt). Each worker derives its own
// deterministic stream from the workload seed and its worker index, so runs
// are reproducible and workers never share a generator.

// Workload describes an operation mix over Keys objects.
type Workload struct {
	Keys     int     // dataset size (object count)
	ReadFrac float64 // fraction of operations that are reads (0..1)
	Dist     string  // "uniform" or "zipf"
	ZipfS    float64 // zipf skew parameter s > 1 (0 = DefaultZipfS)
	Seed     int64   // base seed; worker i uses Seed+i
}

// DefaultZipfS is the skew used when ZipfS is unset: a moderately hot
// distribution (~37% of traffic on the top 1% of 1k keys).
const DefaultZipfS = 1.1

// OpStream is one worker's deterministic operation sequence.
type OpStream struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	keys int
	read float64
}

// Stream returns worker's operation stream. Distinct workers get distinct,
// reproducible streams.
func (w Workload) Stream(worker int) *OpStream {
	rng := rand.New(rand.NewSource(w.Seed + int64(worker)))
	st := &OpStream{rng: rng, keys: w.Keys, read: w.ReadFrac}
	switch w.Dist {
	case "zipf":
		s := w.ZipfS
		if s <= 1 {
			s = DefaultZipfS
		}
		st.zipf = rand.NewZipf(rng, s, 1, uint64(w.Keys-1))
	case "", "uniform":
		// rng alone serves
	default:
		panic(fmt.Sprintf("bench: unknown distribution %q", w.Dist))
	}
	return st
}

// Next draws one operation: the key it touches and whether it is a read.
func (o *OpStream) Next() (key int, read bool) {
	if o.zipf != nil {
		key = int(o.zipf.Uint64())
	} else {
		key = o.rng.Intn(o.keys)
	}
	return key, o.rng.Float64() < o.read
}

// KeyCounts draws n keys and tallies them — the shape histogram the unit
// tests pin.
func (o *OpStream) KeyCounts(n int) []int {
	counts := make([]int, o.keys)
	for i := 0; i < n; i++ {
		k, _ := o.Next()
		counts[k]++
	}
	return counts
}
