package bench

import "testing"

// TestE12Shape holds the wire-protocol comparison to its shape with CI-safe
// slack: the binary framed path must not regress below the gob baseline
// (the committed BENCH_E12.json records the full-size margins), and the
// coalescing machinery must actually engage under concurrency.
func TestE12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("wire benchmark")
	}
	const conc, per = 8, 150
	gob := RunE12("gob", conc, per)
	bin := RunE12("binary", conc, per)
	t.Logf("small calls: %s", FormatE12(gob))
	t.Logf("small calls: %s", FormatE12(bin))
	// Anti-regression with slack for noisy CI machines; the real claim
	// (binary > gob) is asserted by the recorded experiment run.
	if bin.SmallCallsPerSec < 0.8*gob.SmallCallsPerSec {
		t.Fatalf("binary small-call throughput %.0f/s fell below 80%% of gob %.0f/s",
			bin.SmallCallsPerSec, gob.SmallCallsPerSec)
	}
	// Structural: every call put exactly one frame on the wire. Whether TCP
	// flushes batch here depends on the host (a single-CPU machine never
	// overlaps a non-blocking loopback write with another sender), so the
	// deterministic coalescing assertion lives in internal/rpc's
	// TestConcurrentRawCalls over net.Pipe; the counters are logged above.
	if bin.WireFlushes <= 0 || bin.WireFlushes > int64(bin.Calls) {
		t.Fatalf("flushes=%d over %d calls", bin.WireFlushes, bin.Calls)
	}

	gf := RunE12Fetch("gob", 20, 256<<10)
	bf := RunE12Fetch("binary", 20, 256<<10)
	t.Logf("fetch: %s", FormatE12Fetch(gf))
	t.Logf("fetch: %s", FormatE12Fetch(bf))
	if bf.MBPerSec < 0.8*gf.MBPerSec {
		t.Fatalf("binary fetch bandwidth %.1f MB/s fell below 80%% of gob %.1f MB/s",
			bf.MBPerSec, gf.MBPerSec)
	}
}
