package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bess/internal/client"
	"bess/internal/goleak"
	"bess/internal/proto"
)

// --- E16: multiversion snapshot reads — read-only transactions that never
// block on writers (§7) ---
//
// Readers and writers share one dataset of blob objects. In base mode a
// read transaction is strict 2PL: it takes an object S lock (under the
// segment IS intention lock), so it conflicts with writer X locks both
// ways — readers queue behind in-flight writers and writers queue behind
// in-flight readers. In snap mode the read runs as a snapshot transaction:
// a pinned version stamp, zero lock-manager traffic, reads served from the
// cached copy, the version chain, or a WAL reconstruction. The experiment
// sweeps writer count at a fixed reader population and the read/write mix
// at a fixed worker count, on uniform and zipfian (hot-set) key streams,
// and reports throughput and latency per operation class plus the server's
// lock and version counters.

// E16 dataset defaults: 64 segments x 16 objects = 1024 keys.
const (
	e16Segs = 64
	e16Objs = 16
	e16Blob = 256
)

// SetupE16 builds the E16 dataset: one file of segs segments, objs objects
// each, on a loopback-TCP server (the E18 harness). The lock timeout is cut
// short: under hot-set contention a 2PL reader's S lock can only be granted
// after the writer's revocation clears, and the writer's revocation only
// clears when the reader's transaction ends — a cycle the lock manager
// breaks by timeout. The default multi-second timeout would turn the
// baseline into a stall benchmark; a short one lets it degrade into the
// abort-and-retry behavior the sweep is meant to measure.
func SetupE16(segs, objs, blob int) *E18Env {
	env := SetupE18(1, segs, objs, blob)
	env.srv.SetLockTimeout(150 * time.Millisecond)
	return env
}

// E16Row is one measured configuration.
type E16Row struct {
	Mode     string  `json:"mode"`                // "base" (2PL reads) or "snap" (snapshot reads)
	Dist     string  `json:"dist"`                // key distribution
	Readers  int     `json:"readers,omitempty"`   // pure-reader workers (writer sweep)
	Writers  int     `json:"writers,omitempty"`   // pure-writer workers (writer sweep)
	Workers  int     `json:"workers,omitempty"`   // mixed workers (mix sweep)
	ReadFrac float64 `json:"read_frac,omitempty"` // per-worker read share (mix sweep)
	Seconds  float64 `json:"seconds"`

	ReadOps     int64          `json:"read_ops"`
	ReadPerSec  float64        `json:"reads_per_sec"`
	ReadLat     LatencySummary `json:"read_latency"`
	WriteOps    int64          `json:"write_ops"`
	WritePerSec float64        `json:"writes_per_sec"`
	WriteLat    LatencySummary `json:"write_latency"`
	Aborts      int64          `json:"aborts"`

	LockAcquires   int64 `json:"lock_acquires"` // server lock-manager delta
	LockBlocks     int64 `json:"lock_blocks"`
	Refusals       int64 `json:"refusals"`        // callbacks refused, all sessions
	ReaderRefusals int64 `json:"reader_refusals"` // refused by pure-reader sessions only
	Drops          int64 `json:"drops"`           // cached copies revoked
	SnapFetches    int64 `json:"snap_fetches,omitempty"`
	ChainHits      int64 `json:"chain_hits,omitempty"`
	WALRebuilds    int64 `json:"wal_rebuilds,omitempty"`
}

// e16ReadOp is one read transaction over (seg, slot). Base mode pins the
// object with an S lock — the strict-2PL read; snap mode opens a snapshot
// and touches no locks at all.
func e16ReadOp(s *client.Session, seg proto.SegKey, slot int, snap bool) error {
	var err error
	if snap {
		err = s.BeginSnapshot()
	} else {
		err = s.Begin()
	}
	if err != nil {
		return err
	}
	ok := false
	defer func() {
		if !ok {
			_ = s.Abort()
		}
	}()
	addr, err := s.AddrOfSlot(seg, slot)
	if err != nil {
		return err
	}
	if !snap {
		if err := s.LockObject(addr, false); err != nil {
			return err
		}
	}
	obj, err := s.Deref(addr)
	if err != nil {
		return err
	}
	if _, err := obj.Bytes(); err != nil {
		return err
	}
	ok = true
	if snap {
		return s.EndSnapshot()
	}
	return s.Commit()
}

// e16WriteOp is one update transaction: overwrite the head of (seg, slot),
// which faults, takes the segment X lock, and ships the image at commit.
func e16WriteOp(s *client.Session, seg proto.SegKey, slot int, payload []byte) error {
	if err := s.Begin(); err != nil {
		return err
	}
	ok := false
	defer func() {
		if !ok {
			_ = s.Abort()
		}
	}()
	addr, err := s.AddrOfSlot(seg, slot)
	if err != nil {
		return err
	}
	obj, err := s.Deref(addr)
	if err != nil {
		return err
	}
	if err := obj.Write(0, payload); err != nil {
		return err
	}
	ok = true
	return s.Commit()
}

// runE16 drives one configuration: one worker per entry of fracs (its read
// share; 1 = pure reader, 0 = pure writer), each on its own session and
// deterministic key stream, for dur. Lock-wait and callback effects are
// measured from the server's own counters.
func runE16(env *E18Env, mode, dist string, fracs []float64, dur time.Duration, seed int64) E16Row {
	snap := mode == "snap"
	keys, err := env.srv.SegmentsOf(env.db, env.Files[0])
	must(err)
	nKeys := len(keys) * env.Objs

	lockBefore := env.srv.LockStats()
	vsBefore := env.srv.VersionStats()
	snapBefore := env.srv.Snapshot().SnapFetches

	var (
		readLat, writeLat         Hist
		readOps, writeOps, aborts atomic.Int64
		stop                      = make(chan struct{})
		wg                        sync.WaitGroup
	)
	sessions := make([]*client.Session, len(fracs))
	remotes := make([]*client.Remote, len(fracs))
	for i := range fracs {
		sessions[i], remotes[i] = env.dial(fmt.Sprintf("e16-%s-%d", mode, i), false)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	for i, frac := range fracs {
		i, frac := i, frac
		s := sessions[i]
		st := Workload{Keys: nKeys, ReadFrac: frac, Dist: dist, Seed: seed}.Stream(i)
		wg.Add(1)
		goleak.Go("bench.e16Worker", func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				key, read := st.Next()
				seg, slot := keys[key/env.Objs], key%env.Objs
				t0 := time.Now()
				if read {
					if err := e16ReadOp(s, seg, slot, snap); err != nil {
						aborts.Add(1)
						continue
					}
					readLat.Observe(time.Since(t0))
					readOps.Add(1)
				} else {
					if err := e16WriteOp(s, seg, slot, payload); err != nil {
						aborts.Add(1)
						continue
					}
					writeLat.Observe(time.Since(t0))
					writeOps.Add(1)
				}
			}
		})
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	row := E16Row{
		Mode:    mode,
		Dist:    dist,
		Seconds: elapsed.Seconds(),
	}
	for _, f := range fracs {
		switch f {
		case 1:
			row.Readers++
		case 0:
			row.Writers++
		default:
			row.Workers++
			row.ReadFrac = f
		}
	}
	for i := range sessions {
		st := sessions[i].Snapshot()
		row.Refusals += st.Refusals
		if fracs[i] == 1 {
			// Pure readers: in snap mode these must never refuse — a
			// snapshot accepts every callback without blocking the writer.
			row.ReaderRefusals += st.Refusals
		}
		row.Drops += st.Drops
		must(remotes[i].Close())
	}
	lockAfter := env.srv.LockStats()
	vsAfter := env.srv.VersionStats()
	row.ReadOps = readOps.Load()
	row.ReadPerSec = float64(row.ReadOps) / elapsed.Seconds()
	row.ReadLat = readLat.Summary()
	row.WriteOps = writeOps.Load()
	row.WritePerSec = float64(row.WriteOps) / elapsed.Seconds()
	row.WriteLat = writeLat.Summary()
	row.Aborts = aborts.Load()
	row.LockAcquires = lockAfter.Acquires - lockBefore.Acquires
	row.LockBlocks = lockAfter.Blocks - lockBefore.Blocks
	row.SnapFetches = env.srv.Snapshot().SnapFetches - snapBefore
	row.ChainHits = vsAfter.ChainHits - vsBefore.ChainHits
	row.WALRebuilds = vsAfter.Trimmed - vsBefore.Trimmed
	return row
}

// split builds the writer-sweep worker population: r pure readers plus w
// pure writers.
func e16Split(r, w int) []float64 {
	fr := make([]float64, 0, r+w)
	for i := 0; i < r; i++ {
		fr = append(fr, 1)
	}
	for i := 0; i < w; i++ {
		fr = append(fr, 0)
	}
	return fr
}

// e16Mix builds the mix-sweep population: n workers each at read share f.
func e16Mix(n int, f float64) []float64 {
	fr := make([]float64, n)
	for i := range fr {
		fr[i] = f
	}
	return fr
}

// E16Report is the full experiment output (BENCH_E16.json). The headline
// numbers are the read-throughput degradation factors: reads-per-second at
// the heaviest writer load over the lightest, per mode. Snapshot reads stay
// near 1.0; 2PL reads fall off as writers multiply.
type E16Report struct {
	Segments   int `json:"segments"`
	ObjsPerSeg int `json:"objs_per_seg"`
	BlobBytes  int `json:"blob_bytes"`

	WriterSweep []E16Row `json:"writer_sweep"` // 4 readers, writers swept
	MixSweep    []E16Row `json:"mix_sweep"`    // 4 workers, read share swept

	SnapReadRetention float64 `json:"snap_read_retention"` // snap reads/s at max writers / at min
	BaseReadRetention float64 `json:"base_read_retention"`
}

// RunE16 runs the experiment: the writer sweep on the zipfian stream (the
// contended shape) in both modes, then the mix sweep across read shares and
// both distributions. quick trims the axes for CI smoke.
func RunE16(env *E18Env, quick bool) E16Report {
	rep := E16Report{Segments: env.Segs, ObjsPerSeg: env.Objs, BlobBytes: env.Blob}
	writerCounts := []int{1, 2, 4, 8}
	mixFracs := []float64{0.99, 0.95, 0.8, 0.5}
	dists := []string{"zipf", "uniform"}
	dur := 1200 * time.Millisecond
	if quick {
		writerCounts = []int{1, 4}
		mixFracs = []float64{0.95, 0.5}
		dists = []string{"zipf"}
		dur = 250 * time.Millisecond
	}

	firstSnap, lastSnap, firstBase, lastBase := -1.0, -1.0, -1.0, -1.0
	for _, w := range writerCounts {
		for _, mode := range []string{"base", "snap"} {
			row := runE16(env, mode, "zipf", e16Split(4, w), dur, int64(100+w))
			rep.WriterSweep = append(rep.WriterSweep, row)
			switch mode {
			case "snap":
				if firstSnap < 0 {
					firstSnap = row.ReadPerSec
				}
				lastSnap = row.ReadPerSec
			case "base":
				if firstBase < 0 {
					firstBase = row.ReadPerSec
				}
				lastBase = row.ReadPerSec
			}
		}
	}
	if firstSnap > 0 {
		rep.SnapReadRetention = lastSnap / firstSnap
	}
	if firstBase > 0 {
		rep.BaseReadRetention = lastBase / firstBase
	}
	for _, dist := range dists {
		for _, f := range mixFracs {
			for _, mode := range []string{"base", "snap"} {
				rep.MixSweep = append(rep.MixSweep, runE16(env, mode, dist, e16Mix(4, f), dur, int64(f*1000)))
			}
		}
	}
	return rep
}

// FormatE16Row renders one row.
func FormatE16Row(r E16Row) string {
	pop := fmt.Sprintf("r=%d w=%d", r.Readers, r.Writers)
	if r.Workers > 0 {
		pop = fmt.Sprintf("n=%d mix=%.0f/%.0f", r.Workers, r.ReadFrac*100, (1-r.ReadFrac)*100)
	}
	return fmt.Sprintf("%-4s %-7s %-14s reads/s=%-8.0f %s  writes/s=%-7.0f locks=%-6d refusals=%d",
		r.Mode, r.Dist, pop, r.ReadPerSec, FormatLatency(r.ReadLat), r.WritePerSec, r.LockAcquires, r.Refusals)
}
