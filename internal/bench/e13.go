package bench

import (
	"fmt"
	"sort"
	"time"

	"bess/internal/area"
	"bess/internal/fault"
	"bess/internal/page"
	"bess/internal/wal"
)

// --- E13: crash-point enumeration — torn-write torture of ARIES restart ---
//
// The experiment runs a deterministic multi-transaction workload over
// fault-injected media (internal/fault): WAL and area share one event
// clock, so every write/sync boundary in either medium is a candidate
// power-loss point. The workload runs once fault-free to count events,
// then replays once per crash point × tear mode. Each replay kills the
// machine at its scheduled event, extracts the surviving images, reopens
// them, runs wal.Recover, and checks the recovered database against a
// shadow model:
//
//	(1) every acknowledged commit (Flush returned nil before the crash)
//	    has a durable TCommit in the surviving log;
//	(2) every winner's page holds exactly its final after-image, every
//	    loser's page is rolled back to its initial image;
//	(3) the torn log tail is treated as end-of-log — reopen never errors
//	    and recovery never replays garbage;
//	(4) recovery is idempotent: a second restart on the recovered image
//	    changes nothing and finds no losers.
//
// Tear modes per crash point: clean (the fatal write vanishes), torn
// (one 512B sector of it survives), and torn+garbage (the lost extent is
// overwritten with seeded noise — a drive scribbling as power died).

// Workload shape. Each transaction owns a private page (matching the
// segment-granular strict 2PL the server enforces) and logs full-page
// before/after images, mirroring server.logAndApply.
const (
	e13Txs     = 12 // transactions; odd commit, even are left in flight
	e13Updates = 3  // full-page updates per transaction
	e13AreaID  = 7
)

// E13Mode aggregates trials for one tear mode.
type E13Mode struct {
	Mode         string `json:"mode"` // "clean", "torn", "garbage"
	Trials       int    `json:"trials"`
	Consistent   int    `json:"consistent"`
	Inconsistent int    `json:"inconsistent"`
}

// E13Report is the full experiment output (BENCH_E13.json).
type E13Report struct {
	Seed           int64     `json:"seed"`
	SetupEvents    int64     `json:"setup_events"`
	TotalEvents    int64     `json:"total_events"`
	CrashPoints    int       `json:"crash_points"`
	Sampled        bool      `json:"sampled"` // true when a bounded sample ran instead of full enumeration
	Trials         int       `json:"trials"`
	Consistent     int       `json:"consistent"`
	Inconsistent   int       `json:"inconsistent"`
	Modes          []E13Mode `json:"modes"`
	MeanRecoverUs  float64   `json:"mean_recover_us"`
	MaxRecoverUs   float64   `json:"max_recover_us"`
	MeanRedo       float64   `json:"mean_redo_applied"`
	MeanUndo       float64   `json:"mean_undo_applied"`
	Failures       []string  `json:"failures,omitempty"`     // first few inconsistency descriptions
	WorkloadAcked  int       `json:"workload_acked_commits"` // in the fault-free run
	WorkloadEvents string    `json:"workload_event_window"`
}

// e13World is one simulated machine: WAL and area on a shared event clock,
// plus the shadow model the workload maintains as it runs.
type e13World struct {
	inj    *fault.Injector
	walSt  *fault.Store
	areaSt *fault.Store
	log    *wal.Log
	area   *area.Area

	pages  map[uint64]page.No // tx -> its private page
	acked  map[uint64]bool    // commits acknowledged before any crash
	finals map[uint64][]byte  // tx -> final after-image of its page

	setupEvents int64
}

// e13Setup builds the database: log, area, and one private page per
// transaction, all made durable. Crash points are enumerated strictly
// after setup — power loss before the database exists is not a recovery
// scenario.
func e13Setup(seed int64) (*e13World, error) {
	w := &e13World{
		inj:    fault.NewInjector(seed),
		pages:  make(map[uint64]page.No),
		acked:  make(map[uint64]bool),
		finals: make(map[uint64][]byte),
	}
	w.walSt = fault.NewStore(w.inj)
	w.areaSt = fault.NewStore(w.inj)

	l, err := wal.Open(w.walSt.WAL())
	if err != nil {
		return nil, fmt.Errorf("open log: %w", err)
	}
	w.log = l
	a, err := area.Create(w.areaSt.Area(), e13AreaID, 1, true)
	if err != nil {
		return nil, fmt.Errorf("create area: %w", err)
	}
	w.area = a
	for t := uint64(1); t <= e13Txs; t++ {
		first, _, err := a.AllocSegment(1)
		if err != nil {
			return nil, fmt.Errorf("alloc page for tx %d: %w", t, err)
		}
		w.pages[t] = first
	}
	if err := w.areaSt.Area().Sync(); err != nil {
		return nil, fmt.Errorf("sync area: %w", err)
	}
	w.setupEvents = w.inj.Events()
	return w, nil
}

// e13Image is the deterministic page content of tx t after its k-th update.
func e13Image(t uint64, k int) []byte {
	img := make([]byte, page.Size)
	for j := range img {
		img[j] = byte(uint64(j)*31 + t*131 + uint64(k)*17 + 1)
	}
	return img
}

// e13Workload runs the transaction mix. Any error is the scheduled crash
// (or a cascade of it) and simply ends the run — everything acknowledged
// before that moment is in w.acked, and that is what recovery must honor.
//
// Odd transactions commit (append TCommit, force the log, ack, TEnd); even
// ones are left in flight. Dirty pages are stolen to the area — after
// forcing the log up to their last update, per the WAL rule — for all even
// transactions and every fourth odd one, so both redo of lost winner
// writes and undo of stolen loser writes are exercised. A fuzzy checkpoint
// with accurate transaction and dirty-page tables lands mid-run.
func e13Workload(w *e13World) {
	active := make(map[uint64]page.LSN)
	dpt := make(map[page.ID]page.LSN)

	for t := uint64(1); t <= e13Txs; t++ {
		pg := page.ID{Area: e13AreaID, Page: w.pages[t]}
		var prev page.LSN
		img := make([]byte, page.Size) // initial image: freshly allocated zeros
		for k := 0; k < e13Updates; k++ {
			before := append([]byte(nil), img...)
			img = e13Image(t, k)
			lsn, err := w.log.Append(&wal.Record{
				Type:    wal.TUpdate,
				Tx:      t,
				PrevLSN: prev,
				Page:    pg,
				Off:     0,
				Before:  before,
				After:   append([]byte(nil), img...),
			})
			if err != nil {
				return
			}
			prev = lsn
			if _, ok := dpt[pg]; !ok {
				dpt[pg] = lsn
			}
		}
		w.finals[t] = append([]byte(nil), img...)
		active[t] = prev

		steal := t%2 == 0 || t%4 == 1
		if steal {
			if err := w.log.Flush(prev); err != nil { // WAL rule: log before data
				return
			}
			if err := w.area.WritePage(w.pages[t], img); err != nil {
				return
			}
		}

		if t%2 == 1 {
			clsn, err := w.log.Append(&wal.Record{Type: wal.TCommit, Tx: t, PrevLSN: prev})
			if err != nil {
				return
			}
			if err := w.log.Flush(clsn); err != nil {
				return
			}
			w.acked[t] = true // the commit is acknowledged from here on
			if _, err := w.log.Append(&wal.Record{Type: wal.TEnd, Tx: t}); err != nil {
				return
			}
			delete(active, t)
		}

		if t == e13Txs/2 {
			var act []wal.CkptTx
			for tx, last := range active {
				act = append(act, wal.CkptTx{Tx: tx, LastLSN: last})
			}
			sort.Slice(act, func(i, j int) bool { return act[i].Tx < act[j].Tx })
			// Stolen pages stay in the DPT: their writes are not yet synced,
			// so dropping them could let redo start too late. Sorted so the
			// checkpoint record — and thus the whole log image — is byte-for-
			// byte reproducible from the seed.
			var dirty []wal.CkptPage
			for p, rec := range dpt {
				dirty = append(dirty, wal.CkptPage{Page: p, RecLSN: rec})
			}
			sort.Slice(dirty, func(i, j int) bool { return dirty[i].Page.Page < dirty[j].Page.Page })
			if _, err := wal.Checkpoint(w.log, act, dirty); err != nil {
				return
			}
		}
	}
}

// e13Pager adapts a rebooted area to wal.Pager.
type e13Pager struct{ a *area.Area }

func (p e13Pager) ReadPage(id page.ID, buf []byte) error {
	if id.Area != e13AreaID {
		return fmt.Errorf("e13: read of foreign area %d", id.Area)
	}
	return p.a.ReadPage(id.Page, buf)
}

func (p e13Pager) WritePage(id page.ID, data []byte) error {
	if id.Area != e13AreaID {
		return fmt.Errorf("e13: write of foreign area %d", id.Area)
	}
	return p.a.WritePage(id.Page, data)
}

// e13Verify reboots onto the surviving images, recovers, and checks the
// shadow-model invariants. Returns the recovery stats of the first restart.
func e13Verify(w *e13World) (*wal.RecoveryStats, error) {
	walImg := w.walSt.CrashImage()
	areaImg := w.areaSt.CrashImage()

	// (3) torn tail is end-of-log: reopening the surviving log must succeed.
	l, err := wal.OpenMemFrom(walImg)
	if err != nil {
		return nil, fmt.Errorf("reopen log: %w", err)
	}
	// Throwaway reboot images: close errors carry no durability meaning here.
	defer func() { _ = l.Close() }()
	st2 := fault.NewStoreFrom(fault.NewInjector(0), areaImg)
	a, err := area.Load(st2.Area(), true)
	if err != nil {
		return nil, fmt.Errorf("reload area: %w", err)
	}
	defer func() { _ = a.Close() }()

	// Winners by the durable log: transactions whose TCommit survived.
	winners := make(map[uint64]bool)
	if err := l.Iterate(wal.FirstLSN(), func(_ page.LSN, rec *wal.Record) error {
		if rec.Type == wal.TCommit {
			winners[rec.Tx] = true
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("scan surviving log: %w", err)
	}

	// (1) acked commits are durable.
	for tx := range w.acked {
		if !winners[tx] {
			return nil, fmt.Errorf("acked commit of tx %d not durable", tx)
		}
	}

	stats, err := wal.Recover(l, e13Pager{a})
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}

	// (2) winners' effects present, losers' rolled back.
	zero := make([]byte, page.Size)
	buf := make([]byte, page.Size)
	for t := uint64(1); t <= e13Txs; t++ {
		pg, ok := w.pages[t]
		if !ok {
			continue
		}
		want := zero
		if winners[t] {
			want = w.finals[t]
			if want == nil {
				return nil, fmt.Errorf("tx %d committed durably but shadow has no final image", t)
			}
		}
		if err := a.ReadPage(pg, buf); err != nil {
			return nil, fmt.Errorf("read page of tx %d: %w", t, err)
		}
		if !bytesEqual(buf, want) {
			return nil, fmt.Errorf("tx %d (winner=%v): page content diverges from shadow", t, winners[t])
		}
	}

	// (4) idempotence: a second restart finds no losers and changes nothing.
	stats2, err := wal.Recover(l, e13Pager{a})
	if err != nil {
		return nil, fmt.Errorf("second recover: %w", err)
	}
	if len(stats2.Losers) != 0 {
		return nil, fmt.Errorf("second recovery found losers %v", stats2.Losers)
	}
	for t := uint64(1); t <= e13Txs; t++ {
		want := zero
		if winners[t] {
			want = w.finals[t]
		}
		if err := a.ReadPage(w.pages[t], buf); err != nil {
			return nil, err
		}
		if !bytesEqual(buf, want) {
			return nil, fmt.Errorf("tx %d: second recovery changed the page", t)
		}
	}
	return stats, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// e13TearModes are the three ways the fatal write can tear.
var e13TearModes = []struct {
	name        string
	tearSectors int
	garbage     bool
}{
	{"clean", 0, false},
	{"torn", 1, false},
	{"garbage", 1, true},
}

// RunE13 enumerates crash points. sample <= 0 runs the full enumeration;
// otherwise at most sample evenly spaced crash points run (the CI short
// mode). Every trial replays the workload from scratch with the crash
// scheduled, so garbage bytes and event interleavings reproduce exactly
// from (seed, crash point, mode).
func RunE13(seed int64, sample int) (E13Report, error) {
	rep := E13Report{Seed: seed}

	// Fault-free run: count events and record the expected ack set.
	base, err := e13Setup(seed)
	if err != nil {
		return rep, fmt.Errorf("e13 baseline setup: %w", err)
	}
	e13Workload(base)
	if base.inj.Crashed() {
		return rep, fmt.Errorf("e13 baseline run crashed with no fault scheduled")
	}
	rep.SetupEvents = base.setupEvents
	rep.TotalEvents = base.inj.Events()
	rep.WorkloadAcked = len(base.acked)
	rep.WorkloadEvents = fmt.Sprintf("(%d, %d]", rep.SetupEvents, rep.TotalEvents)

	points := make([]int64, 0, rep.TotalEvents-rep.SetupEvents)
	for n := rep.SetupEvents + 1; n <= rep.TotalEvents; n++ {
		points = append(points, n)
	}
	if sample > 0 && sample < len(points) {
		rep.Sampled = true
		stride := float64(len(points)) / float64(sample)
		picked := make([]int64, 0, sample)
		for i := 0; i < sample; i++ {
			picked = append(picked, points[int(float64(i)*stride)])
		}
		points = picked
	}
	rep.CrashPoints = len(points)

	var totalRecoverNs, maxRecoverNs int64
	var totalRedo, totalUndo int
	for _, mode := range e13TearModes {
		m := E13Mode{Mode: mode.name}
		for _, n := range points {
			m.Trials++
			w, err := e13Setup(seed)
			if err != nil {
				return rep, fmt.Errorf("e13 setup (crash at %d): %w", n, err)
			}
			w.inj.SetCrashPoint(n, mode.tearSectors, mode.garbage)
			e13Workload(w)
			if !w.inj.Crashed() {
				return rep, fmt.Errorf("e13: crash at event %d never fired (%s)", n, w.inj)
			}
			start := time.Now()
			stats, err := e13Verify(w)
			el := time.Since(start).Nanoseconds()
			if err != nil {
				m.Inconsistent++
				if len(rep.Failures) < 8 {
					rep.Failures = append(rep.Failures,
						fmt.Sprintf("crash@%d mode=%s: %v", n, mode.name, err))
				}
				continue
			}
			m.Consistent++
			totalRecoverNs += el
			if el > maxRecoverNs {
				maxRecoverNs = el
			}
			totalRedo += stats.RedoApplied
			totalUndo += stats.UndoApplied
		}
		rep.Trials += m.Trials
		rep.Consistent += m.Consistent
		rep.Inconsistent += m.Inconsistent
		rep.Modes = append(rep.Modes, m)
	}
	if rep.Consistent > 0 {
		rep.MeanRecoverUs = float64(totalRecoverNs) / float64(rep.Consistent) / 1e3
		rep.MaxRecoverUs = float64(maxRecoverNs) / 1e3
		rep.MeanRedo = float64(totalRedo) / float64(rep.Consistent)
		rep.MeanUndo = float64(totalUndo) / float64(rep.Consistent)
	}
	return rep, nil
}
