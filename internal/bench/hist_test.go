package bench

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistBucketMapping: indices are monotone in v, small values are exact,
// and the midpoint stays within the bucket's 12.5% relative-error bound.
func TestHistBucketMapping(t *testing.T) {
	for v := uint64(0); v < histSub; v++ {
		if got := histBucketOf(v); got != int(v) {
			t.Fatalf("bucket(%d) = %d, want exact", v, got)
		}
		if got := histBucketMid(int(v)); got != v {
			t.Fatalf("mid(%d) = %d, want exact", v, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<63 + 1} {
		idx := histBucketOf(v)
		if idx < prev {
			t.Fatalf("bucket(%d) = %d below previous %d", v, idx, prev)
		}
		if idx >= histBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, idx)
		}
		prev = idx
		if v >= histSub {
			mid := histBucketMid(idx)
			lo, hi := float64(v)*0.875, float64(v)*1.125
			if float64(mid) < lo/1.125 || float64(mid) > hi*1.125 {
				t.Fatalf("mid of bucket(%d) = %d, outside relative-error bound", v, mid)
			}
		}
	}
	// Every bucket index roundtrips: bucket(mid(idx)) == idx.
	for idx := 0; idx < histBuckets-histSub; idx++ {
		if got := histBucketOf(histBucketMid(idx)); got != idx {
			t.Fatalf("bucket(mid(%d)) = %d", idx, got)
		}
	}
}

// TestHistQuantiles checks percentiles of a known distribution land in the
// right buckets.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1000 observations: 0..999 microseconds.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		lo := float64(want) * 0.85
		hi := float64(want) * 1.15
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("q%.2f = %v, want within 15%% of %v", q, got, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	s := h.Summary()
	if s.Count != 1000 || s.P50us <= 0 || s.P99us < s.P50us {
		t.Fatalf("summary %+v", s)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Summary().Count != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestHistConcurrent hammers Observe from several goroutines; the count must
// come out exact (the race detector guards the rest).
func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}
