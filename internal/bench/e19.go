package bench

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"time"

	"bess/internal/area"
	"bess/internal/fault"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/rpc"
	"bess/internal/segment"
	"bess/internal/server"
	"bess/internal/wal"
)

// --- E19: corruption-point enumeration — bit-rot torture of detect/repair ---
//
// The experiment does for silent corruption what E13 does for power loss:
// run a deterministic workload once fault-free to count media events, then
// replay it once per corruption point with Injector.RotAt scheduled there,
// and check the detect-verify-repair pipeline end to end. Four categories
// cover the four media a bit can rot on:
//
//	pages      full server stack (server.OpenMedia over fault stores); rot
//	           lands inside area-store writes — slotted pages, data
//	           sections, large-object runs. Verification scrubs, then
//	           fetches every committed object and compares it with a
//	           shadow model.
//	wal-body   same stack, rot scheduled on the WAL store instead. The log
//	           is the repair source, so rot here is detectable but not
//	           repairable: Log.Verify must flag mid-log rot, and every
//	           object read must still be correct (pages were never hurt).
//	checkpoint byte-boundary enumeration over the most recent checkpoint
//	           record: recovery must fall back to the previous checkpoint
//	           and reach the same state, never consume the broken record.
//	wire       byte-boundary enumeration over one checksummed RPC frame
//	           crossing a fault.Conn that flips that byte: the receiver
//	           must reject the frame (never decode garbage), and a retry
//	           on a clean connection must succeed.
//
// Every trial lands in exactly one outcome class:
//
//	repaired     damage detected and healed (WAL replay, checkpoint
//	             fallback, or wire retry) — all reads match the model
//	quarantined  damage detected but not repairable (no logged history, or
//	             the log itself rotted); typed errors, healthy data still
//	             served correctly
//	benign       the rot landed on bytes nothing depends on (overwritten
//	             later, or an unflushed log tail) — no damage to detect
//	silent       a read returned wrong bytes without an error — the
//	             failure mode the whole pipeline exists to rule out
//
// Acceptance (EXPERIMENTS.md): ≥100 points, zero silent, and ≥90% of the
// non-benign points repaired with the rest quarantined.

const (
	e19Segs     = 6 // committed segments (each created, populated, updated)
	e19RotBytes = 2 // flipped bytes per corruption point
)

// E19Category aggregates trials for one corruption medium.
type E19Category struct {
	Category    string `json:"category"` // "pages", "wal-body", "checkpoint", "wire"
	Points      int    `json:"points"`
	Detected    int    `json:"detected"`
	Repaired    int    `json:"repaired"`
	Quarantined int    `json:"quarantined"`
	Benign      int    `json:"benign"`
	Silent      int    `json:"silent"`
}

func (c *E19Category) record(outcome string) {
	c.Points++
	switch outcome {
	case "repaired":
		c.Detected++
		c.Repaired++
	case "quarantined":
		c.Detected++
		c.Quarantined++
	case "benign":
		c.Benign++
	default:
		c.Silent++
	}
}

// E19Report is the full experiment output (BENCH_E19.json).
type E19Report struct {
	Seed         int64         `json:"seed"`
	Points       int           `json:"points"`
	Detected     int           `json:"detected"`
	Repaired     int           `json:"repaired"`
	Quarantined  int           `json:"quarantined"`
	Benign       int           `json:"benign"`
	Silent       int           `json:"silent"`
	RepairedFrac float64       `json:"repaired_frac"` // repaired / (repaired + quarantined)
	Sampled      bool          `json:"sampled"`
	Categories   []E19Category `json:"categories"`
	Failures     []string      `json:"failures,omitempty"`
}

func (r *E19Report) add(c E19Category) {
	r.Points += c.Points
	r.Detected += c.Detected
	r.Repaired += c.Repaired
	r.Quarantined += c.Quarantined
	r.Benign += c.Benign
	r.Silent += c.Silent
	r.Categories = append(r.Categories, c)
}

func (r *E19Report) fail(f string) {
	if len(r.Failures) < 12 {
		r.Failures = append(r.Failures, f)
	}
}

// e19SamplePoints returns 1..total, or at most sample evenly spaced values
// of it when sample is positive and smaller.
func e19SamplePoints(total int64, sample int) []int64 {
	points := make([]int64, 0, total)
	for n := int64(1); n <= total; n++ {
		points = append(points, n)
	}
	if sample > 0 && sample < len(points) {
		stride := float64(len(points)) / float64(sample)
		picked := make([]int64, 0, sample)
		for i := 0; i < sample; i++ {
			picked = append(picked, points[int(float64(i)*stride)])
		}
		points = picked
	}
	return points
}

// e19World is one full server over fault-injected media: separate event
// clocks for the area stores and the WAL store, so a corruption point
// attributes cleanly to one medium.
type e19World struct {
	injArea *fault.Injector
	injWAL  *fault.Injector
	srv     *server.Server
	db      uint32
	cl      uint32

	model map[proto.SegKey][]byte // committed slot-0 object bytes
	large proto.SegKey            // segment holding the large object
	slot  int                     // its descriptor slot
	big   []byte                  // its committed content
	bare  proto.SegKey            // created but never committed (no history)
}

func e19Body(i, round int) []byte {
	return []byte(fmt.Sprintf("e19 object %d round %d: %032d", i, round, i*7919+round))
}

// e19Run builds the world and runs the deterministic workload: segments are
// created, committed with one object each, then re-committed with updated
// bodies; one segment gains a multi-page large object; one segment is
// created and abandoned uncommitted (its initial image has no logged
// history — the designed unrepairable case). schedule, when non-nil, arms
// the injectors before any media event fires. Workload errors are returned
// for the caller to classify; the world is always returned for close().
func e19Run(seed int64, schedule func(*e19World)) (*e19World, error) {
	w := &e19World{
		injArea: fault.NewInjector(seed),
		injWAL:  fault.NewInjector(seed ^ 0x5bd1e995),
		model:   make(map[proto.SegKey][]byte),
	}
	if schedule != nil {
		schedule(w)
	}
	walSt := fault.NewStore(w.injWAL)
	srv, err := server.OpenMedia(server.Media{
		Log:     walSt.WAL(),
		NewArea: func(id uint32) (area.Store, error) { return fault.NewStore(w.injArea).Area(), nil },
	}, 1)
	if err != nil {
		return w, fmt.Errorf("open media server: %w", err)
	}
	w.srv = srv
	if w.db, _, err = srv.OpenDB("e19", true); err != nil {
		return w, err
	}
	if w.cl, err = srv.Hello("e19"); err != nil {
		return w, err
	}

	commit := func(key proto.SegKey, body []byte) error {
		sl, ov, err := srv.FetchSlotted(0, key)
		if err != nil {
			return err
		}
		seg, err := segment.DecodeSlotted(sl)
		if err != nil {
			return err
		}
		seg.Overflow = ov
		if seg.Data, err = srv.FetchData(0, key); err != nil {
			return err
		}
		if seg.Live(0) {
			if err := seg.ResizeObject(0, body); err != nil {
				return err
			}
		} else if _, err := seg.CreateObject(0, body); err != nil {
			return err
		}
		img := proto.SegImage{Seg: key, Slotted: seg.EncodeSlotted(), Overflow: seg.Overflow, Data: seg.Data}
		txid, err := srv.NewTx()
		if err != nil {
			return err
		}
		if err := srv.Lock(w.cl, txid, key, proto.LockX); err != nil {
			return err
		}
		if err := srv.Commit(w.cl, txid, []proto.SegImage{img}); err != nil {
			return err
		}
		w.model[key] = body
		return nil
	}

	keys := make([]proto.SegKey, 0, e19Segs)
	for i := 0; i < e19Segs; i++ {
		key, err := srv.CreateSegment(w.db, 1, 1, 2, -1)
		if err != nil {
			return w, fmt.Errorf("create segment %d: %w", i, err)
		}
		keys = append(keys, key)
		if err := commit(key, e19Body(i, 0)); err != nil {
			return w, fmt.Errorf("commit segment %d: %w", i, err)
		}
	}
	// Update rounds: the repaired image must be the latest committed state,
	// not the first, and every commit extends the repairable event space.
	for round := 1; round <= 3; round++ {
		for i, key := range keys {
			if err := commit(key, e19Body(i, round)); err != nil {
				return w, fmt.Errorf("update %d of segment %d: %w", round, i, err)
			}
		}
	}
	// One multi-page large object.
	w.large = keys[0]
	w.big = bytes.Repeat([]byte("E19-large-object-payload."), 400) // ~10 KB, 3 pages
	txid, err := srv.NewTx()
	if err != nil {
		return w, err
	}
	if err := srv.Lock(w.cl, txid, w.large, proto.LockX); err != nil {
		return w, err
	}
	if w.slot, err = srv.CreateLarge(w.cl, txid, w.large, 7, w.big); err != nil {
		return w, fmt.Errorf("create large: %w", err)
	}
	if err := srv.Commit(w.cl, txid, nil); err != nil {
		return w, fmt.Errorf("commit large: %w", err)
	}
	// The abandoned segment: slotted image on disk, nothing in the log.
	if w.bare, err = srv.CreateSegment(w.db, 2, 1, 1, -1); err != nil {
		return w, fmt.Errorf("create bare segment: %w", err)
	}
	return w, nil
}

func (w *e19World) close() {
	if w.srv != nil {
		_ = w.srv.Close()
	}
}

// fetchObject reads slot 0 of a segment through the verified server path.
func (w *e19World) fetchObject(key proto.SegKey) ([]byte, error) {
	sl, ov, data, err := w.srv.FetchSeg(0, key)
	if err != nil {
		return nil, err
	}
	dec, err := segment.DecodeSlotted(sl)
	if err != nil {
		return nil, err
	}
	dec.Overflow, dec.Data = ov, data
	return dec.ObjectBytes(0)
}

// e19Classify runs the verification phase on a corrupted world: one scrub
// pass (detection + repair), then every committed object is fetched and
// compared with the model. Returns the outcome class for this trial.
func e19Classify(w *e19World, rep *E19Report, label string) string {
	if _, err := w.srv.ScrubOnce(); err != nil {
		rep.fail(fmt.Sprintf("%s: scrub: %v", label, err))
		return "silent"
	}
	quarantined := len(w.srv.Quarantined()) > 0
	wrong := 0
	check := func(key proto.SegKey, want, got []byte, err error) {
		switch {
		case errors.Is(err, server.ErrQuarantined):
			quarantined = true
		case err != nil:
			// A healthy segment failing to serve breaks the degrade-
			// gracefully contract as surely as wrong bytes do.
			wrong++
			rep.fail(fmt.Sprintf("%s: fetch %d/%d: %v", label, key.Area, key.Start, err))
		case !bytes.Equal(got, want):
			wrong++
			rep.fail(fmt.Sprintf("%s: SILENT wrong read of %d/%d", label, key.Area, key.Start))
		}
	}
	for key, want := range w.model {
		got, err := w.fetchObject(key)
		check(key, want, got, err)
	}
	got, err := w.srv.FetchLarge(0, w.large, w.slot)
	check(w.large, w.big, got, err)

	st := w.srv.ScrubStatus()
	switch {
	case wrong > 0:
		return "silent"
	case quarantined:
		return "quarantined" // healthy segments all verified correct above
	case st.CorruptionsFound > 0:
		return "repaired"
	default:
		return "benign"
	}
}

// e19Pages enumerates rot points over the area-store event space: every
// write the full server stack performs against its storage areas.
func e19Pages(seed int64, sample int, rep *E19Report) (E19Category, error) {
	c := E19Category{Category: "pages"}
	base, err := e19Run(seed, nil)
	if err != nil {
		base.close()
		return c, fmt.Errorf("e19 pages baseline: %w", err)
	}
	total := base.injArea.Events()
	base.close()
	for _, n := range e19SamplePoints(total, sample) {
		n := n
		label := fmt.Sprintf("pages rot@%d", n)
		w, err := e19Run(seed, func(ww *e19World) { ww.injArea.RotAt(n, e19RotBytes) })
		switch {
		case errors.Is(err, server.ErrQuarantined):
			// The workload itself tripped over the rot — typically the
			// segment's initial unlogged image, detected when the commit
			// path read it back. A typed quarantine with everything
			// committed so far still served correctly is the contract.
			wrong := 0
			for key, want := range w.model {
				if got, ferr := w.fetchObject(key); ferr != nil || !bytes.Equal(got, want) {
					wrong++
					rep.fail(fmt.Sprintf("%s: healthy segment %d/%d after quarantine: %v", label, key.Area, key.Start, ferr))
				}
			}
			if wrong > 0 {
				c.record("silent")
			} else {
				c.record("quarantined")
			}
		case err != nil:
			rep.fail(fmt.Sprintf("%s: workload: %v", label, err))
			c.record("silent")
		default:
			c.record(e19Classify(w, rep, label))
		}
		w.close()
	}
	return c, nil
}

// e19WALBody enumerates rot points over the WAL-store event space. Rot in
// durable log bytes must be reported by Log.Verify (the history behind it
// can no longer back a repair — operationally a quarantine of the log),
// while every page read stays correct: the rot never touched the areas.
func e19WALBody(seed int64, sample int, rep *E19Report) (E19Category, error) {
	c := E19Category{Category: "wal-body"}
	base, err := e19Run(seed, nil)
	if err != nil {
		base.close()
		return c, fmt.Errorf("e19 wal baseline: %w", err)
	}
	total := base.injWAL.Events()
	base.close()
	for _, n := range e19SamplePoints(total, sample) {
		n := n
		label := fmt.Sprintf("wal rot@%d", n)
		w, err := e19Run(seed, func(ww *e19World) { ww.injWAL.RotAt(n, e19RotBytes) })
		if err != nil {
			rep.fail(fmt.Sprintf("%s: workload: %v", label, err))
			c.record("silent")
			w.close()
			continue
		}
		// Reads must all still be clean — the pages were never touched.
		outcome := e19Classify(w, rep, label)
		if outcome == "silent" {
			c.record("silent")
			w.close()
			continue
		}
		if _, verr := w.srv.Log().Verify(); verr != nil {
			var ce *page.CorruptError
			if !errors.As(verr, &ce) {
				rep.fail(fmt.Sprintf("%s: Verify error is untyped: %v", label, verr))
			}
			c.record("quarantined") // detected; the log cannot repair itself
		} else {
			// Undetected rot is benign only if it landed beyond the durable
			// frontier (an unflushed tail that recovery would discard).
			c.record("benign")
		}
		w.close()
	}
	return c, nil
}

// e19MapPager is the in-memory database image the checkpoint trials recover
// onto: zero-filled pages written by redo/undo.
type e19MapPager struct{ pages map[page.ID][]byte }

func newE19MapPager() *e19MapPager { return &e19MapPager{pages: make(map[page.ID][]byte)} }

func (p *e19MapPager) ReadPage(id page.ID, buf []byte) error {
	img, ok := p.pages[id]
	if !ok {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, img)
	return nil
}

func (p *e19MapPager) WritePage(id page.ID, data []byte) error {
	p.pages[id] = append([]byte(nil), data...)
	return nil
}

// e19CkptLog writes the checkpoint-trial log: tx1 commits an update to page
// 1, checkpoint #1, tx2 commits an update to page 2, checkpoint #2, then a
// loser transaction touches page 3 (undone on clean recovery, lost with a
// broken checkpoint #2 — either way page 3 ends zero, so the recovered
// state is identical and the fallback is observable only in CheckpointLSN).
func e19CkptLog() (img []byte, ckpt1, ckpt2, ckpt2End page.LSN, want map[page.ID][]byte, err error) {
	l := wal.NewMem()
	defer func() { _ = l.Close() }()
	want = make(map[page.ID][]byte)
	zero := make([]byte, page.Size)
	pg := func(n page.No) page.ID { return page.ID{Area: 9, Page: n} }
	fill := func(b byte) []byte {
		img := make([]byte, page.Size)
		for i := range img {
			img[i] = b
		}
		return img
	}
	update := func(tx uint64, id page.ID, before, after []byte, prev page.LSN) (page.LSN, error) {
		return l.Append(&wal.Record{
			Type: wal.TUpdate, Tx: tx, PrevLSN: prev, Page: id, Off: 0,
			Before: append([]byte(nil), before...), After: append([]byte(nil), after...),
		})
	}
	commit := func(tx uint64, prev page.LSN) error {
		clsn, err := l.Append(&wal.Record{Type: wal.TCommit, Tx: tx, PrevLSN: prev})
		if err != nil {
			return err
		}
		if err := l.Flush(clsn); err != nil {
			return err
		}
		_, err = l.Append(&wal.Record{Type: wal.TEnd, Tx: tx})
		return err
	}

	a1 := fill(0x11)
	lsn1, err := update(1, pg(1), zero, a1, 0)
	if err != nil {
		return
	}
	if err = commit(1, lsn1); err != nil {
		return
	}
	want[pg(1)] = a1
	if ckpt1, err = wal.Checkpoint(l, nil, []wal.CkptPage{{Page: pg(1), RecLSN: lsn1}}); err != nil {
		return
	}
	a2 := fill(0x22)
	lsn2, err := update(2, pg(2), zero, a2, 0)
	if err != nil {
		return
	}
	if err = commit(2, lsn2); err != nil {
		return
	}
	want[pg(2)] = a2
	if ckpt2, err = wal.Checkpoint(l, nil,
		[]wal.CkptPage{{Page: pg(1), RecLSN: lsn1}, {Page: pg(2), RecLSN: lsn2}}); err != nil {
		return
	}
	ckpt2End = l.NextLSN()
	// The loser after checkpoint #2.
	lsn3, err := update(3, pg(3), zero, fill(0x33), 0)
	if err != nil {
		return
	}
	if err = l.Flush(lsn3); err != nil {
		return
	}
	want[pg(3)] = zero
	img = l.DurableBytes()
	return
}

// e19Checkpoint flips one byte at every sampled boundary of the most
// recent checkpoint record and recovers: the broken record must never be
// consumed — recovery falls back to the previous checkpoint and reaches
// exactly the clean-run state.
func e19Checkpoint(sample int, rep *E19Report) (E19Category, error) {
	c := E19Category{Category: "checkpoint"}
	img, ckpt1, ckpt2, ckpt2End, want, err := e19CkptLog()
	if err != nil {
		return c, fmt.Errorf("e19 checkpoint log: %w", err)
	}
	// Clean run first: recovery must use checkpoint #2 and match the model.
	clean, err := wal.OpenMemFrom(append([]byte(nil), img...))
	if err != nil {
		return c, fmt.Errorf("reopen clean log: %w", err)
	}
	pager := newE19MapPager()
	st, err := wal.Recover(clean, pager)
	_ = clean.Close()
	if err != nil {
		return c, fmt.Errorf("clean recover: %w", err)
	}
	if st.CheckpointLSN != ckpt2 {
		return c, fmt.Errorf("clean recovery used checkpoint %d, want %d", st.CheckpointLSN, ckpt2)
	}
	checkState := func(p *e19MapPager) error {
		buf := make([]byte, page.Size)
		for id, w := range want {
			if err := p.ReadPage(id, buf); err != nil {
				return err
			}
			if !bytes.Equal(buf, w) {
				return fmt.Errorf("page %v diverges from model", id)
			}
		}
		return nil
	}
	if err := checkState(pager); err != nil {
		return c, fmt.Errorf("clean recovery state: %w", err)
	}

	offs := e19SamplePoints(int64(ckpt2End-ckpt2), sample)
	for _, o := range offs {
		off := int64(ckpt2) + o - 1 // o is 1-based within the record
		label := fmt.Sprintf("checkpoint flip@+%d", o-1)
		broken := append([]byte(nil), img...)
		broken[off] ^= 0xA5
		l, err := wal.OpenMemFrom(broken)
		if err != nil {
			// Never consumed, but the log must stay openable (torn-tail
			// doctrine): an open failure is a detection without service.
			rep.fail(fmt.Sprintf("%s: reopen: %v", label, err))
			c.record("silent")
			continue
		}
		p := newE19MapPager()
		st, err := wal.Recover(l, p)
		if err != nil {
			rep.fail(fmt.Sprintf("%s: recover: %v", label, err))
			c.record("silent")
			_ = l.Close()
			continue
		}
		switch {
		case st.CheckpointLSN == ckpt2:
			rep.fail(fmt.Sprintf("%s: recovery consumed the broken checkpoint", label))
			c.record("silent")
		case st.CheckpointLSN != ckpt1:
			rep.fail(fmt.Sprintf("%s: fell back past checkpoint #1 to %d", label, st.CheckpointLSN))
			c.record("silent")
		case checkState(p) != nil:
			rep.fail(fmt.Sprintf("%s: recovered state diverges: %v", label, checkState(p)))
			c.record("silent")
		default:
			c.record("repaired") // fallback recovery reached the clean state
		}
		_ = l.Close()
	}
	return c, nil
}

// e19WirePayload is the echo body of the wire trials; with the named-method
// framing and CRC trailer the request frame is 15+2+4+len+4 bytes.
var e19WirePayload = []byte("E19 wire corruption torture!")

// e19Wire flips every sampled byte position of one checksummed request
// frame in flight (fault.Conn, the flaky-switch model) and requires the
// exchange to fail — never to decode garbage — and a retry on a clean
// connection to succeed.
func e19Wire(sample int, rep *E19Report) (E19Category, error) {
	c := E19Category{Category: "wire"}
	frameLen := int64(15 + 2 + len("Echo") + len(e19WirePayload) + 4)

	echo := func(flipAt int64) (reply []byte, err error) {
		cc, sc := net.Pipe()
		cli := rpc.NewPeer(fault.WrapConn(cc, fault.ConnPlan{FlipByteAt: flipAt}))
		srv := rpc.NewPeer(sc)
		defer func() {
			_ = cli.Close()
			_ = srv.Close()
		}()
		srv.Handle("Echo", func(b []byte) ([]byte, error) { return b, nil })
		cli.EnableChecksums()
		type res struct {
			b   []byte
			err error
		}
		done := make(chan res, 1)
		//bess:golife ignore=CallRaw returns once both peers close (the timeout branch closes them), and the send is buffered
		go func() {
			b, err := cli.CallRaw("Echo", e19WirePayload)
			done <- res{b, err}
		}()
		select {
		case r := <-done:
			return r.b, r.err
		case <-time.After(500 * time.Millisecond):
			// A flipped length field can leave the receiver waiting for
			// bytes that never come: the stream is unframeable, which is a
			// detection (a real deployment's read deadline fires). Closing
			// unblocks the call.
			_ = cli.Close()
			_ = srv.Close()
			r := <-done
			if r.err == nil {
				return r.b, errors.New("stalled but returned no error")
			}
			return nil, r.err
		}
	}

	for _, i := range e19SamplePoints(frameLen, sample) {
		label := fmt.Sprintf("wire flip@%d", i)
		reply, err := echo(i)
		if err == nil {
			if bytes.Equal(reply, e19WirePayload) {
				rep.fail(fmt.Sprintf("%s: flip never fired", label))
			} else {
				rep.fail(fmt.Sprintf("%s: SILENT garbage decode", label))
			}
			c.record("silent")
			continue
		}
		// Detected. The repair is the client's retry on a fresh connection.
		reply, err = echo(0)
		if err != nil || !bytes.Equal(reply, e19WirePayload) {
			rep.fail(fmt.Sprintf("%s: clean retry failed: %v", label, err))
			c.record("quarantined")
			continue
		}
		c.record("repaired")
	}
	return c, nil
}

// RunE19 enumerates corruption points. sample <= 0 runs the full
// enumeration; otherwise each category runs at most the given number of
// evenly spaced points (CI short mode). The wal-body category is always
// capped below the others: it is the detectable-but-unrepairable class, and
// the experiment wants the repairable media to dominate the point count the
// way they dominate real deployments (data dwarfs log).
func RunE19(seed int64, sample int) (E19Report, error) {
	rep := E19Report{Seed: seed, Sampled: sample > 0}

	pageSample, walSample, ckptSample, wireSample := 0, 12, 0, 0
	if sample > 0 {
		pageSample, walSample, ckptSample, wireSample = sample, min(sample/2+1, 12), sample, sample
	}

	pages, err := e19Pages(seed, pageSample, &rep)
	if err != nil {
		return rep, err
	}
	rep.add(pages)
	walBody, err := e19WALBody(seed, walSample, &rep)
	if err != nil {
		return rep, err
	}
	rep.add(walBody)
	ckpt, err := e19Checkpoint(ckptSample, &rep)
	if err != nil {
		return rep, err
	}
	rep.add(ckpt)
	wire, err := e19Wire(wireSample, &rep)
	if err != nil {
		return rep, err
	}
	rep.add(wire)

	if rep.Repaired+rep.Quarantined > 0 {
		rep.RepairedFrac = float64(rep.Repaired) / float64(rep.Repaired+rep.Quarantined)
	}
	return rep, nil
}
