package bench

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a fixed-bucket log-linear latency histogram: 8 linear sub-buckets
// per power-of-two octave (relative error <= 12.5%), fixed memory, and
// lock-free concurrent Observe. Values are recorded in nanoseconds; the
// reported quantiles are bucket midpoints. The zero value is ready to use.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
}

// histSubBits picks the sub-bucket resolution: 2^histSubBits linear buckets
// per octave. Values below 2^histSubBits get exact unit buckets.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// Octaves 3..63 at histSub buckets each, plus the 8 exact low buckets.
	histBuckets = (64-histSubBits)*histSub + histSub
)

// histBucketOf maps a value to its bucket index. Small values are exact;
// larger ones keep histSubBits bits of mantissa after the leading one.
func histBucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	mant := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	return (exp-histSubBits)*histSub + histSub + int(mant)
}

// histBucketMid returns a representative value (the bucket midpoint) for a
// bucket index, the inverse of histBucketOf up to bucket width.
func histBucketMid(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	exp := uint(idx-histSub)/histSub + histSubBits
	mant := uint64(idx-histSub) % histSub
	low := (histSub + mant) << (exp - histSubBits)
	return low + (uint64(1)<<(exp-histSubBits))/2
}

// Observe records one duration. Safe for concurrent use.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucketOf(uint64(d))].Add(1)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Quantile returns the q-quantile (0 < q <= 1) as a duration, or zero when
// the histogram is empty. Concurrent Observes may or may not be counted.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(histBucketMid(i))
		}
	}
	return 0
}

// LatencySummary is the percentile triple reported in experiment tables and
// JSON, in microseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

// Summary snapshots p50/p95/p99.
func (h *Hist) Summary() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		P50us: float64(h.Quantile(0.50)) / 1e3,
		P95us: float64(h.Quantile(0.95)) / 1e3,
		P99us: float64(h.Quantile(0.99)) / 1e3,
	}
}

// FormatLatency renders a summary as a compact table fragment.
func FormatLatency(s LatencySummary) string {
	return fmt.Sprintf("p50=%.0fus p95=%.0fus p99=%.0fus", s.P50us, s.P95us, s.P99us)
}
