package bench

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"bess/internal/baseline"
	"bess/internal/goleak"
	"bess/internal/proto"
	"bess/internal/rpc"
)

// gobBody is the baseline's inner encode pass: the reply value gob'd into
// the frame body (which the frame encoder then gobs again).
func gobBody(v any) []byte {
	var buf bytes.Buffer
	must(gob.NewEncoder(&buf).Encode(v))
	return buf.Bytes()
}

// --- E12: wire protocol — binary framed + coalesced vs double-gob ---
//
// The experiment isolates the message layer over real TCP loopback: the
// same method mix runs over the pre-E12 gob protocol (internal/baseline's
// GobPeer: body gob'd into the frame, frame gob'd onto an unbuffered
// socket) and the binary framed protocol (internal/rpc: length-prefixed
// frames, pooled buffers, leader/follower write coalescing). Axes: small
// concurrent calls (Lock-shaped, where coalescing and cheap encoding
// matter most) and sequential segment fetches (FetchSeg-shaped, where the
// second encode pass on big payloads matters).

// E12Result is one small-call throughput measurement.
type E12Result struct {
	Mode             string         `json:"mode"` // "gob" or "binary"
	Concurrency      int            `json:"concurrency"`
	Calls            int            `json:"calls"`
	Seconds          float64        `json:"seconds"`
	SmallCallsPerSec float64        `json:"small_calls_per_sec"`
	NsPerCall        float64        `json:"ns_per_call"`
	WireFlushes      int64          `json:"wire_flushes,omitempty"`     // binary only
	CoalescedFrames  int64          `json:"coalesced_frames,omitempty"` // binary only
	Latency          LatencySummary `json:"latency"`                    // per call
}

// E12Fetch is one segment-fetch bandwidth measurement.
type E12Fetch struct {
	Mode         string  `json:"mode"`
	Fetches      int     `json:"fetches"`
	PayloadBytes int     `json:"payload_bytes"`
	Seconds      float64 `json:"seconds"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// E12Report is the full experiment output (BENCH_E12.json).
type E12Report struct {
	SmallCalls   []E12Result `json:"small_calls"`
	SegmentFetch []E12Fetch  `json:"segment_fetch"`
}

// e12Caller is the per-protocol surface the harness drives: a small
// Lock-shaped call and a big FetchSeg-shaped call, plus teardown.
type e12Caller struct {
	lock  func() error
	fetch func() (int, error) // returns payload length
	stats func() rpc.Stats
	close func()
}

var e12Seg = proto.SegKey{Area: 1, Start: 128}

// e12Binary serves the binary protocol on loopback TCP and returns a caller
// bound to one shared client connection (concurrent callers share the
// connection — that is where write coalescing pays).
func e12Binary(payload []byte) *e12Caller {
	l, err := rpc.Listen("127.0.0.1:0")
	must(err)
	done := make(chan struct{})
	goleak.Go("bench.e12Accept", func() {
		defer close(done)
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			p.Handle("Lock", func(body []byte) ([]byte, error) {
				if _, _, _, _, err := proto.DecodeLockArgs(body); err != nil {
					return nil, err
				}
				return nil, nil
			})
			p.Handle("FetchSeg", func(body []byte) ([]byte, error) {
				if _, _, err := proto.DecodeFetchArgs(body); err != nil {
					return nil, err
				}
				return proto.EncodeSegImage(&proto.SegImage{Seg: e12Seg, Data: payload}), nil
			})
		}
	})
	c, err := rpc.Dial(l.Addr())
	must(err)
	return &e12Caller{
		lock: func() error {
			_, err := c.CallRaw("Lock", proto.AppendLockArgs(nil, 1, 42, e12Seg, proto.LockX))
			return err
		},
		fetch: func() (int, error) {
			rb, err := c.CallRaw("FetchSeg", proto.AppendFetchArgs(nil, 1, e12Seg))
			if err != nil {
				return 0, err
			}
			img, err := proto.DecodeSegImage(rb)
			if err != nil {
				return 0, err
			}
			return len(img.Data), nil
		},
		stats: c.WireStats,
		close: func() { c.Close(); l.Close(); <-done },
	}
}

// e12Gob serves the same mix over the baseline double-gob protocol.
func e12Gob(payload []byte) *e12Caller {
	l, err := baseline.GobListen("127.0.0.1:0")
	must(err)
	done := make(chan struct{})
	goleak.Go("bench.e12GobAccept", func() {
		defer close(done)
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			p.Handle("Lock", func(body []byte) ([]byte, error) {
				return gobBody(&proto.Empty{}), nil
			})
			p.Handle("FetchSeg", func(body []byte) ([]byte, error) {
				return gobBody(&proto.SegImage{Seg: e12Seg, Data: payload}), nil
			})
		}
	})
	c, err := baseline.GobDial(l.Addr())
	must(err)
	return &e12Caller{
		lock: func() error {
			return c.Call("Lock", &proto.LockArgs{Client: 1, Tx: 42, Seg: e12Seg, Mode: proto.LockX}, &proto.Empty{})
		},
		fetch: func() (int, error) {
			var img proto.SegImage
			if err := c.Call("FetchSeg", &proto.FetchDataArgs{Client: 1, Seg: e12Seg}, &img); err != nil {
				return 0, err
			}
			return len(img.Data), nil
		},
		stats: func() rpc.Stats { return rpc.Stats{} },
		close: func() { c.Close(); l.Close(); <-done },
	}
}

func e12Dial(mode string, payload []byte) *e12Caller {
	if mode == "gob" {
		return e12Gob(payload)
	}
	return e12Binary(payload)
}

// RunE12 measures small-call throughput for one (mode, concurrency) point:
// concurrency workers sharing one connection, each issuing callsPerWorker
// Lock-shaped calls.
func RunE12(mode string, concurrency, callsPerWorker int) E12Result {
	c := e12Dial(mode, nil)
	defer c.close()
	// Warm the path (gob type descriptors, pools, TCP window).
	for i := 0; i < 8; i++ {
		must(c.lock())
	}
	before := c.stats()
	var lat Hist
	start := time.Now()
	// Workers record their first failure and bail instead of panicking:
	// the join below always completes, and must() fires after it, so a
	// failed run never strands its siblings mid-call.
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		goleak.Go("bench.e12Worker", func() {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				t0 := time.Now()
				if err := c.lock(); err != nil {
					errs[w] = err
					return
				}
				lat.Observe(time.Since(t0))
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		must(err)
	}
	after := c.stats()
	calls := concurrency * callsPerWorker
	return E12Result{
		Mode:             mode,
		Concurrency:      concurrency,
		Calls:            calls,
		Seconds:          elapsed.Seconds(),
		SmallCallsPerSec: float64(calls) / elapsed.Seconds(),
		NsPerCall:        float64(elapsed.Nanoseconds()) / float64(calls),
		WireFlushes:      after.Flushes - before.Flushes,
		CoalescedFrames:  after.Coalesced - before.Coalesced,
		Latency:          lat.Summary(),
	}
}

// RunE12Fetch measures sequential segment-fetch bandwidth: fetches round
// trips each carrying payloadBytes of segment data back.
func RunE12Fetch(mode string, fetches, payloadBytes int) E12Fetch {
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	c := e12Dial(mode, payload)
	defer c.close()
	if n, err := c.fetch(); err != nil || n != payloadBytes {
		panic(fmt.Sprintf("e12 fetch warmup: n=%d err=%v", n, err))
	}
	start := time.Now()
	for i := 0; i < fetches; i++ {
		n, err := c.fetch()
		must(err)
		if n != payloadBytes {
			panic("e12 short fetch")
		}
	}
	elapsed := time.Since(start)
	mb := float64(fetches) * float64(payloadBytes) / (1 << 20)
	return E12Fetch{
		Mode:         mode,
		Fetches:      fetches,
		PayloadBytes: payloadBytes,
		Seconds:      elapsed.Seconds(),
		MBPerSec:     mb / elapsed.Seconds(),
	}
}

// FormatE12 renders a small-call row.
func FormatE12(r E12Result) string {
	return fmt.Sprintf("%-7s conc=%-3d %9.0f calls/s %8.0f ns/call flushes=%-6d coalesced=%-6d %s",
		r.Mode, r.Concurrency, r.SmallCallsPerSec, r.NsPerCall, r.WireFlushes, r.CoalescedFrames, FormatLatency(r.Latency))
}

// FormatE12Fetch renders a fetch-bandwidth row.
func FormatE12Fetch(r E12Fetch) string {
	return fmt.Sprintf("%-7s payload=%dKB %8.1f MB/s", r.Mode, r.PayloadBytes>>10, r.MBPerSec)
}
