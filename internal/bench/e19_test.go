package bench

import "testing"

// TestE19Corruption is the acceptance gate for the detect/repair pipeline:
// full enumeration normally, a sampled sweep under -short. Either way the
// hard invariants hold — zero silent wrong reads, every non-benign point
// detected, and (full run) at least 100 points with ≥90% repaired.
func TestE19Corruption(t *testing.T) {
	sample := 0
	if testing.Short() {
		sample = 6
	}
	rep, err := RunE19(42, sample)
	if err != nil {
		t.Fatalf("RunE19: %v", err)
	}
	t.Logf("E19: %d points — %d detected, %d repaired, %d quarantined, %d benign, %d silent (repaired frac %.3f)",
		rep.Points, rep.Detected, rep.Repaired, rep.Quarantined, rep.Benign, rep.Silent, rep.RepairedFrac)
	for _, f := range rep.Failures {
		t.Errorf("E19 failure: %s", f)
	}
	if rep.Silent != 0 {
		t.Fatalf("%d silent wrong reads", rep.Silent)
	}
	if rep.Detected != rep.Repaired+rep.Quarantined {
		t.Fatalf("detected %d != repaired %d + quarantined %d", rep.Detected, rep.Repaired, rep.Quarantined)
	}
	if rep.Points != rep.Detected+rep.Benign {
		t.Fatalf("points %d != detected %d + benign %d", rep.Points, rep.Detected, rep.Benign)
	}
	if !rep.Sampled {
		if rep.Points < 100 {
			t.Fatalf("only %d corruption points enumerated, want >= 100", rep.Points)
		}
		if rep.RepairedFrac < 0.9 {
			t.Fatalf("repaired fraction %.3f < 0.9", rep.RepairedFrac)
		}
	}
}
