package nodeserver

import (
	"encoding/binary"
	"testing"
	"time"

	"bess/internal/client"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/rpc"
	"bess/internal/segment"
	"bess/internal/server"
)

var nodeType = segment.TypeDesc{Name: "Node", Size: 16, RefOffsets: []int{0}}

func val(v uint64) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b[8:], v)
	return b
}

// env builds server ← RPC ← node server.
func env(t *testing.T) (*server.Server, *NodeServer) {
	t.Helper()
	srv := server.NewMem(1)
	t.Cleanup(func() { srv.Close() })
	cEnd, sEnd := rpc.Pipe()
	server.ServePeer(srv, sEnd)
	up := client.NewRemote(cEnd)
	ns, err := New(up, "node-1", 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ns
}

func TestLocalSessionsShareNodeCache(t *testing.T) {
	_, ns := env(t)
	s1, err := client.Open(ns, "app-A", "db", true)
	if err != nil {
		t.Fatal(err)
	}
	td, _ := s1.RegisterType(nodeType)
	seg, _ := s1.CreateSegment(1, 1, 2, -1)
	s1.Begin()
	addr, err := s1.CreateObject(seg, td.ID, val(5))
	if err != nil {
		t.Fatal(err)
	}
	s1.SetRoot("shared", addr)
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}

	before := ns.Snapshot()
	// Second local application: its fetch is served from the node cache,
	// not upstream.
	s2, err := client.Open(ns, "app-B", "db", false)
	if err != nil {
		t.Fatal(err)
	}
	s2.Begin()
	obj, err := s2.Root("shared")
	if err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	obj.Read(8, b[:])
	if binary.BigEndian.Uint64(b[:]) != 5 {
		t.Fatalf("value = %d", binary.BigEndian.Uint64(b[:]))
	}
	s2.Commit()
	after := ns.Snapshot()
	if after.UpstreamFetches != before.UpstreamFetches {
		t.Fatalf("node cache missed: %d -> %d upstream fetches", before.UpstreamFetches, after.UpstreamFetches)
	}
	if after.LocalHits <= before.LocalHits {
		t.Fatal("no local hits recorded")
	}
}

func TestIntraNodeInvalidation(t *testing.T) {
	_, ns := env(t)
	ns.RevokeTimeout = 300 * time.Millisecond
	s1, _ := client.Open(ns, "writer", "db", true)
	td, _ := s1.RegisterType(nodeType)
	seg, _ := s1.CreateSegment(1, 1, 2, -1)
	s1.Begin()
	addr, _ := s1.CreateObject(seg, td.ID, val(1))
	s1.SetRoot("x", addr)
	s1.Commit()

	s2, _ := client.Open(ns, "reader", "db", false)
	s2.Begin()
	if _, err := s2.Root("x"); err != nil {
		t.Fatal(err)
	}
	s2.Commit() // idle copy

	// Writer updates through the node: the reader's idle local copy drops.
	s1.Begin()
	obj, _ := s1.Deref(addr)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 2)
	if err := obj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if ns.Snapshot().LocalCallbacks == 0 {
		t.Fatal("no local callbacks issued")
	}

	// Reader sees the committed value.
	s2.Begin()
	obj2, err := s2.Root("x")
	if err != nil {
		t.Fatal(err)
	}
	obj2.Read(8, buf[:])
	if binary.BigEndian.Uint64(buf[:]) != 2 {
		t.Fatalf("reader sees %d", binary.BigEndian.Uint64(buf[:]))
	}
	s2.Commit()
}

func TestUpstreamCallbackReachesLocals(t *testing.T) {
	srv, ns := env(t)
	srv.CallbackTimeout = 500 * time.Millisecond
	// A local session on the node caches the segment.
	local, _ := client.Open(ns, "local", "db", true)
	td, _ := local.RegisterType(nodeType)
	seg, _ := local.CreateSegment(1, 1, 2, -1)
	local.Begin()
	addr, _ := local.CreateObject(seg, td.ID, val(7))
	local.SetRoot("y", addr)
	local.Commit()

	// A direct client (another "workstation") updates the same segment:
	// the server calls back the node server, which revokes the local copy.
	direct, err := client.Open(srv, "direct", "db", false)
	if err != nil {
		t.Fatal(err)
	}
	direct.Begin()
	dobj, err := direct.Root("y")
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 8)
	if err := dobj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := direct.Commit(); err != nil {
		t.Fatal(err)
	}
	if ns.Snapshot().Callbacks == 0 {
		t.Fatal("upstream callback never reached the node")
	}

	// The local session refetches fresh data.
	local.Begin()
	lobj, err := local.Root("y")
	if err != nil {
		t.Fatal(err)
	}
	lobj.Read(8, buf[:])
	if binary.BigEndian.Uint64(buf[:]) != 8 {
		t.Fatalf("local sees %d after upstream invalidation", binary.BigEndian.Uint64(buf[:]))
	}
	local.Commit()
}

func TestSharedMemoryModeOnNode(t *testing.T) {
	_, ns := env(t)
	s, _ := client.Open(ns, "seed", "db", true)
	// Write raw pages through the run interface so the shared cache has
	// real disk pages to serve.
	_, _, _, err := ns.AllocRun(s.DB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	areaID, start, _, err := ns.AllocRun(s.DB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	pageData := make([]byte, 2*page.Size)
	copy(pageData, []byte("shared-mode-page"))
	if err := ns.WriteRun(s.DB(), areaID, start, pageData); err != nil {
		t.Fatal(err)
	}

	p1, err := ns.AttachShared()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ns.AttachShared()
	if err != nil {
		t.Fatal(err)
	}
	id := page.ID{Area: page.AreaID(areaID), Page: page.No(start)}
	r1, err := p1.Access(id)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := p1.Read(r1, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared-mode-page" {
		t.Fatalf("p1 read %q", got)
	}
	// Second process sees the same page at the same shared ref, in place.
	r2, err := p2.Access(id)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatalf("refs differ: %v vs %v", r1, r2)
	}
	if err := p2.Write(r2, []byte("UPDATED")); err != nil {
		t.Fatal(err)
	}
	if err := p1.Read(r1, got[:7]); err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "UPDATED" {
		t.Fatalf("p1 sees %q after p2's in-place write", got[:7])
	}
	// Write-back reaches the server's disk.
	if err := ns.SharedCache().FlushDirty(); err != nil {
		t.Fatal(err)
	}
	back, err := ns.ReadRun(s.DB(), areaID, start, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(back[:7]) != "UPDATED" {
		t.Fatalf("disk has %q", back[:7])
	}
}

func TestReleasedRefCounting(t *testing.T) {
	_, ns := env(t)
	s1, _ := client.Open(ns, "a", "db", true)
	s2, _ := client.Open(ns, "b", "db", false)
	td, _ := s1.RegisterType(nodeType)
	seg, _ := s1.CreateSegment(1, 1, 2, -1)
	s1.Begin()
	addr, _ := s1.CreateObject(seg, td.ID, val(1))
	s1.SetRoot("r", addr)
	s1.Commit()
	s2.Begin()
	s2.Root("r")
	s2.Commit()

	// Only one of two locals releases: the node keeps its image.
	if err := ns.Released(s2.Client(), proto.SegKey(seg)); err != nil {
		t.Fatal(err)
	}
	ns.mu.Lock()
	_, still := ns.images[seg]
	ns.mu.Unlock()
	if !still {
		t.Fatal("image dropped while a local still holds a copy")
	}
}
