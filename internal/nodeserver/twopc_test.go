package nodeserver

import (
	"encoding/binary"
	"testing"

	"bess/internal/client"
)

// TestTwoPCThroughNodeServer runs prepare/decide through the node-server
// pass-through: a local application commits a distributed-style transaction
// whose single branch is reached via the node.
func TestTwoPCThroughNodeServer(t *testing.T) {
	_, ns := env(t)
	s, err := client.Open(ns, "app", "db", true)
	if err != nil {
		t.Fatal(err)
	}
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)

	s.Begin()
	addr, err := s.CreateObject(seg, td.ID, val(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoot("x", addr); err != nil {
		t.Fatal(err)
	}
	if err := s.PrepareCommit(); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCommit(true); err != nil {
		t.Fatal(err)
	}

	// Visible through a fresh local application.
	s2, _ := client.Open(ns, "app2", "db", false)
	s2.Begin()
	obj, err := s2.Root("x")
	if err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	obj.Read(8, b[:])
	if binary.BigEndian.Uint64(b[:]) != 11 {
		t.Fatalf("value = %d", binary.BigEndian.Uint64(b[:]))
	}
	s2.Commit()
}

// TestTwoPCAbortThroughNodeServer: the abort decision rolls the branch back.
func TestTwoPCAbortThroughNodeServer(t *testing.T) {
	_, ns := env(t)
	s, _ := client.Open(ns, "app", "db", true)
	td, _ := s.RegisterType(nodeType)
	seg, _ := s.CreateSegment(1, 1, 2, -1)
	s.Begin()
	addr, _ := s.CreateObject(seg, td.ID, val(1))
	s.SetRoot("y", addr)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	s.Begin()
	obj, _ := s.Root("y")
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 999)
	if err := obj.Write(8, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := s.PrepareCommit(); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishCommit(false); err != nil {
		t.Fatal(err)
	}

	s2, _ := client.Open(ns, "app2", "db", false)
	s2.Begin()
	obj2, err := s2.Root("y")
	if err != nil {
		t.Fatal(err)
	}
	obj2.Read(8, buf[:])
	if binary.BigEndian.Uint64(buf[:]) != 1 {
		t.Fatalf("aborted branch visible: %d", binary.BigEndian.Uint64(buf[:]))
	}
	s2.Commit()
}
