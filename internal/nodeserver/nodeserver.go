// Package nodeserver implements the BeSS node server (paper §3, Figure 2):
// a BeSS server that owns no storage areas. It is a client of the real BeSS
// servers and acts as a server for the applications on its node: it
// establishes the node's cache, fetches data on behalf of local
// applications, acquires locks for them, and answers callback requests from
// the owning servers.
//
// Local applications use it two ways (paper §4.1): copy-on-access sessions
// treat it as their proto.Conn — fetches are served from the node's image
// cache when possible — and shared-memory processes attach to the node's
// shm.SharedCache and operate on cached pages in place.
package nodeserver

import (
	"errors"
	"sync"
	"time"

	"bess/internal/oid"
	"bess/internal/page"
	"bess/internal/proto"
	"bess/internal/shm"
)

// Errors returned by the node server.
var (
	ErrRevocation = errors.New("nodeserver: local copy revocation timed out")
)

// Stats are node-server counters: upstream traffic vs locally served
// requests (E2 and E6 read them).
type Stats struct {
	UpstreamFetches int64 // segment fetches forwarded to owning servers
	LocalHits       int64 // fetches served from the node cache
	Callbacks       int64 // revocations received from upstream
	LocalCallbacks  int64 // revocations forwarded to local applications
}

// cachedSeg is the node's cached image of one object segment.
type cachedSeg struct {
	slotted  []byte
	overflow []byte
	data     []byte // nil until fetched
}

// NodeServer is the node-local BeSS process.
type NodeServer struct {
	up     proto.Conn
	client uint32 // the node server's upstream client id

	mu        sync.Mutex
	locals    map[uint32]func(proto.SegKey) (bool, error)
	nextLocal uint32
	copies    map[proto.SegKey]map[uint32]bool
	images    map[proto.SegKey]*cachedSeg
	defaultDB uint32

	sc *shm.SharedCache

	stats struct {
		upstream, hits, callbacks, localCallbacks int64
	}

	// RevokeTimeout bounds local revocation loops.
	RevokeTimeout time.Duration
}

// New attaches a node server to an upstream connection (typically a
// client.Remote to a BeSS server). cacheSlots/frames size the node's shared
// cache for shared-memory-mode processes.
func New(up proto.Conn, name string, cacheSlots, frames int) (*NodeServer, error) {
	id, err := up.Hello(name)
	if err != nil {
		return nil, err
	}
	ns := &NodeServer{
		up:            up,
		client:        id,
		locals:        make(map[uint32]func(proto.SegKey) (bool, error)),
		copies:        make(map[proto.SegKey]map[uint32]bool),
		images:        make(map[proto.SegKey]*cachedSeg),
		RevokeTimeout: time.Second,
	}
	sc, err := shm.NewSharedCache(cacheSlots, frames, &pageBacking{ns: ns})
	if err != nil {
		return nil, err
	}
	ns.sc = sc
	// Upstream revocations arrive here; forward to the locals.
	type callbackSetter interface {
		SetCallback(uint32, func(proto.SegKey) (bool, error)) error
	}
	switch c := up.(type) {
	case interface {
		SetCallback(func(proto.SegKey) bool)
	}:
		c.SetCallback(func(k proto.SegKey) bool { return ns.onUpstreamCallback(k) })
	case callbackSetter:
		if err := c.SetCallback(id, func(k proto.SegKey) (bool, error) {
			return ns.onUpstreamCallback(k), nil
		}); err != nil {
			return nil, err
		}
	}
	return ns, nil
}

// Snapshot returns the node's counters.
func (ns *NodeServer) Snapshot() Stats {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return Stats{
		UpstreamFetches: ns.stats.upstream,
		LocalHits:       ns.stats.hits,
		Callbacks:       ns.stats.callbacks,
		LocalCallbacks:  ns.stats.localCallbacks,
	}
}

// SharedCache exposes the node's shared cache for shared-memory-mode
// processes (Figure 3).
func (ns *NodeServer) SharedCache() *shm.SharedCache { return ns.sc }

// AttachShared attaches a shared-memory-mode process.
func (ns *NodeServer) AttachShared() (*shm.Process, error) { return ns.sc.Attach() }

// onUpstreamCallback revokes the node's copy of seg: every local copy must
// drop first, then the image cache and shared cache entries go.
func (ns *NodeServer) onUpstreamCallback(seg proto.SegKey) (refused bool) {
	ns.mu.Lock()
	ns.stats.callbacks++
	ns.mu.Unlock()
	if ns.revokeLocals(seg, 0) != nil {
		return true
	}
	ns.dropImage(seg)
	return false
}

// revokeLocals asks every local holder except `except` to drop seg.
func (ns *NodeServer) revokeLocals(seg proto.SegKey, except uint32) error {
	deadline := time.Now().Add(ns.RevokeTimeout)
	for {
		ns.mu.Lock()
		var cbs []func(proto.SegKey) (bool, error)
		var ids []uint32
		for lid := range ns.copies[seg] {
			if lid == except {
				continue
			}
			if cb := ns.locals[lid]; cb != nil {
				cbs = append(cbs, cb)
				ids = append(ids, lid)
			}
		}
		ns.mu.Unlock()
		if len(cbs) == 0 {
			return nil
		}
		anyRefused := false
		for i, cb := range cbs {
			ns.mu.Lock()
			ns.stats.localCallbacks++
			ns.mu.Unlock()
			refused, err := cb(seg)
			if err != nil || refused {
				anyRefused = true
				continue
			}
			ns.mu.Lock()
			if set := ns.copies[seg]; set != nil {
				delete(set, ids[i])
				if len(set) == 0 {
					delete(ns.copies, seg)
				}
			}
			ns.mu.Unlock()
		}
		if !anyRefused {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrRevocation
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (ns *NodeServer) dropImage(seg proto.SegKey) {
	ns.mu.Lock()
	delete(ns.images, seg)
	ns.mu.Unlock()
}

// --- proto.Conn for local applications ---

// Hello registers a local application. Upstream there is only one client —
// the node server itself.
func (ns *NodeServer) Hello(name string) (uint32, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.nextLocal++
	id := ns.nextLocal
	ns.locals[id] = nil
	return id, nil
}

// SetCallback installs a local application's revocation handler.
func (ns *NodeServer) SetCallback(local uint32, cb func(proto.SegKey) (bool, error)) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.locals[local]; !ok {
		return errors.New("nodeserver: unknown local client")
	}
	ns.locals[local] = cb
	return nil
}

// OpenDB delegates upstream.
func (ns *NodeServer) OpenDB(name string, create bool) (uint32, uint16, error) {
	db, host, err := ns.up.OpenDB(name, create)
	if err == nil {
		ns.mu.Lock()
		ns.defaultDB = db
		ns.mu.Unlock()
	}
	return db, host, err
}

// NewTx delegates upstream.
func (ns *NodeServer) NewTx() (uint64, error) { return ns.up.NewTx() }

// RegisterType delegates upstream.
func (ns *NodeServer) RegisterType(db uint32, t proto.TypeInfo) (proto.TypeInfo, error) {
	return ns.up.RegisterType(db, t)
}

// Types delegates upstream.
func (ns *NodeServer) Types(db uint32) ([]proto.TypeInfo, error) { return ns.up.Types(db) }

// AddArea delegates upstream.
func (ns *NodeServer) AddArea(db uint32) (uint32, error) { return ns.up.AddArea(db) }

// NewFileID delegates upstream.
func (ns *NodeServer) NewFileID(db uint32) (uint32, error) { return ns.up.NewFileID(db) }

// CreateSegment delegates upstream.
func (ns *NodeServer) CreateSegment(db, fileID uint32, slottedPages, dataPages, areaHint int) (proto.SegKey, error) {
	return ns.up.CreateSegment(db, fileID, slottedPages, dataPages, areaHint)
}

// SegInfo delegates upstream.
func (ns *NodeServer) SegInfo(seg proto.SegKey) (int, error) { return ns.up.SegInfo(seg) }

// FetchSlotted serves from the node cache when possible; otherwise it
// fetches upstream under the node server's client id and caches the image.
func (ns *NodeServer) FetchSlotted(local uint32, seg proto.SegKey) ([]byte, []byte, error) {
	ns.mu.Lock()
	img := ns.images[seg]
	if img != nil {
		ns.stats.hits++
		ns.recordCopyLocked(seg, local)
		sl, ov := img.slotted, img.overflow
		ns.mu.Unlock()
		return sl, ov, nil
	}
	ns.mu.Unlock()
	sl, ov, err := ns.up.FetchSlotted(ns.client, seg)
	if err != nil {
		return nil, nil, err
	}
	ns.mu.Lock()
	ns.stats.upstream++
	ns.images[seg] = &cachedSeg{slotted: sl, overflow: ov}
	ns.recordCopyLocked(seg, local)
	ns.mu.Unlock()
	return sl, ov, nil
}

func (ns *NodeServer) recordCopyLocked(seg proto.SegKey, local uint32) {
	set := ns.copies[seg]
	if set == nil {
		set = make(map[uint32]bool)
		ns.copies[seg] = set
	}
	set[local] = true
}

// FetchData serves from the node cache when possible.
func (ns *NodeServer) FetchData(local uint32, seg proto.SegKey) ([]byte, error) {
	ns.mu.Lock()
	if img := ns.images[seg]; img != nil && img.data != nil {
		ns.stats.hits++
		d := img.data
		ns.mu.Unlock()
		return d, nil
	}
	ns.mu.Unlock()
	d, err := ns.up.FetchData(ns.client, seg)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	ns.stats.upstream++
	if img := ns.images[seg]; img != nil {
		img.data = d
	}
	ns.mu.Unlock()
	return d, nil
}

// FetchSeg serves the combined fetch from the node cache when all three
// images are present; otherwise one upstream FetchSeg fills the whole cache
// entry (a cold touch through the node costs one upstream round trip).
func (ns *NodeServer) FetchSeg(local uint32, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	ns.mu.Lock()
	if img := ns.images[seg]; img != nil && img.data != nil {
		ns.stats.hits++
		ns.recordCopyLocked(seg, local)
		sl, ov, d := img.slotted, img.overflow, img.data
		ns.mu.Unlock()
		return sl, ov, d, nil
	}
	ns.mu.Unlock()
	sl, ov, d, err := ns.up.FetchSeg(ns.client, seg)
	if err != nil {
		return nil, nil, nil, err
	}
	ns.mu.Lock()
	ns.stats.upstream++
	ns.images[seg] = &cachedSeg{slotted: sl, overflow: ov, data: d}
	ns.recordCopyLocked(seg, local)
	ns.mu.Unlock()
	return sl, ov, d, nil
}

// SnapOpen forwards: snapshots live on the owning server, whose commit
// stamps define the version clock. Node-cached images are never served to a
// snapshot — they track the live state, not the as-of one.
func (ns *NodeServer) SnapOpen(local uint32) (uint64, uint64, error) {
	ns.mu.Lock()
	ns.stats.upstream++
	ns.mu.Unlock()
	return ns.up.SnapOpen(ns.client)
}

// SnapClose forwards.
func (ns *NodeServer) SnapClose(local uint32, snap uint64) error {
	ns.mu.Lock()
	ns.stats.upstream++
	ns.mu.Unlock()
	return ns.up.SnapClose(ns.client, snap)
}

// SnapFetchSeg forwards (as-of images bypass the node image cache).
func (ns *NodeServer) SnapFetchSeg(local uint32, snap uint64, seg proto.SegKey) ([]byte, []byte, []byte, error) {
	ns.mu.Lock()
	ns.stats.upstream++
	ns.mu.Unlock()
	return ns.up.SnapFetchSeg(ns.client, snap, seg)
}

// FetchLarge delegates upstream (large objects are not image-cached).
func (ns *NodeServer) FetchLarge(local uint32, seg proto.SegKey, slot int) ([]byte, error) {
	ns.mu.Lock()
	ns.stats.upstream++
	ns.mu.Unlock()
	return ns.up.FetchLarge(ns.client, seg, slot)
}

// Resolve delegates upstream.
func (ns *NodeServer) Resolve(db uint32, headerOff uint64) (proto.SegKey, int, error) {
	return ns.up.Resolve(db, headerOff)
}

// Lock acquires upstream under the node server's client id (the node server
// "acquires locks on behalf of the local applications").
func (ns *NodeServer) Lock(local uint32, tx uint64, seg proto.SegKey, mode proto.LockMode) error {
	if err := ns.up.Lock(ns.client, tx, seg, mode); err != nil {
		return err
	}
	// Intra-node consistency: an exclusive intent revokes the other local
	// applications' copies before the write proceeds.
	if mode == proto.LockX || mode == proto.LockSIX || mode == proto.LockIX {
		if err := ns.revokeLocals(seg, local); err != nil {
			return err
		}
	}
	return nil
}

// LockObject forwards under the node server's client id. Object locks are
// logical; cache revocation stays tied to segment X locks.
func (ns *NodeServer) LockObject(local uint32, tx uint64, seg proto.SegKey, slot int, mode proto.LockMode) error {
	return ns.up.LockObject(ns.client, tx, seg, slot, mode)
}

// Commit invalidates the node's images of the shipped segments (their disk
// state changes) and forwards.
func (ns *NodeServer) Commit(local uint32, tx uint64, segs []proto.SegImage) error {
	if err := ns.up.Commit(ns.client, tx, segs); err != nil {
		return err
	}
	// Refresh image cache with the committed state so other locals see it.
	ns.mu.Lock()
	for _, si := range segs {
		ns.images[si.Seg] = &cachedSeg{slotted: si.Slotted, overflow: si.Overflow, data: si.Data}
	}
	ns.mu.Unlock()
	return nil
}

// Abort forwards.
func (ns *NodeServer) Abort(local uint32, tx uint64) error {
	return ns.up.Abort(ns.client, tx)
}

// Prepare forwards the 2PC vote.
func (ns *NodeServer) Prepare(local uint32, tx uint64, segs []proto.SegImage) error {
	err := ns.up.Prepare(ns.client, tx, segs)
	if err == nil {
		ns.mu.Lock()
		for _, si := range segs {
			ns.images[si.Seg] = &cachedSeg{slotted: si.Slotted, overflow: si.Overflow, data: si.Data}
		}
		ns.mu.Unlock()
	}
	return err
}

// Decide forwards the 2PC decision.
func (ns *NodeServer) Decide(tx uint64, commit bool) error { return ns.up.Decide(tx, commit) }

// SegmentsOf delegates upstream.
func (ns *NodeServer) SegmentsOf(db, fileID uint32) ([]proto.SegKey, error) {
	return ns.up.SegmentsOf(db, fileID)
}

// Released drops a local copy; the upstream copy is released only when no
// local still caches the segment.
func (ns *NodeServer) Released(local uint32, seg proto.SegKey) error {
	ns.mu.Lock()
	if set := ns.copies[seg]; set != nil {
		delete(set, local)
		if len(set) > 0 {
			ns.mu.Unlock()
			return nil
		}
		delete(ns.copies, seg)
	}
	delete(ns.images, seg)
	ns.mu.Unlock()
	return ns.up.Released(ns.client, seg)
}

// CreateLarge forwards and invalidates the image.
func (ns *NodeServer) CreateLarge(local uint32, tx uint64, seg proto.SegKey, typ uint32, content []byte) (int, error) {
	slot, err := ns.up.CreateLarge(ns.client, tx, seg, typ, content)
	if err == nil {
		ns.dropImage(seg)
	}
	return slot, err
}

// AllocRun forwards.
func (ns *NodeServer) AllocRun(db uint32, nPages int) (uint32, int64, int, error) {
	return ns.up.AllocRun(db, nPages)
}

// FreeRun forwards.
func (ns *NodeServer) FreeRun(db, area uint32, start int64) error {
	return ns.up.FreeRun(db, area, start)
}

// ReadRun forwards.
func (ns *NodeServer) ReadRun(db, area uint32, start int64, nPages int) ([]byte, error) {
	return ns.up.ReadRun(db, area, start, nPages)
}

// WriteRun forwards.
func (ns *NodeServer) WriteRun(db, area uint32, start int64, data []byte) error {
	return ns.up.WriteRun(db, area, start, data)
}

// NameBind forwards.
func (ns *NodeServer) NameBind(db uint32, name string, o oid.OID) error {
	return ns.up.NameBind(db, name, o)
}

// NameLookup forwards.
func (ns *NodeServer) NameLookup(db uint32, name string) (oid.OID, error) {
	return ns.up.NameLookup(db, name)
}

// NameUnbind forwards.
func (ns *NodeServer) NameUnbind(db uint32, name string) error {
	return ns.up.NameUnbind(db, name)
}

// NameRemoveOID forwards.
func (ns *NodeServer) NameRemoveOID(db uint32, o oid.OID) error {
	return ns.up.NameRemoveOID(db, o)
}

var _ proto.Conn = (*NodeServer)(nil)

// pageBacking adapts the upstream raw-run interface to the shared cache's
// page fetch/write-back.
type pageBacking struct{ ns *NodeServer }

func (b *pageBacking) Fetch(id page.ID) ([]byte, error) {
	b.ns.mu.Lock()
	db := b.ns.defaultDB
	b.ns.mu.Unlock()
	return b.ns.up.ReadRun(db, uint32(id.Area), int64(id.Page), 1)
}

func (b *pageBacking) WriteBack(id page.ID, data []byte) error {
	b.ns.mu.Lock()
	db := b.ns.defaultDB
	b.ns.mu.Unlock()
	return b.ns.up.WriteRun(db, uint32(id.Area), int64(id.Page), data)
}
