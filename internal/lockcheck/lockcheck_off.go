//go:build !lockcheck

package lockcheck

import "sync"

// Enabled reports whether runtime lock-order checking is compiled in.
const Enabled = false

// Mutex is sync.Mutex when the lockcheck tag is absent. Lock, TryLock, and
// Unlock are promoted from the embedded primitive, so there is no wrapper
// overhead at all.
type Mutex struct {
	sync.Mutex
}

// Init names the lock and assigns its hierarchy rank. No-op in this build.
func (m *Mutex) Init(name string, rank Rank) {}

// RWMutex is sync.RWMutex when the lockcheck tag is absent.
type RWMutex struct {
	sync.RWMutex
}

// Init names the lock and assigns its hierarchy rank. No-op in this build.
func (m *RWMutex) Init(name string, rank Rank) {}
