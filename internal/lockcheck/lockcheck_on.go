//go:build lockcheck

package lockcheck

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

// Enabled reports whether runtime lock-order checking is compiled in.
const Enabled = true

// held is one entry in a goroutine's held-lock set.
type held struct {
	key    uintptr // identity of the lock instance
	name   string
	rank   Rank
	shared bool   // held via RLock
	site   string // file:line of the acquisition
}

var registry struct {
	mu sync.Mutex
	g  map[uint64][]held // goroutine id -> locks held, acquisition order
}

func init() { registry.g = make(map[uint64][]held) }

// gid returns the current goroutine's id by parsing the first line of its
// stack trace ("goroutine N [running]:"). Only compiled under the lockcheck
// tag, where the cost is accepted.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func callsite() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "?"
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// acquire validates and records taking the lock identified by key.
func acquire(key uintptr, name string, rank Rank, shared bool, site string) {
	g := gid()
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, h := range registry.g[g] {
		if h.key == key {
			kind := "Lock"
			if shared && h.shared {
				kind = "recursive RLock (deadlocks against a queued writer)"
			} else if shared || h.shared {
				kind = "read/write re-entry"
			}
			panic(fmt.Sprintf("lockcheck: goroutine %d re-acquires %s at %s (already held since %s): %s",
				g, lockName(name), site, h.site, kind))
		}
		if rank != 0 && h.rank != 0 && h.rank >= rank {
			panic(fmt.Sprintf("lockcheck: goroutine %d acquires %s (rank %d) at %s while holding %s (rank %d, taken at %s); declared order requires %s before %s",
				g, lockName(name), rank, site, lockName(h.name), h.rank, h.site, lockName(name), lockName(h.name)))
		}
	}
	registry.g[g] = append(registry.g[g], held{key: key, name: name, rank: rank, shared: shared, site: site})
}

// release removes the newest matching entry. Unlocking a lock this goroutine
// does not hold is ignored rather than flagged: hand-off patterns (lock in
// one goroutine, unlock in another) are legal for sync.Mutex.
func release(key uintptr, shared bool) {
	g := gid()
	registry.mu.Lock()
	defer registry.mu.Unlock()
	hs := registry.g[g]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].key == key && hs[i].shared == shared {
			registry.g[g] = append(hs[:i], hs[i+1:]...)
			if len(registry.g[g]) == 0 {
				delete(registry.g, g)
			}
			return
		}
	}
}

func lockName(name string) string {
	if name == "" {
		return "<unnamed lock>"
	}
	return name
}

// HeldByCurrent returns the names of locks the calling goroutine holds, in
// acquisition order (tests and diagnostics).
func HeldByCurrent() []string {
	g := gid()
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var out []string
	for _, h := range registry.g[g] {
		out = append(out, lockName(h.name))
	}
	return out
}

// Mutex is a rank-checked mutual exclusion lock.
type Mutex struct {
	mu   sync.Mutex
	name string
	rank Rank
}

// Init names the lock and assigns its hierarchy rank. Call before first use
// (typically in the owning value's constructor).
func (m *Mutex) Init(name string, rank Rank) { m.name, m.rank = name, rank }

// Lock acquires the mutex after validating the hierarchy.
func (m *Mutex) Lock() {
	acquire(uintptr(unsafe.Pointer(m)), m.name, m.rank, false, callsite())
	m.mu.Lock()
}

// TryLock attempts the acquisition; the hierarchy is validated only on
// success (a failed try holds nothing).
func (m *Mutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	acquire(uintptr(unsafe.Pointer(m)), m.name, m.rank, false, callsite())
	return true
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	m.mu.Unlock()
	release(uintptr(unsafe.Pointer(m)), false)
}

// RWMutex is a rank-checked reader/writer lock.
type RWMutex struct {
	mu   sync.RWMutex
	name string
	rank Rank
}

// Init names the lock and assigns its hierarchy rank. Call before first use.
func (m *RWMutex) Init(name string, rank Rank) { m.name, m.rank = name, rank }

// Lock acquires the write lock after validating the hierarchy.
func (m *RWMutex) Lock() {
	acquire(uintptr(unsafe.Pointer(m)), m.name, m.rank, false, callsite())
	m.mu.Lock()
}

// TryLock attempts the write acquisition.
func (m *RWMutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	acquire(uintptr(unsafe.Pointer(m)), m.name, m.rank, false, callsite())
	return true
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {
	m.mu.Unlock()
	release(uintptr(unsafe.Pointer(m)), false)
}

// RLock acquires the read lock. Recursive RLock of the same instance panics:
// with a writer queued between the two acquisitions, the second RLock blocks
// behind the writer, which blocks behind the first — a deadlock the race
// detector cannot see.
func (m *RWMutex) RLock() {
	acquire(uintptr(unsafe.Pointer(m)), m.name, m.rank, true, callsite())
	m.mu.RLock()
}

// TryRLock attempts the read acquisition.
func (m *RWMutex) TryRLock() bool {
	if !m.mu.TryRLock() {
		return false
	}
	acquire(uintptr(unsafe.Pointer(m)), m.name, m.rank, true, callsite())
	return true
}

// RUnlock releases the read lock.
func (m *RWMutex) RUnlock() {
	m.mu.RUnlock()
	release(uintptr(unsafe.Pointer(m)), true)
}
