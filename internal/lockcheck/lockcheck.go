// Package lockcheck provides drop-in replacements for sync.Mutex and
// sync.RWMutex that, when built with the `lockcheck` tag, validate the
// declared lock hierarchy at runtime: every goroutine's held-lock set is
// tracked, and acquiring a lock whose rank is not strictly greater than
// every ranked lock already held panics with both acquisition sites.
// Recursive acquisition of the same instance — including the subtle
// recursive-RLock case, which deadlocks against a queued writer — also
// panics.
//
// Without the tag the wrappers are zero-cost passthroughs: the sync
// primitive is embedded, Init is an empty function, and no per-goroutine
// state exists.
//
// Ranks mirror the static declaration parsed by cmd/bess-vet (see
// internal/server/lockorder.go): lower rank = acquired earlier (outermost).
// Rank 0 means unranked — the lock participates in recursion detection but
// not in ordering checks.
package lockcheck

// Rank is a lock's position in the declared hierarchy. A goroutine may only
// acquire a lock whose rank is strictly greater than the rank of every
// ranked lock it already holds. Rank 0 is unranked.
type Rank int
