//go:build lockcheck

package lockcheck

import (
	"strings"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

func TestHierarchyViolationPanics(t *testing.T) {
	var outer, inner Mutex
	outer.Init("outer", 10)
	inner.Init("inner", 20)

	// Correct order: outer (10) then inner (20).
	outer.Lock()
	inner.Lock()
	inner.Unlock()
	outer.Unlock()

	// Violating order: inner (20) held while acquiring outer (10).
	inner.Lock()
	defer inner.Unlock()
	mustPanic(t, "declared order requires", func() { outer.Lock() })
}

func TestEqualRankPanics(t *testing.T) {
	var a, b Mutex
	a.Init("shardA", 40)
	b.Init("shardB", 40)
	a.Lock()
	defer a.Unlock()
	mustPanic(t, "declared order requires", func() { b.Lock() })
}

func TestRecursiveLockPanics(t *testing.T) {
	var m Mutex
	m.Init("m", 0)
	m.Lock()
	defer m.Unlock()
	mustPanic(t, "re-acquires", func() { m.Lock() })
}

func TestRecursiveRLockPanics(t *testing.T) {
	var m RWMutex
	m.Init("rw", 0)
	m.RLock()
	defer m.RUnlock()
	mustPanic(t, "recursive RLock", func() { m.RLock() })
}

func TestUnrankedLocksIgnoreOrdering(t *testing.T) {
	var ranked, unranked Mutex
	ranked.Init("ranked", 30)
	unranked.Init("", 0)
	ranked.Lock()
	unranked.Lock() // unranked inside ranked: fine
	unranked.Unlock()
	ranked.Unlock()
	unranked.Lock()
	ranked.Lock() // ranked inside unranked: also fine
	ranked.Unlock()
	unranked.Unlock()
}

func TestHeldSetsArePerGoroutine(t *testing.T) {
	var hi, lo Mutex
	hi.Init("hi", 20)
	lo.Init("lo", 10)
	hi.Lock()
	defer hi.Unlock()
	// Another goroutine acquiring in opposite rank direction is not a
	// violation of the per-goroutine discipline by itself.
	done := make(chan struct{})
	go func() {
		defer close(done)
		lo.Lock()
		lo.Unlock()
	}()
	<-done
	if got := HeldByCurrent(); len(got) != 1 || got[0] != "hi" {
		t.Fatalf("HeldByCurrent = %v, want [hi]", got)
	}
}

func TestCondInteropTracksWaitHandoff(t *testing.T) {
	// sync.Cond calls L.Unlock/L.Lock through the wrapper, so the held set
	// stays accurate across Wait.
	var m Mutex
	m.Init("cond-guard", 0)
	c := sync.NewCond(&m)
	ready := false
	go func() {
		m.Lock()
		ready = true
		c.Broadcast()
		m.Unlock()
	}()
	m.Lock()
	for !ready {
		c.Wait()
	}
	if got := HeldByCurrent(); len(got) != 1 {
		t.Fatalf("after Wait: held = %v, want the guard only", got)
	}
	m.Unlock()
	if got := HeldByCurrent(); len(got) != 0 {
		t.Fatalf("after Unlock: held = %v, want empty", got)
	}
}
