//go:build !lockcheck

package lockcheck

import (
	"sync"
	"testing"
)

// The passthrough build must behave exactly like the sync primitives:
// nesting in any order, recursion-free usage, and sync.Cond interop.
func TestPassthrough(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the lockcheck tag")
	}
	var a, b Mutex
	a.Init("a", 10)
	b.Init("b", 20)
	b.Lock()
	a.Lock() // out of rank order: permitted, nothing is checked
	a.Unlock()
	b.Unlock()

	var rw RWMutex
	rw.Init("rw", 0)
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
	if !rw.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	rw.Unlock()

	var m Mutex
	c := sync.NewCond(&m)
	m.Lock()
	c.Broadcast()
	m.Unlock()
}
