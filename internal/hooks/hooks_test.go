package hooks

import (
	"bytes"
	"errors"
	"testing"
)

func TestRegisterAndFire(t *testing.T) {
	r := NewRegistry()
	commits := 0
	id, err := r.Register(EvTxCommit, func(i *Info) error {
		commits++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := r.Fire(EvTxCommit, k); err != nil {
			t.Fatal(err)
		}
	}
	if commits != 3 {
		t.Fatalf("commits = %d", commits)
	}
	if r.Fired(EvTxCommit) != 3 {
		t.Fatalf("Fired = %d", r.Fired(EvTxCommit))
	}
	r.Unregister(id)
	if r.Count(EvTxCommit) != 0 {
		t.Fatal("unregister failed")
	}
	if err := r.Fire(EvTxCommit, nil); err != nil {
		t.Fatal(err)
	}
	if commits != 3 {
		t.Fatal("hook ran after unregister")
	}
}

func TestFireOrderAndErrorStops(t *testing.T) {
	r := NewRegistry()
	var order []int
	boom := errors.New("boom")
	r.Register(EvDeadlock, func(*Info) error { order = append(order, 1); return nil })
	r.Register(EvDeadlock, func(*Info) error { order = append(order, 2); return boom })
	r.Register(EvDeadlock, func(*Info) error { order = append(order, 3); return nil })
	err := r.Fire(EvDeadlock, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestTransformHook(t *testing.T) {
	// The compression use case from §2.4: a flush hook rewrites the bytes.
	r := NewRegistry()
	r.Register(EvObjectFlush, func(i *Info) error {
		// "Compress" by run-length trimming trailing zeros.
		b := bytes.TrimRight(*i.Data, "\x00")
		*i.Data = b
		return nil
	})
	data := append([]byte("payload"), make([]byte, 100)...)
	if err := r.FireData(EvObjectFlush, nil, &data); err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("transformed data = %q", data)
	}
}

func TestValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(numEvents, func(*Info) error { return nil }); err == nil {
		t.Fatal("bad event accepted")
	}
	if _, err := r.Register(EvTxBegin, nil); err == nil {
		t.Fatal("nil hook accepted")
	}
	if err := r.Fire(numEvents, nil); err == nil {
		t.Fatal("bad event fired")
	}
	r.Unregister(999) // no-op
	if r.Count(numEvents) != 0 || r.Fired(numEvents) != 0 {
		t.Fatal("bad event counters")
	}
}

func TestPayloadDelivery(t *testing.T) {
	r := NewRegistry()
	var got any
	r.Register(EvSegmentFault, func(i *Info) error {
		got = i.Payload
		if i.Event != EvSegmentFault {
			t.Errorf("event = %v", i.Event)
		}
		return nil
	})
	r.Fire(EvSegmentFault, "seg-1:10")
	if got != "seg-1:10" {
		t.Fatalf("payload = %v", got)
	}
}

func TestEventStrings(t *testing.T) {
	if EvDatabaseOpen.String() != "database-open" || EvProtViolation.String() != "prot-violation" {
		t.Fatal("event strings")
	}
	if Event(200).String() == "" {
		t.Fatal("unknown event string empty")
	}
}
