// Package hooks implements BeSS primitive events and hook functions
// (paper §2.4).
//
// Programmers get controlled access to entry points in the storage system by
// registering hook functions against primitive events — segment fault or
// replacement, database open, locking, transaction commit, deadlocks, and
// the protection-violation signals (SIGSEGV/SIGBUS analogues). BeSS traps
// each event as it occurs and runs the associated hooks, letting users
// enhance or modify behaviour without touching application code or BeSS
// internals — e.g. counting commits, or compressing large objects on store
// and decompressing them on fetch.
package hooks

import (
	"fmt"
	"sync"
)

// Event is a primitive event.
type Event uint8

// The primitive events BeSS traps (§2.4 lists segment fault or replacement,
// database open, locking, transaction commit, deadlocks, plus the hardware
// protection-violation signals; flush/fetch transform points support the
// compression use case).
const (
	EvDatabaseOpen Event = iota
	EvDatabaseClose
	EvSegmentFault
	EvSegmentReplace
	EvLockAcquire
	EvLockRelease
	EvTxBegin
	EvTxCommit
	EvTxAbort
	EvDeadlock
	EvProtViolation // SIGSEGV/SIGBUS analogue
	EvObjectFetch   // transform point: large object fetched from disk
	EvObjectFlush   // transform point: large object about to be stored
	numEvents
)

// String names the event.
func (e Event) String() string {
	names := [...]string{
		"database-open", "database-close", "segment-fault", "segment-replace",
		"lock-acquire", "lock-release", "tx-begin", "tx-commit", "tx-abort",
		"deadlock", "prot-violation", "object-fetch", "object-flush",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Info carries event details to hooks. Payload is event-specific (e.g. a
// SegID for segment events, a transaction id for commit). For the transform
// events Data points at the bytes so hooks may rewrite them in place — this
// is how user compression/decompression is plugged in.
type Info struct {
	Event   Event
	Payload any
	Data    *[]byte
}

// Func is a hook function. Returning an error aborts the Fire call; for
// transform events the triggering operation fails.
type Func func(*Info) error

// ID identifies a registration so it can be removed.
type ID uint64

// Registry holds hook registrations. The zero value is unusable; use
// NewRegistry. Safe for concurrent use. Hooks run synchronously in
// registration order.
type Registry struct {
	mu     sync.RWMutex
	nextID ID
	hooks  [numEvents][]entry

	fired [numEvents]uint64
}

type entry struct {
	id ID
	fn Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{nextID: 1} }

// Register attaches fn to event e and returns a removal handle. Hooks are
// normally registered "before any access to persistent data is initiated".
func (r *Registry) Register(e Event, fn Func) (ID, error) {
	if e >= numEvents {
		return 0, fmt.Errorf("hooks: unknown event %d", e)
	}
	if fn == nil {
		return 0, fmt.Errorf("hooks: nil hook for %v", e)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	r.hooks[e] = append(r.hooks[e], entry{id: id, fn: fn})
	return id, nil
}

// Unregister removes a registration; unknown ids are ignored.
func (r *Registry) Unregister(id ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for e := range r.hooks {
		hs := r.hooks[e]
		for i := range hs {
			if hs[i].id == id {
				r.hooks[e] = append(hs[:i:i], hs[i+1:]...)
				return
			}
		}
	}
}

// Fire runs the hooks for e in registration order, stopping at the first
// error. It is cheap when no hook is registered (one atomic-ish read).
func (r *Registry) Fire(e Event, payload any) error {
	return r.FireData(e, payload, nil)
}

// FireData fires a transform event whose hooks may rewrite *data.
func (r *Registry) FireData(e Event, payload any, data *[]byte) error {
	if e >= numEvents {
		return fmt.Errorf("hooks: unknown event %d", e)
	}
	r.mu.RLock()
	hs := r.hooks[e]
	r.mu.RUnlock()
	if len(hs) == 0 {
		return nil
	}
	r.mu.Lock()
	r.fired[e]++
	r.mu.Unlock()
	info := &Info{Event: e, Payload: payload, Data: data}
	for _, h := range hs {
		if err := h.fn(info); err != nil {
			return fmt.Errorf("hooks: %v hook: %w", e, err)
		}
	}
	return nil
}

// Fired reports how many times event e fired with at least one hook
// registered.
func (r *Registry) Fired(e Event) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e >= numEvents {
		return 0
	}
	return r.fired[e]
}

// Count returns the number of hooks registered for e.
func (r *Registry) Count(e Event) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e >= numEvents {
		return 0
	}
	return len(r.hooks[e])
}
