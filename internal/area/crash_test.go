package area_test

import (
	"bytes"
	"testing"

	"bess/internal/area"
	"bess/internal/fault"
	"bess/internal/page"
)

// TestCrashTruncatedImage: an area image cut short — the tail pages of an
// extent never reached disk — must still load (header and extent maps live
// at the front), serve the intact pages, and fail page reads into the
// missing region with an error rather than a panic or silent zeros.
func TestCrashTruncatedImage(t *testing.T) {
	st := fault.NewStore(fault.NewInjector(1))
	a, err := area.Create(st.Area(), 3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := a.AllocSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := a.AllocSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < p1 {
		p1, p2 = p2, p1
	}
	intact := bytes.Repeat([]byte{0x5A}, page.Size)
	if err := a.WritePage(p1, intact); err != nil {
		t.Fatal(err)
	}
	if err := a.WritePage(p2, bytes.Repeat([]byte{0x77}, page.Size)); err != nil {
		t.Fatal(err)
	}
	if err := st.Area().Sync(); err != nil {
		t.Fatal(err)
	}

	// Cut the durable image right before the higher page: everything from
	// p2 on is gone, as if the extent's tail never hit the platter.
	img := st.CrashImage()
	img = img[:int64(p2)*page.Size]

	st2 := fault.NewStoreFrom(fault.NewInjector(1), img)
	a2, err := area.Load(st2.Area(), true)
	if err != nil {
		t.Fatalf("loading truncated image: %v", err)
	}
	defer a2.Close()

	buf := make([]byte, page.Size)
	if err := a2.ReadPage(p1, buf); err != nil {
		t.Fatalf("reading intact page: %v", err)
	}
	if !bytes.Equal(buf, intact) {
		t.Fatal("intact page content changed")
	}
	if err := a2.ReadPage(p2, buf); err == nil {
		t.Fatal("reading a page beyond the truncated image succeeded")
	}
}

// TestCrashLostUnsyncedPageWrite: a page write that was never synced simply
// does not exist after the crash; the page reads back as its last durable
// content.
func TestCrashLostUnsyncedPageWrite(t *testing.T) {
	st := fault.NewStore(fault.NewInjector(2))
	a, err := area.Create(st.Area(), 4, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := a.AllocSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	durable := bytes.Repeat([]byte{0x01}, page.Size)
	if err := a.WritePage(p, durable); err != nil {
		t.Fatal(err)
	}
	if err := st.Area().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.WritePage(p, bytes.Repeat([]byte{0x02}, page.Size)); err != nil {
		t.Fatal(err)
	}
	// No sync: the 0x02 write dies with the machine.

	st2 := fault.NewStoreFrom(fault.NewInjector(2), st.CrashImage())
	a2, err := area.Load(st2.Area(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	buf := make([]byte, page.Size)
	if err := a2.ReadPage(p, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, durable) {
		t.Fatal("page does not read back as its last synced content")
	}
}
