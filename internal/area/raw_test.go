package area

import "os"

// openRaw opens a file read-write for test corruption helpers.
func openRaw(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0)
}
