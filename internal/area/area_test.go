package area

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"bess/internal/page"
)

func TestMemCreateGeometry(t *testing.T) {
	a, err := NewMem(7, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != 7 {
		t.Fatalf("ID = %d", a.ID())
	}
	if a.Extents() != 2 {
		t.Fatalf("Extents = %d, want 2", a.Extents())
	}
	if a.Pages() != page.No(1+2*page.PerExtent) {
		t.Fatalf("Pages = %d", a.Pages())
	}
	if a.Growable() {
		t.Fatal("non-growable area reports growable")
	}
}

func TestReadWritePage(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	start, granted, err := a.AllocSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	if granted != 1 {
		t.Fatalf("granted = %d", granted)
	}
	data := make([]byte, page.Size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := a.WritePage(start, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, page.Size)
	if err := a.ReadPage(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page round trip mismatch")
	}
}

func TestPageBufferSizeChecked(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	if err := a.ReadPage(1, make([]byte, 10)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := a.WritePage(1, make([]byte, 10)); err == nil {
		t.Fatal("short write buffer accepted")
	}
}

func TestOutOfRange(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	buf := make([]byte, page.Size)
	if err := a.ReadPage(a.Pages(), buf); err != ErrOutOfRange {
		t.Fatalf("read past end: %v", err)
	}
	if err := a.ReadPage(-1, buf); err != ErrOutOfRange {
		t.Fatalf("read negative: %v", err)
	}
	if err := a.WritePage(a.Pages()+5, buf); err != ErrOutOfRange {
		t.Fatalf("write past end: %v", err)
	}
}

func TestAllocSegmentBounds(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	if _, _, err := a.AllocSegment(0); err == nil {
		t.Fatal("AllocSegment(0) accepted")
	}
	if _, _, err := a.AllocSegment(MaxSegmentPages + 1); err != ErrTooLarge {
		t.Fatalf("oversized segment: %v", err)
	}
}

func TestNonGrowableExhaustion(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	for {
		_, _, err := a.AllocSegment(MaxSegmentPages)
		if err == ErrNoSpace {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGrowableExpands(t *testing.T) {
	a, _ := NewMem(1, 1, true)
	before := a.Extents()
	var starts []page.No
	for i := 0; i < 5; i++ {
		s, _, err := a.AllocSegment(MaxSegmentPages)
		if err != nil {
			t.Fatal(err)
		}
		starts = append(starts, s)
	}
	if a.Extents() <= before {
		t.Fatalf("area did not grow: extents %d -> %d", before, a.Extents())
	}
	seen := map[page.No]bool{}
	for _, s := range starts {
		if seen[s] {
			t.Fatalf("duplicate segment start %d", s)
		}
		seen[s] = true
	}
	_, _, grows := a.Stats()
	if grows < 2 {
		t.Fatalf("grows = %d", grows)
	}
}

func TestFreeSegment(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	s, granted, err := a.AllocSegment(8)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := a.SegmentPages(s); !ok || n != granted {
		t.Fatalf("SegmentPages = (%d,%v)", n, ok)
	}
	if err := a.FreeSegment(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.SegmentPages(s); ok {
		t.Fatal("freed segment still live")
	}
	if err := a.FreeSegment(s); err != ErrNotSegment {
		t.Fatalf("double free: %v", err)
	}
	if err := a.FreeSegment(0); err != ErrOutOfRange {
		t.Fatalf("free header page: %v", err)
	}
}

func TestFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "area.bess")
	a, err := CreateFile(path, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	type seg struct {
		start page.No
		n     int
	}
	var segs []seg
	for i := 0; i < 10; i++ {
		s, n, err := a.AllocSegment(1 + i%7)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg{s, n})
		data := make([]byte, page.Size)
		data[0] = byte(i + 1)
		if err := a.WritePage(s, data); err != nil {
			t.Fatal(err)
		}
	}
	// Free a couple so the persisted map has holes.
	if err := a.FreeSegment(segs[3].start); err != nil {
		t.Fatal(err)
	}
	if err := a.FreeSegment(segs[7].start); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.ID() != 42 {
		t.Fatalf("reopened ID = %d", b.ID())
	}
	for i, sg := range segs {
		n, ok := b.SegmentPages(sg.start)
		if i == 3 || i == 7 {
			if ok {
				t.Fatalf("segment %d should be free after reopen", i)
			}
			continue
		}
		if !ok || n != sg.n {
			t.Fatalf("segment %d: (%d,%v), want (%d,true)", i, n, ok, sg.n)
		}
		buf := make([]byte, page.Size)
		if err := b.ReadPage(sg.start, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("segment %d data byte = %d", i, buf[0])
		}
	}
	// New allocations must not overlap surviving segments.
	s, n, err := b.AllocSegment(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, sg := range segs {
		if i == 3 || i == 7 {
			continue
		}
		if s < sg.start+page.No(sg.n) && sg.start < s+page.No(n) {
			t.Fatalf("new segment [%d,%d) overlaps old [%d,%d)", s, s+page.No(n), sg.start, sg.start+page.No(sg.n))
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus")
	a, err := CreateFile(path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Corrupt the magic.
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	f, _ := openRaw(path)
	f.WriteAt([]byte{0, 0, 0, 0}, 0)
	f.Close()
	if _, err := OpenFile(path); err != ErrBadMagic {
		t.Fatalf("corrupt open: %v", err)
	}
}

func TestClosedErrors(t *testing.T) {
	a, _ := NewMem(1, 1, false)
	a.Close()
	buf := make([]byte, page.Size)
	if err := a.ReadPage(1, buf); err != ErrClosed {
		t.Fatalf("read after close: %v", err)
	}
	if _, _, err := a.AllocSegment(1); err != ErrClosed {
		t.Fatalf("alloc after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestRandomAllocFreeNoOverlapMem(t *testing.T) {
	a, _ := NewMem(1, 2, true)
	rng := rand.New(rand.NewSource(7))
	type seg struct {
		start page.No
		n     int
	}
	var live []seg
	for i := 0; i < 500; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(live))
			if err := a.FreeSegment(live[j].start); err != nil {
				t.Fatal(err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		s, n, err := a.AllocSegment(1 + rng.Intn(32))
		if err != nil {
			t.Fatal(err)
		}
		for _, sg := range live {
			if s < sg.start+page.No(sg.n) && sg.start < s+page.No(n) {
				t.Fatalf("overlap: [%d,%d) vs [%d,%d)", s, s+page.No(n), sg.start, sg.start+page.No(sg.n))
			}
		}
		live = append(live, seg{s, n})
	}
}
